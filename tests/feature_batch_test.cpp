// FeatureBatch and the batched prediction path: golden bit-identity of
// predict_batch against the scalar predict_energy loop for all four
// models, the SoA layout invariants, and the span-based stats kernels
// the columnar path is built on.
#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

#include "core/calibration.hpp"
#include "core/wavm3_model.hpp"
#include "models/evaluation.hpp"
#include "models/feature_batch.hpp"
#include "models/huang.hpp"
#include "models/liu.hpp"
#include "models/strunk.hpp"
#include "stats/integrate.hpp"
#include "stats/linreg.hpp"
#include "stats/metrics.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace wavm3::models {
namespace {

using migration::MigrationPhase;
using migration::MigrationType;

const Dataset& campaign_dataset() { return wavm3::testing::fast_campaign_m().dataset; }

/// Train/test split shared by the golden tests: stratified, seeded, so
/// every (type, role) slice is populated on both sides.
std::pair<Dataset, Dataset> golden_split() {
  return campaign_dataset().split_stratified(0.34, 3);
}

std::vector<const EnergyModel*> fit_all(core::Wavm3Model& wavm3, HuangModel& huang,
                                        LiuModel& liu, StrunkModel& strunk,
                                        const Dataset& train) {
  wavm3.fit(train);
  huang.fit(train);
  liu.fit(train);
  strunk.fit(train);
  return {&wavm3, &huang, &liu, &strunk};
}

// ------------------------------------------------------ stats kernels

TEST(Trapezoid, MatchesClosedFormAndHandlesDegenerateInputs) {
  const std::vector<double> t{0.0, 1.0, 3.0, 6.0};
  const std::vector<double> y{2.0, 4.0, 4.0, 0.0};
  // 0.5*(2+4)*1 + 0.5*(4+4)*2 + 0.5*(4+0)*3 = 3 + 8 + 6
  EXPECT_DOUBLE_EQ(stats::trapezoid(t, y), 17.0);
  EXPECT_EQ(stats::trapezoid({}, {}), 0.0);
  const std::vector<double> one{5.0};
  EXPECT_EQ(stats::trapezoid(one, one), 0.0);
  const std::vector<double> two{1.0, 2.0};
  EXPECT_THROW(stats::trapezoid(two, one), util::ContractError);
}

TEST(SpanMetrics, ForwardersAgreeWithSpanPrimaries) {
  const std::vector<double> predicted{10.0, 12.5, 9.0, 14.0, 11.0};
  const std::vector<double> observed{11.0, 12.0, 10.0, 13.0, 12.0};
  const std::span<const double> p(predicted);
  const std::span<const double> o(observed);
  EXPECT_EQ(stats::mae(predicted, observed), stats::mae(p, o));
  EXPECT_EQ(stats::rmse(predicted, observed), stats::rmse(p, o));
  EXPECT_EQ(stats::nrmse(predicted, observed), stats::nrmse(p, o));
  EXPECT_EQ(stats::r_squared(predicted, observed), stats::r_squared(p, o));
  const stats::ErrorMetrics mv = stats::compute_error_metrics(predicted, observed);
  const stats::ErrorMetrics ms = stats::compute_error_metrics(p, o);
  EXPECT_EQ(mv.mae, ms.mae);
  EXPECT_EQ(mv.rmse, ms.rmse);
  EXPECT_EQ(mv.nrmse, ms.nrmse);
}

TEST(ColumnarLinreg, BitIdenticalToRowFit) {
  util::RngStream rng(17);
  constexpr std::size_t kRows = 40;
  std::vector<std::vector<double>> rows(kRows, std::vector<double>(3));
  std::vector<double> c0(kRows), c1(kRows), c2(kRows), y(kRows);
  for (std::size_t i = 0; i < kRows; ++i) {
    c0[i] = rows[i][0] = rng.uniform();
    c1[i] = rows[i][1] = 10.0 * rng.uniform();
    c2[i] = rows[i][2] = rng.uniform() - 0.5;
    y[i] = 3.0 * rows[i][0] + 0.25 * rows[i][1] - 2.0 * rows[i][2] + 5.0 +
           0.01 * rng.uniform();
  }
  for (const bool nonnegative : {false, true}) {
    stats::LinregOptions options;
    options.nonnegative = nonnegative;
    const stats::LinearFit by_rows = stats::fit_linear(rows, y, options);
    const std::span<const double> columns[] = {c0, c1, c2};
    const stats::LinearFit by_cols = stats::fit_linear(columns, y, options);
    ASSERT_EQ(by_rows.coefficients.size(), by_cols.coefficients.size());
    for (std::size_t j = 0; j < by_rows.coefficients.size(); ++j) {
      EXPECT_EQ(by_rows.coefficients[j], by_cols.coefficients[j]);
    }
    EXPECT_EQ(by_rows.r2, by_cols.r2);
    EXPECT_EQ(by_rows.residual_rmse, by_cols.residual_rmse);
  }
}

// ----------------------------------------------------- batch invariants

TEST(FeatureBatch, ColumnsMatchScalarAccessors) {
  const Dataset& d = campaign_dataset();
  const FeatureBatch batch(d);
  ASSERT_EQ(batch.size(), d.observations.size());
  for (std::size_t i = 0; i < d.observations.size(); ++i) {
    const MigrationObservation& obs = d.observations[i];
    EXPECT_EQ(batch.mem_bytes()[i], obs.mem_bytes);
    EXPECT_EQ(batch.data_bytes()[i], obs.data_bytes);
    EXPECT_EQ(batch.avg_bandwidth()[i], obs.avg_bandwidth);
    EXPECT_EQ(batch.idle_power()[i], obs.idle_power_watts);
    // Bit-identical, not just close: both sides run the same trapezoid.
    EXPECT_EQ(batch.observed_energy()[i], obs.observed_energy());
    EXPECT_EQ(batch.types()[i], obs.type);
    EXPECT_EQ(batch.roles()[i], obs.role);
    for (const MigrationPhase phase :
         {MigrationPhase::kInitiation, MigrationPhase::kTransfer,
          MigrationPhase::kActivation}) {
      EXPECT_EQ(batch.integral(FeatureBatch::Column::kPower, phase,
                               FeatureBatch::Weighting::kPhasePure)[i],
                obs.observed_phase_energy(phase));
    }
  }
}

TEST(FeatureBatch, SlicesPartitionTheRows) {
  const FeatureBatch batch(campaign_dataset());
  std::vector<int> seen(batch.size(), 0);
  for (const MigrationType type : {MigrationType::kNonLive, MigrationType::kLive}) {
    for (const HostRole role : {HostRole::kSource, HostRole::kTarget}) {
      for (const std::size_t r : batch.slice(type, role)) {
        EXPECT_EQ(batch.types()[r], type);
        EXPECT_EQ(batch.roles()[r], role);
        ++seen[r];
      }
    }
  }
  for (const int count : seen) EXPECT_EQ(count, 1);
  EXPECT_EQ(batch.slice(HostRole::kSource).size() + batch.slice(HostRole::kTarget).size(),
            batch.size());
}

TEST(FeatureBatch, TotalWeightingSumsToUnfilteredIntegral) {
  const Dataset& d = campaign_dataset();
  const FeatureBatch batch(d);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    double duration = 0.0;
    for (const MigrationPhase phase :
         {MigrationPhase::kInitiation, MigrationPhase::kTransfer,
          MigrationPhase::kActivation}) {
      duration += batch.integral(FeatureBatch::Column::kOne, phase)[i];
    }
    const auto& s = d.observations[i].samples;
    const double expected = s.size() < 2 ? 0.0 : s.back().time - s.front().time;
    EXPECT_NEAR(duration, expected, 1e-9 * (1.0 + std::abs(expected)));
  }
}

TEST(FeatureBatch, SampleSectionRequiresOptIn) {
  const FeatureBatch lean(campaign_dataset());
  EXPECT_FALSE(lean.has_samples());
  EXPECT_THROW(lean.sample_column(FeatureBatch::Column::kPower), util::ContractError);

  FeatureBatch::BuildOptions options;
  options.with_samples = true;
  const FeatureBatch full(campaign_dataset(), options);
  ASSERT_TRUE(full.has_samples());
  std::size_t total = 0;
  for (const auto& obs : campaign_dataset().observations) total += obs.samples.size();
  EXPECT_EQ(full.sample_column(FeatureBatch::Column::kPower).size(), total);
  EXPECT_EQ(full.sample_slice(HostRole::kSource).size() +
                full.sample_slice(HostRole::kTarget).size(),
            total);
}

TEST(FeatureBatch, EmptyBatchIsWellFormed) {
  const FeatureBatch batch{std::span<const MigrationObservation* const>{}};
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.size(), 0u);
  EXPECT_TRUE(batch.observed_energy().empty());
  EXPECT_TRUE(batch.slice(MigrationType::kLive, HostRole::kSource).empty());
}

// ------------------------------------------------------- golden tests

TEST(PredictBatchGolden, BitIdenticalToScalarLoopForAllModels) {
  const auto [train, test] = golden_split();
  core::Wavm3Model wavm3;
  HuangModel huang;
  LiuModel liu;
  StrunkModel strunk;
  const auto models = fit_all(wavm3, huang, liu, strunk, train);

  // The fixed seeded test set covers live + non-live on both roles.
  const FeatureBatch batch(test);
  for (const MigrationType type : {MigrationType::kNonLive, MigrationType::kLive}) {
    EXPECT_FALSE(batch.slice(type, HostRole::kSource).empty());
    EXPECT_FALSE(batch.slice(type, HostRole::kTarget).empty());
  }

  for (const EnergyModel* model : models) {
    std::vector<double> batched(batch.size());
    model->predict_batch(batch, batched);
    for (std::size_t i = 0; i < test.observations.size(); ++i) {
      EXPECT_EQ(batched[i], model->predict_energy(test.observations[i]))
          << model->name() << " row " << i;
    }
  }
}

TEST(PredictBatchGolden, SingleItemBatchMatchesScalar) {
  const auto [train, test] = golden_split();
  core::Wavm3Model wavm3;
  HuangModel huang;
  LiuModel liu;
  StrunkModel strunk;
  const auto models = fit_all(wavm3, huang, liu, strunk, train);
  const MigrationObservation& obs = test.observations.front();
  const FeatureBatch single = FeatureBatch::of(obs);
  ASSERT_EQ(single.size(), 1u);
  for (const EnergyModel* model : models) {
    double out = -1.0;
    model->predict_batch(single, std::span<double>(&out, 1));
    EXPECT_EQ(out, model->predict_energy(obs)) << model->name();
  }
}

TEST(PredictBatchGolden, EmptyBatchIsANoOp) {
  const auto [train, test] = golden_split();
  core::Wavm3Model wavm3;
  HuangModel huang;
  LiuModel liu;
  StrunkModel strunk;
  const auto models = fit_all(wavm3, huang, liu, strunk, train);
  const FeatureBatch empty{std::span<const MigrationObservation* const>{}};
  for (const EnergyModel* model : models) {
    std::vector<double> out;
    EXPECT_NO_THROW(model->predict_batch(empty, out)) << model->name();
  }
}

TEST(PredictBatchGolden, PhaseBatchMatchesScalarPhaseEnergies) {
  const auto [train, test] = golden_split();
  core::Wavm3Model wavm3;
  wavm3.fit(train);
  const FeatureBatch batch(test);
  for (const MigrationPhase phase : {MigrationPhase::kInitiation, MigrationPhase::kTransfer,
                                     MigrationPhase::kActivation}) {
    std::vector<double> batched(batch.size());
    wavm3.predict_phase_batch(batch, phase, batched);
    for (std::size_t i = 0; i < test.observations.size(); ++i) {
      EXPECT_EQ(batched[i], wavm3.predict_phase_energy(test.observations[i], phase))
          << "phase " << static_cast<int>(phase) << " row " << i;
    }
  }
}

TEST(PredictBatchGolden, SizeMismatchThrows) {
  const auto [train, test] = golden_split();
  core::Wavm3Model wavm3;
  wavm3.fit(train);
  const FeatureBatch batch(test);
  std::vector<double> wrong(batch.size() + 1);
  EXPECT_THROW(wavm3.predict_batch(batch, wrong), util::ContractError);
}

// -------------------------------------------------------- calibration

TEST(Calibration, BatchIdlePowerMatchesDatasetOverload) {
  const Dataset& d = campaign_dataset();
  EXPECT_EQ(core::dataset_idle_power(d), core::dataset_idle_power(FeatureBatch(d)));
}

}  // namespace
}  // namespace wavm3::models
