// Property suite: the closed-form planner must agree with the
// event-driven engine across the whole scenario space — dirtying
// fractions, host loads, and all three migration flavours. This is the
// guarantee that lets the consolidation manager trust forecasts it
// never simulates.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "cloud/datacenter.hpp"
#include "cloud/instances.hpp"
#include "core/planner.hpp"
#include "migration/engine.hpp"
#include "net/bandwidth_model.hpp"
#include "sim/simulator.hpp"
#include "util/units.hpp"

namespace wavm3 {
namespace {

using migration::MigrationType;

struct EngineRun {
  migration::MigrationRecord record;
  double source_load_before = 0.0;  ///< CPU(h) minus the migrating VM, at ms
  double target_load_before = 0.0;
};

EngineRun run_engine(int source_load_vms, int target_load_vms, double mem_fraction,
                     MigrationType type) {
  sim::Simulator sim;
  cloud::DataCenter dc;
  cloud::HostSpec h;
  h.vcpus = 32;
  h.ram_bytes = util::gib(32);
  h.name = "src";
  cloud::Host& source = dc.add_host(h);
  h.name = "tgt";
  cloud::Host& target = dc.add_host(h);
  net::LinkSpec link;
  link.wire_rate = util::gbit_per_s(1);
  dc.network().connect("src", "tgt", link);
  for (int i = 0; i < source_load_vms; ++i)
    source.add_vm(cloud::make_load_cpu_vm("sl" + std::to_string(i)));
  for (int i = 0; i < target_load_vms; ++i)
    target.add_vm(cloud::make_load_cpu_vm("tl" + std::to_string(i)));
  source.add_vm(cloud::make_migrating_mem_vm("mv", mem_fraction));

  EngineRun out;
  // Demand-level loads (uncapped), as xentop would report them: under
  // multiplexing the capped utilisation reads 100% and would hide the
  // missing headroom from the planner.
  out.source_load_before =
      source.vmm_demand(0.0) + source.total_vm_demand(0.0) - source.vm("mv")->cpu_demand(0.0);
  out.target_load_before = target.vmm_demand(0.0) + target.total_vm_demand(0.0);

  migration::MigrationEngine engine(sim, dc, net::BandwidthModel{});
  engine.migrate("mv", "src", "tgt", type);
  sim.run_to_completion();
  out.record = engine.completed().back();
  return out;
}

core::MigrationScenario scenario_from(const EngineRun& run, double mem_fraction,
                                      MigrationType type) {
  core::MigrationScenario sc;
  sc.type = type;
  sc.vm_mem_bytes = util::gib(4);
  sc.vm_cpu_vcpus = 1.0;  // migrating-mem demands one vCPU
  sc.vm_dirty_pages_per_s = 300000.0;
  sc.vm_working_set_pages = mem_fraction * util::gib(4) / util::kPageSize;
  sc.source_cpu_load = run.source_load_before;
  sc.target_cpu_load = run.target_load_before;
  sc.source_cpu_capacity = 32.0;
  sc.target_cpu_capacity = 32.0;
  sc.link_payload_rate = 125e6 * 0.94;
  return sc;
}

using Params = std::tuple<int, int, double, MigrationType>;

class PlannerEngineSweep : public ::testing::TestWithParam<Params> {};

TEST_P(PlannerEngineSweep, ForecastMatchesSimulation) {
  const auto [src_vms, tgt_vms, fraction, type] = GetParam();
  const EngineRun run = run_engine(src_vms, tgt_vms, fraction, type);
  const core::MigrationForecast fc =
      core::forecast_timings(scenario_from(run, fraction, type));

  // Transfer duration and traffic within 15%; the engine adds dom0
  // helper effects the closed form approximates.
  EXPECT_NEAR(fc.times.transfer_duration(), run.record.times.transfer_duration(),
              0.15 * run.record.times.transfer_duration() + 1.0)
      << "src=" << src_vms << " tgt=" << tgt_vms << " f=" << fraction;
  EXPECT_NEAR(fc.total_bytes, run.record.total_bytes, 0.15 * run.record.total_bytes + 1e6);
  EXPECT_EQ(fc.degenerated_to_nonlive, run.record.degenerated_to_nonlive);
  // Downtime within 30% + half a second (resume discretisation).
  EXPECT_NEAR(fc.downtime, run.record.downtime, 0.30 * run.record.downtime + 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    Flavours, PlannerEngineSweep,
    ::testing::Values(
        // Live pre-copy across the DR sweep, idle hosts.
        Params{0, 0, 0.05, MigrationType::kLive}, Params{0, 0, 0.35, MigrationType::kLive},
        Params{0, 0, 0.75, MigrationType::kLive}, Params{0, 0, 0.95, MigrationType::kLive},
        // Loaded source / target.
        Params{5, 0, 0.55, MigrationType::kLive}, Params{8, 0, 0.95, MigrationType::kLive},
        Params{0, 8, 0.55, MigrationType::kLive},
        // Non-live.
        Params{0, 0, 0.95, MigrationType::kNonLive},
        Params{8, 0, 0.95, MigrationType::kNonLive},
        // Post-copy.
        Params{0, 0, 0.95, MigrationType::kPostCopy},
        Params{5, 5, 0.55, MigrationType::kPostCopy}));

}  // namespace
}  // namespace wavm3
