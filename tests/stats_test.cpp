// Unit tests for the stats substrate: matrix solvers, descriptive
// statistics, error metrics, OLS, Levenberg-Marquardt, splitting, and
// the SV-B repetition criterion.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "stats/convergence.hpp"
#include "stats/descriptive.hpp"
#include "stats/diagnostics.hpp"
#include "stats/integrate.hpp"
#include "stats/linreg.hpp"
#include "stats/lm.hpp"
#include "stats/matrix.hpp"
#include "stats/metrics.hpp"
#include "stats/split.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace wavm3::stats {
namespace {

TEST(Matrix, BasicOps) {
  const Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  const Matrix t = a.transpose();
  EXPECT_DOUBLE_EQ(t.at(0, 1), 3);
  const Matrix p = a.multiply(Matrix::identity(2));
  EXPECT_DOUBLE_EQ(p.at(1, 0), 3);
  EXPECT_NEAR(a.frobenius_norm(), std::sqrt(30.0), 1e-12);
}

TEST(Matrix, GramMatchesExplicitProduct) {
  const Matrix a = Matrix::from_rows({{1, 2, 0}, {0, 1, 4}, {2, 2, 2}, {1, 0, 1}});
  const Matrix g1 = a.gram();
  const Matrix g2 = a.transpose().multiply(a);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_NEAR(g1.at(i, j), g2.at(i, j), 1e-12);
}

TEST(Matrix, CholeskySolvesSpdSystem) {
  const Matrix a = Matrix::from_rows({{4, 2}, {2, 3}});
  const auto x = cholesky_solve(a, {2, 1});
  EXPECT_NEAR(4 * x[0] + 2 * x[1], 2.0, 1e-12);
  EXPECT_NEAR(2 * x[0] + 3 * x[1], 1.0, 1e-12);
}

TEST(Matrix, CholeskyRejectsIndefinite) {
  const Matrix a = Matrix::from_rows({{1, 2}, {2, 1}});  // eigenvalues 3, -1
  EXPECT_THROW(cholesky_solve(a, {1, 1}), util::ContractError);
}

TEST(Matrix, QrLeastSquaresRecoversExactSolution) {
  // Overdetermined but consistent system.
  const Matrix a = Matrix::from_rows({{1, 0}, {0, 1}, {1, 1}});
  const std::vector<double> b = {2, 3, 5};  // x = (2,3) exactly
  const auto x = qr_least_squares(a, b);
  EXPECT_NEAR(x[0], 2.0, 1e-10);
  EXPECT_NEAR(x[1], 3.0, 1e-10);
}

TEST(Matrix, QrRejectsRankDeficient) {
  const Matrix a = Matrix::from_rows({{1, 2}, {2, 4}, {3, 6}});
  EXPECT_THROW(qr_least_squares(a, {1, 2, 3}), util::ContractError);
}

TEST(Matrix, GaussianSolve) {
  Matrix a = Matrix::from_rows({{0, 2, 1}, {1, 1, 1}, {2, 0, 3}});
  const auto x = gaussian_solve(a, {5, 6, 7});
  const Matrix a2 = Matrix::from_rows({{0, 2, 1}, {1, 1, 1}, {2, 0, 3}});
  const auto back = a2.times(x);
  EXPECT_NEAR(back[0], 5, 1e-10);
  EXPECT_NEAR(back[1], 6, 1e-10);
  EXPECT_NEAR(back[2], 7, 1e-10);
}

TEST(Descriptive, SummaryAndQuantiles) {
  const std::vector<double> v = {4, 1, 3, 2, 5};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.variance, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(median(v), 3.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.0);
}

TEST(Descriptive, OnlineMatchesBatch) {
  util::RngStream rng(3);
  std::vector<double> v;
  OnlineStats online;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.gaussian(5.0, 3.0);
    v.push_back(x);
    online.add(x);
  }
  const Summary batch = summarize(v);
  EXPECT_NEAR(online.mean(), batch.mean, 1e-10);
  EXPECT_NEAR(online.variance(), batch.variance, 1e-8);
}

TEST(Descriptive, OnlineMergeEqualsSequential) {
  util::RngStream rng(9);
  OnlineStats all;
  OnlineStats part1;
  OnlineStats part2;
  for (int i = 0; i < 300; ++i) {
    const double x = rng.uniform(0, 10);
    all.add(x);
    (i < 120 ? part1 : part2).add(x);
  }
  part1.merge(part2);
  EXPECT_NEAR(part1.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(part1.variance(), all.variance(), 1e-8);
  EXPECT_EQ(part1.count(), all.count());
}

TEST(Metrics, KnownValues) {
  const std::vector<double> obs = {10, 10, 10, 10};
  const std::vector<double> pred = {11, 9, 12, 8};
  EXPECT_DOUBLE_EQ(mae(pred, obs), 1.5);
  EXPECT_NEAR(rmse(pred, obs), std::sqrt(2.5), 1e-12);
  EXPECT_NEAR(nrmse(pred, obs), std::sqrt(2.5) / 10.0, 1e-12);
}

TEST(Metrics, PerfectPredictionIsZeroErrorUnitR2) {
  const std::vector<double> obs = {1, 2, 3};
  const ErrorMetrics m = compute_error_metrics(obs, obs);
  EXPECT_DOUBLE_EQ(m.mae, 0.0);
  EXPECT_DOUBLE_EQ(m.rmse, 0.0);
  EXPECT_DOUBLE_EQ(m.r2, 1.0);
}

TEST(Metrics, RangeNormalization) {
  const std::vector<double> obs = {0, 10};
  const std::vector<double> pred = {1, 9};
  EXPECT_NEAR(nrmse(pred, obs, Normalization::kRange), 0.1, 1e-12);
}

TEST(Metrics, SizeMismatchThrows) {
  EXPECT_THROW(mae({1.0}, {1.0, 2.0}), util::ContractError);
}

TEST(Metrics, TryNrmseMatchesThrowingFormOnHealthyWindows) {
  const std::vector<double> obs = {10, 10, 10, 10};
  const std::vector<double> pred = {11, 9, 12, 8};
  const std::optional<double> v = try_nrmse(pred, obs);
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ(*v, nrmse(pred, obs));
}

TEST(Metrics, TryNrmseIsNulloptOnDegenerateWindows) {
  // A feedback window of one repeated scenario: the observed column is
  // constant at zero, so no normaliser exists. The throwing form keeps
  // its offline contract; the online form must not kill the process.
  const std::vector<double> obs = {0, 0, 0};
  const std::vector<double> pred = {1, 2, 3};
  EXPECT_FALSE(try_nrmse(pred, obs).has_value());
  EXPECT_FALSE(try_nrmse(pred, obs, Normalization::kRange).has_value());
  EXPECT_THROW(nrmse(pred, obs), util::ContractError);
  // Constant non-zero observations: mean-normalisation still works,
  // range-normalisation has no spread to normalise by.
  const std::vector<double> flat = {5, 5, 5};
  EXPECT_TRUE(try_nrmse(pred, flat).has_value());
  EXPECT_FALSE(try_nrmse(pred, flat, Normalization::kRange).has_value());
  // Empty windows are "no evidence", not an abort.
  EXPECT_FALSE(try_nrmse(std::vector<double>{}, std::vector<double>{}).has_value());
  // A size mismatch is still a programming error in either form.
  EXPECT_THROW(try_nrmse({1.0}, {1.0, 2.0}), util::ContractError);
}

TEST(Integrate, TrapezoidKnownArea) {
  const std::vector<double> t = {0.0, 1.0, 3.0};
  const std::vector<double> y = {2.0, 4.0, 4.0};
  EXPECT_DOUBLE_EQ(trapezoid(t, y), 3.0 + 8.0);
}

TEST(Integrate, TrapezoidRejectsNonMonotonicTime) {
  // Out-of-order timestamps flip the sign of a panel: before the fix
  // this returned 3 - 8 + 13 = silently wrong area instead of failing.
  const std::vector<double> t = {0.0, 2.0, 1.0, 3.0};
  const std::vector<double> y = {2.0, 4.0, 4.0, 4.0};
  EXPECT_THROW(trapezoid(t, y), util::ContractError);
  // Repeated timestamps (a stalled meter) are legal: zero-width panel.
  const std::vector<double> t2 = {0.0, 1.0, 1.0, 2.0};
  const std::vector<double> y2 = {2.0, 2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(trapezoid(t2, y2), 4.0);
}

TEST(Integrate, InterpAtClampsAndInterpolates) {
  const std::vector<double> t = {0.0, 1.0, 3.0};
  const std::vector<double> y = {2.0, 4.0, 8.0};
  EXPECT_DOUBLE_EQ(interp_at(t, y, -1.0), 2.0);   // clamp left
  EXPECT_DOUBLE_EQ(interp_at(t, y, 5.0), 8.0);    // clamp right
  EXPECT_DOUBLE_EQ(interp_at(t, y, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(interp_at(t, y, 2.0), 6.0);
  EXPECT_DOUBLE_EQ(interp_at(t, y, 1.0), 4.0);    // exact sample
  // Repeated timestamps: the later sample wins, no division by zero.
  const std::vector<double> t2 = {0.0, 1.0, 1.0, 2.0};
  const std::vector<double> y2 = {0.0, 2.0, 6.0, 6.0};
  EXPECT_DOUBLE_EQ(interp_at(t2, y2, 1.0), 6.0);
}

TEST(Integrate, WindowTrapezoidSplitsExactly) {
  // Splitting [t0, t1] at any interior point conserves the integral —
  // the property PowerTrace::energy_between and the planner's history
  // windows both rely on.
  const std::vector<double> t = {0.0, 1.0, 3.0, 4.0};
  const std::vector<double> y = {2.0, 4.0, 4.0, 0.0};
  const double whole = window_trapezoid(t, y, 0.0, 4.0);
  EXPECT_DOUBLE_EQ(whole, trapezoid(t, y));
  for (const double cut : {0.5, 1.0, 2.7, 3.9}) {
    EXPECT_DOUBLE_EQ(window_trapezoid(t, y, 0.0, cut) + window_trapezoid(t, y, cut, 4.0),
                     whole);
  }
  // Sub-sample window inside one panel: plain trapezoid of the lerped
  // endpoints.
  EXPECT_DOUBLE_EQ(window_trapezoid(t, y, 1.5, 2.5), 4.0);
  // Windows beyond the sampled extent clamp; fully disjoint gives 0.
  EXPECT_DOUBLE_EQ(window_trapezoid(t, y, -5.0, 10.0), whole);
  EXPECT_DOUBLE_EQ(window_trapezoid(t, y, 10.0, 20.0), 0.0);
}

TEST(Integrate, WindowMeanEdgeCases) {
  const std::vector<double> t = {0.0, 2.0};
  const std::vector<double> y = {1.0, 3.0};
  EXPECT_DOUBLE_EQ(window_mean(t, y, 0.0, 2.0), 2.0);
  // Zero-width window degenerates to the interpolated value.
  EXPECT_DOUBLE_EQ(window_mean(t, y, 1.0, 1.0), 2.0);
  // Single-sample history: that sample is the mean.
  EXPECT_DOUBLE_EQ(window_mean(std::vector<double>{5.0}, std::vector<double>{7.0}, 0.0, 10.0),
                   7.0);
}

TEST(Integrate, IsNonDecreasingScreensIngestAxes) {
  EXPECT_TRUE(is_non_decreasing(std::vector<double>{0.0, 1.0, 1.0, 2.5}));
  EXPECT_TRUE(is_non_decreasing(std::vector<double>{}));
  EXPECT_FALSE(is_non_decreasing(std::vector<double>{0.0, 2.0, 1.0}));
  EXPECT_FALSE(is_non_decreasing(
      std::vector<double>{0.0, std::numeric_limits<double>::quiet_NaN(), 1.0}));
}

TEST(Linreg, RecoversPlantedCoefficients) {
  util::RngStream rng(17);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 400; ++i) {
    const double a = rng.uniform(0, 32);
    const double b = rng.uniform(0, 4);
    x.push_back({a, b});
    y.push_back(2.5 * a + 7.0 * b + 430.0 + rng.gaussian(0, 0.5));
  }
  const LinearFit fit = fit_linear(x, y);
  ASSERT_EQ(fit.coefficients.size(), 3u);
  EXPECT_NEAR(fit.coefficients[0], 2.5, 0.05);
  EXPECT_NEAR(fit.coefficients[1], 7.0, 0.3);
  EXPECT_NEAR(fit.coefficients[2], 430.0, 1.5);
  EXPECT_GT(fit.r2, 0.99);
}

TEST(Linreg, PredictMatchesManualEvaluation) {
  const LinearFit fit = fit_linear({{1.0}, {2.0}, {3.0}}, {2.0, 4.0, 6.0});
  EXPECT_NEAR(fit.predict({10.0}), 20.0, 1e-8);
}

TEST(Linreg, NonnegativeClampsNegativeCoefficient) {
  // y depends negatively on feature 1; nonnegative fit must zero it.
  util::RngStream rng(23);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    const double a = rng.uniform(0, 10);
    const double b = rng.uniform(0, 10);
    x.push_back({a, b});
    y.push_back(3.0 * a - 2.0 * b + 5.0 + rng.gaussian(0, 0.1));
  }
  LinregOptions opts;
  opts.nonnegative = true;
  const LinearFit fit = fit_linear(x, y, opts);
  EXPECT_NEAR(fit.coefficients[0], 3.0, 0.2);
  EXPECT_DOUBLE_EQ(fit.coefficients[1], 0.0);
}

TEST(Linreg, RidgeHandlesCollinearColumns) {
  // Second column constant -> collinear with intercept; plain OLS would
  // be singular, ridge resolves it.
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 50; ++i) {
    x.push_back({static_cast<double>(i), 4.0});
    y.push_back(2.0 * i + 10.0);
  }
  LinregOptions opts;
  opts.ridge_lambda = 1e-6;
  const LinearFit fit = fit_linear(x, y, opts);
  EXPECT_NEAR(fit.predict({25.0, 4.0}), 60.0, 0.1);
}

TEST(Lm, ConvergesToOlsOnLinearProblem) {
  util::RngStream rng(31);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 150; ++i) {
    const double a = rng.uniform(0, 20);
    x.push_back({a});
    y.push_back(1.7 * a + 600.0 + rng.gaussian(0, 1.0));
  }
  const LinearFit ols = fit_linear(x, y);

  const auto model = [](const std::vector<double>& p, const std::vector<double>& f) {
    return p[0] * f[0] + p[1];
  };
  const LmResult lm = levenberg_marquardt(curve_residuals(model, x, y), {0.0, 0.0});
  EXPECT_TRUE(lm.converged);
  EXPECT_NEAR(lm.params[0], ols.coefficients[0], 1e-4);
  EXPECT_NEAR(lm.params[1], ols.coefficients[1], 1e-2);
}

TEST(Lm, FitsNonlinearSaturationCurve) {
  // y = A * (1 - exp(-x / B)), the fresh-dirty-page law.
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 1; i <= 60; ++i) {
    const double t = i * 0.5;
    x.push_back({t});
    y.push_back(950.0 * (1.0 - std::exp(-t / 7.0)));
  }
  const auto model = [](const std::vector<double>& p, const std::vector<double>& f) {
    return p[0] * (1.0 - std::exp(-f[0] / std::max(1e-6, p[1])));
  };
  const LmResult lm = levenberg_marquardt(curve_residuals(model, x, y), {500.0, 2.0});
  EXPECT_NEAR(lm.params[0], 950.0, 1.0);
  EXPECT_NEAR(lm.params[1], 7.0, 0.05);
}

TEST(Split, SizesAndDisjointness) {
  const IndexSplit s = train_test_split(100, 0.2, 42);
  EXPECT_EQ(s.train.size(), 20u);
  EXPECT_EQ(s.test.size(), 80u);
  std::vector<bool> seen(100, false);
  for (const auto i : s.train) seen[i] = true;
  for (const auto i : s.test) {
    EXPECT_FALSE(seen[i]);
    seen[i] = true;
  }
  for (const bool b : seen) EXPECT_TRUE(b);
}

TEST(Split, DeterministicInSeed) {
  const IndexSplit a = train_test_split(50, 0.3, 7);
  const IndexSplit b = train_test_split(50, 0.3, 7);
  EXPECT_EQ(a.train, b.train);
  const IndexSplit c = train_test_split(50, 0.3, 8);
  EXPECT_NE(a.train, c.train);
}

TEST(Split, AlwaysLeavesBothSidesNonEmpty) {
  const IndexSplit s = train_test_split(2, 0.01, 1);
  EXPECT_EQ(s.train.size(), 1u);
  EXPECT_EQ(s.test.size(), 1u);
}

TEST(Repetition, RequiresMinRuns) {
  RunRepetition rep;
  for (int i = 0; i < 9; ++i) {
    rep.add_run(100.0 + (i % 2));
    EXPECT_FALSE(rep.converged());
  }
  rep.add_run(100.0);  // 10th run, variance already stable
  EXPECT_TRUE(rep.converged());
}

TEST(Repetition, KeepsGoingWhileVarianceMoves) {
  RepetitionOptions opts;
  opts.min_runs = 10;
  opts.max_runs = 40;
  RunRepetition rep(opts);
  // Alternating wildly growing values keep the variance changing.
  for (int i = 0; i < 10; ++i) rep.add_run(i % 2 == 0 ? 100.0 : 100.0 + 10.0 * i);
  EXPECT_FALSE(rep.converged());
}

TEST(Repetition, MaxRunsCap) {
  RepetitionOptions opts;
  opts.min_runs = 2;
  opts.max_runs = 5;
  RunRepetition rep(opts);
  for (int i = 0; i < 5; ++i) rep.add_run(std::pow(3.0, i));
  EXPECT_TRUE(rep.converged());
  EXPECT_EQ(rep.runs(), 5u);
}

TEST(Diagnostics, WhiteNoiseResidualsLookWhite) {
  util::RngStream rng(41);
  std::vector<double> pred;
  std::vector<double> obs;
  for (int i = 0; i < 2000; ++i) {
    const double truth = 500.0 + i * 0.01;
    pred.push_back(truth);
    obs.push_back(truth + rng.gaussian(0.0, 3.0));
  }
  const ResidualDiagnostics d = residual_diagnostics(pred, obs);
  EXPECT_NEAR(d.mean, 0.0, 0.3);
  EXPECT_NEAR(d.stddev, 3.0, 0.3);
  EXPECT_NEAR(d.durbin_watson, 2.0, 0.15);
  EXPECT_NEAR(d.lag1_autocorr, 0.0, 0.07);
  EXPECT_NEAR(d.skew, 0.0, 0.15);
}

TEST(Diagnostics, Ar1ResidualsDetected) {
  util::RngStream rng(43);
  std::vector<double> pred(2000, 0.0);
  std::vector<double> obs(2000);
  double state = 0.0;
  for (int i = 0; i < 2000; ++i) {
    state = 0.8 * state + rng.gaussian(0.0, 1.0);
    obs[static_cast<std::size_t>(i)] = state;
  }
  const ResidualDiagnostics d = residual_diagnostics(pred, obs);
  EXPECT_LT(d.durbin_watson, 0.8);     // strong positive autocorrelation
  EXPECT_GT(d.lag1_autocorr, 0.6);
}

TEST(Diagnostics, SkewnessSignsCorrect) {
  std::vector<double> right_skewed;
  std::vector<double> symmetric;
  util::RngStream rng(47);
  for (int i = 0; i < 3000; ++i) {
    const double g = rng.gaussian(0.0, 1.0);
    right_skewed.push_back(std::exp(g));  // lognormal: skew > 0
    symmetric.push_back(g);
  }
  EXPECT_GT(skewness(right_skewed), 1.0);
  EXPECT_NEAR(skewness(symmetric), 0.0, 0.15);
}

TEST(Diagnostics, DurbinWatsonEdgeCases) {
  // Alternating residuals -> negative autocorrelation -> DW near 4.
  std::vector<double> alternating;
  for (int i = 0; i < 200; ++i) alternating.push_back(i % 2 == 0 ? 1.0 : -1.0);
  EXPECT_GT(durbin_watson(alternating), 3.5);
  EXPECT_LT(autocorrelation(alternating, 1), -0.9);
  EXPECT_THROW(durbin_watson({1.0}), util::ContractError);
  EXPECT_THROW(autocorrelation({1.0, 2.0}, 2), util::ContractError);
}

// Property sweep: OLS recovers planted coefficients across noise levels.
class LinregNoiseSweep : public ::testing::TestWithParam<double> {};

TEST_P(LinregNoiseSweep, RecoversSlopeWithinNoiseBound) {
  const double noise = GetParam();
  util::RngStream rng(static_cast<std::uint64_t>(noise * 1000) + 1);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 600; ++i) {
    const double a = rng.uniform(0, 32);
    x.push_back({a});
    y.push_back(11.0 * a + 430.0 + rng.gaussian(0, noise));
  }
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.coefficients[0], 11.0, 0.02 + noise * 0.05);
  EXPECT_NEAR(fit.coefficients[1], 430.0, 0.5 + noise);
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, LinregNoiseSweep,
                         ::testing::Values(0.0, 0.5, 2.0, 8.0, 20.0));

}  // namespace
}  // namespace wavm3::stats
