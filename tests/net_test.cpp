// Unit tests for the network substrate: link accounting, CPU-coupled
// bandwidth, topology registry.
#include <gtest/gtest.h>

#include "net/bandwidth_model.hpp"
#include "net/link.hpp"
#include "net/topology.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace wavm3::net {
namespace {

LinkSpec gigabit() {
  LinkSpec s;
  s.name = "test-gbe";
  s.wire_rate = util::gbit_per_s(1);
  s.protocol_efficiency = 0.94;
  return s;
}

TEST(Link, PayloadRateAppliesProtocolEfficiency) {
  const Link link(gigabit());
  EXPECT_DOUBLE_EQ(link.max_payload_rate(), 125e6 * 0.94);
}

TEST(Link, AccountsBytes) {
  Link link(gigabit());
  link.account_transfer(1e9);
  link.account_transfer(2e9);
  EXPECT_DOUBLE_EQ(link.total_bytes(), 3e9);
  link.reset_accounting();
  EXPECT_DOUBLE_EQ(link.total_bytes(), 0.0);
  EXPECT_THROW(link.account_transfer(-1.0), util::ContractError);
}

TEST(Link, RejectsBadSpecs) {
  LinkSpec s = gigabit();
  s.wire_rate = 0.0;
  EXPECT_THROW(Link{s}, util::ContractError);
  s = gigabit();
  s.protocol_efficiency = 1.5;
  EXPECT_THROW(Link{s}, util::ContractError);
}

TEST(BandwidthModel, FullHeadroomGivesWireSpeed) {
  const BandwidthModel bw;
  const Link link(gigabit());
  EXPECT_DOUBLE_EQ(bw.achievable_bandwidth(link, 8.0, 8.0), link.max_payload_rate());
}

TEST(BandwidthModel, ZeroHeadroomGivesMinEfficiency) {
  BandwidthModelParams p;
  p.min_efficiency = 0.58;
  const BandwidthModel bw(p);
  const Link link(gigabit());
  EXPECT_NEAR(bw.achievable_bandwidth(link, 0.0, 8.0), link.max_payload_rate() * 0.58, 1e-6);
}

TEST(BandwidthModel, BottleneckEndpointWins) {
  const BandwidthModel bw;
  const Link link(gigabit());
  const double constrained = bw.achievable_bandwidth(link, 0.5, 8.0);
  const double reversed = bw.achievable_bandwidth(link, 8.0, 0.5);
  EXPECT_DOUBLE_EQ(constrained, reversed);
  EXPECT_LT(constrained, link.max_payload_rate());
}

TEST(BandwidthModel, EfficiencyMonotoneInHeadroom) {
  const BandwidthModel bw;
  double prev = 0.0;
  for (double h = 0.0; h <= 4.0; h += 0.25) {
    const double e = bw.endpoint_efficiency(h);
    EXPECT_GE(e, prev);
    EXPECT_LE(e, 1.0);
    prev = e;
  }
  EXPECT_DOUBLE_EQ(bw.endpoint_efficiency(100.0), 1.0);
  // Negative headroom clamps to the floor rather than misbehaving.
  EXPECT_DOUBLE_EQ(bw.endpoint_efficiency(-3.0), bw.params().min_efficiency);
}

TEST(Topology, SymmetricLookup) {
  Topology topo;
  topo.connect("m01", "m02", gigabit());
  EXPECT_NE(topo.link_between("m01", "m02"), nullptr);
  EXPECT_EQ(topo.link_between("m01", "m02"), topo.link_between("m02", "m01"));
  EXPECT_EQ(topo.link_between("m01", "o1"), nullptr);
  EXPECT_EQ(topo.link_count(), 1u);
}

// Regression: a second connect() for the same pair used to silently
// replace the first link (discarding its fault state). It must be
// rejected in both orientations — the registry is symmetric.
TEST(Topology, DuplicateConnectRejected) {
  Topology topo;
  topo.connect("a", "b", gigabit());
  Link* original = topo.link_between("a", "b");
  LinkSpec fast = gigabit();
  fast.wire_rate = util::gbit_per_s(10);
  EXPECT_THROW(topo.connect("a", "b", fast), util::ContractError);
  EXPECT_THROW(topo.connect("b", "a", fast), util::ContractError);
  // The original registration survives the rejected attempts.
  EXPECT_EQ(topo.link_count(), 1u);
  EXPECT_EQ(topo.link_between("a", "b"), original);
  EXPECT_DOUBLE_EQ(topo.link_between("a", "b")->spec().wire_rate, gigabit().wire_rate);
}

TEST(Topology, SelfLoopRejected) {
  Topology topo;
  EXPECT_THROW(topo.connect("a", "a", gigabit()), util::ContractError);
  // Still rejected when a default spec would otherwise make every
  // pair reachable.
  topo.set_default_link(gigabit());
  EXPECT_THROW(topo.connect("a", "a", gigabit()), util::ContractError);
}

// connect() over a lazily materialised default link is an override,
// not a duplicate: only explicit registrations count. A second
// explicit connect() after the override is again rejected.
TEST(Topology, ConnectOverMaterializedDefaultSucceedsOnce) {
  Topology topo;
  topo.set_default_link(gigabit());
  ASSERT_NE(topo.link_between("a", "b"), nullptr);  // memoise the default
  LinkSpec fast = gigabit();
  fast.wire_rate = util::gbit_per_s(10);
  topo.connect("a", "b", fast);
  EXPECT_DOUBLE_EQ(topo.link_between("a", "b")->spec().wire_rate, util::gbit_per_s(10));
  EXPECT_THROW(topo.connect("a", "b", gigabit()), util::ContractError);
}

TEST(Topology, DefaultLinkMaterializesPerPair) {
  Topology topo;
  EXPECT_FALSE(topo.has_default_link());
  EXPECT_EQ(topo.link_between("a", "b"), nullptr);

  topo.set_default_link(gigabit());
  EXPECT_TRUE(topo.has_default_link());
  Link* ab = topo.link_between("a", "b");
  ASSERT_NE(ab, nullptr);
  // Symmetric, stable, and distinct per pair (links carry mutable
  // fault state, so pairs must not share one Link object).
  EXPECT_EQ(topo.link_between("b", "a"), ab);
  Link* cd = topo.link_between("c", "d");
  ASSERT_NE(cd, nullptr);
  EXPECT_NE(cd, ab);
  // Self-pairs stay unconnected even with a default.
  EXPECT_EQ(topo.link_between("a", "a"), nullptr);
}

TEST(Topology, ExplicitLinkOverridesDefault) {
  Topology topo;
  topo.set_default_link(gigabit());
  LinkSpec fast = gigabit();
  fast.wire_rate = util::gbit_per_s(10);
  topo.connect("a", "b", fast);
  EXPECT_DOUBLE_EQ(topo.link_between("a", "b")->spec().wire_rate, util::gbit_per_s(10));
  EXPECT_DOUBLE_EQ(topo.link_between("a", "c")->spec().wire_rate, gigabit().wire_rate);
}

}  // namespace
}  // namespace wavm3::net
