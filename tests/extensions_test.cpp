// Tests for the extension features: bootstrap/k-fold resampling,
// dataset CSV persistence, cross-validation, and the engine's adaptive
// pre-copy rate limiting.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cmath>

#include "cloud/datacenter.hpp"
#include "cloud/instances.hpp"
#include "core/coeff_io.hpp"
#include "core/wavm3_model.hpp"
#include "migration/engine.hpp"
#include "models/dataset_io.hpp"
#include "models/evaluation.hpp"
#include "net/bandwidth_model.hpp"
#include "sim/simulator.hpp"
#include "stats/descriptive.hpp"
#include "stats/metrics.hpp"
#include "stats/resampling.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace wavm3 {
namespace {

TEST(Bootstrap, MeanCiCoversTruth) {
  util::RngStream rng(3);
  std::vector<double> sample;
  for (int i = 0; i < 300; ++i) sample.push_back(rng.gaussian(50.0, 5.0));
  const stats::BootstrapResult r =
      stats::bootstrap_ci(sample, [](const std::vector<double>& v) { return stats::mean(v); },
                          600, 0.95, 9);
  EXPECT_NEAR(r.point, 50.0, 1.0);
  EXPECT_LT(r.lower, r.point);
  EXPECT_GT(r.upper, r.point);
  EXPECT_LT(r.lower, 50.0);
  EXPECT_GT(r.upper, 50.0);
  // Interval width ~ 2*1.96*5/sqrt(300) ~ 1.13.
  EXPECT_NEAR(r.upper - r.lower, 1.13, 0.5);
}

TEST(Bootstrap, DeterministicInSeed) {
  std::vector<double> sample;
  for (int i = 0; i < 50; ++i) sample.push_back(i);
  const auto stat = [](const std::vector<double>& v) { return stats::mean(v); };
  const auto a = stats::bootstrap_ci(sample, stat, 200, 0.9, 5);
  const auto b = stats::bootstrap_ci(sample, stat, 200, 0.9, 5);
  EXPECT_DOUBLE_EQ(a.lower, b.lower);
  EXPECT_DOUBLE_EQ(a.upper, b.upper);
}

TEST(Bootstrap, PairedMetricCi) {
  util::RngStream rng(7);
  std::vector<double> obs;
  std::vector<double> pred;
  for (int i = 0; i < 200; ++i) {
    const double o = rng.uniform(100, 200);
    obs.push_back(o);
    pred.push_back(o + rng.gaussian(0, 10.0));
  }
  const auto r = stats::bootstrap_metric_ci(
      pred, obs,
      [](const std::vector<double>& p, const std::vector<double>& o) {
        return stats::nrmse(p, o);
      },
      400, 0.95, 11);
  EXPECT_GT(r.point, 0.0);
  EXPECT_LE(r.lower, r.point);
  EXPECT_GE(r.upper, r.point);
}

TEST(Kfold, PartitionsAllIndicesDisjointly) {
  const auto folds = stats::kfold_indices(23, 5, 17);
  ASSERT_EQ(folds.size(), 5u);
  std::vector<int> seen(23, 0);
  for (const auto& f : folds) {
    EXPECT_GE(f.size(), 4u);
    EXPECT_LE(f.size(), 5u);
    for (const auto i : f) seen[i]++;
  }
  for (const int c : seen) EXPECT_EQ(c, 1);
}

TEST(Kfold, Validation) {
  EXPECT_THROW(stats::kfold_indices(3, 4, 1), util::ContractError);
  EXPECT_THROW(stats::kfold_indices(10, 1, 1), util::ContractError);
}

TEST(DatasetIo, RoundTripsExactly) {
  const models::Dataset& original = wavm3::testing::fast_campaign_m().dataset;
  const std::string path = ::testing::TempDir() + "/wavm3_dataset.csv";
  ASSERT_TRUE(models::save_dataset_csv(original, path));
  const models::Dataset loaded = models::load_dataset_csv(path);
  std::remove(path.c_str());

  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.name, original.name);
  for (std::size_t i = 0; i < original.size(); ++i) {
    const auto& a = original.observations[i];
    const auto& b = loaded.observations[i];
    EXPECT_EQ(a.experiment, b.experiment);
    EXPECT_EQ(a.run, b.run);
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.role, b.role);
    EXPECT_DOUBLE_EQ(a.times.te, b.times.te);
    EXPECT_DOUBLE_EQ(a.data_bytes, b.data_bytes);
    EXPECT_DOUBLE_EQ(a.idle_power_watts, b.idle_power_watts);
    ASSERT_EQ(a.samples.size(), b.samples.size());
    for (std::size_t j = 0; j < a.samples.size(); j += 7) {
      EXPECT_DOUBLE_EQ(a.samples[j].power_watts, b.samples[j].power_watts);
      EXPECT_DOUBLE_EQ(a.samples[j].cpu_host, b.samples[j].cpu_host);
      EXPECT_DOUBLE_EQ(a.samples[j].dirty_ratio, b.samples[j].dirty_ratio);
      EXPECT_EQ(a.samples[j].phase, b.samples[j].phase);
    }
    EXPECT_NEAR(a.observed_energy(), b.observed_energy(), 1e-6);
  }
}

TEST(DatasetIo, FitFromReloadedDatasetMatches) {
  const models::Dataset& original = wavm3::testing::fast_campaign_m().dataset;
  const std::string path = ::testing::TempDir() + "/wavm3_dataset2.csv";
  ASSERT_TRUE(models::save_dataset_csv(original, path));
  const models::Dataset loaded = models::load_dataset_csv(path);
  std::remove(path.c_str());

  core::Wavm3Model from_original;
  from_original.fit(original);
  core::Wavm3Model from_loaded;
  from_loaded.fit(loaded);
  const auto& a = from_original.coefficients(migration::MigrationType::kLive).source.transfer;
  const auto& b = from_loaded.coefficients(migration::MigrationType::kLive).source.transfer;
  EXPECT_DOUBLE_EQ(a.alpha, b.alpha);
  EXPECT_DOUBLE_EQ(a.c, b.c);
}

TEST(DatasetIo, MissingFileYieldsEmptyDataset) {
  const models::Dataset d = models::load_dataset_csv("/nonexistent/path.csv");
  EXPECT_EQ(d.size(), 0u);
}

TEST(DatasetIo, LoaderRejectsNonMonotonicSampleTimestamps) {
  // A trace CSV with shuffled rows used to load silently and corrupt
  // every downstream energy integral (negative trapezoid panels); the
  // loader must reject it at the door, naming the observation.
  models::Dataset bad;
  bad.name = "tampered";
  models::MigrationObservation obs;
  obs.experiment = "SHUFFLED";
  obs.run = 1;
  obs.testbed = "t";
  obs.times = {0.0, 1.0, 2.0, 3.0};
  for (const double t : {0.0, 2.0, 1.0, 3.0}) {  // out of order
    models::MigrationSample s;
    s.time = t;
    s.power_watts = 100.0;
    obs.samples.push_back(s);
  }
  EXPECT_FALSE(obs.has_monotonic_timeline());
  bad.observations.push_back(obs);

  const std::string path = ::testing::TempDir() + "/wavm3_dataset_bad.csv";
  ASSERT_TRUE(models::save_dataset_csv(bad, path));
  EXPECT_THROW(models::load_dataset_csv(path), util::ContractError);
  std::remove(path.c_str());

  std::sort(bad.observations[0].samples.begin(), bad.observations[0].samples.end(),
            [](const models::MigrationSample& a, const models::MigrationSample& b) {
              return a.time < b.time;
            });
  EXPECT_TRUE(bad.observations[0].has_monotonic_timeline());
}

TEST(CrossValidate, ProducesStableSlices) {
  const models::Dataset& dataset = wavm3::testing::fast_campaign_m().dataset;
  const auto summaries = models::cross_validate(
      [] { return std::make_unique<core::Wavm3Model>(); }, dataset, 4, 7);
  ASSERT_EQ(summaries.size(), 4u);  // both types x both roles
  for (const auto& s : summaries) {
    EXPECT_EQ(s.folds, 4u);
    EXPECT_GT(s.mean_nrmse, 0.0);
    EXPECT_LT(s.mean_nrmse, 0.15);
    EXPECT_LT(s.stddev_nrmse, s.mean_nrmse);  // folds agree reasonably
  }
}

TEST(CoeffIo, RoundTripsAndPredictsIdentically) {
  const models::Dataset& dataset = wavm3::testing::fast_campaign_m().dataset;
  core::Wavm3Model model;
  model.fit(dataset);
  const std::string path = ::testing::TempDir() + "/wavm3_coeffs.csv";
  ASSERT_TRUE(core::save_coefficients_csv(model, path));
  const core::Wavm3Model loaded = core::load_coefficients_csv(path);
  std::remove(path.c_str());

  ASSERT_TRUE(loaded.is_fitted());
  for (const auto type : {migration::MigrationType::kNonLive, migration::MigrationType::kLive}) {
    const auto& a = model.coefficients(type);
    const auto& b = loaded.coefficients(type);
    EXPECT_DOUBLE_EQ(a.source.transfer.alpha, b.source.transfer.alpha);
    EXPECT_DOUBLE_EQ(a.source.transfer.gamma, b.source.transfer.gamma);
    EXPECT_DOUBLE_EQ(a.target.activation.c, b.target.activation.c);
  }
  const auto& obs = dataset.observations.front();
  EXPECT_DOUBLE_EQ(model.predict_energy(obs), loaded.predict_energy(obs));
}

TEST(CoeffIo, UnfittedModelRejected) {
  const core::Wavm3Model model;
  EXPECT_THROW(core::save_coefficients_csv(model, "/tmp/never.csv"), util::ContractError);
}

TEST(CoeffIo, MissingFileYieldsUnfittedModel) {
  const core::Wavm3Model m = core::load_coefficients_csv("/nonexistent/coeffs.csv");
  EXPECT_FALSE(m.is_fitted());
}

// ---------- Adaptive rate limiting ----------

struct RateWorld {
  sim::Simulator sim;
  cloud::DataCenter dc;
  std::unique_ptr<migration::MigrationEngine> engine;

  explicit RateWorld(bool adaptive) {
    cloud::HostSpec h;
    h.vcpus = 32;
    h.ram_bytes = util::gib(32);
    h.name = "src";
    dc.add_host(h);
    h.name = "tgt";
    dc.add_host(h);
    net::LinkSpec link;
    link.wire_rate = util::gbit_per_s(1);
    dc.network().connect("src", "tgt", link);
    migration::MigrationConfig cfg;
    cfg.adaptive_rate_limit = adaptive;
    engine = std::make_unique<migration::MigrationEngine>(sim, dc, net::BandwidthModel{}, cfg);
  }

  migration::MigrationRecord migrate_mem(double fraction) {
    dc.host("src")->add_vm(cloud::make_migrating_mem_vm("mv", fraction));
    engine->migrate("mv", "src", "tgt", migration::MigrationType::kLive);
    sim.run_to_completion();
    return engine->completed().back();
  }
};

TEST(AdaptiveRate, FirstRoundRunsAtMinRate) {
  RateWorld w(true);
  const auto r = w.migrate_mem(0.35);
  ASSERT_GE(r.rounds.size(), 2u);
  EXPECT_NEAR(r.rounds[0].bandwidth, 100e6 / 8.0, 1.0);
}

TEST(AdaptiveRate, StopAndCopyUnthrottled) {
  RateWorld w(true);
  const auto r = w.migrate_mem(0.35);
  const auto& sc = r.rounds.back();
  ASSERT_TRUE(sc.stop_and_copy);
  EXPECT_GT(sc.bandwidth, 50e6);  // full achievable, not the 12.5 MB/s floor
}

TEST(AdaptiveRate, LengthensTransferVsUnlimited) {
  RateWorld limited(true);
  const double t_limited = limited.migrate_mem(0.35).times.transfer_duration();
  RateWorld unlimited(false);
  const double t_unlimited = unlimited.migrate_mem(0.35).times.transfer_duration();
  EXPECT_GT(t_limited, 1.5 * t_unlimited);
}

TEST(AdaptiveRate, RampsWithObservedDirtyRate) {
  RateWorld w(true);
  const auto r = w.migrate_mem(0.75);
  // Later pre-copy rounds run at (observed dirty rate + 50 Mbit), which
  // exceeds the 100 Mbit opening rate for this hot a dirtier.
  bool ramped = false;
  for (std::size_t i = 1; i + 1 < r.rounds.size(); ++i) {
    if (r.rounds[i].bandwidth > r.rounds[0].bandwidth * 1.2) ramped = true;
  }
  EXPECT_TRUE(ramped);
}

TEST(Toolstacks, XmSlowerThanXl) {
  // Table IIc: the paper ran both xm and xl. The presets reflect their
  // operational difference: xm is slower around the transfer, xl
  // rate-limits the pre-copy.
  const migration::MigrationConfig xm = migration::xm_toolstack_config();
  const migration::MigrationConfig xl = migration::xl_toolstack_config();
  EXPECT_GT(xm.initiation_duration, xl.initiation_duration);
  EXPECT_FALSE(xm.adaptive_rate_limit);
  EXPECT_TRUE(xl.adaptive_rate_limit);

  sim::Simulator sim_xm;
  cloud::DataCenter dc_xm;
  cloud::HostSpec h;
  h.vcpus = 32;
  h.ram_bytes = util::gib(32);
  h.name = "src";
  dc_xm.add_host(h);
  h.name = "tgt";
  dc_xm.add_host(h);
  net::LinkSpec link;
  link.wire_rate = util::gbit_per_s(1);
  dc_xm.network().connect("src", "tgt", link);
  dc_xm.host("src")->add_vm(cloud::make_migrating_cpu_vm("mv"));
  migration::MigrationEngine engine(sim_xm, dc_xm, net::BandwidthModel{}, xm);
  engine.migrate("mv", "src", "tgt", migration::MigrationType::kNonLive);
  sim_xm.run_to_completion();
  EXPECT_NEAR(engine.completed().back().times.initiation_duration(), 4.5, 1e-9);
}

TEST(Compression, HalvesWireTrafficAndTransferTime) {
  const auto run_with_ratio = [](double ratio) {
    sim::Simulator sim;
    cloud::DataCenter dc;
    cloud::HostSpec h;
    h.vcpus = 32;
    h.ram_bytes = util::gib(32);
    h.name = "src";
    dc.add_host(h);
    h.name = "tgt";
    dc.add_host(h);
    net::LinkSpec link;
    link.wire_rate = util::gbit_per_s(1);
    dc.network().connect("src", "tgt", link);
    dc.host("src")->add_vm(cloud::make_migrating_cpu_vm("mv"));
    migration::MigrationConfig cfg;
    cfg.compression_ratio = ratio;
    migration::MigrationEngine engine(sim, dc, net::BandwidthModel{}, cfg);
    engine.migrate("mv", "src", "tgt", migration::MigrationType::kNonLive);
    sim.run_to_completion();
    return engine.completed().back();
  };

  const auto plain = run_with_ratio(1.0);
  const auto squeezed = run_with_ratio(2.0);
  EXPECT_NEAR(squeezed.total_bytes, plain.total_bytes / 2.0, 1e6);
  EXPECT_LT(squeezed.times.transfer_duration(), 0.6 * plain.times.transfer_duration());
  EXPECT_LT(squeezed.downtime, plain.downtime);
}

TEST(AdaptiveRate, NonLiveNeverThrottled) {
  RateWorld w(true);
  w.dc.host("src")->add_vm(cloud::make_migrating_cpu_vm("mv"));
  w.engine->migrate("mv", "src", "tgt", migration::MigrationType::kNonLive);
  w.sim.run_to_completion();
  const auto& r = w.engine->completed().back();
  EXPECT_GT(r.rounds[0].bandwidth, 100e6);  // full speed
}

}  // namespace
}  // namespace wavm3
