// Cross-cutting property suites: invariants that must hold over
// parameter sweeps, not just single examples — hypervisor arbitration,
// host power monotonicity, meter unbiasedness, energy-integration
// linearity, and dcsim SLA accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "cloud/hypervisor.hpp"
#include "dcsim/simulation.hpp"
#include "core/planner.hpp"
#include "core/wavm3_model.hpp"
#include "net/bandwidth_model.hpp"
#include "power/host_power_model.hpp"
#include "power/power_meter.hpp"
#include "sim/simulator.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace wavm3 {
namespace {

// ---------- Hypervisor arbitration ----------

class ArbitrationSweep : public ::testing::TestWithParam<double> {};

TEST_P(ArbitrationSweep, GrantsNeverExceedCapacityAndStayProportional) {
  const double scale = GetParam();
  util::RngStream rng(static_cast<std::uint64_t>(scale * 100));
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> demands;
    const int n = static_cast<int>(rng.uniform_int(1, 12));
    for (int i = 0; i < n; ++i) demands.push_back(rng.uniform(0.0, 4.0) * scale);
    const double capacity = 32.0;
    const auto grants = cloud::Hypervisor::arbitrate(demands, capacity);

    double total_demand = 0.0;
    double total_grant = 0.0;
    for (std::size_t i = 0; i < demands.size(); ++i) {
      EXPECT_GE(grants[i], 0.0);
      EXPECT_LE(grants[i], demands[i] + 1e-12);
      total_demand += demands[i];
      total_grant += grants[i];
    }
    EXPECT_LE(total_grant, capacity + 1e-9);
    if (total_demand <= capacity) {
      EXPECT_NEAR(total_grant, total_demand, 1e-9);
    } else {
      EXPECT_NEAR(total_grant, capacity, 1e-9);
      // Proportionality: grant_i / demand_i constant.
      for (std::size_t i = 0; i < demands.size(); ++i) {
        if (demands[i] > 1e-12) {
          EXPECT_NEAR(grants[i] / demands[i], capacity / total_demand, 1e-9);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(DemandScales, ArbitrationSweep,
                         ::testing::Values(0.2, 1.0, 2.0, 5.0));

// ---------- Host power monotonicity ----------

class PowerMonotonicitySweep : public ::testing::TestWithParam<double> {};

TEST_P(PowerMonotonicitySweep, EveryActivityTermIsMonotone) {
  power::HostPowerParams params;
  params.idle_watts = 200.0 + GetParam() * 100.0;
  params.watts_per_vcpu = 5.0 + GetParam() * 3.0;
  params.fan_watts_full = GetParam() * 30.0;
  const power::HostPowerModel model(params);

  power::HostActivity a;
  a.transfer_active = true;
  double prev = 0.0;
  for (double cpu = 0.0; cpu <= 40.0; cpu += 2.0) {
    a.cpu_used_vcpus = cpu;
    const double p = model.true_power(a);
    EXPECT_GE(p, prev);
    prev = p;
  }
  a.cpu_used_vcpus = 16.0;
  prev = 0.0;
  for (double nic = 0.0; nic <= 130e6; nic += 10e6) {
    a.nic_bytes_per_s = nic;
    const double p = model.true_power(a);
    EXPECT_GE(p, prev);
    prev = p;
  }
  prev = 0.0;
  for (double dr = 0.0; dr <= 1.0; dr += 0.1) {
    a.tracking_dirty_ratio = dr;
    const double p = model.true_power(a);
    EXPECT_GE(p, prev);
    prev = p;
  }
  prev = 0.0;
  for (double mem = 0.0; mem <= 2e9; mem += 2e8) {
    a.mem_dirty_bytes_per_s = mem;
    const double p = model.true_power(a);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

INSTANTIATE_TEST_SUITE_P(MachineClasses, PowerMonotonicitySweep,
                         ::testing::Values(0.0, 0.5, 1.0, 2.0));

// ---------- Meter unbiasedness across accuracy levels ----------

class MeterAccuracySweep : public ::testing::TestWithParam<double> {};

TEST_P(MeterAccuracySweep, ReadingsUnbiasedAndBounded) {
  const double accuracy = GetParam();
  sim::Simulator sim;
  power::MeterSpec spec;
  spec.accuracy_fraction = accuracy;
  power::PowerMeter meter("sweep", spec, [](double) { return 500.0; },
                          util::RngStream(static_cast<std::uint64_t>(accuracy * 1e5) + 3));
  meter.start(sim, 0.0);
  sim.run_until(400.0);
  meter.stop();
  sim.run_to_completion();

  double sum = 0.0;
  double max_err = 0.0;
  for (const auto& s : meter.trace().samples()) {
    sum += s.watts;
    max_err = std::max(max_err, std::abs(s.watts - 500.0));
  }
  const double mean = sum / static_cast<double>(meter.trace().size());
  EXPECT_NEAR(mean, 500.0, 0.5 + accuracy * 500.0 / 10.0);
  // 3-sigma bound with a generous excursion margin.
  EXPECT_LE(max_err, 500.0 * accuracy * 1.8 + 0.2);
}

INSTANTIATE_TEST_SUITE_P(AccuracyLevels, MeterAccuracySweep,
                         ::testing::Values(0.0, 0.003, 0.01, 0.03));

// ---------- Energy integration linearity ----------

TEST(PowerTraceProperties, EnergyIsLinearInPower) {
  util::RngStream rng(17);
  power::PowerTrace a;
  power::PowerTrace b;
  for (int i = 0; i <= 300; ++i) {
    const double t = i * 0.5;
    const double p = rng.uniform(400, 900);
    a.add(t, p);
    b.add(t, 2.5 * p);
  }
  EXPECT_NEAR(b.total_energy(), 2.5 * a.total_energy(), 1e-6);
  EXPECT_NEAR(b.energy_between(10.0, 60.0), 2.5 * a.energy_between(10.0, 60.0), 1e-6);
}

TEST(PowerTraceProperties, EnergyAdditiveOverArbitraryCuts) {
  util::RngStream rng(23);
  power::PowerTrace t;
  for (int i = 0; i <= 400; ++i) t.add(i * 0.5, rng.uniform(400, 900));
  for (int trial = 0; trial < 20; ++trial) {
    const double a = rng.uniform(0.0, 200.0);
    const double c = rng.uniform(a, 200.0);
    const double b = rng.uniform(a, c);
    EXPECT_NEAR(t.energy_between(a, b) + t.energy_between(b, c), t.energy_between(a, c), 1e-6);
  }
}

// ---------- Bandwidth model ----------

class BandwidthParamSweep : public ::testing::TestWithParam<double> {};

TEST_P(BandwidthParamSweep, EfficiencyBoundedAndMonotone) {
  net::BandwidthModelParams params;
  params.min_efficiency = GetParam();
  params.cpu_for_wire_speed = 1.0 + GetParam() * 2.0;
  const net::BandwidthModel model(params);
  double prev = 0.0;
  for (double h = 0.0; h <= 8.0; h += 0.5) {
    const double e = model.endpoint_efficiency(h);
    EXPECT_GE(e, params.min_efficiency - 1e-12);
    EXPECT_LE(e, 1.0 + 1e-12);
    EXPECT_GE(e, prev - 1e-12);
    prev = e;
  }
}

INSTANTIATE_TEST_SUITE_P(Floors, BandwidthParamSweep, ::testing::Values(0.2, 0.5, 0.58, 0.9));

// ---------- dcsim SLA accounting ----------

TEST(DcSimSla, PostCopyPolicyPreservesPerformance) {
  core::Wavm3Model model;
  model.fit(wavm3::testing::fast_campaign_m().dataset);
  const core::MigrationPlanner planner(model);

  const auto run_with = [&](migration::MigrationType type) {
    dcsim::DcSimConfig cfg = dcsim::make_fleet_scenario(3, 4, 11);
    cfg.duration = 2.0 * 3600.0;
    cfg.strategy = dcsim::Strategy::kCostAware;
    cfg.policy.migration_type = type;
    cfg.policy.underload_fraction = 0.45;
    for (auto& vm : cfg.vms) vm.workload.profile = dcsim::LoadProfile::constant(0.1);
    dcsim::DataCenterSimulation sim(cfg, &planner);
    return sim.run();
  };

  const dcsim::DcSimReport live = run_with(migration::MigrationType::kLive);
  const dcsim::DcSimReport post = run_with(migration::MigrationType::kPostCopy);
  ASSERT_GT(live.migrations_executed, 0);
  ASSERT_GT(post.migrations_executed, 0);
  EXPECT_GT(live.mean_migration_performance, 0.5);
  EXPECT_LE(live.mean_migration_performance, 1.0);
  // Post-copy's near-zero downtime shows up as less total downtime.
  EXPECT_LT(post.total_migration_downtime, live.total_migration_downtime + 1e-9);
}

}  // namespace
}  // namespace wavm3
