// Unit tests for the migration engine: phase structure, pre-copy
// dynamics, non-live suspend/resume, bandwidth coupling, degeneration
// under high dirtying ratios, and activity assembly.
#include <gtest/gtest.h>

#include <cmath>

#include "cloud/datacenter.hpp"
#include "cloud/instances.hpp"
#include "migration/engine.hpp"
#include "migration/feature_trace.hpp"
#include "migration/phases.hpp"
#include "net/bandwidth_model.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace wavm3::migration {
namespace {

using cloud::VmState;

cloud::HostSpec host32(const std::string& name) {
  cloud::HostSpec h;
  h.name = name;
  h.vcpus = 32;
  h.ram_bytes = util::gib(32);
  return h;
}

net::LinkSpec gigabit() {
  net::LinkSpec s;
  s.name = "gbe";
  s.wire_rate = util::gbit_per_s(1);
  s.protocol_efficiency = 0.94;
  return s;
}

/// A ready-to-migrate two-host world.
struct World {
  sim::Simulator sim;
  cloud::DataCenter dc;
  cloud::Host* source = nullptr;
  cloud::Host* target = nullptr;
  std::unique_ptr<MigrationEngine> engine;

  explicit World(int source_load_vms = 0, int target_load_vms = 0,
                 MigrationConfig config = {}) {
    source = &dc.add_host(host32("src"));
    target = &dc.add_host(host32("tgt"));
    dc.network().connect("src", "tgt", gigabit());
    for (int i = 0; i < source_load_vms; ++i)
      source->add_vm(cloud::make_load_cpu_vm("sl" + std::to_string(i)));
    for (int i = 0; i < target_load_vms; ++i)
      target->add_vm(cloud::make_load_cpu_vm("tl" + std::to_string(i)));
    engine = std::make_unique<MigrationEngine>(sim, dc, net::BandwidthModel{}, config);
  }

  const MigrationRecord& migrate_cpu(MigrationType type, RunJitter jitter = {}) {
    source->add_vm(cloud::make_migrating_cpu_vm("mv"));
    engine->migrate("mv", "src", "tgt", type, jitter);
    sim.run_to_completion();
    return engine->completed().back();
  }

  const MigrationRecord& migrate_mem(double fraction, RunJitter jitter = {}) {
    source->add_vm(cloud::make_migrating_mem_vm("mv", fraction));
    engine->migrate("mv", "src", "tgt", MigrationType::kLive, jitter);
    sim.run_to_completion();
    return engine->completed().back();
  }
};

TEST(Phases, PhaseAtBoundaries) {
  PhaseTimestamps t;
  t.ms = 10.0;
  t.ts = 13.0;
  t.te = 50.0;
  t.me = 54.0;
  EXPECT_TRUE(t.well_formed());
  EXPECT_EQ(t.phase_at(5.0), MigrationPhase::kNormal);
  EXPECT_EQ(t.phase_at(10.0), MigrationPhase::kInitiation);
  EXPECT_EQ(t.phase_at(13.0), MigrationPhase::kTransfer);
  EXPECT_EQ(t.phase_at(49.9), MigrationPhase::kTransfer);
  EXPECT_EQ(t.phase_at(50.0), MigrationPhase::kActivation);
  EXPECT_EQ(t.phase_at(54.0), MigrationPhase::kActivation);
  EXPECT_EQ(t.phase_at(54.1), MigrationPhase::kNormal);
  EXPECT_DOUBLE_EQ(t.initiation_duration(), 3.0);
  EXPECT_DOUBLE_EQ(t.transfer_duration(), 37.0);
  EXPECT_DOUBLE_EQ(t.activation_duration(), 4.0);
}

TEST(FeatureTraceTest, OrderingAndLookup) {
  FeatureTrace trace;
  for (int i = 0; i < 10; ++i) {
    FeatureSample s;
    s.time = i * 0.5;
    s.cpu_source = i;
    s.phase = i < 5 ? MigrationPhase::kInitiation : MigrationPhase::kTransfer;
    trace.add(s);
  }
  EXPECT_DOUBLE_EQ(trace.at_or_before(1.3).cpu_source, 2.0);
  EXPECT_DOUBLE_EQ(trace.at_or_before(-1.0).cpu_source, 0.0);
  EXPECT_DOUBLE_EQ(trace.at_or_before(100.0).cpu_source, 9.0);
  const FeatureSample mean = trace.phase_mean(MigrationPhase::kTransfer);
  EXPECT_DOUBLE_EQ(mean.cpu_source, 7.0);
  EXPECT_EQ(trace.between(1.0, 2.0).size(), 3u);
  FeatureSample bad;
  bad.time = 0.0;
  EXPECT_THROW(trace.add(bad), util::ContractError);
}

TEST(Engine, NonLiveBasicShape) {
  World w;
  const MigrationRecord& r = w.migrate_cpu(MigrationType::kNonLive);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.times.well_formed());
  EXPECT_EQ(r.type, MigrationType::kNonLive);
  EXPECT_EQ(r.precopy_rounds, 0);
  ASSERT_EQ(r.rounds.size(), 1u);
  EXPECT_TRUE(r.rounds[0].stop_and_copy);
  // Non-live moves exactly the VM memory image.
  EXPECT_DOUBLE_EQ(r.total_bytes, util::gib(4));
  // Downtime spans suspension (at ms) to resume inside activation.
  EXPECT_GT(r.downtime, r.times.transfer_duration());
  EXPECT_FALSE(r.degenerated_to_nonlive);
}

TEST(Engine, NonLiveVmEndsRunningOnTarget) {
  World w;
  w.migrate_cpu(MigrationType::kNonLive);
  EXPECT_FALSE(w.source->has_vm("mv"));
  const cloud::VmPtr vm = w.target->vm("mv");
  ASSERT_NE(vm, nullptr);
  EXPECT_EQ(vm->state(), VmState::kRunning);
}

TEST(Engine, LiveCpuVmConvergesWithFewRounds) {
  World w;
  const MigrationRecord& r = w.migrate_cpu(MigrationType::kLive);
  EXPECT_GE(r.precopy_rounds, 1);
  EXPECT_LE(r.precopy_rounds, 5);
  EXPECT_FALSE(r.degenerated_to_nonlive);
  // Downtime is tiny: the matrixmult VM dirties almost nothing.
  EXPECT_LT(r.downtime, 3.0);
  // Live moves at least the full image plus the dirty rounds.
  EXPECT_GE(r.total_bytes, util::gib(4));
}

TEST(Engine, LiveHighDirtyRatioDegeneratesToNonLive) {
  World w;
  const MigrationRecord& r = w.migrate_mem(0.95);
  EXPECT_TRUE(r.degenerated_to_nonlive);
  // The traffic cap bounds total data at 3x memory plus the final copy.
  EXPECT_GT(r.total_bytes, 2.0 * util::gib(4));
  EXPECT_LE(r.total_bytes, 4.1 * util::gib(4));
  // Long suspension tail: the stop-and-copy round is large.
  EXPECT_GT(r.downtime, 5.0);
}

TEST(Engine, TransferGrowsWithDirtyFraction) {
  World w5;
  const double t5 = w5.migrate_mem(0.05).times.transfer_duration();
  World w55;
  const double t55 = w55.migrate_mem(0.55).times.transfer_duration();
  World w95;
  const double t95 = w95.migrate_mem(0.95).times.transfer_duration();
  EXPECT_LT(t5, t55);
  EXPECT_LT(t55, t95);
}

TEST(Engine, DowntimeGrowsWithDirtyFraction) {
  World w5;
  const double d5 = w5.migrate_mem(0.05).downtime;
  World w95;
  const double d95 = w95.migrate_mem(0.95).downtime;
  EXPECT_LT(d5, d95);
}

TEST(Engine, SourceLoadReducesBandwidth) {
  World idle;
  const MigrationRecord& r_idle = idle.migrate_cpu(MigrationType::kNonLive);
  World loaded(8, 0);  // 8 load VMs saturate the source
  const MigrationRecord& r_loaded = loaded.migrate_cpu(MigrationType::kNonLive);
  EXPECT_GT(r_loaded.times.transfer_duration(), 1.2 * r_idle.times.transfer_duration());
  EXPECT_LT(r_loaded.rounds[0].bandwidth, r_idle.rounds[0].bandwidth);
}

TEST(Engine, LiveSlowerThanNonLiveUnderFullSourceLoad) {
  // With 7 load VMs the host is exactly full only while the migrating
  // VM also runs, so live migration sees less bandwidth than non-live
  // (whose VM is suspended at initiation) - the SVI-A observation.
  World live_world(7, 0);
  const MigrationRecord& r_live = live_world.migrate_cpu(MigrationType::kLive);
  World nonlive_world(7, 0);
  const MigrationRecord& r_nonlive = nonlive_world.migrate_cpu(MigrationType::kNonLive);
  EXPECT_LT(r_live.rounds[0].bandwidth, r_nonlive.rounds[0].bandwidth);
}

TEST(Engine, TargetLoadAlsoThrottles) {
  World idle;
  const MigrationRecord& r_idle = idle.migrate_cpu(MigrationType::kNonLive);
  World loaded(0, 8);
  const MigrationRecord& r_loaded = loaded.migrate_cpu(MigrationType::kNonLive);
  EXPECT_LT(r_loaded.rounds[0].bandwidth, r_idle.rounds[0].bandwidth);
}

TEST(Engine, JitterScalesInitiation) {
  World a;
  RunJitter slow;
  slow.initiation_factor = 1.5;
  const MigrationRecord& r_slow = a.migrate_cpu(MigrationType::kNonLive, slow);
  World b;
  RunJitter fast;
  fast.initiation_factor = 0.5;
  const MigrationRecord& r_fast = b.migrate_cpu(MigrationType::kNonLive, fast);
  EXPECT_NEAR(r_slow.times.initiation_duration() / r_fast.times.initiation_duration(), 3.0,
              1e-6);
}

TEST(Engine, JitterScalesBandwidth) {
  World a;
  RunJitter strong;
  strong.bandwidth_factor = 0.8;
  const MigrationRecord& r = a.migrate_cpu(MigrationType::kNonLive, strong);
  World b;
  const MigrationRecord& r_ref = b.migrate_cpu(MigrationType::kNonLive);
  EXPECT_NEAR(r.rounds[0].bandwidth / r_ref.rounds[0].bandwidth, 0.8, 1e-6);
}

TEST(Engine, PhaseReportingDuringRun) {
  World w;
  w.source->add_vm(cloud::make_migrating_cpu_vm("mv"));
  EXPECT_EQ(w.engine->current_phase(), MigrationPhase::kNormal);
  w.engine->migrate("mv", "src", "tgt", MigrationType::kLive);

  std::vector<MigrationPhase> seen;
  w.sim.schedule_periodic(0.25, 0.5, [&] {
    if (w.engine->migration_active()) seen.push_back(w.engine->current_phase());
  });
  // Run until the migration finishes, then drain the sampler.
  while (w.engine->migration_active()) w.sim.step();
  EXPECT_EQ(w.engine->current_phase(), MigrationPhase::kNormal);

  ASSERT_FALSE(seen.empty());
  EXPECT_EQ(seen.front(), MigrationPhase::kInitiation);
  bool saw_transfer = false;
  bool saw_activation = false;
  for (const auto p : seen) {
    saw_transfer |= p == MigrationPhase::kTransfer;
    saw_activation |= p == MigrationPhase::kActivation;
  }
  EXPECT_TRUE(saw_transfer);
  EXPECT_TRUE(saw_activation);
}

TEST(Engine, DirtyRatioPositiveOnlyDuringLiveTransfer) {
  World w;
  w.source->add_vm(cloud::make_migrating_mem_vm("mv", 0.95));
  w.engine->migrate("mv", "src", "tgt", MigrationType::kLive);

  double max_dr_transfer = 0.0;
  double max_dr_other = 0.0;
  w.sim.schedule_periodic(0.25, 0.5, [&] {
    if (!w.engine->migration_active()) return;
    const double dr = w.engine->current_dirty_ratio();
    if (w.engine->current_phase() == MigrationPhase::kTransfer) {
      max_dr_transfer = std::max(max_dr_transfer, dr);
    } else {
      max_dr_other = std::max(max_dr_other, dr);
    }
  });
  while (w.engine->migration_active()) w.sim.step();
  EXPECT_GT(max_dr_transfer, 0.05);
  EXPECT_DOUBLE_EQ(max_dr_other, 0.0);
}

TEST(Engine, NonLiveDirtyRatioAlwaysZero) {
  World w;
  w.source->add_vm(cloud::make_migrating_mem_vm("mv", 0.95));
  w.engine->migrate("mv", "src", "tgt", MigrationType::kNonLive);
  double max_dr = 0.0;
  w.sim.schedule_periodic(0.25, 0.5, [&] {
    max_dr = std::max(max_dr, w.engine->current_dirty_ratio());
  });
  while (w.engine->migration_active()) w.sim.step();
  EXPECT_DOUBLE_EQ(max_dr, 0.0);
}

TEST(Engine, ActivityAssemblyDuringTransfer) {
  World w;
  w.source->add_vm(cloud::make_migrating_mem_vm("mv", 0.95));
  w.engine->migrate("mv", "src", "tgt", MigrationType::kLive);

  bool checked = false;
  w.sim.schedule_periodic(0.25, 0.5, [&] {
    if (checked || !w.engine->migration_active()) return;
    if (w.engine->current_phase() != MigrationPhase::kTransfer) return;
    if (w.dc.host("src")->vm("mv") == nullptr ||
        w.dc.host("src")->vm("mv")->state() != VmState::kRunning) {
      return;  // wait for a pre-copy round with the VM running
    }
    const power::HostActivity src = w.engine->activity_of(*w.source);
    const power::HostActivity tgt = w.engine->activity_of(*w.target);
    EXPECT_TRUE(src.transfer_active);
    EXPECT_TRUE(tgt.transfer_active);
    EXPECT_GT(src.nic_bytes_per_s, 1e6);
    EXPECT_DOUBLE_EQ(src.nic_bytes_per_s, tgt.nic_bytes_per_s);
    EXPECT_GT(src.tracking_dirty_ratio, 0.0);      // shadow paging on source
    EXPECT_DOUBLE_EQ(tgt.tracking_dirty_ratio, 0.0);
    EXPECT_GT(src.mem_dirty_bytes_per_s, 1e8);     // the dirtier's write traffic
    checked = true;
  });
  while (w.engine->migration_active()) w.sim.step();
  EXPECT_TRUE(checked);
}

TEST(Engine, ActivityQuietOutsideMigration) {
  World w(2, 0);
  const power::HostActivity a = w.engine->activity_of(*w.source);
  EXPECT_FALSE(a.transfer_active);
  EXPECT_DOUBLE_EQ(a.nic_bytes_per_s, 0.0);
  EXPECT_DOUBLE_EQ(a.tracking_dirty_ratio, 0.0);
  EXPECT_GT(a.cpu_used_vcpus, 8.0);  // two load VMs + dom0
}

TEST(Engine, RejectsInvalidRequests) {
  World w;
  w.source->add_vm(cloud::make_migrating_cpu_vm("mv"));
  EXPECT_THROW(w.engine->migrate("missing", "src", "tgt", MigrationType::kLive),
               util::ContractError);
  EXPECT_THROW(w.engine->migrate("mv", "src", "src", MigrationType::kLive),
               util::ContractError);
  EXPECT_THROW(w.engine->migrate("mv", "nope", "tgt", MigrationType::kLive),
               util::ContractError);
  w.engine->migrate("mv", "src", "tgt", MigrationType::kLive);
  EXPECT_THROW(w.engine->migrate("mv", "src", "tgt", MigrationType::kLive),
               util::ContractError);  // already in flight
}

TEST(Engine, RejectsHeterogeneousArchitectures) {
  // Paper SI: Xen prevents migration between incompatible architectures.
  sim::Simulator sim;
  cloud::DataCenter dc;
  cloud::HostSpec a = host32("src");
  a.cpu_architecture = "x86_64";
  cloud::HostSpec b = host32("tgt");
  b.cpu_architecture = "aarch64";
  dc.add_host(a);
  dc.add_host(b);
  dc.network().connect("src", "tgt", gigabit());
  dc.host("src")->add_vm(cloud::make_migrating_cpu_vm("mv"));
  MigrationEngine engine(sim, dc, net::BandwidthModel{});
  EXPECT_THROW(engine.migrate("mv", "src", "tgt", MigrationType::kLive),
               util::ContractError);
}

TEST(Engine, PerformanceAccountingNonLiveNearZero) {
  // Suspended from ms to the activation resume: almost no useful work.
  World w;
  const MigrationRecord& r = w.migrate_cpu(MigrationType::kNonLive);
  EXPECT_LT(r.vm_mean_performance, 0.10);
  EXPECT_GE(r.vm_mean_performance, 0.0);
}

TEST(Engine, PerformanceAccountingLiveNearFull) {
  // A CPU-bound VM on an idle host runs essentially unimpeded; only the
  // short stop-and-copy and the activation gap cost anything.
  World w;
  const MigrationRecord& r = w.migrate_cpu(MigrationType::kLive);
  EXPECT_GT(r.vm_mean_performance, 0.80);
  EXPECT_LE(r.vm_mean_performance, 1.0);
}

TEST(Engine, PerformanceDegradedUnderMultiplexing) {
  World idle;
  const double p_idle = idle.migrate_cpu(MigrationType::kLive).vm_mean_performance;
  World loaded(8, 0);
  const double p_loaded = loaded.migrate_cpu(MigrationType::kLive).vm_mean_performance;
  EXPECT_LT(p_loaded, p_idle - 0.05);
}

TEST(Engine, PerformanceOrderingAcrossFlavours) {
  // Post-copy > live pre-copy > non-live for a memory-hot VM.
  World post;
  post.source->add_vm(cloud::make_migrating_mem_vm("mv", 0.95));
  post.engine->migrate("mv", "src", "tgt", MigrationType::kPostCopy);
  post.sim.run_to_completion();
  const double p_post = post.engine->completed().back().vm_mean_performance;

  World live;
  const double p_live = live.migrate_mem(0.95).vm_mean_performance;

  World nonlive;
  nonlive.source->add_vm(cloud::make_migrating_mem_vm("mv", 0.95));
  nonlive.engine->migrate("mv", "src", "tgt", MigrationType::kNonLive);
  nonlive.sim.run_to_completion();
  const double p_nonlive = nonlive.engine->completed().back().vm_mean_performance;

  EXPECT_GT(p_post, p_live);
  EXPECT_GT(p_live, p_nonlive);
}

TEST(Engine, CompletionCallbackFiresWithRecord) {
  World w;
  w.source->add_vm(cloud::make_migrating_cpu_vm("mv"));
  bool fired = false;
  w.engine->migrate("mv", "src", "tgt", MigrationType::kLive, {},
                    [&](const MigrationRecord& r) {
                      fired = true;
                      EXPECT_TRUE(r.completed);
                      EXPECT_EQ(r.vm_id, "mv");
                    });
  w.sim.run_to_completion();
  EXPECT_TRUE(fired);
  EXPECT_EQ(w.engine->completed().size(), 1u);
}

TEST(Engine, BackToBackMigrationsSupported) {
  World w;
  w.source->add_vm(cloud::make_migrating_cpu_vm("mv"));
  w.engine->migrate("mv", "src", "tgt", MigrationType::kLive);
  w.sim.run_to_completion();
  // Migrate it back.
  w.engine->migrate("mv", "tgt", "src", MigrationType::kNonLive);
  w.sim.run_to_completion();
  EXPECT_EQ(w.engine->completed().size(), 2u);
  EXPECT_TRUE(w.source->has_vm("mv"));
  EXPECT_EQ(w.source->vm("mv")->state(), VmState::kRunning);
}

TEST(Engine, QueueedMigrationsRunInOrder) {
  World w;
  for (int i = 0; i < 3; ++i)
    w.source->add_vm(cloud::make_migrating_cpu_vm("mv" + std::to_string(i)));
  std::vector<std::string> completed_order;
  for (int i = 0; i < 3; ++i) {
    w.engine->enqueue_migrate("mv" + std::to_string(i), "src", "tgt", MigrationType::kLive, {},
                              [&](const MigrationRecord& r) {
                                completed_order.push_back(r.vm_id);
                              });
  }
  EXPECT_TRUE(w.engine->migration_active());
  EXPECT_EQ(w.engine->queued_migrations(), 2u);
  w.sim.run_to_completion();
  ASSERT_EQ(completed_order.size(), 3u);
  EXPECT_EQ(completed_order[0], "mv0");
  EXPECT_EQ(completed_order[1], "mv1");
  EXPECT_EQ(completed_order[2], "mv2");
  EXPECT_EQ(w.target->vm_count(), 3u);
  // Migrations did not overlap: each starts after the previous me.
  const auto& records = w.engine->completed();
  for (std::size_t i = 1; i < records.size(); ++i)
    EXPECT_GE(records[i].times.ms, records[i - 1].times.me - 1e-9);
}

TEST(Engine, QueueSkipsStaleRequests) {
  World w;
  w.source->add_vm(cloud::make_migrating_cpu_vm("mv0"));
  w.source->add_vm(cloud::make_migrating_cpu_vm("mv1"));
  w.engine->enqueue_migrate("mv0", "src", "tgt", MigrationType::kLive);
  // Queue a request that will be stale by the time it runs: mv1 gets
  // stopped while mv0 is still migrating.
  w.engine->enqueue_migrate("mv1", "src", "tgt", MigrationType::kLive);
  w.source->vm("mv1")->stop();
  w.sim.run_to_completion();
  EXPECT_EQ(w.engine->completed().size(), 1u);  // stale request skipped
  EXPECT_EQ(w.engine->queued_migrations(), 0u);
}

TEST(Engine, LinkAccountingMatchesRecord) {
  World w;
  const MigrationRecord& r = w.migrate_cpu(MigrationType::kLive);
  const net::Link* link = w.dc.network().link_between("src", "tgt");
  EXPECT_DOUBLE_EQ(link->total_bytes(), r.total_bytes);
}

// Property sweep: phase ordering and data conservation across dirty
// fractions and migration types.
class EngineSweep : public ::testing::TestWithParam<double> {};

TEST_P(EngineSweep, InvariantsHold) {
  World w;
  const MigrationRecord& r = w.migrate_mem(GetParam());
  EXPECT_TRUE(r.times.well_formed());
  EXPECT_GE(r.total_bytes, util::gib(4));             // at least one full pass
  EXPECT_LE(r.total_bytes, 4.1 * util::gib(4));       // bounded by the traffic cap
  EXPECT_GT(r.downtime, 0.0);
  EXPECT_LE(r.times.initiation_duration(), 5.0);
  for (std::size_t i = 1; i < r.rounds.size(); ++i)
    EXPECT_GE(r.rounds[i].start, r.rounds[i - 1].start);
  EXPECT_TRUE(r.rounds.back().stop_and_copy);
}

INSTANTIATE_TEST_SUITE_P(DirtyFractions, EngineSweep,
                         ::testing::Values(0.05, 0.15, 0.35, 0.55, 0.75, 0.95));

}  // namespace
}  // namespace wavm3::migration
