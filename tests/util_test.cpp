// Unit tests for the util substrate: units, RNG determinism, CSV,
// tables, charts, string formatting, and contract checks.
#include <gtest/gtest.h>

#include <sstream>

#include "util/ascii_chart.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace wavm3::util {
namespace {

TEST(Units, ByteHelpers) {
  EXPECT_DOUBLE_EQ(kib(1), 1024.0);
  EXPECT_DOUBLE_EQ(mib(1), 1024.0 * 1024.0);
  EXPECT_DOUBLE_EQ(gib(4), 4.0 * 1024 * 1024 * 1024);
}

TEST(Units, NetworkRates) {
  EXPECT_DOUBLE_EQ(gbit_per_s(1), 125e6);
  EXPECT_DOUBLE_EQ(mbit_per_s(100), 12.5e6);
}

TEST(Units, PageMath) {
  EXPECT_EQ(pages_for_bytes(4096.0), 1u);
  EXPECT_EQ(pages_for_bytes(4097.0), 2u);
  EXPECT_EQ(pages_for_bytes(gib(4)), (4ULL << 30) / 4096);
  EXPECT_DOUBLE_EQ(bytes_for_pages(2), 8192.0);
}

TEST(Units, EnergyAndTime) {
  EXPECT_DOUBLE_EQ(kilojoules(2.5), 2500.0);
  EXPECT_DOUBLE_EQ(to_kilojoules(2500.0), 2.5);
  EXPECT_DOUBLE_EQ(milliseconds(500), 0.5);
  EXPECT_DOUBLE_EQ(minutes(2), 120.0);
}

TEST(Rng, SameSeedSameSequence) {
  RngStream a(42);
  RngStream b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentKeysDecorrelated) {
  RngFactory f(7);
  RngStream a = f.stream("meter/a");
  RngStream b = f.stream("meter/b");
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform() == b.uniform()) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(Rng, FactoryIsDeterministicAcrossInstances) {
  RngFactory f1(99);
  RngFactory f2(99);
  EXPECT_DOUBLE_EQ(f1.stream("x").uniform(), f2.stream("x").uniform());
}

TEST(Rng, GaussianMatchesMoments) {
  RngStream r(5);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = r.gaussian(10.0, 2.0);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(Rng, GaussianZeroStddevIsDegenerate) {
  RngStream r(1);
  EXPECT_DOUBLE_EQ(r.gaussian(3.0, 0.0), 3.0);
}

TEST(Rng, UniformIntInRange) {
  RngStream r(11);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
  }
}

TEST(Strings, Format) {
  EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_percent(0.118, 1), "11.8%");
}

TEST(Strings, SplitJoin) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(join({"a", "b", "c"}, "/"), "a/b/c");
}

TEST(Csv, WritesHeaderAndRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"a", "b"});
  csv.row({1.0, 2.5});
  csv.row_text({"x,y", "plain"});
  const std::string s = out.str();
  EXPECT_NE(s.find("a,b\n"), std::string::npos);
  EXPECT_NE(s.find("1,2.5\n"), std::string::npos);
  EXPECT_NE(s.find("\"x,y\",plain\n"), std::string::npos);
  EXPECT_EQ(csv.rows_written(), 2u);
}

TEST(Csv, HeaderTwiceThrows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"a"});
  EXPECT_THROW(csv.header({"b"}), ContractError);
}

TEST(Table, RendersAllCells) {
  AsciiTable t({"Model", "NRMSE"});
  t.add_row({"WAVM3", "11.8%"});
  t.add_separator();
  t.add_row({"HUANG", "15.7%"});
  const std::string s = t.render();
  EXPECT_NE(s.find("WAVM3"), std::string::npos);
  EXPECT_NE(s.find("11.8%"), std::string::npos);
  EXPECT_NE(s.find("HUANG"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  AsciiTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractError);
}

TEST(Chart, RendersSeriesAndLegend) {
  ChartSeries s;
  s.name = "power";
  for (int i = 0; i < 50; ++i) {
    s.x.push_back(i);
    s.y.push_back(400.0 + i);
  }
  ChartOptions opts;
  opts.x_label = "TIME";
  opts.y_label = "POWER";
  const std::string out = render_ascii_chart({s}, opts);
  EXPECT_NE(out.find("legend:"), std::string::npos);
  EXPECT_NE(out.find("power"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(Chart, EmptyInputHandled) {
  const std::string out = render_ascii_chart({}, ChartOptions{});
  EXPECT_EQ(out, "(empty chart)\n");
}

TEST(Error, RequireMacroCarriesMessage) {
  try {
    WAVM3_REQUIRE(1 == 2, "custom detail");
    FAIL() << "should have thrown";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("custom detail"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace wavm3::util
