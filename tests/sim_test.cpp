// Unit tests for the discrete-event simulation core: ordering,
// cancellation, periodic tasks, determinism.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"
#include "util/error.hpp"

namespace wavm3::sim {
namespace {

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
  sim.run_to_completion();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ScheduleInUsesCurrentTime) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(2.0, [&] { sim.schedule_in(1.5, [&] { fired_at = sim.now(); }); });
  sim.run_to_completion();
  EXPECT_DOUBLE_EQ(fired_at, 3.5);
}

TEST(Simulator, CannotScheduleIntoPast) {
  Simulator sim;
  sim.schedule_at(1.0, [] {});
  sim.run_to_completion();
  EXPECT_THROW(sim.schedule_at(0.5, [] {}), util::ContractError);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.is_pending(id));
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.is_pending(id));
  EXPECT_FALSE(sim.cancel(id));  // second cancel is a no-op
  sim.run_to_completion();
  EXPECT_FALSE(fired);
}

TEST(Simulator, PendingCountTracksLifecycle) {
  Simulator sim;
  const EventId a = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_to_completion();
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.executed_events(), 1u);
}

TEST(Simulator, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  std::vector<double> fired;
  for (int i = 1; i <= 5; ++i)
    sim.schedule_at(static_cast<double>(i), [&fired, &sim] { fired.push_back(sim.now()); });
  sim.run_until(3.0);
  EXPECT_EQ(fired.size(), 3u);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  sim.run_until(10.0);
  EXPECT_EQ(fired.size(), 5u);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulator, PeriodicFiresAtFixedCadence) {
  Simulator sim;
  std::vector<double> ticks;
  auto handle = sim.schedule_periodic(0.0, 0.5, [&] { ticks.push_back(sim.now()); });
  sim.schedule_at(2.6, [&handle] { handle.cancel(); });
  sim.run_to_completion();
  ASSERT_EQ(ticks.size(), 6u);  // 0, 0.5, 1, 1.5, 2, 2.5
  for (std::size_t i = 0; i < ticks.size(); ++i)
    EXPECT_DOUBLE_EQ(ticks[i], 0.5 * static_cast<double>(i));
}

TEST(Simulator, PeriodicCancelFromInsideCallback) {
  Simulator sim;
  int count = 0;
  Simulator::PeriodicHandle handle;
  handle = sim.schedule_periodic(0.0, 1.0, [&] {
    if (++count == 3) handle.cancel();
  });
  sim.run_to_completion();
  EXPECT_EQ(count, 3);
}

TEST(Simulator, RunToCompletionCapsRunaway) {
  Simulator sim;
  sim.schedule_periodic(0.0, 0.001, [] {});  // never cancelled
  EXPECT_THROW(sim.run_to_completion(1000), util::ContractError);
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 50) sim.schedule_in(0.1, recurse);
  };
  sim.schedule_at(0.0, recurse);
  sim.run_to_completion();
  EXPECT_EQ(depth, 50);
  EXPECT_NEAR(sim.now(), 4.9, 1e-9);
}

}  // namespace
}  // namespace wavm3::sim
