// src/plan/: fleet model, workload-cycle detection, batched candidate
// scoring, and wave planning with the bundled placement strategies.
#include <cmath>
#include <map>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "plan/cycle_detector.hpp"
#include "plan/fleet.hpp"
#include "plan/planner.hpp"
#include "plan/scoring.hpp"
#include "plan/strategy.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace wavm3::plan {
namespace {

using migration::MigrationType;

// ---------------------------------------------------------------- cycles

std::pair<std::vector<double>, std::vector<double>> sampled_signal(
    double period, double span, double dt, double noise_amp, unsigned seed,
    double phase = 0.0) {
  std::vector<double> t;
  std::vector<double> y;
  unsigned state = seed * 2654435761u + 1u;
  const auto jitter = [&] {
    state = state * 1664525u + 1013904223u;
    return (static_cast<double>(state >> 8) / static_cast<double>(1u << 24) - 0.5) * 2.0;
  };
  for (double x = 0.0; x <= span; x += dt) {
    t.push_back(x);
    const double base = 0.5 * (1.0 - std::cos(2.0 * M_PI * (x + phase) / period));
    y.push_back(1000.0 + 9000.0 * base + noise_amp * jitter());
  }
  return {t, y};
}

TEST(CycleDetector, FindsPlantedPeriod) {
  const double period = 7200.0;
  const auto [t, y] = sampled_signal(period, 4 * period, 60.0, 0.0, 7);
  const CycleEstimate e = CycleDetector().analyze(t, y);
  ASSERT_TRUE(e.periodic);
  EXPECT_NEAR(e.period_s, period, 0.05 * period);
  EXPECT_GT(e.confidence, 0.8);
  EXPECT_GT(e.overall_mean, 0.0);
}

TEST(CycleDetector, LowWindowSitsAtTheSignalMinimum) {
  const double period = 7200.0;
  // Signal minima at x + phase = k * period.
  const double phase = 1800.0;
  const auto [t, y] = sampled_signal(period, 4 * period, 60.0, 0.0, 11, phase);
  const CycleEstimate e = CycleDetector().analyze(t, y);
  ASSERT_TRUE(e.periodic);
  // The low window's midpoint lands near a minimum (mod period).
  const double mid = e.low_anchor_s + 0.5 * e.low_duration_s + phase;
  const double frac = mid / e.period_s - std::floor(mid / e.period_s);
  const double dist = std::min(frac, 1.0 - frac);
  EXPECT_LT(dist, 0.15);
  // Migrating inside the window sees far less dirtying than average.
  EXPECT_LT(e.low_mean, 0.5 * e.overall_mean);
  EXPECT_GT(e.low_duration_s, 0.0);
}

TEST(CycleDetector, SurvivesNoise) {
  const double period = 5400.0;
  const auto [t, y] = sampled_signal(period, 5 * period, 90.0, 900.0, 3);
  const CycleEstimate e = CycleDetector().analyze(t, y);
  ASSERT_TRUE(e.periodic);
  EXPECT_NEAR(e.period_s, period, 0.1 * period);
}

TEST(CycleDetector, RejectsAperiodicNoise) {
  std::vector<double> t;
  std::vector<double> y;
  unsigned state = 99u;
  for (double x = 0.0; x <= 4 * 7200.0; x += 60.0) {
    state = state * 1664525u + 1013904223u;
    t.push_back(x);
    y.push_back(5000.0 + static_cast<double>(state >> 20));
  }
  const CycleEstimate e = CycleDetector().analyze(t, y);
  EXPECT_FALSE(e.periodic);
  EXPECT_GT(e.overall_mean, 0.0);
}

TEST(CycleDetector, RejectsFlatAndDegenerateTraces) {
  std::vector<double> t;
  std::vector<double> y;
  for (double x = 0.0; x <= 4 * 7200.0; x += 60.0) {
    t.push_back(x);
    y.push_back(4321.0);
  }
  const CycleEstimate flat = CycleDetector().analyze(t, y);
  EXPECT_FALSE(flat.periodic);
  EXPECT_DOUBLE_EQ(flat.overall_mean, 4321.0);

  // Too short to support any period.
  const std::vector<double> t3 = {0.0, 60.0, 120.0};
  const std::vector<double> y3 = {1.0, 2.0, 3.0};
  EXPECT_FALSE(CycleDetector().analyze(t3, y3).periodic);
  EXPECT_FALSE(CycleDetector().analyze({}, {}).periodic);
}

TEST(CycleDetector, NextLowWindowStartRepeatsEveryPeriod) {
  CycleEstimate e;
  e.periodic = true;
  e.period_s = 100.0;
  e.low_anchor_s = 30.0;
  e.low_duration_s = 10.0;
  EXPECT_DOUBLE_EQ(CycleDetector::next_low_window_start(e, 0.0), 30.0);
  EXPECT_DOUBLE_EQ(CycleDetector::next_low_window_start(e, 30.0), 30.0);
  EXPECT_DOUBLE_EQ(CycleDetector::next_low_window_start(e, 31.0), 130.0);
  EXPECT_DOUBLE_EQ(CycleDetector::next_low_window_start(e, 635.0), 730.0);
  CycleEstimate aperiodic;
  EXPECT_THROW(CycleDetector::next_low_window_start(aperiodic, 0.0), util::ContractError);
}

// ----------------------------------------------------------------- fleet

TEST(Fleet, SyntheticInvariantsHold) {
  const Fleet fleet = Fleet::synthetic(40, 200, 17);
  EXPECT_EQ(fleet.host_count(), 40u);
  EXPECT_EQ(fleet.vm_count(), 200u);
  double committed_total = 0.0;
  for (std::size_t h = 0; h < fleet.host_count(); ++h) {
    const FleetHost& host = fleet.host(static_cast<int>(h));
    double cpu = 0.0;
    double ram = 0.0;
    for (const int v : host.vms) {
      EXPECT_EQ(fleet.vm(v).host, static_cast<int>(h));
      cpu += fleet.vm(v).cpu_now;
      ram += fleet.vm(v).ram_bytes;
    }
    EXPECT_NEAR(host.cpu_load, cpu, 1e-9);
    EXPECT_NEAR(host.ram_committed, ram, 1.0);
    EXPECT_LE(host.ram_committed, host.spec.ram_bytes);
    EXPECT_FALSE(host.spec.group.empty());
    committed_total += ram;
  }
  EXPECT_GT(committed_total, 0.0);
  // Histories exist and drive cycle detection for the periodic share.
  int periodic = 0;
  const CycleDetector detector;
  for (std::size_t v = 0; v < fleet.vm_count(); ++v) {
    const VmHistory& hist = fleet.vm(static_cast<int>(v)).history;
    ASSERT_FALSE(hist.empty());
    if (detector.analyze(hist.t, hist.dirty).periodic) ++periodic;
  }
  // periodic_fraction defaults to 0.7; allow detection slack.
  EXPECT_GT(periodic, static_cast<int>(fleet.vm_count()) / 2);
}

TEST(Fleet, HostLookupAndMoveAccounting) {
  Fleet fleet = Fleet::synthetic(8, 30, 5);
  EXPECT_EQ(fleet.host_index(fleet.host(3).spec.name), 3);
  EXPECT_EQ(fleet.host_index("no-such-host"), -1);

  const int v = fleet.host(0).vms.front();
  const double cpu = fleet.vm(v).cpu_now;
  const double ram = fleet.vm(v).ram_bytes;
  const double src_cpu = fleet.host(0).cpu_load;
  const double dst_cpu = fleet.host(1).cpu_load;
  fleet.move_vm(v, 1);
  EXPECT_EQ(fleet.vm(v).host, 1);
  EXPECT_NEAR(fleet.host(0).cpu_load, src_cpu - cpu, 1e-9);
  EXPECT_NEAR(fleet.host(1).cpu_load, dst_cpu + cpu, 1e-9);
  EXPECT_GE(fleet.host(1).ram_committed, ram);
}

TEST(Fleet, CsvRoundTripAndValidation) {
  std::istringstream hosts(
      "name,vcpus,ram_gib,nic_gbit,group,max_migrations\n"
      "alpha,32,64,10,rackA,2\n"
      "beta,16,32,1,rackB,1\n");
  std::istringstream vms(
      "id,host,vcpus,ram_gib,cpu_vcpus,dirty_pages_per_s,working_set_pages\n"
      "web01,alpha,4,8,2.5,12000,250000\n"
      "db01,beta,8,16,6.0,30000,800000\n");
  const Fleet fleet = Fleet::from_csv(hosts, vms);
  ASSERT_EQ(fleet.host_count(), 2u);
  ASSERT_EQ(fleet.vm_count(), 2u);
  EXPECT_EQ(fleet.host(0).spec.name, "alpha");
  EXPECT_EQ(fleet.host(0).spec.max_concurrent_migrations, 2);
  EXPECT_NEAR(fleet.host(0).spec.nic_rate, 10.0 * 125e6, 1e6);
  EXPECT_EQ(fleet.host(0).spec.group, "rackA");
  EXPECT_EQ(fleet.vm(0).host, 0);
  EXPECT_NEAR(fleet.vm(0).ram_bytes, util::gib(8.0), 1.0);
  EXPECT_DOUBLE_EQ(fleet.vm(0).cpu_now, 2.5);
  EXPECT_EQ(fleet.vm(1).working_set_pages, 800000u);

  std::istringstream bad_header("name,vcpus\nx,1\n");
  std::istringstream no_vms(
      "id,host,vcpus,ram_gib,cpu_vcpus,dirty_pages_per_s,working_set_pages\n");
  EXPECT_THROW(Fleet::from_csv(bad_header, no_vms), util::ContractError);

  std::istringstream ok_hosts(
      "name,vcpus,ram_gib,nic_gbit,group,max_migrations\n"
      "alpha,32,64,10,rackA,2\n");
  std::istringstream unknown_host(
      "id,host,vcpus,ram_gib,cpu_vcpus,dirty_pages_per_s,working_set_pages\n"
      "web01,missing,4,8,2.5,12000,250000\n");
  EXPECT_THROW(Fleet::from_csv(ok_hosts, unknown_host), util::ContractError);
}

TEST(Fleet, CsvRejectsMalformedSpecs) {
  const std::string host_header =
      "name,vcpus,ram_gib,nic_gbit,group,max_migrations\n";
  const std::string good_host = "alpha,32,64,10,rackA,2\n";
  const std::string vm_header =
      "id,host,vcpus,ram_gib,cpu_vcpus,dirty_pages_per_s,working_set_pages\n";
  const std::string good_vm = "web01,alpha,4,8,2.5,12000,250000\n";

  const auto expect_host_rejected = [&](const std::string& row) {
    std::istringstream hosts(host_header + row);
    std::istringstream vms(vm_header + good_vm);
    EXPECT_THROW(Fleet::from_csv(hosts, vms), util::ContractError) << row;
  };
  const auto expect_vm_rejected = [&](const std::string& rows) {
    std::istringstream hosts(host_header + good_host);
    std::istringstream vms(vm_header + rows);
    EXPECT_THROW(Fleet::from_csv(hosts, vms), util::ContractError) << rows;
  };

  // Host rows: non-finite and non-positive capacities must not survive
  // into a Fleet where they would poison utilisation and fit checks.
  expect_host_rejected("alpha,nan,64,10,rackA,2\n");
  expect_host_rejected("alpha,0,64,10,rackA,2\n");
  expect_host_rejected("alpha,-8,64,10,rackA,2\n");
  expect_host_rejected("alpha,32,0,10,rackA,2\n");
  expect_host_rejected("alpha,32,-64,10,rackA,2\n");
  expect_host_rejected("alpha,32,64,-10,rackA,2\n");
  expect_host_rejected("alpha,32,64,inf,rackA,2\n");
  expect_host_rejected("alpha,32,64,10,rackA,-1\n");

  // VM rows: empty/duplicate ids and negative demand columns.
  expect_vm_rejected(",alpha,4,8,2.5,12000,250000\n");
  expect_vm_rejected(good_vm + "web01,alpha,2,4,1.0,5000,100000\n");
  expect_vm_rejected("web01,alpha,0,8,2.5,12000,250000\n");
  expect_vm_rejected("web01,alpha,4,-8,2.5,12000,250000\n");
  expect_vm_rejected("web01,alpha,4,8,-2.5,12000,250000\n");
  expect_vm_rejected("web01,alpha,4,8,2.5,-12000,250000\n");
  expect_vm_rejected("web01,alpha,4,8,2.5,12000,-250000\n");
  expect_vm_rejected("web01,alpha,4,8,nan,12000,250000\n");

  // Distinct ids on a valid host still parse.
  std::istringstream hosts(host_header + good_host);
  std::istringstream vms(vm_header + good_vm + "web02,alpha,2,4,1.0,5000,100000\n");
  const Fleet ok = Fleet::from_csv(hosts, vms);
  EXPECT_EQ(ok.vm_count(), 2u);
}

TEST(Fleet, RefreshLoadsTracksTrailingWindow) {
  // One host, one VM with a step history: 1 vCPU before t=1000,
  // 3 vCPUs after. A trailing window entirely inside the high plateau
  // must report ~3.
  Fleet fleet;
  cloud::HostSpec spec;
  spec.name = "h";
  spec.vcpus = 8;
  spec.ram_bytes = util::gib(32.0);
  const int h = fleet.add_host(spec);
  FleetVm vm;
  vm.id = "v";
  vm.vcpus = 4;
  vm.ram_bytes = util::gib(1.0);
  vm.working_set_pages = 1000;
  for (double t = 0.0; t <= 2000.0; t += 10.0) {
    vm.history.t.push_back(t);
    vm.history.cpu.push_back(t < 1000.0 ? 1.0 : 3.0);
    vm.history.dirty.push_back(t < 1000.0 ? 100.0 : 900.0);
  }
  fleet.add_vm(vm, h);
  fleet.refresh_loads(2000.0, 500.0);
  EXPECT_NEAR(fleet.vm(0).cpu_now, 3.0, 1e-9);
  EXPECT_NEAR(fleet.vm(0).dirty_now, 900.0, 1e-9);
  EXPECT_NEAR(fleet.host(0).cpu_load, 3.0, 1e-9);
  EXPECT_NEAR(fleet.host_utilisation(0), 3.0 / 8.0, 1e-9);
}

// --------------------------------------------------------------- scoring

core::Wavm3Model make_model() {
  core::Wavm3Model m;
  for (const MigrationType type : {MigrationType::kNonLive, MigrationType::kLive}) {
    const double t = type == MigrationType::kLive ? 1.0 : 0.7;
    core::Wavm3Coefficients table;
    table.source.initiation = {2.1 * t, 1.3, 0.0, 0.0, 210.0};
    table.source.transfer = {2.4 * t, 1.1e-7, 55.0, 1.9, 205.0};
    table.source.activation = {2.2 * t, 1.2, 0.0, 0.0, 208.0};
    table.target.initiation = {1.9 * t, 0.8, 0.0, 0.0, 200.0};
    table.target.transfer = {2.0 * t, 0.9e-7, 12.0, 0.7, 198.0};
    table.target.activation = {2.1 * t, 1.0, 0.0, 0.0, 202.0};
    m.set_coefficients(type, table);
  }
  return m;
}

TEST(ScoreBatch, MatchesScalarPlannerForecasts) {
  const core::Wavm3Model model = make_model();
  const core::MigrationPlanner scalar(model);

  std::vector<core::MigrationScenario> scenarios;
  for (const MigrationType type : {MigrationType::kLive, MigrationType::kNonLive}) {
    for (const double mem_gib : {1.0, 4.0, 16.0}) {
      for (const double dirty : {0.0, 5000.0, 40000.0}) {
        for (const double target_load : {2.0, 20.0, 30.0}) {
          core::MigrationScenario sc;
          sc.type = type;
          sc.vm_mem_bytes = util::gib(mem_gib);
          sc.vm_cpu_vcpus = 2.0;
          sc.vm_dirty_pages_per_s = dirty;
          sc.vm_working_set_pages = 0.3 * sc.vm_mem_bytes / util::kPageSize;
          sc.source_cpu_load = 6.0;
          sc.target_cpu_load = target_load;
          scenarios.push_back(sc);
        }
      }
    }
  }

  std::vector<core::MigrationForecast> batched;
  const std::size_t rows = score_batch(model, scenarios, batched);
  ASSERT_EQ(batched.size(), scenarios.size());
  EXPECT_EQ(rows, 2 * scenarios.size());

  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const core::MigrationForecast expect = scalar.forecast(scenarios[i]);
    // Identical timings (same closed form)...
    EXPECT_DOUBLE_EQ(batched[i].times.me, expect.times.me);
    EXPECT_DOUBLE_EQ(batched[i].bandwidth, expect.bandwidth);
    EXPECT_DOUBLE_EQ(batched[i].downtime, expect.downtime);
    // ...and energies equal to relative machine precision (the batched
    // path reassociates the power x duration products).
    EXPECT_NEAR(batched[i].source_energy, expect.source_energy,
                1e-9 * std::abs(expect.source_energy))
        << "scenario " << i;
    EXPECT_NEAR(batched[i].target_energy, expect.target_energy,
                1e-9 * std::abs(expect.target_energy))
        << "scenario " << i;
  }
}

// --------------------------------------------------------------- planner

PlannerConfig test_config() {
  PlannerConfig config;
  config.policy.underload_fraction = 0.30;
  config.policy.overload_fraction = 0.90;
  config.wave_horizon_s = 2.0 * 7200.0;
  return config;
}

TEST(MigrationPlanner, WaveRespectsCapacityAndConcurrency) {
  const core::Wavm3Model model = make_model();
  Fleet fleet = Fleet::synthetic(24, 120, 23);
  MigrationPlanner planner(model, test_config());
  const BeamSearchStrategy beam;
  const double now = SyntheticFleetOptions{}.history_s;
  const WavePlan plan = planner.plan_wave(fleet, beam, now);

  ASSERT_GT(plan.donors_considered, 0);
  ASSERT_FALSE(plan.moves.empty());
  EXPECT_GT(plan.candidates_scored, 0u);
  EXPECT_EQ(plan.batch_rows % 2, 0u);

  // Committed fleet: every host within RAM capacity and under the
  // overload fraction; vacated donors are empty and powered off.
  std::map<int, int> vacated;
  for (const ScheduledMove& m : plan.moves) {
    EXPECT_GE(m.start_s, now);
    EXPECT_GT(m.end_s, m.start_s);
    vacated[m.source] = 1;
  }
  EXPECT_EQ(static_cast<int>(vacated.size()), plan.donors_vacated);
  for (const auto& [h, one] : vacated) {
    (void)one;
    EXPECT_TRUE(fleet.host(h).vms.empty()) << "donor " << h << " only partially vacated";
    EXPECT_FALSE(fleet.host(h).powered_on);
  }
  for (std::size_t h = 0; h < fleet.host_count(); ++h) {
    const FleetHost& host = fleet.host(static_cast<int>(h));
    EXPECT_LE(host.ram_committed, host.spec.ram_bytes);
    if (host.powered_on && vacated.count(static_cast<int>(h)) == 0) {
      EXPECT_LE(fleet.host_utilisation(static_cast<int>(h)),
                planner.config().policy.overload_fraction + 1e-9);
    }
  }

  // Concurrency caps: no host serves overlapping migrations beyond its
  // max_concurrent_migrations (1 in the synthetic fleet).
  std::map<int, std::vector<std::pair<double, double>>> busy;
  for (const ScheduledMove& m : plan.moves) {
    busy[m.source].emplace_back(m.start_s, m.end_s);
    busy[m.target].emplace_back(m.start_s, m.end_s);
  }
  for (const auto& [h, intervals] : busy) {
    const int cap = fleet.host(h).spec.max_concurrent_migrations;
    for (std::size_t a = 0; a < intervals.size(); ++a) {
      int overlapping = 0;
      for (std::size_t b = 0; b < intervals.size(); ++b) {
        if (intervals[b].first < intervals[a].second &&
            intervals[b].second > intervals[a].first) {
          ++overlapping;
        }
      }
      EXPECT_LE(overlapping, cap) << "host " << h;
    }
  }
}

TEST(MigrationPlanner, BeamNeverCostsMoreThanFirstFit) {
  const core::Wavm3Model model = make_model();
  Fleet fleet = Fleet::synthetic(32, 160, 29);
  MigrationPlanner planner(model, test_config());
  const double now = SyntheticFleetOptions{}.history_s;

  const FirstFitStrategy first_fit;
  const BeamSearchStrategy beam;
  const WavePlan naive = planner.plan_wave(fleet, first_fit, now, /*commit=*/false);
  const WavePlan smart = planner.plan_wave(fleet, beam, now, /*commit=*/false);

  ASSERT_FALSE(naive.moves.empty());
  ASSERT_FALSE(smart.moves.empty());
  // Identical donors vacated (all-or-nothing from the same candidate
  // set), strictly no more predicted energy.
  EXPECT_EQ(smart.donors_vacated, naive.donors_vacated);
  EXPECT_LE(smart.total_migration_energy_j, naive.total_migration_energy_j * (1.0 + 1e-12));
}

TEST(MigrationPlanner, CycleAwareSchedulingNeverCostsMoreAndAligns) {
  const core::Wavm3Model model = make_model();
  SyntheticFleetOptions opts;
  opts.periodic_fraction = 1.0;  // the paper's periodic-workload scenario
  Fleet fleet = Fleet::synthetic(24, 120, 31, opts);
  const double now = opts.history_s;

  PlannerConfig aware_cfg = test_config();
  aware_cfg.cycle_aware = true;
  PlannerConfig blind_cfg = test_config();
  blind_cfg.cycle_aware = false;

  const BeamSearchStrategy beam;
  MigrationPlanner aware(model, aware_cfg);
  MigrationPlanner blind(model, blind_cfg);
  const WavePlan blind_plan = blind.plan_wave(fleet, beam, now, /*commit=*/false);
  const WavePlan aware_plan = aware.plan_wave(fleet, beam, now, /*commit=*/false);

  ASSERT_FALSE(blind_plan.moves.empty());
  // Selection is cycle-independent, so the same moves are planned; the
  // scheduler only swaps in an aligned (low-dirtying-window) variant
  // when it is no dearer — per move, hence in total.
  ASSERT_EQ(aware_plan.moves.size(), blind_plan.moves.size());
  EXPECT_EQ(blind_plan.moves_cycle_aligned, 0);
  EXPECT_GT(aware_plan.moves_cycle_aligned, 0);
  EXPECT_LE(aware_plan.total_migration_energy_j,
            blind_plan.total_migration_energy_j * (1.0 + 1e-12));
  // Aligned moves must start inside their low-dirtying window => at
  // least one move is deferred rather than immediate.
  bool any_deferred = false;
  for (const ScheduledMove& m : aware_plan.moves) {
    if (m.cycle_aligned && m.start_s > now) any_deferred = true;
  }
  EXPECT_TRUE(any_deferred);
}

TEST(MigrationPlanner, WavesRollForward) {
  // Consecutive waves keep consolidating: powered hosts never increase,
  // and a vacated host stays off and receives nothing.
  const core::Wavm3Model model = make_model();
  Fleet fleet = Fleet::synthetic(24, 96, 41);
  MigrationPlanner planner(model, test_config());
  const BeamSearchStrategy beam;
  double now = SyntheticFleetOptions{}.history_s;

  const auto powered = [&] {
    int n = 0;
    for (std::size_t h = 0; h < fleet.host_count(); ++h) {
      if (fleet.host(static_cast<int>(h)).powered_on) ++n;
    }
    return n;
  };
  int prev = powered();
  for (int wave = 0; wave < 3; ++wave) {
    const WavePlan plan = planner.plan_wave(fleet, beam, now);
    const int cur = powered();
    EXPECT_EQ(cur, prev - plan.donors_vacated);
    for (const ScheduledMove& m : plan.moves) {
      EXPECT_TRUE(fleet.host(m.target).powered_on);
    }
    prev = cur;
    now += 1800.0;
  }
  EXPECT_LT(prev, 24);
}

}  // namespace
}  // namespace wavm3::plan
