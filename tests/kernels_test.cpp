// Golden suite for src/kernels/: the fixed-reduction-order parity
// contract (scalar and SIMD results BIT-identical, not merely close),
// the runtime dispatch controls, the streaming PanelAccumulator, and
// the grow-only Scratch arena.
//
// This file compiles with -ffp-contract=off (tests/CMakeLists.txt) so
// the independent reference implementations below cannot be fused into
// FMA and silently diverge from the library's non-fused contract.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "kernels/kernels.hpp"
#include "util/error.hpp"

namespace wavm3::kernels {
namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

#define EXPECT_BITEQ(a, b) \
  EXPECT_EQ(bits(a), bits(b)) << "values: " << (a) << " vs " << (b)

/// Pins a backend for one scope; restores startup dispatch on exit.
class BackendGuard {
 public:
  explicit BackendGuard(Backend b) { WAVM3_REQUIRE(set_backend(b), "backend unsupported"); }
  ~BackendGuard() { reset_backend(); }
};

std::vector<Backend> simd_backends() {
  std::vector<Backend> out;
  for (const Backend b : {Backend::kAvx2, Backend::kNeon}) {
    if (backend_supported(b)) out.push_back(b);
  }
  return out;
}

// The tails of the SIMD main loops sit exactly at these lengths'
// allocation boundaries; 0 and 1 are the degenerate reductions.
const std::size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 31, 63, 64, 65, 127, 1023};

/// Uniform values spanning magnitudes, both signs.
std::vector<double> random_vec(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> mag(-6.0, 6.0);
  std::uniform_real_distribution<double> unit(-1.0, 1.0);
  std::vector<double> out(n);
  for (double& v : out) v = unit(rng) * std::pow(10.0, mag(rng));
  return out;
}

/// Subnormals: the gradual-underflow range where naive SIMD (DAZ/FTZ)
/// would flush to zero and diverge from scalar.
std::vector<double> denormal_vec(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unit(-1.0, 1.0);
  std::vector<double> out(n);
  for (double& v : out) v = unit(rng) * 1e-310;
  return out;
}

/// Alternating huge cancelling terms plus a small signal: any
/// reassociation between backends shows up as a different rounding of
/// the catastrophic cancellation.
std::vector<double> cancel_vec(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unit(-1.0, 1.0);
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = (i % 2 == 0 ? 1e16 : -1e16) + unit(rng);
  }
  return out;
}

/// Non-decreasing timestamps with occasional duplicates (zero-width
/// panels), starting at a non-zero epoch.
std::vector<double> time_vec(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> step(0.0, 1.0);
  std::vector<double> out(n);
  double t = 17.25;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = t;
    if (step(rng) > 0.15) t += step(rng);  // ~15% duplicates
  }
  return out;
}

using Maker = std::vector<double> (*)(std::size_t, std::uint64_t);
const Maker kValueMakers[] = {random_vec, denormal_vec, cancel_vec};

// ---- the contract itself, re-implemented independently ----

double ref_dot(std::span<const double> a, std::span<const double> b) {
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < a.size(); ++i) acc[i % 4] += a[i] * b[i];
  return (acc[0] + acc[1]) + (acc[2] + acc[3]);
}

double ref_trapezoid(std::span<const double> t, std::span<const double> y) {
  if (t.size() < 2) return 0.0;
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  for (std::size_t p = 0; p + 1 < t.size(); ++p) {
    acc[p % 4] += 0.5 * (y[p] + y[p + 1]) * (t[p + 1] - t[p]);
  }
  return (acc[0] + acc[1]) + (acc[2] + acc[3]);
}

// ---- contract pinning: scalar backend == blocked-4 reference ----

TEST(KernelContract, ScalarDotIsBlocked4) {
  BackendGuard guard(Backend::kScalar);
  for (const std::size_t n : kSizes) {
    for (const Maker make : kValueMakers) {
      const std::vector<double> a = make(n, 11 + n);
      const std::vector<double> b = make(n, 23 + n);
      EXPECT_BITEQ(dot(a, b), ref_dot(a, b)) << "n=" << n;
    }
  }
}

TEST(KernelContract, ScalarTrapezoidIsBlocked4PanelSum) {
  BackendGuard guard(Backend::kScalar);
  for (const std::size_t n : kSizes) {
    const std::vector<double> t = time_vec(n, 31 + n);
    for (const Maker make : kValueMakers) {
      const std::vector<double> y = make(n, 47 + n);
      EXPECT_BITEQ(trapezoid(t, y), ref_trapezoid(t, y)) << "n=" << n;
    }
  }
}

TEST(KernelContract, ApplyBiasAddedLastAndSkippedWhenZero) {
  BackendGuard guard(Backend::kScalar);
  const std::vector<double> col = random_vec(33, 5);
  const std::vector<double> out0 = [&] {
    std::vector<double> out(col.size());
    const std::span<const double> cols[] = {col};
    const double coeffs[] = {3.5};
    apply_design_matrix(cols, coeffs, 0.0, out);
    return out;
  }();
  std::vector<double> outb(col.size());
  const std::span<const double> cols[] = {col};
  const double coeffs[] = {3.5};
  apply_design_matrix(cols, coeffs, 7.25, outb);
  for (std::size_t i = 0; i < col.size(); ++i) {
    EXPECT_BITEQ(out0[i], 3.5 * col[i]);
    EXPECT_BITEQ(outb[i], 3.5 * col[i] + 7.25);
  }
}

// ---- bit-identity: every supported SIMD backend vs scalar ----

/// Runs `eval` once under scalar dispatch and once under `simd`,
/// asserting bit-identical scalar results are returned by both.
template <typename Eval>
void expect_backend_parity(Backend simd, const Eval& eval, const char* what) {
  double scalar_result = 0.0;
  {
    BackendGuard guard(Backend::kScalar);
    scalar_result = eval();
  }
  double simd_result = 0.0;
  {
    BackendGuard guard(simd);
    simd_result = eval();
  }
  EXPECT_BITEQ(scalar_result, simd_result) << what << " under " << to_string(simd);
}

TEST(KernelParity, DotBitIdenticalAcrossBackends) {
  const std::vector<Backend> simd = simd_backends();
  if (simd.empty()) GTEST_SKIP() << "no SIMD backend on this host";
  for (const Backend b : simd) {
    for (const std::size_t n : kSizes) {
      for (const Maker make : kValueMakers) {
        const std::vector<double> x = make(n, 101 + n);
        const std::vector<double> y = make(n, 211 + n);
        expect_backend_parity(b, [&] { return dot(x, y); }, "dot");
      }
    }
  }
}

TEST(KernelParity, AxpyBitIdenticalAcrossBackends) {
  const std::vector<Backend> simd = simd_backends();
  if (simd.empty()) GTEST_SKIP() << "no SIMD backend on this host";
  for (const Backend b : simd) {
    for (const std::size_t n : kSizes) {
      for (const Maker make : kValueMakers) {
        const std::vector<double> x = make(n, 307 + n);
        const std::vector<double> y0 = make(n, 401 + n);
        std::vector<double> ys = y0;
        {
          BackendGuard guard(Backend::kScalar);
          axpy(1.75, x, ys);
        }
        std::vector<double> yv = y0;
        {
          BackendGuard guard(b);
          axpy(1.75, x, yv);
        }
        for (std::size_t i = 0; i < n; ++i) EXPECT_BITEQ(ys[i], yv[i]);
      }
    }
  }
}

TEST(KernelParity, ApplyDesignMatrixBitIdenticalAcrossBackends) {
  const std::vector<Backend> simd = simd_backends();
  if (simd.empty()) GTEST_SKIP() << "no SIMD backend on this host";
  // The serve-relevant shape: 11 columns (WAVM3's full design) at
  // batch-64, plus ragged sizes around the 8-wide and 4-wide unrolls.
  for (const Backend b : simd) {
    for (const std::size_t n : kSizes) {
      for (const Maker make : kValueMakers) {
        constexpr std::size_t kCols = 11;
        std::vector<std::vector<double>> storage;
        storage.reserve(kCols);
        std::vector<std::span<const double>> cols;
        for (std::size_t j = 0; j < kCols; ++j) {
          storage.push_back(make(n, 1000 + 17 * j + n));
          cols.emplace_back(storage.back());
        }
        const std::vector<double> coeffs = random_vec(kCols, 77 + n);
        for (const double bias : {0.0, 3.25}) {
          std::vector<double> outs(n);
          {
            BackendGuard guard(Backend::kScalar);
            apply_design_matrix(cols, coeffs, bias, outs);
          }
          std::vector<double> outv(n);
          {
            BackendGuard guard(b);
            apply_design_matrix(cols, coeffs, bias, outv);
          }
          for (std::size_t i = 0; i < n; ++i) EXPECT_BITEQ(outs[i], outv[i]);
        }
      }
    }
  }
}

TEST(KernelParity, TrapezoidFamilyBitIdenticalAcrossBackends) {
  const std::vector<Backend> simd = simd_backends();
  if (simd.empty()) GTEST_SKIP() << "no SIMD backend on this host";
  for (const Backend b : simd) {
    for (const std::size_t n : kSizes) {
      const std::vector<double> t = time_vec(n, 503 + n);
      for (const Maker make : kValueMakers) {
        const std::vector<double> y = make(n, 601 + n);
        expect_backend_parity(b, [&] { return trapezoid(t, y); }, "trapezoid");
        if (n >= 2) {
          const double a = t.front() + 0.3 * (t.back() - t.front());
          const double z = t.front() + 0.9 * (t.back() - t.front());
          expect_backend_parity(
              b, [&] { return window_trapezoid(t, y, a, z); }, "window_trapezoid");
          expect_backend_parity(b, [&] { return window_mean(t, y, a, z); }, "window_mean");
          expect_backend_parity(b, [&] { return interp_at(t, y, a); }, "interp_at");
        }
      }
    }
  }
}

// ---- streaming twin ----

TEST(PanelAccumulator, ReproducesTrapezoidBitExact) {
  for (const std::size_t n : kSizes) {
    const std::vector<double> t = time_vec(n, 701 + n);
    for (const Maker make : kValueMakers) {
      const std::vector<double> y = make(n, 809 + n);
      PanelAccumulator acc;
      for (std::size_t p = 0; p + 1 < n; ++p) {
        acc.add(trapezoid_panel(t[p], y[p], t[p + 1], y[p + 1]));
      }
      EXPECT_BITEQ(acc.sum(), trapezoid(t, y)) << "n=" << n;
      EXPECT_EQ(acc.panels(), n < 2 ? 0 : n - 1);
    }
  }
}

TEST(PanelAccumulator, ResetStartsOver) {
  PanelAccumulator acc;
  acc.add(1.0);
  acc.add(2.0);
  acc.reset();
  EXPECT_EQ(acc.panels(), 0u);
  EXPECT_BITEQ(acc.sum(), 0.0);
}

// ---- dispatch controls ----

TEST(KernelDispatch, StartupBackendIsSupported) {
  EXPECT_TRUE(backend_supported(active_backend()));
  EXPECT_TRUE(backend_supported(Backend::kScalar));  // always compiled in
}

TEST(KernelDispatch, SetAndResetBackend) {
  const Backend startup = active_backend();
  ASSERT_TRUE(set_backend(Backend::kScalar));
  EXPECT_EQ(active_backend(), Backend::kScalar);
  reset_backend();
  EXPECT_EQ(active_backend(), startup);
}

TEST(KernelDispatch, UnsupportedBackendIsRejected) {
  const Backend startup = active_backend();
  for (const Backend b : {Backend::kAvx2, Backend::kNeon}) {
    if (backend_supported(b)) continue;
    EXPECT_FALSE(set_backend(b));
    EXPECT_EQ(active_backend(), startup) << "failed set_backend must not change dispatch";
  }
}

TEST(KernelDispatch, Names) {
  EXPECT_STREQ(to_string(Backend::kScalar), "scalar");
  EXPECT_STREQ(to_string(Backend::kAvx2), "avx2");
  EXPECT_STREQ(to_string(Backend::kNeon), "neon");
  EXPECT_FALSE(cpu_features().empty());
}

// ---- input screening (same messages as the stats wrappers) ----

TEST(KernelScreening, RejectsMalformedInput) {
  const std::vector<double> t = {0.0, 1.0, 0.5};  // backwards
  const std::vector<double> y = {1.0, 1.0, 1.0};
  EXPECT_THROW(trapezoid(t, y), util::ContractError);
  const std::vector<double> short_y = {1.0};
  EXPECT_THROW(trapezoid(std::span<const double>(t).first(2), short_y),
               util::ContractError);
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {1.0};
  EXPECT_THROW(dot(a, b), util::ContractError);
  std::vector<double> out(2);
  EXPECT_THROW(axpy(1.0, b, out), util::ContractError);
}

TEST(KernelScreening, ApplyRejectsOverwideDesign) {
  const std::vector<double> col(4, 1.0);
  std::vector<std::span<const double>> cols(kMaxApplyColumns + 1,
                                            std::span<const double>(col));
  const std::vector<double> coeffs(cols.size(), 1.0);
  std::vector<double> out(col.size());
  EXPECT_THROW(apply_design_matrix(cols, coeffs, 0.0, out), util::ContractError);
}

// ---- scratch arena ----

TEST(Scratch, GrowOnlyReuse) {
  Scratch scratch;
  scratch.require(64);
  const std::size_t cap = scratch.capacity();
  EXPECT_GE(cap, 64u);
  const std::span<double> a = scratch.take(40);
  const std::span<double> b = scratch.take(24);
  EXPECT_EQ(a.size(), 40u);
  EXPECT_EQ(b.size(), 24u);
  EXPECT_EQ(scratch.used(), 64u);
  scratch.release_all();
  EXPECT_EQ(scratch.used(), 0u);
  EXPECT_EQ(scratch.capacity(), cap);  // release never shrinks
  scratch.require(32);                 // smaller requirement: no-op
  EXPECT_EQ(scratch.capacity(), cap);
}

TEST(Scratch, TakeBeyondCapacityRefuses) {
  Scratch scratch;
  scratch.require(8);
  (void)scratch.take(8);
  EXPECT_THROW(scratch.take(1), util::ContractError);
}

TEST(Scratch, TlsScratchIsStable) {
  Scratch& first = tls_scratch();
  Scratch& second = tls_scratch();
  EXPECT_EQ(&first, &second);
}

}  // namespace
}  // namespace wavm3::kernels
