// Tests for src/serve/: the bounded MPMC queue, the thread pool, the
// sharded LRU cache, scenario cache keys (incl. quantization), the
// RCU-style coefficient store, and the prediction service — with the
// concurrency cases (many-thread hammer with result equivalence,
// hot-swap while querying, shutdown with a non-empty queue) written to
// run meaningfully under ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <future>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/coeff_io.hpp"
#include "core/planner.hpp"
#include "obs/clock.hpp"
#include "serve/coeff_store.hpp"
#include "serve/lru_cache.hpp"
#include "serve/metrics.hpp"
#include "serve/mpmc_queue.hpp"
#include "serve/query_stream.hpp"
#include "serve/scenario_key.hpp"
#include "serve/service.hpp"
#include "serve/sim_backend.hpp"
#include "serve/thread_pool.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace wavm3::serve {
namespace {

using migration::MigrationType;

/// A fitted model from synthetic coefficient tables (no campaign
/// needed); `scale` perturbs every coefficient so two models give
/// different predictions.
core::Wavm3Model make_model(double scale = 1.0) {
  core::Wavm3Model m;
  for (const MigrationType type : {MigrationType::kNonLive, MigrationType::kLive}) {
    const double t = type == MigrationType::kLive ? 1.0 : 0.7;
    core::Wavm3Coefficients table;
    table.source.initiation = {2.1 * scale * t, 1.3 * scale, 0.0, 0.0, 210.0 * scale};
    table.source.transfer = {2.4 * scale * t, 1.1e-7 * scale, 55.0 * scale, 1.9 * scale,
                             205.0 * scale};
    table.source.activation = {2.2 * scale * t, 1.2 * scale, 0.0, 0.0, 208.0 * scale};
    table.target.initiation = {1.9 * scale * t, 0.8 * scale, 0.0, 0.0, 200.0 * scale};
    table.target.transfer = {2.0 * scale * t, 0.9e-7 * scale, 12.0 * scale, 0.7 * scale,
                             198.0 * scale};
    table.target.activation = {2.1 * scale * t, 1.0 * scale, 0.0, 0.0, 202.0 * scale};
    m.set_coefficients(type, table);
  }
  return m;
}

/// A deterministic scenario family indexed by `i`.
core::MigrationScenario make_scenario(int i) {
  core::MigrationScenario sc;
  sc.type = i % 3 == 0 ? MigrationType::kNonLive : MigrationType::kLive;
  sc.vm_mem_bytes = util::gib(1.0 + i % 8);
  sc.vm_cpu_vcpus = 1.0 + i % 4;
  const double mem_pages = sc.vm_mem_bytes / util::kPageSize;
  sc.vm_working_set_pages = mem_pages * 0.25;
  sc.vm_dirty_pages_per_s = sc.vm_working_set_pages * (0.05 + 0.09 * (i % 10));
  sc.source_cpu_load = 2.0 + i % 20;
  sc.target_cpu_load = 1.0 + i % 15;
  return sc;
}

void expect_forecast_eq(const core::MigrationForecast& a, const core::MigrationForecast& b) {
  EXPECT_EQ(a.times.ms, b.times.ms);
  EXPECT_EQ(a.times.ts, b.times.ts);
  EXPECT_EQ(a.times.te, b.times.te);
  EXPECT_EQ(a.times.me, b.times.me);
  EXPECT_EQ(a.bandwidth, b.bandwidth);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_EQ(a.precopy_rounds, b.precopy_rounds);
  EXPECT_EQ(a.downtime, b.downtime);
  EXPECT_EQ(a.degenerated_to_nonlive, b.degenerated_to_nonlive);
  EXPECT_EQ(a.source_energy, b.source_energy);
  EXPECT_EQ(a.target_energy, b.target_energy);
  for (int p = 0; p < 3; ++p) {
    EXPECT_EQ(a.source_phase_energy[p], b.source_phase_energy[p]);
    EXPECT_EQ(a.target_phase_energy[p], b.target_phase_energy[p]);
  }
}

// ---------------------------------------------------------------- queue

TEST(MpmcQueue, FifoAndCapacity) {
  BoundedMpmcQueue<int> q(3);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_TRUE(q.try_push(3));
  EXPECT_FALSE(q.try_push(4));  // full
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_TRUE(q.try_push(4));
  EXPECT_EQ(q.pop().value(), 3);
  EXPECT_EQ(q.pop().value(), 4);
}

TEST(MpmcQueue, CloseDrainsThenSignalsEnd) {
  BoundedMpmcQueue<int> q(8);
  ASSERT_TRUE(q.push(7));
  ASSERT_TRUE(q.push(8));
  q.close();
  EXPECT_FALSE(q.push(9));  // producers rejected
  EXPECT_EQ(q.pop().value(), 7);
  EXPECT_EQ(q.pop().value(), 8);
  EXPECT_FALSE(q.pop().has_value());  // closed and drained
}

TEST(MpmcQueue, CloseAndDiscardDropsQueuedItems) {
  BoundedMpmcQueue<int> q(8);
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  q.close_and_discard();
  EXPECT_FALSE(q.pop().has_value());
}

TEST(MpmcQueue, BackpressureBlocksProducerUntilConsumed) {
  BoundedMpmcQueue<int> q(2);
  ASSERT_TRUE(q.push(0));
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(q.push(2));  // must wait for a pop
    pushed.store(true);
  });
  EXPECT_EQ(q.pop().value(), 0);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
}

// ----------------------------------------------------------------- pool

TEST(ThreadPool, RunsEverySubmittedJob) {
  ThreadPool pool(ThreadPoolConfig{4, 64});
  std::atomic<int> ran{0};
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(pool.submit([&ran] { ran.fetch_add(1); }));
  }
  pool.shutdown(DrainMode::kDrain);
  EXPECT_EQ(ran.load(), 200);
  EXPECT_FALSE(pool.submit([] {}));  // after shutdown
}

TEST(ThreadPool, DrainShutdownFinishesNonEmptyQueue) {
  ThreadPool pool(ThreadPoolConfig{1, 64});
  std::mutex m;
  std::condition_variable cv;
  bool gate_open = false;
  // Stall the single worker so the queue genuinely fills up.
  ASSERT_TRUE(pool.submit([&] {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return gate_open; });
  }));
  std::atomic<int> ran{0};
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(pool.submit([&ran] { ran.fetch_add(1); }));
  }
  EXPECT_GT(pool.queue_depth(), 0u);
  std::thread closer([&] { pool.shutdown(DrainMode::kDrain); });
  {
    std::lock_guard<std::mutex> lock(m);
    gate_open = true;
  }
  cv.notify_all();
  closer.join();
  EXPECT_EQ(ran.load(), 20);  // drained, not dropped
}

TEST(ThreadPool, DiscardShutdownBreaksQueuedPromises) {
  ThreadPool pool(ThreadPoolConfig{1, 64});
  std::mutex m;
  std::condition_variable cv;
  bool gate_open = false;
  ASSERT_TRUE(pool.submit([&] {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return gate_open; });
  }));
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 10; ++i) {
    std::promise<int> p;
    futures.push_back(p.get_future());
    ASSERT_TRUE(pool.submit([i, p = std::move(p)]() mutable { p.set_value(i); }));
  }
  EXPECT_GT(pool.queue_depth(), 0u);
  std::thread closer([&] { pool.shutdown(DrainMode::kDiscard); });
  // The worker is gated, so only the discard can empty the queue; wait
  // for it before letting the worker go, or it could drain jobs first.
  while (pool.queue_depth() > 0) std::this_thread::yield();
  {
    std::lock_guard<std::mutex> lock(m);
    gate_open = true;
  }
  cv.notify_all();
  closer.join();
  int broken = 0;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (const std::future_error& e) {
      EXPECT_EQ(e.code(), std::future_errc::broken_promise);
      ++broken;
    }
  }
  EXPECT_EQ(broken, 10);  // every queued (unrun) job surfaced as a broken promise
}

// ---------------------------------------------------------------- cache

TEST(LruCache, EvictsLeastRecentlyUsed) {
  ShardedLruCache<int, int> cache(3, 1);  // one shard => global LRU order
  cache.put(1, 10);
  cache.put(2, 20);
  cache.put(3, 30);
  EXPECT_EQ(cache.get(1).value(), 10);  // refresh 1; LRU is now 2
  cache.put(4, 40);                     // evicts 2
  EXPECT_FALSE(cache.get(2).has_value());
  EXPECT_EQ(cache.get(1).value(), 10);
  EXPECT_EQ(cache.get(3).value(), 30);
  EXPECT_EQ(cache.get(4).value(), 40);
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.insertions, 4u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 4u);
}

TEST(LruCache, ShardedCapacityAndClear) {
  ShardedLruCache<int, int> cache(64, 8);
  for (int i = 0; i < 200; ++i) cache.put(i, i);
  EXPECT_LE(cache.size(), 64u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.get(199).has_value());
}

TEST(LruCache, TotalBudgetIsNeverExceededByShardRemainders) {
  // capacity=10, shards=8 used to ceil-divide into 8 shards of 2 = 16
  // slots, nearly doubling the configured memory budget. The remainder
  // must be distributed so shard capacities sum to exactly `capacity`.
  ShardedLruCache<int, int> cache(10, 8);
  for (int i = 0; i < 1000; ++i) cache.put(i, i);
  EXPECT_EQ(cache.size(), 10u);
  // An evenly divisible budget still splits evenly.
  ShardedLruCache<int, int> even(64, 8);
  for (int i = 0; i < 1000; ++i) even.put(i, i);
  EXPECT_EQ(even.size(), 64u);
  // Degenerate budget: fewer entries than shards collapses the shard
  // count, never allocates zero-capacity shards (hash skew may leave
  // some shards short, but the budget bound must hold).
  ShardedLruCache<int, int> tiny(3, 8);
  for (int i = 0; i < 100; ++i) tiny.put(i, i);
  EXPECT_LE(tiny.size(), 3u);
  EXPECT_EQ(tiny.shard_count(), 3u);
}

TEST(LruCache, CapacityBelowShardCountCollapsesShards) {
  // capacity < shards must collapse the shard count rather than hand
  // out zero-capacity shards (which would silently drop every insert
  // that hashes into them). Each surviving shard holds >= 1 entry.
  ShardedLruCache<int, int> cache(3, 8);
  EXPECT_EQ(cache.shard_count(), 3u);
  for (int i = 0; i < 64; ++i) cache.put(i, i * 7);
  EXPECT_LE(cache.size(), 3u);
  EXPECT_GE(cache.size(), 1u);
  // A freshly inserted key is always retrievable: its shard has
  // capacity for at least one entry, so the insert cannot be a no-op.
  cache.put(999, 999 * 7);
  const auto hit = cache.get(999);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 999 * 7);
  // The extreme case: one entry total still behaves as a 1-slot LRU.
  ShardedLruCache<int, int> one(1, 16);
  EXPECT_EQ(one.shard_count(), 1u);
  one.put(1, 10);
  one.put(2, 20);
  EXPECT_LE(one.size(), 1u);
  EXPECT_FALSE(one.get(1).has_value());
  EXPECT_EQ(one.get(2).value_or(-1), 20);
}

TEST(LruCache, ZeroCapacityOrZeroShardsRejected) {
  using Cache = ShardedLruCache<int, int>;
  EXPECT_THROW(Cache(0, 8), util::ContractError);
  EXPECT_THROW(Cache(8, 0), util::ContractError);
  EXPECT_THROW(Cache(0, 0), util::ContractError);
}

TEST(LruCache, ConcurrentMixedAccessIsSafe) {
  ShardedLruCache<int, int> cache(256, 8);
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 2000; ++i) {
        const int key = (t * 37 + i) % 512;
        if (auto hit = cache.get(key)) {
          EXPECT_EQ(*hit, key * 3);
        } else {
          cache.put(key, key * 3);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, 4u * 2000u);
}

// ----------------------------------------------------------------- keys

TEST(ScenarioKey, DistinguishesScenariosAndVersions) {
  const core::MigrationScenario a = make_scenario(1);
  const core::MigrationScenario b = make_scenario(2);
  EXPECT_TRUE(ScenarioKey(1, a) == ScenarioKey(1, a));
  EXPECT_FALSE(ScenarioKey(1, a) == ScenarioKey(1, b));
  EXPECT_FALSE(ScenarioKey(1, a) == ScenarioKey(2, a));  // version retires entries
  const ScenarioKeyHash hash;
  EXPECT_EQ(hash(ScenarioKey(1, a)), hash(ScenarioKey(1, a)));
  EXPECT_NE(hash(ScenarioKey(1, a)), hash(ScenarioKey(1, b)));
}

TEST(ScenarioKey, QuantizationGroupsNearbyFeatures) {
  core::MigrationScenario a = make_scenario(5);
  core::MigrationScenario b = a;
  b.source_cpu_load *= 1.002;  // 0.2% apart
  // Exact keys distinguish them; a 5% grid folds them together.
  EXPECT_FALSE(ScenarioKey(1, canonicalize(a, 0.0)) == ScenarioKey(1, canonicalize(b, 0.0)));
  EXPECT_TRUE(ScenarioKey(1, canonicalize(a, 0.05)) == ScenarioKey(1, canonicalize(b, 0.05)));
  core::MigrationScenario c = a;
  c.source_cpu_load *= 1.5;  // far apart stays distinct even on the grid
  EXPECT_FALSE(ScenarioKey(1, canonicalize(a, 0.05)) == ScenarioKey(1, canonicalize(c, 0.05)));
}

// ---------------------------------------------------------------- store

TEST(CoefficientStore, SwapNeverDisturbsHeldSnapshots) {
  CoefficientStore store(make_model(1.0));
  const CoefficientStore::Snapshot before = store.snapshot();
  EXPECT_EQ(before.version, 1u);
  const double c_before =
      before.model->coefficients(MigrationType::kLive).source.transfer.c;
  EXPECT_EQ(store.swap(std::make_shared<const core::Wavm3Model>(make_model(2.0))), 2u);
  // The old snapshot still reads the old coefficients.
  EXPECT_EQ(before.model->coefficients(MigrationType::kLive).source.transfer.c, c_before);
  const CoefficientStore::Snapshot after = store.snapshot();
  EXPECT_EQ(after.version, 2u);
  EXPECT_NE(after.model->coefficients(MigrationType::kLive).source.transfer.c, c_before);
}

TEST(CoefficientStore, RejectsUnfittedModels) {
  EXPECT_THROW(CoefficientStore store{core::Wavm3Model()}, util::ContractError);
  CoefficientStore store(make_model());
  EXPECT_THROW(store.swap(std::make_shared<const core::Wavm3Model>()), util::ContractError);
  EXPECT_THROW(store.reload_csv("/nonexistent/coeffs.csv"), util::ContractError);
  EXPECT_EQ(store.version(), 1u);  // failed reload left the store untouched
}

// -------------------------------------------------------------- metrics

TEST(Metrics, HistogramQuantilesAreOrderedAndConservative) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.record_ns(i * 1e3);  // 1us..1ms uniform
  EXPECT_EQ(h.count(), 1000u);
  const double p50 = h.quantile_ns(0.50);
  const double p95 = h.quantile_ns(0.95);
  const double p99 = h.quantile_ns(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, 500e3 * 0.95);  // within bucket resolution of the true median
  EXPECT_LE(p50, 500e3 * 1.10);
  EXPECT_NEAR(h.mean_ns(), 500.5e3, 5e3);
}

TEST(Metrics, RegistryRendersTableAndCsv) {
  MetricsRegistry registry;
  const int ep = registry.register_endpoint("predict");
  registry.record(ep, 2e6);
  registry.record(ep, 4e6);
  const std::string table = registry.render_table();
  EXPECT_NE(table.find("predict"), std::string::npos);
  const std::string csv = registry.render_csv();
  EXPECT_NE(csv.find("endpoint,requests,qps,mean_us,p50_us,p95_us,p99_us"),
            std::string::npos);
  EXPECT_NE(csv.find("predict,2,"), std::string::npos);
}

// Byte-compatibility regression: metrics_csv() must render exactly
// what the pre-obs MetricsRegistry rendered. The reference below is a
// literal reimplementation of the retired algorithm (log-indexed
// 400-bucket grid, truncating ns total, ceil-rank upper-edge
// quantiles, epoch-based qps); the registry now computes the same
// numbers through obs::Histogram, and ManualClock pins the qps
// denominator so the comparison is exact.
TEST(Metrics, CsvByteIdenticalToLegacyAlgorithm) {
  struct LegacyReference {
    std::uint64_t counts[LatencyHistogram::kBuckets] = {};
    std::uint64_t n = 0;
    std::uint64_t total_ns = 0;

    static int bucket_index(double ns) {
      if (ns <= LatencyHistogram::kFirstBucketNs) return 0;
      static const double inv_log_growth = 1.0 / std::log(LatencyHistogram::kGrowth);
      const int idx = static_cast<int>(std::log(ns / LatencyHistogram::kFirstBucketNs) *
                                       inv_log_growth) + 1;
      return std::min(idx, LatencyHistogram::kBuckets - 1);
    }
    static double bucket_upper_ns(int idx) {
      return LatencyHistogram::kFirstBucketNs *
             std::pow(LatencyHistogram::kGrowth, static_cast<double>(idx));
    }
    void record(double ns) {
      ++counts[bucket_index(ns)];
      ++n;
      total_ns += static_cast<std::uint64_t>(ns);
    }
    double quantile_ns(double q) const {
      if (n == 0) return 0.0;
      const auto rank = static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n)));
      std::uint64_t seen = 0;
      for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
        seen += counts[i];
        if (seen >= rank) return bucket_upper_ns(i);
      }
      return bucket_upper_ns(LatencyHistogram::kBuckets - 1);
    }
  };

  obs::ManualClock::install(7'000'000);
  MetricsRegistry registry;
  const int ep_predict = registry.register_endpoint("predict");
  const int ep_submit = registry.register_endpoint("submit");

  LegacyReference ref_predict;
  LegacyReference ref_submit;
  std::uint64_t x = 0x9e3779b97f4a7c15ull;  // seeded latency stream
  for (int i = 0; i < 4000; ++i) {
    x ^= x << 13; x ^= x >> 7; x ^= x << 17;
    // Integral ns like real timers produce; span five decades so every
    // part of the grid including bucket 0 and deep buckets is hit.
    const double ns = static_cast<double>(x % 100'000'000ull);
    registry.record(ep_predict, ns);
    ref_predict.record(ns);
    if (i % 3 == 0) {
      registry.record(ep_submit, std::floor(ns / 2.0));
      ref_submit.record(std::floor(ns / 2.0));
    }
  }
  obs::ManualClock::advance(2'500'000'000);  // 2.5 s on the books

  std::string expected = "endpoint,requests,qps,mean_us,p50_us,p95_us,p99_us\n";
  for (const auto& [name, ref] : {std::pair<const char*, const LegacyReference&>{
                                      "predict", ref_predict},
                                  {"submit", ref_submit}}) {
    const double qps = static_cast<double>(ref.n) / 2.5;
    const double mean_us =
        static_cast<double>(ref.total_ns) / static_cast<double>(ref.n) / 1e3;
    expected += util::format("%s,%llu,%.3f,%.3f,%.3f,%.3f,%.3f\n", name,
                             static_cast<unsigned long long>(ref.n), qps, mean_us,
                             ref.quantile_ns(0.50) / 1e3, ref.quantile_ns(0.95) / 1e3,
                             ref.quantile_ns(0.99) / 1e3);
  }
  const std::string csv = registry.render_csv();
  obs::ManualClock::uninstall();
  EXPECT_EQ(csv, expected);
}

// -------------------------------------------------------------- service

TEST(PredictionService, MatchesDirectPlannerBitwise) {
  const core::Wavm3Model model = make_model();
  const core::MigrationPlanner planner(model);
  ServiceConfig cfg;
  cfg.threads = 2;
  PredictionService service(model, cfg);
  for (int i = 0; i < 50; ++i) {
    const core::MigrationScenario sc = make_scenario(i);
    expect_forecast_eq(service.predict(sc), planner.forecast(sc));
  }
  // Second pass is served from the cache — still identical.
  const CacheStats before = service.stats().cache;
  for (int i = 0; i < 50; ++i) {
    const core::MigrationScenario sc = make_scenario(i);
    expect_forecast_eq(service.predict(sc), planner.forecast(sc));
  }
  const CacheStats after = service.stats().cache;
  EXPECT_GE(after.hits - before.hits, 40u);
}

TEST(PredictionService, CacheOffStillMatches) {
  const core::Wavm3Model model = make_model();
  const core::MigrationPlanner planner(model);
  ServiceConfig cfg;
  cfg.threads = 1;
  cfg.cache_capacity = 0;  // disabled
  PredictionService service(model, cfg);
  for (int i = 0; i < 20; ++i) {
    expect_forecast_eq(service.predict(make_scenario(i)), planner.forecast(make_scenario(i)));
  }
  EXPECT_EQ(service.stats().cache.hits + service.stats().cache.misses, 0u);
}

TEST(PredictionService, ManyThreadHammerMatchesDirectCalls) {
  const core::Wavm3Model model = make_model();
  const core::MigrationPlanner planner(model);
  constexpr int kScenarios = 64;
  std::vector<core::MigrationForecast> expected;
  expected.reserve(kScenarios);
  for (int i = 0; i < kScenarios; ++i) expected.push_back(planner.forecast(make_scenario(i)));

  ServiceConfig cfg;
  cfg.threads = 4;
  cfg.cache_capacity = 128;
  PredictionService service(model, cfg);
  std::vector<std::thread> clients;
  clients.reserve(8);
  for (int t = 0; t < 8; ++t) {
    clients.emplace_back([&service, &expected, t] {
      for (int i = 0; i < 400; ++i) {
        const int idx = (t * 13 + i) % kScenarios;
        // Mix the synchronous and pooled entry points.
        const core::MigrationForecast fc = (i % 2 == 0)
                                               ? service.predict(make_scenario(idx))
                                               : service.submit(make_scenario(idx)).get();
        expect_forecast_eq(fc, expected[static_cast<std::size_t>(idx)]);
      }
    });
  }
  for (auto& c : clients) c.join();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache.hits + stats.cache.misses, 8u * 400u);
  EXPECT_GT(stats.cache.hits, 0u);
}

TEST(PredictionService, BatchPreservesOrderAndValues) {
  const core::Wavm3Model model = make_model();
  const core::MigrationPlanner planner(model);
  PredictionService service(model, ServiceConfig{.threads = 3, .queue_capacity = 16});
  std::vector<core::MigrationScenario> batch;
  for (int i = 0; i < 100; ++i) batch.push_back(make_scenario(i));  // > queue capacity
  const std::vector<core::MigrationForecast> results = service.predict_batch(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (int i = 0; i < 100; ++i) {
    expect_forecast_eq(results[static_cast<std::size_t>(i)], planner.forecast(batch[static_cast<std::size_t>(i)]));
  }
}

TEST(PredictionService, HotSwapInvalidatesCachedResults) {
  const core::Wavm3Model model_a = make_model(1.0);
  const core::Wavm3Model model_b = make_model(2.0);
  PredictionService service(model_a, ServiceConfig{.threads = 1});
  const core::MigrationScenario sc = make_scenario(3);

  const core::MigrationForecast r_a = service.predict(sc);
  expect_forecast_eq(service.predict(sc), r_a);  // cached
  EXPECT_EQ(service.stats().cache.hits, 1u);

  EXPECT_EQ(service.swap_model(std::make_shared<const core::Wavm3Model>(model_b)), 2u);
  const core::MigrationForecast r_b = service.predict(sc);
  // New coefficients answer, not the cached result for version 1.
  expect_forecast_eq(r_b, core::MigrationPlanner(model_b).forecast(sc));
  EXPECT_NE(r_b.source_energy, r_a.source_energy);
  EXPECT_EQ(service.stats().cache.misses, 2u);  // the swap forced a recompute
}

TEST(PredictionService, HotSwapWhileQueryingIsConsistent) {
  const core::Wavm3Model model_a = make_model(1.0);
  const core::Wavm3Model model_b = make_model(2.0);
  const core::MigrationPlanner planner_a(model_a);
  const core::MigrationPlanner planner_b(model_b);
  constexpr int kScenarios = 16;
  std::vector<core::MigrationForecast> expect_a;
  std::vector<core::MigrationForecast> expect_b;
  for (int i = 0; i < kScenarios; ++i) {
    expect_a.push_back(planner_a.forecast(make_scenario(i)));
    expect_b.push_back(planner_b.forecast(make_scenario(i)));
  }

  PredictionService service(model_a, ServiceConfig{.threads = 4, .cache_capacity = 256});
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  readers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      for (int i = 0; i < 1500 && !stop.load(std::memory_order_relaxed); ++i) {
        const int idx = (i + t) % kScenarios;
        const core::MigrationForecast fc = service.predict(make_scenario(idx));
        const auto& a = expect_a[static_cast<std::size_t>(idx)];
        const auto& b = expect_b[static_cast<std::size_t>(idx)];
        // Every answer must exactly match one of the two published
        // coefficient sets — never a torn mix.
        const bool matches_a = fc.source_energy == a.source_energy &&
                               fc.target_energy == a.target_energy;
        const bool matches_b = fc.source_energy == b.source_energy &&
                               fc.target_energy == b.target_energy;
        EXPECT_TRUE(matches_a || matches_b);
      }
    });
  }
  std::thread swapper([&] {
    for (int i = 0; i < 50; ++i) {
      service.swap_model(std::make_shared<const core::Wavm3Model>(
          i % 2 == 0 ? model_b : model_a));
      std::this_thread::yield();
    }
  });
  swapper.join();
  stop.store(true);
  for (auto& r : readers) r.join();
  EXPECT_GE(service.model_version(), 51u);
}

TEST(PredictionService, ReloadFromCsvSwapsCoefficients) {
  const core::Wavm3Model model = make_model(1.0);
  const core::Wavm3Model recalibrated = make_model(3.0);
  const std::string path = ::testing::TempDir() + "serve_reload_coeffs.csv";
  ASSERT_TRUE(core::save_coefficients_csv(recalibrated, path));

  PredictionService service(model, ServiceConfig{.threads = 1});
  const core::MigrationScenario sc = make_scenario(7);
  const core::MigrationForecast before = service.predict(sc);
  EXPECT_EQ(service.reload(path), 2u);
  const core::MigrationForecast after = service.predict(sc);
  EXPECT_NE(before.source_energy, after.source_energy);
  expect_forecast_eq(after, core::MigrationPlanner(recalibrated).forecast(sc));
  // A bad reload throws and keeps serving the current coefficients.
  EXPECT_THROW(service.reload("/nonexistent/coeffs.csv"), util::ContractError);
  EXPECT_EQ(service.model_version(), 2u);
  expect_forecast_eq(service.predict(sc), after);
}

TEST(PredictionService, QuantizedKeysAnswerFromTheGridPoint) {
  const core::Wavm3Model model = make_model();
  ServiceConfig cfg;
  cfg.threads = 1;
  cfg.quantization_step = 0.05;
  PredictionService service(model, cfg);
  core::MigrationScenario a = make_scenario(4);
  core::MigrationScenario b = a;
  b.source_cpu_load *= 1.003;  // within the grid pitch
  const core::MigrationForecast fa = service.predict(a);
  const core::MigrationForecast fb = service.predict(b);
  expect_forecast_eq(fa, fb);  // same grid point, same (cached) answer
  EXPECT_EQ(service.stats().cache.hits, 1u);
  // The answer is the planner's forecast of the canonicalized scenario.
  expect_forecast_eq(
      fa, core::MigrationPlanner(model).forecast(canonicalize(a, cfg.quantization_step)));
}

TEST(PredictionService, ShutdownDrainsThenRejectsNewWork) {
  const core::Wavm3Model model = make_model();
  PredictionService service(model, ServiceConfig{.threads = 2, .queue_capacity = 256});
  std::vector<std::future<core::MigrationForecast>> futures;
  for (int i = 0; i < 100; ++i) futures.push_back(service.submit(make_scenario(i)));
  service.shutdown(DrainMode::kDrain);
  for (auto& f : futures) EXPECT_GT(f.get().total_energy(), 0.0);  // all served
  auto rejected = service.submit(make_scenario(0));
  EXPECT_THROW(rejected.get(), std::runtime_error);
}

TEST(PredictionService, SubmitFastPathServesHitsWithoutQueueing) {
  const core::Wavm3Model model = make_model();
  PredictionService service(model, ServiceConfig{.threads = 1});
  const core::MigrationScenario sc = make_scenario(9);
  const core::MigrationForecast first = service.predict(sc);  // warm the cache
  ASSERT_EQ(service.stats().cache.insertions, 1u);
  const std::uint64_t hits_before = service.stats().cache.hits;
  auto fut = service.submit(sc);
  // The fast path resolves the future on the submitting thread, so it
  // must already be ready — no waiting on the single worker.
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  expect_forecast_eq(fut.get(), first);
  EXPECT_EQ(service.stats().cache.hits, hits_before + 1);
  // One predict + one submit of the same scenario: exactly one miss.
  EXPECT_EQ(service.stats().cache.misses, 1u);
}

// ---------------------------------------------------- simulated fidelity

TEST(SimBackend, Deterministic) {
  const core::Wavm3Model model = make_model();
  const core::MigrationScenario sc = make_scenario(4);
  expect_forecast_eq(simulate_forecast(model, sc), simulate_forecast(model, sc));
}

TEST(SimBackend, AgreesWithClosedFormOnTrafficAndTiming) {
  // The engine and the planner model the same pre-copy laws; their
  // traffic/timing answers must land in the same ballpark (the engine
  // adds helper-CPU feedback the closed form approximates).
  const core::MigrationScenario sc = make_scenario(1);
  const core::MigrationForecast sim = simulate_timings(sc);
  const core::MigrationForecast closed = core::forecast_timings(sc);
  EXPECT_NEAR(sim.total_bytes, closed.total_bytes, 0.25 * closed.total_bytes);
  EXPECT_NEAR(sim.times.transfer_duration(), closed.times.transfer_duration(),
              0.25 * closed.times.transfer_duration() + 1.0);
  EXPECT_GT(sim.downtime, 0.0);
}

TEST(PredictionService, SimulatedFidelityIsCachedAndMatchesBackend) {
  const core::Wavm3Model model = make_model();
  PredictionService service(
      model, ServiceConfig{.threads = 2, .fidelity = Fidelity::kSimulated});
  const core::MigrationScenario sc = make_scenario(6);
  const core::MigrationForecast direct = simulate_forecast(model, sc);
  expect_forecast_eq(service.predict(sc), direct);          // miss: engine run
  expect_forecast_eq(service.predict(sc), direct);          // hit
  expect_forecast_eq(service.submit(sc).get(), direct);     // hit via fast path
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache.misses, 1u);
  EXPECT_EQ(stats.cache.hits, 2u);
}

TEST(PredictionService, SimulatedQueryStreamServable) {
  const core::Wavm3Model model = make_model();
  PredictionService service(
      model, ServiceConfig{.threads = 2, .fidelity = Fidelity::kSimulated});
  QueryStreamGenerator g = QueryStreamGenerator::diurnal(QueryStreamOptions{}, 17);
  for (const core::MigrationForecast& fc : service.predict_batch(g.generate(16))) {
    EXPECT_GT(fc.total_energy(), 0.0);
    EXPECT_GT(fc.times.me, 0.0);
    EXPECT_GT(fc.total_bytes, 0.0);
  }
}

// --------------------------------------------------------- query stream

TEST(QueryStream, DeterministicAndRepeating) {
  QueryStreamOptions opts;
  opts.repeat_fraction = 0.9;
  QueryStreamGenerator g1 = QueryStreamGenerator::diurnal(opts, 99);
  QueryStreamGenerator g2 = QueryStreamGenerator::diurnal(opts, 99);
  const auto s1 = g1.generate(500);
  const auto s2 = g2.generate(500);
  ASSERT_EQ(s1.size(), 500u);
  int repeats = 0;
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].vm_mem_bytes, s2[i].vm_mem_bytes);
    EXPECT_EQ(s1[i].source_cpu_load, s2[i].source_cpu_load);
    for (std::size_t j = 0; j < i; ++j) {
      if (scenario_fields(s1[i]) == scenario_fields(s1[j])) {
        ++repeats;
        break;
      }
    }
  }
  // Roughly 90% of a 500-query stream should be replays.
  EXPECT_GT(repeats, 350);
  EXPECT_LT(repeats, 500);
}

TEST(QueryStream, ScenariosAreServable) {
  const core::Wavm3Model model = make_model();
  PredictionService service(model, ServiceConfig{.threads = 2});
  QueryStreamGenerator g = QueryStreamGenerator::diurnal(QueryStreamOptions{}, 7);
  for (const core::MigrationForecast& fc : service.predict_batch(g.generate(64))) {
    EXPECT_GT(fc.total_energy(), 0.0);
    EXPECT_GT(fc.times.me, 0.0);
  }
}

// --------------------------------------------------- circuit breaker

TEST(CircuitBreakerTest, TripsOpenThenProbesAndCloses) {
  double now = 0.0;
  CircuitBreaker b(
      {.failure_threshold = 2, .open_duration_s = 10.0, .half_open_successes = 2},
      [&now] { return now; });
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(b.allow());
  b.record_failure();
  EXPECT_TRUE(b.allow());
  b.record_failure();
  EXPECT_EQ(b.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(b.open_transitions(), 1u);
  EXPECT_FALSE(b.allow());
  EXPECT_EQ(b.rejections(), 1u);

  now = 9.9;
  EXPECT_FALSE(b.allow());  // cool-down not over yet
  now = 10.0;
  EXPECT_TRUE(b.allow());  // first half-open probe
  EXPECT_EQ(b.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(b.allow());  // only one probe in flight at a time
  b.record_success();
  EXPECT_TRUE(b.allow());  // second probe
  b.record_success();
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(b.allow());
  EXPECT_EQ(b.open_transitions(), 1u);
}

TEST(CircuitBreakerTest, FailedProbeReopensAndRestartsCooldown) {
  double now = 0.0;
  CircuitBreaker b(
      {.failure_threshold = 1, .open_duration_s = 5.0, .half_open_successes = 1},
      [&now] { return now; });
  EXPECT_TRUE(b.allow());
  b.record_failure();
  EXPECT_EQ(b.state(), CircuitBreaker::State::kOpen);

  now = 5.0;
  EXPECT_TRUE(b.allow());  // probe
  b.record_failure();      // probe failed: straight back to open
  EXPECT_EQ(b.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(b.open_transitions(), 2u);
  now = 9.0;               // cool-down restarted at t=5, not expired
  EXPECT_FALSE(b.allow());
  now = 10.0;
  EXPECT_TRUE(b.allow());
  b.record_success();
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, SuccessResetsTheFailureStreak) {
  CircuitBreaker b({.failure_threshold = 3, .open_duration_s = 1.0,
                    .half_open_successes = 1});
  b.record_failure();
  b.record_failure();
  b.record_success();  // streak broken
  b.record_failure();
  b.record_failure();
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
  b.record_failure();
  EXPECT_EQ(b.state(), CircuitBreaker::State::kOpen);
}

// ----------------------------------------------- degradation ladder

/// A sim backend that fails its first `failures` calls, then answers
/// with the closed-form planner (so results stay comparable).
struct FlakyBackend {
  std::shared_ptr<std::atomic<int>> remaining_failures;
  std::shared_ptr<std::atomic<int>> calls = std::make_shared<std::atomic<int>>(0);

  explicit FlakyBackend(int failures)
      : remaining_failures(std::make_shared<std::atomic<int>>(failures)) {}

  core::MigrationForecast operator()(const core::Wavm3Model& model,
                                     const core::MigrationScenario& sc) const {
    calls->fetch_add(1);
    if (remaining_failures->fetch_sub(1) > 0) {
      throw std::runtime_error("injected backend failure");
    }
    return core::MigrationPlanner(model).forecast(sc);
  }
};

TEST(PredictionService, SubmitAfterShutdownCarriesTypedError) {
  const core::Wavm3Model model = make_model();
  PredictionService service(model, ServiceConfig{.threads = 1});
  service.shutdown();
  std::future<core::MigrationForecast> f = service.submit(make_scenario(0));
  try {
    f.get();
    FAIL() << "expected PredictError";
  } catch (const PredictError& e) {
    EXPECT_EQ(e.code(), PredictErrorCode::kShutdown);
  }
  EXPECT_GE(service.stats().resilience.rejected_after_shutdown, 1u);
  EXPECT_FALSE(service.try_submit(make_scenario(1)).has_value());
}

TEST(PredictionService, FailingBackendDegradesToClosedForm) {
  const core::Wavm3Model model = make_model();
  ServiceConfig cfg;
  cfg.threads = 2;
  cfg.fidelity = Fidelity::kSimulated;
  cfg.backend_max_retries = 1;
  cfg.backend_backoff_initial_s = 0.0;
  cfg.breaker.failure_threshold = 4;
  cfg.breaker.open_duration_s = 3600.0;  // stays open for the whole test
  cfg.simulated_backend = [](const core::Wavm3Model&,
                             const core::MigrationScenario&) -> core::MigrationForecast {
    throw std::runtime_error("injected backend failure");
  };
  PredictionService service(model, cfg);
  const core::MigrationPlanner planner(model);

  // Every request is answered — at closed-form fidelity — and none
  // throws; the breaker trips open along the way.
  for (int i = 0; i < 20; ++i) {
    expect_forecast_eq(service.predict(make_scenario(i)),
                       planner.forecast(make_scenario(i)));
  }
  const ResilienceStats r = service.stats().resilience;
  EXPECT_EQ(r.degraded_to_closed_form, 20u);
  EXPECT_GE(r.backend_failures, 4u);
  EXPECT_GE(r.backend_retries, 1u);
  EXPECT_EQ(r.breaker_open_transitions, 1u);
  EXPECT_GT(r.breaker_rejections, 0u);  // later requests skipped the backend
  EXPECT_EQ(r.breaker_state, "open");
}

TEST(PredictionService, FailingBackendWithoutDegradationThrowsTyped) {
  const core::Wavm3Model model = make_model();
  ServiceConfig cfg;
  cfg.threads = 1;
  cfg.fidelity = Fidelity::kSimulated;
  cfg.backend_max_retries = 0;
  cfg.degrade_to_closed_form = false;
  cfg.simulated_backend = [](const core::Wavm3Model&,
                             const core::MigrationScenario&) -> core::MigrationForecast {
    throw std::runtime_error("injected backend failure");
  };
  PredictionService service(model, cfg);
  try {
    service.predict(make_scenario(0));
    FAIL() << "expected PredictError";
  } catch (const PredictError& e) {
    EXPECT_EQ(e.code(), PredictErrorCode::kBackendFailure);
  }
  // The same failure through the async path lands in the future.
  EXPECT_THROW(service.submit(make_scenario(1)).get(), PredictError);
}

TEST(PredictionService, BatchCarriesPerSlotErrorsIndexAligned) {
  const core::Wavm3Model model = make_model();
  const core::MigrationPlanner planner(model);
  ServiceConfig cfg;
  cfg.threads = 2;
  cfg.batch_max_size = 4;  // force several chunks
  cfg.fidelity = Fidelity::kSimulated;
  cfg.backend_max_retries = 0;
  cfg.degrade_to_closed_form = false;
  cfg.breaker.failure_threshold = 1000;  // keep the breaker out of the picture
  // Non-live scenarios (i % 3 == 0 in make_scenario) fail; live ones succeed.
  cfg.simulated_backend = [](const core::Wavm3Model& m,
                             const core::MigrationScenario& sc) -> core::MigrationForecast {
    if (sc.type == MigrationType::kNonLive) throw std::runtime_error("injected backend failure");
    return core::MigrationPlanner(m).forecast(sc);
  };
  PredictionService service(model, cfg);

  std::vector<core::MigrationScenario> batch;
  for (int i = 0; i < 12; ++i) batch.push_back(make_scenario(i));
  const std::vector<PredictionService::BatchItem> results = service.predict_batch_results(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i % 3 == 0) {
      ASSERT_FALSE(results[i].ok()) << "slot " << i;
      ASSERT_TRUE(results[i].error.has_value());
      EXPECT_EQ(results[i].error->code(), PredictErrorCode::kBackendFailure);
    } else {
      ASSERT_TRUE(results[i].ok()) << "slot " << i;
      expect_forecast_eq(*results[i].forecast, planner.forecast(batch[i]));
    }
  }

  // The all-or-nothing wrapper surfaces the lowest-index slot's error.
  EXPECT_THROW(
      {
        try {
          service.predict_batch(batch);
        } catch (const PredictError& e) {
          EXPECT_EQ(e.code(), PredictErrorCode::kBackendFailure);
          throw;
        }
      },
      PredictError);
}

TEST(PredictionService, BatchAfterShutdownFailsEverySlotTyped) {
  const core::Wavm3Model model = make_model();
  PredictionService service(model, ServiceConfig{.threads = 1});
  service.shutdown();
  std::vector<core::MigrationScenario> batch;
  for (int i = 0; i < 3; ++i) batch.push_back(make_scenario(i));
  const std::vector<PredictionService::BatchItem> results = service.predict_batch_results(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (const PredictionService::BatchItem& item : results) {
    ASSERT_FALSE(item.ok());
    ASSERT_TRUE(item.error.has_value());
    EXPECT_EQ(item.error->code(), PredictErrorCode::kShutdown);
  }
}

TEST(PredictionService, BatchDedupsRepeatsAndObservesBatchMetrics) {
  const core::Wavm3Model model = make_model();
  const core::MigrationPlanner planner(model);
  ServiceConfig cfg;
  cfg.threads = 2;
  cfg.batch_max_size = 8;
  PredictionService service(model, cfg);
  std::vector<core::MigrationScenario> batch;
  for (int i = 0; i < 30; ++i) batch.push_back(make_scenario(i % 5));  // heavy repeats
  const std::vector<PredictionService::BatchItem> results = service.predict_batch_results(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << "slot " << i;
    expect_forecast_eq(*results[i].forecast, planner.forecast(batch[i]));
  }
  // Repeats were deduplicated before hitting the backend: only the five
  // distinct scenarios were computed (and cached), the rest fanned out.
  EXPECT_EQ(service.stats().cache.misses, 5u);
  EXPECT_EQ(service.stats().cache.insertions, 5u);
  // A second pass is answered inline from the cache.
  const std::vector<PredictionService::BatchItem> again = service.predict_batch_results(batch);
  for (std::size_t i = 0; i < again.size(); ++i) {
    ASSERT_TRUE(again[i].ok());
    expect_forecast_eq(*again[i].forecast, planner.forecast(batch[i]));
  }
  EXPECT_EQ(service.stats().cache.hits, 30u);
}

TEST(PredictionService, BackendRecoversAfterRetries) {
  const core::Wavm3Model model = make_model();
  const FlakyBackend backend(2);  // first two calls fail, then healthy
  ServiceConfig cfg;
  cfg.threads = 1;
  cfg.fidelity = Fidelity::kSimulated;
  cfg.backend_max_retries = 2;
  cfg.backend_backoff_initial_s = 0.0;
  cfg.simulated_backend = backend;
  PredictionService service(model, cfg);

  const core::MigrationScenario sc = make_scenario(5);
  expect_forecast_eq(service.predict(sc),
                     core::MigrationPlanner(model).forecast(sc));
  const ResilienceStats r = service.stats().resilience;
  EXPECT_EQ(r.backend_failures, 2u);
  EXPECT_EQ(r.backend_retries, 2u);
  EXPECT_EQ(r.degraded_to_closed_form, 0u);  // the retry succeeded
  EXPECT_EQ(r.breaker_state, "closed");
}

TEST(PredictionService, DegradedAnswersAreNotCached) {
  const core::Wavm3Model model = make_model();
  const FlakyBackend backend(1);  // exactly one failure, then healthy
  ServiceConfig cfg;
  cfg.threads = 1;
  cfg.fidelity = Fidelity::kSimulated;
  cfg.backend_max_retries = 0;  // no retry: the first call degrades
  cfg.breaker.failure_threshold = 100;
  cfg.simulated_backend = backend;
  PredictionService service(model, cfg);

  const core::MigrationScenario sc = make_scenario(5);
  service.predict(sc);  // backend fails -> degraded, NOT cached
  EXPECT_EQ(service.stats().resilience.degraded_to_closed_form, 1u);
  service.predict(sc);  // must consult the (now healthy) backend again
  EXPECT_EQ(backend.calls->load(), 2);
  EXPECT_EQ(service.stats().resilience.degraded_to_closed_form, 1u);
  service.predict(sc);  // healthy answer was cached
  EXPECT_EQ(backend.calls->load(), 2);
}

/// A backend the test can hold shut: calls block until release().
struct BlockingBackend {
  struct Shared {
    std::mutex m;
    std::condition_variable cv;
    bool open = false;
    std::atomic<int> entered{0};
  };
  std::shared_ptr<Shared> s = std::make_shared<Shared>();

  void release() const {
    const std::lock_guard<std::mutex> lock(s->m);
    s->open = true;
    s->cv.notify_all();
  }
  void wait_entered(int n) const {
    while (s->entered.load() < n) std::this_thread::yield();
  }
  core::MigrationForecast operator()(const core::Wavm3Model& model,
                                     const core::MigrationScenario& sc) const {
    s->entered.fetch_add(1);
    std::unique_lock<std::mutex> lock(s->m);
    s->cv.wait(lock, [this] { return s->open; });
    return core::MigrationPlanner(model).forecast(sc);
  }
};

TEST(PredictionService, QueuedPastDeadlineFailsTyped) {
  const core::Wavm3Model model = make_model();
  const BlockingBackend backend;
  ServiceConfig cfg;
  cfg.threads = 1;
  cfg.cache_capacity = 0;  // keep every request on the worker path
  cfg.fidelity = Fidelity::kSimulated;
  cfg.backend_max_retries = 0;
  cfg.simulated_backend = backend;
  PredictionService service(model, cfg);

  // First request occupies the single worker inside the blocked
  // backend; the second has a deadline it will spend in the queue.
  std::future<core::MigrationForecast> a = service.submit(make_scenario(0));
  backend.wait_entered(1);
  std::future<core::MigrationForecast> b = service.submit(make_scenario(1), 0.02);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  backend.release();

  EXPECT_NO_THROW(a.get());
  try {
    b.get();
    FAIL() << "expected PredictError";
  } catch (const PredictError& e) {
    EXPECT_EQ(e.code(), PredictErrorCode::kDeadlineExceeded);
  }
  EXPECT_EQ(service.stats().resilience.deadline_expired, 1u);
}

TEST(PredictionService, TrySubmitShedsWhenQueueIsFull) {
  const core::Wavm3Model model = make_model();
  const BlockingBackend backend;
  ServiceConfig cfg;
  cfg.threads = 1;
  cfg.queue_capacity = 1;
  cfg.cache_capacity = 0;
  cfg.fidelity = Fidelity::kSimulated;
  cfg.backend_max_retries = 0;
  cfg.simulated_backend = backend;
  PredictionService service(model, cfg);

  std::future<core::MigrationForecast> a = service.submit(make_scenario(0));
  backend.wait_entered(1);  // worker busy; the queue itself is empty
  std::optional<std::future<core::MigrationForecast>> b =
      service.try_submit(make_scenario(1));  // fills the queue slot
  ASSERT_TRUE(b.has_value());
  std::optional<std::future<core::MigrationForecast>> c =
      service.try_submit(make_scenario(2));  // queue full: shed, not blocked
  EXPECT_FALSE(c.has_value());
  EXPECT_EQ(service.stats().resilience.shed, 1u);

  backend.release();
  EXPECT_NO_THROW(a.get());
  EXPECT_NO_THROW(b->get());
}

TEST(PredictionService, DestructorDrainsPendingFutures) {
  const core::Wavm3Model model = make_model();
  std::vector<std::future<core::MigrationForecast>> futures;
  {
    PredictionService service(model,
                              ServiceConfig{.threads = 2, .queue_capacity = 64});
    for (int i = 0; i < 32; ++i) futures.push_back(service.submit(make_scenario(i)));
    // Service destroyed here with futures still outstanding: the
    // drain-mode destructor must finish them, not abandon them.
  }
  const core::MigrationPlanner planner(model);
  for (int i = 0; i < 32; ++i) {
    expect_forecast_eq(futures[static_cast<std::size_t>(i)].get(),
                       planner.forecast(make_scenario(i)));
  }
}

TEST(PredictionService, CacheCapacityZeroDisablesCaching) {
  const core::Wavm3Model model = make_model();
  PredictionService service(model,
                            ServiceConfig{.threads = 1, .cache_capacity = 0});
  const core::MigrationScenario sc = make_scenario(4);
  const core::MigrationForecast first = service.predict(sc);
  expect_forecast_eq(service.predict(sc), first);  // recomputed, same answer
  expect_forecast_eq(service.submit(sc).get(), first);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache.hits, 0u);
  EXPECT_EQ(stats.cache.misses, 0u);
  EXPECT_EQ(stats.cache.insertions, 0u);
}

TEST(PredictionService, FeedbackWithoutSinkIsDropped) {
  PredictionService service(make_model(), ServiceConfig{.threads = 1});
  MigrationFeedback fb{100.0, 120.0, 12.0};
  EXPECT_FALSE(service.record_feedback(make_scenario(1), fb));
  EXPECT_NE(service.metrics_prometheus().find("serve_feedback_dropped_total 1"),
            std::string::npos);
}

TEST(PredictionService, FeedbackReachesSinkAsynchronously) {
  PredictionService service(make_model(), ServiceConfig{.threads = 2});
  std::atomic<int> delivered{0};
  std::atomic<double> energy_sum{0.0};
  service.set_feedback_sink(
      [&](const core::MigrationScenario&, const MigrationFeedback& fb) {
        delivered.fetch_add(1);
        double cur = energy_sum.load();
        while (!energy_sum.compare_exchange_weak(cur, cur + fb.source_energy_j)) {
        }
      });
  for (int i = 0; i < 40; ++i) {
    MigrationFeedback fb{10.0 * i, 5.0, 3.0};
    EXPECT_TRUE(service.record_feedback(make_scenario(i), fb));
  }
  service.shutdown(DrainMode::kDrain);
  EXPECT_EQ(delivered.load(), 40);
  EXPECT_DOUBLE_EQ(energy_sum.load(), 10.0 * (39.0 * 40.0 / 2.0));
}

TEST(PredictionService, FeedbackRejectsCorruptSamplesBeforeTheSink) {
  PredictionService service(make_model(), ServiceConfig{.threads = 1});
  std::atomic<int> delivered{0};
  service.set_feedback_sink(
      [&](const core::MigrationScenario&, const MigrationFeedback&) { delivered.fetch_add(1); });
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(service.record_feedback(make_scenario(1), MigrationFeedback{nan, 1.0, 1.0}));
  EXPECT_FALSE(service.record_feedback(make_scenario(1), MigrationFeedback{1.0, nan, 1.0}));
  EXPECT_FALSE(service.record_feedback(make_scenario(1), MigrationFeedback{1.0, 1.0, 0.0}));
  service.shutdown(DrainMode::kDrain);
  EXPECT_EQ(delivered.load(), 0);
}

TEST(PredictionService, ThrowingSinkIsCountedAndDoesNotKillWorkers) {
  PredictionService service(make_model(), ServiceConfig{.threads = 1});
  service.set_feedback_sink(
      [](const core::MigrationScenario&, const MigrationFeedback&) {
        throw std::runtime_error("consumer bug");
      });
  EXPECT_TRUE(service.record_feedback(make_scenario(1), MigrationFeedback{1.0, 1.0, 1.0}));
  // The worker that ran the throwing sink must still answer queries.
  const core::MigrationForecast fc = service.submit(make_scenario(2)).get();
  expect_forecast_eq(fc, core::MigrationPlanner(make_model()).forecast(make_scenario(2)));
  EXPECT_NE(service.metrics_prometheus().find("serve_feedback_errors_total 1"),
            std::string::npos);
}

TEST(PredictionService, ClearFeedbackSinkStopsDelivery) {
  PredictionService service(make_model(), ServiceConfig{.threads = 1});
  std::atomic<int> delivered{0};
  service.set_feedback_sink(
      [&](const core::MigrationScenario&, const MigrationFeedback&) { delivered.fetch_add(1); });
  EXPECT_TRUE(service.record_feedback(make_scenario(1), MigrationFeedback{1.0, 1.0, 1.0}));
  service.clear_feedback_sink();
  EXPECT_FALSE(service.record_feedback(make_scenario(2), MigrationFeedback{1.0, 1.0, 1.0}));
  service.shutdown(DrainMode::kDrain);
  EXPECT_EQ(delivered.load(), 1);
}

TEST(PredictionService, BackoffDelayIsCappedAtHighAttemptCounts) {
  // Regression: pow(multiplier, attempt-1) overflows toward inf within
  // a few dozen attempts of a 2x multiplier. Without the cap a large
  // retry budget turned one failing request into an effectively
  // unbounded sleep. With the cap, 60 retries at multiplier 2 complete
  // promptly: 2^59 * 1e-6 s would otherwise be ~18k years.
  const core::Wavm3Model model = make_model();
  ServiceConfig cfg;
  cfg.threads = 1;
  cfg.fidelity = Fidelity::kSimulated;
  cfg.backend_max_retries = 60;
  cfg.backend_backoff_initial_s = 1e-6;
  cfg.backend_backoff_multiplier = 2.0;
  cfg.backend_backoff_max_s = 1e-4;
  cfg.breaker.failure_threshold = 1000;  // keep the breaker out of the way
  cfg.simulated_backend = [](const core::Wavm3Model&,
                             const core::MigrationScenario&) -> core::MigrationForecast {
    throw std::runtime_error("injected backend failure");
  };
  PredictionService service(model, cfg);
  const auto start = std::chrono::steady_clock::now();
  const core::MigrationForecast fc = service.predict(make_scenario(0));
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  // 61 attempts, each backoff capped at 1e-4 s: well under a second
  // even on a loaded CI box.
  EXPECT_LT(elapsed_s, 30.0);
  expect_forecast_eq(fc, core::MigrationPlanner(model).forecast(make_scenario(0)));
  EXPECT_GE(service.stats().resilience.backend_retries, 60u);
}

TEST(PredictionService, NegativeBackoffCapRejected) {
  ServiceConfig cfg;
  cfg.backend_backoff_max_s = -1.0;
  EXPECT_THROW(PredictionService(make_model(), cfg), util::ContractError);
}

TEST(PredictionService, ConcurrentFailingBackendIsSafe) {
  // TSan coverage of the whole ladder under contention: breaker
  // transitions, retry/backoff bookkeeping and degradation counters
  // hammered from many client threads at once.
  const core::Wavm3Model model = make_model();
  ServiceConfig cfg;
  cfg.threads = 4;
  cfg.fidelity = Fidelity::kSimulated;
  cfg.backend_max_retries = 1;
  cfg.backend_backoff_initial_s = 1e-4;
  cfg.breaker.failure_threshold = 3;
  cfg.breaker.open_duration_s = 0.002;  // open and half-open both exercised
  cfg.simulated_backend = [](const core::Wavm3Model&,
                             const core::MigrationScenario&) -> core::MigrationForecast {
    throw std::runtime_error("injected backend failure");
  };
  PredictionService service(model, cfg);

  std::atomic<int> answered{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 6; ++c) {
    clients.emplace_back([&service, &answered, c] {
      for (int i = 0; i < 50; ++i) {
        const core::MigrationForecast fc = service.predict(make_scenario(c * 50 + i));
        if (fc.times.me >= 0.0) answered.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(answered.load(), 300);
  const ResilienceStats r = service.stats().resilience;
  EXPECT_EQ(r.degraded_to_closed_form, 300u);
  EXPECT_GE(r.breaker_open_transitions, 1u);
}

}  // namespace
}  // namespace wavm3::serve
