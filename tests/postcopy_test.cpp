// Tests for the post-copy migration extension: handoff semantics,
// downtime, data volume, and planner agreement.
#include <gtest/gtest.h>

#include "cloud/datacenter.hpp"
#include "cloud/instances.hpp"
#include "core/planner.hpp"
#include "migration/engine.hpp"
#include "net/bandwidth_model.hpp"
#include "sim/simulator.hpp"
#include "util/units.hpp"

namespace wavm3::migration {
namespace {

struct World {
  sim::Simulator sim;
  cloud::DataCenter dc;
  std::unique_ptr<MigrationEngine> engine;

  World() {
    cloud::HostSpec h;
    h.vcpus = 32;
    h.ram_bytes = util::gib(32);
    h.name = "src";
    dc.add_host(h);
    h.name = "tgt";
    dc.add_host(h);
    net::LinkSpec link;
    link.wire_rate = util::gbit_per_s(1);
    dc.network().connect("src", "tgt", link);
    engine = std::make_unique<MigrationEngine>(sim, dc, net::BandwidthModel{});
  }

  const MigrationRecord& migrate_mem(double fraction, MigrationType type) {
    dc.host("src")->add_vm(cloud::make_migrating_mem_vm("mv", fraction));
    engine->migrate("mv", "src", "tgt", type);
    sim.run_to_completion();
    return engine->completed().back();
  }
};

TEST(PostCopy, BasicShape) {
  World w;
  const MigrationRecord& r = w.migrate_mem(0.95, MigrationType::kPostCopy);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.times.well_formed());
  ASSERT_EQ(r.rounds.size(), 2u);  // handoff + pull
  EXPECT_NEAR(r.rounds[0].bytes, 64.0 * 1024 * 1024, 1.0);
  EXPECT_FALSE(r.degenerated_to_nonlive);
}

TEST(PostCopy, MovesExactlyOneMemoryImage) {
  // The decisive advantage over pre-copy for memory-hot VMs: dirtied
  // pages never re-cross the wire.
  World w;
  const MigrationRecord& r = w.migrate_mem(0.95, MigrationType::kPostCopy);
  EXPECT_NEAR(r.total_bytes, util::gib(4), 2e6);
}

TEST(PostCopy, DowntimeIsHandoffOnly) {
  World w;
  const MigrationRecord& r = w.migrate_mem(0.95, MigrationType::kPostCopy);
  // 64 MiB over ~110 MB/s: well under a second.
  EXPECT_LT(r.downtime, 1.5);
  EXPECT_GT(r.downtime, 0.1);
}

TEST(PostCopy, BeatsPreCopyOnHotVmDowntimeAndTraffic) {
  World post;
  const MigrationRecord& r_post = post.migrate_mem(0.95, MigrationType::kPostCopy);
  World pre;
  const MigrationRecord& r_pre = pre.migrate_mem(0.95, MigrationType::kLive);
  EXPECT_LT(r_post.downtime, 0.1 * r_pre.downtime);
  EXPECT_LT(r_post.total_bytes, 0.5 * r_pre.total_bytes);
  EXPECT_LT(r_post.times.transfer_duration(), r_pre.times.transfer_duration());
}

TEST(PostCopy, VmRunsOnTargetDuringPull) {
  World w;
  w.dc.host("src")->add_vm(cloud::make_migrating_mem_vm("mv", 0.95));
  w.engine->migrate("mv", "src", "tgt", MigrationType::kPostCopy);
  bool seen_running_on_target_mid_transfer = false;
  w.sim.schedule_periodic(0.25, 0.5, [&] {
    if (!w.engine->migration_active()) return;
    if (w.engine->current_phase() != MigrationPhase::kTransfer) return;
    const auto vm = w.dc.host("tgt")->vm("mv");
    if (vm && vm->state() == cloud::VmState::kRunning) {
      seen_running_on_target_mid_transfer = true;
      // Its CPU shows up in the target's utilisation.
      EXPECT_GT(w.dc.host("tgt")->cpu_used(w.sim.now()), 1.0);
    }
  });
  while (w.engine->migration_active()) w.sim.step();
  EXPECT_TRUE(seen_running_on_target_mid_transfer);
  EXPECT_EQ(w.dc.host("tgt")->vm("mv")->state(), cloud::VmState::kRunning);
  EXPECT_FALSE(w.dc.host("src")->has_vm("mv"));
}

TEST(PostCopy, NoDirtyRatioTracking) {
  World w;
  w.dc.host("src")->add_vm(cloud::make_migrating_mem_vm("mv", 0.95));
  w.engine->migrate("mv", "src", "tgt", MigrationType::kPostCopy);
  double max_dr = 0.0;
  w.sim.schedule_periodic(0.25, 0.5, [&] {
    max_dr = std::max(max_dr, w.engine->current_dirty_ratio());
  });
  while (w.engine->migration_active()) w.sim.step();
  EXPECT_DOUBLE_EQ(max_dr, 0.0);
}

TEST(PostCopy, PlannerAgreesWithEngine) {
  World w;
  const MigrationRecord& r = w.migrate_mem(0.95, MigrationType::kPostCopy);

  core::MigrationScenario sc;
  sc.type = MigrationType::kPostCopy;
  sc.vm_mem_bytes = util::gib(4);
  sc.vm_cpu_vcpus = 1.0;
  sc.vm_dirty_pages_per_s = 300000.0;
  sc.vm_working_set_pages = 0.95 * util::gib(4) / util::kPageSize;
  const core::MigrationForecast fc = core::forecast_timings(sc);

  EXPECT_NEAR(fc.times.transfer_duration(), r.times.transfer_duration(),
              0.1 * r.times.transfer_duration());
  EXPECT_NEAR(fc.total_bytes, r.total_bytes, 0.05 * r.total_bytes);
  EXPECT_NEAR(fc.downtime, r.downtime, 0.5 * r.downtime);
}

}  // namespace
}  // namespace wavm3::migration
