// Integration tests for the experiment layer: testbeds, scenario
// generation, the SV-B run protocol, campaign assembly, determinism,
// figure/table rendering, and the paper's qualitative trace shapes.
#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "cloud/instances.hpp"
#include "exp/campaign.hpp"
#include "exp/figures.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/tables.hpp"
#include "exp/testbeds.hpp"
#include "models/huang.hpp"
#include "power/stabilization.hpp"
#include "util/error.hpp"
#include "test_helpers.hpp"

namespace wavm3::exp {
namespace {

using migration::MigrationPhase;
using migration::MigrationType;
using models::HostRole;

TEST(Testbeds, MatchTableIIc) {
  const Testbed m = testbed_m();
  EXPECT_EQ(m.host_a.name, "m01");
  EXPECT_EQ(m.host_b.name, "m02");
  EXPECT_EQ(m.host_a.vcpus, 32);
  const Testbed o = testbed_o();
  EXPECT_EQ(o.host_a.vcpus, 40);
  // Newer Xeons idle far lower than the Opterons: the SVI-F bias source.
  EXPECT_GT(m.power.idle_watts, o.power.idle_watts + 200.0);
  EXPECT_DOUBLE_EQ(m.link.wire_rate, 125e6);
  // Each pair is architecture-homogeneous (Xen requirement, paper SI)...
  EXPECT_EQ(m.host_a.cpu_architecture, m.host_b.cpu_architecture);
  EXPECT_EQ(o.host_a.cpu_architecture, o.host_b.cpu_architecture);
  // ...but the two pairs differ, so m<->o migration is illegal.
  EXPECT_NE(m.host_a.cpu_architecture, o.host_a.cpu_architecture);
}

TEST(Testbeds, CrossPairMigrationRejected) {
  // A hypothetical m01 -> o1 migration must be refused like Xen would.
  sim::Simulator sim;
  cloud::DataCenter dc;
  dc.add_host(testbed_m().host_a);
  dc.add_host(testbed_o().host_a);
  dc.network().connect("m01", "o1", testbed_m().link);
  dc.host("m01")->add_vm(cloud::make_migrating_cpu_vm("mv"));
  migration::MigrationEngine engine(sim, dc, net::BandwidthModel{});
  EXPECT_THROW(engine.migrate("mv", "m01", "o1", MigrationType::kLive),
               util::ContractError);
}

TEST(Scenarios, FullDesignHas42Entries) {
  const auto all = all_scenarios();
  EXPECT_EQ(all.size(), 42u);  // 12+12+6+6+6
  std::set<std::string> names;
  for (const auto& sc : all) names.insert(sc.name);
  EXPECT_EQ(names.size(), all.size()) << "scenario names must be unique";
}

TEST(Scenarios, FamiliesFollowTableIIa) {
  for (const auto& sc : cpuload_source_scenarios()) {
    EXPECT_EQ(sc.target_load_vms, 0);
    EXPECT_EQ(sc.migrating, MigratingKind::kCpu);
  }
  for (const auto& sc : memload_vm_scenarios()) {
    EXPECT_EQ(sc.type, MigrationType::kLive);  // DR=0 under non-live
    EXPECT_EQ(sc.source_load_vms, 0);
    EXPECT_EQ(sc.migrating, MigratingKind::kMem);
  }
  for (const auto& sc : memload_source_scenarios()) {
    EXPECT_DOUBLE_EQ(sc.mem_fraction, 0.95);
    EXPECT_EQ(sc.type, MigrationType::kLive);
  }
  EXPECT_EQ(cpu_sweep_vm_counts(), (std::vector<int>{0, 1, 3, 5, 7, 8}));
  EXPECT_EQ(mem_sweep_fractions().size(), 6u);
}

TEST(Runner, IdlePowerMeasurementNearGroundTruth) {
  ExperimentRunner runner(testbed_m(), RunnerOptions{}, 7);
  const double idle = runner.measure_idle_power(20.0);
  // Idle host: base draw + dom-0 housekeeping only.
  EXPECT_NEAR(idle, 433.0, 4.0);
}

TEST(Runner, SingleRunFollowsProtocol) {
  ExperimentRunner runner(testbed_m(), RunnerOptions{}, 11);
  runner.set_idle_power_reference(433.0);
  ScenarioConfig sc = cpuload_source_scenarios().front();  // 0vm non-live
  const RunResult run = runner.run(sc, 0);

  EXPECT_TRUE(run.record.completed);
  EXPECT_TRUE(run.record.times.well_formed());
  // Migration was not issued before the warm-up window.
  EXPECT_GE(run.record.times.ms, runner.options().min_warmup);
  // The pre-migration trace had stabilised when the migration fired.
  const power::PowerTrace pre = run.source_trace.slice(0.0, run.record.times.ms);
  EXPECT_TRUE(power::is_stabilized(pre, runner.options().stabilization));
  // Sampling continued past the end of the migration.
  EXPECT_GT(run.source_trace.end_time(), run.record.times.me + 5.0);
  EXPECT_EQ(run.source_trace.size(), run.target_trace.size());
}

TEST(Runner, ObservationsAreRoleAwareAndPhaseLabelled) {
  ExperimentRunner runner(testbed_m(), RunnerOptions{}, 13);
  runner.set_idle_power_reference(433.0);
  // A live memory-intensive migration: DR on source only.
  ScenarioConfig sc = memload_vm_scenarios().back();  // 95%
  const RunResult run = runner.run(sc, 0);

  EXPECT_EQ(run.source_obs.role, HostRole::kSource);
  EXPECT_EQ(run.target_obs.role, HostRole::kTarget);
  EXPECT_EQ(run.source_obs.samples.size(), run.target_obs.samples.size());

  bool src_dr_seen = false;
  for (const auto& s : run.source_obs.samples) {
    EXPECT_NE(s.phase, MigrationPhase::kNormal);
    EXPECT_GE(s.time, run.record.times.ms);
    EXPECT_LE(s.time, run.record.times.me);
    if (s.dirty_ratio > 0.0) {
      src_dr_seen = true;
      EXPECT_EQ(s.phase, MigrationPhase::kTransfer);
    }
  }
  EXPECT_TRUE(src_dr_seen);
  for (const auto& s : run.target_obs.samples) EXPECT_DOUBLE_EQ(s.dirty_ratio, 0.0);

  EXPECT_DOUBLE_EQ(run.source_obs.data_bytes, run.record.total_bytes);
  EXPECT_GT(run.source_obs.avg_bandwidth, 1e6);
  EXPECT_DOUBLE_EQ(run.source_obs.idle_power_watts, 433.0);
}

TEST(Runner, FeatureTraceCoversWholeRun) {
  ExperimentRunner runner(testbed_m(), RunnerOptions{}, 17);
  runner.set_idle_power_reference(433.0);
  const ScenarioConfig sc = memload_vm_scenarios().front();  // 5%, live
  const RunResult run = runner.run(sc, 0);

  // One feature sample per meter tick, spanning pre- and post-migration.
  EXPECT_EQ(run.features.size(), run.source_trace.size());
  EXPECT_LT(run.features[0].time, run.record.times.ms);
  EXPECT_GT(run.features[run.features.size() - 1].time, run.record.times.me);

  // Phase labels agree with the record's timestamps.
  bool saw_normal = false;
  bool saw_transfer = false;
  for (const auto& f : run.features.samples()) {
    EXPECT_EQ(f.phase, run.record.times.phase_at(f.time));
    saw_normal |= f.phase == MigrationPhase::kNormal;
    saw_transfer |= f.phase == MigrationPhase::kTransfer;
  }
  EXPECT_TRUE(saw_normal);
  EXPECT_TRUE(saw_transfer);

  // Transfer-phase means carry the migration signal.
  const auto transfer_mean = run.features.phase_mean(MigrationPhase::kTransfer);
  EXPECT_GT(transfer_mean.bandwidth, 1e6);
  EXPECT_GT(transfer_mean.cpu_source, 0.5);
}

TEST(Runner, DeterministicInSeedAndRunIndex) {
  ScenarioConfig sc = cpuload_source_scenarios()[1];
  ExperimentRunner r1(testbed_m(), RunnerOptions{}, 21);
  ExperimentRunner r2(testbed_m(), RunnerOptions{}, 21);
  const RunResult a = r1.run(sc, 3);
  const RunResult b = r2.run(sc, 3);
  EXPECT_DOUBLE_EQ(a.source_obs.observed_energy(), b.source_obs.observed_energy());
  EXPECT_DOUBLE_EQ(a.record.times.te, b.record.times.te);

  const RunResult c = r1.run(sc, 4);  // different run index -> different jitter
  EXPECT_NE(a.source_obs.observed_energy(), c.source_obs.observed_energy());
}

TEST(Campaign, AssemblesDatasetWithBothRoles) {
  const CampaignResult& campaign = wavm3::testing::fast_campaign_m();
  EXPECT_EQ(campaign.testbed_name, "m01-m02");
  EXPECT_GT(campaign.dataset.size(), 0u);
  // Two observations (source+target) per run.
  std::size_t total_runs = 0;
  for (const auto& s : campaign.summaries) total_runs += s.runs;
  EXPECT_EQ(campaign.dataset.size(), 2 * total_runs);
  EXPECT_EQ(campaign.representative.size(), campaign.summaries.size());
  EXPECT_NEAR(campaign.measured_idle_power, 433.0, 4.0);
}

TEST(Campaign, QualitativeShapesMatchPaper) {
  // Use the full paper campaign shapes via the fast campaign's extreme
  // points: more load -> more energy; multiplexing -> longer transfer;
  // higher DR -> longer transfer and larger downtime.
  const CampaignResult& campaign = wavm3::testing::fast_campaign_m();
  const auto find = [&](const std::string& name) -> const ScenarioSummary& {
    for (const auto& s : campaign.summaries)
      if (s.config.name == name) return s;
    throw std::runtime_error("missing summary " + name);
  };

  const auto& src0 = find("CPULOAD-SOURCE/0vm/non-live");
  const auto& src8 = find("CPULOAD-SOURCE/8vm/non-live");
  EXPECT_GT(src8.mean_source_energy, 1.5 * src0.mean_source_energy);
  EXPECT_GT(src8.mean_transfer_duration, 1.3 * src0.mean_transfer_duration);

  const auto& tgt8 = find("CPULOAD-TARGET/8vm/live");
  const auto& tgt0 = find("CPULOAD-TARGET/0vm/live");
  EXPECT_GT(tgt8.mean_target_energy, 1.5 * tgt0.mean_target_energy);

  const auto& mem5 = find("MEMLOAD-VM/5%/live");
  const auto& mem95 = find("MEMLOAD-VM/95%/live");
  EXPECT_GT(mem95.mean_transfer_duration, 1.5 * mem5.mean_transfer_duration);
  EXPECT_GT(mem95.mean_downtime, 2.0 * mem5.mean_downtime);
  EXPECT_GT(mem95.mean_total_bytes, mem5.mean_total_bytes);
}

TEST(Campaign, PhaseEnergiesSumToTotal) {
  // SV-B's four metrics: initiation + transfer + activation must add up
  // to the total migration energy (up to phase-boundary intervals).
  const CampaignResult& campaign = wavm3::testing::fast_campaign_m();
  for (const auto& s : campaign.summaries) {
    const double sum = s.mean_source_phase_energy[0] + s.mean_source_phase_energy[1] +
                       s.mean_source_phase_energy[2];
    EXPECT_NEAR(sum, s.mean_source_energy, 3.0 * 0.5 * 900.0)
        << s.config.name;
    // Transfer dominates every migration in the design.
    EXPECT_GT(s.mean_source_phase_energy[1], s.mean_source_phase_energy[0]);
    EXPECT_GT(s.mean_source_phase_energy[1], s.mean_source_phase_energy[2]);
  }
  const std::string table = render_phase_energy_table(campaign);
  EXPECT_NE(table.find("E_transfer"), std::string::npos);
}

TEST(Campaign, RepetitionProtocolHonoursMinRuns) {
  const CampaignResult& campaign = wavm3::testing::fast_campaign_m();
  for (const auto& s : campaign.summaries) {
    EXPECT_GE(s.runs, 3u);  // fast options: min 3
    EXPECT_LE(s.runs, 3u);
  }
}

TEST(Figures, PowerFigureHasOneSeriesPerLevel) {
  const CampaignResult& campaign = wavm3::testing::fast_campaign_m();
  const FigurePanel panel = make_power_figure(campaign, Family::kCpuLoadSource,
                                              MigrationType::kNonLive, HostRole::kSource);
  EXPECT_EQ(panel.series.size(), 2u);  // fast campaign: 0vm and 8vm
  EXPECT_EQ(panel.series.front().name, "0 VM");
  EXPECT_EQ(panel.series.back().name, "8 VM");
  for (const auto& s : panel.series) EXPECT_GT(s.x.size(), 50u);
  const std::string chart = render_figure(panel);
  EXPECT_NE(chart.find("POWER [W]"), std::string::npos);
  EXPECT_NE(chart.find("legend:"), std::string::npos);
}

TEST(Figures, PhaseAnatomyMarksAllFourInstants) {
  const CampaignResult& campaign = wavm3::testing::fast_campaign_m();
  const RunResult& run = campaign.representative.begin()->second;
  const FigurePanel panel = make_phase_anatomy_figure(run, HostRole::kSource);
  EXPECT_EQ(panel.series.size(), 5u);  // power + ms/ts/te/me markers
  EXPECT_EQ(panel.series[1].name, "ms");
  EXPECT_EQ(panel.series[4].name, "me");
}

TEST(Figures, CsvExportRoundTrips) {
  const CampaignResult& campaign = wavm3::testing::fast_campaign_m();
  const FigurePanel panel = make_power_figure(campaign, Family::kMemLoadVm,
                                              MigrationType::kLive, HostRole::kTarget);
  const std::string path = ::testing::TempDir() + "/wavm3_fig.csv";
  ASSERT_TRUE(export_figure_csv(panel, path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char header[256] = {0};
  ASSERT_NE(std::fgets(header, sizeof(header), f), nullptr);
  std::fclose(f);
  EXPECT_NE(std::string(header).find("time_s"), std::string::npos);
  EXPECT_NE(std::string(header).find("_watts"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Tables, StaticTablesRender) {
  const std::string t1 = render_table1_workload_impact();
  EXPECT_NE(t1.find("CPU-intensive"), std::string::npos);
  const std::string t2 = render_table2_setup(testbed_m(), testbed_o());
  EXPECT_NE(t2.find("migrating-mem"), std::string::npos);
  EXPECT_NE(t2.find("m01/m02"), std::string::npos);
  EXPECT_NE(t2.find("pagedirtier"), std::string::npos);
}

TEST(Tables, ModelTablesRender) {
  const CampaignResult& campaign = wavm3::testing::fast_campaign_m();
  const auto [train, test] = campaign.dataset.split(0.2, 99);
  core::Wavm3Model wavm3;
  wavm3.fit(train);
  models::HuangModel huang;
  huang.fit(train);
  models::LiuModel liu;
  liu.fit(train);
  models::StrunkModel strunk;
  strunk.fit(train);

  const std::string t34 = render_coefficients_table(
      wavm3, MigrationType::kLive, campaign.measured_idle_power, 167.0, "Table IV");
  EXPECT_NE(t34.find("g(t)"), std::string::npos);
  EXPECT_NE(t34.find("Source"), std::string::npos);

  const std::string t3 = render_coefficients_table(
      wavm3, MigrationType::kNonLive, campaign.measured_idle_power, 167.0, "Table III");
  EXPECT_EQ(t3.find("g(t)"), std::string::npos);  // non-live has no DR column

  const std::string t6 = render_table6_baselines(huang, liu, strunk);
  EXPECT_NE(t6.find("STRUNK"), std::string::npos);

  const auto rows = models::evaluate_models({&wavm3, &huang, &liu, &strunk}, test);
  const std::string t7 = render_table7_comparison(rows);
  EXPECT_NE(t7.find("WAVM3"), std::string::npos);
  EXPECT_NE(t7.find("NRMSE (live)"), std::string::npos);

  const std::string t5 = render_table5_nrmse(rows, rows);
  EXPECT_NE(t5.find("Table V"), std::string::npos);

  const std::string summary = render_campaign_summary(campaign);
  EXPECT_NE(summary.find("Campaign summary"), std::string::npos);
}

TEST(Traces, NonLiveSourceDropsAtSuspension) {
  // Fig. 3a behaviour at 0 load: suspending the migrating VM at ms
  // drops the source draw versus the pre-migration plateau.
  const CampaignResult& campaign = wavm3::testing::fast_campaign_m();
  const auto it = campaign.representative.find("CPULOAD-SOURCE/0vm/non-live");
  ASSERT_NE(it, campaign.representative.end());
  const RunResult& run = it->second;
  const double before =
      run.source_trace.mean_power_between(run.record.times.ms - 8.0, run.record.times.ms - 1.0);
  const double during = run.source_trace.mean_power_between(run.record.times.ms + 0.5,
                                                            run.record.times.ts);
  EXPECT_LT(during, before - 10.0);
}

TEST(Traces, TargetRisesAfterMigration) {
  // Fig. 4b behaviour: once the VM runs on the target its draw stays up.
  const CampaignResult& campaign = wavm3::testing::fast_campaign_m();
  const auto it = campaign.representative.find("CPULOAD-TARGET/0vm/live");
  ASSERT_NE(it, campaign.representative.end());
  const RunResult& run = it->second;
  const double before =
      run.target_trace.mean_power_between(run.record.times.ms - 8.0, run.record.times.ms - 1.0);
  const double after = run.target_trace.mean_power_between(run.record.times.me + 2.0,
                                                           run.record.times.me + 10.0);
  EXPECT_GT(after, before + 20.0);
}

TEST(Traces, MultiplexedSourceStaysFlat) {
  // Fig. 3a, 8-VM case: the saturated source's draw barely moves when
  // the migrating VM is suspended.
  const CampaignResult& campaign = wavm3::testing::fast_campaign_m();
  const auto it = campaign.representative.find("CPULOAD-SOURCE/8vm/non-live");
  ASSERT_NE(it, campaign.representative.end());
  const RunResult& run = it->second;
  const double before =
      run.source_trace.mean_power_between(run.record.times.ms - 8.0, run.record.times.ms - 1.0);
  const double during = run.source_trace.mean_power_between(run.record.times.ts + 2.0,
                                                            run.record.times.te - 2.0);
  EXPECT_NEAR(during, before, 35.0);  // flat-ish, vs a ~60 W drop when idle
}

}  // namespace
}  // namespace wavm3::exp
