// Persistence tests for core/coeff_io: a fitted coefficient table must
// survive save -> load -> save byte-stably and numerically exactly, and
// malformed coefficient CSVs must be rejected loudly (not read as
// zeros).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "core/coeff_io.hpp"
#include "core/wavm3_model.hpp"
#include "util/error.hpp"

namespace wavm3::core {
namespace {

using migration::MigrationType;

/// Coefficients with awkward values: non-terminating binary fractions,
/// tiny magnitudes, zeros, and a negative bias, so exact round-tripping
/// is actually exercised.
Wavm3Model make_model() {
  Wavm3Model m;
  int k = 0;
  for (const MigrationType type : {MigrationType::kNonLive, MigrationType::kLive}) {
    Wavm3Coefficients table;
    for (RoleCoefficients* role : {&table.source, &table.target}) {
      for (PhaseCoefficients* phase :
           {&role->initiation, &role->transfer, &role->activation}) {
        ++k;
        phase->alpha = 1.0 / 3.0 + k;
        phase->beta = 1.1e-17 * k;
        phase->gamma = k % 2 == 0 ? 0.0 : 0.1 * k;
        phase->delta = -0.7 / (k + 1);
        phase->c = 200.0 + 1.0 / 7.0 * k;
      }
    }
    m.set_coefficients(type, table);
  }
  return m;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

void expect_phase_eq(const PhaseCoefficients& a, const PhaseCoefficients& b) {
  EXPECT_EQ(a.alpha, b.alpha);
  EXPECT_EQ(a.beta, b.beta);
  EXPECT_EQ(a.gamma, b.gamma);
  EXPECT_EQ(a.delta, b.delta);
  EXPECT_EQ(a.c, b.c);
}

void expect_table_eq(const Wavm3Coefficients& a, const Wavm3Coefficients& b) {
  expect_phase_eq(a.source.initiation, b.source.initiation);
  expect_phase_eq(a.source.transfer, b.source.transfer);
  expect_phase_eq(a.source.activation, b.source.activation);
  expect_phase_eq(a.target.initiation, b.target.initiation);
  expect_phase_eq(a.target.transfer, b.target.transfer);
  expect_phase_eq(a.target.activation, b.target.activation);
}

TEST(CoeffIo, SaveLoadSaveIsByteStableAndNumericallyExact) {
  const std::string path1 = ::testing::TempDir() + "coeffs_roundtrip_1.csv";
  const std::string path2 = ::testing::TempDir() + "coeffs_roundtrip_2.csv";
  const Wavm3Model original = make_model();
  ASSERT_TRUE(save_coefficients_csv(original, path1));

  const Wavm3Model loaded = load_coefficients_csv(path1);
  ASSERT_TRUE(loaded.is_fitted());
  for (const MigrationType type : {MigrationType::kNonLive, MigrationType::kLive}) {
    expect_table_eq(loaded.coefficients(type), original.coefficients(type));
  }

  ASSERT_TRUE(save_coefficients_csv(loaded, path2));
  EXPECT_EQ(slurp(path1), slurp(path2));  // byte-stable round trip
  EXPECT_FALSE(slurp(path1).empty());
}

TEST(CoeffIo, SingleTypeTablesRoundTripToo) {
  const std::string path = ::testing::TempDir() + "coeffs_live_only.csv";
  Wavm3Model live_only;
  live_only.set_coefficients(MigrationType::kLive,
                             make_model().coefficients(MigrationType::kLive));
  ASSERT_TRUE(save_coefficients_csv(live_only, path));
  const Wavm3Model loaded = load_coefficients_csv(path);
  expect_table_eq(loaded.coefficients(MigrationType::kLive),
                  live_only.coefficients(MigrationType::kLive));
  EXPECT_THROW(loaded.coefficients(MigrationType::kNonLive), util::ContractError);
}

TEST(CoeffIo, UnreadableFileYieldsUnfittedModel) {
  const Wavm3Model m = load_coefficients_csv("/nonexistent/dir/coeffs.csv");
  EXPECT_FALSE(m.is_fitted());
}

TEST(CoeffIo, TruncatedRowIsRejected) {
  const std::string path = ::testing::TempDir() + "coeffs_truncated.csv";
  write_file(path,
             "type,role,phase,alpha,beta,gamma,delta,c\n"
             "live,source,initiation,1.0,2.0\n");  // row cut short
  EXPECT_THROW(load_coefficients_csv(path), util::ContractError);
}

TEST(CoeffIo, MalformedNumberIsRejectedNotZero) {
  const std::string path = ::testing::TempDir() + "coeffs_malformed.csv";
  write_file(path,
             "type,role,phase,alpha,beta,gamma,delta,c\n"
             "live,source,initiation,not-a-number,0,0,0,210\n");
  EXPECT_THROW(load_coefficients_csv(path), util::ContractError);
}

TEST(CoeffIo, UnknownEnumerationsAreRejected) {
  const std::string header = "type,role,phase,alpha,beta,gamma,delta,c\n";
  const std::string path = ::testing::TempDir() + "coeffs_bad_enum.csv";
  write_file(path, header + "warm,source,initiation,1,0,0,0,210\n");
  EXPECT_THROW(load_coefficients_csv(path), util::ContractError);
  write_file(path, header + "live,middle,initiation,1,0,0,0,210\n");
  EXPECT_THROW(load_coefficients_csv(path), util::ContractError);
  write_file(path, header + "live,source,teleport,1,0,0,0,210\n");
  EXPECT_THROW(load_coefficients_csv(path), util::ContractError);
}

TEST(CoeffIo, NonFiniteCoefficientsAreRejected) {
  // strtod accepts "nan"/"inf" happily; the loader must not, or every
  // downstream forecast silently turns non-finite.
  const std::string header = "type,role,phase,alpha,beta,gamma,delta,c\n";
  const std::string path = ::testing::TempDir() + "coeffs_nonfinite.csv";
  for (const char* bad : {"nan", "NaN", "inf", "-inf", "1e999"}) {
    write_file(path, header + "live,source,initiation,1,0," + bad + ",0,210\n");
    EXPECT_THROW(load_coefficients_csv(path), util::ContractError) << bad;
  }
}

TEST(CoeffIo, EmptyCoefficientFieldIsRejected) {
  const std::string path = ::testing::TempDir() + "coeffs_empty_field.csv";
  write_file(path,
             "type,role,phase,alpha,beta,gamma,delta,c\n"
             "live,source,initiation,1,0,,0,210\n");  // gamma missing
  EXPECT_THROW(load_coefficients_csv(path), util::ContractError);
}

TEST(CoeffIo, DuplicateRowsAreRejected) {
  const std::string path = ::testing::TempDir() + "coeffs_duplicate.csv";
  write_file(path,
             "type,role,phase,alpha,beta,gamma,delta,c\n"
             "live,source,initiation,1,0,0,0,210\n"
             "live,source,initiation,2,0,0,0,220\n");  // silently wins? no.
  EXPECT_THROW(load_coefficients_csv(path), util::ContractError);
}

TEST(CoeffIo, IncompleteTableIsRejected) {
  // A type mentioned at all must come with all six (role, phase) rows;
  // otherwise the absent phases would be priced as all-zeros.
  const std::string path = ::testing::TempDir() + "coeffs_incomplete.csv";
  write_file(path,
             "type,role,phase,alpha,beta,gamma,delta,c\n"
             "live,source,initiation,1,0,0,0,210\n"
             "live,source,transfer,1,0,0,0,210\n"
             "live,source,activation,1,0,0,0,210\n"
             "live,target,initiation,1,0,0,0,210\n"
             "live,target,transfer,1,0,0,0,210\n");  // target activation missing
  EXPECT_THROW(load_coefficients_csv(path), util::ContractError);
}

TEST(CoeffIo, WrongHeaderIsRejected) {
  const std::string path = ::testing::TempDir() + "coeffs_bad_header.csv";
  write_file(path, "alpha,beta\n1,2\n");
  EXPECT_THROW(load_coefficients_csv(path), util::ContractError);
}

}  // namespace
}  // namespace wavm3::core
