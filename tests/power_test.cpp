// Unit tests for the power substrate: ground-truth model shape, trace
// integration, meter protocol, stabilisation detection.
#include <gtest/gtest.h>

#include <cmath>

#include "power/host_power_model.hpp"
#include "power/power_meter.hpp"
#include "power/power_trace.hpp"
#include "power/stabilization.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace wavm3::power {
namespace {

HostPowerParams m_class() {
  HostPowerParams p;
  p.idle_watts = 430.0;
  p.vcpus = 32.0;
  p.watts_per_vcpu = 11.0;
  p.cpu_convexity_watts = 60.0;
  return p;
}

TEST(HostPowerModel, IdleEqualsBaseline) {
  const HostPowerModel m(m_class());
  EXPECT_DOUBLE_EQ(m.true_power(HostActivity{}), 430.0);
  EXPECT_DOUBLE_EQ(m.idle_power(), 430.0);
}

TEST(HostPowerModel, MonotoneAndConvexInCpu) {
  const HostPowerModel m(m_class());
  double prev = 0.0;
  double prev_delta = 0.0;
  for (double u = 0.0; u <= 32.0; u += 4.0) {
    HostActivity a;
    a.cpu_used_vcpus = u;
    const double p = m.true_power(a);
    if (u > 0.0) {
      EXPECT_GT(p, prev);
      const double delta = p - prev;
      if (prev_delta > 0.0) {
        EXPECT_GE(delta, prev_delta - 1e-9);  // convex
      }
      prev_delta = delta;
    }
    prev = p;
  }
}

TEST(HostPowerModel, SaturatesAboveCapacity) {
  const HostPowerModel m(m_class());
  HostActivity a;
  a.cpu_used_vcpus = 32.0;
  const double at_cap = m.true_power(a);
  a.cpu_used_vcpus = 40.0;
  EXPECT_DOUBLE_EQ(m.true_power(a), at_cap);
  EXPECT_DOUBLE_EQ(m.full_load_power(), at_cap);
}

TEST(HostPowerModel, ActivityTermsAdd) {
  const HostPowerModel m(m_class());
  HostActivity a;
  a.cpu_used_vcpus = 8.0;
  const double base = m.true_power(a);

  a.nic_bytes_per_s = 100e6;
  a.transfer_active = true;
  const double with_nic = m.true_power(a);
  EXPECT_NEAR(with_nic - base, 4.0 + 30.0 * 0.1, 1e-9);

  a.mem_dirty_bytes_per_s = 1e9;
  const double with_mem = m.true_power(a);
  EXPECT_NEAR(with_mem - with_nic, 9.0, 1e-9);

  a.tracking_dirty_ratio = 0.5;
  EXPECT_NEAR(m.true_power(a) - with_mem, 11.0, 1e-9);

  a.vm_lifecycle_active = true;
  EXPECT_NEAR(m.true_power(a) - with_mem, 11.0 + 12.0, 1e-9);
}

TEST(HostPowerModel, TrackingRatioClamped) {
  const HostPowerModel m(m_class());
  HostActivity a;
  a.tracking_dirty_ratio = 5.0;  // out of range
  EXPECT_DOUBLE_EQ(m.true_power(a), 430.0 + m.params().tracking_watts);
}

TEST(PowerTrace, EnergyOfConstantPower) {
  PowerTrace t;
  for (int i = 0; i <= 10; ++i) t.add(i * 0.5, 600.0);
  EXPECT_NEAR(t.total_energy(), 600.0 * 5.0, 1e-9);
  EXPECT_NEAR(t.energy_between(1.0, 3.0), 600.0 * 2.0, 1e-9);
  EXPECT_NEAR(t.mean_power_between(1.0, 3.0), 600.0, 1e-9);
}

TEST(PowerTrace, EnergyOfRampIsExactForTrapezoid) {
  PowerTrace t;
  for (int i = 0; i <= 10; ++i) t.add(static_cast<double>(i), 100.0 * i);
  // Integral of 100t over [0,10] = 5000.
  EXPECT_NEAR(t.total_energy(), 5000.0, 1e-9);
  // Sub-interval [2.5, 7.5]: integral = 100*(7.5^2-2.5^2)/2 = 2500.
  EXPECT_NEAR(t.energy_between(2.5, 7.5), 2500.0, 1e-9);
}

TEST(PowerTrace, PhaseAdditivity) {
  PowerTrace t;
  util::RngStream rng(4);
  for (int i = 0; i <= 200; ++i) t.add(i * 0.5, rng.uniform(400, 900));
  const double a = t.energy_between(0.0, 30.0);
  const double b = t.energy_between(30.0, 61.7);
  const double c = t.energy_between(61.7, 100.0);
  EXPECT_NEAR(a + b + c, t.energy_between(0.0, 100.0), 1e-6);
}

TEST(PowerTrace, InterpolationAndClamping) {
  PowerTrace t;
  t.add(0.0, 100.0);
  t.add(1.0, 200.0);
  EXPECT_DOUBLE_EQ(t.power_at(0.5), 150.0);
  EXPECT_DOUBLE_EQ(t.power_at(-1.0), 100.0);
  EXPECT_DOUBLE_EQ(t.power_at(5.0), 200.0);
}

TEST(PowerTrace, EmptyOverlapIsZero) {
  PowerTrace t;
  t.add(10.0, 500.0);
  t.add(11.0, 500.0);
  EXPECT_DOUBLE_EQ(t.energy_between(0.0, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(t.mean_power_between(0.0, 5.0), 0.0);
}

TEST(PowerTrace, RejectsDisorderedSamples) {
  PowerTrace t;
  t.add(1.0, 100.0);
  EXPECT_THROW(t.add(0.5, 100.0), util::ContractError);
  EXPECT_THROW(t.add(2.0, -5.0), util::ContractError);
}

TEST(PowerTrace, SliceAndTail) {
  PowerTrace t;
  for (int i = 0; i < 10; ++i) t.add(i, 100.0 + i);
  const PowerTrace s = t.slice(3.0, 6.0);
  EXPECT_EQ(s.size(), 4u);
  EXPECT_DOUBLE_EQ(s[0].time, 3.0);
  const auto tail = t.tail(3);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_DOUBLE_EQ(tail[2].watts, 109.0);
}

TEST(PowerMeter, SamplesAtConfiguredCadence) {
  sim::Simulator sim;
  MeterSpec spec;
  PowerMeter meter("test", spec, [](double) { return 500.0; }, util::RngStream(1));
  meter.start(sim, 0.0);
  sim.run_until(10.0);
  meter.stop();
  sim.run_to_completion();
  EXPECT_EQ(meter.trace().size(), 21u);  // 0, 0.5, ..., 10.0
}

TEST(PowerMeter, NoiseWithinDeviceAccuracy) {
  sim::Simulator sim;
  MeterSpec spec;
  PowerMeter meter("test", spec, [](double) { return 600.0; }, util::RngStream(7));
  meter.start(sim, 0.0);
  sim.run_until(500.0);
  meter.stop();
  sim.run_to_completion();
  double max_err = 0.0;
  double sum = 0.0;
  for (const auto& s : meter.trace().samples()) {
    max_err = std::max(max_err, std::abs(s.watts - 600.0));
    sum += s.watts;
  }
  // 3-sigma == 0.3%; allow a small excursion margin over 1000 samples.
  EXPECT_LT(max_err, 600.0 * 0.003 * 1.6);
  EXPECT_NEAR(sum / static_cast<double>(meter.trace().size()), 600.0, 0.3);
}

TEST(PowerMeter, QuantisesToResolution) {
  sim::Simulator sim;
  MeterSpec spec;
  spec.accuracy_fraction = 0.0;
  PowerMeter meter("test", spec, [](double) { return 123.456; }, util::RngStream(1));
  meter.sample(0.0);
  EXPECT_NEAR(meter.trace()[0].watts, 123.5, 1e-9);
}

TEST(Stabilization, DetectsFlatTail) {
  PowerTrace t;
  for (int i = 0; i < 30; ++i) t.add(i * 0.5, 500.0 + (i < 8 ? 50.0 * (8 - i) : 0.0));
  EXPECT_TRUE(is_stabilized(t));
}

TEST(Stabilization, RejectsJumpInsideWindow) {
  PowerTrace t;
  for (int i = 0; i < 30; ++i) t.add(i * 0.5, i == 25 ? 520.0 : 500.0);
  EXPECT_FALSE(is_stabilized(t));
}

TEST(Stabilization, NeedsWindowSamples) {
  PowerTrace t;
  for (int i = 0; i < 19; ++i) t.add(i * 0.5, 500.0);
  EXPECT_FALSE(is_stabilized(t));
  t.add(9.5, 500.0);
  EXPECT_TRUE(is_stabilized(t));
}

TEST(Stabilization, IndexFindsFirstStablePoint) {
  PowerTrace t;
  // 10 noisy samples then flat.
  for (int i = 0; i < 10; ++i) t.add(i * 0.5, 500.0 + 30.0 * (i % 2));
  for (int i = 10; i < 40; ++i) t.add(i * 0.5, 500.0);
  const std::size_t idx = stabilization_index(t);
  EXPECT_EQ(idx, 29u);  // 20-sample streak starting at sample 10
}

TEST(Stabilization, NeverStableReturnsSize) {
  PowerTrace t;
  for (int i = 0; i < 40; ++i) t.add(i * 0.5, 500.0 + 30.0 * (i % 2));
  EXPECT_EQ(stabilization_index(t), t.size());
}

}  // namespace
}  // namespace wavm3::power
