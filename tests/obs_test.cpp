// Tests for src/obs/: metric registry semantics, histogram edge
// cases (bucket boundaries, overflow, quantile interpolation), the
// injectable clock, the seqlock trace rings under heavy concurrent
// emission (wraparound + drop accounting), and the three exporters.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/clock.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace wavm3::obs {
namespace {

// ---------------------------------------------------------------------------
// Counters and gauges

TEST(ObsMetrics, CounterIncrementsAndResets) {
  MetricRegistry reg;
  Counter& c = reg.counter("requests_total", "requests");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsMetrics, GaugeSetAndAdd) {
  MetricRegistry reg;
  Gauge& g = reg.gauge("queue_depth", "depth");
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.add(1.25);
  g.add(-0.75);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
}

TEST(ObsMetrics, SameNameAndLabelsReturnsSameMetric) {
  MetricRegistry reg;
  Counter& a = reg.counter("hits_total", "hits", {{"shard", "0"}});
  Counter& b = reg.counter("hits_total", "hits", {{"shard", "0"}});
  Counter& other = reg.counter("hits_total", "hits", {{"shard", "1"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &other);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(other.value(), 0u);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(ObsMetrics, SnapshotPreservesRegistrationOrderAndLabels) {
  MetricRegistry reg;
  reg.counter("b_total", "b");
  reg.gauge("a_gauge", "a", {{"k", "v"}});
  const RegistrySnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.metrics.size(), 2u);
  EXPECT_EQ(snap.metrics[0].name, "b_total");
  EXPECT_EQ(snap.metrics[1].name, "a_gauge");
  ASSERT_EQ(snap.metrics[1].labels.size(), 1u);
  EXPECT_EQ(snap.metrics[1].labels[0].first, "k");
  EXPECT_EQ(snap.metrics[1].labels[0].second, "v");
}

// ---------------------------------------------------------------------------
// Histogram edge cases

TEST(ObsHistogram, ExplicitBoundsBucketBoundariesAreInclusive) {
  MetricRegistry reg;
  Histogram& h = reg.histogram("h", "h", {1.0, 2.0, 4.0});
  // A value exactly on an upper edge lands in that bucket (le
  // semantics), the canonical Prometheus rule.
  h.observe(1.0);
  h.observe(2.0);
  h.observe(4.0);
  h.observe(0.5);   // first bucket
  h.observe(3.0);   // third bucket
  h.observe(100.0); // overflow
  const HistogramSnapshot s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 4u);
  EXPECT_EQ(s.counts[0], 2u);  // 0.5, 1.0
  EXPECT_EQ(s.counts[1], 1u);  // 2.0
  EXPECT_EQ(s.counts[2], 2u);  // 3.0, 4.0
  EXPECT_EQ(s.counts[3], 1u);  // 100.0 overflow
  EXPECT_EQ(s.count, 6u);
  EXPECT_DOUBLE_EQ(s.sum, 1.0 + 2.0 + 4.0 + 0.5 + 3.0 + 100.0);
}

TEST(ObsHistogram, ExponentialGridMatchesLogIndexing) {
  // The serve latency grid: 1000 * 1.046^i, 400 buckets.
  MetricRegistry reg;
  Histogram& h = reg.exponential_histogram("lat_ns", "latency", 1000.0, 1.046, 400);
  h.observe(500.0);    // below first bound -> bucket 0
  h.observe(1000.0);   // exactly first bound -> bucket 0
  h.observe(1000.1);   // just above -> bucket 1
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 1u);
  ASSERT_EQ(s.bounds.size(), 399u);
  EXPECT_DOUBLE_EQ(s.bounds[0], 1000.0);
  EXPECT_NEAR(s.bounds[1], 1046.0, 1e-9);
  // The overflow bucket reports the growth-extrapolated edge.
  EXPECT_NEAR(s.overflow_bound, 1000.0 * std::pow(1.046, 399.0), 1e-3);
}

TEST(ObsHistogram, OverflowValuesLandInOverflowBucket) {
  MetricRegistry reg;
  Histogram& h = reg.exponential_histogram("lat_ns", "latency", 1000.0, 1.046, 4);
  const double top = 1000.0 * std::pow(1.046, 2.0);  // last finite edge (3 edges: i=0..2)
  h.observe(top * 1000.0);
  h.observe(1e18);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.counts.back(), 2u);
  // Conservative quantile of an overflow recording reports the
  // overflow bound, never infinity.
  EXPECT_DOUBLE_EQ(s.quantile_upper_bound(1.0), s.overflow_bound);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), s.overflow_bound);
}

TEST(ObsHistogram, QuantilesOnEmptyHistogramAreZero) {
  MetricRegistry reg;
  Histogram& h = reg.histogram("h", "h", {1.0, 2.0});
  const HistogramSnapshot s = h.snapshot();
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.quantile_upper_bound(0.99), 0.0);
}

TEST(ObsHistogram, InterpolatedQuantileWalksInsideBucket) {
  MetricRegistry reg;
  Histogram& h = reg.histogram("h", "h", {10.0, 20.0});
  // 10 recordings in (10, 20]: the interpolated median sits mid-bucket,
  // the conservative one at the upper edge.
  for (int i = 0; i < 10; ++i) h.observe(15.0);
  const HistogramSnapshot s = h.snapshot();
  const double interpolated = s.quantile(0.5);
  EXPECT_GT(interpolated, 10.0);
  EXPECT_LT(interpolated, 20.0);
  EXPECT_DOUBLE_EQ(s.quantile_upper_bound(0.5), 20.0);
  // q clamps: q=0 stays at the bucket's lower edge or below, q=1 at
  // the upper edge.
  EXPECT_LE(s.quantile(0.0), 20.0);
  EXPECT_DOUBLE_EQ(s.quantile_upper_bound(1.0), 20.0);
}

TEST(ObsHistogram, ConservativeQuantileMatchesLegacyServeRule) {
  // Reference implementation of the rule serve/metrics.cpp has always
  // used: upper edge of the bucket holding the ceil(q*n)-th recording.
  MetricRegistry reg;
  Histogram& h = reg.exponential_histogram("lat_ns", "latency", 1000.0, 1.046, 400);
  std::vector<double> values;
  std::uint64_t x = 88172645463325252ull;
  for (int i = 0; i < 5000; ++i) {
    x ^= x << 13; x ^= x >> 7; x ^= x << 17;  // xorshift64
    values.push_back(1000.0 + static_cast<double>(x % 20000000));  // up to 20ms
  }
  for (double v : values) h.observe(v);

  const auto legacy_bucket_index = [](double ns) {
    if (ns <= 1000.0) return 0;
    static const double inv_log_growth = 1.0 / std::log(1.046);
    const int idx = static_cast<int>(std::log(ns / 1000.0) * inv_log_growth) + 1;
    return std::min(idx, 399);
  };
  const auto legacy_quantile = [&](double q) {
    std::uint64_t counts[400] = {};
    for (double v : values) ++counts[legacy_bucket_index(v)];
    const auto rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(values.size())));
    std::uint64_t seen = 0;
    for (int i = 0; i < 400; ++i) {
      seen += counts[i];
      if (seen >= rank) return 1000.0 * std::pow(1.046, static_cast<double>(i));
    }
    return 1000.0 * std::pow(1.046, 399.0);
  };

  const HistogramSnapshot s = h.snapshot();
  for (double q : {0.5, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(s.quantile_upper_bound(q), legacy_quantile(q)) << "q=" << q;
  }
}

TEST(ObsHistogram, ResetZeroesEverything) {
  MetricRegistry reg;
  Histogram& h = reg.histogram("h", "h", {1.0});
  h.observe(0.5);
  h.observe(2.0);
  h.reset();
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.sum, 0.0);
  for (std::uint64_t c : s.counts) EXPECT_EQ(c, 0u);
}

// ---------------------------------------------------------------------------
// Clock

TEST(ObsClock, ManualClockFreezesAndAdvances) {
  ManualClock::install(100);
  EXPECT_EQ(now_ns(), 100u);
  ManualClock::advance(50);
  EXPECT_EQ(now_ns(), 150u);
  ManualClock::set(1000);
  EXPECT_EQ(now_ns(), 1000u);
  ManualClock::uninstall();
  // Steady clock is monotone and nonzero.
  const std::uint64_t a = now_ns();
  const std::uint64_t b = now_ns();
  EXPECT_GE(b, a);
  EXPECT_GT(a, 0u);
}

// ---------------------------------------------------------------------------
// Tracer

TEST(ObsTrace, DisabledTracerEmitsNothing) {
  Tracer t;
  t.set_enabled(false);
  { Tracer::Span span(t, "cat", "op"); }
  t.emit_instant("cat", "tick", 123);
  EXPECT_TRUE(t.drain().empty());
  EXPECT_EQ(t.emitted(), 0u);
}

TEST(ObsTrace, SpanRecordsDurationAndArgs) {
  ManualClock::install(1000);
  Tracer t;
  t.set_enabled(true);
  {
    Tracer::Span span(t, "serve", "evaluate");
    span.arg("items", 3.0);
    span.note("source", "cache");
    ManualClock::advance(5000);
  }
  const std::vector<TraceEvent> events = t.drain();
  ManualClock::uninstall();
  ASSERT_EQ(events.size(), 1u);
  const TraceEvent& e = events[0];
  EXPECT_STREQ(e.name, "evaluate");
  EXPECT_STREQ(e.category, "serve");
  EXPECT_EQ(e.phase, EventPhase::kComplete);
  EXPECT_EQ(e.ts_ns, 1000u);
  EXPECT_EQ(e.dur_ns, 5000u);
  ASSERT_EQ(e.n_args, 1);
  EXPECT_STREQ(e.args[0].key, "items");
  EXPECT_DOUBLE_EQ(e.args[0].value, 3.0);
  EXPECT_STREQ(e.str_key, "source");
  EXPECT_STREQ(e.str_value, "cache");
  EXPECT_EQ(e.pid, kWallPid);
}

TEST(ObsTrace, ExplicitTimestampEventsSortByTime) {
  Tracer t;
  t.set_enabled(true);
  t.emit_complete("sim", "late", 5000, 100, {}, nullptr, nullptr, kSimPid);
  t.emit_instant("sim", "early", 1000, {}, nullptr, nullptr, kSimPid);
  const std::vector<TraceEvent> events = t.drain();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "early");
  EXPECT_STREQ(events[1].name, "late");
  EXPECT_EQ(events[0].pid, kSimPid);
}

TEST(ObsTrace, WraparoundKeepsNewestAndCountsDrops) {
  Tracer t(TracerConfig{/*ring_capacity=*/64});
  t.set_enabled(true);
  for (int i = 0; i < 200; ++i) {
    t.emit_instant("cat", "tick", static_cast<std::uint64_t>(i));
  }
  const std::vector<TraceEvent> events = t.drain();
  EXPECT_EQ(events.size(), 64u);
  EXPECT_EQ(t.emitted(), 200u);
  EXPECT_EQ(t.dropped(), 200u - 64u);
  // The retained events are exactly the newest 64.
  EXPECT_EQ(events.front().ts_ns, 200u - 64u);
  EXPECT_EQ(events.back().ts_ns, 199u);
}

TEST(ObsTrace, ClearForgetsEventsAndDrops) {
  Tracer t(TracerConfig{/*ring_capacity=*/16});
  t.set_enabled(true);
  for (int i = 0; i < 40; ++i) t.emit_instant("cat", "tick", 1);
  t.clear();
  EXPECT_TRUE(t.drain().empty());
  EXPECT_EQ(t.dropped(), 0u);
  EXPECT_EQ(t.emitted(), 0u);
}

TEST(ObsTrace, ConcurrentEmissionFromManyThreadsIsLossAccounted) {
  // >= 8 threads hammering small rings while a reader drains
  // concurrently: every event is either retained or counted dropped,
  // nothing double-counted, and drained events are never torn (the
  // seqlock re-check discards lapped slots).
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  constexpr std::size_t kRing = 256;
  Tracer t(TracerConfig{kRing});
  t.set_enabled(true);

  std::atomic<bool> go{false};
  std::atomic<int> done{0};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    writers.emplace_back([&, w] {
      while (!go.load(std::memory_order_acquire)) {}
      for (int i = 0; i < kPerThread; ++i) {
        // ts encodes (writer, seq) so a torn read would produce a
        // value no writer ever stored.
        t.emit_instant("stress", "tick",
                       static_cast<std::uint64_t>(w) * 1000000u +
                           static_cast<std::uint64_t>(i),
                       {{"w", static_cast<double>(w)}});
      }
      done.fetch_add(1, std::memory_order_release);
    });
  }
  go.store(true, std::memory_order_release);
  // Drain concurrently while writers run — must not crash or tear.
  while (done.load(std::memory_order_acquire) < kThreads) {
    (void)t.drain();
  }
  for (std::thread& w : writers) w.join();

  const std::vector<TraceEvent> events = t.drain();
  EXPECT_EQ(t.emitted(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(t.emitted(), t.dropped() + events.size());
  // Per-thread rings retain the newest kRing events of each writer.
  EXPECT_EQ(events.size(), static_cast<std::size_t>(kThreads) * kRing);

  std::set<std::uint32_t> tids;
  for (const TraceEvent& e : events) {
    ASSERT_STREQ(e.name, "tick");
    ASSERT_STREQ(e.category, "stress");
    tids.insert(e.tid);
    // No torn events: the encoded writer id and the numeric arg agree,
    // and the sequence number is one the writer actually produced.
    const auto w = static_cast<int>(e.ts_ns / 1000000u);
    const auto i = static_cast<int>(e.ts_ns % 1000000u);
    ASSERT_GE(w, 0);
    ASSERT_LT(w, kThreads);
    ASSERT_LT(i, kPerThread);
    ASSERT_GE(i, kPerThread - static_cast<int>(kRing));  // newest kRing survive
    ASSERT_EQ(e.n_args, 1);
    ASSERT_DOUBLE_EQ(e.args[0].value, static_cast<double>(w));
  }
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
}

// ---------------------------------------------------------------------------
// Exporters

TEST(ObsExport, PrometheusTextFormat) {
  MetricRegistry reg;
  reg.counter("requests_total", "Total requests", {{"endpoint", "predict"}}).inc(7);
  reg.counter("requests_total", "Total requests", {{"endpoint", "submit"}}).inc(2);
  reg.gauge("queue_depth", "Queue depth").set(3);
  reg.histogram("latency_ns", "Latency", {10.0, 20.0}).observe(15.0);

  const std::string text = prometheus_text(reg);
  EXPECT_NE(text.find("# HELP requests_total Total requests\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE requests_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("requests_total{endpoint=\"predict\"} 7\n"), std::string::npos);
  EXPECT_NE(text.find("requests_total{endpoint=\"submit\"} 2\n"), std::string::npos);
  // HELP/TYPE appear once per family, not per series.
  EXPECT_EQ(text.find("# HELP requests_total"),
            text.rfind("# HELP requests_total"));
  EXPECT_NE(text.find("# TYPE queue_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("queue_depth 3\n"), std::string::npos);
  // Histograms: cumulative buckets, +Inf terminator, _sum/_count.
  EXPECT_NE(text.find("latency_ns_bucket{le=\"10\"} 0\n"), std::string::npos);
  EXPECT_NE(text.find("latency_ns_bucket{le=\"20\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("latency_ns_bucket{le=\"+Inf\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("latency_ns_sum 15\n"), std::string::npos);
  EXPECT_NE(text.find("latency_ns_count 1\n"), std::string::npos);
  // Every non-comment line is "name{labels} value" or "name value".
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    ASSERT_NE(eol, std::string::npos) << "missing trailing newline";
    const std::string line = text.substr(pos, eol - pos);
    if (!line.empty() && line[0] != '#') {
      const std::size_t sp = line.rfind(' ');
      ASSERT_NE(sp, std::string::npos) << line;
      ASSERT_GT(sp, 0u) << line;
    }
    pos = eol + 1;
  }
}

TEST(ObsExport, PrometheusEscapesLabelValues) {
  MetricRegistry reg;
  reg.counter("c_total", "c", {{"path", "a\"b\\c\nd"}}).inc();
  const std::string text = prometheus_text(reg);
  EXPECT_NE(text.find("c_total{path=\"a\\\"b\\\\c\\nd\"} 1\n"), std::string::npos);
}

TEST(ObsExport, JsonSnapshotIsWellFormed) {
  MetricRegistry reg;
  reg.counter("requests_total", "Total", {{"ep", "x"}}).inc(3);
  reg.histogram("lat", "Latency", {1.0, 2.0}).observe(1.5);
  const std::string json = json_snapshot(reg);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"requests_total\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":3"), std::string::npos);
  EXPECT_NE(json.find("\"le\":\"+Inf\""), std::string::npos);
  // Balanced braces/brackets (cheap structural check without a parser).
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char ch = json[i];
    if (in_string) {
      if (ch == '\\') { ++i; continue; }
      if (ch == '"') in_string = false;
      continue;
    }
    if (ch == '"') in_string = true;
    else if (ch == '{') ++braces;
    else if (ch == '}') --braces;
    else if (ch == '[') ++brackets;
    else if (ch == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(ObsExport, ChromeTraceStructure) {
  Tracer t;
  t.set_enabled(true);
  t.emit_complete("migration", "transfer", 2000, 3000, {{"DR", 1.5}}, "outcome",
                  "completed", kSimPid);
  t.emit_instant("faults", "link_degradation", 1000, {{"factor", 0.4}}, nullptr, nullptr,
                 kSimPid);
  const std::string json = chrome_trace(t.drain());
  // Metadata rows name both tracks.
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("wall clock"), std::string::npos);
  EXPECT_NE(json.find("simulated time"), std::string::npos);
  // Timestamps in µs: 2000 ns -> 2, duration 3000 ns -> 3.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":2"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":3"), std::string::npos);
  EXPECT_NE(json.find("\"DR\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"outcome\":\"completed\""), std::string::npos);
  // Instants are thread-scoped.
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(ObsExport, ByteStableUnderManualClock) {
  // With the clock pinned, two identical runs produce identical
  // exporter output — the property the CLI's --metrics-out and the
  // serve CSV regression rely on.
  const auto run = [] {
    ManualClock::install(5000);
    MetricRegistry reg;
    reg.counter("ops_total", "ops").inc(9);
    Tracer t;
    t.set_enabled(true);
    {
      Tracer::Span span(t, "cat", "op");
      ManualClock::advance(1234);
    }
    const std::string out = prometheus_text(reg) + chrome_trace(t.drain());
    ManualClock::uninstall();
    return out;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace wavm3::obs
