// src/chaos/: replan policy (deadlines, bounded retries with backoff,
// degraded mode), fleet invariant checking, storm determinism, and the
// closed-loop wave executor — including the happy-path parity pin
// against the direct MigrationPlanner commit path and convergence
// under a seeded fault storm.
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "chaos/executor.hpp"
#include "chaos/invariants.hpp"
#include "chaos/replan.hpp"
#include "core/wavm3_model.hpp"
#include "plan/fleet.hpp"
#include "plan/strategy.hpp"
#include "util/error.hpp"

namespace wavm3::chaos {
namespace {

using migration::MigrationType;

core::Wavm3Model make_model() {
  core::Wavm3Model m;
  for (const MigrationType type :
       {MigrationType::kNonLive, MigrationType::kLive, MigrationType::kPostCopy}) {
    const double t = type == MigrationType::kLive ? 1.0 : 0.7;
    core::Wavm3Coefficients table;
    table.source.initiation = {2.1 * t, 1.3, 0.0, 0.0, 210.0};
    table.source.transfer = {2.4 * t, 1.1e-7, 55.0, 1.9, 205.0};
    table.source.activation = {2.2 * t, 1.2, 0.0, 0.0, 208.0};
    table.target.initiation = {1.9 * t, 0.8, 0.0, 0.0, 200.0};
    table.target.transfer = {2.0 * t, 0.9e-7, 12.0, 0.7, 198.0};
    table.target.activation = {2.1 * t, 1.0, 0.0, 0.0, 202.0};
    m.set_coefficients(type, table);
  }
  return m;
}

// ---------------------------------------------------------------- policy

TEST(ReplanPolicy, ValidatesConfig) {
  ReplanConfig bad;
  bad.retry_budget = 0;
  EXPECT_THROW(ReplanPolicy{bad}, util::ContractError);
  bad = {};
  bad.recovery_failure_rate = 0.8;  // >= degraded rate
  EXPECT_THROW(ReplanPolicy{bad}, util::ContractError);
  bad = {};
  bad.max_backoff_waves = 0;
  EXPECT_THROW(ReplanPolicy{bad}, util::ContractError);
  bad = {};
  bad.degraded_width_factor = 0.0;
  EXPECT_THROW(ReplanPolicy{bad}, util::ContractError);
}

TEST(ReplanPolicy, BackoffDoublesPerFailureAndCaps) {
  ReplanConfig cfg;
  cfg.retry_budget = 5;
  cfg.backoff_base_waves = 1;
  cfg.max_backoff_waves = 4;
  const ReplanPolicy policy(cfg);

  TrackedMove mv;
  mv.attempts = 1;  // first failure
  EXPECT_TRUE(policy.arm_retry(mv, 10));
  EXPECT_EQ(mv.eligible_wave, 11);  // base backoff
  mv.attempts = 2;
  EXPECT_TRUE(policy.arm_retry(mv, 11));
  EXPECT_EQ(mv.eligible_wave, 13);  // doubled
  mv.attempts = 3;
  EXPECT_TRUE(policy.arm_retry(mv, 13));
  EXPECT_EQ(mv.eligible_wave, 17);  // doubled again, hits the cap
  mv.attempts = 4;
  EXPECT_TRUE(policy.arm_retry(mv, 17));
  EXPECT_EQ(mv.eligible_wave, 21);  // capped at max_backoff_waves
  mv.attempts = 5;                  // budget exhausted
  EXPECT_FALSE(policy.arm_retry(mv, 21));
}

TEST(ReplanPolicy, DegradedModeEngagesAndReleasesWithHysteresis) {
  ReplanConfig cfg;
  cfg.rolling_window = 8;
  cfg.degraded_failure_rate = 0.5;
  cfg.recovery_failure_rate = 0.25;
  ReplanPolicy policy(cfg);

  EXPECT_FALSE(policy.degraded());
  // 3 failures in 8 executions: 0.375 < 0.5, still healthy.
  for (int i = 0; i < 5; ++i) policy.record_execution(true);
  for (int i = 0; i < 3; ++i) policy.record_execution(false);
  EXPECT_FALSE(policy.degraded());
  // One more failure pushes the window to 0.5: degraded.
  policy.record_execution(false);
  EXPECT_TRUE(policy.degraded());
  // Recovery needs the rate back down to 0.25, not merely below 0.5
  // (hysteresis): after five successes the rate is 0.375 — under the
  // engage threshold but still degraded.
  for (int i = 0; i < 5; ++i) policy.record_execution(true);
  EXPECT_NEAR(policy.failure_rate(), 3.0 / 8.0, 1e-12);
  EXPECT_TRUE(policy.degraded());
  // The sixth success reaches the recovery rate and releases.
  policy.record_execution(true);
  EXPECT_NEAR(policy.failure_rate(), 2.0 / 8.0, 1e-12);
  EXPECT_FALSE(policy.degraded());
}

TEST(ReplanPolicy, DegradedModeShrinksWaveWidth) {
  ReplanConfig cfg;
  cfg.rolling_window = 4;
  cfg.degraded_width_factor = 0.5;
  cfg.min_wave_moves = 2;
  ReplanPolicy policy(cfg);

  EXPECT_EQ(policy.admitted_width(10), 10u);  // healthy: everything
  for (int i = 0; i < 4; ++i) policy.record_execution(false);
  ASSERT_TRUE(policy.degraded());
  EXPECT_EQ(policy.admitted_width(10), 5u);
  EXPECT_EQ(policy.admitted_width(3), 2u);  // floored at min_wave_moves
  EXPECT_EQ(policy.admitted_width(1), 1u);  // never above what was planned
  EXPECT_EQ(policy.admitted_width(0), 0u);
}

// ------------------------------------------------------------ invariants

TrackedMove tracked(int id, int vm, int source, int target, MoveResolution r,
                    int resolved_wave) {
  TrackedMove mv;
  mv.id = id;
  mv.move.vm = vm;
  mv.move.source = source;
  mv.move.target = target;
  mv.move.energy_j = 100.0;
  mv.resolution = r;
  mv.resolved_wave = resolved_wave;
  return mv;
}

TEST(FleetInvariantChecker, CleanFleetPasses) {
  const plan::Fleet fleet = plan::Fleet::synthetic(6, 24, 5);
  const FleetInvariantChecker checker;
  EXPECT_TRUE(checker.check(fleet, {}, {}, LedgerSnapshot{}).empty());
}

TEST(FleetInvariantChecker, DetectsEnergyLedgerLeak) {
  const plan::Fleet fleet = plan::Fleet::synthetic(4, 8, 5);
  const FleetInvariantChecker checker;
  LedgerSnapshot totals;
  totals.planned_j = 10.0;
  totals.committed_j = 1.0;  // 9 J leaked
  const auto violations = checker.check(fleet, {}, {}, totals);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].check, "energy-ledger");

  totals.refunded_j = 9.0;  // balanced again
  EXPECT_TRUE(checker.check(fleet, {}, {}, totals).empty());

  totals.wasted_j = -1.0;  // negative waste is impossible
  EXPECT_FALSE(checker.check(fleet, {}, {}, totals).empty());
}

TEST(FleetInvariantChecker, DetectsOwnershipViolations) {
  const plan::Fleet fleet = plan::Fleet::synthetic(4, 8, 5);
  const FleetInvariantChecker checker;
  const int vm = 0;
  const int home = fleet.vm(vm).host;

  // Two pending entries owning the same VM.
  std::vector<TrackedMove> ledger;
  ledger.push_back(tracked(0, vm, home, (home + 1) % 4, MoveResolution::kPending, -1));
  ledger.push_back(tracked(1, vm, home, (home + 2) % 4, MoveResolution::kPending, -1));
  LedgerSnapshot totals;
  totals.planned_j = 200.0;
  totals.outstanding_j = 200.0;
  auto violations = checker.check(fleet, ledger, {}, totals);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].check, "ownership");

  // A pending entry whose VM drifted off its source.
  ledger.clear();
  ledger.push_back(tracked(0, vm, (home + 1) % 4, home, MoveResolution::kPending, -1));
  violations = checker.check(fleet, ledger, {}, totals);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].check, "ownership");
}

TEST(FleetInvariantChecker, ShedAndPlacedConflictIsPerWave) {
  const plan::Fleet fleet = plan::Fleet::synthetic(4, 8, 5);
  const FleetInvariantChecker checker;
  const int vm = 2;
  const int home = fleet.vm(vm).host;
  LedgerSnapshot totals;
  totals.planned_j = 200.0;
  totals.committed_j = 100.0;
  totals.refunded_j = 100.0;

  // Shed and placed in the SAME wave: the VM was declared lost to the
  // plan and simultaneously landed — a contradiction.
  std::vector<TrackedMove> ledger;
  ledger.push_back(tracked(0, vm, home, (home + 1) % 4, MoveResolution::kShed, 3));
  ledger.push_back(tracked(1, vm, (home + 1) % 4, home, MoveResolution::kCompleted, 3));
  auto violations = checker.check(fleet, ledger, {}, totals);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].check, "ownership");

  // Across waves the sequence is legitimate recovery: shed in wave 3,
  // re-planned and landed in wave 5.
  ledger[1].resolved_wave = 5;
  EXPECT_TRUE(checker.check(fleet, ledger, {}, totals).empty());
}

TEST(FleetInvariantChecker, DetectsConcurrencyCapBreach) {
  // Synthetic hosts allow one concurrent migration.
  const plan::Fleet fleet = plan::Fleet::synthetic(4, 8, 5);
  ASSERT_EQ(fleet.host(0).spec.max_concurrent_migrations, 1);
  const FleetInvariantChecker checker;

  std::vector<ExecutedInterval> intervals{{0, 0.0, 100.0}, {0, 50.0, 150.0}};
  auto violations = checker.check(fleet, {}, intervals, LedgerSnapshot{});
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].check, "concurrency");

  // Back-to-back intervals are legal under a cap of one.
  intervals = {{0, 0.0, 100.0}, {0, 100.0, 200.0}};
  EXPECT_TRUE(checker.check(fleet, {}, intervals, LedgerSnapshot{}).empty());
}

// ---------------------------------------------------------------- storms

TEST(MakeStorm, DeterministicPerWaveAndWindowed) {
  StormOptions opts;
  opts.level = 2;
  const double start = 7200.0;
  const double horizon = 3600.0;
  const faults::FaultPlan a = make_storm(opts, 7, 3, start, horizon);
  const faults::FaultPlan b = make_storm(opts, 7, 3, start, horizon);
  const faults::FaultPlan other_wave = make_storm(opts, 7, 4, start, horizon);

  ASSERT_EQ(a.connection_losses().size(),
            static_cast<std::size_t>(opts.level * opts.losses_per_level));
  ASSERT_EQ(a.connection_losses().size(), b.connection_losses().size());
  bool differs = a.connection_losses().size() != other_wave.connection_losses().size();
  for (std::size_t i = 0; i < a.connection_losses().size(); ++i) {
    // Same (options, seed, wave) -> identical storm; losses are
    // absolute-time events inside the wave window.
    EXPECT_DOUBLE_EQ(a.connection_losses()[i].at, b.connection_losses()[i].at);
    EXPECT_EQ(a.connection_losses()[i].phase, faults::FaultPhase::kAny);
    EXPECT_GE(a.connection_losses()[i].at, start);
    EXPECT_LT(a.connection_losses()[i].at, start + horizon);
    if (i < other_wave.connection_losses().size() &&
        a.connection_losses()[i].at != other_wave.connection_losses()[i].at) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
  EXPECT_EQ(a.degradations().size(),
            static_cast<std::size_t>(opts.level * opts.degradations_per_level));
  for (const faults::LinkDegradation& d : a.degradations()) {
    EXPECT_GE(d.start, start);
  }
  // Level 0 is a calm network.
  StormOptions calm;
  calm.level = 0;
  EXPECT_TRUE(make_storm(calm, 7, 3, start, horizon).empty());
}

// -------------------------------------------------------------- executor

ChaosConfig quiet_config() {
  ChaosConfig cfg;
  cfg.planner.wave_horizon_s = 2.0 * 7200.0;
  cfg.faults_enabled = false;
  cfg.relief_enabled = false;
  // A generous deadline so realised (vs predicted) durations never
  // push a clean-path move over the line.
  cfg.replan.wave_deadline_s = 1e9;
  return cfg;
}

TEST(WaveExecutor, FaultFreeRunMatchesDirectPlannerCommit) {
  const core::Wavm3Model model = make_model();
  const plan::BeamSearchStrategy beam;
  const double now = plan::SyntheticFleetOptions{}.history_s;

  plan::Fleet chaos_fleet = plan::Fleet::synthetic(16, 64, 23);
  plan::Fleet direct_fleet = plan::Fleet::synthetic(16, 64, 23);

  ChaosConfig cfg = quiet_config();
  WaveExecutor executor(model, cfg);
  const ChaosReport report = executor.run(chaos_fleet, beam, now);

  // Replay the same cadence through the direct planner-commit path.
  plan::MigrationPlanner planner(model, cfg.planner);
  double direct_energy = 0.0;
  int direct_moves = 0;
  for (std::size_t w = 0; w < report.waves.size(); ++w) {
    const plan::WavePlan plan = planner.plan_wave(
        direct_fleet, beam, now + static_cast<double>(w) * cfg.wave_gap_s, /*commit=*/true);
    direct_energy += plan.total_migration_energy_j;
    direct_moves += static_cast<int>(plan.moves.size());
  }

  // With faults disabled every attempt completes: identical placements,
  // identical powered set, committed energy equal to the planner's
  // predicted wave totals within float reassociation.
  ASSERT_GT(report.moves_planned, 0);
  EXPECT_TRUE(report.terminal);
  EXPECT_EQ(report.moves_planned, direct_moves);
  EXPECT_EQ(report.resolved_placed, direct_moves);
  EXPECT_EQ(report.unresolved, 0);
  EXPECT_DOUBLE_EQ(report.resolution_fraction, 1.0);
  EXPECT_EQ(report.invariant_violations, 0);
  EXPECT_NEAR(report.ledger.committed_j, direct_energy,
              1e-9 * std::max(1.0, std::abs(direct_energy)));
  EXPECT_DOUBLE_EQ(report.ledger.refunded_j, 0.0);
  EXPECT_DOUBLE_EQ(report.ledger.wasted_j, 0.0);
  for (std::size_t v = 0; v < chaos_fleet.vm_count(); ++v) {
    EXPECT_EQ(chaos_fleet.vm(static_cast<int>(v)).host,
              direct_fleet.vm(static_cast<int>(v)).host)
        << "VM " << v;
  }
  for (std::size_t h = 0; h < chaos_fleet.host_count(); ++h) {
    EXPECT_EQ(chaos_fleet.host(static_cast<int>(h)).powered_on,
              direct_fleet.host(static_cast<int>(h)).powered_on)
        << "host " << h;
  }
}

TEST(WaveExecutor, ConvergesUnderSeededStorm) {
  const core::Wavm3Model model = make_model();
  const plan::BeamSearchStrategy beam;
  const double now = plan::SyntheticFleetOptions{}.history_s;
  plan::Fleet fleet = plan::Fleet::synthetic(16, 64, 23);

  ChaosConfig cfg;
  cfg.planner.wave_horizon_s = 2.0 * 7200.0;
  cfg.storm.level = 2;
  cfg.storm_seed = 2015;
  cfg.max_waves = 16;
  WaveExecutor executor(model, cfg);
  const ChaosReport report = executor.run(fleet, beam, now);

  // Bounded convergence: the run reaches quiescence before the wave
  // cap, resolves (places or replans) nearly everything, and never
  // violates a fleet invariant along the way.
  ASSERT_GT(report.moves_planned, 0);
  EXPECT_TRUE(report.terminal);
  EXPECT_LT(report.waves.size(), static_cast<std::size_t>(cfg.max_waves));
  EXPECT_GE(report.resolution_fraction, 0.95);
  EXPECT_EQ(report.invariant_violations, 0);
  // The ledger is conserved at the end too.
  const double residual = report.ledger.planned_j - report.ledger.committed_j -
                          report.ledger.refunded_j - report.ledger.outstanding_j;
  EXPECT_NEAR(residual, 0.0, 1e-9 * std::max(1.0, report.ledger.planned_j));
  EXPECT_GE(report.ledger.wasted_j, 0.0);

  // Deterministic replay: the same seed reproduces the run wave for
  // wave.
  plan::Fleet fleet2 = plan::Fleet::synthetic(16, 64, 23);
  WaveExecutor executor2(model, cfg);
  const ChaosReport replay = executor2.run(fleet2, beam, now);
  ASSERT_EQ(replay.waves.size(), report.waves.size());
  for (std::size_t w = 0; w < report.waves.size(); ++w) {
    EXPECT_EQ(replay.waves[w].executed, report.waves[w].executed) << "wave " << w;
    EXPECT_EQ(replay.waves[w].completed, report.waves[w].completed) << "wave " << w;
    EXPECT_EQ(replay.waves[w].rolled_back, report.waves[w].rolled_back) << "wave " << w;
  }
  EXPECT_DOUBLE_EQ(replay.ledger.committed_j, report.ledger.committed_j);
  for (std::size_t v = 0; v < fleet.vm_count(); ++v) {
    EXPECT_EQ(fleet.vm(static_cast<int>(v)).host, fleet2.vm(static_cast<int>(v)).host);
  }
}

TEST(WaveExecutor, StormFailuresAreRetriedWithinBudgetOrShed) {
  const core::Wavm3Model model = make_model();
  const plan::BeamSearchStrategy beam;
  const double now = plan::SyntheticFleetOptions{}.history_s;
  plan::Fleet fleet = plan::Fleet::synthetic(16, 64, 23);

  ChaosConfig cfg;
  cfg.planner.wave_horizon_s = 2.0 * 7200.0;
  // Rough weather: cram many losses into a short execution window so a
  // large share of attempts get hit mid-flight.
  cfg.replan.wave_deadline_s = 3600.0;
  cfg.storm.level = 8;
  cfg.storm.losses_per_level = 8;
  cfg.storm_seed = 2015;
  cfg.max_waves = 16;
  WaveExecutor executor(model, cfg);
  const ChaosReport report = executor.run(fleet, beam, now);

  int rolled_back = 0;
  int retried = 0;
  for (const WaveOutcome& w : report.waves) {
    rolled_back += w.rolled_back;
    retried += w.retries_attempted;
  }
  ASSERT_GT(rolled_back, 0) << "storm produced no failures; raise the level";
  EXPECT_GT(retried, 0);
  EXPECT_EQ(report.invariant_violations, 0);
  // No tracked move ever exceeds its retry budget, and every resolved
  // move carries the wave it resolved in.
  for (const TrackedMove& mv : executor.ledger()) {
    EXPECT_LE(mv.attempts, cfg.replan.retry_budget);
    if (mv.resolution != MoveResolution::kPending) {
      EXPECT_GE(mv.resolved_wave, 0);
    }
  }
  // Wasted energy was metered for the failed attempts.
  EXPECT_GT(report.wasted_attempts_j, 0.0);
}

TEST(WaveExecutor, ReliefShedsOverloadedHostsThroughBulkScoring) {
  const core::Wavm3Model model = make_model();
  const plan::BeamSearchStrategy beam;

  // Hand-build a fleet with one severely overloaded host and idle
  // receivers: only overload relief can produce moves here (no
  // underloaded donor has anywhere cheaper to go).
  plan::Fleet fleet;
  for (int h = 0; h < 4; ++h) {
    cloud::HostSpec spec;
    spec.name = "host" + std::to_string(h);
    spec.vcpus = 8;
    spec.ram_bytes = 64.0 * 1024 * 1024 * 1024;
    spec.max_concurrent_migrations = 4;
    fleet.add_host(spec);
  }
  for (int v = 0; v < 6; ++v) {
    plan::FleetVm vm;
    vm.id = "vm" + std::to_string(v);
    vm.vcpus = 4.0;
    vm.ram_bytes = 2.0 * 1024 * 1024 * 1024;
    vm.working_set_pages = 50000;
    vm.history.t = {0.0, 1000.0};
    vm.history.cpu = {2.0, 2.0};  // 6 VMs x 2 vCPU = 12 > 8 * 0.9
    vm.history.dirty = {4000.0, 4000.0};
    fleet.add_vm(vm, 0);
  }

  ChaosConfig cfg;
  cfg.faults_enabled = false;
  cfg.relief_enabled = true;
  cfg.max_waves = 4;
  WaveExecutor executor(model, cfg);
  const WaveOutcome wave = executor.run_wave(fleet, beam, 0, 1000.0);

  EXPECT_EQ(wave.overloaded_hosts, 1);
  ASSERT_GT(wave.relief_moves, 0);
  EXPECT_EQ(wave.completed, wave.executed);
  EXPECT_TRUE(wave.violations.empty());
  // The overloaded host is back under the policy's overload fraction.
  const plan::FleetHost& relieved = fleet.host(0);
  EXPECT_LE(relieved.cpu_load / relieved.spec.vcpus,
            cfg.planner.policy.overload_fraction + 1e-9);
  // Relief moves are real ledger entries with committed energy.
  EXPECT_GT(wave.ledger.committed_j, 0.0);
  for (const TrackedMove& mv : executor.ledger()) {
    EXPECT_TRUE(mv.relief);
  }
}

TEST(WaveExecutor, PostCopyStormLossesLandVmsOnTarget) {
  // Under post-copy, a connection loss during the pull phase loses the
  // VM to a target-side restart (never a retry): the executor must
  // treat that as a placement, not re-migrate a VM that already moved.
  const core::Wavm3Model model = make_model();
  const plan::BeamSearchStrategy beam;
  const double now = plan::SyntheticFleetOptions{}.history_s;
  plan::Fleet fleet = plan::Fleet::synthetic(16, 64, 23);

  ChaosConfig cfg;
  cfg.planner.policy.migration_type = MigrationType::kPostCopy;
  cfg.planner.wave_horizon_s = 2.0 * 7200.0;
  cfg.storm.level = 6;
  cfg.storm.losses_per_level = 6;
  cfg.storm_seed = 11;
  cfg.max_waves = 16;
  WaveExecutor executor(model, cfg);
  const ChaosReport report = executor.run(fleet, beam, now);

  int vm_lost = 0;
  for (const WaveOutcome& w : report.waves) vm_lost += w.vm_lost;
  ASSERT_GT(vm_lost, 0) << "no pull-phase loss landed; adjust the storm";
  EXPECT_EQ(report.invariant_violations, 0);
  // A lost VM counts as *placed* (the engine restarted it on the
  // target) — never as a failure to retry: the loss ends the move's
  // life in the ledger at the wave it happened.
  EXPECT_GE(report.resolved_placed, vm_lost);
  for (const TrackedMove& mv : executor.ledger()) {
    if (mv.resolution == MoveResolution::kVmLost) {
      EXPECT_TRUE(is_placed(mv.resolution));
      EXPECT_GE(mv.resolved_wave, 0);
      EXPECT_LE(mv.attempts, cfg.replan.retry_budget);
    }
  }
}

}  // namespace
}  // namespace wavm3::chaos
