// Unit tests for the workload models plus the real runnable kernels.
#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/units.hpp"
#include "workloads/matrixmult.hpp"
#include "workloads/pagedirtier.hpp"
#include "workloads/workload.hpp"

namespace wavm3::workloads {
namespace {

TEST(IdleWorkload, AllZero) {
  IdleWorkload w;
  EXPECT_DOUBLE_EQ(w.cpu_demand(0.0), 0.0);
  EXPECT_DOUBLE_EQ(w.dirty_page_rate(0.0), 0.0);
  EXPECT_EQ(w.working_set_pages(), 0u);
  EXPECT_EQ(w.workload_class(), WorkloadClass::kIdle);
}

TEST(MatrixMult, DemandsAllThreads) {
  MatrixMultParams p;
  p.threads = 4;
  const MatrixMultWorkload w(p);
  EXPECT_DOUBLE_EQ(w.cpu_demand(0.0), 4.0);
  EXPECT_EQ(w.workload_class(), WorkloadClass::kCpuIntensive);
  EXPECT_LT(w.dirty_page_rate(0.0), 1000.0);  // CPU-bound: tiny dirtying
}

TEST(MatrixMult, EfficiencyScalesDemand) {
  MatrixMultParams p;
  p.threads = 8;
  p.efficiency = 0.75;
  const MatrixMultWorkload w(p);
  EXPECT_DOUBLE_EQ(w.cpu_demand(0.0), 6.0);
}

TEST(MatrixMult, RejectsBadParams) {
  MatrixMultParams p;
  p.threads = 0;
  EXPECT_THROW(MatrixMultWorkload{p}, util::ContractError);
  p.threads = 2;
  p.efficiency = 1.5;
  EXPECT_THROW(MatrixMultWorkload{p}, util::ContractError);
}

TEST(MatrixMult, RealKernelProducesStableChecksum) {
  const double c1 = run_real_matrixmult(64, 2);
  const double c2 = run_real_matrixmult(64, 4);
  // Thread count must not change the numeric result.
  EXPECT_NEAR(c1, c2, 1e-9 * std::abs(c1));
  EXPECT_NE(c1, 0.0);
}

TEST(PageDirtier, WorkingSetTracksMemoryFraction) {
  PageDirtierParams p;
  p.memory_fraction = 0.5;
  p.allocated_pages = 1000;
  const PageDirtierWorkload w(p);
  EXPECT_EQ(w.working_set_pages(), 500u);
  EXPECT_DOUBLE_EQ(w.memory_used_fraction(), 0.5);
  EXPECT_EQ(w.workload_class(), WorkloadClass::kMemoryIntensive);
}

TEST(PageDirtier, SingleCoreDemand) {
  const PageDirtierWorkload w;
  EXPECT_DOUBLE_EQ(w.cpu_demand(0.0), 1.0);
  EXPECT_GT(w.dirty_page_rate(0.0), 1e5);  // memory-intensive
}

TEST(PageDirtier, RejectsBadParams) {
  PageDirtierParams p;
  p.memory_fraction = 0.0;
  EXPECT_THROW(PageDirtierWorkload{p}, util::ContractError);
  p.memory_fraction = 0.5;
  p.allocated_pages = 0;
  EXPECT_THROW(PageDirtierWorkload{p}, util::ContractError);
}

TEST(PageDirtier, RealDirtierTouchesAllRequestedWrites) {
  const std::uint64_t writes = run_real_pagedirtier(128, 3);
  EXPECT_EQ(writes, 128u * 3u);
}

TEST(Composite, SumsDemands) {
  auto cpu = std::make_shared<MatrixMultWorkload>();
  auto mem = std::make_shared<PageDirtierWorkload>();
  const CompositeWorkload w({cpu, mem});
  EXPECT_DOUBLE_EQ(w.cpu_demand(0.0), cpu->cpu_demand(0.0) + mem->cpu_demand(0.0));
  EXPECT_DOUBLE_EQ(w.dirty_page_rate(0.0),
                   cpu->dirty_page_rate(0.0) + mem->dirty_page_rate(0.0));
  EXPECT_EQ(w.working_set_pages(), cpu->working_set_pages() + mem->working_set_pages());
  EXPECT_EQ(w.workload_class(), WorkloadClass::kMixed);
  EXPECT_NE(w.name().find("matrixmult"), std::string::npos);
  EXPECT_NE(w.name().find("pagedirtier"), std::string::npos);
}

TEST(Composite, RejectsEmptyAndNull) {
  EXPECT_THROW(CompositeWorkload{std::vector<WorkloadPtr>{}}, util::ContractError);
  EXPECT_THROW(CompositeWorkload{std::vector<WorkloadPtr>{nullptr}}, util::ContractError);
}

}  // namespace
}  // namespace wavm3::workloads
