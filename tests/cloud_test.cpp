// Unit tests for the cloud substrate: VM lifecycle, hypervisor
// arbitration (Eq. 2), host accounting, instance catalogue, data centre.
#include <gtest/gtest.h>

#include "cloud/datacenter.hpp"
#include "cloud/host.hpp"
#include "cloud/hypervisor.hpp"
#include "cloud/instances.hpp"
#include "cloud/vm.hpp"
#include "util/error.hpp"
#include "util/units.hpp"
#include "workloads/matrixmult.hpp"
#include "workloads/pagedirtier.hpp"

namespace wavm3::cloud {
namespace {

HostSpec host32(const std::string& name = "m01") {
  HostSpec h;
  h.name = name;
  h.vcpus = 32;
  h.ram_bytes = util::gib(32);
  return h;
}

TEST(Vm, LifecycleTransitions) {
  Vm vm("v1", migrating_cpu_spec());
  EXPECT_EQ(vm.state(), VmState::kStopped);
  vm.start();
  EXPECT_EQ(vm.state(), VmState::kRunning);
  vm.suspend();
  EXPECT_EQ(vm.state(), VmState::kSuspended);
  vm.resume();
  EXPECT_EQ(vm.state(), VmState::kRunning);
  vm.stop();
  EXPECT_EQ(vm.state(), VmState::kStopped);
}

TEST(Vm, InvalidTransitionsThrow) {
  Vm vm("v1", migrating_cpu_spec());
  EXPECT_THROW(vm.suspend(), util::ContractError);
  EXPECT_THROW(vm.resume(), util::ContractError);
  vm.start();
  EXPECT_THROW(vm.start(), util::ContractError);
  EXPECT_THROW(vm.resume(), util::ContractError);
}

TEST(Vm, DemandZeroUnlessRunning) {
  auto vm = make_migrating_cpu_vm("v1");  // started, matrixmult on 4 vCPUs
  EXPECT_DOUBLE_EQ(vm->cpu_demand(0.0), 4.0);
  vm->suspend();
  EXPECT_DOUBLE_EQ(vm->cpu_demand(0.0), 0.0);
  EXPECT_DOUBLE_EQ(vm->dirty_page_rate(0.0), 0.0);
}

TEST(Vm, DemandClampedToVcpus) {
  Vm vm("v1", migrating_mem_spec());  // 1 vCPU
  workloads::MatrixMultParams p;
  p.threads = 8;  // demands more than the VM has
  vm.set_workload(std::make_shared<workloads::MatrixMultWorkload>(p));
  vm.start();
  EXPECT_DOUBLE_EQ(vm.cpu_demand(0.0), 1.0);
}

TEST(Vm, RamPagesMatchesSpec) {
  Vm vm("v1", migrating_cpu_spec());  // 4 GB
  EXPECT_EQ(vm.ram_pages(), (4ULL << 30) / 4096);
}

TEST(Vm, WorkingSetClampedToRam) {
  Vm vm("v1", migrating_mem_spec());
  workloads::PageDirtierParams p;
  p.allocated_pages = 10ULL << 20;  // workload claims more than the VM has
  p.memory_fraction = 1.0;
  vm.set_workload(std::make_shared<workloads::PageDirtierWorkload>(p));
  EXPECT_EQ(vm.working_set_pages(), vm.ram_pages());
}

TEST(Hypervisor, VmmDemandGrowsWithGuests) {
  const Hypervisor h;
  EXPECT_GT(h.vmm_demand(5), h.vmm_demand(0));
  EXPECT_DOUBLE_EQ(h.vmm_demand(0), h.params().dom0_base_vcpus);
}

TEST(Hypervisor, ArbitrationProportionalUnderContention) {
  const auto grants = Hypervisor::arbitrate({20.0, 20.0}, 32.0);
  EXPECT_DOUBLE_EQ(grants[0], 16.0);
  EXPECT_DOUBLE_EQ(grants[1], 16.0);
}

TEST(Hypervisor, ArbitrationExactWhenFits) {
  const auto grants = Hypervisor::arbitrate({4.0, 8.0}, 32.0);
  EXPECT_DOUBLE_EQ(grants[0], 4.0);
  EXPECT_DOUBLE_EQ(grants[1], 8.0);
}

TEST(Host, CpuUsedFollowsEq2) {
  Host host(host32());
  host.add_vm(make_load_cpu_vm("l1"));
  host.add_vm(make_load_cpu_vm("l2"));
  // CPUVMM(2 VMs) + 2*4 vCPUs, no migration load.
  const double expected = host.hypervisor().vmm_demand(2) + 8.0;
  EXPECT_DOUBLE_EQ(host.cpu_used(0.0), expected);
  host.set_migration_cpu_demand(1.5);
  EXPECT_DOUBLE_EQ(host.cpu_used(0.0), expected + 1.5);
}

TEST(Host, SaturatesAtCapacity) {
  Host host(host32());
  for (int i = 0; i < 9; ++i) host.add_vm(make_load_cpu_vm("l" + std::to_string(i)));
  // 36 vCPUs demanded on a 32-vCPU host.
  EXPECT_DOUBLE_EQ(host.cpu_used(0.0), 32.0);
  EXPECT_DOUBLE_EQ(host.cpu_utilisation(0.0), 1.0);
  EXPECT_DOUBLE_EQ(host.headroom_excluding_migration(0.0), 0.0);
}

TEST(Host, MultiplexedGrantBelowDemand) {
  Host host(host32());
  for (int i = 0; i < 9; ++i) host.add_vm(make_load_cpu_vm("l" + std::to_string(i)));
  const double granted = host.cpu_granted_to("l0", 0.0);
  EXPECT_LT(granted, 4.0);
  EXPECT_GT(granted, 3.0);
}

TEST(Host, GrantEqualsDemandWhenUncontended) {
  Host host(host32());
  host.add_vm(make_load_cpu_vm("l0"));
  EXPECT_DOUBLE_EQ(host.cpu_granted_to("l0", 0.0), 4.0);
  EXPECT_DOUBLE_EQ(host.cpu_granted_to("missing", 0.0), 0.0);
}

TEST(Host, RamAccountingAndFit) {
  Host host(host32());
  EXPECT_TRUE(host.can_fit(migrating_cpu_spec()));
  for (int i = 0; i < 7; ++i) host.add_vm(std::make_shared<Vm>("v" + std::to_string(i),
                                                               migrating_cpu_spec()));
  EXPECT_DOUBLE_EQ(host.ram_committed(), util::gib(28));
  EXPECT_TRUE(host.can_fit(migrating_cpu_spec()));   // 32 GB exactly
  host.add_vm(std::make_shared<Vm>("v7", migrating_cpu_spec()));
  EXPECT_FALSE(host.can_fit(migrating_cpu_spec()));  // would exceed
  EXPECT_THROW(host.add_vm(std::make_shared<Vm>("v8", migrating_cpu_spec())),
               util::ContractError);
}

TEST(Host, AddRemoveVm) {
  Host host(host32());
  auto vm = make_load_cpu_vm("l0");
  host.add_vm(vm);
  EXPECT_THROW(host.add_vm(vm), util::ContractError);  // duplicate id
  EXPECT_EQ(host.vm_count(), 1u);
  const VmPtr removed = host.remove_vm("l0");
  EXPECT_EQ(removed, vm);
  EXPECT_EQ(host.vm_count(), 0u);
  EXPECT_THROW(host.remove_vm("l0"), util::ContractError);
}

TEST(Instances, MatchTableIIb) {
  EXPECT_EQ(load_cpu_spec().vcpus, 4);
  EXPECT_DOUBLE_EQ(load_cpu_spec().ram_bytes, util::mib(512));
  EXPECT_EQ(migrating_cpu_spec().vcpus, 4);
  EXPECT_DOUBLE_EQ(migrating_cpu_spec().ram_bytes, util::gib(4));
  EXPECT_EQ(migrating_mem_spec().vcpus, 1);
  EXPECT_DOUBLE_EQ(migrating_mem_spec().ram_bytes, util::gib(4));
  EXPECT_EQ(dom0_spec().linux_kernel, "3.11.4");
}

TEST(Instances, MemVmWorkingSetFollowsFraction) {
  auto vm5 = make_migrating_mem_vm("a", 0.05);
  auto vm95 = make_migrating_mem_vm("b", 0.95);
  EXPECT_NEAR(static_cast<double>(vm5->working_set_pages()),
              0.05 * static_cast<double>(vm5->ram_pages()), 2.0);
  EXPECT_NEAR(static_cast<double>(vm95->working_set_pages()),
              0.95 * static_cast<double>(vm95->ram_pages()), 2.0);
}

TEST(DataCenter, HostRegistryAndVmLookup) {
  DataCenter dc;
  Host& a = dc.add_host(host32("m01"));
  dc.add_host(host32("m02"));
  EXPECT_THROW(dc.add_host(host32("m01")), util::ContractError);
  EXPECT_EQ(dc.host_count(), 2u);
  EXPECT_EQ(dc.host("m01"), &a);
  EXPECT_EQ(dc.host("nope"), nullptr);

  a.add_vm(make_load_cpu_vm("v1"));
  EXPECT_EQ(dc.host_of_vm("v1"), &a);
  EXPECT_EQ(dc.host_of_vm("v2"), nullptr);
  EXPECT_EQ(dc.total_vm_count(), 1u);
}

}  // namespace
}  // namespace wavm3::cloud
