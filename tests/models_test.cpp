// Unit tests for the models module: dataset mechanics and the three
// baseline models (HUANG, LIU, STRUNK) on planted synthetic data plus
// real campaign data.
#include <gtest/gtest.h>

#include <cmath>

#include "models/dataset.hpp"
#include "models/evaluation.hpp"
#include "models/huang.hpp"
#include "models/liu.hpp"
#include "models/strunk.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace wavm3::models {
namespace {

using migration::MigrationPhase;
using migration::MigrationType;

/// Builds a synthetic observation with constant power and features.
MigrationObservation constant_obs(double watts, double duration, HostRole role,
                                  MigrationType type, double cpu_host = 8.0,
                                  double data_gb = 4.0, double bw_mbs = 100.0) {
  MigrationObservation obs;
  obs.role = role;
  obs.type = type;
  obs.times.ms = 0.0;
  obs.times.ts = duration * 0.1;
  obs.times.te = duration * 0.9;
  obs.times.me = duration;
  obs.mem_bytes = 4.0 * 1024 * 1024 * 1024;
  obs.data_bytes = data_gb * 1e9;
  obs.avg_bandwidth = bw_mbs * 1e6;
  obs.idle_power_watts = 430.0;
  for (double t = 0.0; t <= duration + 1e-9; t += 0.5) {
    MigrationSample s;
    s.time = t;
    s.power_watts = watts;
    s.cpu_host = cpu_host;
    s.bandwidth = obs.avg_bandwidth;
    s.phase = obs.times.phase_at(t);
    if (s.phase == MigrationPhase::kNormal) s.phase = MigrationPhase::kActivation;
    obs.samples.push_back(s);
  }
  return obs;
}

TEST(Dataset, ObservedEnergyOfConstantPower) {
  const MigrationObservation obs =
      constant_obs(600.0, 60.0, HostRole::kSource, MigrationType::kLive);
  EXPECT_NEAR(obs.observed_energy(), 600.0 * 60.0, 1e-6);
}

TEST(Dataset, PhaseEnergiesSumToTotal) {
  const MigrationObservation obs =
      constant_obs(500.0, 80.0, HostRole::kSource, MigrationType::kLive);
  const double init = obs.observed_phase_energy(MigrationPhase::kInitiation);
  const double transfer = obs.observed_phase_energy(MigrationPhase::kTransfer);
  const double act = obs.observed_phase_energy(MigrationPhase::kActivation);
  // Phase sums miss only the straddling inter-phase segments (at most
  // one sample interval per boundary).
  EXPECT_NEAR(init + transfer + act, obs.observed_energy(), 3.0 * 0.5 * 500.0 + 1e-6);
  EXPECT_GT(transfer, init);
}

TEST(Dataset, SelectFiltersTypeAndRole) {
  Dataset d;
  d.observations.push_back(constant_obs(500, 10, HostRole::kSource, MigrationType::kLive));
  d.observations.push_back(constant_obs(500, 10, HostRole::kTarget, MigrationType::kLive));
  d.observations.push_back(constant_obs(500, 10, HostRole::kSource, MigrationType::kNonLive));
  EXPECT_EQ(d.select(MigrationType::kLive, HostRole::kSource).size(), 1u);
  EXPECT_EQ(d.select(MigrationType::kLive, HostRole::kTarget).size(), 1u);
  EXPECT_EQ(d.select(MigrationType::kNonLive, HostRole::kTarget).size(), 0u);
}

TEST(Dataset, SplitPartitionsObservations) {
  Dataset d;
  for (int i = 0; i < 50; ++i)
    d.observations.push_back(constant_obs(500, 10, HostRole::kSource, MigrationType::kLive));
  const auto [train, test] = d.split(0.2, 7);
  EXPECT_EQ(train.size(), 10u);
  EXPECT_EQ(test.size(), 40u);
}

TEST(Dataset, IntegratePredictedPowerMatchesClosedForm) {
  const MigrationObservation obs =
      constant_obs(600.0, 30.0, HostRole::kSource, MigrationType::kLive);
  const double e =
      integrate_predicted_power(obs, [](const MigrationSample&) { return 250.0; });
  EXPECT_NEAR(e, 250.0 * 30.0, 1e-6);
}

TEST(Huang, RecoversPlantedLinearModel) {
  Dataset train;
  util::RngStream rng(5);
  for (int i = 0; i < 40; ++i) {
    const double cpu = rng.uniform(0, 32);
    const double watts = 12.0 * cpu + 430.0 + rng.gaussian(0, 1.0);
    train.observations.push_back(
        constant_obs(watts, 20.0, HostRole::kSource, MigrationType::kLive, cpu));
    train.observations.push_back(
        constant_obs(watts, 20.0, HostRole::kTarget, MigrationType::kLive, cpu));
  }
  HuangModel huang;
  huang.fit(train);
  EXPECT_TRUE(huang.is_fitted());
  const auto c = huang.coefficients(HostRole::kSource);
  EXPECT_NEAR(c.alpha, 12.0, 0.3);
  EXPECT_NEAR(c.c, 430.0, 3.0);

  // Prediction integrates alpha*cpu + C over the observation.
  const MigrationObservation probe =
      constant_obs(0.0, 40.0, HostRole::kSource, MigrationType::kLive, 10.0);
  EXPECT_NEAR(huang.predict_energy(probe), (12.0 * 10.0 + 430.0) * 40.0,
              0.05 * (12.0 * 10.0 + 430.0) * 40.0);
}

TEST(Huang, VmCpuVariantIsMuchWeakerUnderHostLoad) {
  // The literal Eq. 8 reading cannot see host load at all, so it loses
  // badly on the CPULOAD-dominated campaign - evidence for the host-CPU
  // interpretation the paper's SVII prose suggests.
  const Dataset& d = wavm3::testing::fast_campaign_m().dataset;
  const auto [train, test] = d.split_stratified(0.34, 3);
  HuangModel host_cpu;
  host_cpu.fit(train);
  HuangModel vm_cpu(HuangModel::CpuRegressor::kVmCpu);
  vm_cpu.fit(train);
  EXPECT_EQ(vm_cpu.name(), "HUANG(vm-cpu)");
  const auto host_rows = evaluate_model(host_cpu, test);
  const auto vm_rows = evaluate_model(vm_cpu, test);
  const double h = find_row(host_rows, "HUANG", MigrationType::kLive, HostRole::kTarget)
                       .metrics.nrmse;
  const double v = find_row(vm_rows, "HUANG(vm-cpu)", MigrationType::kLive, HostRole::kTarget)
                       .metrics.nrmse;
  EXPECT_GT(v, 3.0 * h);
}

TEST(Huang, BiasCorrectionShiftsConstant) {
  const Dataset& d = wavm3::testing::fast_campaign_m().dataset;
  HuangModel huang;
  huang.fit(d);
  const double c_before = huang.coefficients(HostRole::kSource).c;
  huang.apply_idle_bias_correction(265.0);
  EXPECT_NEAR(huang.coefficients(HostRole::kSource).c, c_before - 265.0, 1e-9);
}

TEST(Huang, UnfittedQueriesThrow) {
  const HuangModel huang;
  EXPECT_THROW(huang.coefficients(HostRole::kSource), util::ContractError);
  EXPECT_FALSE(huang.is_fitted());
}

TEST(Liu, RecoversPlantedDataModel) {
  Dataset train;
  util::RngStream rng(9);
  for (int i = 0; i < 30; ++i) {
    const double gb = rng.uniform(4, 17);
    const double duration = 30.0;
    // Energy == watts * duration; make watts encode the planted relation.
    const double energy = 2500.0 * gb + 12000.0;
    train.observations.push_back(constant_obs(energy / duration, duration, HostRole::kSource,
                                              MigrationType::kLive, 8.0, gb));
  }
  LiuModel liu;
  liu.fit(train);
  const auto c = liu.coefficients(HostRole::kSource);
  EXPECT_NEAR(c.alpha_per_gb, 2500.0, 50.0);
  EXPECT_NEAR(c.c, 12000.0, 700.0);

  MigrationObservation probe =
      constant_obs(0.0, 30.0, HostRole::kSource, MigrationType::kLive, 8.0, 10.0);
  EXPECT_NEAR(liu.predict_energy(probe), 2500.0 * 10.0 + 12000.0, 800.0);
}

TEST(Liu, InsensitiveToHostLoadByDesign) {
  const Dataset& d = wavm3::testing::fast_campaign_m().dataset;
  LiuModel liu;
  liu.fit(d);
  MigrationObservation low =
      constant_obs(500, 30.0, HostRole::kSource, MigrationType::kLive, 2.0, 5.0);
  MigrationObservation high =
      constant_obs(900, 30.0, HostRole::kSource, MigrationType::kLive, 32.0, 5.0);
  // Same DATA -> same prediction, regardless of CPU load: LIU's blind spot.
  EXPECT_DOUBLE_EQ(liu.predict_energy(low), liu.predict_energy(high));
}

TEST(Strunk, FitsDespiteConstantMemColumn) {
  const Dataset& d = wavm3::testing::fast_campaign_m().dataset;
  StrunkModel strunk;
  strunk.fit(d);  // MEM(v) identical everywhere; ridge must handle it
  EXPECT_TRUE(strunk.is_fitted());
  const auto c = strunk.coefficients(HostRole::kSource);
  EXPECT_TRUE(std::isfinite(c.alpha_per_gib));
  EXPECT_TRUE(std::isfinite(c.beta_per_mbs));
  EXPECT_TRUE(std::isfinite(c.c));
}

TEST(Strunk, PredictsFromMemAndBandwidthOnly) {
  const Dataset& d = wavm3::testing::fast_campaign_m().dataset;
  StrunkModel strunk;
  strunk.fit(d);
  MigrationObservation a =
      constant_obs(500, 30.0, HostRole::kSource, MigrationType::kLive, 2.0, 5.0, 100.0);
  MigrationObservation b =
      constant_obs(900, 90.0, HostRole::kSource, MigrationType::kLive, 32.0, 15.0, 100.0);
  // Identical MEM and BW -> identical prediction: STRUNK's blind spot.
  EXPECT_DOUBLE_EQ(strunk.predict_energy(a), strunk.predict_energy(b));
}

TEST(Evaluation, ProducesRowsPerSlice) {
  const Dataset& d = wavm3::testing::fast_campaign_m().dataset;
  HuangModel huang;
  huang.fit(d);
  const auto rows = evaluate_model(huang, d);
  // Both types and both roles are present in the campaign.
  EXPECT_EQ(rows.size(), 4u);
  for (const auto& r : rows) {
    EXPECT_GT(r.n_migrations, 0u);
    EXPECT_GT(r.metrics.rmse, 0.0);
    EXPECT_GT(r.metrics.nrmse, 0.0);
    EXPECT_LT(r.metrics.nrmse, 1.0);  // HUANG is sane on its training data
  }
  const EvaluationRow& row =
      find_row(rows, "HUANG", MigrationType::kLive, HostRole::kSource);
  EXPECT_EQ(row.model, "HUANG");
  EXPECT_THROW(find_row(rows, "WAVM3", MigrationType::kLive, HostRole::kSource),
               util::ContractError);
}

TEST(Evaluation, UnfittedModelRejected) {
  const HuangModel huang;
  Dataset d;
  d.observations.push_back(constant_obs(500, 10, HostRole::kSource, MigrationType::kLive));
  EXPECT_THROW(evaluate_model(huang, d), util::ContractError);
}

}  // namespace
}  // namespace wavm3::models
