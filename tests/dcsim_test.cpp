// Tests for the data-centre simulation layer: load profiles, traced
// workloads, the closed consolidation loop, and the headline claim that
// model-driven consolidation saves fleet energy.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "core/planner.hpp"
#include "core/wavm3_model.hpp"
#include "dcsim/load_profile.hpp"
#include "dcsim/simulation.hpp"
#include "dcsim/traced_workload.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace wavm3::dcsim {
namespace {

const core::Wavm3Model& model() {
  static const core::Wavm3Model m = [] {
    core::Wavm3Model model;
    model.fit(wavm3::testing::fast_campaign_m().dataset);
    return model;
  }();
  return m;
}

const core::MigrationPlanner& planner() {
  static const core::MigrationPlanner p(model());
  return p;
}

TEST(LoadProfile, ConstantHoldsForever) {
  const LoadProfile p = LoadProfile::constant(0.4);
  EXPECT_DOUBLE_EQ(p.fraction_at(0.0), 0.4);
  EXPECT_DOUBLE_EQ(p.fraction_at(1e6), 0.4);
  EXPECT_DOUBLE_EQ(p.mean_fraction(), 0.4);
  EXPECT_FALSE(p.cyclic());
}

TEST(LoadProfile, StepsAndCyclicWrap) {
  const LoadProfile p = LoadProfile::steps({{0.0, 0.1}, {10.0, 0.8}}, 20.0);
  EXPECT_DOUBLE_EQ(p.fraction_at(5.0), 0.1);
  EXPECT_DOUBLE_EQ(p.fraction_at(15.0), 0.8);
  EXPECT_DOUBLE_EQ(p.fraction_at(25.0), 0.1);  // wrapped
  EXPECT_DOUBLE_EQ(p.fraction_at(39.9), 0.8);
  EXPECT_NEAR(p.mean_fraction(), 0.45, 1e-12);
  EXPECT_TRUE(p.cyclic());
}

TEST(LoadProfile, NonCyclicHoldsLastValue) {
  const LoadProfile p = LoadProfile::steps({{0.0, 0.2}, {10.0, 0.9}});
  EXPECT_DOUBLE_EQ(p.fraction_at(1e9), 0.9);
}

TEST(LoadProfile, DiurnalOscillatesBetweenBounds) {
  const LoadProfile p = LoadProfile::diurnal(0.1, 0.9, 86400.0);
  double lo = 1.0;
  double hi = 0.0;
  for (double t = 0.0; t < 86400.0; t += 600.0) {
    const double f = p.fraction_at(t);
    lo = std::min(lo, f);
    hi = std::max(hi, f);
    EXPECT_GE(f, 0.1 - 1e-9);
    EXPECT_LE(f, 0.9 + 1e-9);
  }
  EXPECT_LT(lo, 0.15);
  EXPECT_GT(hi, 0.85);
  // One full period later the pattern repeats.
  EXPECT_DOUBLE_EQ(p.fraction_at(3600.0), p.fraction_at(3600.0 + 86400.0));
}

TEST(LoadProfile, CsvRoundTrip) {
  const std::string path = ::testing::TempDir() + "/wavm3_profile.csv";
  {
    std::ofstream out(path);
    out << "time_s,fraction\n0,0.2\n600,0.8\n1200,0.4\n";
  }
  const LoadProfile p = LoadProfile::from_csv(path, 1800.0);
  std::remove(path.c_str());
  EXPECT_DOUBLE_EQ(p.fraction_at(100.0), 0.2);
  EXPECT_DOUBLE_EQ(p.fraction_at(700.0), 0.8);
  EXPECT_DOUBLE_EQ(p.fraction_at(1300.0), 0.4);
  EXPECT_DOUBLE_EQ(p.fraction_at(1900.0), 0.2);  // wrapped
  EXPECT_THROW(LoadProfile::from_csv("/nonexistent.csv"), util::ContractError);
}

TEST(LoadProfile, Validation) {
  EXPECT_THROW(LoadProfile::constant(1.5), util::ContractError);
  EXPECT_THROW(LoadProfile::steps({{1.0, 0.5}}), util::ContractError);   // must start at 0
  EXPECT_THROW(LoadProfile::steps({{0.0, 0.5}, {0.0, 0.6}}), util::ContractError);
  EXPECT_THROW(LoadProfile::steps({{0.0, 0.5}, {10.0, 0.6}}, 5.0), util::ContractError);
}

TEST(TracedWorkloadTest, FollowsProfile) {
  TracedWorkloadParams params;
  params.profile = LoadProfile::steps({{0.0, 0.25}, {100.0, 1.0}}, 200.0);
  params.vcpus = 4;
  params.dirty_pages_per_s_full = 1000.0;
  const TracedWorkload w(params);
  EXPECT_DOUBLE_EQ(w.cpu_demand(50.0), 1.0);
  EXPECT_DOUBLE_EQ(w.cpu_demand(150.0), 4.0);
  EXPECT_DOUBLE_EQ(w.dirty_page_rate(50.0), 250.0);
  EXPECT_DOUBLE_EQ(w.dirty_page_rate(150.0), 1000.0);
}

TEST(FleetScenario, DeterministicAndWellFormed) {
  const DcSimConfig a = make_fleet_scenario(4, 10, 7);
  const DcSimConfig b = make_fleet_scenario(4, 10, 7);
  ASSERT_EQ(a.vms.size(), 10u);
  ASSERT_EQ(a.hosts.size(), 4u);
  for (std::size_t i = 0; i < a.vms.size(); ++i) {
    EXPECT_EQ(a.vms[i].spec.vcpus, b.vms[i].spec.vcpus);
    EXPECT_DOUBLE_EQ(a.vms[i].workload.dirty_pages_per_s_full,
                     b.vms[i].workload.dirty_pages_per_s_full);
    EXPECT_GE(a.vms[i].spec.vcpus, 1);
    EXPECT_LE(a.vms[i].spec.vcpus, 4);
  }
}

DcSimConfig small_config(Strategy strategy) {
  DcSimConfig cfg = make_fleet_scenario(3, 4, 11);
  cfg.duration = 2.0 * 3600.0;
  cfg.controller_interval = 300.0;
  cfg.power_sample_period = 5.0;
  cfg.strategy = strategy;
  cfg.policy.horizon_seconds = 3600.0;
  cfg.policy.underload_fraction = 0.45;
  // Quiet overnight: every VM near its trough so consolidation is easy.
  for (auto& vm : cfg.vms) {
    vm.workload.profile = LoadProfile::constant(0.1);
  }
  return cfg;
}

TEST(Simulation, BaselineKeepsAllHostsOn) {
  DataCenterSimulation sim(small_config(Strategy::kNoConsolidation), nullptr);
  const DcSimReport report = sim.run();
  EXPECT_EQ(report.migrations_executed, 0);
  EXPECT_EQ(report.power_off_events, 0);
  EXPECT_DOUBLE_EQ(report.final_powered_on_hosts, 3.0);
  // Three mostly idle m-class hosts for two hours: ~3 * 440 W * 7200 s.
  EXPECT_NEAR(report.total_energy_joules, 3.0 * 445.0 * 7200.0, 0.08 * 3 * 445.0 * 7200.0);
  EXPECT_EQ(report.host_energy.size(), 3u);
}

TEST(Simulation, CostAwareConsolidationSavesEnergy) {
  DataCenterSimulation baseline(small_config(Strategy::kNoConsolidation), nullptr);
  const DcSimReport r_base = baseline.run();

  DataCenterSimulation aware(small_config(Strategy::kCostAware), &planner());
  const DcSimReport r_aware = aware.run();

  EXPECT_GT(r_aware.migrations_executed, 0);
  EXPECT_GT(r_aware.power_off_events, 0);
  EXPECT_LT(r_aware.final_powered_on_hosts, 3.0);
  // Powering hosts off must beat the always-on baseline.
  EXPECT_LT(r_aware.total_energy_joules, 0.9 * r_base.total_energy_joules);
}

TEST(Simulation, CostAwareRejectsUnprofitablePlans) {
  DcSimConfig cfg = small_config(Strategy::kCostAware);
  // A ludicrously short horizon: the saved idle time cannot repay even
  // one migration, so every plan must be rejected.
  cfg.policy.horizon_seconds = 1.0;
  // Make moves expensive: memory-hot VMs.
  for (auto& vm : cfg.vms) {
    vm.workload.dirty_pages_per_s_full = 300000.0;
    vm.workload.working_set_pages =
        static_cast<std::uint64_t>(0.9 * vm.spec.ram_bytes / util::kPageSize);
    vm.workload.profile = LoadProfile::constant(0.9);
  }
  DataCenterSimulation sim(cfg, &planner());
  const DcSimReport report = sim.run();
  EXPECT_EQ(report.power_off_events, 0);
  EXPECT_GT(report.plans_rejected_by_cost, 0);
}

TEST(Simulation, CostBlindExecutesWhatAwareRejects) {
  DcSimConfig cfg = small_config(Strategy::kCostBlind);
  cfg.policy.horizon_seconds = 1.0;  // worthless savings, blind does it anyway
  DataCenterSimulation blind(cfg, &planner());
  const DcSimReport report = blind.run();
  EXPECT_GT(report.migrations_executed, 0);
  EXPECT_GT(report.power_off_events, 0);
}

TEST(Simulation, SingleUseGuard) {
  DataCenterSimulation sim(small_config(Strategy::kNoConsolidation), nullptr);
  sim.run();
  EXPECT_THROW(sim.run(), util::ContractError);
}

TEST(Simulation, RequiresPlannerWhenConsolidating) {
  EXPECT_THROW(DataCenterSimulation(small_config(Strategy::kCostAware), nullptr),
               util::ContractError);
}

TEST(Simulation, OverloadedHostShedsLoad) {
  DcSimConfig cfg = make_fleet_scenario(3, 1, 5);
  cfg.duration = 3600.0;
  cfg.controller_interval = 120.0;
  cfg.power_sample_period = 5.0;
  cfg.strategy = Strategy::kCostAware;
  cfg.policy.underload_fraction = 0.05;  // effectively no consolidation
  cfg.policy.overload_fraction = 0.60;
  // Two hot 4-vCPU VMs + helpers on one 32-vCPU host won't trip 60%;
  // build a genuinely overloaded host instead: eight 4-vCPU VMs at 90%.
  cfg.vms.clear();
  for (int i = 0; i < 8; ++i) {
    VmPlacement p;
    p.vm_id = "hot" + std::to_string(i);
    p.host = "host00";
    p.spec.instance_type = "hot";
    p.spec.vcpus = 4;
    p.spec.ram_bytes = util::gib(2);
    p.workload.profile = LoadProfile::constant(0.9);
    p.workload.vcpus = 4;
    cfg.vms.push_back(std::move(p));
  }
  DataCenterSimulation sim(cfg, &planner());
  const DcSimReport report = sim.run();
  EXPECT_GT(report.migrations_executed, 0);  // relief migrations happened
}

}  // namespace
}  // namespace wavm3::dcsim
