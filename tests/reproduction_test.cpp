// Reproduction-stability suite: the paper's headline claims must hold
// across random seeds, not just the one the benches print. Each seed
// runs a reduced campaign, fits all four models, and checks the
// orderings the paper reports.
#include <gtest/gtest.h>

#include "core/wavm3_model.hpp"
#include "exp/campaign.hpp"
#include "models/evaluation.hpp"
#include "models/huang.hpp"
#include "models/liu.hpp"
#include "models/strunk.hpp"

namespace wavm3 {
namespace {

using migration::MigrationType;
using models::HostRole;

struct PipelineResult {
  std::vector<models::EvaluationRow> rows;
};

PipelineResult run_pipeline(std::uint64_t seed) {
  const exp::CampaignResult campaign =
      exp::run_campaign(exp::testbed_m(), exp::fast_campaign_options(), seed);
  const auto [train, test] = campaign.dataset.split_stratified(0.34, seed ^ 0xABCD);
  core::Wavm3Model wavm3;
  wavm3.fit(train);
  models::HuangModel huang;
  huang.fit(train);
  models::LiuModel liu;
  liu.fit(train);
  models::StrunkModel strunk;
  strunk.fit(train);
  PipelineResult out;
  out.rows = models::evaluate_models({&wavm3, &huang, &liu, &strunk}, test);
  return out;
}

double nrmse_of(const PipelineResult& r, const char* model, MigrationType type, HostRole role) {
  return models::find_row(r.rows, model, type, role).metrics.nrmse;
}

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, HeadlineOrderingsHold) {
  const PipelineResult r = run_pipeline(GetParam());
  for (const auto type : {MigrationType::kNonLive, MigrationType::kLive}) {
    for (const auto role : {HostRole::kSource, HostRole::kTarget}) {
      const double w = nrmse_of(r, "WAVM3", type, role);
      const double h = nrmse_of(r, "HUANG", type, role);
      const double l = nrmse_of(r, "LIU", type, role);
      const double s = nrmse_of(r, "STRUNK", type, role);
      // The workload-aware models are far ahead of the workload-blind
      // ones on every slice (the paper's central comparison).
      EXPECT_LT(w, 0.5 * l) << "seed " << GetParam();
      EXPECT_LT(w, 0.5 * s) << "seed " << GetParam();
      EXPECT_LT(h, 0.7 * l) << "seed " << GetParam();
      // WAVM3 stays in HUANG's league or better everywhere (small-data
      // slack; the strict win is asserted on the live source below).
      EXPECT_LT(w, h * 1.5 + 0.01) << "seed " << GetParam();
      // All NRMSEs are sane fractions.
      EXPECT_LT(w, 0.15);
      EXPECT_GT(w, 0.0);
    }
  }
  // The paper's headline: workload terms pay off on live migration at
  // the source (DR tracking + VM CPU).
  const double w_live = nrmse_of(r, "WAVM3", MigrationType::kLive, HostRole::kSource);
  const double h_live = nrmse_of(r, "HUANG", MigrationType::kLive, HostRole::kSource);
  EXPECT_LE(w_live, h_live * 1.02) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Values(11u, 2015u, 77777u));

}  // namespace
}  // namespace wavm3
