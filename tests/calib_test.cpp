// Tests for src/calib/: FeedbackBuffer window semantics (validation,
// FIFO eviction, post-copy folding, compaction), DriftDetector trip /
// no-trip behaviour incl. the paper-style intercept-bias test, and the
// OnlineRecalibrator loop — drift -> refit -> shadow-gated swap,
// worse-candidate rejection, post-swap rollback with cooldown, the
// service attach() wiring, and a concurrent feedback + swap hammer
// written to run meaningfully under ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "calib/drift.hpp"
#include "calib/feedback_buffer.hpp"
#include "calib/recalibrator.hpp"
#include "core/planner.hpp"
#include "core/wavm3_model.hpp"
#include "serve/coeff_store.hpp"
#include "serve/service.hpp"
#include "util/units.hpp"

namespace wavm3::calib {
namespace {

using migration::MigrationType;
using models::HostRole;

/// A fitted model from synthetic coefficient tables; `scale` perturbs
/// every coefficient so two models give different predictions.
core::Wavm3Model make_model(double scale = 1.0) {
  core::Wavm3Model m;
  for (const MigrationType type : {MigrationType::kNonLive, MigrationType::kLive}) {
    const double t = type == MigrationType::kLive ? 1.0 : 0.7;
    core::Wavm3Coefficients table;
    table.source.initiation = {2.1 * scale * t, 1.3 * scale, 0.0, 0.0, 210.0 * scale};
    table.source.transfer = {2.4 * scale * t, 1.1e-7 * scale, 55.0 * scale, 1.9 * scale,
                             205.0 * scale};
    table.source.activation = {2.2 * scale * t, 1.2 * scale, 0.0, 0.0, 208.0 * scale};
    table.target.initiation = {1.9 * scale * t, 0.8 * scale, 0.0, 0.0, 200.0 * scale};
    table.target.transfer = {2.0 * scale * t, 0.9e-7 * scale, 12.0 * scale, 0.7 * scale,
                             198.0 * scale};
    table.target.activation = {2.1 * scale * t, 1.0 * scale, 0.0, 0.0, 202.0 * scale};
    m.set_coefficients(type, table);
  }
  return m;
}

/// A deterministic scenario family indexed by `i`.
core::MigrationScenario make_scenario(int i) {
  core::MigrationScenario sc;
  sc.type = i % 3 == 0 ? MigrationType::kNonLive : MigrationType::kLive;
  sc.vm_mem_bytes = util::gib(1.0 + i % 8);
  sc.vm_cpu_vcpus = 1.0 + i % 4;
  const double mem_pages = sc.vm_mem_bytes / util::kPageSize;
  sc.vm_working_set_pages = mem_pages * 0.25;
  sc.vm_dirty_pages_per_s = sc.vm_working_set_pages * (0.05 + 0.09 * (i % 10));
  sc.source_cpu_load = 2.0 + i % 20;
  sc.target_cpu_load = 1.0 + i % 15;
  return sc;
}

/// Ground-truth feedback for a scenario: the `truth` model's forecast
/// plus a constant extra power draw on both hosts (the C1->C2-style
/// idle-power bias the loop must recover).
serve::MigrationFeedback feedback_from(const core::Wavm3Model& truth,
                                       const core::MigrationScenario& sc,
                                       double extra_watts = 0.0) {
  const core::MigrationForecast fc = core::MigrationPlanner(truth).forecast(sc);
  const double dur = fc.times.me - fc.times.ms;
  serve::MigrationFeedback fb;
  fb.source_energy_j = fc.source_energy + extra_watts * dur;
  fb.target_energy_j = fc.target_energy + extra_watts * dur;
  fb.duration_s = dur;
  return fb;
}

RecalibratorConfig test_config() {
  RecalibratorConfig cfg;
  cfg.window_capacity = 128;
  cfg.drift.min_samples = 24;
  cfg.pass_interval_samples = 0;  // passes run only when the test says so
  cfg.rollback_min_samples = 16;
  cfg.cooldown_samples = 64;
  return cfg;
}

// ------------------------------------------------------- FeedbackBuffer

TEST(FeedbackBuffer, RejectsCorruptSamples) {
  FeedbackBuffer buf(8);
  const core::MigrationScenario sc = make_scenario(1);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(buf.push(sc, nan, 100.0, 10.0).has_value());
  EXPECT_FALSE(buf.push(sc, 100.0, nan, 10.0).has_value());
  EXPECT_FALSE(buf.push(sc, 100.0, 100.0, 0.0).has_value());
  EXPECT_FALSE(buf.push(sc, 100.0, 100.0, -1.0).has_value());
  EXPECT_FALSE(buf.push(sc, 100.0, 100.0, nan).has_value());
  EXPECT_EQ(buf.rejected(), 5u);
  EXPECT_EQ(buf.total_ingested(), 0u);
  EXPECT_TRUE(buf.window(1, HostRole::kSource).empty());
}

TEST(FeedbackBuffer, EvictionIsFifoAndBoundedByCapacity) {
  FeedbackBuffer buf(8);
  core::MigrationScenario sc = make_scenario(1);
  sc.type = MigrationType::kLive;
  for (int i = 1; i <= 20; ++i) {
    const auto seq = buf.push(sc, 1000.0 + i, 2000.0 + i, 30.0);
    ASSERT_TRUE(seq.has_value());
    EXPECT_EQ(*seq, static_cast<std::uint64_t>(i));
  }
  const FeedbackBuffer::Window w = buf.window(1, HostRole::kSource);
  ASSERT_EQ(w.size(), 8u);  // oldest 12 evicted
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_EQ(w.seq[i], 13u + i);  // oldest-first, FIFO order
    EXPECT_DOUBLE_EQ(w.observed_energy[i], 1000.0 + 13.0 + static_cast<double>(i));
  }
  const FeedbackBuffer::Window wt = buf.window(1, HostRole::kTarget);
  ASSERT_EQ(wt.size(), 8u);
  EXPECT_DOUBLE_EQ(wt.observed_energy[0], 2000.0 + 13.0);
}

TEST(FeedbackBuffer, CompactionPreservesWindowContents) {
  // Push far past capacity so the start-offset compaction runs several
  // times; the window must always hold exactly the freshest rows.
  FeedbackBuffer buf(16);
  core::MigrationScenario sc = make_scenario(2);
  sc.type = MigrationType::kLive;
  for (int i = 1; i <= 100; ++i) ASSERT_TRUE(buf.push(sc, i, i, 1.0).has_value());
  const FeedbackBuffer::Window w = buf.window(1, HostRole::kSource);
  ASSERT_EQ(w.size(), 16u);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_DOUBLE_EQ(w.observed_energy[i], 85.0 + static_cast<double>(i));
  }
}

TEST(FeedbackBuffer, PostCopyFoldsIntoLiveSlice) {
  FeedbackBuffer buf(8);
  core::MigrationScenario sc = make_scenario(1);
  sc.type = MigrationType::kPostCopy;
  ASSERT_TRUE(buf.push(sc, 10.0, 20.0, 5.0).has_value());
  EXPECT_EQ(buf.size(1, HostRole::kSource), 1u);  // live slice absorbed it
  EXPECT_EQ(buf.size(0, HostRole::kSource), 0u);
  EXPECT_EQ(FeedbackBuffer::type_slice(MigrationType::kPostCopy),
            FeedbackBuffer::type_slice(MigrationType::kLive));
}

// -------------------------------------------------------- DriftDetector

TEST(DriftDetector, NeverTripsBelowMinSamples) {
  DriftConfig cfg;
  cfg.min_samples = 32;
  const DriftDetector det(cfg);
  const std::vector<double> pred(8, 100.0);
  const std::vector<double> obs(8, 900.0);  // wildly wrong, but only 8 samples
  const std::vector<double> dur(8, 10.0);
  const DriftReport r = det.assess(pred, obs, dur);
  EXPECT_FALSE(r.drifted);
  EXPECT_EQ(r.samples, 8u);
}

TEST(DriftDetector, AccuratePredictionsDoNotTrip) {
  const DriftDetector det(DriftConfig{0.15, 5.0, 16});
  std::vector<double> pred;
  std::vector<double> obs;
  std::vector<double> dur;
  for (int i = 0; i < 32; ++i) {
    pred.push_back(1000.0 + 37.0 * i);
    obs.push_back(pred.back() * (i % 2 == 0 ? 1.01 : 0.99));  // 1% noise
    dur.push_back(20.0 + i);
  }
  const DriftReport r = det.assess(pred, obs, dur);
  EXPECT_FALSE(r.drifted);
  ASSERT_TRUE(r.nrmse.has_value());
  EXPECT_LT(*r.nrmse, 0.05);
}

TEST(DriftDetector, NrmseTripOnMultiplicativeShift) {
  const DriftDetector det(DriftConfig{0.15, 5.0, 16});
  std::vector<double> pred;
  std::vector<double> obs;
  std::vector<double> dur;
  for (int i = 0; i < 32; ++i) {
    pred.push_back(1000.0 + 37.0 * i);
    obs.push_back(pred.back() * 1.5);
    dur.push_back(20.0 + i);
  }
  const DriftReport r = det.assess(pred, obs, dur);
  EXPECT_TRUE(r.drifted);
  EXPECT_TRUE(r.nrmse_tripped);
}

TEST(DriftDetector, InterceptBiasTripsEvenWhenNrmseIsQuiet) {
  // A 10 W constant offset on ~50 kJ migrations: relative error ~2%,
  // far under the NRMSE threshold, but exactly the C1->C2 idle-power
  // bias the paper corrects — the bias test must catch it.
  const DriftDetector det(DriftConfig{0.15, 5.0, 16});
  std::vector<double> pred;
  std::vector<double> obs;
  std::vector<double> dur;
  for (int i = 0; i < 32; ++i) {
    dur.push_back(90.0 + i);
    pred.push_back(500.0 * dur.back());
    obs.push_back(pred.back() + 10.0 * dur.back());
  }
  const DriftReport r = det.assess(pred, obs, dur);
  EXPECT_TRUE(r.drifted);
  EXPECT_TRUE(r.bias_tripped);
  EXPECT_FALSE(r.nrmse_tripped);
  EXPECT_NEAR(r.bias_watts, 10.0, 1e-9);
}

TEST(DriftDetector, DegenerateWindowDoesNotAbort) {
  // All-zero observations make the NRMSE normaliser zero — the
  // pre-fix stats::nrmse would have thrown; the detector must simply
  // report "no NRMSE evidence" and still run the bias test.
  const DriftDetector det(DriftConfig{0.15, 5.0, 4});
  const std::vector<double> pred(8, 120.0);
  const std::vector<double> obs(8, 0.0);
  const std::vector<double> dur(8, 10.0);
  DriftReport r;
  ASSERT_NO_THROW(r = det.assess(pred, obs, dur));
  EXPECT_FALSE(r.nrmse.has_value());
  EXPECT_TRUE(r.bias_tripped);  // -12 W bias is real evidence
  EXPECT_TRUE(r.drifted);
}

// ----------------------------------------------------- OnlineRecalibrator

TEST(OnlineRecalibrator, RecoversInjectedBiasShift) {
  const core::Wavm3Model incumbent = make_model();
  serve::CoefficientStore store(incumbent);
  OnlineRecalibrator rec(store, test_config());

  // The workload's true draw is the incumbent plus a constant 18 W on
  // both hosts (timings are coefficient-independent, so this is an
  // exactly recoverable gain=1/offset=18 correction).
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE(rec.record(make_scenario(i), feedback_from(incumbent, make_scenario(i), 18.0)));
  }
  const std::uint64_t v0 = store.version();
  const PassReport report = rec.run_pass();
  EXPECT_TRUE(report.swapped);
  EXPECT_GT(store.version(), v0);
  const RecalibrationStats s = rec.stats();
  EXPECT_GE(s.drift_trips, 1u);
  EXPECT_GE(s.refits, 1u);
  EXPECT_EQ(s.swaps, 1u);
  EXPECT_EQ(s.rollbacks, 0u);

  // The published candidate must track the shifted truth much more
  // closely than the stale incumbent did.
  const auto snap = store.snapshot();
  const core::MigrationPlanner cand(*snap.model);
  const core::MigrationPlanner stale(incumbent);
  for (int i = 200; i < 210; ++i) {
    const core::MigrationScenario sc = make_scenario(i);
    const serve::MigrationFeedback truth = feedback_from(incumbent, sc, 18.0);
    const double cand_err = std::abs(cand.forecast(sc).source_energy - truth.source_energy_j);
    const double stale_err =
        std::abs(stale.forecast(sc).source_energy - truth.source_energy_j);
    EXPECT_LT(cand_err, stale_err * 0.2);
  }
}

TEST(OnlineRecalibrator, WorseCandidateIsNeverPublished) {
  const core::Wavm3Model incumbent = make_model();
  serve::CoefficientStore store(incumbent);
  OnlineRecalibrator rec(store, test_config());

  // Alternating +/-25% multiplicative noise around the incumbent's own
  // predictions: NRMSE trips drift, but there is no systematic gain or
  // offset to exploit, so every candidate must lose the shadow eval.
  for (int i = 0; i < 120; ++i) {
    const core::MigrationScenario sc = make_scenario(i);
    const core::MigrationForecast fc = core::MigrationPlanner(incumbent).forecast(sc);
    const double wobble = i % 2 == 0 ? 1.25 : 0.75;
    serve::MigrationFeedback fb;
    fb.source_energy_j = fc.source_energy * wobble;
    fb.target_energy_j = fc.target_energy * wobble;
    fb.duration_s = fc.times.me - fc.times.ms;
    ASSERT_TRUE(rec.record(sc, fb));
  }
  const std::uint64_t v0 = store.version();
  const PassReport report = rec.run_pass();
  EXPECT_FALSE(report.swapped);
  EXPECT_EQ(store.version(), v0);  // the incumbent stayed live
  const RecalibrationStats s = rec.stats();
  EXPECT_GE(s.drift_trips, 1u);
  EXPECT_EQ(s.swaps, 0u);
  EXPECT_GE(s.candidates_rejected, 1u);
}

TEST(OnlineRecalibrator, RollsBackWhenPostSwapFeedbackRegresses) {
  const core::Wavm3Model incumbent = make_model();
  serve::CoefficientStore store(incumbent);
  OnlineRecalibrator rec(store, test_config());

  // Phase 1: a 30 W bias shift; the loop should publish a correction.
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE(rec.record(make_scenario(i), feedback_from(incumbent, make_scenario(i), 30.0)));
  }
  const PassReport swap_report = rec.run_pass();
  ASSERT_TRUE(swap_report.swapped);
  const std::uint64_t swapped_version = store.version();

  // Too little post-swap evidence: the watch holds further refits.
  for (int i = 120; i < 125; ++i) {
    ASSERT_TRUE(rec.record(make_scenario(i), feedback_from(incumbent, make_scenario(i), 0.0)));
  }
  const PassReport waiting = rec.run_pass();
  EXPECT_TRUE(waiting.waiting_confirmation);
  EXPECT_FALSE(waiting.swapped);
  EXPECT_EQ(store.version(), swapped_version);

  // Phase 2: the bias vanishes (truth reverts to the incumbent), so
  // the published candidate now regresses badly on fresh feedback.
  for (int i = 125; i < 170; ++i) {
    ASSERT_TRUE(rec.record(make_scenario(i), feedback_from(incumbent, make_scenario(i), 0.0)));
  }
  const PassReport rollback_report = rec.run_pass();
  EXPECT_TRUE(rollback_report.rolled_back);
  EXPECT_EQ(rec.stats().rollbacks, 1u);
  EXPECT_GT(store.version(), swapped_version);  // the revert is itself a publish

  // The reverted model must predict exactly like the original incumbent.
  const auto snap = store.snapshot();
  const core::MigrationScenario probe = make_scenario(7);
  EXPECT_DOUBLE_EQ(core::MigrationPlanner(*snap.model).forecast(probe).source_energy,
                   core::MigrationPlanner(incumbent).forecast(probe).source_energy);

  // And the loop sits out its cooldown instead of flapping.
  const PassReport cooled = rec.run_pass();
  EXPECT_TRUE(cooled.cooldown);
  EXPECT_FALSE(cooled.swapped);
}

TEST(OnlineRecalibrator, ExternalPublishDisarmsTheWatch) {
  const core::Wavm3Model incumbent = make_model();
  serve::CoefficientStore store(incumbent);
  OnlineRecalibrator rec(store, test_config());
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE(rec.record(make_scenario(i), feedback_from(incumbent, make_scenario(i), 30.0)));
  }
  ASSERT_TRUE(rec.run_pass().swapped);
  // An operator reload supersedes the candidate: the watch is moot and
  // must never roll back over the operator's coefficients.
  store.swap(std::make_shared<const core::Wavm3Model>(make_model(1.3)));
  const std::uint64_t operator_version = store.version();
  for (int i = 120; i < 170; ++i) {
    ASSERT_TRUE(rec.record(make_scenario(i), feedback_from(incumbent, make_scenario(i), 0.0)));
  }
  const PassReport report = rec.run_pass();
  EXPECT_FALSE(report.rolled_back);
  EXPECT_EQ(rec.stats().rollbacks, 0u);
  EXPECT_GE(store.version(), operator_version);
}

TEST(OnlineRecalibrator, AttachWiresServiceFeedbackEndToEnd) {
  serve::ServiceConfig scfg;
  scfg.threads = 2;
  scfg.cache_capacity = 0;
  serve::PredictionService service(make_model(), scfg);
  RecalibratorConfig cfg = test_config();
  cfg.pass_interval_samples = 32;  // passes fire from the sink cadence
  const std::shared_ptr<OnlineRecalibrator> rec = attach(service, cfg);

  const core::Wavm3Model incumbent = make_model();
  const std::uint64_t v0 = service.model_version();
  for (int i = 0; i < 150; ++i) {
    EXPECT_TRUE(service.record_feedback(make_scenario(i),
                                        feedback_from(incumbent, make_scenario(i), 25.0)));
  }
  service.shutdown(serve::DrainMode::kDrain);  // all queued sink jobs ran
  EXPECT_EQ(rec->stats().samples_accepted, 150u);
  EXPECT_GE(rec->stats().swaps, 1u);
  EXPECT_GT(service.model_version(), v0);
  // calib metrics surface through the service's registry exports.
  EXPECT_NE(service.metrics_prometheus().find("calib_swaps_total"), std::string::npos);
}

TEST(OnlineRecalibrator, ConcurrentFeedbackAndSwapsAreClean) {
  // TSan target: feedback from many threads (with inline cadence
  // passes) racing operator swaps and snapshot readers.
  const core::Wavm3Model incumbent = make_model();
  serve::CoefficientStore store(incumbent);
  RecalibratorConfig cfg = test_config();
  cfg.pass_interval_samples = 16;
  OnlineRecalibrator rec(store, cfg);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const core::MigrationScenario sc = make_scenario(t * kPerThread + i);
        rec.record(sc, feedback_from(incumbent, sc, 20.0));
      }
    });
  }
  std::thread publisher([&] {
    for (int i = 0; i < 20; ++i) {
      store.swap(std::make_shared<const core::Wavm3Model>(make_model(1.0 + 0.01 * i)));
      const auto snap = store.snapshot();
      (void)core::MigrationPlanner(*snap.model).forecast(make_scenario(i));
      std::this_thread::yield();
    }
  });
  for (auto& w : writers) w.join();
  publisher.join();
  EXPECT_EQ(rec.buffer().total_ingested(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(rec.stats().samples_accepted, static_cast<std::uint64_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace wavm3::calib
