// Tests for the energy-aware consolidation manager: scenario mapping,
// vacate planning, benefit accounting, and the paper's SVIII guidance
// (high-DR VMs onto loaded hosts are expensive moves).
#include <gtest/gtest.h>

#include "cloud/instances.hpp"
#include "consolidation/manager.hpp"
#include "core/planner.hpp"
#include "core/wavm3_model.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace wavm3::consolidation {
namespace {

using migration::MigrationType;

const core::Wavm3Model& model() {
  static const core::Wavm3Model m = [] {
    core::Wavm3Model model;
    model.fit(wavm3::testing::fast_campaign_m().dataset);
    return model;
  }();
  return m;
}

const core::MigrationPlanner& planner() {
  static const core::MigrationPlanner p(model());
  return p;
}

HostPowerEstimate m_power() {
  HostPowerEstimate e;
  e.idle_watts = 433.0;
  e.watts_per_vcpu = 12.0;
  return e;
}

cloud::HostSpec host32(const std::string& name) {
  cloud::HostSpec h;
  h.name = name;
  h.vcpus = 32;
  h.ram_bytes = util::gib(32);
  return h;
}

constexpr double kLinkRate = 117.5e6;

TEST(Manager, ScenarioMapsLoadsAndVmSignature) {
  cloud::DataCenter dc;
  cloud::Host& a = dc.add_host(host32("a"));
  cloud::Host& b = dc.add_host(host32("b"));
  a.add_vm(cloud::make_migrating_mem_vm("mv", 0.95));
  for (int i = 0; i < 3; ++i) b.add_vm(cloud::make_load_cpu_vm("l" + std::to_string(i)));

  const ConsolidationManager mgr(ConsolidationPolicy{}, planner(), m_power());
  const core::MigrationScenario sc =
      mgr.scenario_for(dc, *a.vm("mv"), a, b, kLinkRate);
  EXPECT_DOUBLE_EQ(sc.vm_mem_bytes, util::gib(4));
  EXPECT_DOUBLE_EQ(sc.vm_cpu_vcpus, 1.0);
  EXPECT_GT(sc.vm_dirty_pages_per_s, 1e5);
  EXPECT_NEAR(sc.source_cpu_load, a.cpu_used(0.0) - 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(sc.target_cpu_load, b.cpu_used(0.0));
  EXPECT_DOUBLE_EQ(sc.source_cpu_capacity, 32.0);
}

TEST(Manager, VacatePlanCoversEveryVm) {
  cloud::DataCenter dc;
  cloud::Host& a = dc.add_host(host32("a"));
  dc.add_host(host32("b"));
  dc.add_host(host32("c"));
  a.add_vm(cloud::make_load_cpu_vm("v1"));
  a.add_vm(cloud::make_migrating_cpu_vm("v2"));

  const ConsolidationManager mgr(ConsolidationPolicy{}, planner(), m_power());
  const auto plan = mgr.plan_vacate(dc, "a", kLinkRate);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->migrations.size(), 2u);
  for (const auto& m : plan->migrations) {
    EXPECT_EQ(m.source, "a");
    EXPECT_NE(m.target, "a");
    EXPECT_GT(m.forecast.total_energy(), 0.0);
  }
  EXPECT_GT(plan->steady_saving_joules, 0.0);
}

TEST(Manager, LongHorizonMakesVacatingBeneficial) {
  cloud::DataCenter dc;
  cloud::Host& a = dc.add_host(host32("a"));
  dc.add_host(host32("b"));
  a.add_vm(cloud::make_load_cpu_vm("v1"));

  ConsolidationPolicy policy;
  policy.horizon_seconds = 24 * 3600.0;  // a day off saves ~37 MJ
  const ConsolidationManager mgr(policy, planner(), m_power());
  const auto plan = mgr.plan_vacate(dc, "a", kLinkRate);
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->beneficial);
  EXPECT_GT(plan->net_benefit_joules, 1e6);
}

TEST(Manager, InfeasibleWhenTargetsFull) {
  cloud::DataCenter dc;
  cloud::Host& a = dc.add_host(host32("a"));
  cloud::Host& b = dc.add_host(host32("b"));
  a.add_vm(cloud::make_load_cpu_vm("v1"));
  // Saturate the only target beyond the overload threshold.
  for (int i = 0; i < 8; ++i) b.add_vm(cloud::make_load_cpu_vm("bl" + std::to_string(i)));

  const ConsolidationManager mgr(ConsolidationPolicy{}, planner(), m_power());
  EXPECT_FALSE(mgr.plan_vacate(dc, "a", kLinkRate).has_value());
}

TEST(Manager, PlanScansOnlyUnderloadedHosts) {
  cloud::DataCenter dc;
  cloud::Host& light = dc.add_host(host32("light"));
  cloud::Host& heavy = dc.add_host(host32("heavy"));
  dc.add_host(host32("spare"));
  light.add_vm(cloud::make_load_cpu_vm("lv"));                 // ~14% load
  for (int i = 0; i < 6; ++i) heavy.add_vm(cloud::make_load_cpu_vm("h" + std::to_string(i)));

  ConsolidationPolicy policy;
  policy.underload_fraction = 0.30;
  const ConsolidationManager mgr(policy, planner(), m_power());
  const auto plans = mgr.plan(dc, kLinkRate);
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_EQ(plans.front().vacated_host, "light");
}

TEST(Manager, HighDirtyVmOntoLoadedHostCostsMore) {
  // The SVIII guidance: migrating a high-dirtying-ratio VM towards a
  // CPU-loaded host is the expensive move the model should expose.
  cloud::DataCenter dc;
  cloud::Host& src = dc.add_host(host32("src"));
  cloud::Host& idle_tgt = dc.add_host(host32("idle"));
  cloud::Host& busy_tgt = dc.add_host(host32("busy"));
  src.add_vm(cloud::make_migrating_mem_vm("mv", 0.95));
  for (int i = 0; i < 7; ++i) busy_tgt.add_vm(cloud::make_load_cpu_vm("b" + std::to_string(i)));

  const ConsolidationManager mgr(ConsolidationPolicy{}, planner(), m_power());
  const auto to_idle = planner().forecast(
      mgr.scenario_for(dc, *src.vm("mv"), src, idle_tgt, kLinkRate));
  const auto to_busy = planner().forecast(
      mgr.scenario_for(dc, *src.vm("mv"), src, busy_tgt, kLinkRate));
  // The busy target throttles the transfer and burns more energy.
  EXPECT_GE(to_busy.times.transfer_duration(), to_idle.times.transfer_duration());
  EXPECT_GT(to_busy.total_energy(), to_idle.total_energy());
}

TEST(Manager, PolicyValidation) {
  ConsolidationPolicy bad;
  bad.underload_fraction = 0.9;
  bad.overload_fraction = 0.5;
  EXPECT_THROW(ConsolidationManager(bad, planner(), m_power()), util::ContractError);
}

}  // namespace
}  // namespace wavm3::consolidation
