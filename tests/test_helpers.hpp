// Shared fixtures for the model/exp/consolidation test suites: reduced
// campaigns computed once per process.
#pragma once

#include "exp/campaign.hpp"

namespace wavm3::testing {

/// A reduced m01-m02 campaign (3 runs, extreme sweep points), computed
/// once and shared by all tests in the binary.
inline const exp::CampaignResult& fast_campaign_m() {
  static const exp::CampaignResult campaign = [] {
    return exp::run_campaign(exp::testbed_m(), exp::fast_campaign_options(), 42);
  }();
  return campaign;
}

/// A reduced o1-o2 campaign for cross-testbed tests.
inline const exp::CampaignResult& fast_campaign_o() {
  static const exp::CampaignResult campaign = [] {
    return exp::run_campaign(exp::testbed_o(), exp::fast_campaign_options(), 43);
  }();
  return campaign;
}

}  // namespace wavm3::testing
