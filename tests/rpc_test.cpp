// RPC wire + codec suite: framing golden cases, a fuzz-ish sweep of
// malformed inputs (truncated at every boundary, oversize length
// prefixes, wrong version, corrupted CRC), and message round trips.
// Every malformed input must produce a typed RpcError and never read
// out of bounds — the suite runs under the ASan CI job to enforce the
// second half of that sentence.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/wavm3_model.hpp"
#include "rpc/messages.hpp"
#include "rpc/ring.hpp"
#include "rpc/wire.hpp"
#include "serve/scenario_key.hpp"

namespace wavm3::rpc {
namespace {

std::vector<std::uint8_t> payload_abc() { return {0x61, 0x62, 0x63}; }

RpcErrorCode code_of(const std::function<void()>& f) {
  try {
    f();
  } catch (const RpcError& e) {
    return e.code();
  }
  ADD_FAILURE() << "expected an RpcError";
  return RpcErrorCode::kRemoteError;
}

TEST(Wire, Crc32MatchesKnownVectors) {
  // IEEE CRC-32 of "123456789" is the classic check value 0xCBF43926.
  const std::vector<std::uint8_t> check{'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(check), 0xCBF43926U);
  EXPECT_EQ(crc32({}), 0x00000000U);
}

TEST(Wire, FrameRoundTrip) {
  const std::vector<std::uint8_t> payload = payload_abc();
  const std::vector<std::uint8_t> frame = encode_frame(7, payload);
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + payload.size());
  const FrameView view = decode_frame(frame);
  EXPECT_EQ(view.type, 7);
  EXPECT_EQ(std::vector<std::uint8_t>(view.payload.begin(), view.payload.end()), payload);
}

TEST(Wire, EmptyPayloadRoundTrip) {
  const std::vector<std::uint8_t> frame = encode_frame(1, {});
  const FrameView view = decode_frame(frame);
  EXPECT_EQ(view.type, 1);
  EXPECT_TRUE(view.payload.empty());
}

// The core fuzz-ish sweep: truncate a valid frame at EVERY length
// shorter than itself. Each prefix must throw a typed error (never
// crash, never read past the span).
TEST(Wire, TruncationAtEveryBoundaryIsTyped) {
  const std::vector<std::uint8_t> frame = encode_frame(7, payload_abc());
  for (std::size_t len = 0; len < frame.size(); ++len) {
    const std::span<const std::uint8_t> prefix(frame.data(), len);
    try {
      decode_frame(prefix);
      FAIL() << "prefix of " << len << " bytes decoded";
    } catch (const RpcError& e) {
      // Short header -> kTruncated; full header with missing payload
      // bytes -> kTruncated too.
      EXPECT_EQ(e.code(), RpcErrorCode::kTruncated) << "at length " << len;
    }
  }
}

TEST(Wire, BadMagicRejected) {
  std::vector<std::uint8_t> frame = encode_frame(7, payload_abc());
  frame[0] ^= 0xFFU;
  EXPECT_EQ(code_of([&] { decode_frame(frame); }), RpcErrorCode::kBadMagic);
}

TEST(Wire, WrongVersionRejected) {
  std::vector<std::uint8_t> frame = encode_frame(7, payload_abc());
  frame[4] = static_cast<std::uint8_t>(kProtocolVersion + 1);
  EXPECT_EQ(code_of([&] { decode_frame(frame); }), RpcErrorCode::kBadVersion);
}

TEST(Wire, OversizeLengthPrefixRejected) {
  std::vector<std::uint8_t> frame = encode_frame(7, payload_abc());
  // Declare a payload far beyond kMaxPayloadBytes; the buffer itself
  // stays tiny, so any attempt to honour the prefix would read OOB.
  frame[8] = 0xFF;
  frame[9] = 0xFF;
  frame[10] = 0xFF;
  frame[11] = 0x7F;
  EXPECT_EQ(code_of([&] { decode_frame(frame); }), RpcErrorCode::kOversize);
}

TEST(Wire, LyingLengthPrefixWithinBoundIsTruncated) {
  std::vector<std::uint8_t> frame = encode_frame(7, payload_abc());
  // Declare 16 payload bytes (legal size) while only 3 follow.
  frame[8] = 16;
  EXPECT_EQ(code_of([&] { decode_frame(frame); }), RpcErrorCode::kTruncated);
}

TEST(Wire, TrailingBytesRejected) {
  std::vector<std::uint8_t> frame = encode_frame(7, payload_abc());
  frame.push_back(0x00);
  EXPECT_EQ(code_of([&] { decode_frame(frame); }), RpcErrorCode::kMalformedPayload);
}

TEST(Wire, CorruptedCrcRejected) {
  std::vector<std::uint8_t> frame = encode_frame(7, payload_abc());
  // Flip one payload bit: the stored CRC no longer matches.
  frame[kFrameHeaderBytes] ^= 0x01U;
  EXPECT_EQ(code_of([&] { decode_frame(frame); }), RpcErrorCode::kBadCrc);
  // Flip a CRC byte instead of the payload: same verdict.
  std::vector<std::uint8_t> frame2 = encode_frame(7, payload_abc());
  frame2[12] ^= 0x01U;
  EXPECT_EQ(code_of([&] { decode_frame(frame2); }), RpcErrorCode::kBadCrc);
}

TEST(Wire, EncodeRejectsOversizePayload) {
  const std::vector<std::uint8_t> big(kMaxPayloadBytes + 1, 0x55);
  EXPECT_EQ(code_of([&] { encode_frame(1, big); }), RpcErrorCode::kOversize);
}

TEST(Wire, ReaderScalarsAreLittleEndianAndBounded) {
  WireWriter w;
  w.u8(0x12);
  w.u16(0x3456);
  w.u32(0x789ABCDEU);
  w.u64(0x0123456789ABCDEFULL);
  w.f64(-1234.5);
  w.str("hi");
  const std::vector<std::uint8_t>& bytes = w.bytes();
  // u16 0x3456 serializes low byte first.
  EXPECT_EQ(bytes[1], 0x56);
  EXPECT_EQ(bytes[2], 0x34);
  WireReader r(bytes);
  EXPECT_EQ(r.u8(), 0x12);
  EXPECT_EQ(r.u16(), 0x3456);
  EXPECT_EQ(r.u32(), 0x789ABCDEU);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_DOUBLE_EQ(r.f64(), -1234.5);
  EXPECT_EQ(r.str(), "hi");
  EXPECT_NO_THROW(r.expect_done());
  // Reading past the end is typed, not UB.
  EXPECT_EQ(code_of([&] { r.u8(); }), RpcErrorCode::kMalformedPayload);
}

TEST(Wire, StringWithLyingLengthPrefixRejected) {
  WireWriter w;
  w.u32(1000);  // claims 1000 bytes follow
  w.u8('x');    // only 1 does
  WireReader r(w.bytes());
  EXPECT_EQ(code_of([&] { r.str(); }), RpcErrorCode::kMalformedPayload);
}

core::MigrationScenario sample_scenario() {
  core::MigrationScenario sc;
  sc.type = migration::MigrationType::kLive;
  sc.vm_mem_bytes = 1.5e9;
  sc.vm_cpu_vcpus = 2.0;
  sc.vm_dirty_pages_per_s = 4000.0;
  sc.vm_working_set_pages = 120000.0;
  sc.source_cpu_load = 3.0;
  sc.source_cpu_capacity = 8.0;
  sc.target_cpu_load = 1.0;
  sc.target_cpu_capacity = 8.0;
  sc.link_payload_rate = 1.1e8;
  sc.migration.compression_ratio = 0.8;
  sc.bandwidth.min_efficiency = 0.2;
  return sc;
}

TEST(Messages, PredictRequestRoundTrip) {
  const PredictRequest msg{sample_scenario()};
  const std::vector<std::uint8_t> frame = encode_predict_request(msg);
  const PredictRequest back = decode_predict_request(decode_frame(frame));
  EXPECT_EQ(serve::scenario_fields(back.scenario), serve::scenario_fields(msg.scenario));
}

TEST(Messages, PredictRequestWithBogusTypeFieldRejected) {
  PredictRequest msg{sample_scenario()};
  std::array<double, serve::kScenarioFieldCount> fields =
      serve::scenario_fields(msg.scenario);
  fields[0] = 17.0;  // not a MigrationType
  WireWriter w;
  for (const double f : fields) w.f64(f);
  const auto frame = w.frame(static_cast<std::uint16_t>(MsgType::kPredictRequest));
  EXPECT_EQ(code_of([&] { decode_predict_request(decode_frame(frame)); }),
            RpcErrorCode::kMalformedPayload);
}

TEST(Messages, PredictResponseRoundTrip) {
  PredictResponse msg;
  msg.forecast.times = {0.0, 1.5, 20.5, 21.0};
  msg.forecast.bandwidth = 9.9e7;
  msg.forecast.total_bytes = 2.2e9;
  msg.forecast.precopy_rounds = 6;
  msg.forecast.downtime = 0.21;
  msg.forecast.degenerated_to_nonlive = true;
  msg.forecast.source_energy = 3111.0;
  msg.forecast.target_energy = 2999.5;
  for (int i = 0; i < 3; ++i) {
    msg.forecast.source_phase_energy[i] = 100.0 + i;
    msg.forecast.target_phase_energy[i] = 200.0 + i;
  }
  msg.epoch = 42;
  msg.coeff_version = 17;
  const PredictResponse back =
      decode_predict_response(decode_frame(encode_predict_response(msg)));
  EXPECT_DOUBLE_EQ(back.forecast.times.me, 21.0);
  EXPECT_DOUBLE_EQ(back.forecast.bandwidth, 9.9e7);
  EXPECT_EQ(back.forecast.precopy_rounds, 6);
  EXPECT_TRUE(back.forecast.degenerated_to_nonlive);
  EXPECT_DOUBLE_EQ(back.forecast.source_phase_energy[2], 102.0);
  EXPECT_DOUBLE_EQ(back.forecast.target_phase_energy[0], 200.0);
  EXPECT_EQ(back.epoch, 42U);
  EXPECT_EQ(back.coeff_version, 17U);
}

TEST(Messages, WrongFrameTypeIsTyped) {
  const std::vector<std::uint8_t> frame = encode_epoch_commit(EpochCommit{3});
  EXPECT_EQ(code_of([&] { decode_predict_response(decode_frame(frame)); }),
            RpcErrorCode::kBadType);
}

TEST(Messages, EpochPrepareRoundTrip) {
  EpochPrepare msg;
  msg.epoch = 9;
  core::Wavm3Coefficients table;
  table.source.transfer = {1.0, 2.0, 3.0, 4.0, 5.0};
  table.target.activation = {0.5, 0.25, 0.0, 0.0, 99.0};
  msg.tables.emplace_back(migration::MigrationType::kLive, table);
  msg.tables.emplace_back(migration::MigrationType::kNonLive, core::Wavm3Coefficients{});
  const EpochPrepare back = decode_epoch_prepare(decode_frame(encode_epoch_prepare(msg)));
  ASSERT_EQ(back.tables.size(), 2U);
  EXPECT_EQ(back.epoch, 9U);
  EXPECT_EQ(back.tables[0].first, migration::MigrationType::kLive);
  EXPECT_DOUBLE_EQ(back.tables[0].second.source.transfer.gamma, 3.0);
  EXPECT_DOUBLE_EQ(back.tables[0].second.target.activation.c, 99.0);
}

TEST(Messages, EpochPrepareWithNoTablesRejected) {
  WireWriter w;
  w.u64(4);
  w.u8(0);
  const auto frame = w.frame(static_cast<std::uint16_t>(MsgType::kEpochPrepare));
  EXPECT_EQ(code_of([&] { decode_epoch_prepare(decode_frame(frame)); }),
            RpcErrorCode::kMalformedPayload);
}

TEST(Messages, EpochPrepareWithBogusTypeIdRejected) {
  WireWriter w;
  w.u64(4);
  w.u8(1);
  w.u8(250);  // not a MigrationType
  for (int i = 0; i < 30; ++i) w.f64(0.0);
  const auto frame = w.frame(static_cast<std::uint16_t>(MsgType::kEpochPrepare));
  EXPECT_EQ(code_of([&] { decode_epoch_prepare(decode_frame(frame)); }),
            RpcErrorCode::kMalformedPayload);
}

TEST(Messages, EpochPrepareTruncatedTableRejected) {
  WireWriter w;
  w.u64(4);
  w.u8(2);  // claims two tables, carries half of one
  w.u8(0);
  for (int i = 0; i < 12; ++i) w.f64(1.0);
  const auto frame = w.frame(static_cast<std::uint16_t>(MsgType::kEpochPrepare));
  EXPECT_EQ(code_of([&] { decode_epoch_prepare(decode_frame(frame)); }),
            RpcErrorCode::kMalformedPayload);
}

TEST(Messages, AckAndStatusRoundTrip) {
  const EpochAck ack =
      decode_epoch_ack(decode_frame(encode_epoch_ack(EpochAck{5, false, "stale"})));
  EXPECT_EQ(ack.epoch, 5U);
  EXPECT_FALSE(ack.accepted);
  EXPECT_EQ(ack.reason, "stale");
  StatusResponse status;
  status.committed_epoch = 3;
  status.staged_epoch = 4;
  status.coeff_version = 11;
  status.requests_served = 1234;
  const StatusResponse back =
      decode_status_response(decode_frame(encode_status_response(status)));
  EXPECT_EQ(back.committed_epoch, 3U);
  EXPECT_EQ(back.staged_epoch, 4U);
  EXPECT_EQ(back.coeff_version, 11U);
  EXPECT_EQ(back.requests_served, 1234U);
}

TEST(ScenarioFields, RoundTripsBitExactly) {
  const core::MigrationScenario sc = sample_scenario();
  const auto fields = serve::scenario_fields(sc);
  const core::MigrationScenario back = serve::scenario_from_fields(fields);
  EXPECT_EQ(serve::scenario_fields(back), fields);
}

TEST(Ring, ReplicasAreDistinctAndStable) {
  HashRing ring;
  for (int n = 0; n < 4; ++n) ring.add_node(n);
  const SliceKey key{migration::MigrationType::kLive, models::HostRole::kSource};
  const std::vector<int> group = ring.replicas(key, 2);
  ASSERT_EQ(group.size(), 2U);
  EXPECT_NE(group[0], group[1]);
  // Stable: same ring, same key, same group.
  EXPECT_EQ(ring.replicas(key, 2), group);
  // Asking for more replicas than nodes returns every node once.
  EXPECT_EQ(ring.replicas(key, 9).size(), 4U);
}

TEST(Ring, RemovalOnlyMovesAffectedSlices) {
  HashRing a;
  HashRing b;
  for (int n = 0; n < 4; ++n) {
    a.add_node(n);
    b.add_node(n);
  }
  b.remove_node(3);
  // Slices whose primary was not node 3 keep their primary.
  for (const migration::MigrationType type :
       {migration::MigrationType::kNonLive, migration::MigrationType::kLive,
        migration::MigrationType::kPostCopy}) {
    for (const models::HostRole role : {models::HostRole::kSource, models::HostRole::kTarget}) {
      const SliceKey key{type, role};
      const int before = a.replicas(key, 1).at(0);
      const int after = b.replicas(key, 1).at(0);
      if (before != 3) EXPECT_EQ(after, before);
    }
  }
}

TEST(Ring, EmptyRingReturnsNoReplicas) {
  HashRing ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_TRUE(ring.replicas({}, 2).empty());
}

}  // namespace
}  // namespace wavm3::rpc
