// Tests for the WAVM3 core: per-phase fitting, prediction accuracy,
// LM/OLS equivalence, ablations, bias transfer, and the closed-form
// migration planner.
#include <gtest/gtest.h>

#include <cmath>

#include "core/calibration.hpp"
#include "core/phase_eval.hpp"
#include "core/planner.hpp"
#include "core/wavm3_model.hpp"
#include "models/evaluation.hpp"
#include "models/huang.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace wavm3::core {
namespace {

using migration::MigrationPhase;
using migration::MigrationType;
using models::HostRole;

/// Train/test split of the shared fast campaign, computed once.
struct SplitFixture {
  models::Dataset train;
  models::Dataset test;
  SplitFixture() {
    const auto& campaign = wavm3::testing::fast_campaign_m();
    auto [tr, te] = campaign.dataset.split_stratified(0.34, 1234);
    train = std::move(tr);
    test = std::move(te);
  }
};

const SplitFixture& split_m() {
  static const SplitFixture f;
  return f;
}

const Wavm3Model& fitted_wavm3() {
  static const Wavm3Model model = [] {
    Wavm3Model m;
    m.fit(split_m().train);
    return m;
  }();
  return model;
}

TEST(Wavm3, FitsBothTypesAndRoles) {
  const Wavm3Model& m = fitted_wavm3();
  EXPECT_TRUE(m.is_fitted());
  for (const auto type : {MigrationType::kNonLive, MigrationType::kLive}) {
    const Wavm3Coefficients& c = m.coefficients(type);
    // Bias embeds the idle draw of the m-class machines.
    EXPECT_GT(c.source.transfer.c, 300.0);
    EXPECT_LT(c.source.transfer.c, 600.0);
    EXPECT_GT(c.source.transfer.alpha, 5.0);  // ~watts per busy vCPU
    EXPECT_LT(c.source.transfer.alpha, 25.0);
  }
}

TEST(Wavm3, CoefficientsNonnegativeByDefault) {
  const Wavm3Model& m = fitted_wavm3();
  for (const auto type : {MigrationType::kNonLive, MigrationType::kLive}) {
    const Wavm3Coefficients& table = m.coefficients(type);
    for (const RoleCoefficients* rc : {&table.source, &table.target}) {
      for (const PhaseCoefficients* pc :
           {&rc->initiation, &rc->transfer, &rc->activation}) {
        EXPECT_GE(pc->alpha, 0.0);
        EXPECT_GE(pc->beta, 0.0);
        EXPECT_GE(pc->gamma, 0.0);
        EXPECT_GE(pc->delta, 0.0);
      }
    }
  }
}

TEST(Wavm3, TargetTransferIgnoresDrAndVmCpu) {
  // SIV-C.2: DR and CPU(v) are zero on the target during transfer, so
  // their fitted coefficients must be exactly zero (pruned columns).
  const Wavm3Coefficients& c = fitted_wavm3().coefficients(MigrationType::kLive);
  EXPECT_DOUBLE_EQ(c.target.transfer.gamma, 0.0);
  EXPECT_DOUBLE_EQ(c.target.transfer.delta, 0.0);
}

TEST(Wavm3, LiveSourceTransferUsesDirtyRatio) {
  const Wavm3Coefficients& c = fitted_wavm3().coefficients(MigrationType::kLive);
  // The tracking overhead makes gamma clearly positive on the source.
  EXPECT_GT(c.source.transfer.gamma, 1.0);
}

TEST(Wavm3, PredictsHeldOutEnergiesWell) {
  const Wavm3Model& m = fitted_wavm3();
  const auto rows = models::evaluate_model(m, split_m().test);
  for (const auto& r : rows) {
    EXPECT_LT(r.metrics.nrmse, 0.12) << "slice " << r.model << "/" << to_string(r.role);
    EXPECT_GT(r.metrics.r2, 0.8);
  }
}

TEST(Wavm3, BeatsOrMatchesHuangEverywhereAndWinsOnLiveSource) {
  models::HuangModel huang;
  huang.fit(split_m().train);
  const auto w_rows = models::evaluate_model(fitted_wavm3(), split_m().test);
  const auto h_rows = models::evaluate_model(huang, split_m().test);
  for (const auto type : {MigrationType::kNonLive, MigrationType::kLive}) {
    for (const auto role : {HostRole::kSource, HostRole::kTarget}) {
      const double w = models::find_row(w_rows, "WAVM3", type, role).metrics.nrmse;
      const double h = models::find_row(h_rows, "HUANG", type, role).metrics.nrmse;
      // On this reduced campaign WAVM3 fits 12 parameters per slice vs
      // HUANG's 2, so allow a little small-sample slack on ties.
      EXPECT_LE(w, h * 1.4 + 0.01) << "WAVM3 must not clearly lose any slice";
    }
  }
  const double w_live_src =
      models::find_row(w_rows, "WAVM3", MigrationType::kLive, HostRole::kSource).metrics.nrmse;
  const double h_live_src =
      models::find_row(h_rows, "HUANG", MigrationType::kLive, HostRole::kSource).metrics.nrmse;
  EXPECT_LT(w_live_src, h_live_src);  // the paper's headline live improvement
}

TEST(Wavm3, PhaseEnergiesSumNearTotal) {
  const Wavm3Model& m = fitted_wavm3();
  const auto& obs = split_m().test.observations.front();
  const double total = m.predict_energy(obs);
  const double parts = m.predict_phase_energy(obs, MigrationPhase::kInitiation) +
                       m.predict_phase_energy(obs, MigrationPhase::kTransfer) +
                       m.predict_phase_energy(obs, MigrationPhase::kActivation);
  // Boundary sample intervals are the only difference.
  EXPECT_NEAR(parts, total, 3.0 * 0.5 * 900.0);
  EXPECT_GT(parts, 0.0);
}

TEST(Wavm3, PhaseLevelEvaluationSane) {
  const auto rows = evaluate_phase_energies(fitted_wavm3(), split_m().test);
  ASSERT_GE(rows.size(), 8u);  // most (type, role, phase) slices present
  bool transfer_seen = false;
  for (const auto& r : rows) {
    EXPECT_GE(r.n_migrations, 3u);
    EXPECT_GT(r.metrics.nrmse, 0.0);
    EXPECT_LT(r.metrics.nrmse, 0.35) << migration::to_string(r.phase);
    if (r.phase == MigrationPhase::kTransfer) {
      transfer_seen = true;
      // The transfer phase dominates the energy and is predicted best
      // in relative terms.
      EXPECT_LT(r.metrics.nrmse, 0.12);
    }
  }
  EXPECT_TRUE(transfer_seen);
}

TEST(Wavm3, LevenbergMarquardtMatchesOls) {
  Wavm3Model::Options lm_opts;
  lm_opts.use_levenberg_marquardt = true;
  lm_opts.nonnegative_coefficients = false;  // compare against unconstrained OLS
  Wavm3Model lm_model(lm_opts);
  lm_model.fit(split_m().train);

  Wavm3Model::Options ols_opts;
  ols_opts.nonnegative_coefficients = false;
  Wavm3Model ols_model(ols_opts);
  ols_model.fit(split_m().train);

  const auto& a = lm_model.coefficients(MigrationType::kLive).source.transfer;
  const auto& b = ols_model.coefficients(MigrationType::kLive).source.transfer;
  EXPECT_NEAR(a.alpha, b.alpha, 0.05 * (std::abs(b.alpha) + 1.0));
  EXPECT_NEAR(a.c, b.c, 0.02 * (std::abs(b.c) + 1.0));
}

TEST(Wavm3, AblationDroppingDirtyRatioHurtsLiveSource) {
  Wavm3Model::Options opts;
  opts.ablation.drop_dirty_ratio = true;
  Wavm3Model ablated(opts);
  ablated.fit(split_m().train);

  const auto full_rows = models::evaluate_model(fitted_wavm3(), split_m().test);
  const auto abl_rows = models::evaluate_model(ablated, split_m().test);
  const double full =
      models::find_row(full_rows, "WAVM3", MigrationType::kLive, HostRole::kSource)
          .metrics.rmse;
  const double abl =
      models::find_row(abl_rows, "WAVM3", MigrationType::kLive, HostRole::kSource)
          .metrics.rmse;
  EXPECT_GE(abl, full * 0.999);  // never better; usually clearly worse
  const auto& c = ablated.coefficients(MigrationType::kLive);
  EXPECT_DOUBLE_EQ(c.source.transfer.gamma, 0.0);
}

TEST(Wavm3, BiasCorrectionShiftsEveryPhaseConstant) {
  Wavm3Model m;
  m.fit(split_m().train);
  const auto before = m.coefficients(MigrationType::kLive);
  m.apply_idle_bias_correction(265.0);
  const auto after = m.coefficients(MigrationType::kLive);
  EXPECT_NEAR(after.source.initiation.c, before.source.initiation.c - 265.0, 1e-9);
  EXPECT_NEAR(after.source.transfer.c, before.source.transfer.c - 265.0, 1e-9);
  EXPECT_NEAR(after.target.activation.c, before.target.activation.c - 265.0, 1e-9);
  // Slopes untouched.
  EXPECT_DOUBLE_EQ(after.source.transfer.alpha, before.source.transfer.alpha);
}

TEST(Calibration, CrossTestbedTransferReducesError) {
  // The paper's SVI-F experiment: an m-trained model overestimates on
  // the o machines by the idle-power delta; the C2 correction fixes it.
  const auto& campaign_o = wavm3::testing::fast_campaign_o();

  Wavm3Model raw;
  raw.fit(split_m().train);
  Wavm3Model corrected;
  corrected.fit(split_m().train);
  transfer_bias(corrected, split_m().train, campaign_o.dataset);

  const auto raw_rows = models::evaluate_model(raw, campaign_o.dataset);
  const auto cor_rows = models::evaluate_model(corrected, campaign_o.dataset);
  for (const auto type : {MigrationType::kNonLive, MigrationType::kLive}) {
    for (const auto role : {HostRole::kSource, HostRole::kTarget}) {
      const double raw_nrmse = models::find_row(raw_rows, "WAVM3", type, role).metrics.nrmse;
      const double cor_nrmse = models::find_row(cor_rows, "WAVM3", type, role).metrics.nrmse;
      EXPECT_LT(cor_nrmse, raw_nrmse * 0.5)
          << "bias transfer must at least halve the cross-testbed error";
      EXPECT_LT(cor_nrmse, 0.30);
    }
  }
}

TEST(Calibration, IdleDeltaMatchesTestbeds) {
  const double delta = idle_bias_delta(wavm3::testing::fast_campaign_m().dataset,
                                       wavm3::testing::fast_campaign_o().dataset);
  // m-class idles ~433 W, o-class ~167 W.
  EXPECT_NEAR(delta, 265.0, 15.0);
}

// ---------- Planner ----------

MigrationScenario base_scenario() {
  MigrationScenario sc;
  sc.type = MigrationType::kLive;
  sc.vm_mem_bytes = util::gib(4);
  sc.vm_cpu_vcpus = 4.0;
  sc.vm_dirty_pages_per_s = 64.0;
  sc.vm_working_set_pages = 4096.0;
  sc.source_cpu_capacity = 32.0;
  sc.target_cpu_capacity = 32.0;
  sc.link_payload_rate = 117.5e6;
  return sc;
}

TEST(Planner, TimingsWellFormed) {
  const MigrationForecast fc = forecast_timings(base_scenario());
  EXPECT_TRUE(fc.times.well_formed());
  EXPECT_GT(fc.times.transfer_duration(), 20.0);
  EXPECT_LT(fc.times.transfer_duration(), 60.0);
  EXPECT_GE(fc.total_bytes, util::gib(4));
  EXPECT_FALSE(fc.degenerated_to_nonlive);
}

TEST(Planner, HighDirtyRateDegenerates) {
  MigrationScenario sc = base_scenario();
  sc.vm_dirty_pages_per_s = 300000.0;
  sc.vm_working_set_pages = 0.95 * util::gib(4) / 4096.0;
  const MigrationForecast fc = forecast_timings(sc);
  EXPECT_TRUE(fc.degenerated_to_nonlive);
  EXPECT_GT(fc.downtime, 5.0);
  EXPECT_GT(fc.total_bytes, 2.0 * util::gib(4));
}

TEST(Planner, LoadedSourceReducesBandwidth) {
  const MigrationForecast idle = forecast_timings(base_scenario());
  MigrationScenario sc = base_scenario();
  sc.source_cpu_load = 32.0;
  const MigrationForecast loaded = forecast_timings(sc);
  EXPECT_LT(loaded.bandwidth, idle.bandwidth);
  EXPECT_GT(loaded.times.transfer_duration(), idle.times.transfer_duration());
}

TEST(Planner, NonLiveDowntimeSpansMigration) {
  MigrationScenario sc = base_scenario();
  sc.type = MigrationType::kNonLive;
  const MigrationForecast fc = forecast_timings(sc);
  EXPECT_GT(fc.downtime, fc.times.transfer_duration());
  EXPECT_EQ(fc.precopy_rounds, 0);
}

TEST(Planner, ForecastEnergiesPositiveAndAdditive) {
  const MigrationPlanner planner(fitted_wavm3());
  const MigrationForecast fc = planner.forecast(base_scenario());
  EXPECT_GT(fc.source_energy, 0.0);
  EXPECT_GT(fc.target_energy, 0.0);
  EXPECT_NEAR(fc.total_energy(), fc.source_energy + fc.target_energy, 1e-9);
  double sum = 0.0;
  for (int i = 0; i < 3; ++i) sum += fc.source_phase_energy[i];
  EXPECT_NEAR(sum, fc.source_energy, 1e-9);
}

TEST(Planner, ForecastTracksEngineScaleOnIdleHosts) {
  // The planner's energy should land in the ballpark of the measured
  // idle-host live migration (~20-25 kJ per host on the m testbed).
  const MigrationPlanner planner(fitted_wavm3());
  const MigrationForecast fc = planner.forecast(base_scenario());
  EXPECT_GT(fc.source_energy, 10e3);
  EXPECT_LT(fc.source_energy, 45e3);
}

TEST(Planner, LoadedTargetCostsMore) {
  const MigrationPlanner planner(fitted_wavm3());
  const MigrationForecast idle = planner.forecast(base_scenario());
  MigrationScenario sc = base_scenario();
  sc.target_cpu_load = 28.0;
  const MigrationForecast loaded = planner.forecast(sc);
  EXPECT_GT(loaded.target_energy, idle.target_energy);
}

TEST(Planner, RejectsInvalidScenarios) {
  MigrationScenario sc = base_scenario();
  sc.vm_mem_bytes = 0.0;
  EXPECT_THROW(forecast_timings(sc), util::ContractError);
}

}  // namespace
}  // namespace wavm3::core
