// Steady-state allocation pin for the serving hot path: once the
// result cache is warm and the per-thread batch workspace has grown to
// the request shape, the span-based predict_batch_results() core and
// the predict() cache-hit path must perform ZERO heap allocations.
// Enforced with a counting global operator new in its own test binary
// (tests/CMakeLists.txt) so the counter cannot interfere with the
// other suites.
//
// Under ASan/TSan the sanitizer runtime intercepts the allocator and
// this counter never fires — the suite skips itself there (the CI
// sanitizer jobs run the functional suites instead).
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <span>
#include <vector>

#include "core/planner.hpp"
#include "core/wavm3_model.hpp"
#include "serve/service.hpp"
#include "util/units.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(align);
  void* p = nullptr;
  if (posix_memalign(&p, a < sizeof(void*) ? sizeof(void*) : a, size) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace wavm3::serve {
namespace {

using migration::MigrationType;

bool sanitizers_active() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

/// Same synthetic fitted model as serve_test.cpp's make_model().
core::Wavm3Model make_model() {
  core::Wavm3Model m;
  for (const MigrationType type : {MigrationType::kNonLive, MigrationType::kLive}) {
    const double t = type == MigrationType::kLive ? 1.0 : 0.7;
    core::Wavm3Coefficients table;
    table.source.initiation = {2.1 * t, 1.3, 0.0, 0.0, 210.0};
    table.source.transfer = {2.4 * t, 1.1e-7, 55.0, 1.9, 205.0};
    table.source.activation = {2.2 * t, 1.2, 0.0, 0.0, 208.0};
    table.target.initiation = {1.9 * t, 0.8, 0.0, 0.0, 200.0};
    table.target.transfer = {2.0 * t, 0.9e-7, 12.0, 0.7, 198.0};
    table.target.activation = {2.1 * t, 1.0, 0.0, 0.0, 202.0};
    m.set_coefficients(type, table);
  }
  return m;
}

core::MigrationScenario make_scenario(int i) {
  core::MigrationScenario sc;
  sc.type = i % 3 == 0 ? MigrationType::kNonLive : MigrationType::kLive;
  sc.vm_mem_bytes = util::gib(1.0 + i % 8);
  sc.vm_cpu_vcpus = 1.0 + i % 4;
  const double mem_pages = sc.vm_mem_bytes / util::kPageSize;
  sc.vm_working_set_pages = mem_pages * 0.25;
  sc.vm_dirty_pages_per_s = sc.vm_working_set_pages * (0.05 + 0.09 * (i % 10));
  sc.source_cpu_load = 2.0 + i % 20;
  sc.target_cpu_load = 1.0 + i % 15;
  return sc;
}

TEST(ServeAllocation, WarmBatchPathAllocatesNothing) {
  if (sanitizers_active()) GTEST_SKIP() << "allocator intercepted by a sanitizer";
  ServiceConfig config;
  config.threads = 2;
  config.cache_capacity = 4096;
  PredictionService service(make_model(), config);

  constexpr int kBatch = 64;
  std::vector<core::MigrationScenario> scenarios;
  scenarios.reserve(kBatch);
  for (int i = 0; i < kBatch; ++i) scenarios.push_back(make_scenario(i));
  std::vector<PredictionService::BatchItem> results(scenarios.size());
  const std::span<const core::MigrationScenario> in(scenarios);
  const std::span<PredictionService::BatchItem> out(results);

  // Warmup: the first call computes and caches every miss and grows
  // the per-thread workspace; the second confirms an all-hit pass.
  service.predict_batch_results(in, out);
  service.predict_batch_results(in, out);
  for (const auto& item : results) ASSERT_TRUE(item.ok());

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int round = 0; round < 10; ++round) {
    service.predict_batch_results(in, out);
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "steady-state predict_batch_results must not allocate";
  for (const auto& item : results) EXPECT_TRUE(item.ok());
}

TEST(ServeAllocation, WarmPredictHitAllocatesNothing) {
  if (sanitizers_active()) GTEST_SKIP() << "allocator intercepted by a sanitizer";
  ServiceConfig config;
  config.threads = 1;
  config.cache_capacity = 64;
  PredictionService service(make_model(), config);

  const core::MigrationScenario sc = make_scenario(1);
  core::MigrationForecast warm = service.predict(sc);  // miss: compute + fill

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  core::MigrationForecast hit = service.predict(sc);
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "a cache-hit predict() must not allocate";
  EXPECT_EQ(hit.source_energy, warm.source_energy);
  EXPECT_EQ(hit.target_energy, warm.target_energy);
}

}  // namespace
}  // namespace wavm3::serve
