// Unit tests for fault injection: FaultPlan schedule semantics and
// seeded-replay determinism, fault-shaped bandwidth, and the engine's
// failed-migration semantics (rollback, VM loss, wasted-energy
// accounting, phase-bound connection losses).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "cloud/datacenter.hpp"
#include "cloud/instances.hpp"
#include "core/planner.hpp"
#include "dcsim/simulation.hpp"
#include "faults/fault_plan.hpp"
#include "migration/engine.hpp"
#include "net/bandwidth_model.hpp"
#include "sim/simulator.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace wavm3::faults {
namespace {

using migration::MigrationConfig;
using migration::MigrationOutcome;
using migration::MigrationPhase;
using migration::MigrationRecord;
using migration::MigrationType;

TEST(FaultPlan, EmptyPlanIsTransparent) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_FALSE(plan.has_link_faults());
  EXPECT_DOUBLE_EQ(plan.link_factor(0.0), 1.0);
  EXPECT_DOUBLE_EQ(plan.average_link_factor(0.0, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(plan.host_overload("src", 10.0), 0.0);
  EXPECT_FALSE(plan.next_loss_at_or_after(0.0).has_value());
  EXPECT_FALSE(plan.loss_offset_in(FaultPhase::kTransfer).has_value());
}

TEST(FaultPlan, DegradationWindowAndAverage) {
  FaultPlan plan;
  plan.add(LinkDegradation{10.0, 20.0, 0.5});
  EXPECT_DOUBLE_EQ(plan.link_factor(5.0), 1.0);
  EXPECT_DOUBLE_EQ(plan.link_factor(15.0), 0.5);
  EXPECT_DOUBLE_EQ(plan.link_factor(20.0), 1.0);  // end is exclusive
  // Exact piecewise mean over [0, 20]: half the window at factor 0.5.
  EXPECT_NEAR(plan.average_link_factor(0.0, 20.0), 0.75, 1e-12);
  // Overlapping degradations multiply.
  plan.add(LinkDegradation{12.0, 30.0, 0.5});
  EXPECT_DOUBLE_EQ(plan.link_factor(15.0), 0.25);
  EXPECT_DOUBLE_EQ(plan.link_factor(25.0), 0.5);
}

TEST(FaultPlan, StallZeroesAndFlapAlternates) {
  FaultPlan plan;
  plan.add(TransferStall{100.0, 2.0});
  EXPECT_DOUBLE_EQ(plan.link_factor(101.0), 0.0);
  EXPECT_DOUBLE_EQ(plan.link_factor(102.5), 1.0);

  FaultPlan flappy;
  LinkFlap f;
  f.start = 0.0;
  f.end = 100.0;
  f.up_duration = 8.0;
  f.down_duration = 2.0;
  f.down_factor = 0.05;
  flappy.add(f);
  EXPECT_DOUBLE_EQ(flappy.link_factor(4.0), 1.0);   // in the up part
  EXPECT_DOUBLE_EQ(flappy.link_factor(9.0), 0.05);  // in the down part
  EXPECT_DOUBLE_EQ(flappy.link_factor(14.0), 1.0);  // next period, up again
  // Mean of one 10 s period: (8*1 + 2*0.05)/10.
  EXPECT_NEAR(flappy.average_link_factor(0.0, 100.0), 0.81, 1e-9);
}

TEST(FaultPlan, DegenerateFlapsAreDefinedNotAmbiguous) {
  // Zero-length window: a no-op, accepted and dropped.
  FaultPlan zero_window;
  zero_window.add(LinkFlap{50.0, 50.0, 8.0, 2.0, 0.05});
  EXPECT_TRUE(zero_window.empty());
  EXPECT_DOUBLE_EQ(zero_window.link_factor(50.0), 1.0);

  // Never-down flap (down_duration == 0): also a no-op.
  FaultPlan never_down;
  never_down.add(LinkFlap{0.0, 100.0, 8.0, 0.0, 0.05});
  EXPECT_TRUE(never_down.empty());
  EXPECT_DOUBLE_EQ(never_down.link_factor(4.0), 1.0);

  // Always-down flap (up_duration == 0): down_factor across the whole
  // window, exactly like a degradation.
  FaultPlan always_down;
  always_down.add(LinkFlap{10.0, 110.0, 0.0, 5.0, 0.25});
  EXPECT_DOUBLE_EQ(always_down.link_factor(5.0), 1.0);
  EXPECT_DOUBLE_EQ(always_down.link_factor(10.0), 0.25);
  EXPECT_DOUBLE_EQ(always_down.link_factor(109.9), 0.25);
  EXPECT_DOUBLE_EQ(always_down.link_factor(110.0), 1.0);
  EXPECT_NEAR(always_down.average_link_factor(10.0, 110.0), 0.25, 1e-12);

  // A zero period has no phase to evaluate against: malformed.
  FaultPlan bad;
  EXPECT_THROW(bad.add(LinkFlap{0.0, 100.0, 0.0, 0.0, 0.5}), util::ContractError);
  EXPECT_THROW(bad.add(LinkFlap{100.0, 0.0, 8.0, 2.0, 0.5}), util::ContractError);
}

TEST(FaultPlan, OverlappingFaultsComposeOrderIndependently) {
  // Two overlapping degradations: the factor over the intersection is
  // the product, whichever order they were added in — no last-writer
  // ambiguity.
  FaultPlan ab;
  ab.add(LinkDegradation{0.0, 100.0, 0.5});
  ab.add(LinkDegradation{50.0, 150.0, 0.5});
  FaultPlan ba;
  ba.add(LinkDegradation{50.0, 150.0, 0.5});
  ba.add(LinkDegradation{0.0, 100.0, 0.5});
  for (const double t : {25.0, 75.0, 125.0, 149.0}) {
    EXPECT_DOUBLE_EQ(ab.link_factor(t), ba.link_factor(t)) << "t=" << t;
  }
  EXPECT_DOUBLE_EQ(ab.link_factor(75.0), 0.25);
  EXPECT_DOUBLE_EQ(ab.link_factor(25.0), 0.5);
  EXPECT_DOUBLE_EQ(ab.link_factor(125.0), 0.5);
  // Exact piecewise mean over [0, 150): thirds at 0.5, 0.25, 0.5.
  EXPECT_NEAR(ab.average_link_factor(0.0, 150.0), (0.5 + 0.25 + 0.5) / 3.0, 1e-12);
  EXPECT_NEAR(ab.average_link_factor(0.0, 150.0), ba.average_link_factor(0.0, 150.0),
              1e-12);

  // A flap's down phase multiplies into an overlapping degradation the
  // same way; cross-check the exact integral against dense sampling.
  FaultPlan mixed;
  mixed.add(LinkDegradation{0.0, 100.0, 0.5});
  mixed.add(LinkFlap{0.0, 100.0, 6.0, 4.0, 0.2});
  EXPECT_DOUBLE_EQ(mixed.link_factor(3.0), 0.5);        // flap up
  EXPECT_DOUBLE_EQ(mixed.link_factor(8.0), 0.5 * 0.2);  // flap down
  double sampled = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sampled += mixed.link_factor((static_cast<double>(i) + 0.5) * 100.0 / n);
  }
  sampled /= n;
  EXPECT_NEAR(mixed.average_link_factor(0.0, 100.0), sampled, 1e-6);
}

TEST(FaultPlan, HostOverloadIsPerHostAndSummed) {
  FaultPlan plan;
  plan.add(HostOverload{"src", 0.0, 50.0, 2.0});
  plan.add(HostOverload{"src", 40.0, 60.0, 3.0});
  plan.add(HostOverload{"tgt", 0.0, 50.0, 1.0});
  EXPECT_DOUBLE_EQ(plan.host_overload("src", 10.0), 2.0);
  EXPECT_DOUBLE_EQ(plan.host_overload("src", 45.0), 5.0);  // spikes stack
  EXPECT_DOUBLE_EQ(plan.host_overload("src", 55.0), 3.0);
  EXPECT_DOUBLE_EQ(plan.host_overload("tgt", 10.0), 1.0);
  EXPECT_DOUBLE_EQ(plan.host_overload("elsewhere", 10.0), 0.0);
}

TEST(FaultPlan, ConnectionLossLookup) {
  FaultPlan plan;
  plan.add(ConnectionLoss{FaultPhase::kAny, 120.0});
  plan.add(ConnectionLoss{FaultPhase::kAny, 40.0});
  plan.add(ConnectionLoss{FaultPhase::kTransfer, 3.0});
  ASSERT_TRUE(plan.next_loss_at_or_after(0.0).has_value());
  EXPECT_DOUBLE_EQ(*plan.next_loss_at_or_after(0.0), 40.0);
  EXPECT_DOUBLE_EQ(*plan.next_loss_at_or_after(41.0), 120.0);
  EXPECT_FALSE(plan.next_loss_at_or_after(121.0).has_value());
  ASSERT_TRUE(plan.loss_offset_in(FaultPhase::kTransfer).has_value());
  EXPECT_DOUBLE_EQ(*plan.loss_offset_in(FaultPhase::kTransfer), 3.0);
  EXPECT_FALSE(plan.loss_offset_in(FaultPhase::kInitiation).has_value());
}

TEST(FaultPlan, RejectsMalformedFaults) {
  FaultPlan plan;
  EXPECT_THROW(plan.add(LinkDegradation{10.0, 5.0, 0.5}), util::ContractError);
  EXPECT_THROW(plan.add(LinkDegradation{0.0, 10.0, 1.5}), util::ContractError);
  EXPECT_THROW(plan.add(TransferStall{0.0, -1.0}), util::ContractError);
  EXPECT_THROW(plan.add(HostOverload{"", 0.0, 10.0, 1.0}), util::ContractError);
  EXPECT_THROW(plan.add(ConnectionLoss{FaultPhase::kAny, -1.0}), util::ContractError);
}

TEST(FaultPlan, SeededReplayIsDeterministic) {
  FaultPlanOptions opts;
  opts.horizon = 1800.0;
  opts.overload_hosts = {"src", "tgt"};
  opts.connection_loss_probability = 1.0;
  const FaultPlan a = FaultPlan::random(opts, 42);
  const FaultPlan b = FaultPlan::random(opts, 42);
  const FaultPlan c = FaultPlan::random(opts, 43);
  EXPECT_FALSE(a.empty());
  // The same seed must reproduce the same schedule exactly...
  bool any_difference_from_c = false;
  for (double t = 0.0; t < opts.horizon; t += 7.3) {
    EXPECT_DOUBLE_EQ(a.link_factor(t), b.link_factor(t)) << "at t=" << t;
    EXPECT_DOUBLE_EQ(a.host_overload("src", t), b.host_overload("src", t));
    if (a.link_factor(t) != c.link_factor(t)) any_difference_from_c = true;
  }
  ASSERT_EQ(a.connection_losses().size(), b.connection_losses().size());
  for (std::size_t i = 0; i < a.connection_losses().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.connection_losses()[i].at, b.connection_losses()[i].at);
  }
  // ...and a different seed must produce a different one.
  EXPECT_TRUE(any_difference_from_c);
}

// --- engine integration -------------------------------------------------

cloud::HostSpec host32(const std::string& name) {
  cloud::HostSpec h;
  h.name = name;
  h.vcpus = 32;
  h.ram_bytes = util::gib(32);
  return h;
}

net::LinkSpec gigabit() {
  net::LinkSpec s;
  s.name = "gbe";
  s.wire_rate = util::gbit_per_s(1);
  s.protocol_efficiency = 0.94;
  return s;
}

/// A ready-to-migrate two-host world with an optional fault plan.
struct World {
  sim::Simulator sim;
  cloud::DataCenter dc;
  cloud::Host* source = nullptr;
  cloud::Host* target = nullptr;
  std::unique_ptr<migration::MigrationEngine> engine;

  explicit World(MigrationConfig config = {}) {
    source = &dc.add_host(host32("src"));
    target = &dc.add_host(host32("tgt"));
    dc.network().connect("src", "tgt", gigabit());
    engine = std::make_unique<migration::MigrationEngine>(sim, dc, net::BandwidthModel{},
                                                          config);
  }

  const MigrationRecord& migrate_mem(MigrationType type, double fraction = 0.3) {
    source->add_vm(cloud::make_migrating_mem_vm("mv", fraction));
    engine->migrate("mv", "src", "tgt", type);
    sim.run_to_completion();
    return engine->completed().back();
  }
};

std::shared_ptr<const FaultPlan> plan_with(const ConnectionLoss& loss) {
  auto plan = std::make_shared<FaultPlan>();
  plan->add(loss);
  return plan;
}

TEST(EngineFaults, LiveTransferLossRollsBackOnSource) {
  World w;
  w.engine->set_fault_plan(plan_with(ConnectionLoss{FaultPhase::kTransfer, 2.0}));
  const MigrationRecord& r = w.migrate_mem(MigrationType::kLive);

  EXPECT_EQ(r.outcome, MigrationOutcome::kRolledBack);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.failure_phase, MigrationPhase::kTransfer);
  EXPECT_FALSE(r.failure_reason.empty());
  // Everything pushed so far was for nothing — both hosts' transfer
  // energy is wasted.
  EXPECT_GT(r.total_bytes, 0.0);
  EXPECT_DOUBLE_EQ(r.wasted_bytes, r.total_bytes);
  EXPECT_TRUE(r.times.well_formed());
  EXPECT_DOUBLE_EQ(r.times.te, r.times.me);  // no activation happened
  // The VM survived the failure, running on the source.
  EXPECT_NE(w.source->vm("mv"), nullptr);
  EXPECT_EQ(w.target->vm("mv"), nullptr);
  EXPECT_EQ(w.source->vm("mv")->state(), cloud::VmState::kRunning);
}

TEST(EngineFaults, NonLiveTransferLossResumesSuspendedVm) {
  World w;
  w.engine->set_fault_plan(plan_with(ConnectionLoss{FaultPhase::kTransfer, 5.0}));
  const MigrationRecord& r = w.migrate_mem(MigrationType::kNonLive);

  EXPECT_EQ(r.outcome, MigrationOutcome::kRolledBack);
  EXPECT_EQ(r.failure_phase, MigrationPhase::kTransfer);
  // Non-live: the VM was suspended the whole time; the abort resumes
  // it on the source and the outage counts as downtime.
  EXPECT_GT(r.downtime, 0.0);
  EXPECT_EQ(w.source->vm("mv")->state(), cloud::VmState::kRunning);
}

TEST(EngineFaults, InitiationLossAbortsBeforeAnyTransfer) {
  World w;
  w.engine->set_fault_plan(plan_with(ConnectionLoss{FaultPhase::kInitiation, 0.5}));
  const MigrationRecord& r = w.migrate_mem(MigrationType::kLive);

  EXPECT_EQ(r.outcome, MigrationOutcome::kRolledBack);
  EXPECT_EQ(r.failure_phase, MigrationPhase::kInitiation);
  EXPECT_DOUBLE_EQ(r.total_bytes, 0.0);
  EXPECT_DOUBLE_EQ(r.wasted_bytes, 0.0);
  EXPECT_TRUE(r.times.well_formed());
  EXPECT_EQ(w.source->vm("mv")->state(), cloud::VmState::kRunning);
}

TEST(EngineFaults, PostCopyPullLossLosesTheVm) {
  // A generous offset lands the loss in the page-pull stage (the
  // handoff bundle is small); by then the VM runs on the target only,
  // so the loss costs a restart there instead of a rollback.
  World w;
  w.engine->set_fault_plan(plan_with(ConnectionLoss{FaultPhase::kTransfer, 10.0}));
  const MigrationRecord& r = w.migrate_mem(MigrationType::kPostCopy);

  EXPECT_EQ(r.outcome, MigrationOutcome::kVmLost);
  EXPECT_EQ(r.failure_phase, MigrationPhase::kTransfer);
  EXPECT_DOUBLE_EQ(r.wasted_bytes, r.total_bytes);
  // The VM rebooted on the target after postcopy_restart_duration.
  EXPECT_GE(r.downtime, w.engine->config().postcopy_restart_duration);
  EXPECT_EQ(w.source->vm("mv"), nullptr);
  ASSERT_NE(w.target->vm("mv"), nullptr);
  EXPECT_EQ(w.target->vm("mv")->state(), cloud::VmState::kRunning);
}

TEST(EngineFaults, LossDuringActivationIsIgnored) {
  // First learn when the transfer ends on the fault-free trajectory,
  // then re-run with an absolute loss inside the activation window:
  // the target already holds the full state, so the migration must
  // still complete.
  World probe;
  const MigrationRecord clean = probe.migrate_mem(MigrationType::kLive);
  ASSERT_LT(clean.times.te, clean.times.me);
  const double mid_activation = 0.5 * (clean.times.te + clean.times.me);

  World w;
  w.engine->set_fault_plan(plan_with(ConnectionLoss{FaultPhase::kAny, mid_activation}));
  const MigrationRecord& r = w.migrate_mem(MigrationType::kLive);
  EXPECT_EQ(r.outcome, MigrationOutcome::kCompleted);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(w.target->vm("mv")->state(), cloud::VmState::kRunning);
}

TEST(EngineFaults, CompletedRecordHasCleanFailureFields) {
  World w;
  const MigrationRecord& r = w.migrate_mem(MigrationType::kLive);
  EXPECT_EQ(r.outcome, MigrationOutcome::kCompleted);
  EXPECT_EQ(r.failure_phase, MigrationPhase::kNormal);
  EXPECT_TRUE(r.failure_reason.empty());
  EXPECT_DOUBLE_EQ(r.wasted_bytes, 0.0);
}

TEST(EngineFaults, DegradedLinkSlowsTheTransfer) {
  World baseline;
  const double clean = baseline.migrate_mem(MigrationType::kNonLive).times.transfer_duration();

  World degraded;
  auto plan = std::make_shared<FaultPlan>();
  plan->add(LinkDegradation{0.0, 1e6, 0.25});
  degraded.engine->set_fault_plan(plan);
  const double slow = degraded.migrate_mem(MigrationType::kNonLive).times.transfer_duration();
  // A quarter of the capacity should cost roughly 4x the time (the
  // CPU-coupled model bends this a little, hence the loose bound).
  EXPECT_GT(slow, 2.0 * clean);
}

TEST(EngineFaults, OverloadSpikeSlowsTheTransfer) {
  World baseline;
  const double clean = baseline.migrate_mem(MigrationType::kNonLive).times.transfer_duration();

  World overloaded;
  auto plan = std::make_shared<FaultPlan>();
  plan->add(HostOverload{"src", 0.0, 1e6, 30.0});  // nearly saturate dom-0's host
  overloaded.engine->set_fault_plan(plan);
  const double slow =
      overloaded.migrate_mem(MigrationType::kNonLive).times.transfer_duration();
  EXPECT_GT(slow, clean);
}

TEST(EngineFaults, FaultedRunIsDeterministic) {
  FaultPlanOptions opts;
  opts.horizon = 600.0;
  opts.stalls = 3;
  opts.degradations = 3;
  const auto plan = std::make_shared<FaultPlan>(FaultPlan::random(opts, 7));

  auto run = [&plan] {
    World w;
    w.engine->set_fault_plan(plan);
    return w.migrate_mem(MigrationType::kLive);
  };
  const MigrationRecord a = run();
  const MigrationRecord b = run();
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_DOUBLE_EQ(a.times.me, b.times.me);
  EXPECT_DOUBLE_EQ(a.total_bytes, b.total_bytes);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.rounds[i].bytes, b.rounds[i].bytes);
    EXPECT_DOUBLE_EQ(a.rounds[i].duration, b.rounds[i].duration);
  }
}

// --- fleet-level retry semantics ---------------------------------------

TEST(DcSimFaults, FailedMigrationsAreCountedAndRetried) {
  // Saturate the run with absolute-time connection losses so some
  // consolidation migrations fail; the simulation must account them
  // and retry rolled-back moves within the bounded budget.
  auto plan = std::make_shared<FaultPlan>();
  for (double t = 0.0; t < 4.0 * 3600.0; t += 90.0) {
    plan->add(ConnectionLoss{FaultPhase::kAny, t});
  }

  core::Wavm3Model model;
  model.fit(wavm3::testing::fast_campaign_m().dataset);
  const core::MigrationPlanner planner(model);

  dcsim::DcSimConfig cfg = dcsim::make_fleet_scenario(4, 12, 99);
  cfg.duration = 4.0 * 3600.0;
  cfg.strategy = dcsim::Strategy::kCostBlind;
  cfg.faults = plan;
  dcsim::DataCenterSimulation sim(cfg, &planner);
  const dcsim::DcSimReport r = sim.run();

  EXPECT_GT(r.migrations_failed, 0);
  EXPECT_GT(r.wasted_migration_bytes, 0.0);
  // Every retry is provoked by exactly one rolled-back failure.
  EXPECT_LE(r.migrations_retried, r.migrations_failed);

  // Same config, same faults -> identical report.
  dcsim::DataCenterSimulation again(cfg, &planner);
  const dcsim::DcSimReport r2 = again.run();
  EXPECT_EQ(r.migrations_failed, r2.migrations_failed);
  EXPECT_EQ(r.migrations_retried, r2.migrations_retried);
  EXPECT_DOUBLE_EQ(r.wasted_migration_bytes, r2.wasted_migration_bytes);
  EXPECT_DOUBLE_EQ(r.total_energy_joules, r2.total_energy_joules);
}

TEST(DcSimFaults, RetriesAreCappedPerMigrationWithCauseAttribution) {
  // A transfer-phase loss re-arms for every attempt, so every plan
  // migration fails every time: each move must burn exactly its retry
  // budget and then be dropped as exhausted — never retried forever.
  auto plan = std::make_shared<FaultPlan>();
  plan->add(ConnectionLoss{FaultPhase::kTransfer, 5.0});

  core::Wavm3Model model;
  model.fit(wavm3::testing::fast_campaign_m().dataset);
  const core::MigrationPlanner planner(model);

  dcsim::DcSimConfig cfg = dcsim::make_fleet_scenario(4, 12, 99);
  cfg.duration = 4.0 * 3600.0;
  cfg.strategy = dcsim::Strategy::kCostBlind;
  cfg.faults = plan;
  dcsim::DataCenterSimulation sim(cfg, &planner);
  const dcsim::DcSimReport r = sim.run();

  EXPECT_EQ(r.migrations_executed, 0);
  ASSERT_GT(r.migrations_failed, 0);
  ASSERT_GT(r.migration_retries_exhausted, 0);
  // Every exhausted plan move consumed its full budget, no more.
  EXPECT_EQ(r.migrations_retried, cfg.policy.max_retries * r.migration_retries_exhausted);
  // Per-cause attribution: every failure here is a rollback.
  ASSERT_EQ(r.migration_failures_by_cause.count("rolled-back"), 1u);
  EXPECT_EQ(r.migration_failures_by_cause.at("rolled-back"), r.migrations_failed);
  EXPECT_EQ(r.migration_failures_by_cause.count("vm-lost"), 0u);
}

TEST(DcSimFaults, LostVmsAreCountedButNeverRetried) {
  // Under post-copy, a transfer-phase loss with a generous offset lands
  // in the pull stage: the VM restarts on the target (kVmLost). The
  // fleet executor must count the failure under its own cause and must
  // NOT retry — the VM is no longer on the source.
  auto plan = std::make_shared<FaultPlan>();
  plan->add(ConnectionLoss{FaultPhase::kTransfer, 10.0});

  core::Wavm3Model model;
  model.fit(wavm3::testing::fast_campaign_m().dataset);
  const core::MigrationPlanner planner(model);

  dcsim::DcSimConfig cfg = dcsim::make_fleet_scenario(4, 12, 99);
  cfg.duration = 4.0 * 3600.0;
  cfg.strategy = dcsim::Strategy::kCostBlind;
  cfg.policy.migration_type = MigrationType::kPostCopy;
  cfg.faults = plan;
  dcsim::DataCenterSimulation sim(cfg, &planner);
  const dcsim::DcSimReport r = sim.run();

  ASSERT_GT(r.migrations_failed, 0);
  ASSERT_EQ(r.migration_failures_by_cause.count("vm-lost"), 1u);
  EXPECT_EQ(r.migration_failures_by_cause.at("vm-lost"), r.migrations_failed);
  EXPECT_EQ(r.migrations_retried, 0);
  EXPECT_EQ(r.migration_retries_exhausted, 0);
}

}  // namespace
}  // namespace wavm3::faults
