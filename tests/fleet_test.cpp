// Tests for the fleet layer (src/rpc/): loopback transport fault
// injection, node epoch state machine, client routing + failover +
// per-node breakers, the two-phase epoch publish (fleet-wide converge
// or roll back everywhere, incl. under injected node loss), the calib
// bridge, and a concurrent hammer written to run under TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "faults/node_outage.hpp"
#include "rpc/calib_bridge.hpp"
#include "rpc/fleet.hpp"
#include "rpc/node.hpp"
#include "serve/errors.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace wavm3::rpc {
namespace {

using migration::MigrationType;

core::Wavm3Model make_model(double scale = 1.0) {
  core::Wavm3Model m;
  for (const MigrationType type : {MigrationType::kNonLive, MigrationType::kLive}) {
    const double t = type == MigrationType::kLive ? 1.0 : 0.7;
    core::Wavm3Coefficients table;
    table.source.initiation = {2.1 * scale * t, 1.3 * scale, 0.0, 0.0, 210.0 * scale};
    table.source.transfer = {2.4 * scale * t, 1.1e-7 * scale, 55.0 * scale, 1.9 * scale,
                             205.0 * scale};
    table.source.activation = {2.2 * scale * t, 1.2 * scale, 0.0, 0.0, 208.0 * scale};
    table.target.initiation = {1.9 * scale * t, 0.8 * scale, 0.0, 0.0, 200.0 * scale};
    table.target.transfer = {2.0 * scale * t, 0.9e-7 * scale, 12.0 * scale, 0.7 * scale,
                             198.0 * scale};
    table.target.activation = {2.1 * scale * t, 1.0 * scale, 0.0, 0.0, 202.0 * scale};
    m.set_coefficients(type, table);
  }
  return m;
}

core::MigrationScenario make_scenario(int i) {
  core::MigrationScenario sc;
  sc.type = i % 3 == 0 ? MigrationType::kNonLive : MigrationType::kLive;
  sc.vm_mem_bytes = util::gib(1.0 + i % 8);
  sc.vm_cpu_vcpus = 1.0 + i % 4;
  const double mem_pages = sc.vm_mem_bytes / util::kPageSize;
  sc.vm_working_set_pages = mem_pages * 0.25;
  sc.vm_dirty_pages_per_s = sc.vm_working_set_pages * (0.05 + 0.09 * (i % 10));
  sc.source_cpu_load = 2.0 + i % 20;
  sc.target_cpu_load = 1.0 + i % 15;
  return sc;
}

/// A 4-node loopback fleet with closed-form services (fast, exact).
struct Fixture {
  explicit Fixture(int nodes = 4, std::size_t replication = 2) {
    obs::MetricRegistry* reg = &registry;
    const auto model = std::make_shared<const core::Wavm3Model>(make_model());
    for (int n = 0; n < nodes; ++n) {
      FleetNodeConfig cfg;
      cfg.node_id = n;
      cfg.registry = reg;
      cfg.service.threads = 1;
      cfg.service.fidelity = serve::Fidelity::kClosedForm;
      this->nodes.push_back(std::make_unique<FleetNode>(model, cfg));
      transport.register_node(n, this->nodes.back().get());
    }
    FleetClientConfig ccfg;
    ccfg.replication = replication;
    ccfg.registry = reg;
    client = std::make_unique<FleetClient>(transport, ccfg);
    for (int n = 0; n < nodes; ++n) client->add_node(n);
  }

  obs::MetricRegistry registry;
  LoopbackTransport transport;
  std::vector<std::unique_ptr<FleetNode>> nodes;
  std::unique_ptr<FleetClient> client;
};

TEST(Transport, UnknownNodeAndDownNodeAreTyped) {
  LoopbackTransport transport;
  const auto frame = encode_status_request();
  EXPECT_THROW(transport.call(9, frame), RpcError);
  Fixture fx(1);
  fx.transport.set_down(0, true);
  try {
    fx.transport.call(0, frame);
    FAIL() << "down node answered";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.code(), RpcErrorCode::kNodeDown);
  }
}

TEST(Transport, SeededDropRateIsDeterministicallyApplied) {
  Fixture fx(1);
  fx.transport.set_drop_rate(0, 1.0);
  EXPECT_THROW(fx.transport.call(0, encode_status_request()), RpcError);
  fx.transport.set_drop_rate(0, 0.0);
  EXPECT_NO_THROW(fx.transport.call(0, encode_status_request()));
  EXPECT_GE(fx.transport.failures(0), 1U);
}

TEST(Fleet, PredictMatchesDirectPlanner) {
  Fixture fx;
  const core::Wavm3Model reference = make_model();
  for (int i = 0; i < 24; ++i) {
    const core::MigrationScenario sc = make_scenario(i);
    const core::MigrationForecast via_fleet = fx.client->predict(sc);
    const core::MigrationForecast direct = core::MigrationPlanner(reference).forecast(sc);
    EXPECT_EQ(via_fleet.source_energy, direct.source_energy) << "scenario " << i;
    EXPECT_EQ(via_fleet.target_energy, direct.target_energy) << "scenario " << i;
    EXPECT_EQ(via_fleet.times.me, direct.times.me) << "scenario " << i;
  }
}

TEST(Fleet, FailsOverToReplicaWhenNodeIsDown) {
  Fixture fx;
  // Take one node down: every request routed to it must fail over to
  // the surviving replica and still answer.
  fx.transport.set_down(2, true);
  for (int i = 0; i < 48; ++i) {
    EXPECT_NO_THROW(fx.client->predict(make_scenario(i)));
  }
  fx.transport.set_down(2, false);
}

TEST(Fleet, AllReplicasDownIsTypedNodeDown) {
  Fixture fx(2, 2);  // replication == node count: every node owns every slice
  fx.transport.set_down(0, true);
  fx.transport.set_down(1, true);
  try {
    fx.client->predict(make_scenario(1));
    FAIL() << "predict succeeded with the whole fleet down";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.code(), RpcErrorCode::kNodeDown);
  }
}

TEST(Fleet, BreakerTripsAndRoutesAroundSickNode) {
  Fixture fx;
  serve::CircuitBreakerConfig bcfg;  // default: 5 consecutive failures trip
  fx.transport.set_down(1, true);
  for (int i = 0; i < 200; ++i) {
    ASSERT_NO_THROW(fx.client->predict(make_scenario(i)));
  }
  // After the breaker tripped, the client stops probing node 1: its
  // call count stalls well below the request count.
  EXPECT_LT(fx.transport.calls(1),
            static_cast<std::uint64_t>(bcfg.failure_threshold + 10));
  EXPECT_GE(fx.client->failovers(), static_cast<std::uint64_t>(bcfg.failure_threshold));
}

TEST(Fleet, ServiceErrorsPropagateTyped) {
  Fixture fx;
  core::MigrationScenario sc = make_scenario(1);
  sc.vm_mem_bytes = -1.0;  // violates the planner's contract
  // A deterministic service failure must come back typed and must NOT
  // count as a node failure (no failover, breaker stays closed).
  EXPECT_THROW(fx.client->predict(sc), std::runtime_error);
  EXPECT_EQ(fx.client->failovers(), 0U);
}

TEST(Epoch, PublishConvergesFleetWide) {
  Fixture fx;
  const core::Wavm3Model next = make_model(1.25);
  const PublishReport report = fx.client->publish(next);
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.epoch, 1U);
  EXPECT_EQ(report.prepare_acks, 4U);
  EXPECT_EQ(report.commit_acks, 4U);
  for (const auto& node : fx.nodes) {
    EXPECT_EQ(node->committed_epoch(), 1U);
    EXPECT_EQ(node->staged_epoch(), 0U);
  }
  const FleetStatus status = fx.client->status();
  EXPECT_EQ(status.epoch_lag, 0U);
  // Every node now serves the new model.
  const core::MigrationScenario sc = make_scenario(2);
  const core::MigrationForecast direct = core::MigrationPlanner(next).forecast(sc);
  EXPECT_EQ(fx.client->predict(sc).source_energy, direct.source_energy);
}

TEST(Epoch, NodeLossDuringPrepareRollsBackEverywhere) {
  Fixture fx;
  fx.transport.set_down(3, true);
  const PublishReport report = fx.client->publish(make_model(1.5));
  EXPECT_FALSE(report.converged);
  EXPECT_EQ(report.prepare_acks, 3U);
  EXPECT_EQ(report.rollbacks_sent, 3U);
  // All-or-nothing: every live node still serves epoch 0 and the old
  // model; nothing remains staged.
  const core::Wavm3Model original = make_model();
  const core::MigrationScenario sc = make_scenario(5);
  for (int n = 0; n < 3; ++n) {
    EXPECT_EQ(fx.nodes[static_cast<std::size_t>(n)]->committed_epoch(), 0U);
    EXPECT_EQ(fx.nodes[static_cast<std::size_t>(n)]->staged_epoch(), 0U);
  }
  EXPECT_EQ(fx.client->predict(sc).source_energy,
            core::MigrationPlanner(original).forecast(sc).source_energy);
  // The burned epoch cannot be replayed later (single-use), but the
  // next round uses a fresh epoch and converges once the node is back.
  fx.transport.set_down(3, false);
  const PublishReport retry = fx.client->publish(make_model(1.5));
  EXPECT_TRUE(retry.converged);
  EXPECT_EQ(retry.epoch, 2U);
  EXPECT_EQ(fx.client->status().epoch_lag, 0U);
}

TEST(Epoch, QuorumPublishToleratesMinorityLoss) {
  Fixture fx;
  FleetClientConfig ccfg;
  ccfg.quorum = 3;
  ccfg.registry = nullptr;
  FleetClient quorum_client(fx.transport, ccfg);
  for (int n = 0; n < 4; ++n) quorum_client.add_node(n);
  fx.transport.set_down(1, true);
  const PublishReport report = quorum_client.publish(make_model(2.0));
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.prepare_acks, 3U);
  // The lost node lags until the next converged publish reaches it.
  fx.transport.set_down(1, false);
  EXPECT_EQ(quorum_client.status().epoch_lag, 1U);
  const PublishReport heal = quorum_client.publish(make_model(2.0));
  EXPECT_TRUE(heal.converged);
  EXPECT_EQ(quorum_client.status().epoch_lag, 0U);
}

TEST(Epoch, StaleAndReplayedEpochsRejected) {
  Fixture fx;
  ASSERT_TRUE(fx.client->publish(make_model(1.1)).converged);  // epoch 1
  FleetNode& node = *fx.nodes[0];
  // Re-preparing the committed epoch is rejected.
  EpochPrepare stale;
  stale.epoch = 1;
  stale.tables.emplace_back(MigrationType::kLive, core::Wavm3Coefficients{});
  const EpochAck ack = decode_epoch_ack(
      decode_frame(node.handle(encode_epoch_prepare(stale))));
  EXPECT_FALSE(ack.accepted);
  // Committing an epoch that was never prepared is rejected.
  const EpochAck ghost = decode_epoch_ack(
      decode_frame(node.handle(encode_epoch_commit(EpochCommit{7}))));
  EXPECT_FALSE(ghost.accepted);
  // Rolling back an unknown epoch is an idempotent ack (coordinator
  // sweeps must succeed over any partial state).
  const EpochAck sweep = decode_epoch_ack(
      decode_frame(node.handle(encode_epoch_rollback(EpochRollback{7}))));
  EXPECT_TRUE(sweep.accepted);
}

TEST(Epoch, NonFiniteTablesRejectedAtPrepare) {
  Fixture fx(1, 1);
  EpochPrepare bad;
  bad.epoch = 1;
  core::Wavm3Coefficients table;
  table.source.transfer.alpha = std::numeric_limits<double>::quiet_NaN();
  bad.tables.emplace_back(MigrationType::kLive, table);
  const EpochAck ack = decode_epoch_ack(
      decode_frame(fx.nodes[0]->handle(encode_epoch_prepare(bad))));
  EXPECT_FALSE(ack.accepted);
  EXPECT_EQ(fx.nodes[0]->staged_epoch(), 0U);
}

TEST(CalibBridge, LocalSwapPropagatesFleetWide) {
  Fixture fx;
  calib::RecalibratorConfig ccfg;
  ccfg.window_capacity = 128;
  ccfg.pass_interval_samples = 0;  // explicit passes only
  ccfg.drift.min_samples = 24;
  const auto recal = attach_fleet_recalibration(*fx.nodes[0], *fx.client, ccfg);
  // Feed node 0 ground truth with a constant +30 W bias on both hosts
  // — the C1->C2-style idle-power shift the calib suite recovers.
  const core::Wavm3Model truth = make_model();
  for (int i = 0; i < 120; ++i) {
    const core::MigrationScenario sc = make_scenario(i);
    const core::MigrationForecast fc = core::MigrationPlanner(truth).forecast(sc);
    const double dur = fc.times.me - fc.times.ms;
    serve::MigrationFeedback fb;
    fb.source_energy_j = fc.source_energy + 30.0 * dur;
    fb.target_energy_j = fc.target_energy + 30.0 * dur;
    fb.duration_s = dur;
    ASSERT_TRUE(recal->record(sc, fb));
  }
  const calib::PassReport report = recal->run_pass();
  ASSERT_TRUE(report.swapped);
  // The local swap triggered a fleet publish: every node converged on
  // a fresh epoch and answers with corrected coefficients.
  EXPECT_GE(fx.client->committed_epoch(), 1U);
  EXPECT_EQ(fx.client->status().epoch_lag, 0U);
  for (const auto& node : fx.nodes) {
    EXPECT_EQ(node->committed_epoch(), fx.client->committed_epoch());
  }
}

TEST(Fleet, ConcurrentPredictAndPublishHammer) {
  Fixture fx;
  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; !stop.load(std::memory_order_relaxed) && i < 400; ++i) {
        try {
          fx.client->predict(make_scenario(t * 100 + i));
        } catch (const std::exception&) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Publish a few epochs and flap one node while traffic flows.
  for (int e = 0; e < 6; ++e) {
    fx.transport.set_down(1, e % 2 == 0);
    fx.client->publish(make_model(1.0 + 0.05 * e));
    fx.transport.set_down(1, false);
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& w : workers) w.join();
  // No predict may fail: node 1's loss is always covered by a replica.
  EXPECT_EQ(errors.load(), 0);
  // After the last publish with every node up, the fleet is converged.
  fx.client->publish(make_model(3.0));
  EXPECT_EQ(fx.client->status().epoch_lag, 0U);
}

TEST(NodeOutagePlan, SeededStormIsDeterministicAndBounded) {
  faults::NodeOutageOptions opt;
  opt.horizon_s = 10.0;
  opt.outages_per_node = 2;
  opt.max_concurrent_down = 1;
  const faults::NodeOutagePlan a = faults::NodeOutagePlan::random(4, opt, 77);
  const faults::NodeOutagePlan b = faults::NodeOutagePlan::random(4, opt, 77);
  ASSERT_EQ(a.outages().size(), b.outages().size());
  for (std::size_t i = 0; i < a.outages().size(); ++i) {
    EXPECT_EQ(a.outages()[i].node, b.outages()[i].node);
    EXPECT_DOUBLE_EQ(a.outages()[i].down_from_s, b.outages()[i].down_from_s);
  }
  EXPECT_FALSE(a.empty());
  // The concurrency cap holds at every outage boundary.
  for (const faults::NodeOutage& o : a.outages()) {
    EXPECT_LE(a.down_count(o.down_from_s), opt.max_concurrent_down);
  }
  // down() honours the window.
  const faults::NodeOutage& first = a.outages().front();
  EXPECT_TRUE(a.down(first.node, first.down_from_s));
  EXPECT_FALSE(a.down(first.node, first.down_until_s));
}

TEST(NodeOutagePlan, RejectsMalformedWindows) {
  faults::NodeOutagePlan plan;
  EXPECT_THROW(plan.add({-1, 0.0, 1.0}), util::ContractError);
  EXPECT_THROW(plan.add({0, 2.0, 1.0}), util::ContractError);
  plan.add({0, 1.0, 1.0});  // empty window: accepted, dropped
  EXPECT_TRUE(plan.empty());
}

}  // namespace
}  // namespace wavm3::rpc
