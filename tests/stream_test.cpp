// Tests for src/stream/: incremental feature extraction with golden
// parity against the batch FeatureBatch path on every campaign trace,
// the documented timestamp semantics (backwards rejects, duplicates
// collapse, gaps interpolate up to a bound), online phase tracking,
// live mid-migration prediction with confidence tightening, the
// session registry (typed errors, LRU eviction, degeneration alerts),
// the chaos abort-and-refund hook, the serve streaming endpoints, and
// a many-thread registry hammer written to run under ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "chaos/executor.hpp"
#include "core/planner.hpp"
#include "core/wavm3_model.hpp"
#include "models/feature_batch.hpp"
#include "plan/fleet.hpp"
#include "plan/strategy.hpp"
#include "serve/service.hpp"
#include "stats/integrate.hpp"
#include "stream/errors.hpp"
#include "stream/incremental.hpp"
#include "stream/live_predictor.hpp"
#include "stream/phase_track.hpp"
#include "stream/replay.hpp"
#include "stream/session.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace wavm3::stream {
namespace {

using migration::MigrationPhase;
using migration::MigrationType;
using models::FeatureBatch;
using models::HostRole;
using models::MigrationSample;

/// A fitted model from synthetic coefficient tables, covering all
/// three migration types (the chaos planner prices post-copy too).
core::Wavm3Model make_model() {
  core::Wavm3Model m;
  for (const MigrationType type :
       {MigrationType::kNonLive, MigrationType::kLive, MigrationType::kPostCopy}) {
    const double t = type == MigrationType::kLive ? 1.0 : 0.7;
    core::Wavm3Coefficients table;
    table.source.initiation = {2.1 * t, 1.3, 0.0, 0.0, 210.0};
    table.source.transfer = {2.4 * t, 1.1e-7, 55.0, 1.9, 205.0};
    table.source.activation = {2.2 * t, 1.2, 0.0, 0.0, 208.0};
    table.target.initiation = {1.9 * t, 0.8, 0.0, 0.0, 200.0};
    table.target.transfer = {2.0 * t, 0.9e-7, 12.0, 0.7, 198.0};
    table.target.activation = {2.1 * t, 1.0, 0.0, 0.0, 202.0};
    m.set_coefficients(type, table);
  }
  return m;
}

/// A model fitted on the shared reduced campaign (covers every
/// (type, role) slice the campaign produces).
const core::Wavm3Model& campaign_model() {
  static const core::Wavm3Model model = [] {
    core::Wavm3Model m;
    m.fit(wavm3::testing::fast_campaign_m().dataset.split_stratified(0.34, 3).first);
    return m;
  }();
  return model;
}

MigrationSample sample(double time, MigrationPhase phase, double power = 200.0,
                       double cpu_host = 2.0, double cpu_vm = 1.0, double dirty_ratio = 0.3,
                       double bandwidth = 100e6) {
  MigrationSample s;
  s.time = time;
  s.power_watts = power;
  s.cpu_host = cpu_host;
  s.cpu_vm = cpu_vm;
  s.dirty_ratio = dirty_ratio;
  s.bandwidth = bandwidth;
  s.phase = phase;
  return s;
}

/// Streams one recorded observation through a fresh extractor.
IncrementalExtractor stream_of(const models::MigrationObservation& obs,
                               ExtractorConfig config = {}) {
  IncrementalExtractor ex(obs.type, obs.role, config);
  ex.set_migration_scalars(obs.mem_bytes, obs.data_bytes, obs.avg_bandwidth,
                           obs.idle_power_watts);
  for (const auto& s : obs.samples) ex.push(s);
  ex.finish();
  return ex;
}

constexpr MigrationPhase kDensePhases[3] = {MigrationPhase::kInitiation,
                                            MigrationPhase::kTransfer,
                                            MigrationPhase::kActivation};

/// Every aggregate the extractor maintains must be BIT-identical to
/// the batch built from the same samples (EXPECT_EQ, not NEAR: the
/// extractor replicates FeatureBatch::build()'s exact operation
/// order, and the 1e-9 ISSUE gate is the loose outer bound).
void expect_batch_parity(const IncrementalExtractor& ex,
                         const models::MigrationObservation& obs) {
  const FeatureBatch batch = FeatureBatch::of(obs);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(ex.observed_energy(), batch.observed_energy()[0]);
  EXPECT_EQ(ex.row().mem_bytes, batch.mem_bytes()[0]);
  EXPECT_EQ(ex.row().data_bytes, batch.data_bytes()[0]);
  EXPECT_EQ(ex.row().avg_bandwidth, batch.avg_bandwidth()[0]);
  EXPECT_EQ(ex.row().idle_power, batch.idle_power()[0]);
  for (const auto w : {FeatureBatch::Weighting::kTotal, FeatureBatch::Weighting::kPhasePure}) {
    for (std::size_t col = 0; col < FeatureBatch::kColumns; ++col) {
      for (std::size_t p = 0; p < FeatureBatch::kPhases; ++p) {
        const auto c = static_cast<FeatureBatch::Column>(col);
        EXPECT_EQ(ex.integral(c, p, w), batch.integral(c, kDensePhases[p], w)[0])
            << "weighting " << static_cast<int>(w) << " column " << col << " phase " << p;
      }
    }
  }
}

double predict_one(const core::Wavm3Model& model, const FeatureBatch& batch) {
  double out = 0.0;
  model.predict_batch(batch, std::span<double>(&out, 1));
  return out;
}

/// A live source-side campaign trace long enough to split mid-stream.
const models::MigrationObservation& live_source_obs() {
  for (const auto& o : wavm3::testing::fast_campaign_m().dataset.observations) {
    if (o.type != MigrationType::kLive || o.role != HostRole::kSource) continue;
    if (o.samples.size() < 12) continue;
    for (const auto& s : o.samples) {
      if (s.phase == MigrationPhase::kActivation) return o;
    }
  }
  ADD_FAILURE() << "no suitable live observation in the fast campaign";
  static const models::MigrationObservation empty;
  return empty;
}

// ----------------------------------------------------- golden parity

TEST(IncrementalExtractor, BatchParityOnEveryCampaignObservation) {
  const models::Dataset& dataset = wavm3::testing::fast_campaign_m().dataset;
  const core::Wavm3Model& model = campaign_model();
  ASSERT_GE(dataset.observations.size(), 4u);
  for (const auto& obs : dataset.observations) {
    const IncrementalExtractor ex = stream_of(obs);
    expect_batch_parity(ex, obs);
    // The streamed aggregates price through predict_batch to the same
    // energy as the batch-built row (the 1e-9 golden-parity gate).
    const double live_j = predict_one(model, ex.to_batch());
    const double batch_j = predict_one(model, FeatureBatch::of(obs));
    EXPECT_LE(std::abs(live_j - batch_j), 1e-9 * std::max(1.0, std::abs(batch_j)));
  }
}

// ----------------------------------------------- timestamp semantics

TEST(IncrementalExtractor, DuplicateTimestampCollapsesToLastValue) {
  // Same rule as stats::trapezoid (documented there): the zero-width
  // panel adds nothing; the later reading becomes the next panel's
  // left endpoint.
  const std::vector<double> t{0.0, 1.0, 1.0, 2.0};
  const std::vector<double> y{0.0, 2.0, 6.0, 6.0};
  models::MigrationObservation obs;
  obs.type = MigrationType::kLive;
  obs.role = HostRole::kSource;
  obs.times = {0.0, 0.0, 2.0, 2.0};
  for (std::size_t i = 0; i < t.size(); ++i) {
    obs.samples.push_back(sample(t[i], MigrationPhase::kTransfer, y[i]));
  }
  const IncrementalExtractor ex = stream_of(obs);
  // 0.5*(0+2)*1 + 0 + 0.5*(6+6)*1 — post-step reads from the step on.
  EXPECT_EQ(ex.observed_energy(), 7.0);
  EXPECT_EQ(ex.observed_energy(), stats::trapezoid(t, y));
  expect_batch_parity(ex, obs);
}

TEST(IncrementalExtractor, BackwardsOrNonFiniteTimestampThrowsContractError) {
  IncrementalExtractor ex(MigrationType::kLive, HostRole::kSource);
  ex.push(sample(1.0, MigrationPhase::kTransfer));
  EXPECT_THROW(ex.push(sample(0.5, MigrationPhase::kTransfer)), util::ContractError);
  EXPECT_THROW(ex.push(sample(std::numeric_limits<double>::quiet_NaN(),
                              MigrationPhase::kTransfer)),
               util::ContractError);
  // The rejected samples left no trace; equal timestamps are fine.
  EXPECT_EQ(ex.samples(), 1u);
  ex.push(sample(1.0, MigrationPhase::kTransfer));
  EXPECT_EQ(ex.samples(), 2u);
}

TEST(IncrementalExtractor, GapWithinBoundBridgesWithPhaseHold) {
  // A 4 s hole between a transfer and an activation sample. Without
  // bridging, kTotal weighting dumps half the panel (2 s) into the
  // activation phase; with bridging at the 0.5 s cadence the interior
  // holds the transfer phase and only the final half-panel (0.25 s)
  // lands in activation.
  IncrementalExtractor ex(MigrationType::kLive, HostRole::kSource);
  ex.push(sample(0.0, MigrationPhase::kTransfer, 2.0));
  ex.push(sample(4.0, MigrationPhase::kActivation, 6.0));
  EXPECT_EQ(ex.gaps_bridged(), 1u);
  EXPECT_EQ(ex.synthetic_samples(), 7u);  // ceil(4/0.5) - 1 interior points
  // Linear interpolation preserves the trapezoid area.
  EXPECT_NEAR(ex.observed_energy(), 16.0, 1e-9);
  EXPECT_NEAR(ex.phase_coverage(1), 3.75, 1e-12);
  EXPECT_NEAR(ex.phase_coverage(2), 0.25, 1e-12);

  ExtractorConfig wide;
  wide.interpolate_above_s = 10.0;  // disable bridging for contrast
  IncrementalExtractor raw(MigrationType::kLive, HostRole::kSource, wide);
  raw.push(sample(0.0, MigrationPhase::kTransfer, 2.0));
  raw.push(sample(4.0, MigrationPhase::kActivation, 6.0));
  EXPECT_EQ(raw.gaps_bridged(), 0u);
  EXPECT_EQ(raw.phase_coverage(1), 2.0);
  EXPECT_EQ(raw.phase_coverage(2), 2.0);
}

TEST(IncrementalExtractor, GapBeyondMaxRejectsAndLeavesStateUnchanged) {
  IncrementalExtractor ex(MigrationType::kLive, HostRole::kSource);
  ex.push(sample(0.0, MigrationPhase::kTransfer, 100.0));
  try {
    ex.push(sample(31.0, MigrationPhase::kTransfer, 100.0));  // > max_gap_s = 30
    FAIL() << "expected StreamError(kGapExceeded)";
  } catch (const StreamError& e) {
    EXPECT_EQ(e.code(), StreamErrorCode::kGapExceeded);
  }
  EXPECT_EQ(ex.samples(), 1u);
  EXPECT_EQ(ex.last_time(), 0.0);
  EXPECT_EQ(ex.observed_energy(), 0.0);
  // The stream recovers: the next in-bound sample is accepted.
  ex.push(sample(1.0, MigrationPhase::kTransfer, 100.0));
  EXPECT_EQ(ex.samples(), 2u);
  EXPECT_EQ(ex.observed_energy(), 100.0);
}

TEST(IncrementalExtractor, PushAfterFinishThrowsTyped) {
  IncrementalExtractor ex(MigrationType::kLive, HostRole::kSource);
  ex.push(sample(0.0, MigrationPhase::kInitiation));
  ex.finish();
  ex.finish();  // idempotent
  try {
    ex.push(sample(1.0, MigrationPhase::kTransfer));
    FAIL() << "expected StreamError(kFinished)";
  } catch (const StreamError& e) {
    EXPECT_EQ(e.code(), StreamErrorCode::kFinished);
  }
}

TEST(IncrementalExtractor, TracksPhaseProgress) {
  IncrementalExtractor ex(MigrationType::kLive, HostRole::kSource);
  EXPECT_EQ(ex.deepest_phase(), -1);
  EXPECT_EQ(ex.current_phase(), -1);
  ex.push(sample(0.0, MigrationPhase::kInitiation));
  EXPECT_EQ(ex.deepest_phase(), 0);
  EXPECT_EQ(ex.phase_entered_at(0), 0.0);
  EXPECT_TRUE(std::isnan(ex.phase_entered_at(1)));
  ex.push(sample(1.0, MigrationPhase::kTransfer));
  ex.push(sample(2.0, MigrationPhase::kActivation));
  EXPECT_EQ(ex.deepest_phase(), 2);
  EXPECT_EQ(ex.current_phase(), 2);
  EXPECT_EQ(ex.phase_entered_at(1), 1.0);
  EXPECT_EQ(ex.phase_entered_at(2), 2.0);
  EXPECT_EQ(ex.first_time(), 0.0);
  EXPECT_EQ(ex.last_time(), 2.0);
}

// ------------------------------------------------------ phase tracker

TEST(PhaseTracker, CountsRoundsAndFlagsStopAndCopy) {
  PhaseTracker tracker;
  // Initiation: no rounds yet.
  tracker.observe(sample(0.0, MigrationPhase::kInitiation));
  tracker.observe(sample(0.5, MigrationPhase::kInitiation));
  EXPECT_EQ(tracker.rounds_observed(), 0);
  // Transfer entry opens round 1.
  for (double t = 1.0; t < 12.0; t += 0.5) {
    double bw = t < 5.0 ? 100e6 : 140e6;          // +40% step at t=5: round 2
    double dr = t < 8.0 ? 0.4 : 0.1;              // -75% collapse at t=8: round 3
    double cpu_vm = t < 10.0 ? 2.0 : 0.05;        // suspension at t=10: stop-and-copy
    tracker.observe(sample(t, MigrationPhase::kTransfer, 200.0, 2.0, cpu_vm, dr, bw));
  }
  tracker.observe(sample(12.0, MigrationPhase::kActivation));
  EXPECT_EQ(tracker.rounds_observed(), 3);
  EXPECT_TRUE(tracker.stop_and_copy_entered());
  EXPECT_EQ(tracker.stop_and_copy_at(), 10.0);
  ASSERT_EQ(tracker.boundaries().size(), 3u);
  EXPECT_EQ(tracker.boundaries()[0].phase, MigrationPhase::kInitiation);
  EXPECT_EQ(tracker.boundaries()[1].phase, MigrationPhase::kTransfer);
  EXPECT_EQ(tracker.boundaries()[2].phase, MigrationPhase::kActivation);
  EXPECT_EQ(tracker.boundaries()[1].time, 1.0);
}

TEST(PhaseTracker, IgnoresSubSecondNoiseBoundaries) {
  PhaseTrackerConfig cfg;
  cfg.min_round_s = 1.0;
  PhaseTracker tracker(cfg);
  tracker.observe(sample(0.0, MigrationPhase::kTransfer, 200.0, 2.0, 1.0, 0.4, 100e6));
  // A huge bandwidth step 0.5 s after the round opened: noise at 2 Hz.
  tracker.observe(sample(0.5, MigrationPhase::kTransfer, 200.0, 2.0, 1.0, 0.4, 200e6));
  EXPECT_EQ(tracker.rounds_observed(), 1);
  // The same step after the guard window counts.
  tracker.observe(sample(1.5, MigrationPhase::kTransfer, 200.0, 2.0, 1.0, 0.4, 400e6));
  EXPECT_EQ(tracker.rounds_observed(), 2);
}

// ------------------------------------------------------ live predictor

TEST(LivePredictor, ConfidenceTightensAsPhasesLand) {
  const models::MigrationObservation& obs = live_source_obs();
  const core::Wavm3Model& model = campaign_model();
  const PhasePrior prior = PhasePrior::from_times(obs.times);

  // Stream everything before the activation phase.
  std::size_t split = obs.samples.size();
  for (std::size_t i = 0; i < obs.samples.size(); ++i) {
    if (obs.samples[i].phase == MigrationPhase::kActivation) {
      split = i;
      break;
    }
  }
  ASSERT_GT(split, 1u);
  ASSERT_LT(split, obs.samples.size());

  IncrementalExtractor ex(obs.type, obs.role);
  ex.set_migration_scalars(obs.mem_bytes, obs.data_bytes, obs.avg_bandwidth,
                           obs.idle_power_watts);
  for (std::size_t i = 0; i < split; ++i) ex.push(obs.samples[i]);

  const RoleForecast mid = predict_role(model, ex, prior);
  EXPECT_GT(mid.observed_fraction, 0.0);
  EXPECT_LT(mid.observed_fraction, 1.0);
  // Initiation landed (a deeper phase produced samples): exact, no
  // remainder. Activation has not started: zero confidence, all prior.
  EXPECT_TRUE(mid.phase[0].landed);
  EXPECT_EQ(mid.phase[0].confidence, 1.0);
  EXPECT_EQ(mid.phase[0].remaining_s, 0.0);
  EXPECT_FALSE(mid.phase[2].landed);
  EXPECT_EQ(mid.phase[2].observed_s, 0.0);
  EXPECT_EQ(mid.phase[2].confidence, 0.0);
  EXPECT_GT(mid.remaining_j, 0.0);
  EXPECT_DOUBLE_EQ(mid.energy_j, mid.observed_model_j + mid.remaining_j);

  // Finish the stream: every phase lands, the remainder vanishes, and
  // the live forecast equals the batch prediction (the parity gate).
  for (std::size_t i = split; i < obs.samples.size(); ++i) ex.push(obs.samples[i]);
  ex.finish();
  const RoleForecast done = predict_role(model, ex, prior);
  EXPECT_EQ(done.observed_fraction, 1.0);
  EXPECT_EQ(done.remaining_j, 0.0);
  for (int p = 0; p < 3; ++p) {
    EXPECT_TRUE(done.phase[p].landed);
    EXPECT_EQ(done.phase[p].confidence, 1.0);
  }
  EXPECT_GE(done.observed_fraction, mid.observed_fraction);
  const double batch_j = predict_one(model, FeatureBatch::of(obs));
  EXPECT_LE(std::abs(done.energy_j - batch_j), 1e-9 * std::max(1.0, std::abs(batch_j)));
}

TEST(LivePredictor, NoPriorMeansObservedPrefixOnly) {
  const core::Wavm3Model model = make_model();
  IncrementalExtractor ex(MigrationType::kLive, HostRole::kSource);
  ex.push(sample(0.0, MigrationPhase::kTransfer));
  ex.push(sample(1.0, MigrationPhase::kTransfer));
  const RoleForecast fc = predict_role(model, ex, PhasePrior{});
  EXPECT_EQ(fc.remaining_j, 0.0);
  EXPECT_EQ(fc.energy_j, fc.observed_model_j);
}

// ------------------------------------------------------------- replay

TEST(Replay, AccuracyCurveReachesBatchParityAtFullObservation) {
  const core::Wavm3Model& model = campaign_model();
  const models::Dataset& dataset = wavm3::testing::fast_campaign_m().dataset;

  const AccuracyCurve curve = accuracy_curve(model, dataset);
  ASSERT_EQ(curve.fractions.size(), 4u);
  ASSERT_EQ(curve.nrmse.size(), 4u);
  EXPECT_GT(curve.observations, 0u);
  EXPECT_LE(curve.parity_max_rel_err, 1e-9);
  for (const double e : curve.nrmse) {
    EXPECT_TRUE(std::isfinite(e));
    EXPECT_GE(e, 0.0);
  }

  const models::MigrationObservation& obs = live_source_obs();
  const ObservationReplay replay = replay_observation(model, obs);
  ASSERT_EQ(replay.points.size(), 4u);
  const ReplayPoint& full = replay.points.back();
  EXPECT_EQ(full.fraction, 1.0);
  EXPECT_EQ(full.samples, obs.samples.size());
  EXPECT_EQ(full.remaining_j, 0.0);
  EXPECT_EQ(full.mean_confidence, 1.0);
  EXPECT_LE(std::abs(full.forecast_j - replay.batch_predict_j),
            1e-9 * std::max(1.0, std::abs(replay.batch_predict_j)));
  EXPECT_EQ(replay.observed_j, obs.observed_energy());
}

// ----------------------------------------------------------- sessions

TEST(SessionRegistry, TypedErrorsOnDuplicateUnknownAndLimit) {
  RegistryConfig cfg;
  cfg.max_sessions = 2;
  cfg.evict_on_full = false;
  SessionRegistry reg(cfg);

  reg.open(1, SessionOptions{});
  try {
    reg.open(1, SessionOptions{});
    FAIL() << "expected StreamError(kDuplicateSession)";
  } catch (const StreamError& e) {
    EXPECT_EQ(e.code(), StreamErrorCode::kDuplicateSession);
  }
  reg.open(2, SessionOptions{});
  try {
    reg.open(3, SessionOptions{});
    FAIL() << "expected StreamError(kSessionLimit)";
  } catch (const StreamError& e) {
    EXPECT_EQ(e.code(), StreamErrorCode::kSessionLimit);
  }
  try {
    reg.submit(99, HostRole::kSource, sample(0.0, MigrationPhase::kInitiation));
    FAIL() << "expected StreamError(kUnknownSession)";
  } catch (const StreamError& e) {
    EXPECT_EQ(e.code(), StreamErrorCode::kUnknownSession);
  }
  // Closing frees a slot.
  reg.close(1);
  reg.open(3, SessionOptions{});
  EXPECT_EQ(reg.active(), 2u);
  EXPECT_EQ(reg.evictions(), 0u);
}

TEST(SessionRegistry, EvictsLeastRecentlyUpdatedWhenFull) {
  RegistryConfig cfg;
  cfg.max_sessions = 2;
  cfg.evict_on_full = true;
  SessionRegistry reg(cfg);

  reg.open(1, SessionOptions{});
  reg.open(2, SessionOptions{});
  // Touch 1 so 2 becomes the stalest.
  reg.submit(1, HostRole::kSource, sample(0.0, MigrationPhase::kInitiation));
  reg.open(3, SessionOptions{});
  EXPECT_EQ(reg.active(), 2u);
  EXPECT_EQ(reg.evictions(), 1u);
  EXPECT_EQ(reg.opened(), 3u);
  EXPECT_NO_THROW(reg.find(1));
  EXPECT_NO_THROW(reg.find(3));
  EXPECT_THROW(reg.find(2), StreamError);
}

TEST(SessionRegistry, CloseSummarisesTheSession) {
  const core::Wavm3Model model = make_model();
  SessionRegistry reg;
  SessionOptions opt;
  opt.type = MigrationType::kLive;
  reg.open(5, opt);
  for (double t = 0.0; t <= 3.0; t += 1.0) {
    reg.submit(5, HostRole::kSource, sample(t, MigrationPhase::kTransfer, 100.0));
    reg.submit(5, HostRole::kTarget, sample(t, MigrationPhase::kTransfer, 50.0));
  }
  (void)reg.predict(5, model);
  (void)reg.predict(5, model);
  EXPECT_EQ(reg.samples_total(), 8u);

  const std::shared_ptr<StreamSession> closed = reg.close(5);
  ASSERT_NE(closed, nullptr);
  const SessionSummary summary = closed->summary();
  EXPECT_EQ(summary.id, 5u);
  EXPECT_EQ(summary.source_samples, 4u);
  EXPECT_EQ(summary.target_samples, 4u);
  EXPECT_EQ(summary.revisions, 2u);
  EXPECT_TRUE(summary.finished);
  EXPECT_EQ(summary.duration_s, 3.0);
  EXPECT_EQ(summary.observed_source_j, 300.0);  // 100 W for 3 s
  EXPECT_EQ(summary.observed_target_j, 150.0);
  EXPECT_EQ(reg.active(), 0u);
  EXPECT_THROW(reg.close(5), StreamError);
  // The ring kept the raw tail for diagnostics.
  EXPECT_EQ(closed->recent_samples().size(), 8u);
}

TEST(SessionRegistry, DegenerationAlertFiresOnceAndLatches) {
  const core::Wavm3Model model = make_model();
  SessionRegistry reg;
  std::atomic<int> alerts{0};
  DegenerationAlert last;
  reg.set_degeneration_callback([&](const DegenerationAlert& a) {
    last = a;
    alerts.fetch_add(1, std::memory_order_relaxed);
  });

  SessionOptions opt;
  opt.type = MigrationType::kLive;
  opt.baseline_total_j = 1.0;  // any observed energy blows past 1.5x this
  opt.plan_vm = 7;
  reg.open(11, opt);
  reg.submit(11, HostRole::kSource, sample(0.0, MigrationPhase::kTransfer));
  reg.submit(11, HostRole::kSource, sample(2.0, MigrationPhase::kTransfer));

  const LiveForecast first = reg.predict(11, model);
  EXPECT_TRUE(first.degenerated);
  ASSERT_TRUE(first.alert.has_value());
  EXPECT_EQ(alerts.load(), 1);
  EXPECT_EQ(last.session, 11u);
  EXPECT_EQ(last.plan_vm, 7);
  EXPECT_GT(last.revised_j, last.baseline_j);
  EXPECT_FALSE(last.reason.empty());

  // Latched: still degenerated, but the alert rode out exactly once.
  const LiveForecast second = reg.predict(11, model);
  EXPECT_TRUE(second.degenerated);
  EXPECT_FALSE(second.alert.has_value());
  EXPECT_EQ(alerts.load(), 1);
}

// ------------------------------------------------- chaos integration

TEST(ChaosIntegration, LiveAbortRefundsFlaggedMovesAtTheWaveBoundary) {
  const core::Wavm3Model model = make_model();
  const plan::BeamSearchStrategy beam;
  plan::Fleet fleet = plan::Fleet::synthetic(16, 64, 23);
  const double now = plan::SyntheticFleetOptions{}.history_s;

  chaos::ChaosConfig cfg;
  cfg.planner.wave_horizon_s = 2.0 * 7200.0;
  cfg.faults_enabled = false;
  cfg.relief_enabled = false;
  cfg.replan.wave_deadline_s = 1e9;
  chaos::WaveExecutor executor(model, cfg);

  // Flag every VM: whatever the planner picks must be refunded.
  for (int vm = 0; vm < 64; ++vm) executor.request_live_abort(vm);
  EXPECT_EQ(executor.live_abort_requests(), 64u);

  const chaos::WaveOutcome wave = executor.run_wave(fleet, beam, 0, now);
  ASSERT_GT(wave.planned_moves, 0);
  EXPECT_EQ(wave.live_aborted, wave.planned_moves);
  EXPECT_EQ(wave.executed, 0);
  EXPECT_EQ(wave.completed, 0);
  EXPECT_GT(wave.ledger.refunded_j, 0.0);
  EXPECT_TRUE(wave.violations.empty());

  // Flags were consumed with the wave: the re-planned moves execute
  // normally next time around.
  const chaos::WaveOutcome next = executor.run_wave(fleet, beam, 1, now + cfg.wave_gap_s);
  EXPECT_EQ(next.live_aborted, 0);
  EXPECT_GT(next.executed, 0);
  EXPECT_EQ(next.completed, next.executed);
}

TEST(ChaosIntegration, LiveAbortHookForwardsOnlyPlannerBornSessions) {
  const core::Wavm3Model model = make_model();
  chaos::WaveExecutor executor(model, chaos::ChaosConfig{});
  const DegenerationCallback hook = chaos::make_live_abort_hook(executor);

  DegenerationAlert alert;
  alert.plan_vm = -1;  // serve-only session: nothing to abort
  hook(alert);
  EXPECT_EQ(executor.live_abort_requests(), 0u);
  alert.plan_vm = 11;
  hook(alert);
  EXPECT_EQ(executor.live_abort_requests(), 1u);
}

// ------------------------------------------------- serve integration

core::MigrationScenario serve_scenario() {
  core::MigrationScenario sc;
  sc.type = MigrationType::kLive;
  sc.vm_mem_bytes = 4.0 * 1024.0 * 1024.0 * 1024.0;
  sc.vm_cpu_vcpus = 2.0;
  const double mem_pages = sc.vm_mem_bytes / 4096.0;
  sc.vm_working_set_pages = mem_pages * 0.25;
  sc.vm_dirty_pages_per_s = sc.vm_working_set_pages * 0.05;
  sc.source_cpu_load = 4.0;
  sc.target_cpu_load = 2.0;
  return sc;
}

void feed_session(serve::PredictionService& service, std::uint64_t id) {
  for (const HostRole role : {HostRole::kSource, HostRole::kTarget}) {
    service.submit_sample(id, role, sample(0.0, MigrationPhase::kInitiation));
    service.submit_sample(id, role, sample(0.5, MigrationPhase::kInitiation));
    for (double t = 1.0; t <= 4.5; t += 0.5) {
      service.submit_sample(id, role, sample(t, MigrationPhase::kTransfer));
    }
    service.submit_sample(id, role, sample(5.0, MigrationPhase::kActivation));
    service.submit_sample(id, role, sample(5.5, MigrationPhase::kActivation));
  }
}

TEST(ServeStreaming, EndToEndFeedbackAndMetrics) {
  const core::Wavm3Model model = make_model();
  serve::ServiceConfig cfg;
  cfg.threads = 2;
  serve::PredictionService service(model, cfg);

  std::atomic<int> feedback{0};
  service.set_feedback_sink(
      [&](const core::MigrationScenario&, const serve::MigrationFeedback& fb) {
        EXPECT_GT(fb.duration_s, 0.0);
        EXPECT_GT(fb.source_energy_j, 0.0);
        feedback.fetch_add(1, std::memory_order_relaxed);
      });

  service.open_stream(7, serve_scenario());
  EXPECT_THROW(service.open_stream(7, serve_scenario()), StreamError);
  feed_session(service, 7);

  const LiveForecast inline_fc = service.predict_live(7);
  EXPECT_EQ(inline_fc.revision, 1u);
  EXPECT_GT(inline_fc.total_j(), 0.0);
  const LiveForecast pooled_fc = service.submit_predict_live(7).get();
  EXPECT_EQ(pooled_fc.revision, 2u);
  EXPECT_GT(pooled_fc.total_j(), 0.0);

  const std::string prom = service.metrics_prometheus();
  EXPECT_NE(prom.find("stream_sessions_active"), std::string::npos);
  EXPECT_NE(prom.find("stream_samples_total"), std::string::npos);
  EXPECT_NE(prom.find("stream_revision_delta_watts"), std::string::npos);

  const serve::PredictionService::StreamCloseReport report = service.close_stream(7);
  EXPECT_TRUE(report.summary.finished);
  EXPECT_EQ(report.summary.source_samples, 12u);
  EXPECT_TRUE(report.feedback_recorded);  // scenario known, duration observed
  EXPECT_EQ(service.stream_registry().active(), 0u);
  EXPECT_THROW(service.predict_live(7), StreamError);

  // The feedback sample lands on a worker thread.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (feedback.load() == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(feedback.load(), 1);

  // A session opened from announced timestamps (no scenario) converts
  // to no feedback on close.
  migration::PhaseTimestamps times;
  times.ms = 0.0;
  times.ts = 1.0;
  times.te = 5.0;
  times.me = 6.0;
  service.open_stream(8, MigrationType::kLive, times);
  feed_session(service, 8);
  const serve::PredictionService::StreamCloseReport quiet = service.close_stream(8);
  EXPECT_TRUE(quiet.summary.finished);
  EXPECT_FALSE(quiet.feedback_recorded);
  EXPECT_EQ(feedback.load(), 1);
}

// ------------------------------------------------------- TSan hammer

TEST(SessionRegistry, ManyThreadHammerStaysConsistent) {
  const core::Wavm3Model model = make_model();
  RegistryConfig cfg;
  cfg.max_sessions = 8;
  cfg.evict_on_full = true;
  cfg.ring_capacity = 64;
  SessionRegistry reg(cfg);

  std::atomic<int> alerts{0};
  reg.set_degeneration_callback(
      [&](const DegenerationAlert&) { alerts.fetch_add(1, std::memory_order_relaxed); });

  constexpr int kThreads = 10;  // >= 8 per the TSan gate
  constexpr int kIters = 150;
  constexpr std::uint64_t kIds = 16;
  std::atomic<std::uint64_t> accepted{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kIters; ++i) {
        const std::uint64_t id = static_cast<std::uint64_t>(w * 31 + i) % kIds;
        SessionOptions opt;
        opt.type = MigrationType::kLive;
        opt.baseline_total_j = 1.0;  // degeneration trips constantly
        try {
          reg.open(id, opt);
        } catch (const StreamError&) {
        }
        const HostRole role = (w + i) % 2 == 0 ? HostRole::kSource : HostRole::kTarget;
        try {
          reg.submit(id, role, sample(0.5 * i, MigrationPhase::kTransfer));
          accepted.fetch_add(1, std::memory_order_relaxed);
        } catch (const StreamError&) {
        } catch (const util::ContractError&) {
          // Interleaved writers make timestamps non-monotonic per
          // session; the reject path is part of what we hammer.
        }
        try {
          (void)reg.predict(id, model);
        } catch (const StreamError&) {
        } catch (const util::ContractError&) {
        }
        if (i % 7 == 0) {
          try {
            (void)reg.close(id);
          } catch (const StreamError&) {
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_LE(reg.active(), cfg.max_sessions);
  EXPECT_GT(reg.opened(), 0u);
  // Every accepted sample was counted exactly once.
  EXPECT_EQ(reg.samples_total(), accepted.load());
  // The callback installed under the race still works afterwards: a
  // session that blows its baseline must deliver exactly one alert
  // (whether the racing sessions also alerted is timing-dependent).
  const int racing_alerts = alerts.load();
  SessionOptions opt;
  opt.type = MigrationType::kLive;
  opt.baseline_total_j = 1.0;
  reg.open(1000, opt);
  reg.submit(1000, HostRole::kSource, sample(0.0, MigrationPhase::kTransfer));
  reg.submit(1000, HostRole::kSource, sample(2.0, MigrationPhase::kTransfer));
  const LiveForecast fc = reg.predict(1000, model);
  EXPECT_TRUE(fc.degenerated);
  EXPECT_EQ(alerts.load(), racing_alerts + 1);
}

}  // namespace
}  // namespace wavm3::stream
