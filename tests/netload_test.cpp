// Tests for the NETLOAD extension: the network-streaming workload, host
// traffic aggregation, link contention during migration, and the
// paper's SIII-B negligibility claim.
#include <gtest/gtest.h>

#include "cloud/datacenter.hpp"
#include "cloud/instances.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "migration/engine.hpp"
#include "net/bandwidth_model.hpp"
#include "sim/simulator.hpp"
#include "util/units.hpp"
#include "workloads/netstream.hpp"

namespace wavm3 {
namespace {

using migration::MigrationType;

TEST(NetStream, ResourceSignature) {
  workloads::NetStreamParams p;
  p.bytes_per_s = 100e6;
  p.cpu_per_gbs = 1.5;
  const workloads::NetStreamWorkload w(p);
  EXPECT_DOUBLE_EQ(w.network_demand(0.0), 100e6);
  EXPECT_NEAR(w.cpu_demand(0.0), 0.15, 1e-12);
  EXPECT_GT(w.dirty_page_rate(0.0), 0.0);
}

TEST(NetStream, DefaultWorkloadsHaveNoTraffic) {
  const workloads::IdleWorkload idle;
  EXPECT_DOUBLE_EQ(idle.network_demand(0.0), 0.0);
}

TEST(NetStream, VmAndHostAggregation) {
  cloud::HostSpec spec;
  spec.name = "h";
  spec.vcpus = 32;
  spec.ram_bytes = util::gib(32);
  cloud::Host host(spec);
  host.add_vm(cloud::make_migrating_net_vm("n1", 50e6));
  host.add_vm(cloud::make_migrating_net_vm("n2", 30e6));
  EXPECT_DOUBLE_EQ(host.guest_network_demand(0.0), 80e6);
  host.vm("n1")->suspend();
  EXPECT_DOUBLE_EQ(host.guest_network_demand(0.0), 30e6);
}

struct NetWorld {
  sim::Simulator sim;
  cloud::DataCenter dc;
  std::unique_ptr<migration::MigrationEngine> engine;

  explicit NetWorld(double vm_traffic) {
    cloud::HostSpec h;
    h.vcpus = 32;
    h.ram_bytes = util::gib(32);
    h.name = "src";
    dc.add_host(h);
    h.name = "tgt";
    dc.add_host(h);
    net::LinkSpec link;
    link.wire_rate = util::gbit_per_s(1);
    dc.network().connect("src", "tgt", link);
    dc.host("src")->add_vm(cloud::make_migrating_net_vm("mv", vm_traffic));
    engine = std::make_unique<migration::MigrationEngine>(sim, dc, net::BandwidthModel{});
  }

  migration::MigrationRecord migrate(MigrationType type) {
    engine->migrate("mv", "src", "tgt", type);
    sim.run_to_completion();
    return engine->completed().back();
  }
};

TEST(NetLoad, NonLiveUnaffectedByGuestTraffic) {
  // Non-live migration suspends the VM first; its stream stops, so the
  // transfer runs at full speed regardless of the nominal traffic.
  NetWorld quiet(0.0);
  const auto r_quiet = quiet.migrate(MigrationType::kNonLive);
  NetWorld loud(110e6);
  const auto r_loud = loud.migrate(MigrationType::kNonLive);
  EXPECT_NEAR(r_loud.rounds[0].bandwidth, r_quiet.rounds[0].bandwidth,
              0.01 * r_quiet.rounds[0].bandwidth);
}

TEST(NetLoad, LiveModestTrafficBarelyMatters) {
  NetWorld quiet(0.0);
  const auto r_quiet = quiet.migrate(MigrationType::kLive);
  NetWorld modest(25e6);  // 200 Mbit/s
  const auto r_modest = modest.migrate(MigrationType::kLive);
  // SIII-B: below saturation the impact is small (< 10% here).
  EXPECT_LT(r_modest.times.transfer_duration(),
            1.10 * r_quiet.times.transfer_duration());
}

TEST(NetLoad, LiveSaturationStretchesTransfer) {
  NetWorld quiet(0.0);
  const auto r_quiet = quiet.migrate(MigrationType::kLive);
  NetWorld saturated(117e6);  // at wire payload speed
  const auto r_sat = saturated.migrate(MigrationType::kLive);
  EXPECT_GT(r_sat.times.transfer_duration(), 1.15 * r_quiet.times.transfer_duration());
  EXPECT_LT(r_sat.rounds[0].bandwidth, r_quiet.rounds[0].bandwidth);
}

TEST(NetLoad, GuestTrafficShowsUpInNicActivity) {
  NetWorld w(50e6);
  const power::HostActivity a = w.engine->activity_of(*w.dc.host("src"));
  EXPECT_DOUBLE_EQ(a.nic_bytes_per_s, 50e6);
  EXPECT_FALSE(a.transfer_active);
}

TEST(NetLoad, ScenariosWellFormed) {
  const auto scenarios = exp::netload_vm_scenarios();
  EXPECT_EQ(scenarios.size(), 12u);  // 6 rates x 2 types
  for (const auto& sc : scenarios) {
    EXPECT_EQ(sc.family, exp::Family::kNetLoadVm);
    EXPECT_EQ(sc.migrating, exp::MigratingKind::kNet);
    EXPECT_GE(sc.net_rate, 0.0);
    EXPECT_NE(sc.name.find("NETLOAD-VM"), std::string::npos);
  }
  // The paper's 5-family design is unchanged by the extension.
  EXPECT_EQ(exp::all_scenarios().size(), 42u);
}

TEST(NetLoad, RunnerExecutesNetScenario) {
  exp::ExperimentRunner runner(exp::testbed_m(), exp::RunnerOptions{}, 3);
  runner.set_idle_power_reference(433.0);
  const auto scenarios = exp::netload_vm_scenarios();
  const exp::RunResult run = runner.run(scenarios.back(), 0);  // live, 940 Mbit
  EXPECT_TRUE(run.record.completed);
  EXPECT_GT(run.source_obs.observed_energy(), 0.0);
}

}  // namespace
}  // namespace wavm3
