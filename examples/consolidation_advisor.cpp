// Consolidation advisor: the paper's motivating use-case (SI, SVIII).
//
// A small data centre has an underutilised host. Shutting it down saves
// idle power, but emptying it costs migration energy. This example
// shows how the answer flips with (1) the planning horizon and (2) the
// workload on the VMs being moved — including the paper's SVIII
// warning: a high-dirtying-ratio VM is expensive to consolidate onto a
// CPU-loaded host, which a workload-blind cost model misses.
//
// Build & run:  ./build/examples/consolidation_advisor
#include <cstdio>

#include "cloud/instances.hpp"
#include "consolidation/manager.hpp"
#include "core/planner.hpp"
#include "core/wavm3_model.hpp"
#include "exp/campaign.hpp"
#include "util/units.hpp"

using namespace wavm3;

namespace {

cloud::HostSpec host32(const std::string& name) {
  cloud::HostSpec h;
  h.name = name;
  h.vcpus = 32;
  h.ram_bytes = util::gib(32);
  return h;
}

void report_plans(const char* label, const std::vector<consolidation::ConsolidationPlan>& plans) {
  std::printf("%s\n", label);
  if (plans.empty()) {
    std::puts("  (no underutilised host worth vacating)");
    return;
  }
  for (const auto& p : plans) {
    std::printf("  vacate %-6s: %zu migration(s), cost %.1f kJ, saving %.1f kJ -> net %+.1f kJ %s\n",
                p.vacated_host.c_str(), p.migrations.size(), p.migration_cost_joules / 1e3,
                p.steady_saving_joules / 1e3, p.net_benefit_joules / 1e3,
                p.beneficial ? "[DO IT]" : "[SKIP]");
    for (const auto& m : p.migrations) {
      std::printf("    %-4s -> %-6s  transfer %.1f s, downtime %.2f s, move cost %.2f kJ%s\n",
                  m.vm_id.c_str(), m.target.c_str(), m.forecast.times.transfer_duration(),
                  m.forecast.downtime, m.migration_energy_joules / 1e3,
                  m.forecast.degenerated_to_nonlive ? " (pre-copy will not converge!)" : "");
    }
  }
}

}  // namespace

int main() {
  std::puts("== WAVM3 consolidation advisor ==\n");

  // Fit the model from a reduced simulated campaign.
  const exp::CampaignResult campaign =
      exp::run_campaign(exp::testbed_m(), exp::fast_campaign_options(), 2015);
  core::Wavm3Model model;
  model.fit(campaign.dataset);
  const core::MigrationPlanner planner(model);

  consolidation::HostPowerEstimate host_power;
  host_power.idle_watts = campaign.measured_idle_power;
  host_power.watts_per_vcpu = 12.0;
  const double link_rate = 117.5e6;  // 1 GbE payload

  // --- Scene 1: a lightly loaded host, CPU-bound guests. ---
  {
    cloud::DataCenter dc;
    cloud::Host& a = dc.add_host(host32("hostA"));
    cloud::Host& b = dc.add_host(host32("hostB"));
    dc.add_host(host32("hostC"));
    a.add_vm(cloud::make_load_cpu_vm("web1"));
    a.add_vm(cloud::make_load_cpu_vm("web2"));
    for (int i = 0; i < 3; ++i) b.add_vm(cloud::make_load_cpu_vm("db" + std::to_string(i)));

    consolidation::ConsolidationPolicy policy;
    policy.horizon_seconds = 3600.0;  // one hour
    consolidation::ConsolidationManager mgr(policy, planner, host_power);
    report_plans("\nScene 1a: CPU-bound guests, 1 h horizon:", mgr.plan(dc, link_rate));

    policy.horizon_seconds = 60.0;  // about to redeploy everything anyway
    consolidation::ConsolidationManager eager(policy, planner, host_power);
    report_plans("\nScene 1b: same, but only a 60 s horizon:", eager.plan(dc, link_rate));
  }

  // --- Scene 2: the SVIII warning — a memory-hot VM and busy targets. ---
  {
    cloud::DataCenter dc;
    cloud::Host& a = dc.add_host(host32("hostA"));
    cloud::Host& busy = dc.add_host(host32("busy"));
    cloud::Host& idle = dc.add_host(host32("idle"));
    a.add_vm(cloud::make_migrating_mem_vm("cache", 0.95));  // 95% dirtying ratio
    for (int i = 0; i < 7; ++i) busy.add_vm(cloud::make_load_cpu_vm("b" + std::to_string(i)));

    consolidation::ConsolidationPolicy policy;
    const consolidation::ConsolidationManager mgr(policy, planner, host_power);
    const auto to_busy =
        planner.forecast(mgr.scenario_for(dc, *a.vm("cache"), a, busy, link_rate));
    const auto to_idle =
        planner.forecast(mgr.scenario_for(dc, *a.vm("cache"), a, idle, link_rate));

    std::puts("\nScene 2: where to consolidate a 95%-dirtying-ratio cache VM?");
    std::printf("  -> busy host: %.1f kJ, transfer %.1f s, downtime %.1f s%s\n",
                to_busy.total_energy() / 1e3, to_busy.times.transfer_duration(),
                to_busy.downtime,
                to_busy.degenerated_to_nonlive ? " (degenerates to non-live)" : "");
    std::printf("  -> idle host: %.1f kJ, transfer %.1f s, downtime %.1f s%s\n",
                to_idle.total_energy() / 1e3, to_idle.times.transfer_duration(),
                to_idle.downtime,
                to_idle.degenerated_to_nonlive ? " (degenerates to non-live)" : "");
    std::printf("  WAVM3 exposes the %.1f kJ premium of the busy target; a data-volume-only\n"
                "  model (LIU) would price both moves identically.\n",
                (to_busy.total_energy() - to_idle.total_energy()) / 1e3);
  }
  return 0;
}
