// Data-centre simulation: the paper's SVIII integration, end to end.
//
// A fleet of m-class hosts runs diurnal-profile VMs for a simulated
// day. Three consolidation strategies are compared on total fleet
// energy: never consolidate, consolidate blindly (ignore what the
// migrations cost), and consolidate only when the WAVM3 forecast says
// the moves pay for themselves.
//
// Build & run:  ./build/examples/datacenter_simulation
#include <cstdio>

#include "core/planner.hpp"
#include "core/wavm3_model.hpp"
#include "dcsim/simulation.hpp"
#include "exp/campaign.hpp"

using namespace wavm3;

int main() {
  std::puts("== WAVM3 data-centre simulation: one day, 6 hosts, 16 VMs ==\n");

  // Fit the migration-energy model from a reduced measurement campaign.
  const exp::CampaignResult campaign =
      exp::run_campaign(exp::testbed_m(), exp::fast_campaign_options(), 2015);
  core::Wavm3Model model;
  model.fit(campaign.dataset);
  const core::MigrationPlanner planner(model);

  const auto scenario = [&](dcsim::Strategy strategy) {
    dcsim::DcSimConfig cfg = dcsim::make_fleet_scenario(/*n_hosts=*/6, /*n_vms=*/16,
                                                        /*seed=*/42);
    cfg.duration = 24.0 * 3600.0;
    cfg.controller_interval = 900.0;  // every 15 minutes
    cfg.power_sample_period = 10.0;
    cfg.strategy = strategy;
    cfg.policy.underload_fraction = 0.35;
    cfg.policy.horizon_seconds = 2.0 * 3600.0;
    return cfg;
  };

  std::printf("%-18s %14s %12s %10s %10s %10s %12s\n", "strategy", "energy [kWh]",
              "vs baseline", "migrations", "power-off", "power-on", "downtime [s]");

  double baseline_energy = 0.0;
  for (const dcsim::Strategy strategy :
       {dcsim::Strategy::kNoConsolidation, dcsim::Strategy::kCostBlind,
        dcsim::Strategy::kCostAware}) {
    dcsim::DataCenterSimulation sim(
        scenario(strategy),
        strategy == dcsim::Strategy::kNoConsolidation ? nullptr : &planner);
    const dcsim::DcSimReport report = sim.run();
    const double kwh = report.total_energy_joules / 3.6e6;
    if (strategy == dcsim::Strategy::kNoConsolidation) baseline_energy = kwh;
    std::printf("%-18s %14.2f %11.1f%% %10d %10d %10d %12.1f\n", to_string(strategy), kwh,
                100.0 * (kwh - baseline_energy) / baseline_energy, report.migrations_executed,
                report.power_off_events, report.power_on_events,
                report.total_migration_downtime);
  }

  std::puts("\nThe cost-aware strategy only differs from the blind one when migration\n"
            "energy matters (short horizons, memory-hot VMs) - precisely the regime the\n"
            "paper's workload-aware model was built to expose.");
  return 0;
}
