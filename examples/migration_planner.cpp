// Migration planner: a live-vs-non-live decision matrix.
//
// For a grid of (dirtying ratio, source load) conditions, forecast both
// migration flavours and report energy, duration and downtime — the
// trade-off a scheduler weighs: live migration minimises downtime until
// the dirtying ratio defeats pre-copy (SVI-D), while non-live is cheap
// and predictable but takes the service down for the whole transfer.
//
// Build & run:  ./build/examples/migration_planner
#include <cstdio>

#include "core/planner.hpp"
#include "core/wavm3_model.hpp"
#include "exp/campaign.hpp"
#include "util/units.hpp"

using namespace wavm3;

int main() {
  std::puts("== WAVM3 migration planner: live vs non-live ==\n");

  const exp::CampaignResult campaign =
      exp::run_campaign(exp::testbed_m(), exp::fast_campaign_options(), 2015);
  core::Wavm3Model model;
  model.fit(campaign.dataset);
  const core::MigrationPlanner planner(model);

  const double mem_pages = util::gib(4) / util::kPageSize;
  std::printf("%-26s | %-34s | %-34s\n", "scenario",
              "LIVE   energy  transfer downtime", "NON-LIVE energy transfer downtime");
  std::printf("%.26s-+-%.36s-+-%.36s\n",
              "----------------------------------------",
              "----------------------------------------",
              "----------------------------------------");

  for (const double dirty_fraction : {0.05, 0.55, 0.95}) {
    for (const double load_fraction : {0.0, 0.5, 1.0}) {
      core::MigrationScenario sc;
      sc.vm_mem_bytes = util::gib(4);
      sc.vm_cpu_vcpus = 1.0;
      sc.vm_working_set_pages = dirty_fraction * mem_pages;
      sc.vm_dirty_pages_per_s = 300000.0;
      sc.source_cpu_load = load_fraction * 32.0;

      sc.type = migration::MigrationType::kLive;
      const core::MigrationForecast live = planner.forecast(sc);
      sc.type = migration::MigrationType::kNonLive;
      const core::MigrationForecast nonlive = planner.forecast(sc);

      std::printf("DR %3.0f%%, source load %3.0f%% | %6.1f kJ %7.1f s %7.2f s%s | "
                  "%6.1f kJ %7.1f s %7.2f s\n",
                  dirty_fraction * 100, load_fraction * 100, live.total_energy() / 1e3,
                  live.times.transfer_duration(), live.downtime,
                  live.degenerated_to_nonlive ? "*" : " ", nonlive.total_energy() / 1e3,
                  nonlive.times.transfer_duration(), nonlive.downtime);
    }
  }
  std::puts("\n(*) pre-copy does not converge: the live migration degenerates into a\n"
            "    suspend-and-copy, costing extra transfer energy without the downtime\n"
            "    benefit - the regime the paper's SVI-D/SVIII discussion warns about.");
  return 0;
}
