// Trace explorer: run one fully instrumented migration and dump the
// power + feature trace as CSV (stdout), for plotting or inspection.
//
// Usage:
//   ./build/examples/trace_explorer [live|nonlive] [cpu|mem] [src_vms] [tgt_vms] [seed]
// Defaults: live mem 0 0 7
// Columns: time, source/target power, CPU(S), CPU(T), CPU(v), DR, BW, phase.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <iostream>

#include "exp/runner.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"

using namespace wavm3;

int main(int argc, char** argv) {
  const bool live = argc > 1 ? std::strcmp(argv[1], "nonlive") != 0 : true;
  const bool mem = argc > 2 ? std::strcmp(argv[2], "cpu") != 0 : true;
  const int src_vms = argc > 3 ? std::atoi(argv[3]) : 0;
  const int tgt_vms = argc > 4 ? std::atoi(argv[4]) : 0;
  const auto seed = static_cast<std::uint64_t>(argc > 5 ? std::atoll(argv[5]) : 7);

  exp::ScenarioConfig sc;
  sc.name = "trace-explorer";
  sc.type = live ? migration::MigrationType::kLive : migration::MigrationType::kNonLive;
  sc.migrating = mem ? exp::MigratingKind::kMem : exp::MigratingKind::kCpu;
  sc.mem_fraction = 0.95;
  sc.source_load_vms = src_vms;
  sc.target_load_vms = tgt_vms;

  exp::ExperimentRunner runner(exp::testbed_m(), exp::RunnerOptions{}, seed);
  runner.set_idle_power_reference(433.0);
  const exp::RunResult run = runner.run(sc, 0);

  std::fprintf(stderr,
               "# %s migration of a %s VM (src load %d VMs, tgt load %d VMs)\n"
               "# ms=%.1f ts=%.1f te=%.1f me=%.1f  data=%.2f GB  downtime=%.2f s%s\n",
               migration::to_string(run.record.type), mem ? "memory-hot" : "CPU-bound",
               src_vms, tgt_vms, run.record.times.ms, run.record.times.ts,
               run.record.times.te, run.record.times.me, run.record.total_bytes / 1e9,
               run.record.downtime,
               run.record.degenerated_to_nonlive ? "  [degenerated to non-live]" : "");

  util::CsvWriter csv(std::cout);
  csv.header({"time_s", "power_source_w", "power_target_w", "cpu_source_vcpus",
              "cpu_target_vcpus", "cpu_vm_vcpus", "dirty_ratio", "bandwidth_mbs", "phase"});
  // The two observations are time-aligned; pair them up.
  const auto& src = run.source_obs.samples;
  const auto& tgt = run.target_obs.samples;
  for (std::size_t i = 0; i < src.size() && i < tgt.size(); ++i) {
    csv.row_text({util::fmt_fixed(src[i].time, 2), util::fmt_fixed(src[i].power_watts, 1),
                  util::fmt_fixed(tgt[i].power_watts, 1),
                  util::fmt_fixed(src[i].cpu_host, 2), util::fmt_fixed(tgt[i].cpu_host, 2),
                  util::fmt_fixed(src[i].cpu_vm + tgt[i].cpu_vm, 2),
                  util::fmt_fixed(src[i].dirty_ratio, 4),
                  util::fmt_fixed(src[i].bandwidth / 1e6, 2),
                  migration::to_string(src[i].phase)});
  }
  return 0;
}
