// Calibrating WAVM3 for new hardware (the paper's SVI-F workflow).
//
// You trained WAVM3 on one machine pair (m01-m02). A new rack arrives
// (o1-o2: different CPUs, different idle draw). This example shows the
// three options, from cheapest to most accurate:
//   1. use the m-trained model as-is          -> systematic overestimate
//   2. apply the C2 idle-bias correction      -> paper's SVI-F fix
//   3. run a fresh campaign on o1-o2 and refit -> full recalibration
//
// Build & run:  ./build/examples/calibrate_new_hardware
#include <cstdio>

#include "core/calibration.hpp"
#include "core/wavm3_model.hpp"
#include "exp/campaign.hpp"
#include "models/evaluation.hpp"

using namespace wavm3;

namespace {

void report(const char* label, const std::vector<models::EvaluationRow>& rows) {
  std::printf("%-38s", label);
  for (const auto& r : rows) std::printf("  %5.1f%%", r.metrics.nrmse * 100);
  std::printf("\n");
}

}  // namespace

int main() {
  std::puts("== WAVM3 cross-hardware calibration ==\n");

  const exp::CampaignOptions options = exp::fast_campaign_options();
  const exp::CampaignResult campaign_m = exp::run_campaign(exp::testbed_m(), options, 2015);
  const exp::CampaignResult campaign_o = exp::run_campaign(exp::testbed_o(), options, 2016);

  std::printf("measured idle power: m01-m02 = %.1f W, o1-o2 = %.1f W (delta %.1f W)\n\n",
              campaign_m.measured_idle_power, campaign_o.measured_idle_power,
              campaign_m.measured_idle_power - campaign_o.measured_idle_power);

  const auto [train_m, test_m] = campaign_m.dataset.split_stratified(0.34, 7);
  const auto [train_o, test_o] = campaign_o.dataset.split_stratified(0.34, 7);

  // Option 1: raw transfer.
  core::Wavm3Model raw;
  raw.fit(train_m);
  // Option 2: bias-corrected transfer (C2 = C1 - idle delta).
  core::Wavm3Model corrected;
  corrected.fit(train_m);
  core::transfer_bias(corrected, train_m, campaign_o.dataset);
  // Option 3: native refit on o1-o2.
  core::Wavm3Model native;
  native.fit(train_o);

  std::puts("NRMSE on the o1-o2 test set, per (type, role) slice:");
  std::printf("%-38s  %6s  %6s  %6s  %6s\n", "", "nl/src", "nl/tgt", "lv/src", "lv/tgt");
  report("1. m-trained, no correction", models::evaluate_model(raw, test_o));
  report("2. m-trained + C2 bias (paper SVI-F)", models::evaluate_model(corrected, test_o));
  report("3. refit natively on o1-o2", models::evaluate_model(native, test_o));

  std::puts("\nThe C2 correction removes the systematic offset for the cost of one idle\n"
            "measurement; a native refit additionally adapts the per-vCPU slope.");
  return 0;
}
