// Quickstart: the 60-second tour of the WAVM3 library.
//
//   1. Run a (reduced) measurement campaign on the simulated m01-m02
//      testbed — power-metered VM migrations under varied load.
//   2. Fit the WAVM3 energy model on a training split.
//   3. Predict the energy of a *planned* migration with the closed-form
//      planner, before running it.
//   4. Check the prediction against a fresh simulated migration.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/planner.hpp"
#include "core/wavm3_model.hpp"
#include "exp/campaign.hpp"
#include "models/evaluation.hpp"
#include "util/units.hpp"

using namespace wavm3;

int main() {
  std::puts("== WAVM3 quickstart ==\n");

  // 1. Measure: a reduced campaign (extreme sweep points, 3 runs each).
  const exp::Testbed testbed = exp::testbed_m();
  const exp::CampaignOptions options = exp::fast_campaign_options();
  const exp::CampaignResult campaign = exp::run_campaign(testbed, options, /*seed=*/2015);
  std::printf("campaign: %zu scenarios, %zu observations, measured idle %.1f W\n",
              campaign.summaries.size(), campaign.dataset.size(),
              campaign.measured_idle_power);

  // 2. Fit WAVM3 on a stratified training split.
  const auto [train, test] = campaign.dataset.split_stratified(0.34, /*seed=*/7);
  core::Wavm3Model model;
  model.fit(train);
  const auto rows = models::evaluate_model(model, test);
  for (const auto& r : rows) {
    std::printf("held-out accuracy [%-8s %-6s]: NRMSE %.1f%%  (n=%zu migrations)\n",
                migration::to_string(r.type), models::to_string(r.role),
                r.metrics.nrmse * 100, r.n_migrations);
  }

  // 3. Plan: how much energy would migrating this VM cost right now?
  core::MigrationScenario plan;
  plan.type = migration::MigrationType::kLive;
  plan.vm_mem_bytes = util::gib(4);
  plan.vm_cpu_vcpus = 4.0;             // CPU-bound guest
  plan.vm_dirty_pages_per_s = 64.0;    // barely dirties memory
  plan.vm_working_set_pages = 4096.0;
  plan.source_cpu_load = 16.0;         // half-loaded source
  plan.target_cpu_load = 0.0;          // idle target
  const core::MigrationPlanner planner(model);
  const core::MigrationForecast fc = planner.forecast(plan);

  std::printf("\nplanned live migration of a 4 GB / 4 vCPU guest (half-loaded source):\n");
  std::printf("  transfer %.1f s at %.1f MB/s, %d pre-copy rounds, downtime %.2f s\n",
              fc.times.transfer_duration(), fc.bandwidth / 1e6, fc.precopy_rounds,
              fc.downtime);
  std::printf("  predicted energy: source %.1f kJ + target %.1f kJ = %.1f kJ\n",
              fc.source_energy / 1e3, fc.target_energy / 1e3, fc.total_energy() / 1e3);

  // 4. Verify against one fresh simulated migration at the same load.
  exp::RunnerOptions runner_options;
  exp::ExperimentRunner runner(testbed, runner_options, /*seed=*/99);
  runner.set_idle_power_reference(campaign.measured_idle_power);
  exp::ScenarioConfig sc;
  sc.name = "quickstart-check";
  sc.family = exp::Family::kCpuLoadSource;
  sc.type = migration::MigrationType::kLive;
  sc.migrating = exp::MigratingKind::kCpu;
  sc.source_load_vms = 4;  // 16 vCPUs of load
  const exp::RunResult run = runner.run(sc, 0);
  const double measured =
      run.source_obs.observed_energy() + run.target_obs.observed_energy();
  std::printf("  measured on a fresh run:  %.1f kJ  (prediction off by %.1f%%)\n",
              measured / 1e3, 100.0 * (fc.total_energy() - measured) / measured);
  return 0;
}
