// Real workload kernels: the library's workload *models* (matrixmult,
// pagedirtier) describe resource signatures; this example runs the
// actual computations they are named after, measures their rates on
// this machine, and builds the corresponding workload models from the
// measurements — closing the loop between "a program" and "a resource
// signature the energy model understands".
//
// Build & run:  ./build/examples/real_workloads
#include <chrono>
#include <cstdio>

#include "util/units.hpp"
#include "workloads/matrixmult.hpp"
#include "workloads/pagedirtier.hpp"

using namespace wavm3;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main() {
  std::puts("== Real workload kernels ==\n");

  // --- matrixmult: the paper's CPU-intensive load (SV-A.1). ---
  {
    const std::size_t n = 256;
    const auto t0 = Clock::now();
    const double checksum1 = workloads::run_real_matrixmult(n, 1);
    const double t1_thread = seconds_since(t0);

    const auto t2 = Clock::now();
    const double checksum2 = workloads::run_real_matrixmult(n, 2);
    const double t2_threads = seconds_since(t2);

    const double speedup = t1_thread / t2_threads;
    const double flops = 2.0 * n * n * n;
    std::printf("matrixmult %zux%zu:\n", n, n);
    std::printf("  1 thread : %.3f s  (%.2f GFLOP/s)\n", t1_thread, flops / t1_thread / 1e9);
    std::printf("  2 threads: %.3f s  (speedup %.2fx, checksums agree: %s)\n", t2_threads,
                speedup, checksum1 == checksum2 ? "yes" : "NO");

    // Build the model with the measured parallel efficiency.
    workloads::MatrixMultParams params;
    params.threads = 2;
    params.efficiency = std::min(1.0, speedup / 2.0);
    const workloads::MatrixMultWorkload model(params);
    std::printf("  -> model: cpu_demand = %.2f vCPUs, dirtying %.0f pages/s\n\n",
                model.cpu_demand(0.0), model.dirty_page_rate(0.0));
  }

  // --- pagedirtier: the paper's memory-intensive load (SV-A.2). ---
  {
    const std::uint64_t pages = 16384;  // 64 MiB buffer
    const std::uint64_t iterations = 40;
    const auto t0 = Clock::now();
    const std::uint64_t writes = workloads::run_real_pagedirtier(pages, iterations);
    const double elapsed = seconds_since(t0);
    const double pages_per_s = static_cast<double>(writes) / elapsed;

    std::printf("pagedirtier over %.0f MiB:\n",
                static_cast<double>(pages) * util::kPageSize / (1 << 20));
    std::printf("  %llu random page writes in %.3f s = %.0f pages/s (%.2f GB/s dirty traffic)\n",
                static_cast<unsigned long long>(writes), elapsed, pages_per_s,
                pages_per_s * util::kPageSize / 1e9);

    workloads::PageDirtierParams params;
    params.dirty_pages_per_s = pages_per_s;
    params.allocated_pages = pages;
    params.memory_fraction = 1.0;
    const workloads::PageDirtierWorkload model(params);
    std::printf("  -> model: working set %llu pages, dirty rate %.0f pages/s\n",
                static_cast<unsigned long long>(model.working_set_pages()),
                model.dirty_page_rate(0.0));
    std::printf("  pre-copy implication: with bandwidth ~110 MB/s (~28000 pages/s), a VM\n"
                "  running this dirtier %s converge.\n",
                pages_per_s > 28000.0 ? "will NOT" : "will");
  }
  return 0;
}
