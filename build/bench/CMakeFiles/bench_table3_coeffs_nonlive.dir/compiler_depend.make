# Empty compiler generated dependencies file for bench_table3_coeffs_nonlive.
# This may be replaced when dependencies are built.
