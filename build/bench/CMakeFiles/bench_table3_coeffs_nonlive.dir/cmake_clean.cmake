file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_coeffs_nonlive.dir/bench_table3_coeffs_nonlive.cpp.o"
  "CMakeFiles/bench_table3_coeffs_nonlive.dir/bench_table3_coeffs_nonlive.cpp.o.d"
  "bench_table3_coeffs_nonlive"
  "bench_table3_coeffs_nonlive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_coeffs_nonlive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
