file(REMOVE_RECURSE
  "CMakeFiles/bench_multivm_extension.dir/bench_multivm_extension.cpp.o"
  "CMakeFiles/bench_multivm_extension.dir/bench_multivm_extension.cpp.o.d"
  "bench_multivm_extension"
  "bench_multivm_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multivm_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
