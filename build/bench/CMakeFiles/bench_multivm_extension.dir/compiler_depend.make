# Empty compiler generated dependencies file for bench_multivm_extension.
# This may be replaced when dependencies are built.
