file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_cpuload_target.dir/bench_fig4_cpuload_target.cpp.o"
  "CMakeFiles/bench_fig4_cpuload_target.dir/bench_fig4_cpuload_target.cpp.o.d"
  "bench_fig4_cpuload_target"
  "bench_fig4_cpuload_target.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_cpuload_target.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
