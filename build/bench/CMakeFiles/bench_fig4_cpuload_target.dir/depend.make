# Empty dependencies file for bench_fig4_cpuload_target.
# This may be replaced when dependencies are built.
