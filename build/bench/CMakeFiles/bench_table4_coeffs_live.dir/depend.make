# Empty dependencies file for bench_table4_coeffs_live.
# This may be replaced when dependencies are built.
