file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_coeffs_live.dir/bench_table4_coeffs_live.cpp.o"
  "CMakeFiles/bench_table4_coeffs_live.dir/bench_table4_coeffs_live.cpp.o.d"
  "bench_table4_coeffs_live"
  "bench_table4_coeffs_live.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_coeffs_live.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
