# Empty compiler generated dependencies file for bench_netload_extension.
# This may be replaced when dependencies are built.
