file(REMOVE_RECURSE
  "CMakeFiles/bench_netload_extension.dir/bench_netload_extension.cpp.o"
  "CMakeFiles/bench_netload_extension.dir/bench_netload_extension.cpp.o.d"
  "bench_netload_extension"
  "bench_netload_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_netload_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
