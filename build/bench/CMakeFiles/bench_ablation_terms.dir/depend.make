# Empty dependencies file for bench_ablation_terms.
# This may be replaced when dependencies are built.
