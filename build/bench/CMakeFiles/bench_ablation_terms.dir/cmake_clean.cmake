file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_terms.dir/bench_ablation_terms.cpp.o"
  "CMakeFiles/bench_ablation_terms.dir/bench_ablation_terms.cpp.o.d"
  "bench_ablation_terms"
  "bench_ablation_terms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_terms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
