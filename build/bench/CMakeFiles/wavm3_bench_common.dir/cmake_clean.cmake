file(REMOVE_RECURSE
  "CMakeFiles/wavm3_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/wavm3_bench_common.dir/bench_common.cpp.o.d"
  "libwavm3_bench_common.a"
  "libwavm3_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavm3_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
