# Empty compiler generated dependencies file for wavm3_bench_common.
# This may be replaced when dependencies are built.
