file(REMOVE_RECURSE
  "libwavm3_bench_common.a"
)
