# Empty compiler generated dependencies file for bench_fig3_cpuload_source.
# This may be replaced when dependencies are built.
