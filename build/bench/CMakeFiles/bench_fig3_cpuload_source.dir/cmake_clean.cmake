file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_cpuload_source.dir/bench_fig3_cpuload_source.cpp.o"
  "CMakeFiles/bench_fig3_cpuload_source.dir/bench_fig3_cpuload_source.cpp.o.d"
  "bench_fig3_cpuload_source"
  "bench_fig3_cpuload_source.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_cpuload_source.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
