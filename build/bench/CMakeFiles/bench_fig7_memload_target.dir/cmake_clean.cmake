file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_memload_target.dir/bench_fig7_memload_target.cpp.o"
  "CMakeFiles/bench_fig7_memload_target.dir/bench_fig7_memload_target.cpp.o.d"
  "bench_fig7_memload_target"
  "bench_fig7_memload_target.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_memload_target.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
