# Empty dependencies file for bench_fig7_memload_target.
# This may be replaced when dependencies are built.
