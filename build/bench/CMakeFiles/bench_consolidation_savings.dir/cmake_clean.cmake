file(REMOVE_RECURSE
  "CMakeFiles/bench_consolidation_savings.dir/bench_consolidation_savings.cpp.o"
  "CMakeFiles/bench_consolidation_savings.dir/bench_consolidation_savings.cpp.o.d"
  "bench_consolidation_savings"
  "bench_consolidation_savings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_consolidation_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
