# Empty dependencies file for bench_consolidation_savings.
# This may be replaced when dependencies are built.
