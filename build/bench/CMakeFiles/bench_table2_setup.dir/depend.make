# Empty dependencies file for bench_table2_setup.
# This may be replaced when dependencies are built.
