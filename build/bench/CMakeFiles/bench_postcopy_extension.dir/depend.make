# Empty dependencies file for bench_postcopy_extension.
# This may be replaced when dependencies are built.
