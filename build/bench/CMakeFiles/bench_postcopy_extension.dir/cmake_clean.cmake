file(REMOVE_RECURSE
  "CMakeFiles/bench_postcopy_extension.dir/bench_postcopy_extension.cpp.o"
  "CMakeFiles/bench_postcopy_extension.dir/bench_postcopy_extension.cpp.o.d"
  "bench_postcopy_extension"
  "bench_postcopy_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_postcopy_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
