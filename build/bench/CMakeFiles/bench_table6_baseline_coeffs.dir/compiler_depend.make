# Empty compiler generated dependencies file for bench_table6_baseline_coeffs.
# This may be replaced when dependencies are built.
