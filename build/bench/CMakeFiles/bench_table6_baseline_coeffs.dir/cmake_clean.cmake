file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_baseline_coeffs.dir/bench_table6_baseline_coeffs.cpp.o"
  "CMakeFiles/bench_table6_baseline_coeffs.dir/bench_table6_baseline_coeffs.cpp.o.d"
  "bench_table6_baseline_coeffs"
  "bench_table6_baseline_coeffs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_baseline_coeffs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
