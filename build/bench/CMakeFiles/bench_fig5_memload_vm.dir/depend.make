# Empty dependencies file for bench_fig5_memload_vm.
# This may be replaced when dependencies are built.
