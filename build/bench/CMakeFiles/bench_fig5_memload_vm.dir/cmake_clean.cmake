file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_memload_vm.dir/bench_fig5_memload_vm.cpp.o"
  "CMakeFiles/bench_fig5_memload_vm.dir/bench_fig5_memload_vm.cpp.o.d"
  "bench_fig5_memload_vm"
  "bench_fig5_memload_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_memload_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
