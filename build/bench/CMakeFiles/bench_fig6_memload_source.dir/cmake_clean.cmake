file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_memload_source.dir/bench_fig6_memload_source.cpp.o"
  "CMakeFiles/bench_fig6_memload_source.dir/bench_fig6_memload_source.cpp.o.d"
  "bench_fig6_memload_source"
  "bench_fig6_memload_source.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_memload_source.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
