# Empty dependencies file for bench_fig6_memload_source.
# This may be replaced when dependencies are built.
