file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_nrmse.dir/bench_table5_nrmse.cpp.o"
  "CMakeFiles/bench_table5_nrmse.dir/bench_table5_nrmse.cpp.o.d"
  "bench_table5_nrmse"
  "bench_table5_nrmse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_nrmse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
