# Empty dependencies file for bench_table5_nrmse.
# This may be replaced when dependencies are built.
