file(REMOVE_RECURSE
  "CMakeFiles/bench_trace_overlay.dir/bench_trace_overlay.cpp.o"
  "CMakeFiles/bench_trace_overlay.dir/bench_trace_overlay.cpp.o.d"
  "bench_trace_overlay"
  "bench_trace_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trace_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
