# Empty dependencies file for bench_trace_overlay.
# This may be replaced when dependencies are built.
