# gnuplot script for fig4_nonlive_target (run: gnuplot -p fig4_nonlive_target.gp)
set datafile separator ','
set key autotitle columnhead outside
set title 'CPULOAD-TARGET, non-live migration, target host (m01-m02)'
set xlabel 'TIME [sec]'
set ylabel 'POWER [W]'
set yrange [405.3:963.7]
plot for [i=2:7] 'fig4_nonlive_target.csv' using 1:i with lines
