# gnuplot script for fig3_live_target (run: gnuplot -p fig3_live_target.gp)
set datafile separator ','
set key autotitle columnhead outside
set title 'CPULOAD-SOURCE, live migration, target host (m01-m02)'
set xlabel 'TIME [sec]'
set ylabel 'POWER [W]'
set yrange [400.0:900.0]
plot for [i=2:7] 'fig3_live_target.csv' using 1:i with lines
