# gnuplot script for fig3_live_source (run: gnuplot -p fig3_live_source.gp)
set datafile separator ','
set key autotitle columnhead outside
set title 'CPULOAD-SOURCE, live migration, source host (m01-m02)'
set xlabel 'TIME [sec]'
set ylabel 'POWER [W]'
set yrange [419.1:959.3]
plot for [i=2:7] 'fig3_live_source.csv' using 1:i with lines
