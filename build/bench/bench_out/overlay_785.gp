# gnuplot script for overlay_785 (run: gnuplot -p overlay_785.gp)
set datafile separator ','
set key autotitle columnhead outside
set title 'MEMLOAD-VM/95%/live, source host: measured vs predicted'
set xlabel 'TIME [sec]'
set ylabel 'POWER [W]'
set yrange [420.3:533.5]
plot for [i=2:3] 'overlay_785.csv' using 1:i with lines
