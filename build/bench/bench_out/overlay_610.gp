# gnuplot script for overlay_610 (run: gnuplot -p overlay_610.gp)
set datafile separator ','
set key autotitle columnhead outside
set title 'CPULOAD-SOURCE/8vm/non-live, source host: measured vs predicted'
set xlabel 'TIME [sec]'
set ylabel 'POWER [W]'
set yrange [842.2:939.4]
plot for [i=2:3] 'overlay_610.csv' using 1:i with lines
