# gnuplot script for fig6_live_source (run: gnuplot -p fig6_live_source.gp)
set datafile separator ','
set key autotitle columnhead outside
set title 'MEMLOAD-SOURCE, live migration, source host (m01-m02)'
set xlabel 'TIME [sec]'
set ylabel 'POWER [W]'
set yrange [413.9:992.2]
plot for [i=2:7] 'fig6_live_source.csv' using 1:i with lines
