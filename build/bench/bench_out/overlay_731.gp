# gnuplot script for overlay_731 (run: gnuplot -p overlay_731.gp)
set datafile separator ','
set key autotitle columnhead outside
set title 'CPULOAD-SOURCE/5vm/live, source host: measured vs predicted'
set xlabel 'TIME [sec]'
set ylabel 'POWER [W]'
set yrange [692.1:874.4]
plot for [i=2:3] 'overlay_731.csv' using 1:i with lines
