# gnuplot script for fig3_nonlive_source (run: gnuplot -p fig3_nonlive_source.gp)
set datafile separator ','
set key autotitle columnhead outside
set title 'CPULOAD-SOURCE, non-live migration, source host (m01-m02)'
set xlabel 'TIME [sec]'
set ylabel 'POWER [W]'
set yrange [416.4:957.6]
plot for [i=2:7] 'fig3_nonlive_source.csv' using 1:i with lines
