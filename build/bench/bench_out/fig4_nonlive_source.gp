# gnuplot script for fig4_nonlive_source (run: gnuplot -p fig4_nonlive_source.gp)
set datafile separator ','
set key autotitle columnhead outside
set title 'CPULOAD-TARGET, non-live migration, source host (m01-m02)'
set xlabel 'TIME [sec]'
set ylabel 'POWER [W]'
set yrange [400.0:900.0]
plot for [i=2:7] 'fig4_nonlive_source.csv' using 1:i with lines
