# gnuplot script for fig7_live_source (run: gnuplot -p fig7_live_source.gp)
set datafile separator ','
set key autotitle columnhead outside
set title 'MEMLOAD-TARGET, live migration, source host (m01-m02)'
set xlabel 'TIME [sec]'
set ylabel 'POWER [W]'
set yrange [400.0:900.0]
plot for [i=2:7] 'fig7_live_source.csv' using 1:i with lines
