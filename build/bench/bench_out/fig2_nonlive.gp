# gnuplot script for fig2_nonlive (run: gnuplot -p fig2_nonlive.gp)
set datafile separator ','
set key autotitle columnhead outside
set title 'Migration phases: non-live migration, source host (CPULOAD-SOURCE/0vm/non-live)'
set xlabel 'TIME [sec]'
set ylabel 'POWER [W]'
set yrange [429.5:494.2]
plot for [i=2:6] 'fig2_nonlive.csv' using 1:i with lines
