# gnuplot script for fig4_live_target (run: gnuplot -p fig4_live_target.gp)
set datafile separator ','
set key autotitle columnhead outside
set title 'CPULOAD-TARGET, live migration, target host (m01-m02)'
set xlabel 'TIME [sec]'
set ylabel 'POWER [W]'
set yrange [409.4:966.3]
plot for [i=2:7] 'fig4_live_target.csv' using 1:i with lines
