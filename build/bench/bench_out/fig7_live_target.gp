# gnuplot script for fig7_live_target (run: gnuplot -p fig7_live_target.gp)
set datafile separator ','
set key autotitle columnhead outside
set title 'MEMLOAD-TARGET, live migration, target host (m01-m02)'
set xlabel 'TIME [sec]'
set ylabel 'POWER [W]'
set yrange [415.0:966.8]
plot for [i=2:7] 'fig7_live_target.csv' using 1:i with lines
