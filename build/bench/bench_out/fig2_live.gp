# gnuplot script for fig2_live (run: gnuplot -p fig2_live.gp)
set datafile separator ','
set key autotitle columnhead outside
set title 'Migration phases: live migration, source host (CPULOAD-SOURCE/0vm/live)'
set xlabel 'TIME [sec]'
set ylabel 'POWER [W]'
set yrange [432.4:533.1]
plot for [i=2:6] 'fig2_live.csv' using 1:i with lines
