file(REMOVE_RECURSE
  "CMakeFiles/wavm3_cli.dir/tools/wavm3_cli.cpp.o"
  "CMakeFiles/wavm3_cli.dir/tools/wavm3_cli.cpp.o.d"
  "wavm3"
  "wavm3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavm3_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
