# Empty compiler generated dependencies file for wavm3_cli.
# This may be replaced when dependencies are built.
