# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_workflow "bash" "-c" "set -e; d=\$(mktemp -d); trap 'rm -rf \$d' EXIT;            /root/repo/build/wavm3 campaign --testbed m --fast --seed 5 --out \$d/ds.csv >/dev/null 2>&1;            /root/repo/build/wavm3 fit --dataset \$d/ds.csv --train-fraction 0.34 --out \$d/c.csv >/dev/null;            /root/repo/build/wavm3 predict --coeffs \$d/c.csv --type live --mem-gb 4 --vm-cpu 4 | grep -q 'energy';            /root/repo/build/wavm3 evaluate --dataset \$d/ds.csv --train-fraction 0.34 | grep -q 'WAVM3'")
set_tests_properties(cli_workflow PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;48;add_test;/root/repo/CMakeLists.txt;0;")
subdirs("src")
subdirs("tests")
subdirs("bench")
subdirs("examples")
