file(REMOVE_RECURSE
  "libwavm3_cloud.a"
)
