file(REMOVE_RECURSE
  "CMakeFiles/wavm3_cloud.dir/datacenter.cpp.o"
  "CMakeFiles/wavm3_cloud.dir/datacenter.cpp.o.d"
  "CMakeFiles/wavm3_cloud.dir/host.cpp.o"
  "CMakeFiles/wavm3_cloud.dir/host.cpp.o.d"
  "CMakeFiles/wavm3_cloud.dir/hypervisor.cpp.o"
  "CMakeFiles/wavm3_cloud.dir/hypervisor.cpp.o.d"
  "CMakeFiles/wavm3_cloud.dir/instances.cpp.o"
  "CMakeFiles/wavm3_cloud.dir/instances.cpp.o.d"
  "CMakeFiles/wavm3_cloud.dir/vm.cpp.o"
  "CMakeFiles/wavm3_cloud.dir/vm.cpp.o.d"
  "libwavm3_cloud.a"
  "libwavm3_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavm3_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
