
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloud/datacenter.cpp" "src/cloud/CMakeFiles/wavm3_cloud.dir/datacenter.cpp.o" "gcc" "src/cloud/CMakeFiles/wavm3_cloud.dir/datacenter.cpp.o.d"
  "/root/repo/src/cloud/host.cpp" "src/cloud/CMakeFiles/wavm3_cloud.dir/host.cpp.o" "gcc" "src/cloud/CMakeFiles/wavm3_cloud.dir/host.cpp.o.d"
  "/root/repo/src/cloud/hypervisor.cpp" "src/cloud/CMakeFiles/wavm3_cloud.dir/hypervisor.cpp.o" "gcc" "src/cloud/CMakeFiles/wavm3_cloud.dir/hypervisor.cpp.o.d"
  "/root/repo/src/cloud/instances.cpp" "src/cloud/CMakeFiles/wavm3_cloud.dir/instances.cpp.o" "gcc" "src/cloud/CMakeFiles/wavm3_cloud.dir/instances.cpp.o.d"
  "/root/repo/src/cloud/vm.cpp" "src/cloud/CMakeFiles/wavm3_cloud.dir/vm.cpp.o" "gcc" "src/cloud/CMakeFiles/wavm3_cloud.dir/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wavm3_util.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/wavm3_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wavm3_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
