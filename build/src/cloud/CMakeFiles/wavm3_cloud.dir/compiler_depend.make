# Empty compiler generated dependencies file for wavm3_cloud.
# This may be replaced when dependencies are built.
