# Empty dependencies file for wavm3_consolidation.
# This may be replaced when dependencies are built.
