file(REMOVE_RECURSE
  "libwavm3_consolidation.a"
)
