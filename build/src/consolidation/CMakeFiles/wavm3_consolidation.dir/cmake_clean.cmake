file(REMOVE_RECURSE
  "CMakeFiles/wavm3_consolidation.dir/manager.cpp.o"
  "CMakeFiles/wavm3_consolidation.dir/manager.cpp.o.d"
  "libwavm3_consolidation.a"
  "libwavm3_consolidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavm3_consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
