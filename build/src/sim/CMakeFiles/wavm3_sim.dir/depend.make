# Empty dependencies file for wavm3_sim.
# This may be replaced when dependencies are built.
