file(REMOVE_RECURSE
  "CMakeFiles/wavm3_sim.dir/simulator.cpp.o"
  "CMakeFiles/wavm3_sim.dir/simulator.cpp.o.d"
  "libwavm3_sim.a"
  "libwavm3_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavm3_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
