file(REMOVE_RECURSE
  "libwavm3_sim.a"
)
