# Empty compiler generated dependencies file for wavm3_util.
# This may be replaced when dependencies are built.
