file(REMOVE_RECURSE
  "CMakeFiles/wavm3_util.dir/ascii_chart.cpp.o"
  "CMakeFiles/wavm3_util.dir/ascii_chart.cpp.o.d"
  "CMakeFiles/wavm3_util.dir/csv.cpp.o"
  "CMakeFiles/wavm3_util.dir/csv.cpp.o.d"
  "CMakeFiles/wavm3_util.dir/log.cpp.o"
  "CMakeFiles/wavm3_util.dir/log.cpp.o.d"
  "CMakeFiles/wavm3_util.dir/strings.cpp.o"
  "CMakeFiles/wavm3_util.dir/strings.cpp.o.d"
  "CMakeFiles/wavm3_util.dir/table.cpp.o"
  "CMakeFiles/wavm3_util.dir/table.cpp.o.d"
  "libwavm3_util.a"
  "libwavm3_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavm3_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
