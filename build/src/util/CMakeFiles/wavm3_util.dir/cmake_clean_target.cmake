file(REMOVE_RECURSE
  "libwavm3_util.a"
)
