file(REMOVE_RECURSE
  "libwavm3_exp.a"
)
