# Empty compiler generated dependencies file for wavm3_exp.
# This may be replaced when dependencies are built.
