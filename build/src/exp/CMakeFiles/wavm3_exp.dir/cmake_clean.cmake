file(REMOVE_RECURSE
  "CMakeFiles/wavm3_exp.dir/campaign.cpp.o"
  "CMakeFiles/wavm3_exp.dir/campaign.cpp.o.d"
  "CMakeFiles/wavm3_exp.dir/figures.cpp.o"
  "CMakeFiles/wavm3_exp.dir/figures.cpp.o.d"
  "CMakeFiles/wavm3_exp.dir/runner.cpp.o"
  "CMakeFiles/wavm3_exp.dir/runner.cpp.o.d"
  "CMakeFiles/wavm3_exp.dir/scenario.cpp.o"
  "CMakeFiles/wavm3_exp.dir/scenario.cpp.o.d"
  "CMakeFiles/wavm3_exp.dir/tables.cpp.o"
  "CMakeFiles/wavm3_exp.dir/tables.cpp.o.d"
  "CMakeFiles/wavm3_exp.dir/testbeds.cpp.o"
  "CMakeFiles/wavm3_exp.dir/testbeds.cpp.o.d"
  "libwavm3_exp.a"
  "libwavm3_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavm3_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
