file(REMOVE_RECURSE
  "CMakeFiles/wavm3_core.dir/calibration.cpp.o"
  "CMakeFiles/wavm3_core.dir/calibration.cpp.o.d"
  "CMakeFiles/wavm3_core.dir/coeff_io.cpp.o"
  "CMakeFiles/wavm3_core.dir/coeff_io.cpp.o.d"
  "CMakeFiles/wavm3_core.dir/phase_eval.cpp.o"
  "CMakeFiles/wavm3_core.dir/phase_eval.cpp.o.d"
  "CMakeFiles/wavm3_core.dir/planner.cpp.o"
  "CMakeFiles/wavm3_core.dir/planner.cpp.o.d"
  "CMakeFiles/wavm3_core.dir/wavm3_model.cpp.o"
  "CMakeFiles/wavm3_core.dir/wavm3_model.cpp.o.d"
  "libwavm3_core.a"
  "libwavm3_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavm3_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
