file(REMOVE_RECURSE
  "libwavm3_core.a"
)
