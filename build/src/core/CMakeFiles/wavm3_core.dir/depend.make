# Empty dependencies file for wavm3_core.
# This may be replaced when dependencies are built.
