file(REMOVE_RECURSE
  "CMakeFiles/wavm3_models.dir/dataset.cpp.o"
  "CMakeFiles/wavm3_models.dir/dataset.cpp.o.d"
  "CMakeFiles/wavm3_models.dir/dataset_io.cpp.o"
  "CMakeFiles/wavm3_models.dir/dataset_io.cpp.o.d"
  "CMakeFiles/wavm3_models.dir/energy_model.cpp.o"
  "CMakeFiles/wavm3_models.dir/energy_model.cpp.o.d"
  "CMakeFiles/wavm3_models.dir/evaluation.cpp.o"
  "CMakeFiles/wavm3_models.dir/evaluation.cpp.o.d"
  "CMakeFiles/wavm3_models.dir/huang.cpp.o"
  "CMakeFiles/wavm3_models.dir/huang.cpp.o.d"
  "CMakeFiles/wavm3_models.dir/liu.cpp.o"
  "CMakeFiles/wavm3_models.dir/liu.cpp.o.d"
  "CMakeFiles/wavm3_models.dir/strunk.cpp.o"
  "CMakeFiles/wavm3_models.dir/strunk.cpp.o.d"
  "libwavm3_models.a"
  "libwavm3_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavm3_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
