
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/dataset.cpp" "src/models/CMakeFiles/wavm3_models.dir/dataset.cpp.o" "gcc" "src/models/CMakeFiles/wavm3_models.dir/dataset.cpp.o.d"
  "/root/repo/src/models/dataset_io.cpp" "src/models/CMakeFiles/wavm3_models.dir/dataset_io.cpp.o" "gcc" "src/models/CMakeFiles/wavm3_models.dir/dataset_io.cpp.o.d"
  "/root/repo/src/models/energy_model.cpp" "src/models/CMakeFiles/wavm3_models.dir/energy_model.cpp.o" "gcc" "src/models/CMakeFiles/wavm3_models.dir/energy_model.cpp.o.d"
  "/root/repo/src/models/evaluation.cpp" "src/models/CMakeFiles/wavm3_models.dir/evaluation.cpp.o" "gcc" "src/models/CMakeFiles/wavm3_models.dir/evaluation.cpp.o.d"
  "/root/repo/src/models/huang.cpp" "src/models/CMakeFiles/wavm3_models.dir/huang.cpp.o" "gcc" "src/models/CMakeFiles/wavm3_models.dir/huang.cpp.o.d"
  "/root/repo/src/models/liu.cpp" "src/models/CMakeFiles/wavm3_models.dir/liu.cpp.o" "gcc" "src/models/CMakeFiles/wavm3_models.dir/liu.cpp.o.d"
  "/root/repo/src/models/strunk.cpp" "src/models/CMakeFiles/wavm3_models.dir/strunk.cpp.o" "gcc" "src/models/CMakeFiles/wavm3_models.dir/strunk.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wavm3_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/wavm3_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/migration/CMakeFiles/wavm3_migration.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/wavm3_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/wavm3_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wavm3_net.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/wavm3_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wavm3_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
