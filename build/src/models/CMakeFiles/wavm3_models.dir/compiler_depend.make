# Empty compiler generated dependencies file for wavm3_models.
# This may be replaced when dependencies are built.
