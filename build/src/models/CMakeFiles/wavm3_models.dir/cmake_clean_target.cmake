file(REMOVE_RECURSE
  "libwavm3_models.a"
)
