
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/matrixmult.cpp" "src/workloads/CMakeFiles/wavm3_workloads.dir/matrixmult.cpp.o" "gcc" "src/workloads/CMakeFiles/wavm3_workloads.dir/matrixmult.cpp.o.d"
  "/root/repo/src/workloads/netstream.cpp" "src/workloads/CMakeFiles/wavm3_workloads.dir/netstream.cpp.o" "gcc" "src/workloads/CMakeFiles/wavm3_workloads.dir/netstream.cpp.o.d"
  "/root/repo/src/workloads/pagedirtier.cpp" "src/workloads/CMakeFiles/wavm3_workloads.dir/pagedirtier.cpp.o" "gcc" "src/workloads/CMakeFiles/wavm3_workloads.dir/pagedirtier.cpp.o.d"
  "/root/repo/src/workloads/workload.cpp" "src/workloads/CMakeFiles/wavm3_workloads.dir/workload.cpp.o" "gcc" "src/workloads/CMakeFiles/wavm3_workloads.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wavm3_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
