# Empty compiler generated dependencies file for wavm3_workloads.
# This may be replaced when dependencies are built.
