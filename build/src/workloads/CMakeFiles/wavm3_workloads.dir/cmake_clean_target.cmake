file(REMOVE_RECURSE
  "libwavm3_workloads.a"
)
