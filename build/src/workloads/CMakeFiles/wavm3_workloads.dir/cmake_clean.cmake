file(REMOVE_RECURSE
  "CMakeFiles/wavm3_workloads.dir/matrixmult.cpp.o"
  "CMakeFiles/wavm3_workloads.dir/matrixmult.cpp.o.d"
  "CMakeFiles/wavm3_workloads.dir/netstream.cpp.o"
  "CMakeFiles/wavm3_workloads.dir/netstream.cpp.o.d"
  "CMakeFiles/wavm3_workloads.dir/pagedirtier.cpp.o"
  "CMakeFiles/wavm3_workloads.dir/pagedirtier.cpp.o.d"
  "CMakeFiles/wavm3_workloads.dir/workload.cpp.o"
  "CMakeFiles/wavm3_workloads.dir/workload.cpp.o.d"
  "libwavm3_workloads.a"
  "libwavm3_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavm3_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
