file(REMOVE_RECURSE
  "libwavm3_dcsim.a"
)
