file(REMOVE_RECURSE
  "CMakeFiles/wavm3_dcsim.dir/load_profile.cpp.o"
  "CMakeFiles/wavm3_dcsim.dir/load_profile.cpp.o.d"
  "CMakeFiles/wavm3_dcsim.dir/simulation.cpp.o"
  "CMakeFiles/wavm3_dcsim.dir/simulation.cpp.o.d"
  "CMakeFiles/wavm3_dcsim.dir/traced_workload.cpp.o"
  "CMakeFiles/wavm3_dcsim.dir/traced_workload.cpp.o.d"
  "libwavm3_dcsim.a"
  "libwavm3_dcsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavm3_dcsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
