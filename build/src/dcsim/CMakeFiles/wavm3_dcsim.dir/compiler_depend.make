# Empty compiler generated dependencies file for wavm3_dcsim.
# This may be replaced when dependencies are built.
