file(REMOVE_RECURSE
  "libwavm3_migration.a"
)
