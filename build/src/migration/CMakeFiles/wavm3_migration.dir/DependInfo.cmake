
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/migration/engine.cpp" "src/migration/CMakeFiles/wavm3_migration.dir/engine.cpp.o" "gcc" "src/migration/CMakeFiles/wavm3_migration.dir/engine.cpp.o.d"
  "/root/repo/src/migration/feature_trace.cpp" "src/migration/CMakeFiles/wavm3_migration.dir/feature_trace.cpp.o" "gcc" "src/migration/CMakeFiles/wavm3_migration.dir/feature_trace.cpp.o.d"
  "/root/repo/src/migration/phases.cpp" "src/migration/CMakeFiles/wavm3_migration.dir/phases.cpp.o" "gcc" "src/migration/CMakeFiles/wavm3_migration.dir/phases.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wavm3_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wavm3_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/wavm3_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wavm3_net.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/wavm3_power.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/wavm3_workloads.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
