file(REMOVE_RECURSE
  "CMakeFiles/wavm3_migration.dir/engine.cpp.o"
  "CMakeFiles/wavm3_migration.dir/engine.cpp.o.d"
  "CMakeFiles/wavm3_migration.dir/feature_trace.cpp.o"
  "CMakeFiles/wavm3_migration.dir/feature_trace.cpp.o.d"
  "CMakeFiles/wavm3_migration.dir/phases.cpp.o"
  "CMakeFiles/wavm3_migration.dir/phases.cpp.o.d"
  "libwavm3_migration.a"
  "libwavm3_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavm3_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
