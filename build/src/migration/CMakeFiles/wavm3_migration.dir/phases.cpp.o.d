src/migration/CMakeFiles/wavm3_migration.dir/phases.cpp.o: \
 /root/repo/src/migration/phases.cpp /usr/include/stdc-predef.h \
 /root/repo/src/migration/phases.hpp
