# Empty dependencies file for wavm3_migration.
# This may be replaced when dependencies are built.
