# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("stats")
subdirs("sim")
subdirs("net")
subdirs("cloud")
subdirs("workloads")
subdirs("power")
subdirs("migration")
subdirs("models")
subdirs("core")
subdirs("exp")
subdirs("consolidation")
subdirs("dcsim")
