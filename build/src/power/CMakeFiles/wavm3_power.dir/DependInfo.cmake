
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/host_power_model.cpp" "src/power/CMakeFiles/wavm3_power.dir/host_power_model.cpp.o" "gcc" "src/power/CMakeFiles/wavm3_power.dir/host_power_model.cpp.o.d"
  "/root/repo/src/power/power_meter.cpp" "src/power/CMakeFiles/wavm3_power.dir/power_meter.cpp.o" "gcc" "src/power/CMakeFiles/wavm3_power.dir/power_meter.cpp.o.d"
  "/root/repo/src/power/power_trace.cpp" "src/power/CMakeFiles/wavm3_power.dir/power_trace.cpp.o" "gcc" "src/power/CMakeFiles/wavm3_power.dir/power_trace.cpp.o.d"
  "/root/repo/src/power/stabilization.cpp" "src/power/CMakeFiles/wavm3_power.dir/stabilization.cpp.o" "gcc" "src/power/CMakeFiles/wavm3_power.dir/stabilization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wavm3_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wavm3_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
