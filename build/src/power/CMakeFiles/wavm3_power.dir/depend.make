# Empty dependencies file for wavm3_power.
# This may be replaced when dependencies are built.
