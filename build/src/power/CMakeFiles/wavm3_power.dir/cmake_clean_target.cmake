file(REMOVE_RECURSE
  "libwavm3_power.a"
)
