file(REMOVE_RECURSE
  "CMakeFiles/wavm3_power.dir/host_power_model.cpp.o"
  "CMakeFiles/wavm3_power.dir/host_power_model.cpp.o.d"
  "CMakeFiles/wavm3_power.dir/power_meter.cpp.o"
  "CMakeFiles/wavm3_power.dir/power_meter.cpp.o.d"
  "CMakeFiles/wavm3_power.dir/power_trace.cpp.o"
  "CMakeFiles/wavm3_power.dir/power_trace.cpp.o.d"
  "CMakeFiles/wavm3_power.dir/stabilization.cpp.o"
  "CMakeFiles/wavm3_power.dir/stabilization.cpp.o.d"
  "libwavm3_power.a"
  "libwavm3_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavm3_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
