file(REMOVE_RECURSE
  "CMakeFiles/wavm3_net.dir/bandwidth_model.cpp.o"
  "CMakeFiles/wavm3_net.dir/bandwidth_model.cpp.o.d"
  "CMakeFiles/wavm3_net.dir/link.cpp.o"
  "CMakeFiles/wavm3_net.dir/link.cpp.o.d"
  "CMakeFiles/wavm3_net.dir/topology.cpp.o"
  "CMakeFiles/wavm3_net.dir/topology.cpp.o.d"
  "libwavm3_net.a"
  "libwavm3_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavm3_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
