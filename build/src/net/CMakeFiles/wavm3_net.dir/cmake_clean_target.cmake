file(REMOVE_RECURSE
  "libwavm3_net.a"
)
