# Empty compiler generated dependencies file for wavm3_net.
# This may be replaced when dependencies are built.
