# Empty compiler generated dependencies file for wavm3_stats.
# This may be replaced when dependencies are built.
