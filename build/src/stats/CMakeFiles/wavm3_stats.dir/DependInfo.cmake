
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/convergence.cpp" "src/stats/CMakeFiles/wavm3_stats.dir/convergence.cpp.o" "gcc" "src/stats/CMakeFiles/wavm3_stats.dir/convergence.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/wavm3_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/wavm3_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/diagnostics.cpp" "src/stats/CMakeFiles/wavm3_stats.dir/diagnostics.cpp.o" "gcc" "src/stats/CMakeFiles/wavm3_stats.dir/diagnostics.cpp.o.d"
  "/root/repo/src/stats/linreg.cpp" "src/stats/CMakeFiles/wavm3_stats.dir/linreg.cpp.o" "gcc" "src/stats/CMakeFiles/wavm3_stats.dir/linreg.cpp.o.d"
  "/root/repo/src/stats/lm.cpp" "src/stats/CMakeFiles/wavm3_stats.dir/lm.cpp.o" "gcc" "src/stats/CMakeFiles/wavm3_stats.dir/lm.cpp.o.d"
  "/root/repo/src/stats/matrix.cpp" "src/stats/CMakeFiles/wavm3_stats.dir/matrix.cpp.o" "gcc" "src/stats/CMakeFiles/wavm3_stats.dir/matrix.cpp.o.d"
  "/root/repo/src/stats/metrics.cpp" "src/stats/CMakeFiles/wavm3_stats.dir/metrics.cpp.o" "gcc" "src/stats/CMakeFiles/wavm3_stats.dir/metrics.cpp.o.d"
  "/root/repo/src/stats/resampling.cpp" "src/stats/CMakeFiles/wavm3_stats.dir/resampling.cpp.o" "gcc" "src/stats/CMakeFiles/wavm3_stats.dir/resampling.cpp.o.d"
  "/root/repo/src/stats/split.cpp" "src/stats/CMakeFiles/wavm3_stats.dir/split.cpp.o" "gcc" "src/stats/CMakeFiles/wavm3_stats.dir/split.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wavm3_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
