file(REMOVE_RECURSE
  "CMakeFiles/wavm3_stats.dir/convergence.cpp.o"
  "CMakeFiles/wavm3_stats.dir/convergence.cpp.o.d"
  "CMakeFiles/wavm3_stats.dir/descriptive.cpp.o"
  "CMakeFiles/wavm3_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/wavm3_stats.dir/diagnostics.cpp.o"
  "CMakeFiles/wavm3_stats.dir/diagnostics.cpp.o.d"
  "CMakeFiles/wavm3_stats.dir/linreg.cpp.o"
  "CMakeFiles/wavm3_stats.dir/linreg.cpp.o.d"
  "CMakeFiles/wavm3_stats.dir/lm.cpp.o"
  "CMakeFiles/wavm3_stats.dir/lm.cpp.o.d"
  "CMakeFiles/wavm3_stats.dir/matrix.cpp.o"
  "CMakeFiles/wavm3_stats.dir/matrix.cpp.o.d"
  "CMakeFiles/wavm3_stats.dir/metrics.cpp.o"
  "CMakeFiles/wavm3_stats.dir/metrics.cpp.o.d"
  "CMakeFiles/wavm3_stats.dir/resampling.cpp.o"
  "CMakeFiles/wavm3_stats.dir/resampling.cpp.o.d"
  "CMakeFiles/wavm3_stats.dir/split.cpp.o"
  "CMakeFiles/wavm3_stats.dir/split.cpp.o.d"
  "libwavm3_stats.a"
  "libwavm3_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavm3_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
