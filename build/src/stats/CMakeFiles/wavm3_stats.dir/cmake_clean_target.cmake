file(REMOVE_RECURSE
  "libwavm3_stats.a"
)
