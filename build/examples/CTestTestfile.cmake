# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(smoke_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(smoke_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_consolidation_advisor "/root/repo/build/examples/consolidation_advisor")
set_tests_properties(smoke_consolidation_advisor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_calibrate_new_hardware "/root/repo/build/examples/calibrate_new_hardware")
set_tests_properties(smoke_calibrate_new_hardware PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_migration_planner "/root/repo/build/examples/migration_planner")
set_tests_properties(smoke_migration_planner PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_datacenter_simulation "/root/repo/build/examples/datacenter_simulation")
set_tests_properties(smoke_datacenter_simulation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_real_workloads "/root/repo/build/examples/real_workloads")
set_tests_properties(smoke_real_workloads PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_trace_explorer "/root/repo/build/examples/trace_explorer" "live" "mem" "3" "0" "7")
set_tests_properties(smoke_trace_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
