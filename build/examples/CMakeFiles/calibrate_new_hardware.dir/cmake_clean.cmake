file(REMOVE_RECURSE
  "CMakeFiles/calibrate_new_hardware.dir/calibrate_new_hardware.cpp.o"
  "CMakeFiles/calibrate_new_hardware.dir/calibrate_new_hardware.cpp.o.d"
  "calibrate_new_hardware"
  "calibrate_new_hardware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibrate_new_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
