# Empty compiler generated dependencies file for calibrate_new_hardware.
# This may be replaced when dependencies are built.
