file(REMOVE_RECURSE
  "CMakeFiles/datacenter_simulation.dir/datacenter_simulation.cpp.o"
  "CMakeFiles/datacenter_simulation.dir/datacenter_simulation.cpp.o.d"
  "datacenter_simulation"
  "datacenter_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
