# Empty compiler generated dependencies file for datacenter_simulation.
# This may be replaced when dependencies are built.
