file(REMOVE_RECURSE
  "CMakeFiles/real_workloads.dir/real_workloads.cpp.o"
  "CMakeFiles/real_workloads.dir/real_workloads.cpp.o.d"
  "real_workloads"
  "real_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/real_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
