# Empty dependencies file for real_workloads.
# This may be replaced when dependencies are built.
