file(REMOVE_RECURSE
  "CMakeFiles/consolidation_advisor.dir/consolidation_advisor.cpp.o"
  "CMakeFiles/consolidation_advisor.dir/consolidation_advisor.cpp.o.d"
  "consolidation_advisor"
  "consolidation_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consolidation_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
