# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_cloud[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_migration[1]_include.cmake")
include("/root/repo/build/tests/test_models[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_exp[1]_include.cmake")
include("/root/repo/build/tests/test_consolidation[1]_include.cmake")
include("/root/repo/build/tests/test_dcsim[1]_include.cmake")
include("/root/repo/build/tests/test_netload[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_postcopy[1]_include.cmake")
include("/root/repo/build/tests/test_planner_consistency[1]_include.cmake")
include("/root/repo/build/tests/test_reproduction[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
