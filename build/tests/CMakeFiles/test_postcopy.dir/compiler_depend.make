# Empty compiler generated dependencies file for test_postcopy.
# This may be replaced when dependencies are built.
