file(REMOVE_RECURSE
  "CMakeFiles/test_postcopy.dir/postcopy_test.cpp.o"
  "CMakeFiles/test_postcopy.dir/postcopy_test.cpp.o.d"
  "test_postcopy"
  "test_postcopy.pdb"
  "test_postcopy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_postcopy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
