
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dcsim_test.cpp" "tests/CMakeFiles/test_dcsim.dir/dcsim_test.cpp.o" "gcc" "tests/CMakeFiles/test_dcsim.dir/dcsim_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wavm3_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/wavm3_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wavm3_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wavm3_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/wavm3_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/wavm3_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/wavm3_power.dir/DependInfo.cmake"
  "/root/repo/build/src/migration/CMakeFiles/wavm3_migration.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/wavm3_models.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/wavm3_core.dir/DependInfo.cmake"
  "/root/repo/build/src/exp/CMakeFiles/wavm3_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/consolidation/CMakeFiles/wavm3_consolidation.dir/DependInfo.cmake"
  "/root/repo/build/src/dcsim/CMakeFiles/wavm3_dcsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
