# Empty compiler generated dependencies file for test_netload.
# This may be replaced when dependencies are built.
