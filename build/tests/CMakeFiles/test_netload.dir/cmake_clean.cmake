file(REMOVE_RECURSE
  "CMakeFiles/test_netload.dir/netload_test.cpp.o"
  "CMakeFiles/test_netload.dir/netload_test.cpp.o.d"
  "test_netload"
  "test_netload.pdb"
  "test_netload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
