# Empty compiler generated dependencies file for test_planner_consistency.
# This may be replaced when dependencies are built.
