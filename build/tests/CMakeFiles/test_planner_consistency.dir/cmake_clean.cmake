file(REMOVE_RECURSE
  "CMakeFiles/test_planner_consistency.dir/planner_consistency_test.cpp.o"
  "CMakeFiles/test_planner_consistency.dir/planner_consistency_test.cpp.o.d"
  "test_planner_consistency"
  "test_planner_consistency.pdb"
  "test_planner_consistency[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_planner_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
