// wavm3 — command-line front end to the library, covering the full
// workflow without writing C++:
//
//   wavm3 campaign --testbed m --out data.csv [--fast] [--seed N]
//       Run the measurement campaign on a simulated testbed and save
//       the observation dataset.
//   wavm3 fit --dataset data.csv --out coeffs.csv [--train-fraction F]
//       Fit WAVM3 on a stratified training split and save coefficients.
//   wavm3 evaluate --dataset data.csv [--coeffs coeffs.csv]
//       Evaluate WAVM3 (refit or loaded) plus the HUANG/LIU/STRUNK
//       baselines on the dataset's test split; print Table VII-style
//       rows with bootstrap confidence intervals.
//   wavm3 predict --coeffs coeffs.csv [scenario flags]
//       Forecast duration, downtime, data and energy of a planned
//       migration from saved coefficients.
//   wavm3 trace [scenario flags] [fault flags] [--emit-samples FILE]
//       Run one engine-simulated migration round by round, optionally
//       under injected faults, and print the trajectory and outcome;
//       --emit-samples dumps the 2 Hz per-role sample stream as a
//       dataset CSV.
//   wavm3 stream-replay --dataset data.csv [--observation N]
//       Replay a recorded trace through the live streaming path,
//       printing the revised forecast as samples "arrive", then check
//       the finished stream against the batch prediction.
//   wavm3 tables
//       Reproduce every table of the paper in one run.
//
// Run `wavm3 help` or any subcommand with --help for details.
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <cstring>
#include <future>
#include <stdexcept>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "calib/recalibrator.hpp"
#include "core/calibration.hpp"
#include "dcsim/simulation.hpp"
#include "core/coeff_io.hpp"
#include "core/phase_eval.hpp"
#include "core/planner.hpp"
#include "core/wavm3_model.hpp"
#include "exp/campaign.hpp"
#include "exp/tables.hpp"
#include "faults/fault_plan.hpp"
#include "faults/node_outage.hpp"
#include "migration/engine.hpp"
#include "models/dataset_io.hpp"
#include "models/evaluation.hpp"
#include "models/feature_batch.hpp"
#include "models/huang.hpp"
#include "models/liu.hpp"
#include "models/strunk.hpp"
#include "chaos/executor.hpp"
#include "kernels/kernels.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "plan/fleet.hpp"
#include "plan/planner.hpp"
#include "plan/strategy.hpp"
#include "rpc/fleet.hpp"
#include "rpc/node.hpp"
#include "rpc/transport.hpp"
#include "serve/coeff_store.hpp"
#include "serve/query_stream.hpp"
#include "serve/service.hpp"
#include "serve/sim_backend.hpp"
#include "stream/replay.hpp"
#include "util/rng.hpp"
#include "stats/diagnostics.hpp"
#include "stats/metrics.hpp"
#include "stats/resampling.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace {

using namespace wavm3;

/// Tiny flag parser: --name value pairs plus boolean --name flags.
/// Numeric values are parsed strictly (full consumption, no atof-style
/// silent zeros); malformed values abort with a clear message.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
        std::exit(2);
      }
      key = key.substr(2);
      // The next token is this flag's value unless it is itself a
      // "--flag". A leading single dash (negative number, e.g.
      // `--seed-offset -5`) is a value, not a flag.
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";
      }
    }
  }

  bool has(const std::string& key) const { return values_.count(key) != 0; }
  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double get_double(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    const std::string& s = it->second;
    char* end = nullptr;
    errno = 0;
    const double v = std::strtod(s.c_str(), &end);
    if (s.empty() || end != s.c_str() + s.size() || errno == ERANGE) {
      std::fprintf(stderr, "--%s needs a number, got '%s'\n", key.c_str(), s.c_str());
      std::exit(2);
    }
    return v;
  }
  long get_int(const std::string& key, long fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    const std::string& s = it->second;
    char* end = nullptr;
    errno = 0;
    const long v = std::strtol(s.c_str(), &end, 10);
    if (s.empty() || end != s.c_str() + s.size() || errno == ERANGE) {
      std::fprintf(stderr, "--%s needs an integer, got '%s'\n", key.c_str(), s.c_str());
      std::exit(2);
    }
    return v;
  }
  std::uint64_t get_seed() const {
    const long v = get_int("seed", 2015);
    if (v < 0) {
      std::fprintf(stderr, "--seed must be nonnegative, got %ld\n", v);
      std::exit(2);
    }
    return static_cast<std::uint64_t>(v);
  }

 private:
  std::map<std::string, std::string> values_;
};

exp::Testbed testbed_by_name(const std::string& name) {
  if (name == "m" || name == "m01-m02") return exp::testbed_m();
  if (name == "o" || name == "o1-o2") return exp::testbed_o();
  std::fprintf(stderr, "unknown testbed '%s' (use m or o)\n", name.c_str());
  std::exit(2);
}

int cmd_campaign(const Args& args) {
  const std::string out = args.get("out", "dataset.csv");
  const exp::Testbed testbed = testbed_by_name(args.get("testbed", "m"));
  exp::CampaignOptions options =
      args.has("fast") ? exp::fast_campaign_options() : exp::paper_campaign_options();
  util::set_log_level(util::LogLevel::kInfo);
  const exp::CampaignResult campaign = exp::run_campaign(testbed, options, args.get_seed());
  std::puts(exp::render_campaign_summary(campaign).c_str());
  if (!models::save_dataset_csv(campaign.dataset, out)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %zu observations to %s\n", campaign.dataset.size(), out.c_str());
  return 0;
}

int cmd_fit(const Args& args) {
  const std::string in = args.get("dataset", "dataset.csv");
  const std::string out = args.get("out", "coeffs.csv");
  const models::Dataset dataset = models::load_dataset_csv(in);
  if (dataset.size() == 0) {
    std::fprintf(stderr, "no observations in %s\n", in.c_str());
    return 1;
  }
  const double fraction = args.get_double("train-fraction", 0.2);
  const auto [train, test] = dataset.split_stratified(fraction, args.get_seed());
  core::Wavm3Model model;
  model.fit(train);
  std::printf("fit on %zu observations (%.0f%% stratified split of %zu)\n", train.size(),
              fraction * 100, dataset.size());
  for (const auto type : {migration::MigrationType::kNonLive, migration::MigrationType::kLive}) {
    try {
      std::puts(exp::render_coefficients_table(model, type, 0.0, 0.0,
                                               std::string("Coefficients, ") +
                                                   migration::to_string(type))
                    .c_str());
    } catch (const util::ContractError&) {
      // type absent from the training data
    }
  }
  if (!core::save_coefficients_csv(model, out)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote coefficients to %s\n", out.c_str());
  return 0;
}

int cmd_evaluate(const Args& args) {
  const std::string in = args.get("dataset", "dataset.csv");
  const models::Dataset dataset = models::load_dataset_csv(in);
  if (dataset.size() == 0) {
    std::fprintf(stderr, "no observations in %s\n", in.c_str());
    return 1;
  }
  const auto [train, test] = dataset.split_stratified(
      args.get_double("train-fraction", 0.2), args.get_seed());

  core::Wavm3Model wavm3;
  if (args.has("coeffs")) {
    wavm3 = core::load_coefficients_csv(args.get("coeffs", ""));
    if (!wavm3.is_fitted()) {
      std::fprintf(stderr, "could not load coefficients\n");
      return 1;
    }
  } else {
    wavm3.fit(train);
  }
  models::HuangModel huang;
  huang.fit(train);
  models::LiuModel liu;
  liu.fit(train);
  models::StrunkModel strunk;
  strunk.fit(train);

  const auto rows = models::evaluate_models({&wavm3, &huang, &liu, &strunk}, test);
  std::puts(exp::render_table7_comparison(rows).c_str());

  // Bootstrap CI on WAVM3's headline NRMSE per slice.
  std::puts("WAVM3 NRMSE with 95% bootstrap confidence intervals:");
  for (const auto type : {migration::MigrationType::kNonLive, migration::MigrationType::kLive}) {
    for (const auto role : {models::HostRole::kSource, models::HostRole::kTarget}) {
      const auto slice = test.select(type, role);
      if (slice.size() < 5) continue;
      std::vector<double> predicted;
      std::vector<double> observed;
      for (const auto* obs : slice) {
        predicted.push_back(wavm3.predict_energy(*obs));
        observed.push_back(obs->observed_energy());
      }
      const auto ci = stats::bootstrap_metric_ci(
          predicted, observed,
          [](const std::vector<double>& p, const std::vector<double>& o) {
            return stats::nrmse(p, o);
          },
          800, 0.95, args.get_seed());
      std::printf("  %-9s %-6s : %5.1f%%  [%5.1f%%, %5.1f%%]  (n=%zu)\n",
                  migration::to_string(type), models::to_string(role), ci.point * 100,
                  ci.lower * 100, ci.upper * 100, slice.size());
    }
  }

  // Residual diagnostics on the time-ordered per-sample power residuals
  // of the longest test migration: systematic structure here would mean
  // the phase models are missing a regressor.
  const models::MigrationObservation* longest = nullptr;
  for (const auto& obs : test.observations) {
    if (longest == nullptr || obs.samples.size() > longest->samples.size()) longest = &obs;
  }
  if (longest != nullptr && longest->samples.size() >= 10) {
    std::vector<double> p;
    std::vector<double> o;
    for (const auto& s : longest->samples) {
      p.push_back(wavm3.predict_power(longest->type, longest->role, s));
      o.push_back(s.power_watts);
    }
    const stats::ResidualDiagnostics d = stats::residual_diagnostics(p, o);
    std::printf("\npower-residual diagnostics (%s, %s, %zu samples):\n"
                "  mean %+.1f W, sd %.1f W, skew %+.2f, Durbin-Watson %.2f, "
                "lag-1 autocorr %+.2f\n",
                longest->experiment.c_str(), models::to_string(longest->role),
                longest->samples.size(), d.mean, d.stddev, d.skew, d.durbin_watson,
                d.lag1_autocorr);
  }
  return 0;
}

/// Scenario flags shared by `predict` and `trace`.
core::MigrationScenario scenario_from_args(const Args& args) {
  core::MigrationScenario sc;
  const std::string type = args.get("type", "live");
  if (type == "live") {
    sc.type = migration::MigrationType::kLive;
  } else if (type == "nonlive") {
    sc.type = migration::MigrationType::kNonLive;
  } else if (type == "postcopy") {
    sc.type = migration::MigrationType::kPostCopy;
  } else {
    std::fprintf(stderr, "unknown --type '%s' (expected live|nonlive|postcopy)\n",
                 type.c_str());
    std::exit(2);
  }
  sc.vm_mem_bytes = util::gib(args.get_double("mem-gb", 4.0));
  sc.vm_cpu_vcpus = args.get_double("vm-cpu", 1.0);
  sc.vm_dirty_pages_per_s = args.get_double("dirty-pages-per-s", 0.0);
  sc.vm_working_set_pages =
      args.get_double("working-set-fraction", 0.0) * sc.vm_mem_bytes / util::kPageSize;
  sc.source_cpu_load = args.get_double("source-load", 0.0);
  sc.target_cpu_load = args.get_double("target-load", 0.0);
  sc.source_cpu_capacity = args.get_double("capacity", 32.0);
  sc.target_cpu_capacity = sc.source_cpu_capacity;
  sc.link_payload_rate = args.get_double("link-mbs", 117.5) * 1e6;
  return sc;
}

int cmd_predict(const Args& args) {
  core::Wavm3Model model = core::load_coefficients_csv(args.get("coeffs", "coeffs.csv"));
  if (!model.is_fitted()) {
    std::fprintf(stderr, "could not load coefficients (use `wavm3 fit` first)\n");
    return 1;
  }
  const core::MigrationScenario sc = scenario_from_args(args);

  const core::MigrationPlanner planner(model);
  const core::MigrationForecast fc = planner.forecast(sc);
  std::printf("%s migration of a %.1f GB VM:\n", migration::to_string(sc.type),
              sc.vm_mem_bytes / util::gib(1));
  std::printf("  phases   : initiation %.1f s, transfer %.1f s, activation %.1f s\n",
              fc.times.initiation_duration(), fc.times.transfer_duration(),
              fc.times.activation_duration());
  std::printf("  transfer : %.2f GB at %.1f MB/s, %d pre-copy rounds%s\n",
              fc.total_bytes / 1e9, fc.bandwidth / 1e6, fc.precopy_rounds,
              fc.degenerated_to_nonlive ? " (pre-copy will not converge)" : "");
  std::printf("  downtime : %.2f s\n", fc.downtime);
  std::printf("  energy   : source %.1f kJ + target %.1f kJ = %.1f kJ\n",
              fc.source_energy / 1e3, fc.target_energy / 1e3, fc.total_energy() / 1e3);
  return 0;
}

/// Fault flags shared by `trace` and `serve-bench` (the simulated
/// datacentre's hosts are named "src" and "tgt"). Returns nullptr when
/// no fault flag is present.
std::shared_ptr<const faults::FaultPlan> fault_plan_from_args(const Args& args) {
  auto plan = std::make_shared<faults::FaultPlan>();
  bool any = false;
  if (args.has("fault-random")) {
    faults::FaultPlanOptions opts;
    opts.horizon = args.get_double("fault-horizon", 3600.0);
    opts.overload_hosts = {"src", "tgt"};
    opts.connection_loss_probability = args.get_double("loss-probability", 0.0);
    *plan = faults::FaultPlan::random(
        opts, static_cast<std::uint64_t>(args.get_int("fault-seed", 2015)));
    any = true;
  }
  if (args.has("degrade-at")) {
    faults::LinkDegradation d;
    d.start = args.get_double("degrade-at", 0.0);
    d.end = args.get_double("degrade-until", d.start + 60.0);
    d.factor = args.get_double("degrade-factor", 0.5);
    plan->add(d);
    any = true;
  }
  if (args.has("stall-at")) {
    faults::TransferStall s;
    s.at = args.get_double("stall-at", 0.0);
    s.duration = args.get_double("stall-duration", 1.0);
    plan->add(s);
    any = true;
  }
  if (args.has("flap-at")) {
    faults::LinkFlap f;
    f.start = args.get_double("flap-at", 0.0);
    f.end = args.get_double("flap-until", f.start + 120.0);
    plan->add(f);
    any = true;
  }
  if (args.has("overload-host")) {
    faults::HostOverload o;
    o.host = args.get("overload-host", "src") == "tgt" ? "tgt" : "src";
    o.start = args.get_double("overload-at", 0.0);
    o.end = args.get_double("overload-until", o.start + 60.0);
    o.extra_vcpus = args.get_double("overload-vcpus", 2.0);
    plan->add(o);
    any = true;
  }
  if (args.has("loss-at")) {
    plan->add(faults::ConnectionLoss{faults::FaultPhase::kAny,
                                     args.get_double("loss-at", 0.0)});
    any = true;
  }
  if (args.has("loss-phase")) {
    const std::string phase = args.get("loss-phase", "transfer");
    faults::ConnectionLoss l;
    if (phase == "initiation") l.phase = faults::FaultPhase::kInitiation;
    else if (phase == "transfer") l.phase = faults::FaultPhase::kTransfer;
    else {
      std::fprintf(stderr, "unknown --loss-phase '%s' (expected initiation|transfer)\n",
                   phase.c_str());
      std::exit(2);
    }
    l.at = args.get_double("loss-offset", 0.0);
    plan->add(l);
    any = true;
  }
  if (!any) return nullptr;
  return plan;
}

// --trace-out FILE (alias --chrome-trace FILE): the Chrome-trace
// destination for subcommands that can record spans. Empty = tracing
// stays off.
std::string trace_out_path(const Args& args) {
  std::string path = args.get("trace-out", "");
  if (path.empty()) path = args.get("chrome-trace", "");
  return path;
}

bool write_text_file(const std::string& path, const std::string& body) {
  std::ofstream out(path);
  if (out) out << body;
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  return true;
}

/// Dumps the process-wide tracer as Chrome trace-event JSON. Reported
/// on stderr: stdout stays human-readable output only.
bool dump_chrome_trace(const std::string& path) {
  obs::Tracer& tr = obs::tracer();
  if (!tr.write_chrome_trace(path)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(stderr, "wrote %s (%llu events, %llu dropped)\n", path.c_str(),
               static_cast<unsigned long long>(tr.emitted() - tr.dropped()),
               static_cast<unsigned long long>(tr.dropped()));
  return true;
}

/// Dumps the process-wide metric registry, dispatching on the file
/// extension: .json -> JSON snapshot, anything else -> Prometheus text.
bool dump_global_metrics(const std::string& path) {
  const std::string body = path.ends_with(".json")
                               ? obs::json_snapshot(obs::registry())
                               : obs::prometheus_text(obs::registry());
  if (!write_text_file(path, body)) return false;
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return true;
}

/// Synthesizes the 2 Hz sample stream one executed migration produced
/// on both host meters (for `trace --emit-samples`): timestamps on the
/// meter cadence across [ms, me], phases from the record's realised
/// timings, features from the closed-form per-phase representatives,
/// and power from `model` when fitted (0 otherwise — the features are
/// what the streaming path consumes). Round-trips through the dataset
/// CSV, so the result feeds `wavm3 stream-replay` directly.
models::Dataset samples_from_record(const core::MigrationScenario& sc,
                                    const migration::MigrationRecord& rec,
                                    const core::Wavm3Model& model) {
  core::MigrationForecast fc;
  fc.times = rec.times;
  fc.total_bytes = rec.total_bytes;
  fc.precopy_rounds = rec.precopy_rounds;
  fc.downtime = rec.downtime;
  fc.degenerated_to_nonlive = rec.degenerated_to_nonlive;
  fc.bandwidth = rec.total_bytes / std::max(1e-9, rec.times.transfer_duration());
  const core::PhaseRepresentatives reps = core::representative_features(sc, fc);

  models::Dataset out;
  out.name = "trace";
  const double period = 0.5;  // the testbeds' 2 Hz meter cadence
  for (const auto role : {models::HostRole::kSource, models::HostRole::kTarget}) {
    models::MigrationObservation obs;
    obs.experiment = std::string("TRACE/") + migration::to_string(sc.type);
    obs.testbed = "cli";
    obs.type = sc.type;
    obs.role = role;
    obs.times = rec.times;
    obs.mem_bytes = sc.vm_mem_bytes;
    obs.data_bytes = rec.total_bytes;
    obs.avg_bandwidth = fc.bandwidth;
    const int grid = static_cast<int>(std::floor(rec.times.total_duration() / period));
    for (int k = 0; k <= grid + 1; ++k) {
      // Last grid point short of me gets a closing sample exactly at
      // me, so the emitted stream covers the full [ms, me] window.
      const double t = std::min(rec.times.ms + k * period, rec.times.me);
      migration::MigrationPhase phase = rec.times.phase_at(t);
      if (phase == migration::MigrationPhase::kNormal) {
        phase = migration::MigrationPhase::kActivation;  // t == me edge
      }
      int p = 0;
      if (phase == migration::MigrationPhase::kTransfer) p = 1;
      if (phase == migration::MigrationPhase::kActivation) p = 2;
      models::MigrationSample s =
          role == models::HostRole::kSource ? reps.source[p] : reps.target[p];
      s.time = t;
      s.phase = phase;
      s.power_watts =
          model.is_fitted() ? model.predict_power(reps.coeff_type, role, s) : 0.0;
      obs.samples.push_back(s);
      if (t >= rec.times.me) break;
    }
    out.observations.push_back(std::move(obs));
  }
  return out;
}

int cmd_trace(const Args& args) {
  // Runs the event-driven engine on the scenario (same flags as
  // `predict`) and prints the executed trajectory — including failures
  // when a fault plan is injected. `predict` answers "what would it
  // cost?"; `trace` answers "what actually happened, round by round?".
  const std::string trace_path = trace_out_path(args);
  if (!trace_path.empty()) obs::tracer().set_enabled(true);
  const core::MigrationScenario sc = scenario_from_args(args);
  const std::shared_ptr<const faults::FaultPlan> plan = fault_plan_from_args(args);
  if (plan != nullptr) dcsim::emit_fault_instants(*plan);

  const migration::MigrationRecord rec = serve::simulate_record(sc, plan);

  std::printf("%s migration of a %.1f GB VM (%s)\n", migration::to_string(sc.type),
              sc.vm_mem_bytes / util::gib(1),
              plan == nullptr ? "no faults injected" : "faults injected");
  std::printf("  phases   : initiation %.1f s, transfer %.1f s, activation %.1f s\n",
              rec.times.initiation_duration(), rec.times.transfer_duration(),
              rec.times.activation_duration());
  for (const migration::RoundInfo& r : rec.rounds) {
    std::printf("  round %2d : t=%8.1f s  %8.2f MB at %6.1f MB/s in %7.2f s%s\n", r.index,
                r.start, r.bytes / 1e6, r.bandwidth / 1e6, r.duration,
                r.stop_and_copy ? "  (stop-and-copy)" : "");
  }
  std::printf("  transfer : %.2f GB total, %d pre-copy rounds%s\n", rec.total_bytes / 1e9,
              rec.precopy_rounds,
              rec.degenerated_to_nonlive ? " (degenerated to non-live)" : "");
  std::printf("  downtime : %.2f s (mean VM performance %.0f%%)\n", rec.downtime,
              rec.vm_mean_performance * 100.0);
  std::printf("  outcome  : %s", migration::to_string(rec.outcome));
  if (rec.outcome != migration::MigrationOutcome::kCompleted) {
    std::printf(" — %s in %s phase, %.2f GB wasted", rec.failure_reason.c_str(),
                migration::to_string(rec.failure_phase), rec.wasted_bytes / 1e9);
  }
  std::puts("");

  if (!trace_path.empty() && !dump_chrome_trace(trace_path)) return 1;
  const std::string metrics_path = args.get("metrics-out", "");
  if (!metrics_path.empty() && !dump_global_metrics(metrics_path)) return 1;

  // Price the traffic when coefficients are available: on failure this
  // is the energy both hosts burned for nothing.
  if (args.has("coeffs")) {
    const core::Wavm3Model model =
        core::load_coefficients_csv(args.get("coeffs", "coeffs.csv"));
    if (!model.is_fitted()) {
      std::fprintf(stderr, "could not load coefficients\n");
      return 1;
    }
    core::MigrationForecast fc;
    fc.times = rec.times;
    fc.total_bytes = rec.total_bytes;
    fc.precopy_rounds = rec.precopy_rounds;
    fc.downtime = rec.downtime;
    fc.degenerated_to_nonlive = rec.degenerated_to_nonlive;
    fc.bandwidth = rec.total_bytes / std::max(1e-9, rec.times.transfer_duration());
    core::attach_energy(model, sc, fc);
    std::printf("  energy   : source %.1f kJ + target %.1f kJ = %.1f kJ%s\n",
                fc.source_energy / 1e3, fc.target_energy / 1e3, fc.total_energy() / 1e3,
                rec.outcome == migration::MigrationOutcome::kCompleted ? ""
                                                                       : " (wasted)");
  }

  // --emit-samples FILE: dump the 2 Hz per-role sample stream this run
  // produced, as a dataset CSV ready for `wavm3 stream-replay`.
  const std::string samples_path = args.get("emit-samples", "");
  if (!samples_path.empty()) {
    core::Wavm3Model model;  // unfitted -> power column stays 0
    if (args.has("coeffs")) {
      model = core::load_coefficients_csv(args.get("coeffs", "coeffs.csv"));
    }
    const models::Dataset stream_ds = samples_from_record(sc, rec, model);
    if (!models::save_dataset_csv(stream_ds, samples_path)) {
      std::fprintf(stderr, "cannot write %s\n", samples_path.c_str());
      return 1;
    }
    std::printf("  samples  : wrote %zu 2 Hz samples per role to %s\n",
                stream_ds.observations.front().samples.size(), samples_path.c_str());
  }
  return 0;
}

int cmd_tables(const Args& args) {
  util::set_log_level(util::LogLevel::kWarn);
  const exp::CampaignOptions options =
      args.has("fast") ? exp::fast_campaign_options() : exp::paper_campaign_options();
  const exp::Testbed tb_m = exp::testbed_m();
  const exp::Testbed tb_o = exp::testbed_o();
  const auto campaign_m = exp::run_campaign(tb_m, options, args.get_seed());
  const auto campaign_o = exp::run_campaign(tb_o, options, args.get_seed() + 1);
  const auto [train, test] = campaign_m.dataset.split_stratified(0.2, args.get_seed());

  core::Wavm3Model wavm3;
  wavm3.fit(train);
  core::Wavm3Model wavm3_o;
  wavm3_o.fit(train);
  core::transfer_bias(wavm3_o, train, campaign_o.dataset);
  models::HuangModel huang;
  huang.fit(train);
  models::LiuModel liu;
  liu.fit(train);
  models::StrunkModel strunk;
  strunk.fit(train);

  std::puts(exp::render_table1_workload_impact().c_str());
  std::puts(exp::render_table2_setup(tb_m, tb_o).c_str());
  std::puts(exp::render_coefficients_table(wavm3, migration::MigrationType::kNonLive,
                                           campaign_m.measured_idle_power,
                                           campaign_o.measured_idle_power,
                                           "Table III: coefficients for non-live migration")
                .c_str());
  std::puts(exp::render_coefficients_table(wavm3, migration::MigrationType::kLive,
                                           campaign_m.measured_idle_power,
                                           campaign_o.measured_idle_power,
                                           "Table IV: coefficients for live migration")
                .c_str());
  const auto rows_m = models::evaluate_models({&wavm3, &huang, &liu, &strunk}, test);
  const auto rows_o = models::evaluate_model(wavm3_o, campaign_o.dataset);
  std::puts(exp::render_table5_nrmse(rows_m, rows_o).c_str());
  std::puts(exp::render_table6_baselines(huang, liu, strunk).c_str());
  std::puts(exp::render_table7_comparison(rows_m).c_str());
  return 0;
}

int cmd_report(const Args& args) {
  // Writes a self-contained markdown reproduction report: every paper
  // table, the phase-level accuracy, and the campaign summaries.
  const std::string out_path = args.get("out", "wavm3_report.md");
  const exp::CampaignOptions options =
      args.has("fast") ? exp::fast_campaign_options() : exp::paper_campaign_options();
  const exp::Testbed tb_m = exp::testbed_m();
  const exp::Testbed tb_o = exp::testbed_o();
  const auto campaign_m = exp::run_campaign(tb_m, options, args.get_seed());
  const auto campaign_o = exp::run_campaign(tb_o, options, args.get_seed() + 1);
  const auto [train, test] = campaign_m.dataset.split_stratified(0.2, args.get_seed());

  core::Wavm3Model wavm3;
  wavm3.fit(train);
  core::Wavm3Model wavm3_o;
  wavm3_o.fit(train);
  core::transfer_bias(wavm3_o, train, campaign_o.dataset);
  models::HuangModel huang;
  huang.fit(train);
  models::LiuModel liu;
  liu.fit(train);
  models::StrunkModel strunk;
  strunk.fit(train);
  const auto rows_m = models::evaluate_models({&wavm3, &huang, &liu, &strunk}, test);
  const auto rows_o = models::evaluate_model(wavm3_o, campaign_o.dataset);

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  const auto block = [&out](const std::string& title, const std::string& body) {
    out << "## " << title << "\n\n```\n" << body << "```\n\n";
  };
  out << "# WAVM3 reproduction report\n\n"
      << "Seed " << args.get_seed() << "; campaign: "
      << campaign_m.summaries.size() << " scenarios per testbed, "
      << campaign_m.dataset.size() << " observations on m01-m02, "
      << campaign_o.dataset.size() << " on o1-o2.\n\n";
  block("Table I", exp::render_table1_workload_impact());
  block("Table II", exp::render_table2_setup(tb_m, tb_o));
  block("Table III (non-live coefficients)",
        exp::render_coefficients_table(wavm3, migration::MigrationType::kNonLive,
                                       campaign_m.measured_idle_power,
                                       campaign_o.measured_idle_power, ""));
  block("Table IV (live coefficients)",
        exp::render_coefficients_table(wavm3, migration::MigrationType::kLive,
                                       campaign_m.measured_idle_power,
                                       campaign_o.measured_idle_power, ""));
  block("Table V (NRMSE, both testbeds)", exp::render_table5_nrmse(rows_m, rows_o));
  block("Table VI (baseline coefficients)",
        exp::render_table6_baselines(huang, liu, strunk));
  block("Table VII (model comparison)", exp::render_table7_comparison(rows_m));
  block("Phase-level accuracy",
        exp::render_phase_accuracy_table(core::evaluate_phase_energies(wavm3, test)));
  block("Per-phase energies (SV-B metrics)", exp::render_phase_energy_table(campaign_m));
  block("Campaign summary (m01-m02)", exp::render_campaign_summary(campaign_m));
  block("Campaign summary (o1-o2)", exp::render_campaign_summary(campaign_o));
  out.close();
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

int cmd_simulate(const Args& args) {
  // Closed-loop fleet simulation comparing consolidation strategies.
  const std::string trace_path = trace_out_path(args);
  if (!trace_path.empty()) obs::tracer().set_enabled(true);
  const int hosts = static_cast<int>(args.get_int("hosts", 6));
  const int vms = static_cast<int>(args.get_int("vms", 16));
  const double hours = args.get_double("hours", 12.0);
  const double horizon = args.get_double("horizon", 7200.0);

  const exp::Testbed testbed = testbed_by_name(args.get("testbed", "m"));
  exp::CampaignOptions options = exp::fast_campaign_options();
  const exp::CampaignResult campaign = exp::run_campaign(testbed, options, args.get_seed());
  core::Wavm3Model model;
  model.fit(campaign.dataset);
  const core::MigrationPlanner planner(model);

  std::printf("%-18s %14s %12s %10s %10s %14s\n", "strategy", "energy [kWh]", "migrations",
              "hosts off", "rejected", "downtime [s]");
  for (const dcsim::Strategy strategy :
       {dcsim::Strategy::kNoConsolidation, dcsim::Strategy::kCostBlind,
        dcsim::Strategy::kCostAware}) {
    dcsim::DcSimConfig cfg = dcsim::make_fleet_scenario(hosts, vms, args.get_seed());
    cfg.duration = hours * 3600.0;
    cfg.strategy = strategy;
    cfg.policy.horizon_seconds = horizon;
    dcsim::DataCenterSimulation sim(
        cfg, strategy == dcsim::Strategy::kNoConsolidation ? nullptr : &planner);
    const dcsim::DcSimReport r = sim.run();
    std::printf("%-18s %14.2f %12d %10d %10d %14.1f\n", to_string(strategy),
                r.total_energy_joules / 3.6e6, r.migrations_executed, r.power_off_events,
                r.plans_rejected_by_cost, r.total_migration_downtime);
  }
  if (!trace_path.empty() && !dump_chrome_trace(trace_path)) return 1;
  const std::string metrics_path = args.get("metrics-out", "");
  if (!metrics_path.empty() && !dump_global_metrics(metrics_path)) return 1;
  return 0;
}

int cmd_plan(const Args& args) {
  // Datacenter-scale consolidation planning over a Fleet snapshot:
  // rolling waves of energy-priced, cycle-scheduled migrations.
  const std::string trace_path = trace_out_path(args);
  if (!trace_path.empty()) obs::tracer().set_enabled(true);

  core::Wavm3Model model;
  if (args.has("coeffs")) {
    model = core::load_coefficients_csv(args.get("coeffs", "coeffs.csv"));
    if (!model.is_fitted()) {
      std::fprintf(stderr, "could not load coefficients\n");
      return 1;
    }
  } else {
    const exp::Testbed testbed = testbed_by_name(args.get("testbed", "m"));
    const exp::CampaignResult campaign =
        exp::run_campaign(testbed, exp::fast_campaign_options(), args.get_seed());
    model.fit(campaign.dataset);
  }

  plan::Fleet fleet;
  if (args.has("fleet-hosts") || args.has("fleet-vms")) {
    std::ifstream hosts_csv(args.get("fleet-hosts", "hosts.csv"));
    std::ifstream vms_csv(args.get("fleet-vms", "vms.csv"));
    if (!hosts_csv || !vms_csv) {
      std::fprintf(stderr, "could not open --fleet-hosts / --fleet-vms\n");
      return 1;
    }
    fleet = plan::Fleet::from_csv(hosts_csv, vms_csv);
  } else {
    const int hosts = static_cast<int>(args.get_int("hosts", 64));
    const int vms = static_cast<int>(args.get_int("vms", 10 * hosts));
    fleet = plan::Fleet::synthetic(hosts, vms, args.get_seed());
  }

  plan::PlannerConfig cfg;
  cfg.policy.horizon_seconds = args.get_double("horizon", cfg.policy.horizon_seconds);
  cfg.candidate_targets =
      static_cast<int>(args.get_int("candidate-targets", cfg.candidate_targets));
  cfg.max_donors_per_wave =
      static_cast<int>(args.get_int("max-donors", cfg.max_donors_per_wave));
  cfg.beam_width = static_cast<int>(args.get_int("beam-width", cfg.beam_width));
  cfg.wave_horizon_s = args.get_double("wave-horizon", cfg.wave_horizon_s);
  if (args.has("no-cycles")) cfg.cycle_aware = false;

  const plan::FirstFitStrategy first_fit;
  const plan::BeamSearchStrategy beam;
  const std::string strategy_name = args.get("strategy", "beam");
  const plan::PlacementStrategy* strategy = nullptr;
  if (strategy_name == "beam") strategy = &beam;
  else if (strategy_name == "first-fit") strategy = &first_fit;
  else {
    std::fprintf(stderr, "unknown --strategy '%s' (expected first-fit|beam)\n",
                 strategy_name.c_str());
    return 2;
  }

  // Plan from the end of the sampled histories, one wave per workload
  // period, committing each so later waves see the consolidated fleet.
  double now = 0.0;
  for (const plan::FleetVm& vm : fleet.vms()) {
    if (!vm.history.empty()) now = std::max(now, vm.history.t.back());
  }
  const int waves = static_cast<int>(args.get_int("waves", 1));
  plan::MigrationPlanner planner(model, cfg);

  std::printf("planning %d wave(s) over %zu hosts / %zu VMs (%s, cycles %s)\n\n",
              waves, fleet.host_count(), fleet.vm_count(), strategy->name(),
              cfg.cycle_aware ? "on" : "off");
  std::printf("%6s %12s %12s %12s %10s %6s %8s %8s\n", "wave", "migr [kJ]",
              "saving [kJ]", "net [kJ]", "downtime", "moves", "vacated", "aligned");
  for (int w = 0; w < waves; ++w) {
    const plan::WavePlan p =
        planner.plan_wave(fleet, *strategy, now + w * cfg.wave_horizon_s);
    std::printf("%6d %12.1f %12.1f %12.1f %9.2fs %6zu %8d %8d\n", w,
                p.total_migration_energy_j / 1e3, p.steady_saving_j / 1e3,
                (p.total_migration_energy_j - p.steady_saving_j) / 1e3,
                p.total_downtime_s, p.moves.size(), p.donors_vacated,
                p.moves_cycle_aligned);
    if (args.has("verbose")) {
      for (const plan::ScheduledMove& m : p.moves) {
        std::printf("    %-14s %-12s -> %-12s start %10.1f  %8.2f kJ%s\n",
                    fleet.vm(m.vm).id.c_str(), fleet.host(m.source).spec.name.c_str(),
                    fleet.host(m.target).spec.name.c_str(), m.start_s,
                    m.energy_j / 1e3, m.cycle_aligned ? "  (low window)" : "");
      }
    }
  }
  int powered = 0;
  for (const plan::FleetHost& h : fleet.hosts()) powered += h.powered_on ? 1 : 0;
  std::printf("\n%d/%zu hosts powered after the last wave\n", powered,
              fleet.host_count());

  if (!trace_path.empty() && !dump_chrome_trace(trace_path)) return 1;
  const std::string metrics_path = args.get("metrics-out", "");
  if (!metrics_path.empty() && !dump_global_metrics(metrics_path)) return 1;
  return 0;
}

int cmd_chaos(const Args& args) {
  // Closed-loop plan -> execute -> replan over a Fleet snapshot under
  // a deterministic per-wave fault storm (src/chaos/).
  const std::string trace_path = trace_out_path(args);
  if (!trace_path.empty()) obs::tracer().set_enabled(true);

  core::Wavm3Model model;
  if (args.has("coeffs")) {
    model = core::load_coefficients_csv(args.get("coeffs", "coeffs.csv"));
    if (!model.is_fitted()) {
      std::fprintf(stderr, "could not load coefficients\n");
      return 1;
    }
  } else {
    const exp::Testbed testbed = testbed_by_name(args.get("testbed", "m"));
    const exp::CampaignResult campaign =
        exp::run_campaign(testbed, exp::fast_campaign_options(), args.get_seed());
    model.fit(campaign.dataset);
  }

  plan::Fleet fleet;
  if (args.has("fleet-hosts") || args.has("fleet-vms")) {
    std::ifstream hosts_csv(args.get("fleet-hosts", "hosts.csv"));
    std::ifstream vms_csv(args.get("fleet-vms", "vms.csv"));
    if (!hosts_csv || !vms_csv) {
      std::fprintf(stderr, "could not open --fleet-hosts / --fleet-vms\n");
      return 1;
    }
    fleet = plan::Fleet::from_csv(hosts_csv, vms_csv);
  } else {
    const int hosts = static_cast<int>(args.get_int("hosts", 64));
    const int vms = static_cast<int>(args.get_int("vms", 10 * hosts));
    fleet = plan::Fleet::synthetic(hosts, vms, args.get_seed());
  }

  chaos::ChaosConfig cfg;
  cfg.storm.level = static_cast<int>(args.get_int("storm", cfg.storm.level));
  cfg.storm_seed = static_cast<std::uint64_t>(args.get_int("seed", 2015));
  cfg.max_waves = static_cast<int>(args.get_int("waves", cfg.max_waves));
  cfg.replan.retry_budget =
      static_cast<int>(args.get_int("retry-budget", cfg.replan.retry_budget));
  cfg.wave_gap_s = args.get_double("wave-gap", cfg.wave_gap_s);
  if (args.has("no-relief")) cfg.relief_enabled = false;
  if (args.has("no-faults")) cfg.faults_enabled = false;
  cfg.planner.beam_width =
      static_cast<int>(args.get_int("beam-width", cfg.planner.beam_width));

  const plan::FirstFitStrategy first_fit;
  const plan::BeamSearchStrategy beam;
  const std::string strategy_name = args.get("strategy", "beam");
  const plan::PlacementStrategy* strategy = nullptr;
  if (strategy_name == "beam") strategy = &beam;
  else if (strategy_name == "first-fit") strategy = &first_fit;
  else {
    std::fprintf(stderr, "unknown --strategy '%s' (expected first-fit|beam)\n",
                 strategy_name.c_str());
    return 2;
  }

  double now = 0.0;
  for (const plan::FleetVm& vm : fleet.vms()) {
    if (!vm.history.empty()) now = std::max(now, vm.history.t.back());
  }

  std::printf("chaos loop over %zu hosts / %zu VMs (%s, storm level %d, seed %llu, "
              "relief %s)\n\n",
              fleet.host_count(), fleet.vm_count(), strategy->name(), cfg.storm.level,
              static_cast<unsigned long long>(cfg.storm_seed),
              cfg.relief_enabled ? "on" : "off");

  chaos::WaveExecutor exec(model, cfg);
  const chaos::ChaosReport report = exec.run(fleet, *strategy, now);

  std::printf("%5s %7s %7s %6s %6s %7s %7s %5s %5s %5s %5s\n", "wave", "planned",
              "relief", "retry", "done", "rolled", "vmlost", "defer", "shed",
              "viol", "deg");
  for (const chaos::WaveOutcome& w : report.waves) {
    std::printf("%5d %7d %7d %6d %6d %7d %7d %5d %5d %5zu %5s\n", w.wave,
                w.planned_moves, w.relief_moves, w.retries_attempted, w.completed,
                w.rolled_back, w.vm_lost, w.deferred, w.shed, w.violations.size(),
                w.degraded ? "yes" : "no");
    if (args.has("verbose")) {
      for (const chaos::InvariantViolation& v : w.violations) {
        std::printf("    VIOLATION [%s] %s\n", v.check.c_str(), v.detail.c_str());
      }
    }
  }
  std::printf("\nresolution %.4f (%d placed + %d replanned of %d planned), "
              "%d unresolved, %d violations, %s after %zu wave(s)\n",
              report.resolution_fraction, report.resolved_placed,
              report.resolved_replanned, report.moves_planned, report.unresolved,
              report.invariant_violations,
              report.terminal ? "quiescent" : "wave budget exhausted",
              report.waves.size());
  std::printf("ledger: planned %.1f kJ = committed %.1f kJ + refunded %.1f kJ "
              "(+ outstanding %.1f kJ); wasted %.1f kJ on aborted attempts\n",
              report.ledger.planned_j / 1e3, report.ledger.committed_j / 1e3,
              report.ledger.refunded_j / 1e3, report.ledger.outstanding_j / 1e3,
              report.ledger.wasted_j / 1e3);
  int powered = 0;
  for (const plan::FleetHost& h : fleet.hosts()) powered += h.powered_on ? 1 : 0;
  std::printf("%d/%zu hosts powered after the last wave\n", powered,
              fleet.host_count());

  if (!trace_path.empty() && !dump_chrome_trace(trace_path)) return 1;
  const std::string metrics_path = args.get("metrics-out", "");
  if (!metrics_path.empty() && !dump_global_metrics(metrics_path)) return 1;
  return report.invariant_violations == 0 ? 0 : 1;
}

int cmd_serve_bench(const Args& args) {
  // Load-tests the in-process prediction service (src/serve/) with a
  // synthetic consolidation-round query stream and prints its metrics.
  const std::string trace_path = trace_out_path(args);
  if (!trace_path.empty()) obs::tracer().set_enabled(true);
  core::Wavm3Model model;
  if (args.has("coeffs")) {
    model = core::load_coefficients_csv(args.get("coeffs", ""));
    if (!model.is_fitted()) {
      std::fprintf(stderr, "could not load coefficients\n");
      return 1;
    }
  } else {
    util::set_log_level(util::LogLevel::kWarn);
    std::puts("no --coeffs given; fitting on a fast simulated campaign...");
    const exp::CampaignResult campaign =
        exp::run_campaign(testbed_by_name(args.get("testbed", "m")),
                          exp::fast_campaign_options(), args.get_seed());
    model.fit(campaign.dataset);
  }

  serve::ServiceConfig cfg;
  cfg.threads = static_cast<int>(args.get_int("threads", 4));
  cfg.queue_capacity = static_cast<std::size_t>(args.get_int("queue", 1024));
  cfg.cache_capacity = static_cast<std::size_t>(args.get_int("cache-capacity", 4096));
  cfg.cache_shards = static_cast<std::size_t>(args.get_int("cache-shards", 8));
  cfg.quantization_step = args.get_double("quantization", 0.0);
  const std::string fidelity = args.get("fidelity", "closed");
  if (fidelity == "sim") {
    cfg.fidelity = serve::Fidelity::kSimulated;
  } else if (fidelity != "closed") {
    std::fprintf(stderr, "unknown --fidelity '%s' (expected closed|sim)\n",
                 fidelity.c_str());
    return 2;
  }
  // Degradation-ladder knobs. --fail-backend swaps in a sim backend
  // that always throws: the breaker should trip open and every request
  // still be answered (closed-form) with zero crashes.
  cfg.default_deadline_s = args.get_double("deadline-ms", 0.0) / 1e3;
  cfg.backend_max_retries = static_cast<int>(args.get_int("retries", 2));
  cfg.degrade_to_closed_form = !args.has("no-degrade");
  cfg.breaker.failure_threshold =
      static_cast<int>(args.get_int("breaker-threshold", 5));
  cfg.breaker.open_duration_s = args.get_double("breaker-open-ms", 5000.0) / 1e3;
  if (args.has("fail-backend")) {
    cfg.fidelity = serve::Fidelity::kSimulated;
    cfg.simulated_backend = [](const core::Wavm3Model&,
                               const core::MigrationScenario&) -> core::MigrationForecast {
      throw std::runtime_error("injected backend failure");
    };
  }

  serve::QueryStreamOptions qopts;
  qopts.repeat_fraction = args.get_double("repeat-fraction", 0.9);
  const long total = args.get_int("requests", 20000);
  const long batch = std::max(1L, args.get_int("batch", 64));
  const long reloads = args.get_int("reloads", 2);

  serve::PredictionService service(model, cfg);
  serve::QueryStreamGenerator stream =
      serve::QueryStreamGenerator::diurnal(qopts, args.get_seed());

  // --recalibrate closes the loop: the src/calib/ recalibrator is
  // attached as the service's feedback sink and every served scenario
  // is reported back as "observed" energy — the model's own forecast
  // plus --feedback-bias watts of systematic error — so drift
  // detection, gated swaps, and the rollback watch run live under the
  // bench load.
  std::shared_ptr<calib::OnlineRecalibrator> recalibrator;
  const double feedback_bias = args.get_double("feedback-bias", 12.0);
  const core::MigrationPlanner feedback_truth(model);
  if (args.has("recalibrate")) {
    calib::RecalibratorConfig rcfg;
    rcfg.pass_interval_samples =
        static_cast<std::size_t>(args.get_int("pass-interval", 64));
    rcfg.drift.bias_threshold_watts = args.get_double("bias-threshold", 2.0);
    recalibrator = calib::attach(service, rcfg);
  }

  std::printf("serving %ld requests (batch %ld) on %d threads; cache %zu entries%s, "
              "repeat fraction %.0f%%, fidelity %s\n",
              total, batch, cfg.threads, cfg.cache_capacity,
              cfg.cache_capacity == 0 ? " (off)" : "", qopts.repeat_fraction * 100,
              cfg.fidelity == serve::Fidelity::kSimulated ? "simulated" : "closed-form");

  // Under injected faults, failed requests must be counted, not
  // allowed to abort the bench: fan out manually so each future's
  // exception is caught on its own.
  const bool count_failures = args.has("fail-backend") || args.has("no-degrade") ||
                              cfg.default_deadline_s > 0.0;
  const auto t0 = std::chrono::steady_clock::now();
  double energy_checksum = 0.0;
  long done = 0;
  long crashed = 0;
  long next_reload = reloads > 0 ? total / (reloads + 1) : total + 1;
  while (done < total) {
    const auto scenarios =
        stream.generate(static_cast<std::size_t>(std::min(batch, total - done)));
    if (count_failures) {
      std::vector<std::future<core::MigrationForecast>> futures;
      futures.reserve(scenarios.size());
      for (const core::MigrationScenario& sc : scenarios)
        futures.push_back(service.submit(sc));
      for (auto& f : futures) {
        try {
          energy_checksum += f.get().total_energy();
        } catch (const std::exception&) {
          ++crashed;
        }
      }
    } else {
      for (const core::MigrationForecast& fc : service.predict_batch(scenarios)) {
        energy_checksum += fc.total_energy();
      }
    }
    if (recalibrator) {
      for (const core::MigrationScenario& sc : scenarios) {
        const core::MigrationForecast fc = feedback_truth.forecast(sc);
        const double dur = fc.times.me - fc.times.ms;
        serve::MigrationFeedback fb;
        fb.source_energy_j = fc.source_energy + feedback_bias * dur;
        fb.target_energy_j = fc.target_energy + feedback_bias * dur;
        fb.duration_s = dur;
        service.record_feedback(sc, fb);  // queue-full drops are counted
      }
    }
    done += static_cast<long>(scenarios.size());
    if (done >= next_reload && next_reload <= total) {
      // Hot-swap the coefficients mid-stream (a recalibration event);
      // in-flight predictions are never blocked, cached results from
      // the old version are retired by the version-keyed cache.
      service.swap_model(std::make_shared<const core::Wavm3Model>(model));
      next_reload += total / (reloads + 1);
    }
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  std::puts("");
  if (args.has("csv")) {
    // Deprecated: interleaves machine-readable rows with the human
    // report on stdout. Prefer --metrics-out FILE.
    std::fputs(service.metrics_csv().c_str(), stdout);
  } else {
    std::fputs(service.metrics_table().c_str(), stdout);
  }
  std::printf("\nstream   : %ld requests in %.2f s -> %.0f predictions/s\n", total, elapsed,
              static_cast<double>(total) / std::max(1e-9, elapsed));
  std::printf("checksum : total predicted energy %.3f MJ\n", energy_checksum / 1e6);
  if (count_failures) {
    std::printf("failed   : %ld of %ld requests raised (degradation %s)\n", crashed, total,
                cfg.degrade_to_closed_form ? "on" : "off");
  }
  if (recalibrator) {
    const calib::RecalibrationStats cs = recalibrator->stats();
    std::printf("recalib  : %llu samples in, %llu drift trips, %llu swaps, "
                "%llu rollbacks (model now v%llu)\n",
                static_cast<unsigned long long>(cs.samples_accepted),
                static_cast<unsigned long long>(cs.drift_trips),
                static_cast<unsigned long long>(cs.swaps),
                static_cast<unsigned long long>(cs.rollbacks),
                static_cast<unsigned long long>(service.model_version()));
  }
  // Machine-readable output goes to files so stdout stays human-only.
  // Format follows the extension: .json -> JSON snapshot, .csv -> the
  // legacy per-endpoint CSV, anything else -> Prometheus text.
  const std::string metrics_path = args.get("metrics-out", "");
  if (!metrics_path.empty()) {
    std::string body;
    if (metrics_path.ends_with(".json")) {
      body = service.metrics_json();
    } else if (metrics_path.ends_with(".csv")) {
      body = service.metrics_csv();
    } else {
      body = service.metrics_prometheus();
    }
    if (!write_text_file(metrics_path, body)) return 1;
    std::fprintf(stderr, "wrote %s\n", metrics_path.c_str());
  }
  if (!trace_path.empty() && !dump_chrome_trace(trace_path)) return 1;
  return 0;
}

int cmd_fleet_bench(const Args& args) {
  // Sharded fleet serving demo (src/rpc/): N loopback nodes behind the
  // consistent-hash FleetClient, driven by a Zipf-skewed scenario mix,
  // with mid-run epoch publishes and (optionally) a seeded node-loss
  // storm. Prints routed-predict latency percentiles, failover counts
  // and the epoch propagation outcome.
  core::Wavm3Model model;
  if (args.has("coeffs")) {
    model = core::load_coefficients_csv(args.get("coeffs", "coeffs.csv"));
    if (!model.is_fitted()) {
      std::fprintf(stderr, "could not load coefficients\n");
      return 1;
    }
  } else {
    util::set_log_level(util::LogLevel::kWarn);
    std::puts("no --coeffs given; fitting on a fast simulated campaign...");
    const exp::CampaignResult campaign =
        exp::run_campaign(testbed_by_name(args.get("testbed", "m")),
                          exp::fast_campaign_options(), args.get_seed());
    model.fit(campaign.dataset);
  }

  const auto positive = [&args](const char* key, long fallback) {
    const long v = args.get_int(key, fallback);
    if (v < 1) {
      std::fprintf(stderr, "--%s must be positive, got %ld\n", key, v);
      std::exit(2);
    }
    return v;
  };
  const int node_count = static_cast<int>(positive("nodes", 4));
  const std::size_t replicas = static_cast<std::size_t>(positive("replicas", 2));
  const long requests = positive("requests", 8000);
  const int threads = static_cast<int>(positive("threads", 1));
  const int publishes = static_cast<int>(
      std::max(0L, args.get_int("publishes", 3)));
  const bool node_loss = args.has("node-loss");
  const std::uint64_t seed = args.get_seed();

  obs::MetricRegistry registry;
  rpc::LoopbackTransport transport(seed);
  const auto shared = std::make_shared<const core::Wavm3Model>(model);
  std::vector<std::unique_ptr<rpc::FleetNode>> nodes;
  for (int n = 0; n < node_count; ++n) {
    rpc::FleetNodeConfig ncfg;
    ncfg.node_id = n;
    ncfg.registry = &registry;
    ncfg.service.threads = threads;
    ncfg.service.fidelity = serve::Fidelity::kClosedForm;
    nodes.push_back(std::make_unique<rpc::FleetNode>(shared, ncfg));
    transport.register_node(n, nodes.back().get());
  }
  rpc::FleetClientConfig ccfg;
  ccfg.replication = replicas;
  ccfg.registry = &registry;
  ccfg.breaker.failure_threshold = 3;
  ccfg.breaker.open_duration_s = 1e-4;
  rpc::FleetClient client(transport, ccfg);
  for (int n = 0; n < node_count; ++n) client.add_node(n);

  // Virtual 10 s timeline: request i arrives at t = i/requests * 10.
  const double horizon_s = 10.0;
  faults::NodeOutagePlan plan;
  if (node_loss) {
    faults::NodeOutageOptions storm;
    storm.horizon_s = horizon_s;
    storm.outages_per_node = 2;
    storm.min_down_s = 0.4;
    storm.max_down_s = 1.2;
    storm.max_concurrent_down = 1;
    plan = faults::NodeOutagePlan::random(node_count, storm, seed);
  }

  // Zipf-skewed popularity over a 64-entry catalogue drawn from the
  // diurnal workload generator.
  serve::QueryStreamOptions qopts;
  qopts.repeat_fraction = 0.0;
  serve::QueryStreamGenerator stream =
      serve::QueryStreamGenerator::diurnal(qopts, seed);
  const std::vector<core::MigrationScenario> catalogue = stream.generate(64);
  std::vector<double> cdf(catalogue.size());
  double total = 0.0;
  for (std::size_t k = 0; k < cdf.size(); ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), 1.1);
    cdf[k] = total;
  }
  for (double& c : cdf) c /= total;
  util::RngStream zipf(seed + 7);

  std::printf("fleet-bench: %d nodes, replication %zu, %ld requests, "
              "%d publishes, node loss %s, seed %llu\n\n",
              node_count, replicas, requests, publishes,
              node_loss ? "on" : "off", static_cast<unsigned long long>(seed));

  std::vector<double> latency_ns;
  latency_ns.reserve(static_cast<std::size_t>(requests));
  long errors = 0;
  int published = 0;
  int converged = 0;
  for (long i = 0; i < requests; ++i) {
    const double t = horizon_s * static_cast<double>(i) / static_cast<double>(requests);
    for (int n = 0; n < node_count; ++n) transport.set_down(n, plan.down(n, t));
    if (publishes > 0 && i == (published + 1) * requests / (publishes + 1)) {
      const rpc::PublishReport report = client.publish(model);
      ++published;
      if (report.converged) ++converged;
    }
    const double u = zipf.uniform();
    const std::size_t pick = static_cast<std::size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    const auto start = std::chrono::steady_clock::now();
    try {
      (void)client.predict(catalogue[pick]);
      latency_ns.push_back(std::chrono::duration<double, std::nano>(
                               std::chrono::steady_clock::now() - start)
                               .count());
    } catch (const std::exception&) {
      ++errors;
    }
  }
  for (int n = 0; n < node_count; ++n) transport.set_down(n, false);
  if (publishes > 0) {
    const rpc::PublishReport last = client.publish(model);
    ++published;
    if (last.converged) ++converged;
  }

  std::sort(latency_ns.begin(), latency_ns.end());
  const auto pct = [&](double p) {
    if (latency_ns.empty()) return 0.0;
    const double idx = p * static_cast<double>(latency_ns.size() - 1);
    return latency_ns[static_cast<std::size_t>(idx + 0.5)] / 1e3;
  };
  const rpc::FleetStatus status = client.status();
  std::printf("answered %zu / %ld (%ld errors), failovers %llu\n",
              latency_ns.size(), requests, errors,
              static_cast<unsigned long long>(client.failovers()));
  std::printf("latency : p50 %.1f us, p99 %.1f us, p999 %.1f us\n", pct(0.50),
              pct(0.99), pct(0.999));
  std::printf("epochs  : %d publishes, %d converged, fleet epoch %llu, lag %llu\n",
              published, converged,
              static_cast<unsigned long long>(client.committed_epoch()),
              static_cast<unsigned long long>(status.epoch_lag));
  for (const rpc::NodeStatus& ns : status.nodes) {
    std::printf("node %-3d: %s, epoch %llu, served %llu\n", ns.node,
                ns.reachable ? "up" : "DOWN",
                static_cast<unsigned long long>(ns.status.committed_epoch),
                static_cast<unsigned long long>(ns.status.requests_served));
  }
  const std::string metrics_path = args.get("metrics-out", "");
  if (!metrics_path.empty()) {
    if (!write_text_file(metrics_path, obs::prometheus_text(registry))) return 1;
    std::fprintf(stderr, "wrote %s\n", metrics_path.c_str());
  }
  return 0;
}

int cmd_recalibrate(const Args& args) {
  // Offline demonstration of the online recalibration loop
  // (src/calib/): streams synthetic migration feedback against a
  // coefficient store, switches a constant-power bias error on
  // mid-stream, and reports how drift detection, shadow-gated swaps,
  // and the rollback watch drive serving NRMSE back to the noise
  // floor. With --out the recovered coefficient table is saved for
  // `predict` / `serve-bench`.
  core::Wavm3Model model;
  if (args.has("coeffs")) {
    model = core::load_coefficients_csv(args.get("coeffs", ""));
    if (!model.is_fitted()) {
      std::fprintf(stderr, "could not load coefficients\n");
      return 1;
    }
  } else {
    util::set_log_level(util::LogLevel::kWarn);
    std::puts("no --coeffs given; fitting on a fast simulated campaign...");
    const exp::CampaignResult campaign =
        exp::run_campaign(testbed_by_name(args.get("testbed", "m")),
                          exp::fast_campaign_options(), args.get_seed());
    model.fit(campaign.dataset);
  }

  const long samples = std::max(1L, args.get_int("samples", 800));
  const long shift_at = args.get_int("shift-at", samples * 3 / 8);
  const double bias_watts = args.get_double("bias-watts", 18.0);
  const double noise = args.get_double("noise", 0.04);

  serve::CoefficientStore store(model);
  obs::MetricRegistry registry;
  calib::RecalibratorConfig cfg;
  cfg.registry = &registry;
  cfg.window_capacity = static_cast<std::size_t>(args.get_int("window", 128));
  cfg.pass_interval_samples =
      static_cast<std::size_t>(args.get_int("pass-interval", 32));
  cfg.drift.nrmse_threshold =
      args.get_double("nrmse-threshold", cfg.drift.nrmse_threshold);
  cfg.drift.bias_threshold_watts = args.get_double("bias-threshold", 2.0);
  cfg.drift.min_samples = static_cast<std::size_t>(
      args.get_int("drift-min-samples", static_cast<long>(cfg.drift.min_samples)));
  cfg.min_improvement = args.get_double("min-improvement", cfg.min_improvement);
  cfg.cooldown_samples = static_cast<std::size_t>(
      args.get_int("cooldown", static_cast<long>(cfg.cooldown_samples)));
  calib::OnlineRecalibrator rec(store, cfg);

  const core::MigrationPlanner truth(model);
  serve::QueryStreamOptions qopts;
  qopts.repeat_fraction = 0.0;  // feedback wants fresh scenarios, not cache hits
  serve::QueryStreamGenerator stream =
      serve::QueryStreamGenerator::diurnal(qopts, args.get_seed());
  util::RngStream noise_rng(args.get_seed() + 1);

  const auto observe = [&](const core::MigrationScenario& sc, double bias) {
    const core::MigrationForecast fc = truth.forecast(sc);
    const double dur = fc.times.me - fc.times.ms;
    serve::MigrationFeedback fb;
    fb.source_energy_j =
        (fc.source_energy + bias * dur) * (1.0 + noise_rng.uniform(-noise, noise));
    fb.target_energy_j =
        (fc.target_energy + bias * dur) * (1.0 + noise_rng.uniform(-noise, noise));
    fb.duration_s = dur;
    return fb;
  };

  std::printf("streaming %ld feedback samples; +%.1f W bias switches on after "
              "sample %ld (noise +/-%.0f%%)\n\n",
              samples, bias_watts, shift_at, noise * 100.0);
  std::printf("%8s %10s %8s %6s %6s %10s\n", "sample", "nrmse", "version", "swaps",
              "rolls", "phase");
  const long checkpoint_every = std::max(1L, samples / 12);
  for (long i = 1; i <= samples; ++i) {
    const double bias = i > shift_at ? bias_watts : 0.0;
    const auto scenarios = stream.generate(1);
    rec.record(scenarios[0], observe(scenarios[0], bias));
    if (i % checkpoint_every == 0 || i == samples) {
      // Serving NRMSE measured independently of the loop's own
      // windows: fresh scenarios forecast against the store's current
      // snapshot, observed through the same truth-plus-bias process.
      const auto snap = store.snapshot();
      const core::MigrationPlanner current(*snap.model);
      std::vector<double> predicted;
      std::vector<double> observed;
      for (const core::MigrationScenario& sc : stream.generate(128)) {
        const core::MigrationForecast fc = current.forecast(sc);
        const serve::MigrationFeedback fb = observe(sc, bias);
        predicted.push_back(fc.source_energy);
        observed.push_back(fb.source_energy_j);
        predicted.push_back(fc.target_energy);
        observed.push_back(fb.target_energy_j);
      }
      const std::optional<double> nrmse = stats::try_nrmse(predicted, observed);
      const calib::RecalibrationStats s = rec.stats();
      std::printf("%8ld %10.4f %8llu %6llu %6llu %10s\n", i, nrmse.value_or(0.0),
                  static_cast<unsigned long long>(store.version()),
                  static_cast<unsigned long long>(s.swaps),
                  static_cast<unsigned long long>(s.rollbacks),
                  i <= shift_at ? "baseline" : "shifted");
    }
  }

  const calib::RecalibrationStats s = rec.stats();
  std::printf("\naccepted %llu  rejected %llu  passes %llu  drift trips %llu  "
              "refits %llu\nswaps %llu  conflicts %llu  rollbacks %llu  "
              "candidates rejected %llu\n",
              static_cast<unsigned long long>(s.samples_accepted),
              static_cast<unsigned long long>(s.samples_rejected),
              static_cast<unsigned long long>(s.passes),
              static_cast<unsigned long long>(s.drift_trips),
              static_cast<unsigned long long>(s.refits),
              static_cast<unsigned long long>(s.swaps),
              static_cast<unsigned long long>(s.swap_conflicts),
              static_cast<unsigned long long>(s.rollbacks),
              static_cast<unsigned long long>(s.candidates_rejected));

  if (args.has("out")) {
    const auto snap = store.snapshot();
    if (!core::save_coefficients_csv(*snap.model, args.get("out", ""))) {
      std::fprintf(stderr, "could not write %s\n", args.get("out", "").c_str());
      return 1;
    }
    std::printf("wrote %s (model version %llu)\n", args.get("out", "").c_str(),
                static_cast<unsigned long long>(snap.version));
  }
  const std::string metrics_path = args.get("metrics-out", "");
  if (!metrics_path.empty()) {
    const std::string body = metrics_path.ends_with(".json")
                                 ? obs::json_snapshot(registry)
                                 : obs::prometheus_text(registry);
    if (!write_text_file(metrics_path, body)) return 1;
    std::fprintf(stderr, "wrote %s\n", metrics_path.c_str());
  }
  return 0;
}

int cmd_stream_replay(const Args& args) {
  // Replays one recorded observation through the serve streaming path
  // as if its samples were arriving live: open_stream -> submit_sample
  // (optionally paced against the wall clock) -> predict_live every
  // --predict-every samples -> finish and check the final revision
  // against the batch prediction (they must agree to ~1e-9: the same
  // aggregates price through the same predict_batch arithmetic).
  const std::string in = args.get("dataset", "dataset.csv");
  const models::Dataset dataset = models::load_dataset_csv(in);
  if (dataset.size() == 0) {
    std::fprintf(stderr, "no observations in %s\n", in.c_str());
    return 1;
  }
  const std::size_t index = static_cast<std::size_t>(
      std::max(0L, args.get_int("observation", 0)));
  if (index >= dataset.size()) {
    std::fprintf(stderr, "--observation %zu out of range (%zu observations)\n", index,
                 dataset.size());
    return 1;
  }
  const models::MigrationObservation& obs = dataset.observations[index];
  if (obs.samples.size() < 2) {
    std::fprintf(stderr, "observation %zu has too few samples to stream\n", index);
    return 1;
  }

  core::Wavm3Model model;
  if (args.has("coeffs")) {
    model = core::load_coefficients_csv(args.get("coeffs", "coeffs.csv"));
    if (!model.is_fitted()) {
      std::fprintf(stderr, "could not load coefficients\n");
      return 1;
    }
  } else {
    const auto [train, test] =
        dataset.split_stratified(args.get_double("train-fraction", 0.2), args.get_seed());
    model.fit(train);
  }

  serve::ServiceConfig config;
  config.threads = 2;
  config.stream.extractor.max_gap_s =
      args.get_double("max-gap", config.stream.extractor.max_gap_s);
  serve::PredictionService service(model, config);

  const double speedup = args.get_double("speedup", 0.0);  // <= 0: no pacing
  const std::size_t every =
      static_cast<std::size_t>(std::max(1L, args.get_int("predict-every", 8)));
  const std::uint64_t id = 1;
  service.open_stream(id, obs.type, obs.times);

  std::printf("streaming %s (%s, %s): %zu samples over %.1f s%s\n",
              obs.experiment.c_str(), migration::to_string(obs.type),
              models::to_string(obs.role), obs.samples.size(),
              obs.times.total_duration(),
              speedup > 0.0 ? util::format(", %.0fx speedup", speedup).c_str() : "");

  const double span_s = obs.times.total_duration();
  double prev_t = obs.samples.front().time;
  for (std::size_t i = 0; i < obs.samples.size(); ++i) {
    const models::MigrationSample& s = obs.samples[i];
    if (speedup > 0.0 && s.time > prev_t) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>((s.time - prev_t) / speedup));
    }
    prev_t = s.time;
    service.submit_sample(id, obs.role, s);
    if ((i + 1) % every == 0 || i + 1 == obs.samples.size()) {
      const stream::LiveForecast fc = service.predict_live(id);
      const stream::RoleForecast& rf =
          obs.role == models::HostRole::kSource ? fc.source : fc.target;
      const double frac =
          span_s > 0.0 ? std::clamp((s.time - obs.times.ms) / span_s, 0.0, 1.0) : 1.0;
      std::printf("  rev %3llu @ %5.1f%% : forecast %9.1f J = prefix %9.1f + rest %8.1f"
                  "  (conf %.2f/%.2f/%.2f)\n",
                  static_cast<unsigned long long>(fc.revision), frac * 100.0, rf.energy_j,
                  rf.observed_model_j, rf.remaining_j, rf.phase[0].confidence,
                  rf.phase[1].confidence, rf.phase[2].confidence);
    }
  }

  // Landed everywhere: the live forecast must now equal the batch path.
  service.stream_registry().find(id)->finish();
  const stream::LiveForecast final_fc = service.predict_live(id);
  const stream::RoleForecast& rf =
      obs.role == models::HostRole::kSource ? final_fc.source : final_fc.target;
  const models::FeatureBatch batch = models::FeatureBatch::of(obs);
  double batch_j = 0.0;
  model.predict_batch(batch, std::span<double>(&batch_j, 1));
  const double rel_err =
      std::abs(batch_j) > 0.0 ? std::abs(rf.energy_j - batch_j) / std::abs(batch_j) : 0.0;
  std::printf("  final @ 100.0%% : forecast %9.1f J  vs batch %9.1f J  (rel err %.2e)\n",
              rf.energy_j, batch_j, rel_err);
  std::printf("  observed energy: %9.1f J\n", obs.observed_energy());
  const auto report = service.close_stream(id);
  std::printf("  session: %llu samples, %llu revisions%s\n",
              static_cast<unsigned long long>(report.summary.source_samples +
                                              report.summary.target_samples),
              static_cast<unsigned long long>(report.summary.revisions),
              report.summary.degenerated ? ", degenerated" : "");
  return rel_err <= 1e-9 ? 0 : 1;
}

int cmd_help() {
  std::puts(
      "wavm3 - workload-aware VM migration energy model (CLUSTER'15 reproduction)\n"
      "\n"
      "subcommands:\n"
      "  campaign  --testbed m|o --out FILE [--fast] [--seed N]\n"
      "  fit       --dataset FILE --out FILE [--train-fraction F] [--seed N]\n"
      "  evaluate  --dataset FILE [--coeffs FILE] [--train-fraction F] [--seed N]\n"
      "  predict   --coeffs FILE [--type live|nonlive] [--mem-gb G] [--vm-cpu C]\n"
      "            [--dirty-pages-per-s R] [--working-set-fraction F]\n"
      "            [--source-load L] [--target-load L] [--capacity C] [--link-mbs B]\n"
      "  trace     [scenario flags as predict] [--coeffs FILE]\n"
      "            [--degrade-at T --degrade-until T --degrade-factor F]\n"
      "            [--stall-at T --stall-duration D] [--flap-at T --flap-until T]\n"
      "            [--overload-host src|tgt --overload-at T --overload-until T\n"
      "             --overload-vcpus N]\n"
      "            [--loss-at T | --loss-phase initiation|transfer --loss-offset T]\n"
      "            [--fault-random --fault-seed N --fault-horizon T\n"
      "             --loss-probability P]\n"
      "            [--chrome-trace FILE | --trace-out FILE] [--metrics-out FILE]\n"
      "            [--emit-samples FILE (2 Hz per-role sample stream, dataset CSV)]\n"
      "  stream-replay --dataset FILE [--coeffs FILE | --train-fraction F --seed N]\n"
      "            [--observation N] [--predict-every N] [--speedup X]\n"
      "            [--max-gap SECONDS]\n"
      "  tables    [--fast] [--seed N]\n"
      "  simulate  [--testbed m|o] [--hosts N] [--vms N] [--hours H]\n"
      "            [--horizon SECONDS] [--seed N]\n"
      "            [--trace-out FILE] [--metrics-out FILE]\n"
      "  plan      [--coeffs FILE | --testbed m|o] [--hosts N] [--vms N]\n"
      "            [--fleet-hosts FILE --fleet-vms FILE]\n"
      "            [--strategy first-fit|beam] [--waves N] [--beam-width N]\n"
      "            [--candidate-targets N] [--max-donors N] [--no-cycles]\n"
      "            [--horizon SECONDS] [--wave-horizon SECONDS] [--verbose]\n"
      "            [--seed N] [--trace-out FILE] [--metrics-out FILE]\n"
      "  chaos     [--coeffs FILE | --testbed m|o] [--hosts N] [--vms N]\n"
      "            [--fleet-hosts FILE --fleet-vms FILE]\n"
      "            [--storm LEVEL] [--seed N] [--waves N] [--retry-budget N]\n"
      "            [--strategy first-fit|beam] [--beam-width N] [--wave-gap SECONDS]\n"
      "            [--no-relief] [--no-faults] [--verbose]\n"
      "            [--trace-out FILE] [--metrics-out FILE]\n"
      "  serve-bench [--coeffs FILE | --testbed m|o] [--threads N] [--requests N]\n"
      "            [--batch N] [--cache-capacity N] [--cache-shards N]\n"
      "            [--quantization F] [--repeat-fraction F] [--queue N]\n"
      "            [--reloads N] [--fidelity closed|sim] [--csv] [--seed N]\n"
      "            [--fail-backend] [--no-degrade] [--deadline-ms T] [--retries N]\n"
      "            [--breaker-threshold N] [--breaker-open-ms T]\n"
      "            [--recalibrate] [--feedback-bias W] [--pass-interval N]\n"
      "            [--bias-threshold W]\n"
      "            [--trace-out FILE] [--metrics-out FILE (.json|.csv|.prom)]\n"
      "  fleet-bench [--coeffs FILE | --testbed m|o] [--nodes N] [--replicas N]\n"
      "            [--requests N] [--threads N] [--publishes N] [--node-loss]\n"
      "            [--seed N] [--metrics-out FILE]\n"
      "  recalibrate [--coeffs FILE | --testbed m|o] [--samples N] [--shift-at N]\n"
      "            [--bias-watts W] [--noise F] [--window N] [--pass-interval N]\n"
      "            [--nrmse-threshold F] [--bias-threshold W] [--drift-min-samples N]\n"
      "            [--min-improvement F] [--cooldown N] [--seed N]\n"
      "            [--out FILE] [--metrics-out FILE (.json|.prom)]\n"
      "  report    [--out FILE] [--fast] [--seed N]\n"
      "  help\n"
      "\n"
      "global flags:\n"
      "  --force-scalar   pin numeric kernels to the scalar backend\n"
      "                   (bit-identical to SIMD; also: WAVM3_FORCE_SCALAR=1)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Global flag, valid before or after the subcommand: pin the numeric
  // kernels to the portable scalar backend (same effect as the
  // WAVM3_FORCE_SCALAR env var; results are bit-identical either way —
  // that is the kernels contract — so this is for timing A/Bs and for
  // ruling SIMD in or out when triaging).
  std::vector<char*> kept;
  kept.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--force-scalar") == 0) {
      kernels::set_backend(kernels::Backend::kScalar);
    } else {
      kept.push_back(argv[i]);
    }
  }
  argc = static_cast<int>(kept.size());
  argv = kept.data();
  if (argc < 2) return cmd_help();
  const std::string cmd = argv[1];
  const Args args(argc, argv, 2);
  try {
    if (cmd == "campaign") return cmd_campaign(args);
    if (cmd == "fit") return cmd_fit(args);
    if (cmd == "evaluate") return cmd_evaluate(args);
    if (cmd == "predict") return cmd_predict(args);
    if (cmd == "trace") return cmd_trace(args);
    if (cmd == "stream-replay") return cmd_stream_replay(args);
    if (cmd == "tables") return cmd_tables(args);
    if (cmd == "simulate") return cmd_simulate(args);
    if (cmd == "plan") return cmd_plan(args);
    if (cmd == "chaos") return cmd_chaos(args);
    if (cmd == "serve-bench") return cmd_serve_bench(args);
    if (cmd == "fleet-bench") return cmd_fleet_bench(args);
    if (cmd == "recalibrate") return cmd_recalibrate(args);
    if (cmd == "report") return cmd_report(args);
    if (cmd == "help" || cmd == "--help") return cmd_help();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown subcommand: %s\n", cmd.c_str());
  cmd_help();
  return 2;
}
