#include "consolidation/manager.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace wavm3::consolidation {

ConsolidationManager::ConsolidationManager(ConsolidationPolicy policy,
                                           const core::MigrationPlanner& planner,
                                           HostPowerEstimate host_power)
    : policy_(policy), planner_(&planner), host_power_(host_power) {
  WAVM3_REQUIRE(policy_.underload_fraction > 0.0 && policy_.underload_fraction < 1.0,
                "underload fraction must be in (0,1)");
  WAVM3_REQUIRE(policy_.overload_fraction > policy_.underload_fraction &&
                    policy_.overload_fraction <= 1.0,
                "overload fraction must exceed the underload fraction");
  WAVM3_REQUIRE(policy_.horizon_seconds > 0.0, "horizon must be positive");
  WAVM3_REQUIRE(policy_.max_retries >= 0, "retry bound must be non-negative");
}

core::MigrationScenario ConsolidationManager::scenario_for(const cloud::DataCenter& /*dc*/,
                                                           const cloud::Vm& vm,
                                                           const cloud::Host& source,
                                                           const cloud::Host& target,
                                                           double link_payload_rate,
                                                           double now) const {
  core::MigrationScenario sc;
  sc.type = policy_.migration_type;
  sc.vm_mem_bytes = vm.spec().ram_bytes;
  sc.vm_cpu_vcpus = vm.cpu_demand(now);
  sc.vm_dirty_pages_per_s = vm.dirty_page_rate(now);
  sc.vm_working_set_pages = static_cast<double>(vm.working_set_pages());
  // Demand-level (uncapped) loads: under multiplexing the capped
  // utilisation would hide the missing migration-helper headroom.
  sc.source_cpu_load = std::max(
      0.0, source.vmm_demand(now) + source.total_vm_demand(now) - vm.cpu_demand(now));
  sc.source_cpu_capacity = source.cpu_capacity();
  sc.target_cpu_load = target.vmm_demand(now) + target.total_vm_demand(now);
  sc.target_cpu_capacity = target.cpu_capacity();
  sc.link_payload_rate = link_payload_rate;
  return sc;
}

std::optional<ConsolidationPlan> ConsolidationManager::plan_vacate(
    cloud::DataCenter& dc, const std::string& host_name, double link_payload_rate,
    const std::set<std::string>& excluded_targets, double now) const {
  cloud::Host* source = dc.host(host_name);
  WAVM3_REQUIRE(source != nullptr, "unknown host: " + host_name);

  ConsolidationPlan plan;
  plan.vacated_host = host_name;

  // Targets ordered most-loaded-first: packing onto already-busy hosts
  // leaves more hosts empty later.
  std::vector<cloud::Host*> targets;
  for (cloud::Host* h : dc.hosts()) {
    if (h->name() == host_name) continue;
    if (excluded_targets.count(h->name()) != 0) continue;
    targets.push_back(h);
  }
  std::sort(targets.begin(), targets.end(), [now](cloud::Host* a, cloud::Host* b) {
    return a->cpu_utilisation(now) > b->cpu_utilisation(now);
  });

  // Track planned extra load per target so multiple VMs don't all pick
  // the same host past its threshold.
  std::vector<double> planned_cpu(targets.size(), 0.0);
  std::vector<double> planned_ram(targets.size(), 0.0);

  // Move the biggest VMs first (classic FFD).
  std::vector<cloud::VmPtr> vms = source->vms();
  std::sort(vms.begin(), vms.end(), [now](const cloud::VmPtr& a, const cloud::VmPtr& b) {
    return a->cpu_demand(now) > b->cpu_demand(now);
  });

  for (const cloud::VmPtr& vm : vms) {
    bool placed = false;
    for (std::size_t i = 0; i < targets.size(); ++i) {
      cloud::Host* t = targets[i];
      const double cpu_after = t->cpu_used(now) + planned_cpu[i] + vm->cpu_demand(now);
      const bool cpu_ok = cpu_after <= policy_.overload_fraction * t->cpu_capacity();
      const bool ram_ok =
          t->ram_committed() + planned_ram[i] + vm->spec().ram_bytes <= t->spec().ram_bytes;
      if (!cpu_ok || !ram_ok) continue;

      // Forecast this move with the target's *planned* load included.
      core::MigrationScenario sc = scenario_for(dc, *vm, *source, *t, link_payload_rate, now);
      sc.target_cpu_load += planned_cpu[i];
      const core::MigrationForecast fc = planner_->forecast(sc);

      MigrationProposal prop;
      prop.vm_id = vm->id();
      prop.source = host_name;
      prop.target = t->name();
      prop.forecast = fc;
      // Cost above baseline: the hosts would have drawn their steady
      // power anyway; only the excess is attributable to the migration.
      const double duration = fc.times.total_duration();
      const double baseline =
          (host_power_.power(sc.source_cpu_load + sc.vm_cpu_vcpus) +
           host_power_.power(sc.target_cpu_load)) *
          duration;
      prop.migration_energy_joules = std::max(0.0, fc.total_energy() - baseline);

      plan.migrations.push_back(std::move(prop));
      planned_cpu[i] += vm->cpu_demand(now);
      planned_ram[i] += vm->spec().ram_bytes;
      placed = true;
      break;
    }
    if (!placed) return std::nullopt;  // cannot empty this host
  }

  for (const auto& m : plan.migrations) plan.migration_cost_joules += m.migration_energy_joules;
  plan.steady_saving_joules = host_power_.idle_watts * policy_.horizon_seconds;
  plan.net_benefit_joules = plan.steady_saving_joules - plan.migration_cost_joules;
  plan.beneficial = plan.net_benefit_joules > 0.0;
  return plan;
}

std::vector<ConsolidationPlan> ConsolidationManager::plan(
    cloud::DataCenter& dc, double link_payload_rate,
    const std::set<std::string>& excluded_targets, double now) const {
  std::vector<ConsolidationPlan> plans;
  for (cloud::Host* h : dc.hosts()) {
    if (h->vm_count() == 0) continue;  // already empty
    if (h->cpu_utilisation(now) > policy_.underload_fraction) continue;
    if (auto p = plan_vacate(dc, h->name(), link_payload_rate, excluded_targets, now)) {
      plans.push_back(std::move(*p));
    }
  }
  std::sort(plans.begin(), plans.end(), [](const ConsolidationPlan& a,
                                           const ConsolidationPlan& b) {
    return a.net_benefit_joules > b.net_benefit_joules;
  });
  return plans;
}

}  // namespace wavm3::consolidation
