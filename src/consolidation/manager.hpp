// Energy-aware consolidation manager — the actor of SIII-B(a) and the
// paper's motivating use-case (SI, SVIII): decide which VMs to migrate
// where, accounting for the *energy cost of the migrations themselves*
// through a fitted WAVM3 model, not just the steady-state saving of
// shutting hosts down.
//
// Policy: vacate underutilised hosts (workload consolidation) provided
// the energy saved by powering the host down over the planning horizon
// exceeds the predicted energy of the migrations required to empty it.
// The paper's SVIII example — do not consolidate a high-dirtying-ratio
// VM onto a CPU-loaded host — emerges naturally: the forecast migration
// energy of such moves is high, so their net benefit goes negative.
#pragma once

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "cloud/datacenter.hpp"
#include "core/planner.hpp"

namespace wavm3::consolidation {

/// Thresholds and horizon of the consolidation policy.
struct ConsolidationPolicy {
  double underload_fraction = 0.30;  ///< hosts below this CPU fraction are vacate candidates
  double overload_fraction = 0.90;   ///< never load a target beyond this fraction
  double horizon_seconds = 3600.0;   ///< period the vacated host would stay off
  migration::MigrationType migration_type = migration::MigrationType::kLive;
  /// How often a rolled-back plan migration is re-attempted before the
  /// executor gives up on it (failures waste energy, so retries are
  /// bounded; the next controller tick replans from the new snapshot).
  int max_retries = 2;
};

/// Observable steady-state host power estimate used for the benefit
/// side of the ledger (idle draw + linear CPU term; the consolidation
/// manager has no access to ground truth either).
struct HostPowerEstimate {
  double idle_watts = 430.0;
  double watts_per_vcpu = 11.0;

  double power(double cpu_vcpus) const { return idle_watts + watts_per_vcpu * cpu_vcpus; }
};

/// One proposed migration within a consolidation plan.
struct MigrationProposal {
  std::string vm_id;
  std::string source;
  std::string target;
  core::MigrationForecast forecast;      ///< durations, traffic, energy (both hosts)
  double migration_energy_joules = 0.0;  ///< forecast total energy of the move
};

/// A full plan to vacate one host.
struct ConsolidationPlan {
  std::string vacated_host;
  std::vector<MigrationProposal> migrations;
  double migration_cost_joules = 0.0;   ///< sum of move energies above baseline
  double steady_saving_joules = 0.0;    ///< idle draw of the vacated host over the horizon
  double net_benefit_joules = 0.0;      ///< saving - cost
  bool beneficial = false;
};

/// Plans consolidations over a data centre snapshot.
class ConsolidationManager {
 public:
  /// `planner` must outlive the manager.
  ConsolidationManager(ConsolidationPolicy policy, const core::MigrationPlanner& planner,
                       HostPowerEstimate host_power);

  const ConsolidationPolicy& policy() const { return policy_; }

  /// Builds a MigrationScenario for moving `vm` from `source` to
  /// `target` given current loads (exposed for examples/tests).
  core::MigrationScenario scenario_for(const cloud::DataCenter& dc, const cloud::Vm& vm,
                                       const cloud::Host& source, const cloud::Host& target,
                                       double link_payload_rate, double now = 0.0) const;

  /// Evaluates vacating `host_name` entirely: picks a feasible target
  /// for each of its VMs (most-loaded-first fit below the overload
  /// threshold) and totals costs vs savings. Hosts named in
  /// `excluded_targets` (e.g. powered-off machines) are never chosen as
  /// destinations. Returns nullopt when no feasible assignment exists.
  std::optional<ConsolidationPlan> plan_vacate(
      cloud::DataCenter& dc, const std::string& host_name, double link_payload_rate,
      const std::set<std::string>& excluded_targets = {}, double now = 0.0) const;

  /// Scans all hosts and returns plans for every underutilised host,
  /// most beneficial first. Plans are independent alternatives (each
  /// assumes the current snapshot), not a sequential schedule.
  std::vector<ConsolidationPlan> plan(cloud::DataCenter& dc, double link_payload_rate,
                                      const std::set<std::string>& excluded_targets = {},
                                      double now = 0.0) const;

 private:
  ConsolidationPolicy policy_;
  const core::MigrationPlanner* planner_;
  HostPowerEstimate host_power_;
};

}  // namespace wavm3::consolidation
