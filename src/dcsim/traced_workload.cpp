#include "dcsim/traced_workload.hpp"

#include "util/error.hpp"

namespace wavm3::dcsim {

TracedWorkload::TracedWorkload(TracedWorkloadParams params) : params_(std::move(params)) {
  WAVM3_REQUIRE(params_.vcpus >= 1, "need at least one vCPU");
  WAVM3_REQUIRE(params_.dirty_pages_per_s_full >= 0.0, "dirty rate must be nonnegative");
  WAVM3_REQUIRE(params_.memory_used_fraction >= 0.0 && params_.memory_used_fraction <= 1.0,
                "memory fraction must be in [0,1]");
}

double TracedWorkload::cpu_demand(double t) const {
  return params_.profile.fraction_at(t) * static_cast<double>(params_.vcpus);
}

double TracedWorkload::dirty_page_rate(double t) const {
  return params_.profile.fraction_at(t) * params_.dirty_pages_per_s_full;
}

}  // namespace wavm3::dcsim
