#include "dcsim/load_profile.hpp"

#include <algorithm>
#include <cmath>

#include <cstdlib>

#include "util/csv.hpp"
#include "util/error.hpp"

namespace wavm3::dcsim {

LoadProfile LoadProfile::constant(double fraction) {
  WAVM3_REQUIRE(fraction >= 0.0 && fraction <= 1.0, "fraction must be in [0,1]");
  LoadProfile p;
  p.points_ = {{0.0, fraction}};
  return p;
}

LoadProfile LoadProfile::steps(std::vector<LoadPoint> points, double period) {
  WAVM3_REQUIRE(!points.empty(), "profile needs at least one point");
  WAVM3_REQUIRE(points.front().time == 0.0, "profile must start at time 0");
  for (std::size_t i = 0; i < points.size(); ++i) {
    WAVM3_REQUIRE(points[i].fraction >= 0.0 && points[i].fraction <= 1.0,
                  "fractions must be in [0,1]");
    if (i > 0) WAVM3_REQUIRE(points[i].time > points[i - 1].time, "times must increase");
  }
  if (period > 0.0) {
    WAVM3_REQUIRE(period > points.back().time, "period must exceed the last breakpoint");
  }
  LoadProfile p;
  p.points_ = std::move(points);
  p.period_ = period;
  return p;
}

LoadProfile LoadProfile::diurnal(double low, double high, double period, double phase,
                                 int steps_per_cycle) {
  WAVM3_REQUIRE(low >= 0.0 && high <= 1.0 && low <= high, "need 0 <= low <= high <= 1");
  WAVM3_REQUIRE(period > 0.0 && steps_per_cycle >= 2, "bad diurnal parameters");
  std::vector<LoadPoint> points;
  points.reserve(static_cast<std::size_t>(steps_per_cycle));
  for (int i = 0; i < steps_per_cycle; ++i) {
    const double t = period * i / steps_per_cycle;
    const double angle = 2.0 * M_PI * (t + phase) / period;
    const double f = low + (high - low) * 0.5 * (1.0 - std::cos(angle));
    points.push_back({t, f});
  }
  return steps(std::move(points), period);
}

LoadProfile LoadProfile::from_csv(const std::string& path, double period) {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
  WAVM3_REQUIRE(util::read_csv_file(path, header, rows), "cannot read profile CSV: " + path);
  WAVM3_REQUIRE(header.size() == 2 && header[0] == "time_s" && header[1] == "fraction",
                "profile CSV must have header time_s,fraction: " + path);
  std::vector<LoadPoint> points;
  points.reserve(rows.size());
  for (const auto& r : rows) {
    char* end = nullptr;
    const double t = std::strtod(r[0].c_str(), &end);
    WAVM3_REQUIRE(end != r[0].c_str(), "malformed time in profile CSV: " + r[0]);
    const double f = std::strtod(r[1].c_str(), &end);
    WAVM3_REQUIRE(end != r[1].c_str(), "malformed fraction in profile CSV: " + r[1]);
    points.push_back({t, f});
  }
  return steps(std::move(points), period);
}

double LoadProfile::fraction_at(double t) const {
  WAVM3_REQUIRE(t >= 0.0, "time must be nonnegative");
  double local = t;
  if (period_ > 0.0) local = std::fmod(t, period_);
  // Last breakpoint at or before `local`.
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), local,
      [](double value, const LoadPoint& p) { return value < p.time; });
  if (it == points_.begin()) return points_.front().fraction;
  return (it - 1)->fraction;
}

double LoadProfile::mean_fraction() const {
  if (points_.size() == 1) return points_.front().fraction;
  const double end = period_ > 0.0 ? period_ : points_.back().time + 1.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const double t0 = points_[i].time;
    const double t1 = i + 1 < points_.size() ? points_[i + 1].time : end;
    sum += points_[i].fraction * (t1 - t0);
  }
  return sum / end;
}

}  // namespace wavm3::dcsim
