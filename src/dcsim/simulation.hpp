// Closed-loop data-centre simulation — the integration the paper's
// SVIII calls for ("such a model could also be easily integrated in
// Cloud simulators to provide more accurate estimation of energy
// consumption in data centres").
//
// A fleet of homogeneous hosts runs VMs with time-varying load
// profiles. A controller periodically (1) relieves overloaded hosts and
// (2) consolidates underutilised ones, executing the chosen migrations
// through the migration engine and powering vacated hosts off. Total
// energy is integrated from the ground-truth power of every host, so
// different consolidation strategies can be compared end to end:
//
//   kNoConsolidation  - never migrate (baseline)
//   kCostBlind        - vacate whenever feasible, ignoring what the
//                       migrations themselves will cost
//   kCostAware        - vacate only when the WAVM3 forecast says the
//                       moves pay for themselves within the horizon
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "cloud/datacenter.hpp"
#include "consolidation/manager.hpp"
#include "core/planner.hpp"
#include "dcsim/traced_workload.hpp"
#include "faults/fault_plan.hpp"
#include "migration/engine.hpp"
#include "net/bandwidth_model.hpp"
#include "power/host_power_model.hpp"

namespace wavm3::dcsim {

/// Consolidation strategy under test.
enum class Strategy { kNoConsolidation, kCostBlind, kCostAware };

const char* to_string(Strategy s);

/// One VM to place at simulation start.
struct VmPlacement {
  std::string vm_id;
  std::string host;          ///< initial host name
  cloud::VmSpec spec;
  TracedWorkloadParams workload;
};

/// Full simulation configuration.
struct DcSimConfig {
  std::vector<cloud::HostSpec> hosts;    ///< homogeneous fleet (>= 2)
  power::HostPowerParams power;          ///< ground-truth machine class
  net::LinkSpec link;                    ///< default link between any host pair
  net::BandwidthModelParams bandwidth;
  migration::MigrationConfig migration;
  std::vector<VmPlacement> vms;

  double duration = 4.0 * 3600.0;          ///< simulated seconds
  double controller_interval = 300.0;      ///< consolidation check cadence
  double power_sample_period = 2.0;        ///< energy-accounting resolution
  double standby_watts = 0.0;              ///< draw of a powered-off host
  consolidation::ConsolidationPolicy policy;
  Strategy strategy = Strategy::kCostAware;
  /// Optional fault schedule injected into the migration engine (link
  /// faults, overload spikes, connection losses). Failed plan moves
  /// are retried up to policy.max_retries each.
  std::shared_ptr<const faults::FaultPlan> faults;
};

/// What one simulation produced.
struct DcSimReport {
  Strategy strategy = Strategy::kNoConsolidation;
  double duration = 0.0;
  double total_energy_joules = 0.0;          ///< fleet energy over the horizon
  std::map<std::string, double> host_energy; ///< per-host breakdown
  int migrations_executed = 0;               ///< completed migrations
  int migrations_failed = 0;                 ///< rolled back or VM lost
  int migrations_retried = 0;                ///< re-attempts after rollback
  int migration_retries_exhausted = 0;       ///< rollbacks dropped at the retry cap
  /// Failed migrations keyed by cause ("rolled-back" / "vm-lost"); the
  /// per-cause split behind migrations_failed. Lost VMs never retry:
  /// the engine already restarted them on the target.
  std::map<std::string, int> migration_failures_by_cause;
  double wasted_migration_bytes = 0.0;       ///< traffic of failed migrations
  int plans_rejected_by_cost = 0;            ///< cost-aware refusals
  int power_off_events = 0;
  int power_on_events = 0;
  double total_migration_downtime = 0.0;
  /// Mean of the migrating VMs' performance fraction over their
  /// migrations (1 = unaffected); the fleet-level SLA view of Table I's
  /// slowdown column. 1.0 when no migration ran.
  double mean_migration_performance = 1.0;
  double final_powered_on_hosts = 0.0;
};

/// Runs one configured simulation. The planner is required for
/// kCostBlind/kCostAware (it prices and routes the moves); it may be
/// null for kNoConsolidation.
class DataCenterSimulation {
 public:
  DataCenterSimulation(DcSimConfig config, const core::MigrationPlanner* planner);

  /// Executes the simulation to `config.duration` and returns the report.
  /// A simulation object is single-use.
  DcSimReport run();

 private:
  struct Runtime;  // owns simulator, datacenter, engine, controller state

  DcSimConfig config_;
  const core::MigrationPlanner* planner_;
  bool ran_ = false;
};

/// Convenience: builds a pseudo-random fleet scenario with `n_hosts`
/// hosts and `n_vms` diurnal-profile VMs (deterministic in `seed`),
/// suitable for strategy comparisons.
DcSimConfig make_fleet_scenario(int n_hosts, int n_vms, std::uint64_t seed);

/// Projects `plan` onto the tracer's simulated-time track as instant
/// events (interval faults are stamped at their start with the
/// duration as an annotation). run() calls this for its own plan;
/// other fault-plan consumers (e.g. `wavm3 trace`) call it directly.
/// No-op while the tracer is disabled.
void emit_fault_instants(const faults::FaultPlan& plan);

}  // namespace wavm3::dcsim
