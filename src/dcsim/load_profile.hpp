// Time-varying load profiles for data-centre simulations: the paper's
// SVIII use-case needs VMs whose utilisation changes over time so that
// consolidation opportunities appear and disappear.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wavm3::dcsim {

/// One profile breakpoint.
struct LoadPoint {
  double time = 0.0;      ///< seconds from profile start
  double fraction = 0.0;  ///< CPU fraction of the VM's vCPUs, [0, 1]
};

/// Piecewise-constant CPU utilisation over time, optionally cyclic.
class LoadProfile {
 public:
  /// Always-`fraction` profile.
  static LoadProfile constant(double fraction);

  /// Profile stepping through `points` (times strictly increasing,
  /// starting at 0). When `period` > 0 the profile repeats with that
  /// period; otherwise the last fraction holds forever.
  static LoadProfile steps(std::vector<LoadPoint> points, double period = 0.0);

  /// A smooth day/night pattern: fraction oscillates between `low` and
  /// `high` with the given period (default 24 h), starting at `phase`
  /// seconds into the cycle. Sampled into `steps_per_cycle` constant
  /// segments for determinism.
  static LoadProfile diurnal(double low, double high, double period = 86400.0,
                             double phase = 0.0, int steps_per_cycle = 24);

  /// Loads a profile from a CSV file with header `time_s,fraction`
  /// (times strictly increasing from 0). `period` as in steps().
  /// Throws util::ContractError on malformed input or unreadable files.
  static LoadProfile from_csv(const std::string& path, double period = 0.0);

  /// CPU fraction at absolute time t (>= 0).
  double fraction_at(double t) const;

  /// Mean fraction over one period (or over the step list).
  double mean_fraction() const;

  bool cyclic() const { return period_ > 0.0; }
  double period() const { return period_; }

 private:
  LoadProfile() = default;
  std::vector<LoadPoint> points_;
  double period_ = 0.0;
};

}  // namespace wavm3::dcsim
