// Adapts a LoadProfile into the Workload interface so simulated VMs can
// follow recorded/synthetic utilisation traces over a long horizon.
#pragma once

#include "dcsim/load_profile.hpp"
#include "workloads/workload.hpp"

namespace wavm3::dcsim {

/// Parameters of a trace-driven workload.
struct TracedWorkloadParams {
  LoadProfile profile = LoadProfile::constant(0.5);
  int vcpus = 4;                        ///< vCPUs at 100% profile fraction
  double dirty_pages_per_s_full = 2000.0;  ///< dirtying at full load
  std::uint64_t working_set_pages = 65536;  ///< 256 MiB
  double memory_used_fraction = 0.4;
  workloads::WorkloadClass clazz = workloads::WorkloadClass::kMixed;
};

/// Workload whose CPU demand and dirtying follow a LoadProfile.
class TracedWorkload final : public workloads::Workload {
 public:
  explicit TracedWorkload(TracedWorkloadParams params);

  std::string name() const override { return "traced"; }
  workloads::WorkloadClass workload_class() const override { return params_.clazz; }
  double cpu_demand(double t) const override;
  double dirty_page_rate(double t) const override;
  std::uint64_t working_set_pages() const override { return params_.working_set_pages; }
  double memory_used_fraction() const override { return params_.memory_used_fraction; }

  const TracedWorkloadParams& params() const { return params_; }

 private:
  TracedWorkloadParams params_;
};

}  // namespace wavm3::dcsim
