#include "dcsim/simulation.hpp"

#include <algorithm>
#include <deque>
#include <memory>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace wavm3::dcsim {

const char* to_string(Strategy s) {
  switch (s) {
    case Strategy::kNoConsolidation: return "no-consolidation";
    case Strategy::kCostBlind: return "cost-blind";
    case Strategy::kCostAware: return "cost-aware";
  }
  return "?";
}

namespace {

std::uint64_t sim_ns(double seconds) {
  return seconds <= 0.0 ? 0 : static_cast<std::uint64_t>(seconds * 1e9);
}

}  // namespace

void emit_fault_instants(const faults::FaultPlan& plan) {
  obs::Tracer& tr = obs::tracer();
  if (!tr.enabled()) return;
  for (const faults::LinkDegradation& d : plan.degradations()) {
    tr.emit_instant("faults", "link_degradation", sim_ns(d.start),
                    {{"duration_s", d.end - d.start}, {"factor", d.factor}}, nullptr, nullptr,
                    obs::kSimPid);
  }
  for (const faults::LinkFlap& f : plan.flaps()) {
    tr.emit_instant("faults", "link_flap", sim_ns(f.start),
                    {{"duration_s", f.end - f.start},
                     {"down_factor", f.down_factor},
                     {"period_s", f.up_duration + f.down_duration}},
                    nullptr, nullptr, obs::kSimPid);
  }
  for (const faults::TransferStall& s : plan.stalls()) {
    tr.emit_instant("faults", "transfer_stall", sim_ns(s.at), {{"duration_s", s.duration}},
                    nullptr, nullptr, obs::kSimPid);
  }
  for (const faults::HostOverload& o : plan.overloads()) {
    tr.emit_instant("faults", "host_overload", sim_ns(o.start),
                    {{"duration_s", o.end - o.start}, {"extra_vcpus", o.extra_vcpus}}, nullptr,
                    nullptr, obs::kSimPid);
  }
  for (const faults::ConnectionLoss& l : plan.connection_losses()) {
    // Phase-bound losses have no absolute time until a migration runs;
    // stamp them at 0 with their in-phase offset as an annotation.
    const bool absolute = l.phase == faults::FaultPhase::kAny;
    tr.emit_instant("faults", "connection_loss", absolute ? sim_ns(l.at) : 0,
                    {{"offset_s", l.at}}, "phase", faults::to_string(l.phase), obs::kSimPid);
  }
}

/// All mutable simulation state; lives only inside run().
struct DataCenterSimulation::Runtime {
  const DcSimConfig& cfg;
  const core::MigrationPlanner* planner;

  sim::Simulator sim;
  cloud::DataCenter dc;
  power::HostPowerModel power_model;
  std::unique_ptr<migration::MigrationEngine> engine;
  std::unique_ptr<consolidation::ConsolidationManager> manager;

  std::set<std::string> powered_off;
  /// One queued move of the plan being executed, with its retry count.
  struct PendingMove {
    consolidation::MigrationProposal proposal;
    int attempts = 0;
  };
  std::deque<PendingMove> pending;  ///< plan being executed
  std::string vacating_host;        ///< host the plan empties

  // Trapezoidal energy accounting.
  std::map<std::string, double> energy;
  std::map<std::string, double> last_power;
  double last_sample_time = 0.0;
  double performance_sum = 0.0;  ///< accumulates vm_mean_performance
  double last_controller_tick = 0.0;  ///< start of the current control round

  DcSimReport report;

  /// Controller rounds by strategy, in the global obs registry.
  obs::Counter& rounds_counter;

  explicit Runtime(const DcSimConfig& config, const core::MigrationPlanner* pl)
      : cfg(config), planner(pl), power_model(config.power),
        rounds_counter(obs::registry().counter("dcsim_controller_rounds_total",
                                               "Fleet controller ticks executed",
                                               {{"strategy", to_string(config.strategy)}})) {}

  double host_true_power(const cloud::Host& host) const {
    if (powered_off.count(host.name()) != 0) return cfg.standby_watts;
    return power_model.true_power(engine->activity_of(host));
  }

  void sample_power() {
    const double t = sim.now();
    const double dt = t - last_sample_time;
    for (const cloud::Host* h : std::as_const(dc).hosts()) {
      const double p = host_true_power(*h);
      if (dt > 0.0) energy[h->name()] += 0.5 * (last_power[h->name()] + p) * dt;
      last_power[h->name()] = p;
    }
    last_sample_time = t;
  }

  /// Outcome bookkeeping shared by plan and overload-relief moves.
  void account_migration(const migration::MigrationRecord& r) {
    if (r.completed) {
      ++report.migrations_executed;
      performance_sum += r.vm_mean_performance;
    } else {
      ++report.migrations_failed;
      report.wasted_migration_bytes += r.wasted_bytes;
      const char* cause =
          r.outcome == migration::MigrationOutcome::kVmLost ? "vm-lost" : "rolled-back";
      ++report.migration_failures_by_cause[cause];
      obs::registry()
          .counter("dcsim_migration_failures_total", "Failed fleet migrations by cause",
                   {{"strategy", to_string(cfg.strategy)}, {"cause", cause}})
          .inc();
    }
    report.total_migration_downtime += r.downtime;
  }

  /// Starts the next queued migration of the active plan, or finalises
  /// the plan (powering the vacated host off when it emptied).
  void execute_next_migration() {
    while (!pending.empty()) {
      const PendingMove move = pending.front();
      pending.pop_front();
      const consolidation::MigrationProposal& prop = move.proposal;
      cloud::Host* source = dc.host(prop.source);
      cloud::Host* target = dc.host(prop.target);
      if (source == nullptr || target == nullptr || !source->has_vm(prop.vm_id)) continue;
      try {
        engine->migrate(prop.vm_id, prop.source, prop.target, cfg.policy.migration_type, {},
                        [this, move](const migration::MigrationRecord& r) {
                          account_migration(r);
                          // A rolled-back move left the world as it was:
                          // re-attempt in place, up to the policy's
                          // bound. kVmLost must NEVER retry: the engine
                          // already restarted the VM on the target, so
                          // a re-attempt would migrate a VM that is no
                          // longer on the source. Past the bound the
                          // plan continues without this move; the next
                          // controller tick replans around it.
                          if (r.outcome == migration::MigrationOutcome::kRolledBack) {
                            if (move.attempts < cfg.policy.max_retries) {
                              ++report.migrations_retried;
                              obs::registry()
                                  .counter("dcsim_migration_retries_total",
                                           "Rolled-back fleet migrations re-attempted",
                                           {{"strategy", to_string(cfg.strategy)}})
                                  .inc();
                              PendingMove retry = move;
                              ++retry.attempts;
                              pending.push_front(retry);
                            } else {
                              ++report.migration_retries_exhausted;
                              obs::registry()
                                  .counter("dcsim_migration_retries_exhausted_total",
                                           "Rolled-back migrations dropped at the retry cap",
                                           {{"strategy", to_string(cfg.strategy)}})
                                  .inc();
                            }
                          }
                          execute_next_migration();
                        });
        return;  // one at a time; continue from the completion callback
      } catch (const util::ContractError& e) {
        util::log_warn(std::string("dcsim: dropping planned migration: ") + e.what());
      }
    }
    // Plan drained: power the vacated host off when it is really empty.
    if (!vacating_host.empty()) {
      cloud::Host* host = dc.host(vacating_host);
      if (host != nullptr && host->vm_count() == 0 &&
          powered_off.insert(vacating_host).second) {
        ++report.power_off_events;
      }
      vacating_host.clear();
    }
  }

  /// Moves one VM off an overloaded host, powering a standby host on
  /// when no powered-on target has room.
  void relieve_overload(double now) {
    for (cloud::Host* h : dc.hosts()) {
      if (powered_off.count(h->name()) != 0) continue;
      if (h->cpu_utilisation(now) <= cfg.policy.overload_fraction) continue;
      const auto vms = h->vms();
      if (vms.size() < 2) continue;  // nothing sensible to shed

      // Shed the smallest VM (cheapest move).
      const cloud::VmPtr vm = *std::min_element(
          vms.begin(), vms.end(), [now](const cloud::VmPtr& a, const cloud::VmPtr& b) {
            return a->cpu_demand(now) < b->cpu_demand(now);
          });

      // Least-loaded powered-on target with CPU and RAM room.
      cloud::Host* best = nullptr;
      for (cloud::Host* t : dc.hosts()) {
        if (t == h || powered_off.count(t->name()) != 0) continue;
        if (!t->can_fit(vm->spec())) continue;
        const double after = t->cpu_used(now) + vm->cpu_demand(now);
        if (after > cfg.policy.overload_fraction * t->cpu_capacity()) continue;
        if (best == nullptr || t->cpu_utilisation(now) < best->cpu_utilisation(now)) best = t;
      }
      if (best == nullptr) {
        // Wake a standby machine.
        for (cloud::Host* t : dc.hosts()) {
          if (powered_off.count(t->name()) != 0 && t->can_fit(vm->spec())) {
            powered_off.erase(t->name());
            ++report.power_on_events;
            best = t;
            break;
          }
        }
      }
      if (best == nullptr) continue;

      try {
        // Relief moves are not retried on failure: the next controller
        // tick reassesses the (possibly changed) overload picture.
        engine->migrate(vm->id(), h->name(), best->name(), cfg.policy.migration_type, {},
                        [this](const migration::MigrationRecord& r) { account_migration(r); });
      } catch (const util::ContractError& e) {
        util::log_warn(std::string("dcsim: overload relief failed: ") + e.what());
      }
      return;  // at most one relief migration per tick
    }
  }

  void try_consolidate(double now) {
    const auto plans = manager->plan(dc, net::Link(cfg.link).max_payload_rate(), powered_off,
                                     now);
    for (const auto& plan : plans) {
      if (cfg.strategy == Strategy::kCostAware && !plan.beneficial) {
        ++report.plans_rejected_by_cost;
        continue;
      }
      vacating_host = plan.vacated_host;
      pending.clear();
      for (const consolidation::MigrationProposal& m : plan.migrations) {
        pending.push_back(PendingMove{m, 0});
      }
      execute_next_migration();
      return;  // one plan at a time
    }
  }

  void controller_tick() {
    if (cfg.strategy == Strategy::kNoConsolidation) return;
    const double now = sim.now();
    obs::Tracer& tr = obs::tracer();
    if (tr.enabled()) {
      const std::uint64_t start = sim_ns(last_controller_tick);
      tr.emit_complete("dcsim", "controller_round", start, sim_ns(now) - start,
                       {{"queued_moves", static_cast<double>(pending.size())},
                        {"powered_off_hosts", static_cast<double>(powered_off.size())},
                        {"migration_active", engine->migration_active() ? 1.0 : 0.0}},
                       "strategy", to_string(cfg.strategy), obs::kSimPid);
    }
    last_controller_tick = now;
    rounds_counter.inc();
    if (engine->migration_active() || !pending.empty()) return;
    relieve_overload(now);
    if (engine->migration_active()) return;
    try_consolidate(now);
  }
};

DataCenterSimulation::DataCenterSimulation(DcSimConfig config,
                                           const core::MigrationPlanner* planner)
    : config_(std::move(config)), planner_(planner) {
  WAVM3_REQUIRE(config_.hosts.size() >= 2, "need at least two hosts");
  WAVM3_REQUIRE(config_.duration > 0.0, "duration must be positive");
  WAVM3_REQUIRE(config_.controller_interval > 0.0, "controller interval must be positive");
  WAVM3_REQUIRE(config_.power_sample_period > 0.0, "sample period must be positive");
  WAVM3_REQUIRE(config_.strategy == Strategy::kNoConsolidation || planner_ != nullptr,
                "consolidating strategies need a planner");
}

DcSimReport DataCenterSimulation::run() {
  WAVM3_REQUIRE(!ran_, "a DataCenterSimulation is single-use");
  ran_ = true;

  Runtime rt(config_, planner_);
  rt.report.strategy = config_.strategy;
  rt.report.duration = config_.duration;

  // Build the fleet. Every host pair is reachable through the default
  // link, materialised lazily per pair on first use — O(pairs that
  // actually migrate) links instead of an eager O(hosts^2) mesh.
  for (const auto& spec : config_.hosts) rt.dc.add_host(spec);
  rt.dc.network().set_default_link(config_.link);
  for (const auto& placement : config_.vms) {
    cloud::Host* host = rt.dc.host(placement.host);
    WAVM3_REQUIRE(host != nullptr, "placement names unknown host: " + placement.host);
    auto vm = std::make_shared<cloud::Vm>(placement.vm_id, placement.spec);
    vm->set_workload(std::make_shared<TracedWorkload>(placement.workload));
    vm->start();
    host->add_vm(std::move(vm));
  }

  rt.engine = std::make_unique<migration::MigrationEngine>(
      rt.sim, rt.dc, net::BandwidthModel(config_.bandwidth), config_.migration);
  if (config_.faults != nullptr) {
    rt.engine->set_fault_plan(config_.faults);
    emit_fault_instants(*config_.faults);
  }
  if (planner_ != nullptr) {
    consolidation::HostPowerEstimate estimate;
    estimate.idle_watts = config_.power.idle_watts;
    estimate.watts_per_vcpu = config_.power.watts_per_vcpu;
    rt.manager = std::make_unique<consolidation::ConsolidationManager>(config_.policy,
                                                                       *planner_, estimate);
  }

  // Initial power sample, then periodic accounting and control.
  rt.sample_power();
  auto sampler = rt.sim.schedule_periodic(config_.power_sample_period,
                                          config_.power_sample_period,
                                          [&rt] { rt.sample_power(); });
  auto controller = rt.sim.schedule_periodic(config_.controller_interval,
                                             config_.controller_interval,
                                             [&rt] { rt.controller_tick(); });

  rt.sim.run_until(config_.duration);
  sampler.cancel();
  controller.cancel();
  // Let any in-flight migration finish so engine state unwinds cleanly,
  // but account energy only up to `duration`.
  rt.sim.run_to_completion();

  rt.report.host_energy = rt.energy;
  for (const auto& [name, joules] : rt.energy) rt.report.total_energy_joules += joules;
  rt.report.final_powered_on_hosts =
      static_cast<double>(config_.hosts.size() - rt.powered_off.size());
  if (rt.report.migrations_executed > 0) {
    rt.report.mean_migration_performance =
        rt.performance_sum / rt.report.migrations_executed;
  }
  obs::registry()
      .counter("dcsim_runs_total", "Fleet simulations executed",
               {{"strategy", to_string(config_.strategy)}})
      .inc();
  obs::registry()
      .gauge("dcsim_last_run_energy_joules", "Total fleet energy of the latest run",
             {{"strategy", to_string(config_.strategy)}})
      .set(rt.report.total_energy_joules);
  return rt.report;
}

DcSimConfig make_fleet_scenario(int n_hosts, int n_vms, std::uint64_t seed) {
  WAVM3_REQUIRE(n_hosts >= 2 && n_vms >= 1, "need >= 2 hosts and >= 1 VM");
  util::RngFactory rng_factory(seed);
  util::RngStream rng = rng_factory.stream("fleet");

  DcSimConfig cfg;
  for (int i = 0; i < n_hosts; ++i) {
    cloud::HostSpec h;
    h.name = util::format("host%02d", i);
    h.vcpus = 32;
    h.ram_bytes = util::gib(32);
    // Fleet fields: 16-host racks, GbE NICs, one migration at a time
    // per host (the planner's wave scheduler works under these caps).
    h.group = util::format("rack%02d", i / 16);
    h.nic_rate = util::gbit_per_s(1);
    h.max_concurrent_migrations = 1;
    cfg.hosts.push_back(h);
  }
  // m-class ground truth (same machines as the paper's m01-m02 pair).
  cfg.power.machine_class = "m-class (Opteron 8356)";
  cfg.power.idle_watts = 430.0;
  cfg.power.vcpus = 32.0;
  cfg.power.watts_per_vcpu = 11.0;
  cfg.power.cpu_convexity_watts = 60.0;
  cfg.power.fan_watts_full = 50.0;
  cfg.link.name = "fleet GbE";
  cfg.link.wire_rate = util::gbit_per_s(1);

  for (int i = 0; i < n_vms; ++i) {
    VmPlacement p;
    p.vm_id = util::format("vm%03d", i);
    p.host = cfg.hosts[static_cast<std::size_t>(i) % cfg.hosts.size()].name;
    p.spec.instance_type = "fleet-vm";
    p.spec.vcpus = static_cast<int>(rng.uniform_int(1, 4));
    p.spec.ram_bytes = util::gib(static_cast<double>(rng.uniform_int(1, 4)));
    p.spec.storage_bytes = util::gib(6);
    // Staggered diurnal profiles: load peaks at different times, so
    // consolidation opportunities open and close over the day.
    const double low = rng.uniform(0.05, 0.25);
    const double high = rng.uniform(0.5, 1.0);
    const double phase = rng.uniform(0.0, 86400.0);
    p.workload.profile = LoadProfile::diurnal(low, high, 86400.0, phase);
    p.workload.vcpus = p.spec.vcpus;
    p.workload.dirty_pages_per_s_full = rng.uniform(500.0, 20000.0);
    p.workload.working_set_pages = static_cast<std::uint64_t>(
        rng.uniform(0.05, 0.5) * p.spec.ram_bytes / util::kPageSize);
    cfg.vms.push_back(std::move(p));
  }
  return cfg;
}

}  // namespace wavm3::dcsim
