// Xen-like hypervisor CPU arbitration, implementing the structure of
// Eq. 2: CPU(h,t) = CPUVMM(V(h,t)) + sum_v CPU(v,t) + CPUmigr(h,t).
//
// The VMM (dom-0) consumes a base share plus a per-guest bookkeeping
// overhead; when aggregate demand exceeds the host capacity, guests are
// multiplexed with proportional-share scheduling (a simplification of
// Xen's credit scheduler that preserves the property the paper relies
// on: total utilisation saturates at the hardware limit).
#pragma once

#include <cstddef>
#include <vector>

namespace wavm3::cloud {

/// VMM overhead parameters.
struct HypervisorParams {
  double dom0_base_vcpus = 0.25;     ///< dom-0 idle housekeeping
  double per_vm_overhead_vcpus = 0.05;  ///< per running guest bookkeeping
};

/// Stateless arbitration helper.
class Hypervisor {
 public:
  explicit Hypervisor(HypervisorParams params = {});

  const HypervisorParams& params() const { return params_; }

  /// CPUVMM(V): dom-0 demand given the number of running guests.
  double vmm_demand(std::size_t running_vms) const;

  /// Proportional-share grant: returns per-entity grants that sum to at
  /// most `capacity`. When total demand fits, grants equal demands;
  /// otherwise each demand is scaled by capacity/total.
  static std::vector<double> arbitrate(const std::vector<double>& demands, double capacity);

 private:
  HypervisorParams params_;
};

}  // namespace wavm3::cloud
