#include "cloud/vm.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/units.hpp"

namespace wavm3::cloud {

const char* to_string(VmState s) {
  switch (s) {
    case VmState::kStopped: return "stopped";
    case VmState::kRunning: return "running";
    case VmState::kSuspended: return "suspended";
  }
  return "?";
}

Vm::Vm(std::string id, VmSpec spec)
    : id_(std::move(id)),
      spec_(std::move(spec)),
      workload_(std::make_shared<workloads::IdleWorkload>()) {
  WAVM3_REQUIRE(!id_.empty(), "VM id must not be empty");
  WAVM3_REQUIRE(spec_.vcpus >= 1, "VM needs at least one vCPU");
  WAVM3_REQUIRE(spec_.ram_bytes > 0.0, "VM needs memory");
}

void Vm::set_workload(workloads::WorkloadPtr workload) {
  WAVM3_REQUIRE(workload != nullptr, "workload must not be null");
  workload_ = std::move(workload);
}

void Vm::start() {
  WAVM3_REQUIRE(state_ == VmState::kStopped, "can only start a stopped VM");
  state_ = VmState::kRunning;
}

void Vm::suspend() {
  WAVM3_REQUIRE(state_ == VmState::kRunning, "can only suspend a running VM");
  state_ = VmState::kSuspended;
}

void Vm::resume() {
  WAVM3_REQUIRE(state_ == VmState::kSuspended, "can only resume a suspended VM");
  state_ = VmState::kRunning;
}

void Vm::stop() {
  WAVM3_REQUIRE(state_ != VmState::kStopped, "VM already stopped");
  state_ = VmState::kStopped;
}

double Vm::cpu_demand(double t) const {
  if (state_ != VmState::kRunning) return 0.0;
  return std::min(workload_->cpu_demand(t), static_cast<double>(spec_.vcpus));
}

double Vm::dirty_page_rate(double t) const {
  if (state_ != VmState::kRunning) return 0.0;
  return workload_->dirty_page_rate(t);
}

double Vm::network_demand(double t) const {
  if (state_ != VmState::kRunning) return 0.0;
  return workload_->network_demand(t);
}

std::uint64_t Vm::ram_pages() const {
  return util::pages_for_bytes(spec_.ram_bytes);
}

std::uint64_t Vm::working_set_pages() const {
  return std::min(workload_->working_set_pages(), ram_pages());
}

}  // namespace wavm3::cloud
