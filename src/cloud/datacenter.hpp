// Data centre: the set of hosts plus the network topology connecting
// them. The consolidation manager and the experiment harness operate on
// this container.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cloud/host.hpp"
#include "net/topology.hpp"

namespace wavm3::cloud {

/// Hosts + network.
class DataCenter {
 public:
  DataCenter() = default;

  /// Adds a host; fails on duplicate names.
  Host& add_host(HostSpec spec, HypervisorParams hypervisor_params = {});

  /// Returns the host with this name, or nullptr.
  Host* host(const std::string& name);
  const Host* host(const std::string& name) const;

  /// All hosts in deterministic (name) order.
  std::vector<Host*> hosts();
  std::vector<const Host*> hosts() const;
  std::size_t host_count() const { return hosts_.size(); }

  /// Network topology between hosts.
  net::Topology& network() { return network_; }
  const net::Topology& network() const { return network_; }

  /// Locates the host currently holding `vm_id`, or nullptr.
  Host* host_of_vm(const std::string& vm_id);

  /// Total number of VMs across all hosts.
  std::size_t total_vm_count() const;

 private:
  std::map<std::string, std::unique_ptr<Host>> hosts_;
  net::Topology network_;
};

}  // namespace wavm3::cloud
