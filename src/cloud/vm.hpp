// Virtual machine: a resource container in one of three states
// (stopped / running / suspended) executing a Workload. The migration
// engine manipulates VM state; hosts arbitrate its CPU demand.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "workloads/workload.hpp"

namespace wavm3::cloud {

/// Lifecycle states relevant to migration (SIII-A).
enum class VmState { kStopped, kRunning, kSuspended };

const char* to_string(VmState s);

/// Static VM sizing, mirroring Table IIb.
struct VmSpec {
  std::string instance_type;  ///< e.g. "migrating-cpu"
  int vcpus = 1;
  double ram_bytes = 0.0;
  double storage_bytes = 0.0;
  std::string linux_kernel = "2.6.32";
};

/// A virtual machine.
class Vm {
 public:
  /// Creates a stopped VM with an idle workload.
  Vm(std::string id, VmSpec spec);

  const std::string& id() const { return id_; }
  const VmSpec& spec() const { return spec_; }
  VmState state() const { return state_; }

  /// Replaces the running program. Never null afterwards.
  void set_workload(workloads::WorkloadPtr workload);
  const workloads::Workload& workload() const { return *workload_; }
  workloads::WorkloadPtr workload_ptr() const { return workload_; }

  /// State transitions. Invalid transitions throw util::ContractError
  /// (e.g. resuming a VM that was never suspended).
  void start();
  void suspend();
  void resume();
  void stop();

  /// vCPUs demanded at time t: the workload demand clamped to the VM's
  /// vCPU count; zero unless running.
  double cpu_demand(double t) const;

  /// Pages/s the workload dirties at full CPU grant; zero unless running.
  double dirty_page_rate(double t) const;

  /// NIC payload traffic the workload generates; zero unless running.
  double network_demand(double t) const;

  /// Total memory allocated to the VM, in 4 KiB pages (MEM(v) of Eq. 1).
  std::uint64_t ram_pages() const;

  /// The writable working set in pages, clamped to the VM's memory.
  std::uint64_t working_set_pages() const;

 private:
  std::string id_;
  VmSpec spec_;
  VmState state_ = VmState::kStopped;
  workloads::WorkloadPtr workload_;
};

using VmPtr = std::shared_ptr<Vm>;

}  // namespace wavm3::cloud
