#include "cloud/host.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace wavm3::cloud {

Host::Host(HostSpec spec, HypervisorParams hypervisor_params)
    : spec_(std::move(spec)), hypervisor_(hypervisor_params) {
  WAVM3_REQUIRE(!spec_.name.empty(), "host name must not be empty");
  WAVM3_REQUIRE(spec_.vcpus >= 1, "host needs at least one vCPU");
  WAVM3_REQUIRE(spec_.ram_bytes > 0.0, "host needs memory");
}

void Host::add_vm(VmPtr vm) {
  WAVM3_REQUIRE(vm != nullptr, "cannot add a null VM");
  WAVM3_REQUIRE(!has_vm(vm->id()), "duplicate VM id on host " + spec_.name);
  WAVM3_REQUIRE(can_fit(vm->spec()), "VM does not fit in host RAM");
  vms_.emplace(vm->id(), std::move(vm));
}

VmPtr Host::remove_vm(const std::string& vm_id) {
  const auto it = vms_.find(vm_id);
  WAVM3_REQUIRE(it != vms_.end(), "VM not on this host: " + vm_id);
  VmPtr out = it->second;
  vms_.erase(it);
  return out;
}

VmPtr Host::vm(const std::string& vm_id) const {
  const auto it = vms_.find(vm_id);
  return it == vms_.end() ? nullptr : it->second;
}

std::vector<VmPtr> Host::vms() const {
  std::vector<VmPtr> out;
  out.reserve(vms_.size());
  for (const auto& [id, v] : vms_) out.push_back(v);
  return out;
}

std::size_t Host::running_vm_count() const {
  std::size_t n = 0;
  for (const auto& [id, v] : vms_)
    if (v->state() == VmState::kRunning) ++n;
  return n;
}

void Host::set_migration_cpu_demand(double vcpus) {
  WAVM3_REQUIRE(vcpus >= 0.0, "migration demand must be nonnegative");
  migration_cpu_demand_ = vcpus;
}

double Host::total_vm_demand(double t) const {
  double sum = 0.0;
  for (const auto& [id, v] : vms_) sum += v->cpu_demand(t);
  return sum;
}

double Host::guest_network_demand(double t) const {
  double sum = 0.0;
  for (const auto& [id, v] : vms_) sum += v->network_demand(t);
  return sum;
}

double Host::vmm_demand(double /*t*/) const {
  return hypervisor_.vmm_demand(running_vm_count());
}

double Host::cpu_used(double t) const {
  const double demand = vmm_demand(t) + total_vm_demand(t) + migration_cpu_demand_;
  return std::min(demand, cpu_capacity());
}

double Host::cpu_granted_to(const std::string& vm_id, double t) const {
  const VmPtr v = vm(vm_id);
  if (!v) return 0.0;
  const double demand = v->cpu_demand(t);
  if (demand == 0.0) return 0.0;
  const double total = vmm_demand(t) + total_vm_demand(t) + migration_cpu_demand_;
  if (total <= cpu_capacity()) return demand;
  return demand * cpu_capacity() / total;
}

double Host::headroom_excluding_migration(double t) const {
  return std::max(0.0, cpu_capacity() - vmm_demand(t) - total_vm_demand(t));
}

double Host::ram_committed() const {
  double sum = 0.0;
  for (const auto& [id, v] : vms_) sum += v->spec().ram_bytes;
  return sum;
}

bool Host::can_fit(const VmSpec& vm_spec) const {
  return ram_committed() + vm_spec.ram_bytes <= spec_.ram_bytes;
}

}  // namespace wavm3::cloud
