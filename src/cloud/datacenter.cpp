#include "cloud/datacenter.hpp"

#include "util/error.hpp"

namespace wavm3::cloud {

Host& DataCenter::add_host(HostSpec spec, HypervisorParams hypervisor_params) {
  WAVM3_REQUIRE(hosts_.find(spec.name) == hosts_.end(), "duplicate host name: " + spec.name);
  const std::string name = spec.name;
  auto host = std::make_unique<Host>(std::move(spec), hypervisor_params);
  Host& ref = *host;
  hosts_.emplace(name, std::move(host));
  return ref;
}

Host* DataCenter::host(const std::string& name) {
  const auto it = hosts_.find(name);
  return it == hosts_.end() ? nullptr : it->second.get();
}

const Host* DataCenter::host(const std::string& name) const {
  const auto it = hosts_.find(name);
  return it == hosts_.end() ? nullptr : it->second.get();
}

std::vector<Host*> DataCenter::hosts() {
  std::vector<Host*> out;
  out.reserve(hosts_.size());
  for (auto& [name, h] : hosts_) out.push_back(h.get());
  return out;
}

std::vector<const Host*> DataCenter::hosts() const {
  std::vector<const Host*> out;
  out.reserve(hosts_.size());
  for (const auto& [name, h] : hosts_) out.push_back(h.get());
  return out;
}

Host* DataCenter::host_of_vm(const std::string& vm_id) {
  for (auto& [name, h] : hosts_)
    if (h->has_vm(vm_id)) return h.get();
  return nullptr;
}

std::size_t DataCenter::total_vm_count() const {
  std::size_t n = 0;
  for (const auto& [name, h] : hosts_) n += h->vm_count();
  return n;
}

}  // namespace wavm3::cloud
