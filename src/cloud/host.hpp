// Physical machine hosting VMs under a hypervisor. Exposes exactly the
// quantities the paper's model consumes: CPU(h,t) (Eq. 2), per-VM
// granted CPU CPU(v,t), and the CPU headroom that throttles migration
// bandwidth.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cloud/hypervisor.hpp"
#include "cloud/vm.hpp"

namespace wavm3::cloud {

/// Static host characteristics, mirroring Table IIc, plus the fleet
/// fields a datacenter-scale planner needs (NIC capacity, migration
/// concurrency, topology placement). The fleet fields default to the
/// two-host testbed's implicit values so host-pair code is unaffected.
struct HostSpec {
  std::string name;              ///< e.g. "m01"
  int vcpus = 1;                 ///< hardware threads (32 for m01/m02)
  double ram_bytes = 0.0;
  std::string cpu_model;         ///< e.g. "16x Opteron 8356, dual threaded"
  /// Instruction-set architecture. Xen refuses migration between
  /// incompatible architectures (paper SI), which restricts the model
  /// to homogeneous source/target pairs; the engine enforces it.
  std::string cpu_architecture = "x86_64";
  std::string nic_model;         ///< e.g. "Broadcom BCM5704"
  std::string xen_version = "4.2.5";

  /// NIC wire rate in bytes/s; 0 = unbounded (the link alone limits,
  /// which is the two-host testbed behaviour).
  double nic_rate = 0.0;
  /// How many migrations this host may serve concurrently (as source
  /// or target); planners schedule waves under this cap.
  int max_concurrent_migrations = 1;
  /// Topology group (rack / aggregation domain); same-group pairs get
  /// full link rate, cross-group pairs may be slower. Empty = one flat
  /// group.
  std::string group;
};

/// A physical machine.
class Host {
 public:
  Host(HostSpec spec, HypervisorParams hypervisor_params = {});

  const HostSpec& spec() const { return spec_; }
  const std::string& name() const { return spec_.name; }
  double cpu_capacity() const { return static_cast<double>(spec_.vcpus); }
  const Hypervisor& hypervisor() const { return hypervisor_; }

  /// Places a VM on this host. The VM keeps its current state. Fails on
  /// duplicate id or when the VM's RAM does not fit.
  void add_vm(VmPtr vm);

  /// Removes a VM by id; returns the removed VM.
  VmPtr remove_vm(const std::string& vm_id);

  /// Returns the VM with this id, or nullptr.
  VmPtr vm(const std::string& vm_id) const;
  bool has_vm(const std::string& vm_id) const { return vm(vm_id) != nullptr; }

  /// All placed VMs, in deterministic (id) order.
  std::vector<VmPtr> vms() const;
  std::size_t vm_count() const { return vms_.size(); }
  std::size_t running_vm_count() const;

  /// Extra CPU demand of an in-flight migration helper on this host
  /// (CPUmigr of Eq. 2); set by the migration engine, zero otherwise.
  void set_migration_cpu_demand(double vcpus);
  double migration_cpu_demand() const { return migration_cpu_demand_; }

  /// Aggregate demand of all running guests (uncapped), at time t.
  double total_vm_demand(double t) const;

  /// Aggregate NIC payload traffic of all running guests at time t;
  /// contends with migration traffic on the host's link.
  double guest_network_demand(double t) const;

  /// dom-0 demand (CPUVMM of Eq. 2) at time t.
  double vmm_demand(double t) const;

  /// CPU(h,t): total vCPUs in use, capped at capacity (Eq. 2 with
  /// hardware saturation). This is what dstat would report scaled to
  /// vCPUs.
  double cpu_used(double t) const;

  /// CPU utilisation fraction in [0,1].
  double cpu_utilisation(double t) const { return cpu_used(t) / cpu_capacity(); }

  /// CPU actually granted to one VM after proportional multiplexing
  /// (CPU(v,t)); zero when the VM is not running here.
  double cpu_granted_to(const std::string& vm_id, double t) const;

  /// Headroom left for the migration helper: capacity minus dom-0 and
  /// guest demand (migration demand excluded). Drives achievable
  /// migration bandwidth.
  double headroom_excluding_migration(double t) const;

  /// Sum of placed VMs' RAM.
  double ram_committed() const;

  /// Whether a VM with `spec` fits in the remaining RAM.
  bool can_fit(const VmSpec& vm_spec) const;

 private:
  HostSpec spec_;
  Hypervisor hypervisor_;
  std::map<std::string, VmPtr> vms_;  // ordered -> deterministic iteration
  double migration_cpu_demand_ = 0.0;
};

using HostPtr = std::shared_ptr<Host>;

}  // namespace wavm3::cloud
