#include "cloud/instances.hpp"

#include "util/error.hpp"
#include "util/units.hpp"
#include "workloads/matrixmult.hpp"
#include "workloads/netstream.hpp"
#include "workloads/pagedirtier.hpp"

namespace wavm3::cloud {

using util::gib;
using util::mib;

VmSpec load_cpu_spec() {
  VmSpec s;
  s.instance_type = "load-cpu";
  s.vcpus = 4;
  s.ram_bytes = mib(512);
  s.storage_bytes = gib(1);
  s.linux_kernel = "2.6.32";
  return s;
}

VmSpec migrating_cpu_spec() {
  VmSpec s;
  s.instance_type = "migrating-cpu";
  s.vcpus = 4;
  s.ram_bytes = gib(4);
  s.storage_bytes = gib(6);
  s.linux_kernel = "2.6.32";
  return s;
}

VmSpec migrating_mem_spec() {
  VmSpec s;
  s.instance_type = "migrating-mem";
  s.vcpus = 1;
  s.ram_bytes = gib(4);
  s.storage_bytes = gib(6);
  s.linux_kernel = "2.6.32";
  return s;
}

VmSpec dom0_spec() {
  VmSpec s;
  s.instance_type = "dom-0";
  s.vcpus = 1;
  s.ram_bytes = mib(512);
  s.storage_bytes = gib(115);
  s.linux_kernel = "3.11.4";
  return s;
}

VmSpec migrating_net_spec() {
  VmSpec s;
  s.instance_type = "migrating-net";
  s.vcpus = 2;
  s.ram_bytes = gib(4);
  s.storage_bytes = gib(6);
  s.linux_kernel = "2.6.32";
  return s;
}

VmPtr make_load_cpu_vm(const std::string& id) {
  auto vm = std::make_shared<Vm>(id, load_cpu_spec());
  workloads::MatrixMultParams p;
  p.threads = 4;
  vm->set_workload(std::make_shared<workloads::MatrixMultWorkload>(p));
  vm->start();
  return vm;
}

VmPtr make_migrating_cpu_vm(const std::string& id) {
  auto vm = std::make_shared<Vm>(id, migrating_cpu_spec());
  workloads::MatrixMultParams p;
  p.threads = 4;
  vm->set_workload(std::make_shared<workloads::MatrixMultWorkload>(p));
  vm->start();
  return vm;
}

VmPtr make_migrating_net_vm(const std::string& id, double bytes_per_s) {
  WAVM3_REQUIRE(bytes_per_s >= 0.0, "traffic rate must be nonnegative");
  auto vm = std::make_shared<Vm>(id, migrating_net_spec());
  workloads::NetStreamParams p;
  p.bytes_per_s = bytes_per_s;
  vm->set_workload(std::make_shared<workloads::NetStreamWorkload>(p));
  vm->start();
  return vm;
}

VmPtr make_migrating_mem_vm(const std::string& id, double memory_fraction) {
  WAVM3_REQUIRE(memory_fraction > 0.0 && memory_fraction <= 1.0,
                "memory_fraction must be in (0,1]");
  auto vm = std::make_shared<Vm>(id, migrating_mem_spec());
  workloads::PageDirtierParams p;
  p.memory_fraction = memory_fraction;
  p.allocated_pages = vm->ram_pages();
  // A single dirtier core writes through its buffer at a fixed byte
  // rate; the *fresh* dirty production seen by pre-copy still grows with
  // the touched fraction through the working-set law.
  p.dirty_pages_per_s = 300'000.0;
  p.cpu_demand = 1.0;
  vm->set_workload(std::make_shared<workloads::PageDirtierWorkload>(p));
  vm->start();
  return vm;
}

}  // namespace wavm3::cloud
