// The VM instance catalogue of Table IIb and factory helpers that attach
// the matching workloads (matrixmult / pagedirtier).
#pragma once

#include <string>

#include "cloud/vm.hpp"

namespace wavm3::cloud {

/// VmSpec for the Table IIb `load-cpu` instance:
/// 4 vCPUs, 512 MB RAM, matrixmult, 1 GB storage.
VmSpec load_cpu_spec();

/// VmSpec for `migrating-cpu`: 4 vCPUs, 4 GB RAM, matrixmult, 6 GB storage.
VmSpec migrating_cpu_spec();

/// VmSpec for `migrating-mem`: 1 vCPU, 4 GB RAM, pagedirtier, 6 GB storage.
VmSpec migrating_mem_spec();

/// VmSpec for `dom-0`: 1 vCPU, 512 MB RAM, the VMM itself.
VmSpec dom0_spec();

/// Creates a started `load-cpu` VM running matrixmult on all 4 vCPUs.
VmPtr make_load_cpu_vm(const std::string& id);

/// Creates a started `migrating-cpu` VM running matrixmult (100% CPU,
/// 5% memory — Table IIa).
VmPtr make_migrating_cpu_vm(const std::string& id);

/// Creates a started `migrating-mem` VM running pagedirtier with the
/// given memory fraction (Table IIa sweeps 5%..95%) and a dirtying
/// intensity proportional to the touched memory.
VmPtr make_migrating_mem_vm(const std::string& id, double memory_fraction);

/// VmSpec for the extension `migrating-net` instance (SVIII future
/// work): 2 vCPUs, 4 GB RAM, an iperf-like network streamer.
VmSpec migrating_net_spec();

/// Creates a started `migrating-net` VM streaming `bytes_per_s` of
/// payload through the host NIC.
VmPtr make_migrating_net_vm(const std::string& id, double bytes_per_s);

}  // namespace wavm3::cloud
