#include "cloud/hypervisor.hpp"

#include "util/error.hpp"

namespace wavm3::cloud {

Hypervisor::Hypervisor(HypervisorParams params) : params_(params) {
  WAVM3_REQUIRE(params_.dom0_base_vcpus >= 0.0, "dom0 overhead must be nonnegative");
  WAVM3_REQUIRE(params_.per_vm_overhead_vcpus >= 0.0, "per-VM overhead must be nonnegative");
}

double Hypervisor::vmm_demand(std::size_t running_vms) const {
  return params_.dom0_base_vcpus +
         params_.per_vm_overhead_vcpus * static_cast<double>(running_vms);
}

std::vector<double> Hypervisor::arbitrate(const std::vector<double>& demands, double capacity) {
  WAVM3_REQUIRE(capacity > 0.0, "capacity must be positive");
  double total = 0.0;
  for (const double d : demands) {
    WAVM3_REQUIRE(d >= 0.0, "demands must be nonnegative");
    total += d;
  }
  std::vector<double> grants = demands;
  if (total <= capacity || total == 0.0) return grants;
  const double scale = capacity / total;
  for (double& g : grants) g *= scale;
  return grants;
}

}  // namespace wavm3::cloud
