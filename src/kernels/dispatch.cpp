// Backend resolution and the span-validated public API. Dispatch is a
// pair of relaxed atomics (backend tag + ops vtable pointer) resolved
// once from CPUID and WAVM3_FORCE_SCALAR; set_backend() re-pins them
// for tests, the CLI --force-scalar flag, and bench A/B runs. Reads
// are wait-free, so the serve worker pool can hammer kernels from many
// threads with no synchronization cost.
#include "kernels/kernels.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "kernels/backend.hpp"
#include "util/error.hpp"

namespace wavm3::kernels {

namespace {

using detail::KernelOps;

bool env_forces_scalar() {
  const char* v = std::getenv("WAVM3_FORCE_SCALAR");
  // Any value but unset / empty / literal "0" forces the scalar
  // backend — mirrors how boolean env toggles read elsewhere in the
  // repo (truthy unless explicitly off).
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

const KernelOps* ops_for(Backend b) {
  switch (b) {
    case Backend::kScalar: return &detail::scalar_ops();
    case Backend::kAvx2: return detail::avx2_ops();
    case Backend::kNeon: return detail::neon_ops();
  }
  return nullptr;
}

Backend resolve_startup() {
  if (env_forces_scalar()) return Backend::kScalar;
  if (detail::avx2_ops() != nullptr) return Backend::kAvx2;
  if (detail::neon_ops() != nullptr) return Backend::kNeon;
  return Backend::kScalar;
}

struct Dispatch {
  std::atomic<Backend> backend;
  std::atomic<const KernelOps*> ops;
  Dispatch() {
    const Backend b = resolve_startup();
    backend.store(b, std::memory_order_relaxed);
    ops.store(ops_for(b), std::memory_order_relaxed);
  }
};

Dispatch& dispatch() {
  static Dispatch d;
  return d;
}

const KernelOps& ops() {
  return *dispatch().ops.load(std::memory_order_relaxed);
}

}  // namespace

const char* to_string(Backend b) {
  switch (b) {
    case Backend::kScalar: return "scalar";
    case Backend::kAvx2: return "avx2";
    case Backend::kNeon: return "neon";
  }
  return "unknown";
}

Backend active_backend() {
  return dispatch().backend.load(std::memory_order_relaxed);
}

bool backend_supported(Backend b) { return ops_for(b) != nullptr; }

bool set_backend(Backend b) {
  const KernelOps* o = ops_for(b);
  if (o == nullptr) return false;
  dispatch().ops.store(o, std::memory_order_relaxed);
  dispatch().backend.store(b, std::memory_order_relaxed);
  return true;
}

void reset_backend() { set_backend(resolve_startup()); }

std::string cpu_features() {
  std::string out;
  const auto flag = [&out](const char* name, bool on) {
    if (!out.empty()) out += ' ';
    out += name;
    out += on ? "=1" : "=0";
  };
#if defined(__x86_64__) || defined(__i386__)
  flag("sse2", __builtin_cpu_supports("sse2"));
  flag("avx", __builtin_cpu_supports("avx"));
  flag("avx2", __builtin_cpu_supports("avx2"));
  flag("fma", __builtin_cpu_supports("fma"));
  flag("avx512f", __builtin_cpu_supports("avx512f"));
#elif defined(__aarch64__)
  flag("neon", true);
#else
  flag("scalar_only", true);
#endif
  return out;
}

double dot(std::span<const double> a, std::span<const double> b) {
  WAVM3_REQUIRE(a.size() == b.size(), "kernels: dot size mismatch");
  return ops().dot(a.data(), b.data(), a.size());
}

void axpy(double a, std::span<const double> x, std::span<double> y) {
  WAVM3_REQUIRE(x.size() == y.size(), "kernels: axpy size mismatch");
  ops().axpy(a, x.data(), y.data(), x.size());
}

void apply_design_matrix(std::span<const std::span<const double>> columns,
                         std::span<const double> coeffs, double bias,
                         std::span<double> out) {
  WAVM3_REQUIRE(columns.size() == coeffs.size(),
                "kernels: apply_design_matrix column/coefficient count mismatch");
  WAVM3_REQUIRE(columns.size() <= kMaxApplyColumns,
                "kernels: apply_design_matrix design too wide");
  const double* col_ptrs[kMaxApplyColumns];
  for (std::size_t j = 0; j < columns.size(); ++j) {
    WAVM3_REQUIRE(columns[j].size() == out.size(),
                  "kernels: apply_design_matrix column/output size mismatch");
    col_ptrs[j] = columns[j].data();
  }
  ops().apply(col_ptrs, columns.size(), coeffs.data(), bias, out.data(), out.size());
}

double trapezoid(std::span<const double> t, std::span<const double> y) {
  WAVM3_REQUIRE(t.size() == y.size(), "trapezoid: time/value size mismatch");
  if (t.size() < 2) return 0.0;
  for (std::size_t i = 1; i < t.size(); ++i) {
    WAVM3_REQUIRE(t[i] >= t[i - 1], "trapezoid: timestamps must be non-decreasing");
  }
  return ops().trapezoid(t.data(), y.data(), t.size());
}

double trapezoid_panel(double t0, double y0, double t1, double y1) {
  // Must stay out-of-line in this -ffp-contract=off TU — see the
  // header. Expression order matches every backend's panel.
  return 0.5 * (y0 + y1) * (t1 - t0);
}

double interp_at(std::span<const double> t, std::span<const double> y, double x) {
  WAVM3_REQUIRE(t.size() == y.size(), "interp_at: time/value size mismatch");
  WAVM3_REQUIRE(!t.empty(), "interp_at: empty trace");
  if (x <= t.front()) return y.front();
  if (x >= t.back()) return y.back();
  // upper_bound: at a repeated timestamp the later sample wins (a
  // stalled meter followed by a step reads post-step at the step).
  const auto it = std::upper_bound(t.begin(), t.end(), x);
  const std::size_t hi = static_cast<std::size_t>(it - t.begin());
  const std::size_t lo = hi - 1;
  const double f = (x - t[lo]) / (t[hi] - t[lo]);  // t[lo] <= x < t[hi]
  return y[lo] * (1.0 - f) + y[hi] * f;
}

double window_trapezoid(std::span<const double> t, std::span<const double> y,
                        double t0, double t1) {
  WAVM3_REQUIRE(t.size() == y.size(), "window_trapezoid: time/value size mismatch");
  WAVM3_REQUIRE(t1 >= t0, "window_trapezoid: inverted window");
  if (t.size() < 2) return 0.0;
  const double a = std::max(t0, t.front());
  const double b = std::min(t1, t.back());
  if (b <= a) return 0.0;
  const double ya = interp_at(t, y, a);
  const double yb = interp_at(t, y, b);
  // Interior samples strictly inside (a, b): [upper_bound(a),
  // lower_bound(b)). Same bounds the panel walk used historically, so
  // duplicate-timestamp boundaries resolve identically.
  const auto fit = std::upper_bound(t.begin(), t.end(), a);
  const auto lit = std::lower_bound(fit, t.end(), b);
  const std::size_t fi = static_cast<std::size_t>(fit - t.begin());
  const std::size_t li = static_cast<std::size_t>(lit - t.begin());
  if (fi >= li) {
    // Window falls between two samples: one interpolated panel.
    return trapezoid_panel(a, ya, b, yb);
  }
  // Left partial panel + blocked interior + right partial panel,
  // summed in that fixed order.
  double area = trapezoid_panel(a, ya, t[fi], y[fi]);
  area += ops().trapezoid(t.data() + fi, y.data() + fi, li - fi);
  area += trapezoid_panel(t[li - 1], y[li - 1], b, yb);
  return area;
}

double window_mean(std::span<const double> t, std::span<const double> y,
                   double t0, double t1) {
  if (t.size() < 2) return t.size() == 1 ? y.front() : 0.0;
  const double a = std::max(t0, t.front());
  const double b = std::min(t1, t.back());
  if (b <= a) {
    // Zero-width overlap: the window degenerates to a point sample.
    if (b == a) return interp_at(t, y, a);
    return 0.0;
  }
  return window_trapezoid(t, y, t0, t1) / (b - a);
}

void Scratch::require(std::size_t doubles) {
  if (buf_.size() < doubles) buf_.resize(doubles);
}

std::span<double> Scratch::take(std::size_t n) {
  WAVM3_REQUIRE(used_ + n <= buf_.size(),
                "kernels: scratch overflow — require() the worst case first");
  std::span<double> s(buf_.data() + used_, n);
  used_ += n;
  return s;
}

Scratch& tls_scratch() {
  thread_local Scratch scratch;
  return scratch;
}

}  // namespace wavm3::kernels
