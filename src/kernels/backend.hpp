// Internal backend vtable shared by dispatch.cpp and the backend TUs.
// Raw-pointer signatures: the public span API in kernels.hpp validates
// sizes once, then backends run unchecked. Each backend implements the
// blocked-4 reduction order documented in kernels.hpp — any deviation
// is a contract bug, caught by the golden bit-identity suite.
#pragma once

#include <cstddef>

namespace wavm3::kernels::detail {

struct KernelOps {
  double (*dot)(const double* a, const double* b, std::size_t n);
  void (*axpy)(double a, const double* x, double* y, std::size_t n);
  /// out[i] = sum_j coeffs[j] * cols[j][i] (ascending j, acc from 0.0)
  /// + bias last, skipped when bias == 0.0.
  void (*apply)(const double* const* cols, std::size_t ncols,
                const double* coeffs, double bias, double* out, std::size_t n);
  /// Blocked-4 panel sum over n samples (n - 1 panels); timestamps are
  /// pre-validated non-decreasing by the dispatch wrapper.
  double (*trapezoid)(const double* t, const double* y, std::size_t n);
};

/// Always available.
const KernelOps& scalar_ops();

/// Non-null only when compiled for x86 AND CPUID reports AVX2.
const KernelOps* avx2_ops();

/// Non-null only when compiled for aarch64 (ASIMD is mandatory there).
const KernelOps* neon_ops();

}  // namespace wavm3::kernels::detail
