// NEON backend (aarch64). float64x2 has two lanes, so the contract's
// four accumulators are emulated with TWO vector accumulators: acc01
// holds contract lanes {0, 1} (elements i % 4 in {0, 1}) and acc23
// holds {2, 3}. Consecutive pair loads preserve the acc[i & 3]
// partition exactly, and the combine extracts the four lanes and sums
// (l0 + l1) + (l2 + l3) like every other backend. Multiply and add are
// separate intrinsics (no vfmaq) and the TU compiles with
// -ffp-contract=off, so rounding matches the scalar backend bit for
// bit.
#include "kernels/backend.hpp"

#if defined(__aarch64__)

#include <arm_neon.h>

namespace wavm3::kernels::detail {

namespace {

double reduce_fixed(float64x2_t acc01, float64x2_t acc23, const double* a,
                    const double* b, std::size_t i, std::size_t n) {
  double acc[4] = {vgetq_lane_f64(acc01, 0), vgetq_lane_f64(acc01, 1),
                   vgetq_lane_f64(acc23, 0), vgetq_lane_f64(acc23, 1)};
  for (; i < n; ++i) acc[i & 3] += a[i] * b[i];
  return (acc[0] + acc[1]) + (acc[2] + acc[3]);
}

double dot_neon(const double* a, const double* b, std::size_t n) {
  float64x2_t acc01 = vdupq_n_f64(0.0);
  float64x2_t acc23 = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc01 = vaddq_f64(acc01, vmulq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
    acc23 = vaddq_f64(acc23, vmulq_f64(vld1q_f64(a + i + 2), vld1q_f64(b + i + 2)));
  }
  return reduce_fixed(acc01, acc23, a, b, i, n);
}

void axpy_neon(double a, const double* x, double* y, std::size_t n) {
  const float64x2_t va = vdupq_n_f64(a);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t prod = vmulq_f64(va, vld1q_f64(x + i));
    vst1q_f64(y + i, vaddq_f64(vld1q_f64(y + i), prod));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void apply_neon(const double* const* cols, std::size_t ncols,
                const double* coeffs, double bias, double* out, std::size_t n) {
  const bool add_bias = bias != 0.0;
  const float64x2_t vbias = vdupq_n_f64(bias);
  std::size_t i = 0;
  // Element-wise: no reduction, so any vector width preserves the
  // per-element ascending-j, bias-last order.
  for (; i + 4 <= n; i += 4) {
    float64x2_t acc01 = vdupq_n_f64(0.0);
    float64x2_t acc23 = vdupq_n_f64(0.0);
    for (std::size_t j = 0; j < ncols; ++j) {
      const float64x2_t vc = vdupq_n_f64(coeffs[j]);
      acc01 = vaddq_f64(acc01, vmulq_f64(vc, vld1q_f64(cols[j] + i)));
      acc23 = vaddq_f64(acc23, vmulq_f64(vc, vld1q_f64(cols[j] + i + 2)));
    }
    if (add_bias) {
      acc01 = vaddq_f64(acc01, vbias);
      acc23 = vaddq_f64(acc23, vbias);
    }
    vst1q_f64(out + i, acc01);
    vst1q_f64(out + i + 2, acc23);
  }
  for (; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < ncols; ++j) acc += coeffs[j] * cols[j][i];
    out[i] = add_bias ? acc + bias : acc;
  }
}

double trapezoid_neon(const double* t, const double* y, std::size_t n) {
  if (n < 2) return 0.0;
  const std::size_t panels = n - 1;
  const float64x2_t half = vdupq_n_f64(0.5);
  float64x2_t acc01 = vdupq_n_f64(0.0);
  float64x2_t acc23 = vdupq_n_f64(0.0);
  std::size_t p = 0;
  for (; p + 4 <= panels; p += 4) {
    const float64x2_t ys0 = vaddq_f64(vld1q_f64(y + p), vld1q_f64(y + p + 1));
    const float64x2_t ys1 = vaddq_f64(vld1q_f64(y + p + 2), vld1q_f64(y + p + 3));
    const float64x2_t dt0 = vsubq_f64(vld1q_f64(t + p + 1), vld1q_f64(t + p));
    const float64x2_t dt1 = vsubq_f64(vld1q_f64(t + p + 3), vld1q_f64(t + p + 2));
    acc01 = vaddq_f64(acc01, vmulq_f64(vmulq_f64(half, ys0), dt0));
    acc23 = vaddq_f64(acc23, vmulq_f64(vmulq_f64(half, ys1), dt1));
  }
  double acc[4] = {vgetq_lane_f64(acc01, 0), vgetq_lane_f64(acc01, 1),
                   vgetq_lane_f64(acc23, 0), vgetq_lane_f64(acc23, 1)};
  for (; p < panels; ++p) {
    acc[p & 3] += 0.5 * (y[p] + y[p + 1]) * (t[p + 1] - t[p]);
  }
  return (acc[0] + acc[1]) + (acc[2] + acc[3]);
}

}  // namespace

const KernelOps* neon_ops() {
  static const KernelOps ops{dot_neon, axpy_neon, apply_neon, trapezoid_neon};
  return &ops;
}

}  // namespace wavm3::kernels::detail

#else  // non-aarch64: backend compiled out, dispatch sees "unsupported".

namespace wavm3::kernels::detail {
const KernelOps* neon_ops() { return nullptr; }
}  // namespace wavm3::kernels::detail

#endif
