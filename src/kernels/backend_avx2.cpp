// AVX2 backend. Four 64-bit lanes map 1:1 onto the contract's four
// accumulators: a vector accumulator fed consecutive loads puts
// element i into lane i % 4, which is exactly the scalar backend's
// acc[i & 3] partition, and the horizontal combine extracts lanes and
// sums them in the fixed (l0 + l1) + (l2 + l3) order. Multiplies and
// adds stay separate intrinsics — never FMA — and the TU compiles with
// -ffp-contract=off, so every intermediate rounds exactly as the
// scalar backend rounds it.
#include "kernels/backend.hpp"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

namespace wavm3::kernels::detail {

namespace {

double reduce_fixed(__m256d vacc, const double* a, const double* b,
                    std::size_t i, std::size_t n) {
  alignas(32) double acc[4];
  _mm256_store_pd(acc, vacc);
  for (; i < n; ++i) acc[i & 3] += a[i] * b[i];
  return (acc[0] + acc[1]) + (acc[2] + acc[3]);
}

double dot_avx2(const double* a, const double* b, std::size_t n) {
  __m256d vacc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vacc = _mm256_add_pd(vacc,
                         _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  return reduce_fixed(vacc, a, b, i, n);
}

void axpy_avx2(double a, const double* x, double* y, std::size_t n) {
  const __m256d va = _mm256_set1_pd(a);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d prod = _mm256_mul_pd(va, _mm256_loadu_pd(x + i));
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), prod));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void apply_avx2(const double* const* cols, std::size_t ncols,
                const double* coeffs, double bias, double* out, std::size_t n) {
  const bool add_bias = bias != 0.0;
  const __m256d vbias = _mm256_set1_pd(bias);
  std::size_t i = 0;
  // Element-wise kernel: no cross-lane reduction, so the 8-wide unroll
  // below cannot change any per-element rounding — each out[i] is still
  // sum_j coeffs[j] * cols[j][i] in ascending j, bias last.
  for (; i + 8 <= n; i += 8) {
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    for (std::size_t j = 0; j < ncols; ++j) {
      const __m256d vc = _mm256_set1_pd(coeffs[j]);
      acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(vc, _mm256_loadu_pd(cols[j] + i)));
      acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(vc, _mm256_loadu_pd(cols[j] + i + 4)));
    }
    if (add_bias) {
      acc0 = _mm256_add_pd(acc0, vbias);
      acc1 = _mm256_add_pd(acc1, vbias);
    }
    _mm256_storeu_pd(out + i, acc0);
    _mm256_storeu_pd(out + i + 4, acc1);
  }
  for (; i + 4 <= n; i += 4) {
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t j = 0; j < ncols; ++j) {
      acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_set1_pd(coeffs[j]),
                                             _mm256_loadu_pd(cols[j] + i)));
    }
    if (add_bias) acc = _mm256_add_pd(acc, vbias);
    _mm256_storeu_pd(out + i, acc);
  }
  for (; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < ncols; ++j) acc += coeffs[j] * cols[j][i];
    out[i] = add_bias ? acc + bias : acc;
  }
}

double trapezoid_avx2(const double* t, const double* y, std::size_t n) {
  if (n < 2) return 0.0;
  const std::size_t panels = n - 1;
  const __m256d half = _mm256_set1_pd(0.5);
  __m256d vacc = _mm256_setzero_pd();
  std::size_t p = 0;
  for (; p + 4 <= panels; p += 4) {
    const __m256d ysum = _mm256_add_pd(_mm256_loadu_pd(y + p), _mm256_loadu_pd(y + p + 1));
    const __m256d dt = _mm256_sub_pd(_mm256_loadu_pd(t + p + 1), _mm256_loadu_pd(t + p));
    // Same association as the scalar panel: (0.5 * (y0 + y1)) * dt.
    vacc = _mm256_add_pd(vacc, _mm256_mul_pd(_mm256_mul_pd(half, ysum), dt));
  }
  alignas(32) double acc[4];
  _mm256_store_pd(acc, vacc);
  for (; p < panels; ++p) {
    acc[p & 3] += 0.5 * (y[p] + y[p + 1]) * (t[p + 1] - t[p]);
  }
  return (acc[0] + acc[1]) + (acc[2] + acc[3]);
}

}  // namespace

const KernelOps* avx2_ops() {
  if (!__builtin_cpu_supports("avx2")) return nullptr;
  static const KernelOps ops{dot_avx2, axpy_avx2, apply_avx2, trapezoid_avx2};
  return &ops;
}

}  // namespace wavm3::kernels::detail

#else  // non-x86: backend compiled out, dispatch sees "unsupported".

namespace wavm3::kernels::detail {
const KernelOps* avx2_ops() { return nullptr; }
}  // namespace wavm3::kernels::detail

#endif
