// Scalar reference backend. This TU is the baseline the bench A/B and
// the forced-scalar CI job measure, so its CMake rule adds
// -fno-tree-vectorize -fno-tree-slp-vectorize on top of the library's
// -ffp-contract=off: the loops below must stay genuinely scalar even
// at -O2, or "SIMD vs scalar" comparisons measure nothing.
#include "kernels/backend.hpp"

namespace wavm3::kernels::detail {

namespace {

double dot_scalar(const double* a, const double* b, std::size_t n) {
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < n; ++i) acc[i & 3] += a[i] * b[i];
  return (acc[0] + acc[1]) + (acc[2] + acc[3]);
}

void axpy_scalar(double a, const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void apply_scalar(const double* const* cols, std::size_t ncols,
                  const double* coeffs, double bias, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < ncols; ++j) acc += coeffs[j] * cols[j][i];
    out[i] = bias == 0.0 ? acc : acc + bias;
  }
}

double trapezoid_scalar(const double* t, const double* y, std::size_t n) {
  if (n < 2) return 0.0;
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  const std::size_t panels = n - 1;
  for (std::size_t p = 0; p < panels; ++p) {
    acc[p & 3] += 0.5 * (y[p] + y[p + 1]) * (t[p + 1] - t[p]);
  }
  return (acc[0] + acc[1]) + (acc[2] + acc[3]);
}

}  // namespace

const KernelOps& scalar_ops() {
  static const KernelOps ops{dot_scalar, axpy_scalar, apply_scalar, trapezoid_scalar};
  return ops;
}

}  // namespace wavm3::kernels::detail
