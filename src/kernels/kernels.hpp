// Runtime-dispatched numeric kernels: the one implementation of the
// dot / axpy / design-matrix-apply / trapezoid inner loops that the
// stats, models, stream, and serve layers all build on. Backends
// (scalar, AVX2, NEON) are selected once at startup from CPUID and the
// WAVM3_FORCE_SCALAR override, and can be re-pinned at runtime for
// tests and A/B benchmarks.
//
// ## Fixed-reduction-order parity contract
//
// Every reduction in this library — dot products and trapezoid panel
// sums — uses the SAME blocked-4 accumulation order in every backend:
//
//   double acc[4] = {0, 0, 0, 0};
//   for (i = 0; i < n; ++i) acc[i % 4] += term(i);
//   result = (acc[0] + acc[1]) + (acc[2] + acc[3]);
//
// A 4-lane SIMD backend that loads consecutive elements and keeps one
// vector accumulator performs exactly this partition (lane j sums the
// terms with i % 4 == j), the scalar backend performs it explicitly,
// and a 2-lane backend (NEON float64x2) emulates 4 lanes with two
// vector accumulators. Tails continue into acc[i % 4] and the final
// combine is always (acc0 + acc1) + (acc2 + acc3). The consequence —
// and the contract callers may rely on, regression-pinned by the
// golden suite in tests/kernels_test.cpp — is that scalar and SIMD
// results are BIT-IDENTICAL, not merely close, for every input
// including denormals and catastrophic cancellation.
//
// Element-wise kernels (axpy, apply_design_matrix) have no cross-lane
// reduction; their per-element operation order is fixed instead (see
// each function) which makes them bit-identical across backends at any
// vector width automatically.
//
// Two build rules keep the contract honest (enforced in
// src/kernels/CMakeLists.txt):
//  - every TU here compiles with -ffp-contract=off, and the SIMD
//    backends use separate multiply/add intrinsics (never FMA), so no
//    backend can fuse a*b+c into a differently-rounded fma(a,b,c);
//  - the scalar backend additionally compiles with
//    -fno-tree-vectorize, so the forced-scalar baseline measured by
//    bench_kernels is genuinely scalar code.
//
// Streaming callers that cannot present a whole array use
// trapezoid_panel() + PanelAccumulator, whose add/finalize order is
// the same blocked-4 scheme — an accumulator fed the panels of
// trapezoid(t, y) left to right reproduces trapezoid(t, y) bit-for-bit
// (this is how src/stream/ keeps live extraction bit-identical to the
// batch FeatureBatch path by construction).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace wavm3::kernels {

/// Dispatch backends. kAvx2 is available on x86-64 hosts whose CPUID
/// reports AVX2; kNeon on aarch64 (ASIMD is architecturally
/// mandatory); kScalar everywhere.
enum class Backend { kScalar, kAvx2, kNeon };

/// Stable lower-case name ("scalar", "avx2", "neon") for logs and
/// bench JSON.
const char* to_string(Backend b);

/// The backend every kernel call currently dispatches to. Resolved
/// once on first use: WAVM3_FORCE_SCALAR (env, any value but "" / "0")
/// pins scalar; otherwise the widest supported SIMD backend wins.
Backend active_backend();

/// True when `b` can run on this host (compiled in + CPU support).
bool backend_supported(Backend b);

/// Re-pin dispatch to `b` (tests, CLI --force-scalar, bench A/B).
/// Returns false — leaving dispatch unchanged — when the backend is
/// not supported on this host.
bool set_backend(Backend b);

/// Restore the startup resolution (CPUID + WAVM3_FORCE_SCALAR).
void reset_backend();

/// Human-readable CPU feature summary (e.g. "sse2=1 avx=1 avx2=1
/// fma=1 avx512f=0") for bench provenance; pairs with
/// to_string(active_backend()) in bench JSON.
std::string cpu_features();

/// Reduction block width of the parity contract above. Every backend
/// reduces as if through this many accumulators regardless of its
/// hardware vector width.
inline constexpr std::size_t kReductionLanes = 4;

/// Maximum column count apply_design_matrix accepts (generous: the
/// widest design in the repo is WAVM3's 11 phase-expanded terms).
inline constexpr std::size_t kMaxApplyColumns = 32;

/// Blocked-4 dot product of equally sized spans.
double dot(std::span<const double> a, std::span<const double> b);

/// y[i] += a * x[i], element-wise (a * x[i] rounded first, then one
/// add — never fused). Spans must be equal length; y must not alias x.
void axpy(double a, std::span<const double> x, std::span<double> y);

/// Fused design-matrix apply: out[i] = (sum_j coeffs[j] * columns[j][i]
/// accumulated in ascending j with the sum starting at 0.0) + bias,
/// with the bias added LAST and skipped entirely when bias == 0.0.
/// Term order and bias-last placement are part of the bit-parity
/// contract — the four energy models' predict paths reproduce their
/// historical per-row loops exactly through this call. `out` must not
/// alias any column; columns.size() == coeffs.size() <=
/// kMaxApplyColumns; every column has out.size() rows.
void apply_design_matrix(std::span<const std::span<const double>> columns,
                         std::span<const double> coeffs, double bias,
                         std::span<double> out);

/// Trapezoidal integral of y(t): the blocked-4 sum of panels
/// 0.5 * (y[p] + y[p+1]) * (t[p+1] - t[p]). Semantics are identical to
/// the stats::trapezoid wrapper (which now delegates here): times must
/// be non-decreasing (WAVM3_REQUIRE), fewer than two samples integrate
/// to 0, duplicate timestamps collapse to the last value.
double trapezoid(std::span<const double> t, std::span<const double> y);

/// One trapezoid panel, 0.5 * (y0 + y1) * (t1 - t0), evaluated with
/// exactly the operation order and rounding of trapezoid()'s panels.
/// Deliberately OUT-OF-LINE in a -ffp-contract=off TU: were it inlined
/// into a caller compiled with contraction enabled, the compiler could
/// fuse the panel product into the caller's accumulate and break
/// bit-parity with the array kernel.
double trapezoid_panel(double t0, double y0, double t1, double y1);

/// y at time x by linear interpolation, clamped to the sampled extent;
/// duplicate timestamps resolve to the later sample (upper_bound).
/// Same semantics as the stats::interp_at wrapper.
double interp_at(std::span<const double> t, std::span<const double> y, double x);

/// Trapezoid integral restricted to [t0, t1] with interpolated
/// boundary panels: left partial panel + trapezoid() over the interior
/// samples + right partial panel, summed in that fixed order. Window
/// clamping, empty-overlap-yields-0, and duplicate-timestamp semantics
/// match the stats::window_trapezoid wrapper.
double window_trapezoid(std::span<const double> t, std::span<const double> y,
                        double t0, double t1);

/// Mean of y over the clamped window; degenerate windows follow the
/// stats::window_mean wrapper's rules (point sample on zero width).
double window_mean(std::span<const double> t, std::span<const double> y,
                   double t0, double t1);

/// Streaming twin of trapezoid(): feed panels left to right and sum()
/// finalizes in the contract's fixed order, so an accumulator given
/// trapezoid_panel(t[p], y[p], t[p+1], y[p+1]) for p = 0..n-2 yields
/// exactly trapezoid(t, y). Methods are add-only and inline-safe (a
/// lone += cannot be contracted).
class PanelAccumulator {
 public:
  void add(double panel) { acc_[n_++ & 3] += panel; }
  double sum() const { return (acc_[0] + acc_[1]) + (acc_[2] + acc_[3]); }
  std::size_t panels() const { return n_; }
  void reset() {
    acc_[0] = acc_[1] = acc_[2] = acc_[3] = 0.0;
    n_ = 0;
  }

 private:
  double acc_[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t n_ = 0;
};

/// Grow-only double arena for allocation-free hot paths: require() the
/// worst-case footprint once (allocating only while the high-water
/// mark still grows — e.g. serve sizes it from batch_max_size during
/// warmup), then take() spans and release_all() per request with zero
/// heap traffic. take() never reallocates — it refuses (contract
/// violation) instead of invalidating previously taken spans.
class Scratch {
 public:
  /// Ensure capacity for `doubles` total; allocates only on growth.
  void require(std::size_t doubles);
  /// Carve `n` doubles from the arena. Aborts via WAVM3_REQUIRE if the
  /// arena was not require()d large enough.
  std::span<double> take(std::size_t n);
  /// Return every outstanding span to the arena (no destructor runs;
  /// the storage is reused by the next take()).
  void release_all() noexcept { used_ = 0; }
  std::size_t capacity() const noexcept { return buf_.size(); }
  std::size_t used() const noexcept { return used_; }

 private:
  std::vector<double> buf_;
  std::size_t used_ = 0;
};

/// Per-thread scratch arena shared by the model predict paths and the
/// serve workers — one warm arena per worker thread, sized by the
/// largest request it has seen.
Scratch& tls_scratch();

}  // namespace wavm3::kernels
