// CPU-coupled achievable migration bandwidth.
//
// The paper observes (SVI-A, SVI-D) that when the source or target host
// CPU is saturated, the migration daemon cannot drive the NIC at wire
// speed: "bandwidth decreases when the CPU is fully loaded causing a
// longer transfer phase". This model captures that coupling: each
// endpoint has an efficiency in [min_efficiency, 1] that grows with the
// CPU headroom available to the migration helper, and the achieved
// bandwidth is the link payload rate scaled by the bottleneck endpoint.
#pragma once

#include "net/link.hpp"

namespace wavm3::net {

/// Parameters of the CPU-coupled bandwidth model.
struct BandwidthModelParams {
  /// Achieved fraction of wire speed when the endpoint has zero CPU
  /// headroom (Xen's dom0 still receives a scheduler share).
  double min_efficiency = 0.58;

  /// vCPUs of headroom needed to drive the NIC at full payload rate.
  double cpu_for_wire_speed = 2.0;
};

/// Time-varying multiplicative condition of a link. Implementations
/// live above net (faults::FaultPlan injects degradations, flaps and
/// stalls through this); the bandwidth model only consumes the factor,
/// so it stays ignorant of fault schedules.
class LinkConditioner {
 public:
  virtual ~LinkConditioner() = default;

  /// Capacity multiplier in [0, 1] at absolute time `t`.
  virtual double link_factor(double t) const = 0;

  /// Mean multiplier over [t0, t1] (t1 >= t0) — what a transfer
  /// spanning that window effectively sees.
  virtual double average_link_factor(double t0, double t1) const = 0;
};

/// Computes endpoint and end-to-end migration bandwidth.
class BandwidthModel {
 public:
  explicit BandwidthModel(BandwidthModelParams params = {});

  const BandwidthModelParams& params() const { return params_; }

  /// Efficiency in [min_efficiency, 1] of one endpoint given its CPU
  /// headroom in vCPUs (capacity minus demand before migration load).
  double endpoint_efficiency(double cpu_headroom) const;

  /// Achievable payload bandwidth (bytes/s) for a transfer across
  /// `link` given both endpoints' CPU headrooms.
  double achievable_bandwidth(const Link& link, double source_headroom,
                              double target_headroom) const;

  /// Same, conditioned by a time-varying link state: the capacity is
  /// scaled by the conditioner's factor averaged over [t0, t1] (pass
  /// t1 == t0 for the instantaneous factor).
  double achievable_bandwidth(const Link& link, double source_headroom,
                              double target_headroom, const LinkConditioner& conditioner,
                              double t0, double t1) const;

 private:
  BandwidthModelParams params_;
};

}  // namespace wavm3::net
