// Host-pair -> link registry. Keeps net decoupled from cloud by keying
// on host names.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>

#include "net/link.hpp"

namespace wavm3::net {

/// Symmetric registry of links between named hosts.
///
/// Two population modes compose:
///   * connect() registers an explicit per-pair link (heterogeneous
///     topologies, tests);
///   * set_default_link() declares every not-explicitly-connected pair
///     reachable through a link of the given spec, materialised lazily
///     on first lookup. A fleet of N hosts then costs O(pairs actually
///     used) links instead of the O(N^2) full mesh that the two-host
///     origins of dcsim used to build eagerly.
class Topology {
 public:
  /// Registers a bidirectional link between two hosts. Self-links
  /// (host_a == host_b) and duplicate explicit registration of the
  /// same pair are rejected with util::ContractError — a second
  /// connect() silently overwriting the first would discard that
  /// link's accumulated fault state mid-run. An explicit connect()
  /// does replace a lazily materialised *default* link for the pair:
  /// defaults are memoised fallbacks, not registrations.
  void connect(const std::string& host_a, const std::string& host_b, LinkSpec spec);

  /// Declares the spec every unconnected pair falls back to. Each pair
  /// still gets its own Link instance (links carry mutable fault
  /// state), created on first link_between() lookup.
  void set_default_link(LinkSpec spec) { default_spec_ = std::move(spec); }
  bool has_default_link() const { return default_spec_.has_value(); }

  /// Returns the link between two hosts, or nullptr when disconnected
  /// and no default spec is set.
  Link* link_between(const std::string& host_a, const std::string& host_b);
  const Link* link_between(const std::string& host_a, const std::string& host_b) const;

  /// Materialised links only (explicit + lazily created defaults).
  std::size_t link_count() const { return links_.size(); }

 private:
  static std::pair<std::string, std::string> key(const std::string& a, const std::string& b);

  // mutable: lazy default-link materialisation is logically const —
  // with a default spec set, every pair is connected; the map entry is
  // just the memoised Link instance.
  mutable std::map<std::pair<std::string, std::string>, std::unique_ptr<Link>> links_;
  // Pairs registered through connect(). Distinguishes an explicit
  // link from a memoised default occupying the same links_ slot, so
  // duplicate connect() is rejected while connect() over a
  // materialised default still succeeds.
  std::set<std::pair<std::string, std::string>> explicit_pairs_;
  std::optional<LinkSpec> default_spec_;
};

}  // namespace wavm3::net
