// Host-pair -> link registry. Keeps net decoupled from cloud by keying
// on host names.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>

#include "net/link.hpp"

namespace wavm3::net {

/// Symmetric registry of links between named hosts.
class Topology {
 public:
  /// Registers a bidirectional link between two hosts. Replaces any
  /// previous link between the pair.
  void connect(const std::string& host_a, const std::string& host_b, LinkSpec spec);

  /// Returns the link between two hosts, or nullptr when disconnected.
  Link* link_between(const std::string& host_a, const std::string& host_b);
  const Link* link_between(const std::string& host_a, const std::string& host_b) const;

  std::size_t link_count() const { return links_.size(); }

 private:
  static std::pair<std::string, std::string> key(const std::string& a, const std::string& b);

  std::map<std::pair<std::string, std::string>, std::unique_ptr<Link>> links_;
};

}  // namespace wavm3::net
