#include "net/link.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace wavm3::net {

Link::Link(LinkSpec spec) : spec_(std::move(spec)) {
  WAVM3_REQUIRE(spec_.wire_rate > 0.0, "wire rate must be positive");
  WAVM3_REQUIRE(spec_.protocol_efficiency > 0.0 && spec_.protocol_efficiency <= 1.0,
                "protocol efficiency must be in (0,1]");
}

void Link::account_transfer(double bytes) {
  WAVM3_REQUIRE(bytes >= 0.0, "cannot account negative bytes");
  total_bytes_ += bytes;
}

void Link::refund_transfer(double bytes) {
  WAVM3_REQUIRE(bytes >= 0.0, "cannot refund negative bytes");
  WAVM3_REQUIRE(bytes <= total_bytes_ + 1e-6, "cannot refund more than was accounted");
  total_bytes_ = std::max(0.0, total_bytes_ - bytes);
}

}  // namespace wavm3::net
