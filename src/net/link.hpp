// Point-to-point network link between two hosts through a switch.
// Models the Gigabit links of Table IIc: a wire rate, a protocol
// efficiency (TCP/IP framing), and cumulative byte accounting.
#pragma once

#include <cstdint>
#include <string>

namespace wavm3::net {

/// Static link characteristics.
struct LinkSpec {
  std::string name;              ///< e.g. "m01<->m02 via Cisco Catalyst 3750"
  double wire_rate = 125e6;      ///< bytes/s on the wire (1 Gbit/s default)
  double protocol_efficiency = 0.94;  ///< payload fraction after TCP/IP framing
};

/// A link instance with byte accounting.
class Link {
 public:
  explicit Link(LinkSpec spec);

  const LinkSpec& spec() const { return spec_; }

  /// Maximum payload bandwidth (bytes/s) the link can carry.
  double max_payload_rate() const { return spec_.wire_rate * spec_.protocol_efficiency; }

  /// Records `bytes` of payload moved across the link.
  void account_transfer(double bytes);

  /// Removes `bytes` previously accounted but never actually carried
  /// (the untransferred remainder of a round cut short by a connection
  /// loss; rounds are accounted up-front at round start).
  void refund_transfer(double bytes);

  /// Total payload bytes moved since construction.
  double total_bytes() const { return total_bytes_; }

  /// Resets accounting (between experiment runs).
  void reset_accounting() { total_bytes_ = 0.0; }

 private:
  LinkSpec spec_;
  double total_bytes_ = 0.0;
};

}  // namespace wavm3::net
