#include "net/topology.hpp"

#include <utility>

#include "util/error.hpp"

namespace wavm3::net {

std::pair<std::string, std::string> Topology::key(const std::string& a, const std::string& b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

void Topology::connect(const std::string& host_a, const std::string& host_b, LinkSpec spec) {
  WAVM3_REQUIRE(host_a != host_b, "cannot connect a host to itself");
  links_[key(host_a, host_b)] = std::make_unique<Link>(std::move(spec));
}

Link* Topology::link_between(const std::string& host_a, const std::string& host_b) {
  return const_cast<Link*>(std::as_const(*this).link_between(host_a, host_b));
}

const Link* Topology::link_between(const std::string& host_a, const std::string& host_b) const {
  const auto it = links_.find(key(host_a, host_b));
  if (it != links_.end()) return it->second.get();
  if (!default_spec_.has_value() || host_a == host_b) return nullptr;
  // Materialise the default link for this pair on first use.
  auto& slot = links_[key(host_a, host_b)];
  slot = std::make_unique<Link>(*default_spec_);
  return slot.get();
}

}  // namespace wavm3::net
