#include "net/topology.hpp"

#include "util/error.hpp"

namespace wavm3::net {

std::pair<std::string, std::string> Topology::key(const std::string& a, const std::string& b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

void Topology::connect(const std::string& host_a, const std::string& host_b, LinkSpec spec) {
  WAVM3_REQUIRE(host_a != host_b, "cannot connect a host to itself");
  links_[key(host_a, host_b)] = std::make_unique<Link>(std::move(spec));
}

Link* Topology::link_between(const std::string& host_a, const std::string& host_b) {
  const auto it = links_.find(key(host_a, host_b));
  return it == links_.end() ? nullptr : it->second.get();
}

const Link* Topology::link_between(const std::string& host_a, const std::string& host_b) const {
  const auto it = links_.find(key(host_a, host_b));
  return it == links_.end() ? nullptr : it->second.get();
}

}  // namespace wavm3::net
