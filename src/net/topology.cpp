#include "net/topology.hpp"

#include <utility>

#include "util/error.hpp"

namespace wavm3::net {

std::pair<std::string, std::string> Topology::key(const std::string& a, const std::string& b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

void Topology::connect(const std::string& host_a, const std::string& host_b, LinkSpec spec) {
  WAVM3_REQUIRE(host_a != host_b, "cannot connect a host to itself");
  auto pair = key(host_a, host_b);
  // Reject re-registration instead of silently replacing: the first
  // link may carry live fault state, and two call sites connecting the
  // same pair with different specs is a topology-construction bug. A
  // memoised default link for the pair is not a registration — an
  // explicit spec overrides it.
  WAVM3_REQUIRE(explicit_pairs_.find(pair) == explicit_pairs_.end(),
                "host pair is already connected");
  links_[pair] = std::make_unique<Link>(std::move(spec));
  explicit_pairs_.insert(std::move(pair));
}

Link* Topology::link_between(const std::string& host_a, const std::string& host_b) {
  return const_cast<Link*>(std::as_const(*this).link_between(host_a, host_b));
}

const Link* Topology::link_between(const std::string& host_a, const std::string& host_b) const {
  const auto it = links_.find(key(host_a, host_b));
  if (it != links_.end()) return it->second.get();
  if (!default_spec_.has_value() || host_a == host_b) return nullptr;
  // Materialise the default link for this pair on first use.
  auto& slot = links_[key(host_a, host_b)];
  slot = std::make_unique<Link>(*default_spec_);
  return slot.get();
}

}  // namespace wavm3::net
