#include "net/bandwidth_model.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace wavm3::net {

BandwidthModel::BandwidthModel(BandwidthModelParams params) : params_(params) {
  WAVM3_REQUIRE(params_.min_efficiency > 0.0 && params_.min_efficiency <= 1.0,
                "min_efficiency must be in (0,1]");
  WAVM3_REQUIRE(params_.cpu_for_wire_speed > 0.0, "cpu_for_wire_speed must be positive");
}

double BandwidthModel::endpoint_efficiency(double cpu_headroom) const {
  const double h = std::max(0.0, cpu_headroom);
  const double ramp = std::min(1.0, h / params_.cpu_for_wire_speed);
  return params_.min_efficiency + (1.0 - params_.min_efficiency) * ramp;
}

double BandwidthModel::achievable_bandwidth(const Link& link, double source_headroom,
                                            double target_headroom) const {
  const double eff =
      std::min(endpoint_efficiency(source_headroom), endpoint_efficiency(target_headroom));
  return link.max_payload_rate() * eff;
}

double BandwidthModel::achievable_bandwidth(const Link& link, double source_headroom,
                                            double target_headroom,
                                            const LinkConditioner& conditioner, double t0,
                                            double t1) const {
  WAVM3_REQUIRE(t1 >= t0, "conditioning window must be ordered");
  const double factor = std::clamp(
      t1 > t0 ? conditioner.average_link_factor(t0, t1) : conditioner.link_factor(t0), 0.0,
      1.0);
  return achievable_bandwidth(link, source_headroom, target_headroom) * factor;
}

}  // namespace wavm3::net
