// Simulated AC-side power analyser, modelled on the Voltech PM1000+
// setup of SV-B: 2 Hz sampling, 0.3% accuracy, 0.1 W display resolution.
// Attached to a simulator, it periodically samples a caller-provided
// true-power function, applies measurement noise, and appends to a
// PowerTrace.
#pragma once

#include <functional>
#include <string>

#include "power/power_trace.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace wavm3::power {

/// Meter characteristics.
struct MeterSpec {
  double sample_period = 0.5;       ///< seconds between readings (2 Hz)
  double accuracy_fraction = 0.003; ///< +-0.3% of reading (device accuracy)
  double resolution_watts = 0.1;    ///< display/logging quantisation
};

/// A sampling power meter.
class PowerMeter {
 public:
  using TruePowerFn = std::function<double(double t)>;

  /// `rng` must outlive the meter.
  PowerMeter(std::string label, MeterSpec spec, TruePowerFn true_power, util::RngStream rng);

  const MeterSpec& spec() const { return spec_; }
  const PowerTrace& trace() const { return trace_; }
  PowerTrace& mutable_trace() { return trace_; }

  /// Takes one reading at time `t` (noise + quantisation applied).
  void sample(double t);

  /// Starts periodic sampling on `simulator` beginning at `start_time`.
  /// Sampling continues until stop() or simulator teardown.
  void start(sim::Simulator& simulator, double start_time = 0.0);

  /// Stops periodic sampling.
  void stop();

 private:
  std::string label_;
  MeterSpec spec_;
  TruePowerFn true_power_;
  util::RngStream rng_;
  PowerTrace trace_;
  sim::Simulator::PeriodicHandle periodic_;
};

}  // namespace wavm3::power
