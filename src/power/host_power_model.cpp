#include "power/host_power_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace wavm3::power {

HostPowerModel::HostPowerModel(HostPowerParams params) : params_(std::move(params)) {
  WAVM3_REQUIRE(params_.idle_watts > 0.0, "idle power must be positive");
  WAVM3_REQUIRE(params_.vcpus >= 1.0, "host needs at least one vCPU");
  WAVM3_REQUIRE(params_.watts_per_vcpu >= 0.0, "per-vCPU power must be nonnegative");
}

double HostPowerModel::true_power(const HostActivity& activity) const {
  // CPU: linear + mildly convex in utilisation, saturating at capacity.
  const double u = std::clamp(activity.cpu_used_vcpus, 0.0, params_.vcpus);
  const double frac = u / params_.vcpus;
  const double cpu_watts =
      params_.watts_per_vcpu * u + params_.cpu_convexity_watts * frac * frac;

  // Cooling: fans ramp superlinearly with load.
  const double fan_watts = params_.fan_watts_full * std::pow(frac, 1.5);

  // Memory write (dirtying) traffic.
  const double mem_watts = params_.mem_watts_per_gbs * (activity.mem_dirty_bytes_per_s / 1e9);

  // NIC: active baseline plus throughput-proportional part.
  double nic_watts = 0.0;
  if (activity.transfer_active || activity.nic_bytes_per_s > 0.0) {
    nic_watts = params_.nic_active_watts +
                params_.nic_watts_per_gbs * (activity.nic_bytes_per_s / 1e9);
  }

  // Live-migration dirty-page tracking (shadow paging) on the source.
  const double tracking_watts =
      params_.tracking_watts * std::clamp(activity.tracking_dirty_ratio, 0.0, 1.0);

  const double lifecycle_watts = activity.vm_lifecycle_active ? params_.vm_spinup_watts : 0.0;

  return params_.idle_watts + cpu_watts + fan_watts + mem_watts + nic_watts + tracking_watts +
         lifecycle_watts;
}

double HostPowerModel::full_load_power() const {
  HostActivity a;
  a.cpu_used_vcpus = params_.vcpus;
  return true_power(a);
}

}  // namespace wavm3::power
