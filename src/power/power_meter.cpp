#include "power/power_meter.hpp"

#include <cmath>

#include "util/error.hpp"

namespace wavm3::power {

PowerMeter::PowerMeter(std::string label, MeterSpec spec, TruePowerFn true_power,
                       util::RngStream rng)
    : label_(std::move(label)),
      spec_(spec),
      true_power_(std::move(true_power)),
      rng_(rng),
      trace_(label_) {
  WAVM3_REQUIRE(spec_.sample_period > 0.0, "sample period must be positive");
  WAVM3_REQUIRE(spec_.accuracy_fraction >= 0.0, "accuracy must be nonnegative");
  WAVM3_REQUIRE(static_cast<bool>(true_power_), "true power function required");
}

void PowerMeter::sample(double t) {
  const double truth = true_power_(t);
  WAVM3_ASSERT(truth >= 0.0, "true power must be nonnegative");
  // Device accuracy is +-accuracy_fraction of reading; we model the
  // noise as gaussian with 3*sigma equal to that bound.
  const double sigma = truth * spec_.accuracy_fraction / 3.0;
  double reading = rng_.gaussian(truth, sigma);
  if (spec_.resolution_watts > 0.0) {
    reading = std::round(reading / spec_.resolution_watts) * spec_.resolution_watts;
  }
  trace_.add(t, std::max(0.0, reading));
}

void PowerMeter::start(sim::Simulator& simulator, double start_time) {
  stop();
  periodic_ = simulator.schedule_periodic(start_time, spec_.sample_period,
                                          [this, &simulator] { sample(simulator.now()); });
}

void PowerMeter::stop() { periodic_.cancel(); }

}  // namespace wavm3::power
