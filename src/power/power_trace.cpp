#include "power/power_trace.hpp"

#include <algorithm>

#include "stats/integrate.hpp"
#include "util/error.hpp"

namespace wavm3::power {

void PowerTrace::add(double time, double watts) {
  WAVM3_REQUIRE(samples_.empty() || time >= samples_.back().time,
                "power samples must be time-ordered");
  WAVM3_REQUIRE(watts >= 0.0, "negative power reading");
  samples_.push_back({time, watts});
  times_.push_back(time);
  watts_.push_back(watts);
}

double PowerTrace::start_time() const {
  WAVM3_REQUIRE(!samples_.empty(), "empty trace");
  return samples_.front().time;
}

double PowerTrace::end_time() const {
  WAVM3_REQUIRE(!samples_.empty(), "empty trace");
  return samples_.back().time;
}

double PowerTrace::power_at(double t) const {
  WAVM3_REQUIRE(!samples_.empty(), "empty trace");
  return stats::interp_at(times_, watts_, t);
}

double PowerTrace::energy_between(double t0, double t1) const {
  WAVM3_REQUIRE(t1 >= t0, "inverted energy interval");
  // Windowed trapezoid with boundary interpolation, via the shared
  // stats kernel (one quadrature for every trace consumer).
  return stats::window_trapezoid(times_, watts_, t0, t1);
}

double PowerTrace::total_energy() const {
  return stats::trapezoid(times_, watts_);
}

double PowerTrace::mean_power_between(double t0, double t1) const {
  const double a = std::max(t0, samples_.empty() ? t0 : samples_.front().time);
  const double b = std::min(t1, samples_.empty() ? t1 : samples_.back().time);
  if (b <= a) return 0.0;
  return energy_between(a, b) / (b - a);
}

PowerTrace PowerTrace::slice(double t0, double t1) const {
  PowerTrace out(label_);
  for (const auto& s : samples_)
    if (s.time >= t0 && s.time <= t1) out.add(s.time, s.watts);
  return out;
}

std::vector<PowerSample> PowerTrace::tail(std::size_t n) const {
  const std::size_t start = samples_.size() > n ? samples_.size() - n : 0;
  return {samples_.begin() + static_cast<std::ptrdiff_t>(start), samples_.end()};
}

}  // namespace wavm3::power
