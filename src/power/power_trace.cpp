#include "power/power_trace.hpp"

#include <algorithm>

#include "stats/integrate.hpp"
#include "util/error.hpp"

namespace wavm3::power {

void PowerTrace::add(double time, double watts) {
  WAVM3_REQUIRE(samples_.empty() || time >= samples_.back().time,
                "power samples must be time-ordered");
  WAVM3_REQUIRE(watts >= 0.0, "negative power reading");
  samples_.push_back({time, watts});
}

double PowerTrace::start_time() const {
  WAVM3_REQUIRE(!samples_.empty(), "empty trace");
  return samples_.front().time;
}

double PowerTrace::end_time() const {
  WAVM3_REQUIRE(!samples_.empty(), "empty trace");
  return samples_.back().time;
}

double PowerTrace::power_at(double t) const {
  WAVM3_REQUIRE(!samples_.empty(), "empty trace");
  if (t <= samples_.front().time) return samples_.front().watts;
  if (t >= samples_.back().time) return samples_.back().watts;
  // First sample with time >= t.
  const auto it = std::lower_bound(
      samples_.begin(), samples_.end(), t,
      [](const PowerSample& s, double value) { return s.time < value; });
  const auto hi = it;
  const auto lo = it - 1;
  const double span = hi->time - lo->time;
  if (span <= 0.0) return hi->watts;
  const double f = (t - lo->time) / span;
  return lo->watts * (1.0 - f) + hi->watts * f;
}

double PowerTrace::energy_between(double t0, double t1) const {
  WAVM3_REQUIRE(t1 >= t0, "inverted energy interval");
  if (samples_.size() < 2) return 0.0;
  const double a = std::max(t0, samples_.front().time);
  const double b = std::min(t1, samples_.back().time);
  if (b <= a) return 0.0;

  double energy = 0.0;
  double prev_t = a;
  double prev_p = power_at(a);
  // Walk interior samples strictly inside (a, b).
  const auto first = std::upper_bound(
      samples_.begin(), samples_.end(), a,
      [](double value, const PowerSample& s) { return value < s.time; });
  for (auto it = first; it != samples_.end() && it->time < b; ++it) {
    energy += 0.5 * (prev_p + it->watts) * (it->time - prev_t);
    prev_t = it->time;
    prev_p = it->watts;
  }
  const double end_p = power_at(b);
  energy += 0.5 * (prev_p + end_p) * (b - prev_t);
  return energy;
}

double PowerTrace::total_energy() const {
  // The full-trace integral needs no interpolation or bound clipping:
  // it is the plain trapezoid over the samples, via the shared kernel.
  std::vector<double> t(samples_.size());
  std::vector<double> w(samples_.size());
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    t[i] = samples_[i].time;
    w[i] = samples_[i].watts;
  }
  return stats::trapezoid(t, w);
}

double PowerTrace::mean_power_between(double t0, double t1) const {
  const double a = std::max(t0, samples_.empty() ? t0 : samples_.front().time);
  const double b = std::min(t1, samples_.empty() ? t1 : samples_.back().time);
  if (b <= a) return 0.0;
  return energy_between(a, b) / (b - a);
}

PowerTrace PowerTrace::slice(double t0, double t1) const {
  PowerTrace out(label_);
  for (const auto& s : samples_)
    if (s.time >= t0 && s.time <= t1) out.add(s.time, s.watts);
  return out;
}

std::vector<PowerSample> PowerTrace::tail(std::size_t n) const {
  const std::size_t start = samples_.size() > n ? samples_.size() - n : 0;
  return {samples_.begin() + static_cast<std::ptrdiff_t>(start), samples_.end()};
}

}  // namespace wavm3::power
