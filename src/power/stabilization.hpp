// The paper's stabilisation protocol (SV-B): "we say that the power
// consumption of the host stabilises when we read twenty consecutive
// power measurements with a difference lower than 0.3%".
#pragma once

#include <cstddef>

#include "power/power_trace.hpp"

namespace wavm3::power {

/// Stabilisation detector parameters.
struct StabilizationSpec {
  std::size_t window = 20;     ///< consecutive readings required
  double tolerance = 0.003;    ///< max relative difference between consecutive readings
};

/// True when the last `spec.window` readings of `trace` each differ from
/// their predecessor by less than `spec.tolerance` (relative to the
/// predecessor). Requires at least window samples.
bool is_stabilized(const PowerTrace& trace, const StabilizationSpec& spec = {});

/// Index of the first sample at which the trace (from the beginning)
/// satisfies the stabilisation criterion, or trace.size() when never.
std::size_t stabilization_index(const PowerTrace& trace, const StabilizationSpec& spec = {});

}  // namespace wavm3::power
