#include "power/stabilization.hpp"

#include <cmath>

#include "util/error.hpp"

namespace wavm3::power {

namespace {
bool pair_stable(double prev, double curr, double tolerance) {
  if (prev <= 0.0) return curr <= 0.0;
  return std::abs(curr - prev) / prev < tolerance;
}
}  // namespace

bool is_stabilized(const PowerTrace& trace, const StabilizationSpec& spec) {
  WAVM3_REQUIRE(spec.window >= 2, "stabilisation window must be >= 2");
  if (trace.size() < spec.window) return false;
  const auto& s = trace.samples();
  const std::size_t start = s.size() - spec.window;
  for (std::size_t i = start + 1; i < s.size(); ++i) {
    if (!pair_stable(s[i - 1].watts, s[i].watts, spec.tolerance)) return false;
  }
  return true;
}

std::size_t stabilization_index(const PowerTrace& trace, const StabilizationSpec& spec) {
  WAVM3_REQUIRE(spec.window >= 2, "stabilisation window must be >= 2");
  const auto& s = trace.samples();
  if (s.size() < spec.window) return s.size();
  std::size_t streak = 1;  // a single sample is trivially "stable so far"
  for (std::size_t i = 1; i < s.size(); ++i) {
    if (pair_stable(s[i - 1].watts, s[i].watts, spec.tolerance)) {
      ++streak;
    } else {
      streak = 1;
    }
    if (streak >= spec.window) return i;
  }
  return s.size();
}

}  // namespace wavm3::power
