// Ground-truth physical host power model — the simulated stand-in for
// the real machines whose AC-side draw the paper measures.
//
// Deliberately *richer than the fitted models*: the CPU term is mildly
// convex and saturates at the hardware limit, memory-write traffic and
// NIC throughput contribute their own terms, and live-migration
// dirty-page tracking adds shadow-paging overhead on the source. The
// regression pipeline never reads these parameters; it only sees meter
// samples, exactly like the paper's authors.
#pragma once

#include <string>

namespace wavm3::power {

/// Ground-truth parameters of one machine class.
struct HostPowerParams {
  std::string machine_class;       ///< e.g. "m-class (Opteron 8356)"
  double idle_watts = 430.0;       ///< AC draw of the idle host (incl. PSU loss)
  double vcpus = 32.0;             ///< hardware threads, for saturation/convexity
  double watts_per_vcpu = 11.0;    ///< marginal power of one busy vCPU (linear part)
  double cpu_convexity_watts = 60.0;  ///< extra watts at full load from the quadratic part
  double mem_watts_per_gbs = 9.0;  ///< watts per GB/s of memory write (dirtying) traffic
  double nic_active_watts = 4.0;   ///< NIC/driver baseline while a transfer is active
  double nic_watts_per_gbs = 30.0; ///< watts per GB/s of NIC payload throughput
  double tracking_watts = 22.0;    ///< shadow-paging cost at DR=1 while tracking dirty pages
  double vm_spinup_watts = 12.0;   ///< transient while creating/destroying a VM container
  /// Cooling power at full CPU load (fans spin with a superlinear ramp).
  /// Its per-run gain varies with thermal state, which is a major source
  /// of run-to-run energy variance on real machines.
  double fan_watts_full = 50.0;
};

/// Instantaneous activity snapshot of one host; assembled by the
/// migration/experiment layer from cloud + migration state.
struct HostActivity {
  double cpu_used_vcpus = 0.0;      ///< CPU(h,t) of Eq. 2, already capped
  double mem_dirty_bytes_per_s = 0.0;  ///< memory write traffic of hosted workloads
  double nic_bytes_per_s = 0.0;     ///< migration payload through this host's NIC
  bool transfer_active = false;     ///< any active migration stream endpoint here
  double tracking_dirty_ratio = 0.0;  ///< DR(v,t) being tracked (live source only)
  bool vm_lifecycle_active = false; ///< creating/suspending/destroying a VM right now
};

/// Computes the true AC power of a host.
class HostPowerModel {
 public:
  explicit HostPowerModel(HostPowerParams params);

  const HostPowerParams& params() const { return params_; }

  /// True instantaneous AC power in watts for the given activity.
  double true_power(const HostActivity& activity) const;

  /// Idle draw (activity all-zero); convenience for bias calibration.
  double idle_power() const { return params_.idle_watts; }

  /// Power at full CPU load with no migration activity.
  double full_load_power() const;

 private:
  HostPowerParams params_;
};

}  // namespace wavm3::power
