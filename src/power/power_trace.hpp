// Time-stamped power samples plus energy integration, mirroring what the
// paper extracts from its Voltech PM1000+ traces (SV-B, SVI): phase
// energies are integrals of power over the phase intervals.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace wavm3::power {

/// One meter reading.
struct PowerSample {
  double time = 0.0;   ///< seconds
  double watts = 0.0;
};

/// An append-only, time-ordered sequence of power samples.
class PowerTrace {
 public:
  PowerTrace() = default;
  explicit PowerTrace(std::string label) : label_(std::move(label)) {}

  const std::string& label() const { return label_; }

  /// Appends a sample; times must be nondecreasing.
  void add(double time, double watts);

  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  const std::vector<PowerSample>& samples() const { return samples_; }
  const PowerSample& operator[](std::size_t i) const { return samples_[i]; }
  const PowerSample& back() const { return samples_.back(); }

  double start_time() const;
  double end_time() const;

  /// Energy in joules over [t0, t1] via trapezoidal integration with
  /// linear interpolation at the interval endpoints. The interval is
  /// clamped to the trace extent; an empty overlap yields 0.
  double energy_between(double t0, double t1) const;

  /// Total energy over the whole trace.
  double total_energy() const;

  /// Mean power over [t0, t1] (energy / duration); 0 on empty overlap.
  double mean_power_between(double t0, double t1) const;

  /// Power at time t by linear interpolation (clamped to trace ends).
  double power_at(double t) const;

  /// Sub-trace restricted to [t0, t1] (sample times inside, inclusive).
  PowerTrace slice(double t0, double t1) const;

  /// The last `n` samples (or fewer when the trace is shorter).
  std::vector<PowerSample> tail(std::size_t n) const;

 private:
  std::string label_;
  std::vector<PowerSample> samples_;
  // Columnar mirror of samples_, kept in lockstep by add(): the
  // interpolation/integration kernels in stats/ take contiguous spans.
  std::vector<double> times_;
  std::vector<double> watts_;
};

}  // namespace wavm3::power
