#include "sim/simulator.hpp"

#include "util/error.hpp"

namespace wavm3::sim {

EventId Simulator::schedule_at(double at, Callback fn) {
  WAVM3_REQUIRE(at >= now_, "cannot schedule into the past");
  WAVM3_REQUIRE(static_cast<bool>(fn), "callback must be callable");
  auto ev = std::make_shared<Event>();
  ev->time = at;
  ev->seq = next_seq_++;
  ev->id = next_id_++;
  ev->fn = std::move(fn);
  queue_.push(ev);
  live_.emplace(ev->id, ev);
  ++pending_count_;
  return ev->id;
}

EventId Simulator::schedule_in(double delay, Callback fn) {
  WAVM3_REQUIRE(delay >= 0.0, "delay must be nonnegative");
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventId id) {
  const auto it = live_.find(id);
  if (it == live_.end()) return false;
  const auto ev = it->second.lock();
  live_.erase(it);
  if (!ev || ev->cancelled) return false;
  ev->cancelled = true;
  --pending_count_;
  return true;
}

bool Simulator::is_pending(EventId id) const {
  const auto it = live_.find(id);
  if (it == live_.end()) return false;
  const auto ev = it->second.lock();
  return ev && !ev->cancelled;
}

std::shared_ptr<Simulator::Event> Simulator::pop_next() {
  while (!queue_.empty()) {
    auto ev = queue_.top();
    queue_.pop();
    if (ev->cancelled) continue;
    live_.erase(ev->id);
    --pending_count_;
    return ev;
  }
  return nullptr;
}

bool Simulator::step() {
  const auto ev = pop_next();
  if (!ev) return false;
  WAVM3_ASSERT(ev->time >= now_, "event queue time went backwards");
  now_ = ev->time;
  ++executed_;
  ev->fn();
  return true;
}

void Simulator::run_until(double until) {
  WAVM3_REQUIRE(until >= now_, "run_until target is in the past");
  while (!queue_.empty()) {
    // Peek the earliest non-cancelled event.
    auto top = queue_.top();
    if (top->cancelled) {
      queue_.pop();
      continue;
    }
    if (top->time > until) break;
    step();
  }
  now_ = until;
}

std::size_t Simulator::run_to_completion(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  WAVM3_REQUIRE(pending_events() == 0 || n < max_events,
                "run_to_completion hit the event cap; likely a runaway periodic task");
  return n;
}

void Simulator::PeriodicHandle::cancel() {
  if (alive_) *alive_ = false;
}

Simulator::PeriodicHandle Simulator::schedule_periodic(double start, double period, Callback fn) {
  WAVM3_REQUIRE(period > 0.0, "period must be positive");
  PeriodicHandle handle;
  handle.alive_ = std::make_shared<bool>(true);

  // The tick closure reschedules itself while the handle is alive.
  auto alive = handle.alive_;
  auto tick = std::make_shared<Callback>();
  auto shared_fn = std::make_shared<Callback>(std::move(fn));
  *tick = [this, alive, period, tick, shared_fn]() {
    if (!*alive) return;
    (*shared_fn)();
    if (!*alive) return;
    schedule_in(period, *tick);
  };
  schedule_at(start, *tick);
  return handle;
}

}  // namespace wavm3::sim
