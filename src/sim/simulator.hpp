// Discrete-event simulation core.
//
// A Simulator owns a time-ordered event queue. Components schedule
// callbacks at absolute times or after delays; ties are broken by
// insertion order so runs are fully deterministic. Continuous processes
// (data transfer, page dirtying) are handled analytically between events
// by the components themselves; the core only sequences callbacks.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

namespace wavm3::sim {

/// Opaque handle identifying a scheduled event; used for cancellation.
using EventId = std::uint64_t;

/// Invalid event handle.
inline constexpr EventId kInvalidEvent = 0;

/// Time-ordered event executor.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time in seconds.
  double now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (>= now). Returns a handle.
  EventId schedule_at(double at, Callback fn);

  /// Schedules `fn` after `delay` seconds (>= 0).
  EventId schedule_in(double delay, Callback fn);

  /// Cancels a pending event; returns false when already fired/cancelled.
  bool cancel(EventId id);

  /// True when an event with this id is still pending.
  bool is_pending(EventId id) const;

  /// Runs events until the queue empties or the next event is past
  /// `until`; the clock then advances to exactly `until`.
  void run_until(double until);

  /// Runs until the queue is empty (or `max_events` processed).
  /// Returns the number of events executed.
  std::size_t run_to_completion(std::size_t max_events = 10'000'000);

  /// Executes the single next event, if any. Returns false on empty queue.
  bool step();

  /// Number of events currently pending.
  std::size_t pending_events() const { return pending_count_; }

  /// Total events executed since construction.
  std::uint64_t executed_events() const { return executed_; }

  /// Registers a periodic callback with fixed `period`, starting at
  /// `start` (absolute). The callback keeps rescheduling itself until
  /// cancelled via the returned handle (see PeriodicHandle).
  class PeriodicHandle {
   public:
    PeriodicHandle() = default;
    /// Stops future firings. Safe to call multiple times.
    void cancel();

   private:
    friend class Simulator;
    std::shared_ptr<bool> alive_;
  };

  PeriodicHandle schedule_periodic(double start, double period, Callback fn);

 private:
  struct Event {
    double time = 0.0;
    std::uint64_t seq = 0;  // insertion order for deterministic ties
    EventId id = kInvalidEvent;
    Callback fn;
    bool cancelled = false;
  };

  struct EventCompare {
    bool operator()(const std::shared_ptr<Event>& a, const std::shared_ptr<Event>& b) const {
      if (a->time != b->time) return a->time > b->time;  // min-heap on time
      return a->seq > b->seq;
    }
  };

  std::shared_ptr<Event> pop_next();

  double now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t pending_count_ = 0;
  std::priority_queue<std::shared_ptr<Event>, std::vector<std::shared_ptr<Event>>, EventCompare>
      queue_;
  // id -> event lookup for cancellation; entries removed lazily.
  std::unordered_map<EventId, std::weak_ptr<Event>> live_;
};

}  // namespace wavm3::sim
