#include "chaos/executor.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "cloud/datacenter.hpp"
#include "dcsim/traced_workload.hpp"
#include "migration/engine.hpp"
#include "net/bandwidth_model.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "plan/scoring.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace wavm3::chaos {

namespace {

/// Wave metric family, labeled by strategy like the plan_* family so
/// chaos runs of different strategies stay distinguishable.
struct ChaosMetrics {
  obs::Counter& waves;
  obs::Counter& attempts;
  obs::Counter& completed;
  obs::Counter& rolled_back;
  obs::Counter& vm_lost;
  obs::Counter& retries;
  obs::Counter& sheds;
  obs::Counter& deferred;
  obs::Counter& superseded;
  obs::Counter& live_aborts;
  obs::Counter& relief_moves;
  obs::Counter& relief_unplaced;
  obs::Counter& invariant_violations;
  obs::Gauge& planned_j;
  obs::Gauge& committed_j;
  obs::Gauge& refunded_j;
  obs::Gauge& wasted_j;
  obs::Gauge& degraded;
  obs::Histogram& wave_seconds;
};

ChaosMetrics chaos_metrics(const char* strategy) {
  obs::MetricRegistry& r = obs::registry();
  const obs::Labels labels = {{"strategy", strategy}};
  return ChaosMetrics{
      r.counter("chaos_waves_total", "Closed-loop waves executed", labels),
      r.counter("chaos_attempts_total", "Migration attempts executed", labels),
      r.counter("chaos_completed_total", "Attempts that completed", labels),
      r.counter("chaos_rolled_back_total", "Attempts rolled back by faults", labels),
      r.counter("chaos_vm_lost_total", "Post-copy attempts that lost the VM", labels),
      r.counter("chaos_retries_total", "Carried moves re-attempted", labels),
      r.counter("chaos_shed_total", "Moves abandoned after exhausting retries", labels),
      r.counter("chaos_deferred_total", "Moves refunded at the wave deadline", labels),
      r.counter("chaos_superseded_total", "Planner moves dropped: VM already tracked",
                labels),
      r.counter("chaos_live_aborts_total",
                "Attempts refunded by a stream degeneration abort", labels),
      r.counter("chaos_relief_moves_total", "Emergency overload-relief moves accepted",
                labels),
      r.counter("chaos_relief_unplaced_total",
                "Overloaded VMs with no feasible relief receiver", labels),
      r.counter("chaos_invariant_violations_total", "Fleet invariant checks failed", labels),
      r.gauge("chaos_ledger_planned_joules", "Predicted energy of accepted moves", labels),
      r.gauge("chaos_ledger_committed_joules", "Predicted energy of placed moves", labels),
      r.gauge("chaos_ledger_refunded_joules", "Predicted energy refunded to the planner",
              labels),
      r.gauge("chaos_ledger_wasted_joules", "Energy burnt by failed attempts", labels),
      r.gauge("chaos_degraded_mode", "1 while the replan policy is degraded", labels),
      r.exponential_histogram("chaos_wave_seconds", "Wall time of one closed-loop wave",
                              1e-4, 2.0, 22, labels),
  };
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Actual (post-execution) migration intervals per host; mirrors the
/// planner's scheduler but against realised durations, so the executor
/// re-serialises when a storm stretched an earlier attempt.
struct BusyIntervals {
  std::unordered_map<int, std::vector<std::pair<double, double>>> by_host;

  int overlap(int host, double t0, double t1) const {
    const auto it = by_host.find(host);
    if (it == by_host.end()) return 0;
    int n = 0;
    for (const auto& [s, e] : it->second) {
      if (s < t1 && e > t0) ++n;
    }
    return n;
  }

  void add(int host, double t0, double t1) { by_host[host].emplace_back(t0, t1); }

  /// Earliest start >= t_min with a free slot on both endpoints.
  double earliest_start(const plan::Fleet& fleet, int source, int target, double duration,
                        double t_min) const {
    const int cap_src = std::max(1, fleet.host(source).spec.max_concurrent_migrations);
    const int cap_dst = std::max(1, fleet.host(target).spec.max_concurrent_migrations);
    std::vector<double> starts{t_min};
    for (const int h : {source, target}) {
      const auto it = by_host.find(h);
      if (it == by_host.end()) continue;
      for (const auto& [s, e] : it->second) {
        if (e > t_min) starts.push_back(e);
      }
    }
    std::sort(starts.begin(), starts.end());
    for (const double t : starts) {
      if (overlap(source, t, t + duration) < cap_src &&
          overlap(target, t, t + duration) < cap_dst) {
        return t;
      }
    }
    return starts.back();
  }
};

/// Link payload rate between two hosts — the planner's pricing formula
/// (group rate capped by both NIC payload rates).
double payload_rate(const plan::PlannerConfig& cfg, const cloud::HostSpec& src,
                    const cloud::HostSpec& dst) {
  const double inf = std::numeric_limits<double>::infinity();
  const auto nic_payload = [&](double nic_rate) {
    return nic_rate > 0.0 ? nic_rate * cfg.nic_protocol_efficiency : inf;
  };
  const double group_rate = src.group == dst.group ? cfg.intra_group_payload_rate
                                                   : cfg.inter_group_payload_rate;
  return std::min({group_rate, nic_payload(src.nic_rate), nic_payload(dst.nic_rate)});
}

/// Outcome of one executed attempt.
struct ExecResult {
  bool started = false;  ///< engine accepted the migration
  migration::MigrationOutcome outcome = migration::MigrationOutcome::kRolledBack;
  double end_s = 0.0;           ///< sim time the endpoints freed up
  double wasted_fraction = 0.0; ///< wasted_bytes / total_bytes of the attempt
  std::string reason;
};

/// Runs one attempt in its own two-host simulation cell: source and
/// target hosts with the migrating VM plus one aggregate background
/// VM per endpoint (so CPU-coupled bandwidth sees realistic headroom),
/// the pair's link, and an engine fed the wave's storm. The cell clock
/// is wave-absolute: the migrate call fires at `start_s`, so storm
/// events at absolute time T hit exactly the attempts in flight at T.
ExecResult execute_attempt(const plan::Fleet& fleet, const plan::PlannerConfig& pcfg,
                           const plan::ScheduledMove& move, double start_s,
                           std::shared_ptr<const faults::FaultPlan> storm) {
  const plan::FleetHost& src = fleet.host(move.source);
  const plan::FleetHost& dst = fleet.host(move.target);
  const plan::FleetVm& fv = fleet.vm(move.vm);

  sim::Simulator sim;
  cloud::DataCenter dc;
  cloud::Host& source = dc.add_host(src.spec);
  cloud::Host& target = dc.add_host(dst.spec);

  net::LinkSpec link;
  link.name = src.spec.name + "<->" + dst.spec.name;
  link.protocol_efficiency = pcfg.nic_protocol_efficiency;
  link.wire_rate = payload_rate(pcfg, src.spec, dst.spec) / link.protocol_efficiency;
  dc.network().set_default_link(link);

  const auto add_background = [](cloud::Host& host, double load, const char* id) {
    if (load <= 1e-9) return;
    cloud::VmSpec spec;
    spec.instance_type = "chaos-background";
    spec.vcpus = host.spec().vcpus;
    spec.ram_bytes = 4096.0;  // aggregate CPU stand-in; nominal RAM footprint
    auto vm = std::make_shared<cloud::Vm>(id, spec);
    dcsim::TracedWorkloadParams params;
    params.vcpus = spec.vcpus;
    params.profile = dcsim::LoadProfile::constant(
        std::clamp(load / std::max(1.0, static_cast<double>(spec.vcpus)), 0.0, 1.0));
    params.dirty_pages_per_s_full = 0.0;
    params.working_set_pages = 0;
    vm->set_workload(std::make_shared<dcsim::TracedWorkload>(params));
    vm->start();
    host.add_vm(std::move(vm));
  };
  add_background(source, std::max(0.0, src.cpu_load - fv.cpu_now), "chaos-bg-source");
  add_background(target, dst.cpu_load, "chaos-bg-target");

  {
    cloud::VmSpec spec;
    spec.instance_type = "chaos-migrating";
    spec.vcpus = std::max(1, static_cast<int>(std::ceil(fv.vcpus)));
    spec.ram_bytes = fv.ram_bytes;
    auto vm = std::make_shared<cloud::Vm>(fv.id, spec);
    dcsim::TracedWorkloadParams params;
    params.vcpus = spec.vcpus;
    const double fraction =
        std::clamp(fv.cpu_now / static_cast<double>(spec.vcpus), 0.0, 1.0);
    params.profile = dcsim::LoadProfile::constant(fraction);
    params.dirty_pages_per_s_full = fraction > 1e-9 ? fv.dirty_now / fraction : 0.0;
    params.working_set_pages = fv.working_set_pages;
    // The planner priced the full RAM allocation; move the same bytes.
    params.memory_used_fraction = 1.0;
    vm->set_workload(std::make_shared<dcsim::TracedWorkload>(params));
    vm->start();
    source.add_vm(std::move(vm));
  }

  migration::MigrationEngine engine(sim, dc, net::BandwidthModel(pcfg.bandwidth),
                                    pcfg.migration);
  if (storm != nullptr) engine.set_fault_plan(std::move(storm));

  ExecResult result;
  sim.schedule_at(start_s, [&] {
    try {
      engine.migrate(fv.id, src.spec.name, dst.spec.name, pcfg.policy.migration_type, {},
                     [&](const migration::MigrationRecord& r) {
                       result.started = true;
                       result.outcome = r.outcome;
                       result.end_s = sim.now();
                       result.wasted_fraction =
                           r.total_bytes > 0.0
                               ? std::clamp(r.wasted_bytes / r.total_bytes, 0.0, 1.0)
                               : 0.0;
                       result.reason = r.failure_reason;
                     });
    } catch (const util::ContractError& e) {
      result.started = false;
      result.reason = e.what();
    }
  });
  sim.run_to_completion();
  if (result.end_s <= start_s) result.end_s = std::max(start_s, sim.now());
  return result;
}

}  // namespace

faults::FaultPlan make_storm(const StormOptions& options, std::uint64_t seed, int wave,
                             double wave_start_s, double horizon_s) {
  WAVM3_REQUIRE(horizon_s > 0.0, "storm horizon must be positive");
  faults::FaultPlan storm;
  if (options.level <= 0) return storm;

  // One derived seed per wave: replaying a run re-creates every wave's
  // storm, while distinct waves see independent weather.
  const std::uint64_t wave_seed =
      seed + 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(wave + 1);

  faults::FaultPlanOptions base;
  base.horizon = horizon_s;
  base.degradations = options.degradations_per_level * options.level;
  base.stalls = options.stalls_per_level * options.level;
  base.flaps = options.flaps_per_level * options.level;
  base.connection_loss_probability = 0.0;
  const faults::FaultPlan raw = faults::FaultPlan::random(base, wave_seed);

  // Shift the generated events into the wave's absolute window.
  for (const faults::LinkDegradation& d : raw.degradations()) {
    storm.add(faults::LinkDegradation{wave_start_s + d.start, wave_start_s + d.end, d.factor});
  }
  for (const faults::LinkFlap& f : raw.flaps()) {
    storm.add(faults::LinkFlap{wave_start_s + f.start, wave_start_s + f.end, f.up_duration,
                               f.down_duration, f.down_factor});
  }
  for (const faults::TransferStall& s : raw.stalls()) {
    storm.add(faults::TransferStall{wave_start_s + s.at, s.duration});
  }

  // Absolute-time connection losses on top; each aborts whatever is in
  // flight when it fires (phase-bound losses would re-arm per attempt
  // and abort everything, so storms never use them).
  const util::RngFactory factory(wave_seed);
  util::RngStream rng = factory.stream("chaos/losses");
  for (int i = 0; i < options.losses_per_level * options.level; ++i) {
    storm.add(faults::ConnectionLoss{faults::FaultPhase::kAny,
                                     wave_start_s + rng.uniform(0.0, horizon_s)});
  }
  return storm;
}

WaveExecutor::WaveExecutor(const models::EnergyModel& model, ChaosConfig config)
    : model_(&model), config_(std::move(config)), planner_(model, config_.planner),
      policy_(config_.replan) {
  WAVM3_REQUIRE(config_.wave_gap_s > 0.0, "wave gap must be positive");
  WAVM3_REQUIRE(config_.max_waves >= 1, "need at least one wave");
  WAVM3_REQUIRE(config_.max_relief_moves_per_wave >= 0,
                "relief cap must be non-negative");
}

WaveOutcome WaveExecutor::run_wave(plan::Fleet& fleet, const plan::PlacementStrategy& strategy,
                                   int wave, double now) {
  const auto wall_start = std::chrono::steady_clock::now();
  WAVM3_OBS_SPAN(span, "chaos", "wave");
  span.note("strategy", strategy.name());
  span.arg("wave", static_cast<double>(wave));
  ChaosMetrics metrics = chaos_metrics(strategy.name());

  WaveOutcome out;
  out.wave = wave;
  out.started_at_s = now;

  const double deadline = now + config_.replan.wave_deadline_s;
  std::shared_ptr<const faults::FaultPlan> storm;
  if (config_.faults_enabled && config_.storm.level > 0) {
    storm = std::make_shared<faults::FaultPlan>(
        make_storm(config_.storm, config_.storm_seed, wave, now,
                   config_.replan.wave_deadline_s));
  }

  fleet.refresh_loads(now, config_.planner.load_window_s);
  const double overload_fraction = config_.planner.policy.overload_fraction;

  std::vector<int> attempts;  ///< ledger ids to execute this wave
  const auto accept = [&](plan::ScheduledMove move, bool relief) {
    TrackedMove tm;
    tm.id = static_cast<int>(ledger_.size());
    tm.move = move;
    tm.relief = relief;
    tm.planned_wave = wave;
    tm.eligible_wave = wave;
    totals_.planned_j += move.energy_j;
    attempts.push_back(tm.id);
    ledger_.push_back(std::move(tm));
  };
  const auto refund = [&](TrackedMove& mv) {
    mv.resolution = MoveResolution::kReplanned;
    mv.resolved_wave = wave;
    totals_.refunded_j += mv.move.energy_j;
  };

  // VMs owned by a tracked pending move (eligible this wave or backing
  // off) are off limits to relief picks and fresh planner moves.
  std::unordered_set<int> owned;
  for (const int id : pending_) {
    owned.insert(ledger_[static_cast<std::size_t>(id)].move.vm);
  }

  // --- 1. Emergency overload relief, priced in one bulk pass.
  if (config_.relief_enabled) {
    WAVM3_OBS_SPAN(relief_span, "chaos", "relief");
    std::vector<int> overloaded;
    for (std::size_t h = 0; h < fleet.host_count(); ++h) {
      const plan::FleetHost& host = fleet.host(static_cast<int>(h));
      if (!host.powered_on || host.spec.vcpus <= 0) continue;
      // Raw demand, not the capped host_utilisation(): a host at 1.3x
      // capacity must shed more than one at 1.01x.
      if (host.cpu_load / host.spec.vcpus > overload_fraction) {
        overloaded.push_back(static_cast<int>(h));
      }
    }
    std::sort(overloaded.begin(), overloaded.end(), [&](int a, int b) {
      const double ua = fleet.host(a).cpu_load / fleet.host(a).spec.vcpus;
      const double ub = fleet.host(b).cpu_load / fleet.host(b).spec.vcpus;
      return ua != ub ? ua > ub : a < b;
    });
    out.overloaded_hosts = static_cast<int>(overloaded.size());

    struct ReliefPick {
      int vm = -1;
      int source = -1;
      int target = -1;
    };
    std::vector<ReliefPick> picks;
    std::unordered_map<int, double> extra_cpu;
    std::unordered_map<int, double> extra_ram;
    const std::unordered_set<int> overloaded_set(overloaded.begin(), overloaded.end());

    for (const int h : overloaded) {
      const plan::FleetHost& host = fleet.host(h);
      double load = host.cpu_load;
      const double cap = static_cast<double>(host.spec.vcpus);
      std::vector<int> vms(host.vms);
      // Smallest CPU first: shed the cheapest VMs that get under the line.
      std::sort(vms.begin(), vms.end(), [&](int a, int b) {
        const double ca = fleet.vm(a).cpu_now;
        const double cb = fleet.vm(b).cpu_now;
        return ca != cb ? ca < cb : a < b;
      });
      for (const int v : vms) {
        if (load <= overload_fraction * cap) break;
        if (static_cast<int>(picks.size()) >= config_.max_relief_moves_per_wave) break;
        if (owned.count(v) != 0) continue;
        const plan::FleetVm& vm = fleet.vm(v);
        if (vm.cpu_now <= 0.0) break;  // sorted ascending: nothing left to shed
        int best = -1;
        double best_load = std::numeric_limits<double>::infinity();
        for (std::size_t r = 0; r < fleet.host_count(); ++r) {
          const int ri = static_cast<int>(r);
          if (ri == h || overloaded_set.count(ri) != 0) continue;
          const plan::FleetHost& recv = fleet.host(ri);
          if (!recv.powered_on || recv.spec.vcpus <= 0) continue;
          const double r_cpu = recv.cpu_load + extra_cpu[ri];
          const double r_ram = recv.ram_committed + extra_ram[ri];
          if (r_ram + vm.ram_bytes > recv.spec.ram_bytes) continue;
          if (r_cpu + vm.cpu_now > overload_fraction * recv.spec.vcpus) continue;
          if (r_cpu < best_load) {
            best = ri;
            best_load = r_cpu;
          }
        }
        if (best < 0) {
          metrics.relief_unplaced.inc();
          continue;
        }
        picks.push_back({v, h, best});
        extra_cpu[best] += vm.cpu_now;
        extra_ram[best] += vm.ram_bytes;
        owned.insert(v);
        load -= vm.cpu_now;
      }
    }

    if (!picks.empty()) {
      // Price every relief candidate through the same FeatureBatch
      // bulk path the planner uses.
      std::vector<core::MigrationScenario> scenarios;
      scenarios.reserve(picks.size());
      for (const ReliefPick& pick : picks) {
        const plan::FleetVm& vm = fleet.vm(pick.vm);
        core::MigrationScenario sc;
        sc.type = config_.planner.policy.migration_type;
        sc.vm_mem_bytes = vm.ram_bytes;
        sc.vm_cpu_vcpus = vm.cpu_now;
        sc.vm_dirty_pages_per_s = vm.dirty_now;
        sc.vm_working_set_pages = static_cast<double>(vm.working_set_pages);
        sc.source_cpu_load = std::max(0.0, fleet.host(pick.source).cpu_load - vm.cpu_now);
        sc.source_cpu_capacity = static_cast<double>(fleet.host(pick.source).spec.vcpus);
        sc.target_cpu_load = fleet.host(pick.target).cpu_load;
        sc.target_cpu_capacity = static_cast<double>(fleet.host(pick.target).spec.vcpus);
        sc.link_payload_rate =
            payload_rate(config_.planner, fleet.host(pick.source).spec,
                         fleet.host(pick.target).spec);
        sc.migration = config_.planner.migration;
        sc.bandwidth = config_.planner.bandwidth;
        scenarios.push_back(sc);
      }
      std::vector<core::MigrationForecast> forecasts;
      plan::score_batch(*model_, scenarios, forecasts);
      for (std::size_t i = 0; i < picks.size(); ++i) {
        plan::ScheduledMove move;
        move.vm = picks[i].vm;
        move.source = picks[i].source;
        move.target = picks[i].target;
        move.start_s = now;
        move.end_s = now + forecasts[i].times.me;
        move.energy_j = forecasts[i].total_energy();
        move.downtime_s = forecasts[i].downtime;
        accept(move, /*relief=*/true);
        ++out.relief_moves;
      }
    }
    relief_span.arg("overloaded", static_cast<double>(overloaded.size()));
    relief_span.arg("moves", static_cast<double>(out.relief_moves));
  }

  // --- 2. Carried retries that reached their eligible wave.
  for (const int id : pending_) {
    TrackedMove& mv = ledger_[static_cast<std::size_t>(id)];
    if (mv.eligible_wave > wave) continue;
    const plan::FleetVm& vm = fleet.vm(mv.move.vm);
    const plan::FleetHost& target = fleet.host(mv.move.target);
    const bool valid = vm.host == mv.move.source && target.powered_on &&
                       fleet.fits(mv.move.target, vm) &&
                       target.cpu_load + vm.cpu_now <=
                           overload_fraction * static_cast<double>(target.spec.vcpus);
    if (!valid) {
      // The fleet drifted under the retry; hand the move back to the
      // planner instead of forcing a stale placement.
      refund(mv);
      ++out.invalidated;
      owned.erase(mv.move.vm);
      continue;
    }
    attempts.push_back(id);
    ++out.retries_attempted;
  }

  // --- 3. Fresh wave from the planner (what-if: commit happens per
  // completed attempt, not up front).
  {
    plan::WavePlan wp = planner_.plan_wave(fleet, strategy, now, /*commit=*/false);
    const std::size_t width = policy_.admitted_width(wp.moves.size());
    std::size_t accepted = 0;
    for (const plan::ScheduledMove& move : wp.moves) {
      if (owned.count(move.vm) != 0) {
        ++out.superseded;
        continue;
      }
      if (accepted >= width) {
        ++out.dropped_degraded;
        continue;
      }
      accept(move, /*relief=*/false);
      owned.insert(move.vm);
      ++accepted;
      ++out.planned_moves;
    }
  }

  // --- 4. Execute, re-serialising per host on realised durations.
  // Live-abort flags raised since the last wave (stream degeneration
  // alerts, possibly from serve worker threads) are consumed exactly
  // once, here at the wave boundary — mid-wave arrivals hit the next
  // wave, keeping execution deterministic for a given flag set.
  std::unordered_set<int> aborted_vms;
  {
    std::lock_guard<std::mutex> lock(abort_mutex_);
    aborted_vms.swap(live_abort_vms_);
  }
  std::vector<ExecutedInterval> intervals;
  {
    WAVM3_OBS_SPAN(exec_span, "chaos", "execute");
    std::sort(attempts.begin(), attempts.end(), [&](int a, int b) {
      const double sa = ledger_[static_cast<std::size_t>(a)].move.start_s;
      const double sb = ledger_[static_cast<std::size_t>(b)].move.start_s;
      return sa != sb ? sa < sb : a < b;
    });
    BusyIntervals busy;
    for (const int id : attempts) {
      TrackedMove& mv = ledger_[static_cast<std::size_t>(id)];
      if (aborted_vms.count(mv.move.vm) != 0) {
        // The live forecast said this migration is degenerating:
        // refund instead of executing; next wave's planner re-prices.
        refund(mv);
        ++out.live_aborted;
        continue;
      }
      const plan::FleetVm& vm = fleet.vm(mv.move.vm);
      // Earlier attempts this wave may have filled the target.
      if (vm.host != mv.move.source || !fleet.host(mv.move.target).powered_on ||
          !fleet.fits(mv.move.target, vm)) {
        refund(mv);
        ++out.invalidated;
        continue;
      }
      const double duration = std::max(1e-3, mv.move.end_s - mv.move.start_s);
      const double start = busy.earliest_start(fleet, mv.move.source, mv.move.target,
                                               duration, std::max(now, mv.move.start_s));
      if (start > deadline) {
        // Too late to run inside this wave: refund and let the next
        // wave's planner re-price it against the fleet it will find.
        refund(mv);
        ++out.deferred;
        continue;
      }

      ++mv.attempts;
      ++out.executed;
      WAVM3_OBS_SPAN(move_span, "chaos", "execute_move");
      move_span.arg("vm", static_cast<double>(mv.move.vm));
      move_span.arg("attempt", static_cast<double>(mv.attempts));
      ExecResult res = execute_attempt(fleet, config_.planner, mv.move, start, storm);
      if (!res.started) {
        // The engine rejected the request outright (no bytes moved).
        util::log_warn("chaos: dropping unexecutable move: " + res.reason);
        refund(mv);
        ++out.invalidated;
        continue;
      }
      move_span.note("outcome", to_string(res.outcome));
      busy.add(mv.move.source, start, res.end_s);
      busy.add(mv.move.target, start, res.end_s);
      intervals.push_back({mv.move.source, start, res.end_s});
      intervals.push_back({mv.move.target, start, res.end_s});

      switch (res.outcome) {
        case migration::MigrationOutcome::kCompleted:
          fleet.move_vm(mv.move.vm, mv.move.target);
          mv.resolution = MoveResolution::kCompleted;
          mv.resolved_wave = wave;
          totals_.committed_j += mv.move.energy_j;
          ++out.completed;
          policy_.record_execution(true);
          break;
        case migration::MigrationOutcome::kVmLost:
          // Post-copy durability hazard: the engine restarts the VM on
          // the *target*, so the placement lands (and is charged) even
          // though the attempt counts as a failure for the policy and
          // the pushed bytes were wasted (the restart re-reads state).
          fleet.move_vm(mv.move.vm, mv.move.target);
          mv.resolution = MoveResolution::kVmLost;
          mv.resolved_wave = wave;
          totals_.committed_j += mv.move.energy_j;
          totals_.wasted_j += mv.move.energy_j * res.wasted_fraction;
          ++out.vm_lost;
          policy_.record_execution(false);
          break;
        case migration::MigrationOutcome::kRolledBack:
          // The VM never left the source; the pushed bytes are waste.
          totals_.wasted_j += mv.move.energy_j * res.wasted_fraction;
          ++out.rolled_back;
          policy_.record_execution(false);
          if (!policy_.arm_retry(mv, wave)) {
            mv.resolution = MoveResolution::kShed;
            mv.resolved_wave = wave;
            totals_.refunded_j += mv.move.energy_j;
            ++out.shed;
          }
          break;
      }
    }
    exec_span.arg("attempts", static_cast<double>(out.executed));
    exec_span.arg("completed", static_cast<double>(out.completed));
  }

  // --- 5. Power off sources this wave fully vacated (the planner's
  // all-or-nothing donors empty exactly when every move landed).
  {
    std::unordered_set<int> sources;
    for (const int id : attempts) {
      const TrackedMove& mv = ledger_[static_cast<std::size_t>(id)];
      if (is_placed(mv.resolution) && mv.resolved_wave == wave && !mv.relief) {
        sources.insert(mv.move.source);
      }
    }
    for (const int h : sources) {
      if (fleet.host(h).powered_on && fleet.host(h).vms.empty()) {
        fleet.set_powered(h, false);
        ++out.hosts_powered_off;
      }
    }
  }

  // --- 6. Rebuild the retry queue and audit the wave.
  pending_.clear();
  totals_.outstanding_j = 0.0;
  for (const TrackedMove& mv : ledger_) {
    if (mv.resolution == MoveResolution::kPending) {
      pending_.push_back(mv.id);
      totals_.outstanding_j += mv.move.energy_j;
    }
  }
  out.degraded = policy_.degraded();
  out.ledger = totals_;
  {
    WAVM3_OBS_SPAN(check_span, "chaos", "invariants");
    out.violations = checker_.check(fleet, ledger_, intervals, totals_);
    check_span.arg("violations", static_cast<double>(out.violations.size()));
  }
  for (const InvariantViolation& v : out.violations) {
    util::log_warn("chaos: invariant violated [" + v.check + "]: " + v.detail);
  }

  out.wave_seconds = seconds_since(wall_start);
  metrics.waves.inc();
  metrics.attempts.inc(static_cast<std::uint64_t>(out.executed));
  metrics.completed.inc(static_cast<std::uint64_t>(out.completed));
  metrics.rolled_back.inc(static_cast<std::uint64_t>(out.rolled_back));
  metrics.vm_lost.inc(static_cast<std::uint64_t>(out.vm_lost));
  metrics.retries.inc(static_cast<std::uint64_t>(out.retries_attempted));
  metrics.sheds.inc(static_cast<std::uint64_t>(out.shed));
  metrics.deferred.inc(static_cast<std::uint64_t>(out.deferred));
  metrics.superseded.inc(static_cast<std::uint64_t>(out.superseded));
  metrics.live_aborts.inc(static_cast<std::uint64_t>(out.live_aborted));
  metrics.relief_moves.inc(static_cast<std::uint64_t>(out.relief_moves));
  metrics.invariant_violations.inc(static_cast<std::uint64_t>(out.violations.size()));
  metrics.planned_j.set(totals_.planned_j);
  metrics.committed_j.set(totals_.committed_j);
  metrics.refunded_j.set(totals_.refunded_j);
  metrics.wasted_j.set(totals_.wasted_j);
  metrics.degraded.set(out.degraded ? 1.0 : 0.0);
  metrics.wave_seconds.observe(out.wave_seconds);
  span.arg("planned", static_cast<double>(out.planned_moves));
  span.arg("executed", static_cast<double>(out.executed));
  span.arg("completed", static_cast<double>(out.completed));
  span.arg("violations", static_cast<double>(out.violations.size()));
  return out;
}

ChaosReport WaveExecutor::run(plan::Fleet& fleet, const plan::PlacementStrategy& strategy,
                              double start_now) {
  ChaosReport report;
  for (int wave = 0; wave < config_.max_waves; ++wave) {
    const double now = start_now + static_cast<double>(wave) * config_.wave_gap_s;
    WaveOutcome out = run_wave(fleet, strategy, wave, now);
    const bool quiescent = out.planned_moves == 0 && out.relief_moves == 0 &&
                           out.retries_attempted == 0 && out.executed == 0 &&
                           out.deferred == 0 && out.invalidated == 0 &&
                           out.live_aborted == 0 && pending_.empty();
    report.invariant_violations += static_cast<int>(out.violations.size());
    report.waves.push_back(std::move(out));
    if (quiescent) {
      report.terminal = true;
      break;
    }
  }

  report.moves_planned = static_cast<int>(ledger_.size());
  for (const TrackedMove& mv : ledger_) {
    switch (mv.resolution) {
      case MoveResolution::kCompleted:
      case MoveResolution::kVmLost: ++report.resolved_placed; break;
      case MoveResolution::kReplanned: ++report.resolved_replanned; break;
      case MoveResolution::kShed:
      case MoveResolution::kPending: ++report.unresolved; break;
    }
  }
  if (report.moves_planned > 0) {
    report.resolution_fraction =
        static_cast<double>(report.resolved_placed + report.resolved_replanned) /
        static_cast<double>(report.moves_planned);
  }
  report.ledger = totals_;
  report.wasted_attempts_j = totals_.wasted_j;
  return report;
}

void WaveExecutor::request_live_abort(int vm) {
  std::lock_guard<std::mutex> lock(abort_mutex_);
  live_abort_vms_.insert(vm);
  ++live_abort_requests_;
}

std::uint64_t WaveExecutor::live_abort_requests() const {
  std::lock_guard<std::mutex> lock(abort_mutex_);
  return live_abort_requests_;
}

stream::DegenerationCallback make_live_abort_hook(WaveExecutor& executor) {
  return [&executor](const stream::DegenerationAlert& alert) {
    if (alert.plan_vm >= 0) executor.request_live_abort(alert.plan_vm);
  };
}

}  // namespace wavm3::chaos
