#include "chaos/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "util/strings.hpp"

namespace wavm3::chaos {

std::vector<InvariantViolation> FleetInvariantChecker::check(
    const plan::Fleet& fleet, std::span<const TrackedMove> ledger,
    std::span<const ExecutedInterval> wave_intervals, const LedgerSnapshot& totals) const {
  std::vector<InvariantViolation> violations;
  const auto fail = [&](const char* check, std::string detail) {
    violations.push_back({check, std::move(detail)});
  };

  // --- capacity + placement: recompute every host from its VM list.
  std::vector<int> placements(fleet.vm_count(), 0);
  for (std::size_t h = 0; h < fleet.host_count(); ++h) {
    const plan::FleetHost& host = fleet.host(static_cast<int>(h));
    double ram = 0.0;
    double cpu = 0.0;
    for (const int v : host.vms) {
      if (v < 0 || v >= static_cast<int>(fleet.vm_count())) {
        fail("placement", util::format("host %s references VM index %d out of range",
                                       host.spec.name.c_str(), v));
        continue;
      }
      const plan::FleetVm& vm = fleet.vm(v);
      if (vm.host != static_cast<int>(h)) {
        fail("placement", util::format("VM %s listed on host %s but points at host %d",
                                       vm.id.c_str(), host.spec.name.c_str(), vm.host));
      }
      if (++placements[static_cast<std::size_t>(v)] > 1) {
        fail("placement", util::format("VM %s placed more than once", vm.id.c_str()));
      }
      ram += vm.ram_bytes;
      cpu += vm.cpu_now;
    }
    if (ram > host.spec.ram_bytes * (1.0 + kLedgerRelTol) + kAccountingTol) {
      fail("capacity", util::format("host %s commits %.0f of %.0f RAM bytes",
                                    host.spec.name.c_str(), ram, host.spec.ram_bytes));
    }
    if (std::abs(ram - host.ram_committed) > kAccountingTol) {
      fail("capacity", util::format("host %s ram_committed %.0f != recomputed %.0f",
                                    host.spec.name.c_str(), host.ram_committed, ram));
    }
    if (std::abs(cpu - host.cpu_load) > kAccountingTol) {
      fail("capacity", util::format("host %s cpu_load %.6f != recomputed %.6f",
                                    host.spec.name.c_str(), host.cpu_load, cpu));
    }
    if (!host.powered_on && !host.vms.empty()) {
      fail("placement", util::format("powered-off host %s still holds %zu VMs",
                                     host.spec.name.c_str(), host.vms.size()));
    }
  }
  for (std::size_t v = 0; v < placements.size(); ++v) {
    if (placements[v] != 1) {
      fail("placement", util::format("VM %s appears on %d host lists",
                                     fleet.vm(static_cast<int>(v)).id.c_str(), placements[v]));
    }
  }

  // --- ownership: one pending entry per VM; pending entries must
  // still match reality; and within any single wave a VM must not be
  // both shed (lost to the plan) and placed on a target — the "not
  // both lost and placed" contradiction. Across waves a shed VM may
  // legitimately re-enter a later plan and land.
  std::unordered_map<int, int> pending_per_vm;
  std::unordered_map<int, std::vector<std::pair<MoveResolution, int>>> resolved_per_vm;
  for (const TrackedMove& mv : ledger) {
    if (mv.resolution == MoveResolution::kPending) {
      if (++pending_per_vm[mv.move.vm] > 1) {
        fail("ownership", util::format("VM %s owned by %d pending moves",
                                       fleet.vm(mv.move.vm).id.c_str(),
                                       pending_per_vm[mv.move.vm]));
      }
      if (fleet.vm(mv.move.vm).host != mv.move.source) {
        fail("ownership",
             util::format("pending move #%d expects VM %s on host index %d, found %d", mv.id,
                          fleet.vm(mv.move.vm).id.c_str(), mv.move.source,
                          fleet.vm(mv.move.vm).host));
      }
    } else if (mv.resolution == MoveResolution::kShed || is_placed(mv.resolution)) {
      resolved_per_vm[mv.move.vm].emplace_back(mv.resolution, mv.resolved_wave);
    }
  }
  for (const auto& [vm, entries] : resolved_per_vm) {
    for (std::size_t i = 0; i < entries.size(); ++i) {
      for (std::size_t j = i + 1; j < entries.size(); ++j) {
        if (entries[i].second != entries[j].second) continue;
        const bool one_shed = entries[i].first == MoveResolution::kShed ||
                              entries[j].first == MoveResolution::kShed;
        const bool one_placed = is_placed(entries[i].first) || is_placed(entries[j].first);
        if (one_shed && one_placed) {
          fail("ownership", util::format("VM %s both shed and placed in wave %d",
                                         fleet.vm(vm).id.c_str(), entries[i].second));
        }
      }
    }
  }

  // --- concurrency: sweep each host's executed intervals against its
  // migration cap.
  std::unordered_map<int, std::vector<std::pair<double, int>>> events;
  for (const ExecutedInterval& iv : wave_intervals) {
    if (iv.end_s <= iv.start_s) continue;
    events[iv.host].emplace_back(iv.start_s, +1);
    events[iv.host].emplace_back(iv.end_s, -1);
  }
  for (auto& [host, evs] : events) {
    // Ends sort before starts at equal times: back-to-back slots are
    // legal under a cap of one.
    std::sort(evs.begin(), evs.end(), [](const auto& a, const auto& b) {
      return a.first != b.first ? a.first < b.first : a.second < b.second;
    });
    const int cap = std::max(1, fleet.host(host).spec.max_concurrent_migrations);
    int depth = 0;
    for (const auto& [t, delta] : evs) {
      depth += delta;
      if (depth > cap) {
        fail("concurrency",
             util::format("host %s ran %d concurrent migrations at t=%.3f (cap %d)",
                          fleet.host(host).spec.name.c_str(), depth, t, cap));
        break;
      }
    }
  }

  // --- energy ledger conservation.
  const double residual =
      totals.planned_j - totals.committed_j - totals.refunded_j - totals.outstanding_j;
  if (std::abs(residual) > kLedgerRelTol * std::max(1.0, std::abs(totals.planned_j))) {
    fail("energy-ledger",
         util::format("planned %.6f J != committed %.6f + refunded %.6f + outstanding %.6f "
                      "(residual %.3e)",
                      totals.planned_j, totals.committed_j, totals.refunded_j,
                      totals.outstanding_j, residual));
  }
  if (totals.wasted_j < -kAccountingTol) {
    fail("energy-ledger", util::format("negative wasted energy %.6f J", totals.wasted_j));
  }

  return violations;
}

}  // namespace wavm3::chaos
