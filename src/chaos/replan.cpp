#include "chaos/replan.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace wavm3::chaos {

const char* to_string(MoveResolution r) {
  switch (r) {
    case MoveResolution::kPending: return "pending";
    case MoveResolution::kCompleted: return "completed";
    case MoveResolution::kVmLost: return "vm-lost";
    case MoveResolution::kReplanned: return "replanned";
    case MoveResolution::kShed: return "shed";
  }
  return "?";
}

ReplanPolicy::ReplanPolicy(ReplanConfig config) : config_(config) {
  WAVM3_REQUIRE(config_.wave_deadline_s > 0.0, "wave deadline must be positive");
  WAVM3_REQUIRE(config_.retry_budget >= 1, "retry budget must allow one attempt");
  WAVM3_REQUIRE(config_.backoff_base_waves >= 1 &&
                    config_.max_backoff_waves >= config_.backoff_base_waves,
                "backoff waves must be >= 1 and capped at max_backoff_waves");
  WAVM3_REQUIRE(config_.rolling_window >= 1, "rolling window must hold >= 1 execution");
  WAVM3_REQUIRE(config_.degraded_failure_rate > 0.0 && config_.degraded_failure_rate <= 1.0 &&
                    config_.recovery_failure_rate >= 0.0 &&
                    config_.recovery_failure_rate < config_.degraded_failure_rate,
                "degraded/recovery rates must satisfy 0 <= recovery < degraded <= 1");
  WAVM3_REQUIRE(config_.degraded_width_factor > 0.0 && config_.degraded_width_factor <= 1.0,
                "degraded width factor must be in (0, 1]");
  WAVM3_REQUIRE(config_.min_wave_moves >= 1, "degraded waves must admit >= 1 move");
}

double ReplanPolicy::failure_rate() const {
  if (window_.empty()) return 0.0;
  return static_cast<double>(window_failures_) / static_cast<double>(window_.size());
}

std::size_t ReplanPolicy::admitted_width(std::size_t planned) const {
  if (!degraded_) return planned;
  const auto shrunk = static_cast<std::size_t>(static_cast<double>(planned) *
                                               config_.degraded_width_factor);
  return std::min(planned, std::max(static_cast<std::size_t>(config_.min_wave_moves), shrunk));
}

void ReplanPolicy::record_execution(bool success) {
  window_.push_back(!success);
  if (!success) ++window_failures_;
  while (window_.size() > static_cast<std::size_t>(config_.rolling_window)) {
    if (window_.front()) --window_failures_;
    window_.pop_front();
  }
  const double rate = failure_rate();
  if (rate >= config_.degraded_failure_rate) {
    degraded_ = true;
  } else if (rate <= config_.recovery_failure_rate) {
    degraded_ = false;
  }
}

bool ReplanPolicy::arm_retry(TrackedMove& mv, int wave) const {
  if (mv.attempts >= config_.retry_budget) return false;
  // attempts failures so far -> backoff doubles per failure past the
  // first, capped so a flaky move cannot drift out of the run entirely.
  const int doublings = std::min(mv.attempts - 1, 30);
  const long long raw = static_cast<long long>(config_.backoff_base_waves) << doublings;
  const int backoff = static_cast<int>(
      std::min<long long>(raw, static_cast<long long>(config_.max_backoff_waves)));
  mv.eligible_wave = wave + backoff;
  return true;
}

}  // namespace wavm3::chaos
