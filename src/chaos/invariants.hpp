// Fleet invariant checking for the chaos executor: after every wave
// the reconciled Fleet snapshot and the move ledger are audited, so a
// bookkeeping bug (double-placed VM, over-committed host, leaked
// energy) aborts the experiment at the wave that introduced it rather
// than corrupting every later wave's numbers.
//
// Checked invariants:
//   * capacity      — per-host RAM commitment within spec, and the
//                     host's cached ram/cpu accumulators agree with a
//                     recomputation from its VM list;
//   * placement     — host/VM references form a bijection: every VM on
//                     exactly one powered host, no orphans, no dupes,
//                     powered-off hosts empty;
//   * ownership     — each VM has at most one pending ledger entry,
//                     pending entries still match reality (the VM sits
//                     on the entry's source), and no VM is both shed
//                     (lost to the plan) and placed by the same wave;
//   * concurrency   — executed migration intervals never overlap a
//                     host beyond its max_concurrent_migrations cap;
//   * energy ledger — planned = committed + refunded + outstanding
//                     within 1e-9 relative, wasted >= 0 (predicted
//                     energy is conserved: every accepted move's price
//                     is either committed by a placement or refunded,
//                     never silently dropped).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "chaos/replan.hpp"
#include "plan/fleet.hpp"

namespace wavm3::chaos {

/// One failed invariant; `check` names the invariant class, `detail`
/// the concrete host/VM/number that broke it.
struct InvariantViolation {
  std::string check;
  std::string detail;
};

/// The executor's running energy ledger (joules of *predicted*
/// migration energy; wasted_j additionally meters the energy burnt by
/// failed attempts on top of the plan).
struct LedgerSnapshot {
  double planned_j = 0.0;      ///< every accepted move, once
  double committed_j = 0.0;    ///< moves whose VM landed on the target
  double refunded_j = 0.0;     ///< moves replanned or shed
  double outstanding_j = 0.0;  ///< moves still pending a retry
  double wasted_j = 0.0;       ///< energy burnt by failed attempts
};

/// One host's share of an executed migration attempt (both endpoints
/// of every attempt are recorded), with the *actual* start/end times.
struct ExecutedInterval {
  int host = -1;
  double start_s = 0.0;
  double end_s = 0.0;
};

class FleetInvariantChecker {
 public:
  /// Relative tolerance of the energy-ledger conservation check.
  static constexpr double kLedgerRelTol = 1e-9;
  /// Absolute tolerance of the recomputed-accounting checks (joule/
  /// byte/vCPU accumulators drift by float reassociation only).
  static constexpr double kAccountingTol = 1e-6;

  /// Audits one wave's end state. `ledger` is the full move ledger
  /// (all waves), `wave_intervals` the attempts executed this wave.
  std::vector<InvariantViolation> check(const plan::Fleet& fleet,
                                        std::span<const TrackedMove> ledger,
                                        std::span<const ExecutedInterval> wave_intervals,
                                        const LedgerSnapshot& totals) const;
};

}  // namespace wavm3::chaos
