// Replan policy of the chaos wave executor: the part that decides what
// happens to a planned migration after reality disagrees with the plan.
//
// Three mechanisms, mirroring the serve degradation ladder from the
// prediction service (deadline -> retry/backoff -> degraded mode):
//
//   * wave deadlines — a move that cannot *start* within
//     ReplanConfig::wave_deadline_s of its wave's opening is not
//     executed late; it is refunded and handed back to the planner,
//     which re-prices it against the fleet state it will actually run
//     under.
//   * bounded retries with backoff — a rolled-back migration keeps the
//     VM on its source, so the same move can be re-attempted. Each
//     tracked move carries a retry budget; every failure pushes the
//     next attempt further out (exponentially, in waves), and an
//     exhausted budget sheds the move.
//   * degraded mode — when the rolling failure rate of recent
//     executions crosses a threshold, the executor stops trusting the
//     network and shrinks the admitted wave width until the rate
//     recovers (fewer in-flight migrations, less wasted energy per
//     storm).
#pragma once

#include <cstddef>
#include <deque>

#include "plan/planner.hpp"

namespace wavm3::chaos {

/// How a tracked move left (or has not yet left) the ledger.
enum class MoveResolution {
  kPending,    ///< attempt outstanding or retry scheduled
  kCompleted,  ///< the VM runs on the planned target
  kVmLost,     ///< post-copy durability hazard: VM restarted on the target
  kReplanned,  ///< refunded back to the planner (deadline, drift, supersede)
  kShed,       ///< retry budget exhausted; abandoned
};

const char* to_string(MoveResolution r);

/// True when the resolution means the VM landed on the move's target
/// (the move's predicted energy is committed).
inline bool is_placed(MoveResolution r) {
  return r == MoveResolution::kCompleted || r == MoveResolution::kVmLost;
}

/// One planned migration tracked across waves: the executor's unit of
/// accounting. Every accepted move (fresh plan, overload relief, or
/// carried retry) gets exactly one ledger entry whose predicted energy
/// is later committed (placed) or refunded (replanned / shed) — the
/// partition the FleetInvariantChecker's energy-ledger check enforces.
struct TrackedMove {
  int id = -1;                ///< ledger index
  plan::ScheduledMove move;   ///< planned schedule, predicted energy
  bool relief = false;        ///< emergency overload-relief move
  int planned_wave = 0;       ///< wave the move entered the ledger
  int attempts = 0;           ///< executions so far
  int eligible_wave = 0;      ///< earliest wave the next attempt may run
  MoveResolution resolution = MoveResolution::kPending;
  int resolved_wave = -1;     ///< wave the resolution landed in (-1 while pending)
};

struct ReplanConfig {
  /// A move must *start* within this of its wave's opening; later
  /// starts are refunded and replanned instead of executed stale.
  double wave_deadline_s = 2.0 * 7200.0;
  /// Executions allowed per tracked move (first attempt included).
  int retry_budget = 3;
  /// Waves to wait after the first failure; doubles per further
  /// failure, capped at max_backoff_waves.
  int backoff_base_waves = 1;
  int max_backoff_waves = 4;
  /// Rolling failure rate at which degraded mode engages / releases.
  double degraded_failure_rate = 0.5;
  double recovery_failure_rate = 0.2;
  /// Executions in the rolling failure window.
  int rolling_window = 16;
  /// Fresh-plan width multiplier while degraded.
  double degraded_width_factor = 0.5;
  int min_wave_moves = 1;
};

/// Deadline / retry / degraded-mode decisions. Stateful only in the
/// rolling failure window; per-move state lives in TrackedMove.
class ReplanPolicy {
 public:
  explicit ReplanPolicy(ReplanConfig config = {});

  const ReplanConfig& config() const { return config_; }

  bool degraded() const { return degraded_; }

  /// Failure fraction of the rolling window (0 while empty).
  double failure_rate() const;

  /// Fresh planner moves admitted this wave given `planned` were
  /// produced: all of them at full health, a shrunken prefix while
  /// degraded (never below min_wave_moves unless fewer were planned).
  std::size_t admitted_width(std::size_t planned) const;

  /// Records one execution outcome into the rolling window and updates
  /// the degraded flag (with hysteresis: engage at
  /// degraded_failure_rate, release at recovery_failure_rate).
  void record_execution(bool success);

  /// Arms the next retry of a failed move: true when budget remains
  /// (mv.eligible_wave pushed out by the backoff), false when the move
  /// must be shed. `wave` is the wave the failure happened in.
  bool arm_retry(TrackedMove& mv, int wave) const;

 private:
  ReplanConfig config_;
  std::deque<bool> window_;  ///< recent executions, true = failure
  std::size_t window_failures_ = 0;
  bool degraded_ = false;
};

}  // namespace wavm3::chaos
