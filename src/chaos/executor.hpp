// Chaos-hardened plan -> execute -> replan loop.
//
// The datacenter planner (src/plan/) prices and schedules waves against
// a static Fleet snapshot and assumes clean execution. The WaveExecutor
// closes the loop: each wave's moves are run through the event-driven
// migration engine under a deterministic per-wave fault storm, and only
// the migrations that *actually* completed are committed back into the
// fleet — the live re-planning hook the ROADMAP calls for. Failures
// flow through the ReplanPolicy (deadlines, bounded retries with
// backoff across waves, degraded mode), hosts pushed over capacity by
// load drift or failed moves get emergency overload-relief waves priced
// through the same FeatureBatch bulk path, and every wave ends with a
// FleetInvariantChecker audit plus chaos_* metrics and spans.
//
// Execution model: moves are serialised per host under the fleet's
// max_concurrent_migrations caps (actual durations, not predicted
// ones), and each attempt runs in its own two-host simulation cell —
// source and target hosts carrying the migrating VM plus an aggregate
// background-load VM each, the pair's link, and a MigrationEngine fed
// the wave's storm. Cell clocks are wave-absolute, so a storm event at
// time T hits exactly the attempts in flight at T. With faults
// disabled every attempt completes and the committed outcome is
// identical to MigrationPlanner::plan_wave(commit=true) — the loop
// adds no cost on the happy path (pinned by test and bench).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "chaos/invariants.hpp"
#include "chaos/replan.hpp"
#include "faults/fault_plan.hpp"
#include "models/energy_model.hpp"
#include "plan/planner.hpp"
#include "plan/strategy.hpp"
#include "stream/session.hpp"

namespace wavm3::chaos {

/// Deterministic per-wave fault storm shape. `level` scales every
/// event class linearly; level 0 is a calm network. Storms use only
/// absolute-time events (a phase-bound connection loss re-arms for
/// every migration and would deterministically abort the whole wave).
struct StormOptions {
  int level = 1;
  int losses_per_level = 3;        ///< absolute-time connection losses
  int degradations_per_level = 2;
  int stalls_per_level = 2;
  int flaps_per_level = 1;
};

/// Builds wave `wave`'s storm: FaultPlan::random events plus extra
/// connection losses, all shifted into [wave_start_s, wave_start_s +
/// horizon_s). Deterministic in (options, seed, wave).
faults::FaultPlan make_storm(const StormOptions& options, std::uint64_t seed, int wave,
                             double wave_start_s, double horizon_s);

struct ChaosConfig {
  plan::PlannerConfig planner;
  ReplanConfig replan;
  StormOptions storm;
  std::uint64_t storm_seed = 2015;
  bool faults_enabled = true;
  /// Emergency shedding for hosts over the policy's overload fraction
  /// (raw demand, not the capped utilisation). Off = planner waves and
  /// retries only.
  bool relief_enabled = true;
  /// Wall time between wave openings (the closed-loop cadence).
  double wave_gap_s = 7200.0;
  int max_waves = 16;
  int max_relief_moves_per_wave = 64;
};

/// What one closed-loop wave did.
struct WaveOutcome {
  int wave = 0;
  double started_at_s = 0.0;
  int planned_moves = 0;       ///< fresh planner moves accepted into the ledger
  int dropped_degraded = 0;    ///< fresh moves cut by degraded wave width
  int superseded = 0;          ///< fresh moves dropped: VM owned by a pending retry
  int relief_moves = 0;        ///< overload-relief moves accepted
  int overloaded_hosts = 0;    ///< hosts over the overload fraction at wave start
  int retries_attempted = 0;   ///< carried moves re-executed this wave
  int executed = 0;            ///< migration attempts run
  int completed = 0;
  int rolled_back = 0;
  int vm_lost = 0;
  int deferred = 0;            ///< refunded: could not start before the deadline
  int invalidated = 0;         ///< refunded: fleet drifted under a pending retry
  int shed = 0;                ///< refunded: retry budget exhausted
  int live_aborted = 0;        ///< refunded: live degeneration abort (src/stream/)
  int hosts_powered_off = 0;
  bool degraded = false;       ///< policy in degraded mode after the wave
  LedgerSnapshot ledger;       ///< running totals after the wave
  std::vector<InvariantViolation> violations;
  double wave_seconds = 0.0;   ///< wall-clock time of the wave
};

/// Whole-run summary.
struct ChaosReport {
  std::vector<WaveOutcome> waves;
  int moves_planned = 0;       ///< unique ledger entries
  int resolved_placed = 0;     ///< completed + vm-lost
  int resolved_replanned = 0;  ///< deferred / invalidated / superseded retries
  int unresolved = 0;          ///< shed + still pending at exit
  /// (resolved_placed + resolved_replanned) / moves_planned — the
  /// bench gate's "eventually completed or successfully re-planned".
  double resolution_fraction = 1.0;
  int invariant_violations = 0;
  bool terminal = false;       ///< reached quiescence before max_waves
  LedgerSnapshot ledger;
  double wasted_attempts_j = 0.0;  ///< == ledger.wasted_j (convenience)
};

/// Closed-loop wave executor. Stateful across waves (ledger, retry
/// queue, degraded mode); one executor drives one fleet's run.
class WaveExecutor {
 public:
  /// `model` must outlive the executor and be fitted for the policy's
  /// migration type.
  WaveExecutor(const models::EnergyModel& model, ChaosConfig config = {});

  const ChaosConfig& config() const { return config_; }
  const ReplanPolicy& policy() const { return policy_; }
  const std::vector<TrackedMove>& ledger() const { return ledger_; }

  /// Runs up to config.max_waves closed-loop waves over `fleet`,
  /// opening wave w at start_now + w * wave_gap_s. Stops early at
  /// quiescence (nothing planned, nothing pending, nothing relieved).
  ChaosReport run(plan::Fleet& fleet, const plan::PlacementStrategy& strategy,
                  double start_now = 0.0);

  /// Executes a single wave (exposed for tests; run() loops this).
  WaveOutcome run_wave(plan::Fleet& fleet, const plan::PlacementStrategy& strategy, int wave,
                      double now);

  /// Flags `vm` for live abort: any attempt (fresh, relief, or carried
  /// retry) moving that VM is refunded — resolution kReplanned, energy
  /// back to the planner — at the next wave boundary instead of being
  /// executed, so the planner re-prices the move against the fleet it
  /// finds. This is the re-plan hook behind a stream degeneration
  /// alert ("this live migration will not converge; stop paying for
  /// it"). Thread-safe: the stream callback fires from serve worker
  /// threads while run_wave owns the ledger. Requests are consumed
  /// once per wave; flags for untracked VMs expire silently.
  void request_live_abort(int vm);

  /// Total request_live_abort() calls (monotonic; diagnostics).
  std::uint64_t live_abort_requests() const;

 private:
  const models::EnergyModel* model_;
  ChaosConfig config_;
  plan::MigrationPlanner planner_;
  ReplanPolicy policy_;
  std::vector<TrackedMove> ledger_;
  std::vector<int> pending_;  ///< ledger ids awaiting a retry wave
  LedgerSnapshot totals_;
  FleetInvariantChecker checker_;
  mutable std::mutex abort_mutex_;       ///< guards the two fields below only
  std::unordered_set<int> live_abort_vms_;  ///< flagged since the last wave
  std::uint64_t live_abort_requests_ = 0;
};

/// Adapts an executor into the stream degeneration-alert consumer:
/// alerts carrying a planner VM id (sessions opened with plan_vm >= 0)
/// flag that VM for abort-and-refund at the next wave boundary; others
/// are ignored. Install via
/// serve::PredictionService::set_degeneration_callback. The executor
/// must outlive every service holding the callback.
stream::DegenerationCallback make_live_abort_hook(WaveExecutor& executor);

}  // namespace wavm3::chaos
