// Sharded LRU result cache. Each shard owns a mutex, an intrusive
// recency list, and a hash index; a key's shard is picked from the
// high bits of its hash (the low bits already steer the bucket inside
// the shard's unordered_map, so reusing them would correlate shard and
// bucket). Counters are plain atomics so readers never take a lock to
// observe hit rates.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace wavm3::serve {

/// Aggregated cache counters (monotonic since construction/clear).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

template <typename Key, typename Value, typename Hash = std::hash<Key>,
          typename Eq = std::equal_to<Key>>
class ShardedLruCache {
 public:
  /// `capacity` is the total entry budget. Shard capacities sum to
  /// exactly `capacity`: each gets floor(capacity/shards) slots and
  /// the remainder is spread one slot each over the leading shards, so
  /// the cache can never hold more entries than configured.
  ///
  /// Edge-case semantics, made explicit:
  ///   * capacity == 0 or shards == 0 is rejected (ContractError) —
  ///     a zero-capacity cache should be expressed by not building one
  ///     (PredictionService skips construction when cache_capacity==0).
  ///   * capacity < shards collapses the shard count to `capacity`,
  ///     so every *populated* shard holds at least one entry and no
  ///     shard ever has capacity 0. A zero-capacity shard would make
  ///     put() evict the entry it just inserted (or worse, evict from
  ///     an empty order list); clamping removes that state entirely.
  explicit ShardedLruCache(std::size_t capacity, std::size_t shards = 8) {
    WAVM3_REQUIRE(capacity > 0, "cache capacity must be positive");
    WAVM3_REQUIRE(shards > 0, "cache needs at least one shard");
    shards = std::min(shards, capacity);
    const std::size_t base = capacity / shards;
    const std::size_t extra = capacity % shards;
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<Shard>(base + (i < extra ? 1 : 0)));
    }
  }

  /// Looks `key` up, refreshing its recency on a hit.
  std::optional<Value> get(const Key& key) { return lookup(key, /*count_miss=*/true); }

  /// Like get(), but a miss is not counted. For speculative probes
  /// whose miss is retried — and then counted — on the slow path, so
  /// one logical request never records two misses.
  std::optional<Value> peek(const Key& key) { return lookup(key, /*count_miss=*/false); }

  /// Inserts or refreshes `key`, evicting the shard's least recently
  /// used entry when the shard is at capacity.
  void put(const Key& key, Value value) {
    const std::size_t h = hash_(key);
    Shard& shard = shard_for(h);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->second = std::move(value);
      shard.order.splice(shard.order.begin(), shard.order, it->second);
      return;
    }
    if (shard.order.size() >= shard.capacity) {
      shard.index.erase(shard.order.back().first);
      shard.order.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    shard.order.emplace_front(key, std::move(value));
    shard.index.emplace(key, shard.order.begin());
    insertions_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Drops every entry (counters keep accumulating).
  void clear() {
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mutex);
      shard->order.clear();
      shard->index.clear();
    }
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mutex);
      n += shard->order.size();
    }
    return n;
  }

  std::size_t shard_count() const { return shards_.size(); }

  CacheStats stats() const {
    CacheStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.insertions = insertions_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::optional<Value> lookup(const Key& key, bool count_miss) {
    const std::size_t h = hash_(key);
    Shard& shard = shard_for(h);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      if (count_miss) misses_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    shard.order.splice(shard.order.begin(), shard.order, it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second->second;
  }

  struct Shard {
    explicit Shard(std::size_t cap) : capacity(cap) {}

    using Entry = std::pair<Key, Value>;

    const std::size_t capacity;
    std::mutex mutex;
    std::list<Entry> order;  ///< front = most recently used
    std::unordered_map<Key, typename std::list<Entry>::iterator, Hash, Eq> index;
  };

  Shard& shard_for(std::size_t hash) {
    // Mix the high bits down so shard choice is independent of the
    // unordered_map's bucket choice (which consumes the low bits).
    const std::size_t mixed = hash ^ (hash >> 32U) ^ 0x9e3779b97f4a7c15ULL;
    return *shards_[(mixed >> 7U) % shards_.size()];
  }

  Hash hash_{};
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> insertions_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace wavm3::serve
