// Synthetic query streams for load-testing the prediction service.
//
// A scheduling round in a consolidation-driven data centre asks the
// planner about many candidate (VM, source, target) triples whose host
// loads follow the fleet's diurnal cycle, and consecutive rounds repeat
// most of their questions (the fleet barely changes between rounds).
// QueryStreamGenerator reproduces that shape: host loads are sampled
// from dcsim::LoadProfile curves as simulated time advances, VM sizes
// and dirtying rates are drawn from a small instance catalogue, and a
// configurable fraction of queries is an exact repeat of an earlier
// one (the cacheable regime).
#pragma once

#include <cstdint>
#include <vector>

#include "core/planner.hpp"
#include "dcsim/load_profile.hpp"
#include "util/rng.hpp"

namespace wavm3::serve {

struct QueryStreamOptions {
  /// Fraction of queries in [0, 1] replayed verbatim from the stream's
  /// history (0 = all distinct, 0.9 = the 90%-repeated regime).
  double repeat_fraction = 0.0;
  /// Simulated seconds between consecutive queries (advances the load
  /// profiles; one scheduling round per query by default).
  double query_interval_s = 60.0;
  /// Host CPU capacity in vCPUs (testbed m hosts have 32 threads).
  double host_capacity = 32.0;
  /// Live : non-live mix (fraction of live queries).
  double live_fraction = 0.8;
};

class QueryStreamGenerator {
 public:
  /// `source_profile` / `target_profile` drive the two hosts' loads
  /// over simulated time.
  QueryStreamGenerator(dcsim::LoadProfile source_profile, dcsim::LoadProfile target_profile,
                       QueryStreamOptions options, std::uint64_t seed);

  /// Convenience: offset diurnal profiles (day-shifted between source
  /// and target, as in a geographically spread fleet).
  static QueryStreamGenerator diurnal(QueryStreamOptions options, std::uint64_t seed);

  /// The next query in the stream.
  core::MigrationScenario next();

  /// Generates `n` queries in one go.
  std::vector<core::MigrationScenario> generate(std::size_t n);

 private:
  core::MigrationScenario fresh_scenario();

  dcsim::LoadProfile source_profile_;
  dcsim::LoadProfile target_profile_;
  QueryStreamOptions options_;
  util::RngStream rng_;
  double clock_ = 0.0;
  std::vector<core::MigrationScenario> history_;
};

}  // namespace wavm3::serve
