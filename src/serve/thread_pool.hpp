// Fixed-size worker pool over a BoundedMpmcQueue. The pool is the
// execution engine of the prediction service but is deliberately
// generic: it runs move-only nullary jobs (std::function requires
// copyability, so a small type-erased wrapper is provided).
#pragma once

#include <cstddef>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "serve/mpmc_queue.hpp"

namespace wavm3::serve {

/// Move-only type-erased `void()` callable (what std::move_only_function
/// would be; GCC 12 ships it only in C++23 mode).
class UniqueFunction {
 public:
  UniqueFunction() = default;

  template <typename F>
  UniqueFunction(F&& f)  // NOLINT: implicit by design, mirrors std::function
      : impl_(std::make_unique<Model<std::decay_t<F>>>(std::forward<F>(f))) {}

  UniqueFunction(UniqueFunction&&) noexcept = default;
  UniqueFunction& operator=(UniqueFunction&&) noexcept = default;

  void operator()() { impl_->call(); }
  explicit operator bool() const { return impl_ != nullptr; }

 private:
  struct Concept {
    virtual ~Concept() = default;
    virtual void call() = 0;
  };
  template <typename F>
  struct Model final : Concept {
    explicit Model(F f) : fn(std::move(f)) {}
    void call() override { fn(); }
    F fn;
  };
  std::unique_ptr<Concept> impl_;
};

struct ThreadPoolConfig {
  int threads = 4;
  std::size_t queue_capacity = 1024;
};

/// How shutdown treats jobs still sitting in the queue.
enum class DrainMode {
  kDrain,    ///< workers finish everything already queued
  kDiscard,  ///< queued jobs are destroyed unrun (broken promises)
};

class ThreadPool {
 public:
  explicit ThreadPool(ThreadPoolConfig config = {});

  /// Joins the workers, draining the queue (as if shutdown(kDrain)).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Blocks while the queue is full (backpressure); false once shutdown
  /// has begun.
  bool submit(UniqueFunction job);

  /// Never blocks; false when the queue is full or shut down.
  bool try_submit(UniqueFunction job);

  /// Idempotent; joins all workers before returning.
  void shutdown(DrainMode mode = DrainMode::kDrain);

  int threads() const { return static_cast<int>(workers_.size()); }
  std::size_t queue_depth() const { return queue_.size(); }
  std::size_t queue_capacity() const { return queue_.capacity(); }

  /// True until shutdown begins (best-effort: may race a concurrent
  /// shutdown, in which case submit() is the authority).
  bool accepting() const { return !queue_.closed(); }

 private:
  void worker_loop();

  BoundedMpmcQueue<UniqueFunction> queue_;
  std::vector<std::thread> workers_;
  std::mutex shutdown_mutex_;
  bool shut_down_ = false;
};

}  // namespace wavm3::serve
