#include "serve/query_stream.hpp"

#include <algorithm>
#include <iterator>
#include <utility>

#include "util/error.hpp"
#include "util/units.hpp"

namespace wavm3::serve {

namespace {

/// Instance catalogue echoing Table IIb's VM sizes.
struct InstanceShape {
  double mem_gb;
  double vcpus;
};
constexpr InstanceShape kInstances[] = {
    {1.0, 1.0}, {2.0, 1.0}, {4.0, 2.0}, {4.0, 4.0}, {8.0, 4.0},
};

}  // namespace

QueryStreamGenerator::QueryStreamGenerator(dcsim::LoadProfile source_profile,
                                           dcsim::LoadProfile target_profile,
                                           QueryStreamOptions options, std::uint64_t seed)
    : source_profile_(std::move(source_profile)),
      target_profile_(std::move(target_profile)),
      options_(options),
      rng_(seed) {
  WAVM3_REQUIRE(options.repeat_fraction >= 0.0 && options.repeat_fraction <= 1.0,
                "repeat_fraction must be in [0, 1]");
  WAVM3_REQUIRE(options.host_capacity > 0.0, "host capacity must be positive");
}

QueryStreamGenerator QueryStreamGenerator::diurnal(QueryStreamOptions options,
                                                   std::uint64_t seed) {
  // Source hosts peak during the day, targets half a cycle later — the
  // regime where consolidation keeps finding migration candidates.
  return QueryStreamGenerator(dcsim::LoadProfile::diurnal(0.1, 0.8),
                              dcsim::LoadProfile::diurnal(0.1, 0.8, 86400.0, 43200.0),
                              options, seed);
}

core::MigrationScenario QueryStreamGenerator::fresh_scenario() {
  core::MigrationScenario sc;
  sc.type = rng_.chance(options_.live_fraction) ? migration::MigrationType::kLive
                                                : migration::MigrationType::kNonLive;
  const auto& shape = kInstances[static_cast<std::size_t>(
      rng_.uniform_int(0, std::size(kInstances) - 1))];
  sc.vm_mem_bytes = util::gib(shape.mem_gb);
  sc.vm_cpu_vcpus = shape.vcpus;

  // Dirtying: a MEMLOAD-style sweep, DR 5–95% of a working set that is
  // 10–50% of VM memory.
  const double mem_pages = sc.vm_mem_bytes / util::kPageSize;
  sc.vm_working_set_pages = mem_pages * rng_.uniform(0.1, 0.5);
  sc.vm_dirty_pages_per_s = sc.vm_working_set_pages * rng_.uniform(0.05, 0.95);

  // Host loads follow the profiles at the stream's simulated clock,
  // jittered per query (individual hosts scatter around the fleet mean).
  const double cap = options_.host_capacity;
  const double src_frac = source_profile_.fraction_at(clock_);
  const double dst_frac = target_profile_.fraction_at(clock_);
  sc.source_cpu_load = cap * std::clamp(src_frac + rng_.uniform(-0.1, 0.1), 0.0, 1.2);
  sc.target_cpu_load = cap * std::clamp(dst_frac + rng_.uniform(-0.1, 0.1), 0.0, 1.2);
  sc.source_cpu_capacity = cap;
  sc.target_cpu_capacity = cap;
  return sc;
}

core::MigrationScenario QueryStreamGenerator::next() {
  clock_ += options_.query_interval_s;
  if (!history_.empty() && rng_.chance(options_.repeat_fraction)) {
    return history_[static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(history_.size()) - 1))];
  }
  core::MigrationScenario sc = fresh_scenario();
  // Cap history so long streams repeat a bounded working set (what a
  // fleet between two consolidation rounds actually looks like) and the
  // generator's memory stays flat.
  if (history_.size() < 4096) {
    history_.push_back(sc);
  } else {
    history_[static_cast<std::size_t>(rng_.uniform_int(0, 4095))] = sc;
  }
  return sc;
}

std::vector<core::MigrationScenario> QueryStreamGenerator::generate(std::size_t n) {
  std::vector<core::MigrationScenario> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(next());
  return out;
}

}  // namespace wavm3::serve
