// RCU-style holder for the model behind the prediction service.
//
// Readers call snapshot() — a brief pointer copy under a light mutex —
// and then predict lock-free against an immutable Wavm3Model for as
// long as they like. Writers build a *new* model (from a coefficients
// CSV or in memory) and publish it atomically with swap(); in-flight
// predictions keep their old snapshot alive through shared ownership
// and are never blocked or torn. Every publish bumps a version counter
// that the service folds into its cache keys, so results computed
// against superseded coefficients can never be served after a reload.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "core/wavm3_model.hpp"

namespace wavm3::serve {

class CoefficientStore {
 public:
  /// Starts from a copy of `model` (version 1). The model must be
  /// fitted — an unfitted model cannot answer queries.
  explicit CoefficientStore(const core::Wavm3Model& model);
  explicit CoefficientStore(std::shared_ptr<const core::Wavm3Model> model);

  /// The current immutable model + its version. Cheap; safe from any
  /// thread; the returned model never changes under the caller.
  struct Snapshot {
    std::shared_ptr<const core::Wavm3Model> model;
    std::uint64_t version = 0;
  };
  Snapshot snapshot() const;

  /// Publishes `model` as the new current snapshot; never waits for
  /// readers. Returns the new version.
  std::uint64_t swap(std::shared_ptr<const core::Wavm3Model> model);

  /// Loads a coefficients CSV (core::load_coefficients_csv) and
  /// publishes it. Throws util::ContractError on malformed or
  /// unreadable input, leaving the current snapshot untouched.
  std::uint64_t reload_csv(const std::string& path);

  std::uint64_t version() const { return version_.load(std::memory_order_acquire); }

 private:
  mutable std::mutex mutex_;  ///< guards only the pointer copy, never predictions
  std::shared_ptr<const core::Wavm3Model> model_;
  std::atomic<std::uint64_t> version_{1};
};

}  // namespace wavm3::serve
