#include "serve/breaker.hpp"

#include <chrono>

#include "util/error.hpp"

namespace wavm3::serve {

namespace {
double steady_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

const char* to_string(CircuitBreaker::State s) {
  switch (s) {
    case CircuitBreaker::State::kClosed: return "closed";
    case CircuitBreaker::State::kOpen: return "open";
    case CircuitBreaker::State::kHalfOpen: return "half-open";
  }
  return "?";
}

CircuitBreaker::CircuitBreaker(CircuitBreakerConfig config, Clock clock)
    : config_(config), clock_(clock ? std::move(clock) : Clock(steady_seconds)) {
  WAVM3_REQUIRE(config_.failure_threshold >= 1, "failure threshold must be >= 1");
  WAVM3_REQUIRE(config_.open_duration_s > 0.0, "open duration must be positive");
  WAVM3_REQUIRE(config_.half_open_successes >= 1, "half-open successes must be >= 1");
}

bool CircuitBreaker::allow() {
  const std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now() - opened_at_ >= config_.open_duration_s) {
        state_ = State::kHalfOpen;
        half_open_successes_ = 0;
        probe_in_flight_ = true;
        return true;
      }
      ++rejections_;
      return false;
    case State::kHalfOpen:
      if (!probe_in_flight_) {
        probe_in_flight_ = true;
        return true;
      }
      ++rejections_;
      return false;
  }
  return true;
}

void CircuitBreaker::record_success() {
  const std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case State::kClosed:
      consecutive_failures_ = 0;
      break;
    case State::kHalfOpen:
      probe_in_flight_ = false;
      if (++half_open_successes_ >= config_.half_open_successes) {
        state_ = State::kClosed;
        consecutive_failures_ = 0;
      }
      break;
    case State::kOpen:
      // A straggler finishing after the breaker re-opened: ignore.
      break;
  }
}

void CircuitBreaker::record_failure() {
  const std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case State::kClosed:
      if (++consecutive_failures_ >= config_.failure_threshold) {
        state_ = State::kOpen;
        opened_at_ = now();
        ++open_transitions_;
      }
      break;
    case State::kHalfOpen:
      // The probe failed: straight back to open, cool-down restarts.
      probe_in_flight_ = false;
      state_ = State::kOpen;
      opened_at_ = now();
      ++open_transitions_;
      break;
    case State::kOpen:
      break;
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

std::uint64_t CircuitBreaker::open_transitions() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return open_transitions_;
}

std::uint64_t CircuitBreaker::rejections() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return rejections_;
}

}  // namespace wavm3::serve
