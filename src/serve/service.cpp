#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "serve/sim_backend.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace wavm3::serve {

PredictionService::PredictionService(const core::Wavm3Model& model, ServiceConfig config)
    : PredictionService(std::make_shared<const core::Wavm3Model>(model), config) {}

PredictionService::PredictionService(std::shared_ptr<const core::Wavm3Model> model,
                                     ServiceConfig config)
    : config_(config),
      store_(std::move(model)),
      metrics_(&obs_metrics_),
      breaker_(config.breaker),
      deadline_expired_(obs_metrics_.counter("serve_deadline_expired_total",
                                             "Requests that spent their deadline queued")),
      shed_(obs_metrics_.counter("serve_shed_total",
                                 "try_submit requests shed because the queue was full")),
      rejected_after_shutdown_(obs_metrics_.counter(
          "serve_rejected_after_shutdown_total", "Requests rejected after shutdown")),
      backend_failures_(obs_metrics_.counter("serve_backend_failures_total",
                                             "Individual sim-backend call failures")),
      backend_retries_(obs_metrics_.counter("serve_backend_retries_total",
                                            "Backend backoff retries taken")),
      degraded_(obs_metrics_.counter("serve_degraded_to_closed_form_total",
                                     "Simulated requests answered at closed-form fidelity")),
      g_cache_hits_(obs_metrics_.gauge("serve_cache_hits", "Result cache hits")),
      g_cache_misses_(obs_metrics_.gauge("serve_cache_misses", "Result cache misses")),
      g_cache_insertions_(
          obs_metrics_.gauge("serve_cache_insertions", "Result cache insertions")),
      g_cache_evictions_(
          obs_metrics_.gauge("serve_cache_evictions", "Result cache LRU evictions")),
      g_queue_depth_(obs_metrics_.gauge("serve_queue_depth", "Pending async requests")),
      g_threads_(obs_metrics_.gauge("serve_threads", "Worker pool size")),
      g_coeff_version_(
          obs_metrics_.gauge("serve_coefficient_version", "Live coefficient version")),
      g_breaker_open_transitions_(obs_metrics_.gauge("serve_breaker_open_transitions",
                                                     "Circuit breaker closed->open trips")),
      g_breaker_rejections_(obs_metrics_.gauge("serve_breaker_rejections",
                                               "Backend calls skipped while open")),
      g_breaker_state_(obs_metrics_.gauge("serve_breaker_state",
                                          "Breaker state (0 closed, 1 open, 2 half-open)")),
      h_batch_size_(obs_metrics_.histogram(
          "serve_batch_size", "Deduplicated scenarios per predict_batch worker task",
          {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0})),
      h_batch_item_latency_(obs_metrics_.exponential_histogram(
          "serve_batch_item_latency_ns",
          "Amortized per-item latency of batched evaluations", 1000.0, 1.046, 400)),
      feedback_accepted_(obs_metrics_.counter("serve_feedback_accepted_total",
                                              "Feedback samples handed to the sink")),
      feedback_dropped_(obs_metrics_.counter(
          "serve_feedback_dropped_total",
          "Feedback samples dropped (no sink, invalid, queue full, or shutdown)")),
      feedback_errors_(obs_metrics_.counter("serve_feedback_errors_total",
                                            "Feedback sink invocations that threw")),
      g_stream_sessions_(obs_metrics_.gauge("stream_sessions_active",
                                            "Open live-migration stream sessions")),
      stream_samples_(obs_metrics_.counter(
          "stream_samples_total", "Telemetry samples accepted by submit_sample")),
      h_stream_revision_delta_(obs_metrics_.exponential_histogram(
          "stream_revision_delta_watts",
          "Per-revision live-forecast change, as mean watts over the expected span",
          0.01, 1.6, 44)),
      stream_registry_(config.stream),
      pool_(ThreadPoolConfig{config.threads, config.queue_capacity}) {
  WAVM3_REQUIRE(config_.batch_max_size > 0, "batch_max_size must be positive");
  WAVM3_REQUIRE(config_.backend_max_retries >= 0, "retry budget must be non-negative");
  WAVM3_REQUIRE(config_.backend_backoff_initial_s >= 0.0 &&
                    config_.backend_backoff_multiplier >= 1.0,
                "backoff must not shrink");
  WAVM3_REQUIRE(config_.backend_backoff_max_s >= 0.0,
                "backoff cap must be non-negative");
  if (config_.cache_capacity > 0) {
    cache_ = std::make_unique<
        ShardedLruCache<ScenarioKey, core::MigrationForecast, ScenarioKeyHash>>(
        config_.cache_capacity, std::max<std::size_t>(1, config_.cache_shards));
  }
  ep_predict_ = metrics_.register_endpoint("predict");
  ep_submit_ = metrics_.register_endpoint("submit");
  ep_batch_ = metrics_.register_endpoint("predict_batch");
}

PredictionService::~PredictionService() { shutdown(DrainMode::kDrain); }

PredictionService::EvalResult PredictionService::degrade_or_throw(
    const core::Wavm3Model& model, const core::MigrationScenario& canonical,
    const char* why) {
  if (config_.degrade_to_closed_form) {
    degraded_.inc();
    WAVM3_OBS_INSTANT("serve", "degraded_to_closed_form");
    // Degraded answers are served but never cached: once the backend
    // recovers, the service should answer simulated again instead of
    // replaying closed-form leftovers until the cache turns over.
    return EvalResult{core::MigrationPlanner(model).forecast(canonical), false};
  }
  throw PredictError(PredictErrorCode::kBackendFailure, why);
}

double PredictionService::backoff_delay(int attempt) {
  double delay = config_.backend_backoff_initial_s *
                 std::pow(config_.backend_backoff_multiplier, attempt - 1);
  const double jitter = std::clamp(config_.backend_backoff_jitter, 0.0, 1.0);
  if (jitter > 0.0) {
    // Deterministic jitter: the k-th backoff ever taken gets the k-th
    // draw of the seeded stream — reproducible modulo thread
    // interleaving, and retry bursts still decorrelate.
    const std::uint64_t ticket = backoff_ticket_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t bits = util::splitmix64(config_.backend_backoff_seed ^ ticket);
    const double unit = static_cast<double>(bits >> 11) * 0x1.0p-53;  // [0, 1)
    delay *= 1.0 - jitter + 2.0 * jitter * unit;
  }
  // Cap after jitter so the bound is hard. The !(delay <= cap) form
  // also catches the inf that pow() overflows to at high attempt
  // counts — inf compares false against any finite cap.
  const double cap = config_.backend_backoff_max_s;
  if (cap > 0.0 && !(delay <= cap)) delay = cap;
  return delay;
}

PredictionService::EvalResult PredictionService::compute(
    const core::Wavm3Model& model, const core::MigrationScenario& canonical) {
  if (config_.fidelity != Fidelity::kSimulated) {
    return EvalResult{core::MigrationPlanner(model).forecast(canonical), true};
  }
  // The degradation ladder, rung by rung: (1) breaker open -> answer
  // closed-form immediately instead of queueing doomed engine runs;
  // (2) backend call, retried with exponential backoff + jitter;
  // (3) retries exhausted -> closed-form (or a typed failure when
  // degradation is disabled).
  if (!breaker_.allow()) return degrade_or_throw(model, canonical, "circuit breaker open");
  int attempt = 0;
  for (;;) {
    try {
      core::MigrationForecast fc = config_.simulated_backend
                                       ? config_.simulated_backend(model, canonical)
                                       : simulate_forecast(model, canonical);
      breaker_.record_success();
      return EvalResult{std::move(fc), true};
    } catch (...) {
      backend_failures_.inc();
      breaker_.record_failure();
      if (attempt >= config_.backend_max_retries) break;
      ++attempt;
      backend_retries_.inc();
      const double delay = backoff_delay(attempt);
      if (delay > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(delay));
      }
      if (!breaker_.allow()) break;  // tripped open mid-retry: stop hammering
    }
  }
  return degrade_or_throw(model, canonical, "simulated backend failed");
}

core::MigrationForecast PredictionService::evaluate(const core::MigrationScenario& sc) {
  WAVM3_OBS_SPAN(span, "serve", "evaluate");
  const core::MigrationScenario canonical = canonicalize(sc, config_.quantization_step);
  const CoefficientStore::Snapshot snap = store_.snapshot();
  const char* computed_source =
      config_.fidelity == Fidelity::kSimulated ? "backend" : "planner";
  if (cache_ != nullptr) {
    const ScenarioKey key(snap.version, canonical);
    if (std::optional<core::MigrationForecast> hit = cache_->get(key)) {
      span.note("source", "cache");
      return *hit;
    }
    EvalResult result = compute(*snap.model, canonical);
    span.note("source", result.cacheable ? computed_source : "fallback");
    if (result.cacheable) cache_->put(key, result.forecast);
    return result.forecast;
  }
  EvalResult result = compute(*snap.model, canonical);
  span.note("source", result.cacheable ? computed_source : "fallback");
  return result.forecast;
}

core::MigrationForecast PredictionService::predict(const core::MigrationScenario& sc) {
  // No span of its own: "evaluate" covers the whole call and carries
  // the source annotation, so a second span would only double the
  // hot-path tracing cost.
  const LatencyTimer timer(metrics_, ep_predict_);
  return evaluate(sc);
}

void PredictionService::run_job(const core::MigrationScenario& scenario, double deadline_s,
                                std::chrono::steady_clock::time_point enqueued,
                                std::uint64_t enqueued_ns,
                                std::promise<core::MigrationForecast>& promise) {
  const LatencyTimer timer(metrics_, ep_submit_);
  {
    obs::Tracer& tr = obs::tracer();
    if (tr.enabled()) {
      const std::uint64_t now = obs::now_ns();
      tr.emit_complete("serve", "queue_wait", enqueued_ns,
                       now > enqueued_ns ? now - enqueued_ns : 0);
    }
  }
  try {
    if (deadline_s > 0.0) {
      const double waited =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - enqueued)
              .count();
      if (waited > deadline_s) {
        // The request spent its whole budget queued; answering it now
        // would only delay live requests behind it.
        deadline_expired_.inc();
        WAVM3_OBS_INSTANT("serve", "deadline_expired");
        throw PredictError(
            PredictErrorCode::kDeadlineExceeded,
            util::format("queued %.1f ms past a %.1f ms deadline", waited * 1e3,
                         deadline_s * 1e3));
      }
    }
    promise.set_value(evaluate(scenario));
  } catch (...) {
    promise.set_exception(std::current_exception());
  }
}

std::future<core::MigrationForecast> PredictionService::submit(
    const core::MigrationScenario& sc) {
  return submit(sc, config_.default_deadline_s);
}

std::future<core::MigrationForecast> PredictionService::submit(
    const core::MigrationScenario& sc, double deadline_s) {
  // Fast path: a cache hit is answered on the caller's thread,
  // skipping the queue round trip entirely (hits also dodge
  // backpressure, which is the point — only real work queues). A
  // shut-down service must reject even hits, so the pool is consulted
  // first. Hits are deliberately not traced per-event: a hit is
  // sub-µs, so one instant would roughly double its cost; hits show
  // up in the cache gauges instead. The "submit" instant marks queue
  // entry.
  if (cache_ != nullptr && pool_.accepting()) {
    const core::MigrationScenario canonical = canonicalize(sc, config_.quantization_step);
    const CoefficientStore::Snapshot snap = store_.snapshot();
    if (std::optional<core::MigrationForecast> hit =
            cache_->peek(ScenarioKey(snap.version, canonical))) {
      const LatencyTimer timer(metrics_, ep_submit_);
      std::promise<core::MigrationForecast> ready;
      ready.set_value(*hit);
      return ready.get_future();
    }
  }
  WAVM3_OBS_INSTANT("serve", "submit");
  const std::chrono::steady_clock::time_point enqueued = std::chrono::steady_clock::now();
  const std::uint64_t enqueued_ns = obs::now_ns();
  std::promise<core::MigrationForecast> promise;
  std::future<core::MigrationForecast> future = promise.get_future();
  const bool queued = pool_.submit(
      [this, sc, deadline_s, enqueued, enqueued_ns, promise = std::move(promise)]() mutable {
        run_job(sc, deadline_s, enqueued, enqueued_ns, promise);
      });
  if (!queued) {
    // Pool already shut down: fail the request instead of hanging.
    rejected_after_shutdown_.inc();
    std::promise<core::MigrationForecast> failed;
    failed.set_exception(std::make_exception_ptr(PredictError(
        PredictErrorCode::kShutdown, "prediction service is shut down")));
    return failed.get_future();
  }
  return future;
}

std::optional<std::future<core::MigrationForecast>> PredictionService::try_submit(
    const core::MigrationScenario& sc) {
  if (cache_ != nullptr && pool_.accepting()) {
    const core::MigrationScenario canonical = canonicalize(sc, config_.quantization_step);
    const CoefficientStore::Snapshot snap = store_.snapshot();
    if (std::optional<core::MigrationForecast> hit =
            cache_->peek(ScenarioKey(snap.version, canonical))) {
      const LatencyTimer timer(metrics_, ep_submit_);
      std::promise<core::MigrationForecast> ready;
      ready.set_value(*hit);
      return ready.get_future();
    }
  }
  WAVM3_OBS_INSTANT("serve", "submit");
  const std::chrono::steady_clock::time_point enqueued = std::chrono::steady_clock::now();
  const std::uint64_t enqueued_ns = obs::now_ns();
  const double deadline_s = config_.default_deadline_s;
  std::promise<core::MigrationForecast> promise;
  std::future<core::MigrationForecast> future = promise.get_future();
  const bool queued = pool_.try_submit(
      [this, sc, deadline_s, enqueued, enqueued_ns, promise = std::move(promise)]() mutable {
        run_job(sc, deadline_s, enqueued, enqueued_ns, promise);
      });
  if (!queued) {
    if (pool_.accepting()) {
      shed_.inc();  // queue full: load shed
      WAVM3_OBS_INSTANT("serve", "shed");
    } else {
      rejected_after_shutdown_.inc();
    }
    return std::nullopt;
  }
  return future;
}

void PredictionService::run_batch_chunk(const CoefficientStore::Snapshot& snap,
                                        std::span<BatchWorkItem> chunk,
                                        std::chrono::steady_clock::time_point enqueued,
                                        double deadline_s) {
  WAVM3_OBS_SPAN(span, "serve", "batch_chunk");
  const std::uint64_t started_ns = obs::now_ns();
  h_batch_size_.observe(static_cast<double>(chunk.size()));
  for (BatchWorkItem& item : chunk) {
    try {
      if (deadline_s > 0.0) {
        const double waited =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - enqueued)
                .count();
        if (waited > deadline_s) {
          deadline_expired_.inc();
          WAVM3_OBS_INSTANT("serve", "deadline_expired");
          throw PredictError(
              PredictErrorCode::kDeadlineExceeded,
              util::format("batched %.1f ms past a %.1f ms deadline", waited * 1e3,
                           deadline_s * 1e3));
        }
      }
      EvalResult computed = compute(*snap.model, item.canonical);
      if (computed.cacheable && cache_ != nullptr) cache_->put(item.key, computed.forecast);
      item.result.forecast = std::move(computed.forecast);
    } catch (const PredictError& e) {
      item.result.error = e;
    } catch (const std::exception& e) {
      item.result.error = PredictError(PredictErrorCode::kBackendFailure, e.what());
    }
  }
  const std::uint64_t elapsed_ns = obs::now_ns() - started_ns;
  const double amortized = static_cast<double>(elapsed_ns) / static_cast<double>(chunk.size());
  for (std::size_t i = 0; i < chunk.size(); ++i) h_batch_item_latency_.observe(amortized);
}

PredictionService::BatchScratch& PredictionService::batch_scratch() {
  thread_local BatchScratch scratch;
  return scratch;
}

namespace {
/// Slot marker: answered inline from the cache, no work item.
constexpr std::size_t kCacheHit = static_cast<std::size_t>(-1);
}  // namespace

void PredictionService::predict_batch_results(
    std::span<const core::MigrationScenario> scenarios, std::span<BatchItem> results) {
  WAVM3_REQUIRE(results.size() == scenarios.size(),
                "predict_batch: results size mismatch");
  const LatencyTimer timer(metrics_, ep_batch_);
  if (scenarios.empty()) return;

  // One snapshot for the whole batch: every miss is computed — and
  // cached — under the same coefficient version, even if a reload
  // lands mid-batch.
  const CoefficientStore::Snapshot snap = store_.snapshot();

  // Per-thread grow-only workspace: clearing keeps the capacity, so a
  // steady-state batch reuses every buffer. The dedup table is open
  // addressing over a power-of-two slot vector (an unordered_map here
  // would allocate a node per insert, every call).
  BatchScratch& scratch = batch_scratch();
  scratch.work.clear();
  scratch.item_of.resize(scenarios.size());
  std::size_t table_size = scratch.dedup.size();
  if (table_size < 2 * scenarios.size()) {
    table_size = 16;
    while (table_size < 2 * scenarios.size()) table_size *= 2;
    scratch.dedup.resize(table_size);
  }
  std::fill(scratch.dedup.begin(), scratch.dedup.end(), 0);
  const std::size_t mask = table_size - 1;

  // Inline phase: canonicalize, deduplicate (a repeated scenario is
  // computed once and fanned out), and probe the cache.
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    core::MigrationScenario canonical =
        canonicalize(scenarios[i], config_.quantization_step);
    const ScenarioKey key(snap.version, canonical);
    std::size_t probe = ScenarioKeyHash{}(key) & mask;
    std::size_t found = kCacheHit;
    while (scratch.dedup[probe] != 0) {
      const std::size_t w = scratch.dedup[probe] - 1;
      if (scratch.work[w].key == key) {
        found = w;
        break;
      }
      probe = (probe + 1) & mask;
    }
    if (found != kCacheHit) {
      scratch.item_of[i] = found;
      continue;
    }
    if (cache_ != nullptr) {
      if (std::optional<core::MigrationForecast> hit = cache_->get(key)) {
        results[i] = BatchItem{};
        results[i].forecast = std::move(*hit);
        scratch.item_of[i] = kCacheHit;
        continue;
      }
    }
    scratch.item_of[i] = scratch.work.size();
    scratch.dedup[probe] = scratch.work.size() + 1;
    scratch.work.push_back(BatchWorkItem{std::move(canonical), key, BatchItem{}});
  }
  if (scratch.work.empty()) return;

  // Fan the misses out in chunks of batch_max_size, one worker task
  // per chunk; per-chunk promises both signal completion and publish
  // the workers' writes to this thread.
  const double deadline_s = config_.default_deadline_s;
  const std::chrono::steady_clock::time_point enqueued = std::chrono::steady_clock::now();
  scratch.completions.clear();
  for (std::size_t begin = 0; begin < scratch.work.size();
       begin += config_.batch_max_size) {
    const std::size_t count = std::min(config_.batch_max_size, scratch.work.size() - begin);
    const std::span<BatchWorkItem> chunk(scratch.work.data() + begin, count);
    std::promise<void> done;
    scratch.completions.push_back(done.get_future());
    const bool queued = pool_.submit(
        [this, &snap, chunk, enqueued, deadline_s, done = std::move(done)]() mutable {
          run_batch_chunk(snap, chunk, enqueued, deadline_s);
          done.set_value();
        });
    if (!queued) {
      scratch.completions.pop_back();
      for (BatchWorkItem& item : chunk) {
        rejected_after_shutdown_.inc();
        item.result.error =
            PredictError(PredictErrorCode::kShutdown, "prediction service is shut down");
      }
    }
  }
  for (std::future<void>& f : scratch.completions) f.get();
  scratch.completions.clear();

  // Fan each computed item out to every input slot that mapped to it.
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const std::size_t w = scratch.item_of[i];
    if (w != kCacheHit) results[i] = scratch.work[w].result;
  }
}

std::vector<PredictionService::BatchItem> PredictionService::predict_batch_results(
    const std::vector<core::MigrationScenario>& scenarios) {
  std::vector<BatchItem> results(scenarios.size());
  predict_batch_results(std::span<const core::MigrationScenario>(scenarios),
                        std::span<BatchItem>(results));
  return results;
}

std::vector<core::MigrationForecast> PredictionService::predict_batch(
    const std::vector<core::MigrationScenario>& scenarios) {
  std::vector<BatchItem> items = predict_batch_results(scenarios);
  std::vector<core::MigrationForecast> out;
  out.reserve(items.size());
  for (BatchItem& item : items) {
    if (item.error.has_value()) throw *item.error;
    out.push_back(std::move(*item.forecast));
  }
  return out;
}

std::uint64_t PredictionService::reload(const std::string& coeffs_csv_path) {
  return store_.reload_csv(coeffs_csv_path);
}

std::uint64_t PredictionService::swap_model(
    std::shared_ptr<const core::Wavm3Model> model) {
  return store_.swap(std::move(model));
}

void PredictionService::set_feedback_sink(FeedbackSink sink) {
  auto shared = std::make_shared<const FeedbackSink>(std::move(sink));
  std::lock_guard<std::mutex> lock(feedback_mutex_);
  feedback_sink_ = std::move(shared);
}

void PredictionService::clear_feedback_sink() {
  std::lock_guard<std::mutex> lock(feedback_mutex_);
  feedback_sink_.reset();
}

bool PredictionService::record_feedback(const core::MigrationScenario& scenario,
                                        const MigrationFeedback& feedback) {
  // Screen corrupt samples before they cost a queue slot: a telemetry
  // glitch must not be able to poison a recalibration window.
  const bool valid = std::isfinite(feedback.source_energy_j) &&
                     std::isfinite(feedback.target_energy_j) &&
                     std::isfinite(feedback.duration_s) && feedback.duration_s > 0.0;
  std::shared_ptr<const FeedbackSink> sink;
  {
    std::lock_guard<std::mutex> lock(feedback_mutex_);
    sink = feedback_sink_;
  }
  if (!valid || sink == nullptr || !*sink) {
    feedback_dropped_.inc();
    return false;
  }
  // The job owns its copy of the sink handle, so a concurrent
  // clear_feedback_sink() (or a racing replacement) never invalidates
  // a sample already in flight.
  const bool queued = pool_.try_submit([this, sink = std::move(sink), scenario, feedback] {
    WAVM3_OBS_SPAN(span, "serve", "feedback");
    try {
      (*sink)(scenario, feedback);
    } catch (...) {
      // A throwing sink is the consumer's bug, but an uncaught
      // exception here would terminate the worker thread — count it
      // and keep serving.
      feedback_errors_.inc();
    }
  });
  if (!queued) {
    feedback_dropped_.inc();
    return false;
  }
  feedback_accepted_.inc();
  return true;
}

void PredictionService::open_stream(std::uint64_t session,
                                    const core::MigrationScenario& scenario, int plan_vm) {
  // One snapshot prices the whole open: the baseline forecast and both
  // roles' representative features come from the same coefficients.
  const CoefficientStore::Snapshot snap = store_.snapshot();
  const core::MigrationForecast fc = core::MigrationPlanner(*snap.model).forecast(scenario);
  stream::SessionOptions options;
  options.type = scenario.type;
  options.scenario = scenario;
  options.plan_vm = plan_vm;
  options.source_prior =
      stream::PhasePrior::from_scenario(scenario, fc, models::HostRole::kSource);
  options.target_prior =
      stream::PhasePrior::from_scenario(scenario, fc, models::HostRole::kTarget);
  options.baseline_total_j = fc.total_energy();
  options.expected_total_s = fc.times.total_duration();
  stream_registry_.open(session, std::move(options));
  g_stream_sessions_.set(static_cast<double>(stream_registry_.active()));
}

void PredictionService::open_stream(std::uint64_t session, migration::MigrationType type,
                                    const migration::PhaseTimestamps& expected_times) {
  stream::SessionOptions options;
  options.type = type;
  options.source_prior = stream::PhasePrior::from_times(expected_times);
  options.target_prior = options.source_prior;
  options.expected_total_s = expected_times.total_duration();
  stream_registry_.open(session, std::move(options));
  g_stream_sessions_.set(static_cast<double>(stream_registry_.active()));
}

void PredictionService::submit_sample(std::uint64_t session, models::HostRole role,
                                      const models::MigrationSample& sample) {
  stream_registry_.submit(session, role, sample);
  stream_samples_.inc();
}

stream::LiveForecast PredictionService::predict_live(std::uint64_t session) {
  const CoefficientStore::Snapshot snap = store_.snapshot();
  stream::LiveForecast fc = stream_registry_.predict(session, *snap.model);
  h_stream_revision_delta_.observe(fc.delta_watts);
  return fc;
}

std::future<stream::LiveForecast> PredictionService::submit_predict_live(
    std::uint64_t session) {
  // Promise shared with the job: unlike submit(), there is no cache
  // fast path — every live revision reprices against fresh state.
  auto promise = std::make_shared<std::promise<stream::LiveForecast>>();
  std::future<stream::LiveForecast> future = promise->get_future();
  const bool queued = pool_.submit([this, session, promise] {
    try {
      promise->set_value(predict_live(session));
    } catch (...) {
      promise->set_exception(std::current_exception());
    }
  });
  if (!queued) {
    rejected_after_shutdown_.inc();
    promise->set_exception(std::make_exception_ptr(
        PredictError(PredictErrorCode::kShutdown, "prediction service is shut down")));
  }
  return future;
}

PredictionService::StreamCloseReport PredictionService::close_stream(
    std::uint64_t session) {
  StreamCloseReport report;
  const std::shared_ptr<stream::StreamSession> closed = stream_registry_.close(session);
  g_stream_sessions_.set(static_cast<double>(stream_registry_.active()));
  report.summary = closed->summary();
  // A session opened with a scenario and long enough to measure
  // becomes ground truth: the meters' energy integrals feed the same
  // record_feedback() path external reports use, so the calib sink
  // (when installed) ingests streamed migrations automatically.
  if (closed->options().scenario.has_value() && report.summary.duration_s > 0.0) {
    MigrationFeedback feedback;
    feedback.source_energy_j = report.summary.observed_source_j;
    feedback.target_energy_j = report.summary.observed_target_j;
    feedback.duration_s = report.summary.duration_s;
    report.feedback_recorded = record_feedback(*closed->options().scenario, feedback);
  }
  return report;
}

void PredictionService::set_degeneration_callback(stream::DegenerationCallback callback) {
  stream_registry_.set_degeneration_callback(std::move(callback));
}

ServiceStats PredictionService::stats() const {
  ServiceStats s;
  if (cache_ != nullptr) s.cache = cache_->stats();
  s.queue_depth = pool_.queue_depth();
  s.threads = pool_.threads();
  s.model_version = store_.version();
  s.resilience.deadline_expired = deadline_expired_.value();
  s.resilience.shed = shed_.value();
  s.resilience.rejected_after_shutdown = rejected_after_shutdown_.value();
  s.resilience.backend_failures = backend_failures_.value();
  s.resilience.backend_retries = backend_retries_.value();
  s.resilience.degraded_to_closed_form = degraded_.value();
  s.resilience.breaker_open_transitions = breaker_.open_transitions();
  s.resilience.breaker_rejections = breaker_.rejections();
  s.resilience.breaker_state = to_string(breaker_.state());
  s.endpoints = metrics_.reports();
  return s;
}

std::string PredictionService::metrics_table() const {
  const ServiceStats s = stats();
  std::string out = metrics_.render_table();
  out += util::format(
      "\ncache    : %llu hits, %llu misses (%.1f%% hit rate), %llu insertions, "
      "%llu evictions\n",
      static_cast<unsigned long long>(s.cache.hits),
      static_cast<unsigned long long>(s.cache.misses), s.cache.hit_rate() * 100.0,
      static_cast<unsigned long long>(s.cache.insertions),
      static_cast<unsigned long long>(s.cache.evictions));
  out += util::format("workers  : %d threads, queue depth %zu\n", s.threads, s.queue_depth);
  out += util::format("coeffs   : version %llu\n",
                      static_cast<unsigned long long>(s.model_version));
  const ResilienceStats& r = s.resilience;
  out += util::format(
      "breaker  : %s, %llu open transitions, %llu rejections\n",
      r.breaker_state.c_str(), static_cast<unsigned long long>(r.breaker_open_transitions),
      static_cast<unsigned long long>(r.breaker_rejections));
  out += util::format(
      "resilience: %llu backend failures (%llu retries), %llu degraded to closed-form, "
      "%llu deadline-expired, %llu shed, %llu rejected-after-shutdown\n",
      static_cast<unsigned long long>(r.backend_failures),
      static_cast<unsigned long long>(r.backend_retries),
      static_cast<unsigned long long>(r.degraded_to_closed_form),
      static_cast<unsigned long long>(r.deadline_expired),
      static_cast<unsigned long long>(r.shed),
      static_cast<unsigned long long>(r.rejected_after_shutdown));
  return out;
}

std::string PredictionService::metrics_csv() const {
  const ServiceStats s = stats();
  std::string out = metrics_.render_csv();
  out += "gauge,value\n";
  out += util::format("cache_hits,%llu\n", static_cast<unsigned long long>(s.cache.hits));
  out += util::format("cache_misses,%llu\n",
                      static_cast<unsigned long long>(s.cache.misses));
  out += util::format("cache_hit_rate,%.6f\n", s.cache.hit_rate());
  out += util::format("cache_evictions,%llu\n",
                      static_cast<unsigned long long>(s.cache.evictions));
  out += util::format("queue_depth,%zu\n", s.queue_depth);
  out += util::format("threads,%d\n", s.threads);
  out += util::format("coefficient_version,%llu\n",
                      static_cast<unsigned long long>(s.model_version));
  const ResilienceStats& r = s.resilience;
  out += util::format("backend_failures,%llu\n",
                      static_cast<unsigned long long>(r.backend_failures));
  out += util::format("backend_retries,%llu\n",
                      static_cast<unsigned long long>(r.backend_retries));
  out += util::format("degraded_to_closed_form,%llu\n",
                      static_cast<unsigned long long>(r.degraded_to_closed_form));
  out += util::format("deadline_expired,%llu\n",
                      static_cast<unsigned long long>(r.deadline_expired));
  out += util::format("shed,%llu\n", static_cast<unsigned long long>(r.shed));
  out += util::format("rejected_after_shutdown,%llu\n",
                      static_cast<unsigned long long>(r.rejected_after_shutdown));
  out += util::format("breaker_open_transitions,%llu\n",
                      static_cast<unsigned long long>(r.breaker_open_transitions));
  out += util::format("breaker_rejections,%llu\n",
                      static_cast<unsigned long long>(r.breaker_rejections));
  out += std::string("breaker_state,") + r.breaker_state + "\n";
  return out;
}

void PredictionService::refresh_gauges() const {
  CacheStats cs;
  if (cache_ != nullptr) cs = cache_->stats();
  g_cache_hits_.set(static_cast<double>(cs.hits));
  g_cache_misses_.set(static_cast<double>(cs.misses));
  g_cache_insertions_.set(static_cast<double>(cs.insertions));
  g_cache_evictions_.set(static_cast<double>(cs.evictions));
  g_queue_depth_.set(static_cast<double>(pool_.queue_depth()));
  g_threads_.set(static_cast<double>(pool_.threads()));
  g_coeff_version_.set(static_cast<double>(store_.version()));
  g_breaker_open_transitions_.set(static_cast<double>(breaker_.open_transitions()));
  g_breaker_rejections_.set(static_cast<double>(breaker_.rejections()));
  g_breaker_state_.set(static_cast<double>(static_cast<int>(breaker_.state())));
  g_stream_sessions_.set(static_cast<double>(stream_registry_.active()));
}

std::string PredictionService::metrics_prometheus() const {
  refresh_gauges();
  return obs::prometheus_text(obs_metrics_);
}

std::string PredictionService::metrics_json() const {
  refresh_gauges();
  return obs::json_snapshot(obs_metrics_);
}

void PredictionService::shutdown(DrainMode mode) { pool_.shutdown(mode); }

}  // namespace wavm3::serve
