#include "serve/service.hpp"

#include <stdexcept>
#include <utility>

#include "serve/sim_backend.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace wavm3::serve {

PredictionService::PredictionService(const core::Wavm3Model& model, ServiceConfig config)
    : PredictionService(std::make_shared<const core::Wavm3Model>(model), config) {}

PredictionService::PredictionService(std::shared_ptr<const core::Wavm3Model> model,
                                     ServiceConfig config)
    : config_(config),
      store_(std::move(model)),
      pool_(ThreadPoolConfig{config.threads, config.queue_capacity}) {
  if (config_.cache_capacity > 0) {
    cache_ = std::make_unique<
        ShardedLruCache<ScenarioKey, core::MigrationForecast, ScenarioKeyHash>>(
        config_.cache_capacity, std::max<std::size_t>(1, config_.cache_shards));
  }
  ep_predict_ = metrics_.register_endpoint("predict");
  ep_submit_ = metrics_.register_endpoint("submit");
  ep_batch_ = metrics_.register_endpoint("predict_batch");
}

PredictionService::~PredictionService() { shutdown(DrainMode::kDrain); }

core::MigrationForecast PredictionService::compute(
    const core::Wavm3Model& model, const core::MigrationScenario& canonical) const {
  if (config_.fidelity == Fidelity::kSimulated) return simulate_forecast(model, canonical);
  return core::MigrationPlanner(model).forecast(canonical);
}

core::MigrationForecast PredictionService::evaluate(const core::MigrationScenario& sc) {
  const core::MigrationScenario canonical = canonicalize(sc, config_.quantization_step);
  const CoefficientStore::Snapshot snap = store_.snapshot();
  if (cache_ != nullptr) {
    const ScenarioKey key(snap.version, canonical);
    if (std::optional<core::MigrationForecast> hit = cache_->get(key)) return *hit;
    const core::MigrationForecast fc = compute(*snap.model, canonical);
    cache_->put(key, fc);
    return fc;
  }
  return compute(*snap.model, canonical);
}

core::MigrationForecast PredictionService::predict(const core::MigrationScenario& sc) {
  const LatencyTimer timer(metrics_, ep_predict_);
  return evaluate(sc);
}

std::future<core::MigrationForecast> PredictionService::submit(
    const core::MigrationScenario& sc) {
  // Fast path: a cache hit is answered on the caller's thread,
  // skipping the queue round trip entirely (hits also dodge
  // backpressure, which is the point — only real work queues). A
  // shut-down service must reject even hits, so the pool is consulted
  // first.
  if (cache_ != nullptr && pool_.accepting()) {
    const core::MigrationScenario canonical = canonicalize(sc, config_.quantization_step);
    const CoefficientStore::Snapshot snap = store_.snapshot();
    if (std::optional<core::MigrationForecast> hit =
            cache_->peek(ScenarioKey(snap.version, canonical))) {
      const LatencyTimer timer(metrics_, ep_submit_);
      std::promise<core::MigrationForecast> ready;
      ready.set_value(*hit);
      return ready.get_future();
    }
  }
  std::promise<core::MigrationForecast> promise;
  std::future<core::MigrationForecast> future = promise.get_future();
  const bool queued = pool_.submit(
      [this, sc, promise = std::move(promise)]() mutable {
        const LatencyTimer timer(metrics_, ep_submit_);
        try {
          promise.set_value(evaluate(sc));
        } catch (...) {
          promise.set_exception(std::current_exception());
        }
      });
  if (!queued) {
    // Pool already shut down: fail the request instead of hanging.
    std::promise<core::MigrationForecast> failed;
    failed.set_exception(std::make_exception_ptr(
        std::runtime_error("prediction service is shut down")));
    return failed.get_future();
  }
  return future;
}

std::vector<core::MigrationForecast> PredictionService::predict_batch(
    const std::vector<core::MigrationScenario>& scenarios) {
  const LatencyTimer timer(metrics_, ep_batch_);
  std::vector<std::future<core::MigrationForecast>> futures;
  futures.reserve(scenarios.size());
  for (const core::MigrationScenario& sc : scenarios) futures.push_back(submit(sc));
  std::vector<core::MigrationForecast> out;
  out.reserve(scenarios.size());
  for (std::future<core::MigrationForecast>& f : futures) out.push_back(f.get());
  return out;
}

std::uint64_t PredictionService::reload(const std::string& coeffs_csv_path) {
  return store_.reload_csv(coeffs_csv_path);
}

std::uint64_t PredictionService::swap_model(
    std::shared_ptr<const core::Wavm3Model> model) {
  return store_.swap(std::move(model));
}

ServiceStats PredictionService::stats() const {
  ServiceStats s;
  if (cache_ != nullptr) s.cache = cache_->stats();
  s.queue_depth = pool_.queue_depth();
  s.threads = pool_.threads();
  s.model_version = store_.version();
  s.endpoints = metrics_.reports();
  return s;
}

std::string PredictionService::metrics_table() const {
  const ServiceStats s = stats();
  std::string out = metrics_.render_table();
  out += util::format(
      "\ncache    : %llu hits, %llu misses (%.1f%% hit rate), %llu insertions, "
      "%llu evictions\n",
      static_cast<unsigned long long>(s.cache.hits),
      static_cast<unsigned long long>(s.cache.misses), s.cache.hit_rate() * 100.0,
      static_cast<unsigned long long>(s.cache.insertions),
      static_cast<unsigned long long>(s.cache.evictions));
  out += util::format("workers  : %d threads, queue depth %zu\n", s.threads, s.queue_depth);
  out += util::format("coeffs   : version %llu\n",
                      static_cast<unsigned long long>(s.model_version));
  return out;
}

std::string PredictionService::metrics_csv() const {
  const ServiceStats s = stats();
  std::string out = metrics_.render_csv();
  out += "gauge,value\n";
  out += util::format("cache_hits,%llu\n", static_cast<unsigned long long>(s.cache.hits));
  out += util::format("cache_misses,%llu\n",
                      static_cast<unsigned long long>(s.cache.misses));
  out += util::format("cache_hit_rate,%.6f\n", s.cache.hit_rate());
  out += util::format("cache_evictions,%llu\n",
                      static_cast<unsigned long long>(s.cache.evictions));
  out += util::format("queue_depth,%zu\n", s.queue_depth);
  out += util::format("threads,%d\n", s.threads);
  out += util::format("coefficient_version,%llu\n",
                      static_cast<unsigned long long>(s.model_version));
  return out;
}

void PredictionService::shutdown(DrainMode mode) { pool_.shutdown(mode); }

}  // namespace wavm3::serve
