#include "serve/coeff_store.hpp"

#include <utility>

#include "core/coeff_io.hpp"
#include "util/error.hpp"

namespace wavm3::serve {

CoefficientStore::CoefficientStore(const core::Wavm3Model& model)
    : CoefficientStore(std::make_shared<const core::Wavm3Model>(model)) {}

CoefficientStore::CoefficientStore(std::shared_ptr<const core::Wavm3Model> model) {
  WAVM3_REQUIRE(model != nullptr, "coefficient store needs a model");
  WAVM3_REQUIRE(model->is_fitted(), "coefficient store needs a fitted model");
  model_ = std::move(model);
}

CoefficientStore::Snapshot CoefficientStore::snapshot() const {
  Snapshot snap;
  {
    // Version is read under the same lock that guards the pointer so a
    // concurrent swap can never pair an old model with a new version
    // (which would let a stale result be cached under the new key).
    std::lock_guard<std::mutex> lock(mutex_);
    snap.model = model_;
    snap.version = version_.load(std::memory_order_acquire);
  }
  return snap;
}

std::uint64_t CoefficientStore::swap(std::shared_ptr<const core::Wavm3Model> model) {
  WAVM3_REQUIRE(model != nullptr && model->is_fitted(),
                "cannot publish an empty or unfitted model");
  std::shared_ptr<const core::Wavm3Model> retired;
  std::uint64_t v = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    retired = std::move(model_);
    model_ = std::move(model);
    v = version_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }
  // `retired` releases outside the lock; in-flight readers holding it
  // keep the old coefficients alive until they finish.
  return v;
}

std::uint64_t CoefficientStore::reload_csv(const std::string& path) {
  core::Wavm3Model loaded = core::load_coefficients_csv(path);
  WAVM3_REQUIRE(loaded.is_fitted(), "no coefficient tables loaded from " + path);
  return swap(std::make_shared<const core::Wavm3Model>(std::move(loaded)));
}

}  // namespace wavm3::serve
