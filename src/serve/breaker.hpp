// Circuit breaker guarding the expensive simulated backend.
//
// Classic three-state breaker (closed -> open -> half-open -> closed):
// consecutive backend failures trip it open; while open, callers skip
// the backend entirely (the service degrades kSimulated answers to the
// closed-form planner instead of queueing doomed engine runs); after a
// cool-down, a limited number of half-open probes test the backend and
// either close the breaker again or re-open it on the first failure.
//
// The clock is injectable so transition tests are deterministic; the
// service wires in a steady_clock by default. All methods are
// thread-safe (one small mutex — the breaker is consulted only on the
// simulated path, which is orders of magnitude more expensive than the
// lock).
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>

namespace wavm3::serve {

struct CircuitBreakerConfig {
  /// Consecutive failures that trip the breaker open.
  int failure_threshold = 5;
  /// Seconds the breaker stays open before probing (half-open).
  double open_duration_s = 5.0;
  /// Consecutive half-open successes required to close again.
  int half_open_successes = 2;
};

class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  /// Monotonic seconds; injectable for deterministic tests.
  using Clock = std::function<double()>;

  explicit CircuitBreaker(CircuitBreakerConfig config = {}, Clock clock = nullptr);

  /// True when the caller may hit the backend now. An open breaker
  /// transitions to half-open (and allows one probe) once the
  /// cool-down has elapsed; while half-open only one probe may be in
  /// flight at a time.
  bool allow();

  /// Reports the result of an allowed backend call.
  void record_success();
  void record_failure();

  State state() const;

  /// Times the breaker tripped open (closed/half-open -> open).
  std::uint64_t open_transitions() const;

  /// allow() calls rejected because the breaker was open.
  std::uint64_t rejections() const;

  const CircuitBreakerConfig& config() const { return config_; }

 private:
  double now() const { return clock_(); }

  CircuitBreakerConfig config_;
  Clock clock_;

  mutable std::mutex mutex_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int half_open_successes_ = 0;
  bool probe_in_flight_ = false;
  double opened_at_ = 0.0;
  std::uint64_t open_transitions_ = 0;
  std::uint64_t rejections_ = 0;
};

const char* to_string(CircuitBreaker::State s);

}  // namespace wavm3::serve
