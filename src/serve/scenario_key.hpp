// Cache keys for migration scenarios.
//
// A key is (model version, every field of the scenario) — the version
// makes hot-swapped coefficients self-invalidating: results computed
// against retired coefficients live under a version no query will ask
// for again, and the LRU ages them out.
//
// Quantization: with step q > 0 the *workload feature* fields (VM size,
// CPU, dirtying, host loads, link rate) are snapped to a geometric grid
// of relative pitch q before keying AND before evaluation, so queries
// within ~q/2 relative distance share one cache entry and one answer.
// Coarser q buys a higher hit rate at the price of answering for the
// grid point rather than the exact query (a bounded relative
// perturbation of the inputs, not of the outputs). q = 0 keys on exact
// bit patterns, making cached results bit-identical to direct planner
// calls. Machinery parameters (MigrationConfig, bandwidth params) are
// never quantized — they are compared exactly.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "core/planner.hpp"

namespace wavm3::serve {

/// Number of scalar fields a MigrationScenario flattens to (type + 9
/// workload features + 21 MigrationConfig + 2 bandwidth parameters).
inline constexpr std::size_t kScenarioFieldCount = 33;

/// Flattens every semantically relevant field, in a fixed order.
std::array<double, kScenarioFieldCount> scenario_fields(const core::MigrationScenario& sc);

/// Inverse of scenario_fields(): rebuilds the scenario from the flat
/// array. Round-trips bit-exactly — the pair doubles as the wire
/// serialization for src/rpc/. The type field must encode a valid
/// MigrationType (ContractError otherwise); fields scenario_fields()
/// does not carry (postcopy_restart_duration) keep their defaults.
core::MigrationScenario scenario_from_fields(
    const std::array<double, kScenarioFieldCount>& fields);

/// Returns `sc` with its workload features snapped to the geometric
/// grid of relative pitch `quantization_step` (0 = identity).
core::MigrationScenario canonicalize(const core::MigrationScenario& sc,
                                     double quantization_step);

struct ScenarioKey {
  std::uint64_t model_version = 0;
  std::array<double, kScenarioFieldCount> fields{};

  ScenarioKey() = default;
  ScenarioKey(std::uint64_t version, const core::MigrationScenario& canonical)
      : model_version(version), fields(scenario_fields(canonical)) {}

  bool operator==(const ScenarioKey& other) const;
};

struct ScenarioKeyHash {
  std::size_t operator()(const ScenarioKey& key) const;
};

}  // namespace wavm3::serve
