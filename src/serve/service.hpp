// The prediction service: a thread-safe, in-process server answering
// "what would this migration cost?" queries against core::Wavm3Model +
// core::MigrationPlanner at high throughput.
//
//   - predict()        synchronous, runs on the caller's thread
//   - submit()         asynchronous, executed by the worker pool,
//                      backpressured by the bounded queue
//   - predict_batch()  answers cache hits inline, dedups repeated
//                      scenarios, and groups the remaining misses into
//                      real batches (<= batch_max_size) — one worker
//                      task per batch, all coalesced under a single
//                      coefficient snapshot, with per-slot results
//
// All entry points share one sharded LRU result cache (keyed on the
// quantized scenario + coefficient version, see scenario_key.hpp) and
// one RCU-style coefficient store: reload()/swap_model() publish new
// coefficients without blocking in-flight predictions, and the version
// baked into every cache key retires stale results automatically.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/planner.hpp"
#include "core/wavm3_model.hpp"
#include "obs/metrics.hpp"
#include "serve/breaker.hpp"
#include "serve/coeff_store.hpp"
#include "serve/errors.hpp"
#include "serve/lru_cache.hpp"
#include "serve/metrics.hpp"
#include "serve/scenario_key.hpp"
#include "serve/thread_pool.hpp"
#include "stream/session.hpp"

namespace wavm3::serve {

/// How a query is answered.
enum class Fidelity {
  kClosedForm,  ///< core::MigrationPlanner (sub-microsecond, approximate)
  kSimulated,   ///< full engine run per miss (see sim_backend.hpp; exact,
                ///< orders of magnitude slower — caching is essential)
};

/// Replacement backend for Fidelity::kSimulated — the test/bench hook
/// used to inject failing or slow backends. Exceptions thrown here
/// drive the retry / breaker / degradation ladder.
using SimulatedBackend = std::function<core::MigrationForecast(
    const core::Wavm3Model&, const core::MigrationScenario&)>;

struct ServiceConfig {
  int threads = 4;                   ///< worker pool size
  std::size_t queue_capacity = 1024; ///< pending async requests before backpressure
  std::size_t cache_capacity = 4096; ///< total cached forecasts; 0 disables caching
  std::size_t cache_shards = 8;
  /// Relative pitch of the cache-key feature grid (see
  /// scenario_key.hpp). 0 = exact keys, results bit-identical to
  /// direct planner calls.
  double quantization_step = 0.0;
  Fidelity fidelity = Fidelity::kClosedForm;
  /// Largest number of deduplicated cache-missed scenarios one worker
  /// task evaluates in predict_batch(). Bigger batches amortize the
  /// per-task overhead; smaller ones spread a batch across more
  /// workers.
  std::size_t batch_max_size = 32;

  // --- graceful degradation ladder ---
  /// Per-request deadline in seconds, measured from submission. A
  /// request that is still queued past its deadline fails with
  /// kDeadlineExceeded instead of occupying a worker (expired work is
  /// worthless — answering it late just delays live requests).
  /// 0 disables deadlines. submit() has a per-request override.
  double default_deadline_s = 0.0;
  /// Sim-backend retry budget per request; retries back off
  /// exponentially with deterministic jitter.
  int backend_max_retries = 2;
  double backend_backoff_initial_s = 0.002;
  double backend_backoff_multiplier = 2.0;
  /// Hard ceiling on any single backoff sleep, applied after jitter.
  /// pow(multiplier, attempt-1) overflows toward inf within a few
  /// dozen attempts of a 2x multiplier; without the cap a large retry
  /// budget turns into an unbounded sleep. 0 disables the cap.
  double backend_backoff_max_s = 30.0;
  /// +/- fraction of each backoff delay (0 = none, 1 = full). Jitter
  /// is drawn from a seeded stream, so runs are reproducible.
  double backend_backoff_jitter = 0.5;
  std::uint64_t backend_backoff_seed = 2015;
  /// When the sim backend fails past its retries — or the breaker is
  /// open — answer at closed-form fidelity instead of failing the
  /// request (the bottom rung of the ladder: an approximate answer
  /// now beats no answer). Degraded answers are never cached.
  bool degrade_to_closed_form = true;
  CircuitBreakerConfig breaker = {};
  /// Null = the real serve::simulate_forecast engine backend.
  SimulatedBackend simulated_backend = {};

  // --- live streaming (src/stream/) ---
  /// Session registry behind open_stream()/submit_sample()/
  /// predict_live(): extractor timestamp semantics, session bound and
  /// eviction policy, ring capacity, degeneration thresholds.
  stream::RegistryConfig stream = {};
};

/// One observed migration outcome reported back to the service:
/// ground-truth energy/duration for a scenario the model predicted.
/// Consumed by the recalibration subsystem (src/calib/) through the
/// feedback sink — the service itself only routes it.
struct MigrationFeedback {
  double source_energy_j = 0.0;  ///< measured source-host energy
  double target_energy_j = 0.0;  ///< measured target-host energy
  double duration_s = 0.0;       ///< measured total migration time
};

/// Consumer of feedback samples. Runs on a worker-pool thread;
/// implementations must be thread-safe and should return quickly
/// (buffer the sample, do heavy refits elsewhere). Exceptions are
/// caught and counted, never propagated to the pool.
using FeedbackSink =
    std::function<void(const core::MigrationScenario&, const MigrationFeedback&)>;

/// Counters of the degradation ladder (all monotonic).
struct ResilienceStats {
  std::uint64_t deadline_expired = 0;   ///< failed with kDeadlineExceeded
  std::uint64_t shed = 0;               ///< try_submit: queue full
  std::uint64_t rejected_after_shutdown = 0;
  std::uint64_t backend_failures = 0;   ///< individual sim-backend call failures
  std::uint64_t backend_retries = 0;    ///< backoff retries taken
  std::uint64_t degraded_to_closed_form = 0;  ///< kSimulated answered closed-form
  std::uint64_t breaker_open_transitions = 0;
  std::uint64_t breaker_rejections = 0;  ///< backend calls skipped while open
  std::string breaker_state = "closed";
};

/// Point-in-time operational snapshot.
struct ServiceStats {
  CacheStats cache;
  std::size_t queue_depth = 0;
  int threads = 0;
  std::uint64_t model_version = 0;
  ResilienceStats resilience;
  std::vector<EndpointReport> endpoints;
};

class PredictionService {
 public:
  /// Serves from a copy of `model` (must be fitted).
  explicit PredictionService(const core::Wavm3Model& model, ServiceConfig config = {});
  PredictionService(std::shared_ptr<const core::Wavm3Model> model, ServiceConfig config);

  /// Drains outstanding requests, then joins the workers.
  ~PredictionService();

  PredictionService(const PredictionService&) = delete;
  PredictionService& operator=(const PredictionService&) = delete;

  /// Synchronous forecast on the caller's thread (still cached).
  core::MigrationForecast predict(const core::MigrationScenario& scenario);

  /// Asynchronous forecast on the worker pool. Blocks only when the
  /// queue is full (backpressure). After shutdown the returned future
  /// carries PredictError(kShutdown) (a std::runtime_error, as
  /// before). Uses config().default_deadline_s.
  std::future<core::MigrationForecast> submit(const core::MigrationScenario& scenario);

  /// Same, with an explicit deadline (seconds from now; <= 0 = none).
  /// A request still queued past its deadline fails with
  /// PredictError(kDeadlineExceeded).
  std::future<core::MigrationForecast> submit(const core::MigrationScenario& scenario,
                                              double deadline_s);

  /// Non-blocking submit: never applies backpressure. Returns nullopt
  /// when the queue is full (the request is shed and counted in
  /// ResilienceStats::shed) or the service is shut down. Cache hits
  /// are still answered inline on the caller's thread.
  std::optional<std::future<core::MigrationForecast>> try_submit(
      const core::MigrationScenario& scenario);

  /// One slot of a predict_batch_results() answer: exactly one of
  /// `forecast` or `error` is set. Slot i always corresponds to
  /// scenarios[i], so one failing scenario does not invalidate the
  /// rest of the batch.
  struct BatchItem {
    std::optional<core::MigrationForecast> forecast;
    std::optional<PredictError> error;
    bool ok() const { return forecast.has_value(); }
  };

  /// Batched prediction with per-slot semantics: answers cache hits on
  /// the caller's thread, dedups identical (quantized) scenarios, and
  /// evaluates the remaining misses in worker tasks of up to
  /// config().batch_max_size scenarios each, all under one coefficient
  /// snapshot. Per-item failures (deadline, backend, shutdown) land as
  /// typed PredictError values in their slots; the rest of the batch
  /// still completes. `results` must have scenarios.size() slots and is
  /// index-aligned with `scenarios`.
  ///
  /// This span core is the zero-allocation steady-state entry point
  /// (pinned by tests/serve_alloc_test.cpp): the work list, dedup
  /// table, and slot mapping live in a grow-only per-thread workspace,
  /// so once the workspace has grown to the batch shape and every
  /// scenario hits the warmed cache, a call performs no heap
  /// allocation at all. Misses still allocate (futures and pool jobs),
  /// bounded and amortized by the cache.
  void predict_batch_results(std::span<const core::MigrationScenario> scenarios,
                             std::span<BatchItem> results);

  /// Convenience wrapper allocating the result vector.
  std::vector<BatchItem> predict_batch_results(
      const std::vector<core::MigrationScenario>& scenarios);

  /// All-or-nothing wrapper over predict_batch_results(): returns the
  /// forecasts in input order, or throws the lowest-index slot's
  /// PredictError.
  std::vector<core::MigrationForecast> predict_batch(
      const std::vector<core::MigrationScenario>& scenarios);

  /// Publishes coefficients from a CSV (throws util::ContractError on
  /// bad input, current coefficients stay live). Never blocks
  /// in-flight predictions. Returns the new coefficient version.
  std::uint64_t reload(const std::string& coeffs_csv_path);

  /// Publishes an already-built model (must be fitted).
  std::uint64_t swap_model(std::shared_ptr<const core::Wavm3Model> model);

  std::uint64_t model_version() const { return store_.version(); }

  /// The RCU coefficient store behind reload()/swap_model(). Exposed
  /// so the recalibration loop can snapshot the incumbent model and
  /// publish/roll back candidates with compare-on-version semantics.
  CoefficientStore& coeff_store() { return store_; }

  /// Installs the consumer of record_feedback() samples (replacing any
  /// previous one). The sink is invoked on worker-pool threads; pass
  /// a callable that owns (or keeps alive) everything it touches.
  void set_feedback_sink(FeedbackSink sink);

  /// Removes the sink; subsequent feedback is counted as dropped.
  void clear_feedback_sink();

  /// Reports one observed migration outcome. Non-blocking: the sample
  /// is handed to the worker pool and the sink runs asynchronously.
  /// Returns false — and counts the sample as dropped — when no sink
  /// is installed, the queue is full, or the service is shut down.
  /// Obviously-corrupt samples (non-finite or non-positive duration,
  /// non-finite energies) are rejected up front.
  bool record_feedback(const core::MigrationScenario& scenario,
                       const MigrationFeedback& feedback);

  // --- live mid-migration streaming (src/stream/) ---

  /// Opens a live telemetry session for a migration about to start.
  /// Extrapolation priors, the degeneration baseline, and the
  /// revision-delta normalisation all come from the closed-form
  /// forecast of `scenario` under the current coefficient snapshot.
  /// `plan_vm` tags degeneration alerts with the plan::-side VM id so
  /// the chaos re-plan hook can abort the right move. Throws
  /// stream::StreamError(kDuplicateSession / kSessionLimit).
  void open_stream(std::uint64_t session, const core::MigrationScenario& scenario,
                   int plan_vm = -1);

  /// Opens a session without a scenario (trace replay, unknown
  /// provenance): the prior carries durations only — from the
  /// announced phase timestamps — and close_stream() records no
  /// feedback.
  void open_stream(std::uint64_t session, migration::MigrationType type,
                   const migration::PhaseTimestamps& expected_times);

  /// Feeds one timestamped telemetry sample to one role's meter
  /// stream. Out-of-order timestamps throw util::ContractError,
  /// oversized gaps stream::StreamError(kGapExceeded) — see
  /// stream/incremental.hpp for the full semantics matrix.
  void submit_sample(std::uint64_t session, models::HostRole role,
                     const models::MigrationSample& sample);

  /// Revised live forecast under the current coefficient snapshot —
  /// the same RCU discipline as predict(), so a reload mid-migration
  /// simply prices the next revision with the new coefficients.
  /// Degeneration alerts fire on the returning revision, outside all
  /// stream locks.
  stream::LiveForecast predict_live(std::uint64_t session);

  /// predict_live() on the worker pool, sharing its queue and
  /// backpressure with submit(). After shutdown the returned future
  /// carries PredictError(kShutdown).
  std::future<stream::LiveForecast> submit_predict_live(std::uint64_t session);

  /// What close_stream() did.
  struct StreamCloseReport {
    stream::SessionSummary summary;
    bool feedback_recorded = false;  ///< routed through record_feedback()
  };

  /// Finishes and removes the session. When it was opened with a
  /// scenario and observed any samples, the measured per-role energy
  /// integrals and duration auto-convert into a MigrationFeedback
  /// routed through record_feedback() — i.e. straight into the calib
  /// recalibration ingest when a sink is installed.
  StreamCloseReport close_stream(std::uint64_t session);

  /// Installs the degeneration-alert consumer (replacing any previous
  /// one); e.g. chaos::make_live_abort_hook. Invoked outside all
  /// stream locks, on whichever thread called predict_live().
  void set_degeneration_callback(stream::DegenerationCallback callback);

  /// The registry behind the stream entry points (tests/diagnostics).
  stream::SessionRegistry& stream_registry() { return stream_registry_; }

  ServiceStats stats() const;

  /// Text report: per-endpoint latency/QPS table plus cache and queue
  /// gauges.
  std::string metrics_table() const;

  /// Machine-readable CSV of the same report.
  std::string metrics_csv() const;

  /// Prometheus text exposition of the service's metric registry
  /// (endpoint latency histograms, resilience counters, cache/queue
  /// gauges).
  std::string metrics_prometheus() const;

  /// JSON snapshot of the same registry.
  std::string metrics_json() const;

  /// The obs registry every service metric lives in. Service-owned
  /// (not the process-global one), so concurrent services in one
  /// process never mix their numbers.
  obs::MetricRegistry& obs_registry() { return obs_metrics_; }

  /// Idempotent. kDrain finishes queued requests; kDiscard abandons
  /// them (their futures see broken_promise).
  void shutdown(DrainMode mode = DrainMode::kDrain);

  const ServiceConfig& config() const { return config_; }

 private:
  struct EvalResult {
    core::MigrationForecast forecast;
    bool cacheable = true;  ///< degraded answers are never cached
  };

  /// Cache-then-compute against the current coefficient snapshot.
  core::MigrationForecast evaluate(const core::MigrationScenario& scenario);

  /// One deduplicated scenario of one predict_batch worker task. The
  /// worker fills `result`; the caller fans it out to every input slot
  /// mapped to this item after the chunk completes (duplicates share
  /// one evaluation).
  struct BatchWorkItem {
    core::MigrationScenario canonical;
    ScenarioKey key;
    BatchItem result;
  };

  /// Grow-only per-thread workspace of predict_batch_results. Cleared
  /// (but never shrunk) every call — after the first call of a given
  /// shape the inline phase allocates nothing.
  struct BatchScratch {
    std::vector<BatchWorkItem> work;
    std::vector<std::size_t> item_of;    ///< per input slot: work index or kCacheHit
    std::vector<std::size_t> dedup;      ///< open-addressing table: work index + 1
    std::vector<std::future<void>> completions;
  };
  static BatchScratch& batch_scratch();

  /// Worker-side body of one predict_batch chunk: per-item deadline
  /// check, compute under the shared `snap`, per-item cache fill, and
  /// batch metrics. Results land in the chunk items themselves.
  void run_batch_chunk(const CoefficientStore::Snapshot& snap,
                       std::span<BatchWorkItem> chunk,
                       std::chrono::steady_clock::time_point enqueued, double deadline_s);

  /// The configured backend (planner, or engine simulation behind the
  /// retry/breaker/degradation ladder).
  EvalResult compute(const core::Wavm3Model& model, const core::MigrationScenario& canonical);

  /// Bottom rung: closed-form answer (uncacheable) when degradation is
  /// enabled, PredictError(kBackendFailure) otherwise.
  EvalResult degrade_or_throw(const core::Wavm3Model& model,
                              const core::MigrationScenario& canonical, const char* why);

  /// Backoff delay before retry `attempt` (1-based), jittered from the
  /// seeded stream.
  double backoff_delay(int attempt);

  /// Worker-side body of submit/try_submit jobs (deadline check, then
  /// evaluate into the promise). `enqueued_ns` is the obs-clock
  /// submission timestamp used for the queue-wait trace span.
  void run_job(const core::MigrationScenario& scenario, double deadline_s,
               std::chrono::steady_clock::time_point enqueued, std::uint64_t enqueued_ns,
               std::promise<core::MigrationForecast>& promise);

  /// Copies cache/queue/breaker state into the registered gauges so an
  /// export reflects the moment it was taken.
  void refresh_gauges() const;

  ServiceConfig config_;
  CoefficientStore store_;
  std::unique_ptr<ShardedLruCache<ScenarioKey, core::MigrationForecast, ScenarioKeyHash>>
      cache_;  ///< null when cache_capacity == 0
  obs::MetricRegistry obs_metrics_;  ///< backs metrics_ and the counters below
  MetricsRegistry metrics_;
  int ep_predict_ = -1;
  int ep_submit_ = -1;
  int ep_batch_ = -1;
  CircuitBreaker breaker_;
  // Resilience counters, registered in obs_metrics_ so they show up in
  // the Prometheus/JSON exports; stats()/metrics_csv() read the same
  // storage, keeping the legacy schema.
  obs::Counter& deadline_expired_;
  obs::Counter& shed_;
  obs::Counter& rejected_after_shutdown_;
  obs::Counter& backend_failures_;
  obs::Counter& backend_retries_;
  obs::Counter& degraded_;
  obs::Gauge& g_cache_hits_;
  obs::Gauge& g_cache_misses_;
  obs::Gauge& g_cache_insertions_;
  obs::Gauge& g_cache_evictions_;
  obs::Gauge& g_queue_depth_;
  obs::Gauge& g_threads_;
  obs::Gauge& g_coeff_version_;
  obs::Gauge& g_breaker_open_transitions_;
  obs::Gauge& g_breaker_rejections_;
  obs::Gauge& g_breaker_state_;  ///< CircuitBreaker::State as 0/1/2
  obs::Histogram& h_batch_size_;          ///< scenarios per worker batch task
  obs::Histogram& h_batch_item_latency_;  ///< amortized ns per batched item
  obs::Counter& feedback_accepted_;  ///< samples handed to the sink
  obs::Counter& feedback_dropped_;   ///< no sink / queue full / shutdown / invalid
  obs::Counter& feedback_errors_;    ///< sink invocations that threw
  obs::Gauge& g_stream_sessions_;    ///< open stream sessions
  obs::Counter& stream_samples_;     ///< samples accepted by submit_sample()
  obs::Histogram& h_stream_revision_delta_;  ///< per-revision forecast change, watts
  std::mutex feedback_mutex_;
  std::shared_ptr<const FeedbackSink> feedback_sink_;  ///< null = no consumer
  std::atomic<std::uint64_t> backoff_ticket_{0};
  stream::SessionRegistry stream_registry_;
  ThreadPool pool_;  ///< last member: workers stop before the rest tears down
};

}  // namespace wavm3::serve
