// The prediction service: a thread-safe, in-process server answering
// "what would this migration cost?" queries against core::Wavm3Model +
// core::MigrationPlanner at high throughput.
//
//   - predict()        synchronous, runs on the caller's thread
//   - submit()         asynchronous, executed by the worker pool,
//                      backpressured by the bounded queue
//   - predict_batch()  fans a batch across the pool and gathers
//
// All entry points share one sharded LRU result cache (keyed on the
// quantized scenario + coefficient version, see scenario_key.hpp) and
// one RCU-style coefficient store: reload()/swap_model() publish new
// coefficients without blocking in-flight predictions, and the version
// baked into every cache key retires stale results automatically.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/planner.hpp"
#include "core/wavm3_model.hpp"
#include "serve/coeff_store.hpp"
#include "serve/lru_cache.hpp"
#include "serve/metrics.hpp"
#include "serve/scenario_key.hpp"
#include "serve/thread_pool.hpp"

namespace wavm3::serve {

/// How a query is answered.
enum class Fidelity {
  kClosedForm,  ///< core::MigrationPlanner (sub-microsecond, approximate)
  kSimulated,   ///< full engine run per miss (see sim_backend.hpp; exact,
                ///< orders of magnitude slower — caching is essential)
};

struct ServiceConfig {
  int threads = 4;                   ///< worker pool size
  std::size_t queue_capacity = 1024; ///< pending async requests before backpressure
  std::size_t cache_capacity = 4096; ///< total cached forecasts; 0 disables caching
  std::size_t cache_shards = 8;
  /// Relative pitch of the cache-key feature grid (see
  /// scenario_key.hpp). 0 = exact keys, results bit-identical to
  /// direct planner calls.
  double quantization_step = 0.0;
  Fidelity fidelity = Fidelity::kClosedForm;
};

/// Point-in-time operational snapshot.
struct ServiceStats {
  CacheStats cache;
  std::size_t queue_depth = 0;
  int threads = 0;
  std::uint64_t model_version = 0;
  std::vector<EndpointReport> endpoints;
};

class PredictionService {
 public:
  /// Serves from a copy of `model` (must be fitted).
  explicit PredictionService(const core::Wavm3Model& model, ServiceConfig config = {});
  PredictionService(std::shared_ptr<const core::Wavm3Model> model, ServiceConfig config);

  /// Drains outstanding requests, then joins the workers.
  ~PredictionService();

  PredictionService(const PredictionService&) = delete;
  PredictionService& operator=(const PredictionService&) = delete;

  /// Synchronous forecast on the caller's thread (still cached).
  core::MigrationForecast predict(const core::MigrationScenario& scenario);

  /// Asynchronous forecast on the worker pool. Blocks only when the
  /// queue is full (backpressure). After shutdown the returned future
  /// carries std::runtime_error.
  std::future<core::MigrationForecast> submit(const core::MigrationScenario& scenario);

  /// Fans `scenarios` across the pool, preserving order in the result.
  std::vector<core::MigrationForecast> predict_batch(
      const std::vector<core::MigrationScenario>& scenarios);

  /// Publishes coefficients from a CSV (throws util::ContractError on
  /// bad input, current coefficients stay live). Never blocks
  /// in-flight predictions. Returns the new coefficient version.
  std::uint64_t reload(const std::string& coeffs_csv_path);

  /// Publishes an already-built model (must be fitted).
  std::uint64_t swap_model(std::shared_ptr<const core::Wavm3Model> model);

  std::uint64_t model_version() const { return store_.version(); }

  ServiceStats stats() const;

  /// Text report: per-endpoint latency/QPS table plus cache and queue
  /// gauges.
  std::string metrics_table() const;

  /// Machine-readable CSV of the same report.
  std::string metrics_csv() const;

  /// Idempotent. kDrain finishes queued requests; kDiscard abandons
  /// them (their futures see broken_promise).
  void shutdown(DrainMode mode = DrainMode::kDrain);

  const ServiceConfig& config() const { return config_; }

 private:
  /// Cache-then-compute against the current coefficient snapshot.
  core::MigrationForecast evaluate(const core::MigrationScenario& scenario);

  /// The configured backend (planner or engine simulation).
  core::MigrationForecast compute(const core::Wavm3Model& model,
                                  const core::MigrationScenario& canonical) const;

  ServiceConfig config_;
  CoefficientStore store_;
  std::unique_ptr<ShardedLruCache<ScenarioKey, core::MigrationForecast, ScenarioKeyHash>>
      cache_;  ///< null when cache_capacity == 0
  MetricsRegistry metrics_;
  int ep_predict_ = -1;
  int ep_submit_ = -1;
  int ep_batch_ = -1;
  ThreadPool pool_;  ///< last member: workers stop before the rest tears down
};

}  // namespace wavm3::serve
