// Typed error taxonomy of the prediction service.
//
// Every failure the serve path can produce carries a PredictErrorCode,
// so callers can branch on *why* a request failed (shed it? retry it?
// escalate?) instead of string-matching what(). PredictError derives
// from std::runtime_error on purpose: code written against the
// pre-taxonomy API ("submit() after shutdown throws runtime_error")
// keeps working unchanged.
#pragma once

#include <stdexcept>
#include <string>

namespace wavm3::serve {

/// Why a request failed.
enum class PredictErrorCode {
  kShutdown,          ///< service no longer accepts work
  kQueueFull,         ///< load shed: bounded queue at capacity (try_submit)
  kDeadlineExceeded,  ///< request spent its deadline waiting in the queue
  kBackendFailure,    ///< sim backend failed and degradation is disabled
};

const char* to_string(PredictErrorCode code);

/// A typed service failure. Catchable as std::runtime_error for
/// compatibility with pre-taxonomy callers.
class PredictError : public std::runtime_error {
 public:
  PredictError(PredictErrorCode code, const std::string& detail)
      : std::runtime_error(std::string(to_string(code)) + ": " + detail), code_(code) {}

  PredictErrorCode code() const { return code_; }

 private:
  PredictErrorCode code_;
};

inline const char* to_string(PredictErrorCode code) {
  switch (code) {
    case PredictErrorCode::kShutdown: return "shutdown";
    case PredictErrorCode::kQueueFull: return "queue-full";
    case PredictErrorCode::kDeadlineExceeded: return "deadline-exceeded";
    case PredictErrorCode::kBackendFailure: return "backend-failure";
  }
  return "?";
}

}  // namespace wavm3::serve
