// Bounded multi-producer/multi-consumer queue: the work conduit of the
// prediction service's thread pool. Condition-variable based, with
// blocking push (backpressure: producers wait when the queue is full),
// non-blocking try_push, and two shutdown modes — close() lets
// consumers drain what is already queued, while close_and_discard()
// additionally drops queued items on the floor (their destructors run;
// a pending std::promise destroyed this way surfaces as
// std::future_errc::broken_promise to the waiter, which is exactly the
// contract a cancelled request should see).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "util/error.hpp"

namespace wavm3::serve {

template <typename T>
class BoundedMpmcQueue {
 public:
  explicit BoundedMpmcQueue(std::size_t capacity) : capacity_(capacity) {
    WAVM3_REQUIRE(capacity > 0, "queue capacity must be positive");
  }

  BoundedMpmcQueue(const BoundedMpmcQueue&) = delete;
  BoundedMpmcQueue& operator=(const BoundedMpmcQueue&) = delete;

  /// Blocks until there is room (backpressure) or the queue is closed.
  /// Returns false — leaving `item` unmoved-from semantics aside, the
  /// item is simply dropped — when the queue was closed first.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; false when full or closed.
  bool try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed *and*
  /// empty; nullopt signals "closed and drained" to a consumer.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Stops producers; consumers still drain what is queued.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// Stops producers and destroys everything still queued.
  void close_and_discard() {
    std::deque<T> discarded;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
      discarded.swap(items_);
    }
    not_empty_.notify_all();
    not_full_.notify_all();
    // `discarded` destructs outside the lock.
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace wavm3::serve
