#include "serve/scenario_key.hpp"

#include <bit>
#include <cmath>

#include "util/error.hpp"

namespace wavm3::serve {

namespace {

/// Snaps v to the geometric grid exp(k * ln(1+q)); values within about
/// q/2 relative distance coincide. Sign-preserving; 0 stays 0.
double quantize(double v, double q) {
  if (q <= 0.0 || v == 0.0 || !std::isfinite(v)) return v;
  const double pitch = std::log1p(q);
  const double magnitude = std::exp(std::round(std::log(std::fabs(v)) / pitch) * pitch);
  return std::copysign(magnitude, v);
}

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  // splitmix64 step folded into an accumulating hash.
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6U) + (h >> 2U);
  h ^= h >> 30U;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27U;
  return h;
}

std::uint64_t double_bits(double v) {
  if (v == 0.0) v = 0.0;  // collapse -0.0 onto +0.0
  return std::bit_cast<std::uint64_t>(v);
}

}  // namespace

std::array<double, kScenarioFieldCount> scenario_fields(const core::MigrationScenario& sc) {
  const migration::MigrationConfig& m = sc.migration;
  const net::BandwidthModelParams& b = sc.bandwidth;
  return {
      static_cast<double>(static_cast<int>(sc.type)),
      // Workload features (the quantizable part).
      sc.vm_mem_bytes,
      sc.vm_cpu_vcpus,
      sc.vm_dirty_pages_per_s,
      sc.vm_working_set_pages,
      sc.source_cpu_load,
      sc.source_cpu_capacity,
      sc.target_cpu_load,
      sc.target_cpu_capacity,
      sc.link_payload_rate,
      // Migration machinery (compared exactly).
      m.initiation_duration,
      m.stop_threshold_bytes,
      static_cast<double>(m.max_precopy_rounds),
      m.max_transfer_factor,
      m.postcopy_state_bytes,
      m.adaptive_rate_limit ? 1.0 : 0.0,
      m.min_rate_bytes,
      m.rate_increment_bytes,
      m.guest_traffic_claim,
      m.contention_floor,
      m.sender_cpu_base,
      m.sender_cpu_per_rate,
      m.receiver_cpu_base,
      m.receiver_cpu_per_rate,
      m.initiation_cpu,
      m.activation_cpu,
      m.compression_ratio,
      m.compression_cpu,
      m.source_cleanup_duration,
      m.target_resume_duration,
      m.resume_point_fraction,
      // Bandwidth model (compared exactly).
      b.min_efficiency,
      b.cpu_for_wire_speed,
  };
}

core::MigrationScenario scenario_from_fields(
    const std::array<double, kScenarioFieldCount>& f) {
  const int type = static_cast<int>(f[0]);
  WAVM3_REQUIRE(static_cast<double>(type) == f[0] && type >= 0 &&
                    type <= static_cast<int>(migration::MigrationType::kPostCopy),
                "scenario type field does not encode a MigrationType");
  core::MigrationScenario sc;
  sc.type = static_cast<migration::MigrationType>(type);
  sc.vm_mem_bytes = f[1];
  sc.vm_cpu_vcpus = f[2];
  sc.vm_dirty_pages_per_s = f[3];
  sc.vm_working_set_pages = f[4];
  sc.source_cpu_load = f[5];
  sc.source_cpu_capacity = f[6];
  sc.target_cpu_load = f[7];
  sc.target_cpu_capacity = f[8];
  sc.link_payload_rate = f[9];
  migration::MigrationConfig& m = sc.migration;
  m.initiation_duration = f[10];
  m.stop_threshold_bytes = f[11];
  m.max_precopy_rounds = static_cast<int>(f[12]);
  m.max_transfer_factor = f[13];
  m.postcopy_state_bytes = f[14];
  m.adaptive_rate_limit = f[15] != 0.0;
  m.min_rate_bytes = f[16];
  m.rate_increment_bytes = f[17];
  m.guest_traffic_claim = f[18];
  m.contention_floor = f[19];
  m.sender_cpu_base = f[20];
  m.sender_cpu_per_rate = f[21];
  m.receiver_cpu_base = f[22];
  m.receiver_cpu_per_rate = f[23];
  m.initiation_cpu = f[24];
  m.activation_cpu = f[25];
  m.compression_ratio = f[26];
  m.compression_cpu = f[27];
  m.source_cleanup_duration = f[28];
  m.target_resume_duration = f[29];
  m.resume_point_fraction = f[30];
  sc.bandwidth.min_efficiency = f[31];
  sc.bandwidth.cpu_for_wire_speed = f[32];
  return sc;
}

core::MigrationScenario canonicalize(const core::MigrationScenario& sc,
                                     double quantization_step) {
  if (quantization_step <= 0.0) return sc;
  core::MigrationScenario q = sc;
  q.vm_mem_bytes = quantize(sc.vm_mem_bytes, quantization_step);
  q.vm_cpu_vcpus = quantize(sc.vm_cpu_vcpus, quantization_step);
  q.vm_dirty_pages_per_s = quantize(sc.vm_dirty_pages_per_s, quantization_step);
  q.vm_working_set_pages = quantize(sc.vm_working_set_pages, quantization_step);
  q.source_cpu_load = quantize(sc.source_cpu_load, quantization_step);
  q.source_cpu_capacity = quantize(sc.source_cpu_capacity, quantization_step);
  q.target_cpu_load = quantize(sc.target_cpu_load, quantization_step);
  q.target_cpu_capacity = quantize(sc.target_cpu_capacity, quantization_step);
  q.link_payload_rate = quantize(sc.link_payload_rate, quantization_step);
  return q;
}

bool ScenarioKey::operator==(const ScenarioKey& other) const {
  if (model_version != other.model_version) return false;
  for (std::size_t i = 0; i < kScenarioFieldCount; ++i) {
    if (double_bits(fields[i]) != double_bits(other.fields[i])) return false;
  }
  return true;
}

std::size_t ScenarioKeyHash::operator()(const ScenarioKey& key) const {
  std::uint64_t h = mix(0x243f6a8885a308d3ULL, key.model_version);
  for (const double f : key.fields) h = mix(h, double_bits(f));
  return static_cast<std::size_t>(h);
}

}  // namespace wavm3::serve
