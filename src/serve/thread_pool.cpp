#include "serve/thread_pool.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace wavm3::serve {

ThreadPool::ThreadPool(ThreadPoolConfig config)
    : queue_(std::max<std::size_t>(1, config.queue_capacity)) {
  WAVM3_REQUIRE(config.threads > 0, "thread pool needs at least one worker");
  workers_.reserve(static_cast<std::size_t>(config.threads));
  for (int i = 0; i < config.threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(DrainMode::kDrain); }

bool ThreadPool::submit(UniqueFunction job) { return queue_.push(std::move(job)); }

bool ThreadPool::try_submit(UniqueFunction job) { return queue_.try_push(std::move(job)); }

void ThreadPool::shutdown(DrainMode mode) {
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  if (mode == DrainMode::kDiscard) {
    queue_.close_and_discard();
  } else {
    queue_.close();
  }
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  while (true) {
    std::optional<UniqueFunction> job = queue_.pop();
    if (!job.has_value()) return;  // closed and drained
    (*job)();
  }
}

}  // namespace wavm3::serve
