// Service metrics, bridged onto obs::MetricRegistry. The public
// surface (LatencyHistogram, MetricsRegistry, LatencyTimer, the table
// and CSV renderers) is unchanged from the original bespoke
// implementation — callers and tests compile as-is and the rendered
// CSV stays byte-identical — but the storage underneath is now the
// shared obs metric registry, so the same endpoint histograms are
// visible to the Prometheus and JSON exporters for free.
//
// The latency grid is the one serve/ has always used: 400 buckets
// growing geometrically by 1.046 from 1 us (~4.6% relative
// resolution). obs::Histogram's exponential mode reproduces the exact
// bucket-index arithmetic, so quantiles come out bit-identical.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"

namespace wavm3::serve {

/// Log-bucketed latency histogram over [1 us, ~88 s).
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 400;
  /// Bucket boundaries grow geometrically by this factor per bucket.
  static constexpr double kGrowth = 1.046;
  static constexpr double kFirstBucketNs = 1000.0;  // 1 us

  LatencyHistogram() : hist_(kFirstBucketNs, kGrowth, kBuckets) {}

  void record_ns(double nanoseconds);

  std::uint64_t count() const { return hist_.count(); }
  double total_ns() const;
  double mean_ns() const;

  /// Latency below which a fraction `q` in [0, 1] of recordings fall
  /// (upper bucket bound, so the estimate errs conservatively high).
  /// Returns 0 when nothing was recorded.
  double quantile_ns(double q) const;

  void reset();

 private:
  obs::Histogram hist_;
  /// Historical accumulation truncated observation-by-observation;
  /// kept so mean_ns() matches the original to the last bit even for
  /// fractional-nanosecond recordings.
  std::atomic<std::uint64_t> total_ns_{0};
};

/// Point-in-time summary of one endpoint.
struct EndpointReport {
  std::string name;
  std::uint64_t requests = 0;
  double qps = 0.0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
};

/// Registry of per-endpoint latency histograms, backed by an
/// obs::MetricRegistry: each endpoint is one labeled member of the
/// `serve_endpoint_latency_ns` family. Endpoints are registered up
/// front (the service knows its API surface), so the hot path is an
/// index into a fixed vector — no map lookups, no locks.
class MetricsRegistry {
 public:
  /// Records into `backing` when given, else into a private registry.
  /// `backing` must outlive this object.
  explicit MetricsRegistry(obs::MetricRegistry* backing = nullptr);

  /// Returns the endpoint's handle; call once per endpoint at setup.
  int register_endpoint(const std::string& name);

  /// Records one request of `nanoseconds` end-to-end latency.
  void record(int endpoint, double nanoseconds);

  /// Summaries in registration order; QPS is measured against the time
  /// since construction (or the last reset()), read through the obs
  /// clock so tests can freeze it.
  std::vector<EndpointReport> reports() const;

  /// Fixed-width text table of every endpoint.
  std::string render_table() const;

  /// CSV (`endpoint,requests,qps,mean_us,p50_us,p95_us,p99_us`).
  std::string render_csv() const;

  void reset();

  /// The registry the endpoint histograms live in (the backing one
  /// when constructed with it, else the private one).
  obs::MetricRegistry& obs_registry() { return *reg_; }
  const obs::MetricRegistry& obs_registry() const { return *reg_; }

 private:
  struct Endpoint {
    std::string name;
    obs::Histogram* histogram;
  };

  std::unique_ptr<obs::MetricRegistry> owned_;
  obs::MetricRegistry* reg_;
  std::vector<Endpoint> endpoints_;
  std::uint64_t epoch_ns_ = obs::now_ns();
};

/// Scoped stopwatch recording into a registry endpoint on destruction.
class LatencyTimer {
 public:
  LatencyTimer(MetricsRegistry& registry, int endpoint)
      : registry_(&registry), endpoint_(endpoint), start_ns_(obs::now_ns()) {}
  ~LatencyTimer() {
    const std::uint64_t end_ns = obs::now_ns();
    registry_->record(endpoint_,
                      static_cast<double>(end_ns > start_ns_ ? end_ns - start_ns_ : 0));
  }
  LatencyTimer(const LatencyTimer&) = delete;
  LatencyTimer& operator=(const LatencyTimer&) = delete;

 private:
  MetricsRegistry* registry_;
  int endpoint_;
  std::uint64_t start_ns_;
};

}  // namespace wavm3::serve
