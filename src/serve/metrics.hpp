// Service metrics: lock-free latency histograms with quantile
// estimation, per-endpoint counters, and renderers for a text table and
// CSV. Recording must be cheap enough to sit on the prediction hot
// path, so a histogram is a fixed array of atomic bucket counters on a
// logarithmic grid (~4.6% relative resolution) — no locks, no
// allocation, bounded error on the reported quantiles.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace wavm3::serve {

/// Log-bucketed latency histogram over [1 us, ~88 s).
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 400;
  /// Bucket boundaries grow geometrically by this factor per bucket.
  static constexpr double kGrowth = 1.046;
  static constexpr double kFirstBucketNs = 1000.0;  // 1 us

  void record_ns(double nanoseconds);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double total_ns() const;
  double mean_ns() const;

  /// Latency below which a fraction `q` in [0, 1] of recordings fall
  /// (upper bucket bound, so the estimate errs conservatively high).
  /// Returns 0 when nothing was recorded.
  double quantile_ns(double q) const;

  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> total_ns_{0};
};

/// Point-in-time summary of one endpoint.
struct EndpointReport {
  std::string name;
  std::uint64_t requests = 0;
  double qps = 0.0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
};

/// Registry of per-endpoint histograms. Endpoints are registered up
/// front (the service knows its API surface), so the hot path is an
/// index into a fixed vector — no map lookups, no locks.
class MetricsRegistry {
 public:
  /// Returns the endpoint's handle; call once per endpoint at setup.
  int register_endpoint(const std::string& name);

  /// Records one request of `nanoseconds` end-to-end latency.
  void record(int endpoint, double nanoseconds);

  /// Summaries in registration order; QPS is measured against the time
  /// since construction (or the last reset()).
  std::vector<EndpointReport> reports() const;

  /// Fixed-width text table of every endpoint.
  std::string render_table() const;

  /// CSV (`endpoint,requests,qps,mean_us,p50_us,p95_us,p99_us`).
  std::string render_csv() const;

  void reset();

 private:
  struct Endpoint {
    std::string name;
    LatencyHistogram histogram;
  };
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::chrono::steady_clock::time_point epoch_ = std::chrono::steady_clock::now();
};

/// Scoped stopwatch recording into a registry endpoint on destruction.
class LatencyTimer {
 public:
  LatencyTimer(MetricsRegistry& registry, int endpoint)
      : registry_(&registry), endpoint_(endpoint),
        start_(std::chrono::steady_clock::now()) {}
  ~LatencyTimer() {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - start_);
    registry_->record(endpoint_, static_cast<double>(ns.count()));
  }
  LatencyTimer(const LatencyTimer&) = delete;
  LatencyTimer& operator=(const LatencyTimer&) = delete;

 private:
  MetricsRegistry* registry_;
  int endpoint_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace wavm3::serve
