#include "serve/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace wavm3::serve {

namespace {

int bucket_index(double ns) {
  if (ns <= LatencyHistogram::kFirstBucketNs) return 0;
  static const double inv_log_growth = 1.0 / std::log(LatencyHistogram::kGrowth);
  const int idx = static_cast<int>(std::log(ns / LatencyHistogram::kFirstBucketNs) *
                                   inv_log_growth) + 1;
  return std::min(idx, LatencyHistogram::kBuckets - 1);
}

/// Upper bound (ns) of bucket `idx`.
double bucket_upper_ns(int idx) {
  return LatencyHistogram::kFirstBucketNs *
         std::pow(LatencyHistogram::kGrowth, static_cast<double>(idx));
}

}  // namespace

void LatencyHistogram::record_ns(double nanoseconds) {
  const double ns = std::max(0.0, nanoseconds);
  buckets_[static_cast<std::size_t>(bucket_index(ns))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  total_ns_.fetch_add(static_cast<std::uint64_t>(ns), std::memory_order_relaxed);
}

double LatencyHistogram::total_ns() const {
  return static_cast<double>(total_ns_.load(std::memory_order_relaxed));
}

double LatencyHistogram::mean_ns() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : total_ns() / static_cast<double>(n);
}

double LatencyHistogram::quantile_ns(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  const double clamped = std::clamp(q, 0.0, 1.0);
  const auto rank =
      static_cast<std::uint64_t>(std::ceil(clamped * static_cast<double>(n)));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    if (seen >= rank) return bucket_upper_ns(i);
  }
  return bucket_upper_ns(kBuckets - 1);
}

void LatencyHistogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  total_ns_.store(0, std::memory_order_relaxed);
}

int MetricsRegistry::register_endpoint(const std::string& name) {
  auto ep = std::make_unique<Endpoint>();
  ep->name = name;
  endpoints_.push_back(std::move(ep));
  return static_cast<int>(endpoints_.size()) - 1;
}

void MetricsRegistry::record(int endpoint, double nanoseconds) {
  WAVM3_ASSERT(endpoint >= 0 && endpoint < static_cast<int>(endpoints_.size()),
               "unregistered metrics endpoint");
  endpoints_[static_cast<std::size_t>(endpoint)]->histogram.record_ns(nanoseconds);
}

std::vector<EndpointReport> MetricsRegistry::reports() const {
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_).count();
  std::vector<EndpointReport> out;
  out.reserve(endpoints_.size());
  for (const auto& ep : endpoints_) {
    EndpointReport r;
    r.name = ep->name;
    r.requests = ep->histogram.count();
    r.qps = elapsed_s > 0.0 ? static_cast<double>(r.requests) / elapsed_s : 0.0;
    r.mean_us = ep->histogram.mean_ns() / 1e3;
    r.p50_us = ep->histogram.quantile_ns(0.50) / 1e3;
    r.p95_us = ep->histogram.quantile_ns(0.95) / 1e3;
    r.p99_us = ep->histogram.quantile_ns(0.99) / 1e3;
    out.push_back(r);
  }
  return out;
}

std::string MetricsRegistry::render_table() const {
  std::string out = util::format("%-24s %10s %12s %10s %10s %10s %10s\n", "endpoint",
                                 "requests", "qps", "mean[us]", "p50[us]", "p95[us]",
                                 "p99[us]");
  for (const EndpointReport& r : reports()) {
    out += util::format("%-24s %10llu %12.1f %10.1f %10.1f %10.1f %10.1f\n",
                        r.name.c_str(), static_cast<unsigned long long>(r.requests),
                        r.qps, r.mean_us, r.p50_us, r.p95_us, r.p99_us);
  }
  return out;
}

std::string MetricsRegistry::render_csv() const {
  std::string out = "endpoint,requests,qps,mean_us,p50_us,p95_us,p99_us\n";
  for (const EndpointReport& r : reports()) {
    out += util::format("%s,%llu,%.3f,%.3f,%.3f,%.3f,%.3f\n", r.name.c_str(),
                        static_cast<unsigned long long>(r.requests), r.qps, r.mean_us,
                        r.p50_us, r.p95_us, r.p99_us);
  }
  return out;
}

void MetricsRegistry::reset() {
  for (auto& ep : endpoints_) ep->histogram.reset();
  epoch_ = std::chrono::steady_clock::now();
}

}  // namespace wavm3::serve
