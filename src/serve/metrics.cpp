#include "serve/metrics.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace wavm3::serve {

void LatencyHistogram::record_ns(double nanoseconds) {
  const double ns = std::max(0.0, nanoseconds);
  hist_.observe(ns);
  total_ns_.fetch_add(static_cast<std::uint64_t>(ns), std::memory_order_relaxed);
}

double LatencyHistogram::total_ns() const {
  return static_cast<double>(total_ns_.load(std::memory_order_relaxed));
}

double LatencyHistogram::mean_ns() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : total_ns() / static_cast<double>(n);
}

double LatencyHistogram::quantile_ns(double q) const {
  if (count() == 0) return 0.0;
  return hist_.snapshot().quantile_upper_bound(q);
}

void LatencyHistogram::reset() {
  hist_.reset();
  total_ns_.store(0, std::memory_order_relaxed);
}

MetricsRegistry::MetricsRegistry(obs::MetricRegistry* backing) : reg_(backing) {
  if (reg_ == nullptr) {
    owned_ = std::make_unique<obs::MetricRegistry>();
    reg_ = owned_.get();
  }
}

int MetricsRegistry::register_endpoint(const std::string& name) {
  obs::Histogram& h = reg_->exponential_histogram(
      "serve_endpoint_latency_ns", "End-to-end request latency per endpoint",
      LatencyHistogram::kFirstBucketNs, LatencyHistogram::kGrowth, LatencyHistogram::kBuckets,
      {{"endpoint", name}});
  endpoints_.push_back(Endpoint{name, &h});
  return static_cast<int>(endpoints_.size()) - 1;
}

void MetricsRegistry::record(int endpoint, double nanoseconds) {
  WAVM3_ASSERT(endpoint >= 0 && endpoint < static_cast<int>(endpoints_.size()),
               "unregistered metrics endpoint");
  endpoints_[static_cast<std::size_t>(endpoint)].histogram->observe(
      std::max(0.0, nanoseconds));
}

std::vector<EndpointReport> MetricsRegistry::reports() const {
  const std::uint64_t now = obs::now_ns();
  const double elapsed_s =
      now > epoch_ns_ ? static_cast<double>(now - epoch_ns_) / 1e9 : 0.0;
  std::vector<EndpointReport> out;
  out.reserve(endpoints_.size());
  for (const Endpoint& ep : endpoints_) {
    const obs::HistogramSnapshot snap = ep.histogram->snapshot();
    EndpointReport r;
    r.name = ep.name;
    r.requests = snap.count;
    r.qps = elapsed_s > 0.0 ? static_cast<double>(r.requests) / elapsed_s : 0.0;
    r.mean_us = r.requests == 0 ? 0.0 : snap.sum / static_cast<double>(r.requests) / 1e3;
    r.p50_us = r.requests == 0 ? 0.0 : snap.quantile_upper_bound(0.50) / 1e3;
    r.p95_us = r.requests == 0 ? 0.0 : snap.quantile_upper_bound(0.95) / 1e3;
    r.p99_us = r.requests == 0 ? 0.0 : snap.quantile_upper_bound(0.99) / 1e3;
    out.push_back(r);
  }
  return out;
}

std::string MetricsRegistry::render_table() const {
  std::string out = util::format("%-24s %10s %12s %10s %10s %10s %10s\n", "endpoint",
                                 "requests", "qps", "mean[us]", "p50[us]", "p95[us]",
                                 "p99[us]");
  for (const EndpointReport& r : reports()) {
    out += util::format("%-24s %10llu %12.1f %10.1f %10.1f %10.1f %10.1f\n",
                        r.name.c_str(), static_cast<unsigned long long>(r.requests),
                        r.qps, r.mean_us, r.p50_us, r.p95_us, r.p99_us);
  }
  return out;
}

std::string MetricsRegistry::render_csv() const {
  std::string out = "endpoint,requests,qps,mean_us,p50_us,p95_us,p99_us\n";
  for (const EndpointReport& r : reports()) {
    out += util::format("%s,%llu,%.3f,%.3f,%.3f,%.3f,%.3f\n", r.name.c_str(),
                        static_cast<unsigned long long>(r.requests), r.qps, r.mean_us,
                        r.p50_us, r.p95_us, r.p99_us);
  }
  return out;
}

void MetricsRegistry::reset() {
  for (const Endpoint& ep : endpoints_) ep.histogram->reset();
  epoch_ns_ = obs::now_ns();
}

}  // namespace wavm3::serve
