// High-fidelity prediction backend: answers a MigrationScenario by
// actually running the event-driven migration engine on a throwaway
// two-host datacentre, instead of the closed-form pre-copy recursion.
// Orders of magnitude more expensive per query than the planner — this
// is the backend the result cache exists for — but exact with respect
// to the engine's round-by-round dynamics (rate limiting, helper CPU
// feedback, degeneration). Energy attribution reuses the planner's
// core::attach_energy so both fidelities price phases identically.
#pragma once

#include <memory>

#include "core/planner.hpp"
#include "core/wavm3_model.hpp"
#include "faults/fault_plan.hpp"
#include "migration/engine.hpp"

namespace wavm3::serve {

/// Runs one engine-simulated migration for `scenario` and returns the
/// forecast with energy filled from `model`. Deterministic: the same
/// scenario always yields the same forecast (no jitter is applied).
/// Thread-safe: every call builds its own simulator and datacentre.
core::MigrationForecast simulate_forecast(const core::Wavm3Model& model,
                                          const core::MigrationScenario& scenario);

/// Timing/traffic part of simulate_forecast, usable without a fitted
/// model (mirrors core::forecast_timings).
core::MigrationForecast simulate_timings(const core::MigrationScenario& scenario);

/// Same engine run as simulate_timings, but with an optional fault
/// plan injected and the raw engine record returned — rounds, outcome,
/// failure phase, wasted bytes. This is the backend of the `trace` CLI
/// subcommand and the fault-resilience bench; unlike simulate_timings
/// the migration is allowed to fail (the record says how).
migration::MigrationRecord simulate_record(
    const core::MigrationScenario& scenario,
    std::shared_ptr<const faults::FaultPlan> faults = nullptr);

}  // namespace wavm3::serve
