#include "serve/sim_backend.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "cloud/datacenter.hpp"
#include "migration/engine.hpp"
#include "net/bandwidth_model.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"
#include "util/units.hpp"
#include "workloads/pagedirtier.hpp"

namespace wavm3::serve {

namespace {

/// Synthetic stand-in for "everything else running on this host": a
/// dirtier with zero dirtying, i.e. a pure CPU demand of `vcpus`.
workloads::WorkloadPtr make_cpu_load(double vcpus) {
  workloads::PageDirtierParams p;
  p.cpu_demand = vcpus;
  p.dirty_pages_per_s = 0.0;
  p.memory_fraction = 0.01;
  p.allocated_pages = util::gib(0.25) / util::kPageSize;
  return std::make_shared<workloads::PageDirtierWorkload>(p);
}

cloud::VmPtr make_vm(const std::string& id, double vcpus, double ram_bytes,
                     workloads::WorkloadPtr workload) {
  cloud::VmSpec spec;
  spec.instance_type = "serve-synthetic";
  spec.vcpus = std::max(1, static_cast<int>(std::ceil(vcpus)));
  spec.ram_bytes = ram_bytes;
  auto vm = std::make_shared<cloud::Vm>(id, spec);
  vm->set_workload(std::move(workload));
  vm->start();
  return vm;
}

}  // namespace

migration::MigrationRecord simulate_record(
    const core::MigrationScenario& sc, std::shared_ptr<const faults::FaultPlan> faults) {
  WAVM3_REQUIRE(sc.vm_mem_bytes > 0.0, "scenario needs a VM memory size");
  WAVM3_REQUIRE(sc.link_payload_rate > 0.0, "scenario needs a link rate");
  WAVM3_REQUIRE(sc.source_cpu_capacity > 0.0 && sc.target_cpu_capacity > 0.0,
                "host capacities must be positive");

  sim::Simulator sim;
  cloud::DataCenter dc;
  cloud::HostSpec h;
  h.ram_bytes = sc.vm_mem_bytes + util::gib(1);
  h.name = "src";
  h.vcpus = std::max(1, static_cast<int>(std::ceil(sc.source_cpu_capacity)));
  cloud::Host& source = dc.add_host(h);
  h.name = "tgt";
  h.vcpus = std::max(1, static_cast<int>(std::ceil(sc.target_cpu_capacity)));
  cloud::Host& target = dc.add_host(h);

  // The scenario's link rate is already a payload rate; encode it as a
  // lossless wire so the engine sees exactly that capacity.
  net::LinkSpec link;
  link.name = "src<->tgt";
  link.wire_rate = sc.link_payload_rate;
  link.protocol_efficiency = 1.0;
  dc.network().connect("src", "tgt", link);

  // The migrating VM, modelled as a page dirtier with the scenario's
  // resource signature; background load carries the residual after
  // dom-0's own demand (host loads include the VMM).
  workloads::PageDirtierParams wl;
  wl.allocated_pages =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(sc.vm_mem_bytes / util::kPageSize));
  wl.memory_fraction = std::clamp(
      sc.vm_working_set_pages / static_cast<double>(wl.allocated_pages), 1e-6, 1.0);
  wl.dirty_pages_per_s = std::max(0.0, sc.vm_dirty_pages_per_s);
  wl.cpu_demand = std::max(0.0, sc.vm_cpu_vcpus);
  source.add_vm(make_vm("mv", std::max(1.0, sc.vm_cpu_vcpus), sc.vm_mem_bytes,
                        std::make_shared<workloads::PageDirtierWorkload>(wl)));

  const double src_residual =
      std::max(0.0, sc.source_cpu_load - source.vmm_demand(0.0));
  const double dst_residual =
      std::max(0.0, sc.target_cpu_load - target.vmm_demand(0.0));
  if (src_residual > 0.0)
    source.add_vm(make_vm("src-load", src_residual, util::gib(0.5),
                          make_cpu_load(src_residual)));
  if (dst_residual > 0.0)
    target.add_vm(make_vm("tgt-load", dst_residual, util::gib(0.5),
                          make_cpu_load(dst_residual)));

  migration::MigrationEngine engine(sim, dc, net::BandwidthModel(sc.bandwidth),
                                    sc.migration);
  if (faults != nullptr) engine.set_fault_plan(std::move(faults));
  engine.migrate("mv", "src", "tgt", sc.type);
  sim.run_to_completion();
  WAVM3_REQUIRE(!engine.completed().empty(), "simulated migration did not finish");
  return engine.completed().back();
}

core::MigrationForecast simulate_timings(const core::MigrationScenario& sc) {
  const migration::MigrationRecord rec = simulate_record(sc);
  WAVM3_REQUIRE(rec.outcome == migration::MigrationOutcome::kCompleted,
                "simulated migration did not complete");

  core::MigrationForecast fc;
  fc.times = rec.times;
  fc.total_bytes = rec.total_bytes;
  fc.precopy_rounds = rec.precopy_rounds;
  fc.downtime = rec.downtime;
  fc.degenerated_to_nonlive = rec.degenerated_to_nonlive;
  fc.bandwidth = rec.total_bytes / std::max(1e-9, rec.times.transfer_duration());
  return fc;
}

core::MigrationForecast simulate_forecast(const core::Wavm3Model& model,
                                          const core::MigrationScenario& sc) {
  core::MigrationForecast fc = simulate_timings(sc);
  core::attach_energy(model, sc, fc);
  return fc;
}

}  // namespace wavm3::serve
