#include "plan/strategy.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <utility>
#include <vector>

namespace wavm3::plan {

namespace {

/// Per-host (cpu, ram) additions a donor's tentative assignment would
/// cause. Kept per attempt so a failed donor folds nothing back.
using Delta = std::unordered_map<int, std::pair<double, double>>;

/// Tentative loads accumulated across already-decided donors.
struct TentativeLoads {
  std::vector<double> cpu;
  std::vector<double> ram;

  explicit TentativeLoads(const Fleet& fleet) {
    cpu.reserve(fleet.host_count());
    ram.reserve(fleet.host_count());
    for (const FleetHost& h : fleet.hosts()) {
      cpu.push_back(h.cpu_load);
      ram.push_back(h.ram_committed);
    }
  }

  void fold(const Delta& delta) {
    for (const auto& [host, add] : delta) {
      cpu[static_cast<std::size_t>(host)] += add.first;
      ram[static_cast<std::size_t>(host)] += add.second;
    }
  }
};

bool target_feasible(const Fleet& fleet, const PlannerConfig& config, const FleetVm& vm,
                     int target, const TentativeLoads& base, const Delta& delta) {
  double cpu = base.cpu[static_cast<std::size_t>(target)];
  double ram = base.ram[static_cast<std::size_t>(target)];
  if (const auto it = delta.find(target); it != delta.end()) {
    cpu += it->second.first;
    ram += it->second.second;
  }
  const cloud::HostSpec& spec = fleet.host(target).spec;
  if (ram + vm.ram_bytes > spec.ram_bytes) return false;
  const double capacity = static_cast<double>(spec.vcpus);
  return cpu + vm.cpu_now <= config.policy.overload_fraction * capacity;
}

void add_to_delta(Delta& delta, int target, const FleetVm& vm) {
  auto& slot = delta[target];
  slot.first += vm.cpu_now;
  slot.second += vm.ram_bytes;
}

/// One donor under naive first-fit: each VM goes to the feasible
/// candidate on the lowest-indexed host. Returns the picked move
/// indices (empty = donor infeasible) and fills `delta`.
std::vector<int> assign_first_fit(const Fleet& fleet, const CandidateSet& candidates,
                                  const PlannerConfig& config, const DonorCandidates& donor,
                                  const TentativeLoads& base, Delta& delta) {
  std::vector<int> picks;
  picks.reserve(donor.vms.size());
  delta.clear();
  for (const VmCandidates& vc : donor.vms) {
    const FleetVm& vm = fleet.vm(vc.vm);
    int best_move = -1;
    int best_target = std::numeric_limits<int>::max();
    for (int m = vc.begin; m < vc.end; ++m) {
      const ScoredMove& move = candidates.moves[static_cast<std::size_t>(m)];
      if (move.target >= best_target) continue;
      if (!target_feasible(fleet, config, vm, move.target, base, delta)) continue;
      best_move = m;
      best_target = move.target;
    }
    if (best_move < 0) return {};  // all-or-nothing: donor stays
    picks.push_back(best_move);
    add_to_delta(delta, best_target, vm);
  }
  return picks;
}

double assignment_energy(const CandidateSet& candidates, const std::vector<int>& picks) {
  double total = 0.0;
  for (const int m : picks) total += candidates.moves[static_cast<std::size_t>(m)].selection_energy();
  return total;
}

/// One donor under beam search over its VMs. The first-fit assignment
/// (if any) is admitted as one more completed candidate, so the result
/// never prices above first-fit.
std::vector<int> assign_beam(const Fleet& fleet, const CandidateSet& candidates,
                             const PlannerConfig& config, const DonorCandidates& donor,
                             const TentativeLoads& base, Delta& delta) {
  struct BeamState {
    std::vector<int> picks;
    Delta delta;
    double energy = 0.0;
  };

  const std::size_t width = static_cast<std::size_t>(std::max(1, config.beam_width));
  std::vector<BeamState> beam(1);
  std::vector<BeamState> next;
  for (const VmCandidates& vc : donor.vms) {
    const FleetVm& vm = fleet.vm(vc.vm);
    next.clear();
    for (const BeamState& state : beam) {
      for (int m = vc.begin; m < vc.end; ++m) {
        const ScoredMove& move = candidates.moves[static_cast<std::size_t>(m)];
        if (!target_feasible(fleet, config, vm, move.target, base, state.delta)) continue;
        BeamState expanded = state;
        expanded.picks.push_back(m);
        add_to_delta(expanded.delta, move.target, vm);
        expanded.energy += move.selection_energy();
        next.push_back(std::move(expanded));
      }
    }
    if (next.empty()) {
      beam.clear();  // beam dead-ended; first-fit below may still work
      break;
    }
    std::sort(next.begin(), next.end(),
              [](const BeamState& a, const BeamState& b) { return a.energy < b.energy; });
    if (next.size() > width) next.resize(width);
    beam.swap(next);
  }

  Delta ff_delta;
  const std::vector<int> ff_picks =
      assign_first_fit(fleet, candidates, config, donor, base, ff_delta);

  const bool beam_ok = !beam.empty();
  const bool ff_ok = !ff_picks.empty();
  if (!beam_ok && !ff_ok) {
    delta.clear();
    return {};
  }
  const double ff_energy =
      ff_ok ? assignment_energy(candidates, ff_picks) : std::numeric_limits<double>::infinity();
  if (beam_ok && beam.front().energy <= ff_energy) {
    delta = std::move(beam.front().delta);
    return std::move(beam.front().picks);
  }
  delta = std::move(ff_delta);
  return ff_picks;
}

template <typename AssignFn>
std::vector<int> choose_by_donor(const Fleet& fleet, const CandidateSet& candidates,
                                 const PlannerConfig& config, AssignFn assign) {
  TentativeLoads loads(fleet);
  std::vector<int> chosen;
  Delta delta;
  for (const DonorCandidates& donor : candidates.donors) {
    std::vector<int> picks = assign(fleet, candidates, config, donor, loads, delta);
    if (picks.empty()) continue;
    loads.fold(delta);
    chosen.insert(chosen.end(), picks.begin(), picks.end());
  }
  return chosen;
}

}  // namespace

std::vector<int> FirstFitStrategy::choose(const Fleet& fleet, const CandidateSet& candidates,
                                          const PlannerConfig& config) const {
  return choose_by_donor(fleet, candidates, config, assign_first_fit);
}

std::vector<int> BeamSearchStrategy::choose(const Fleet& fleet, const CandidateSet& candidates,
                                            const PlannerConfig& config) const {
  return choose_by_donor(fleet, candidates, config, assign_beam);
}

}  // namespace wavm3::plan
