// Planning-side fleet model: thousands of hosts and tens of thousands
// of VMs as flat index-addressed structs — the scale at which the
// datacenter planner works. The fleet is a *snapshot for planning*
// (capacities, placements, sampled utilisation histories), not a live
// simulation: dcsim's DataCenterSimulation owns VM objects and events;
// Fleet owns only the numbers the planner scores on, so a 2k-host /
// 20k-VM wave fits comfortably in cache-friendly vectors.
//
// Population paths: synthetic() (seeded scenario generator with
// periodic and aperiodic workloads), from_config() (bridge from a
// dcsim::DcSimConfig, sampling each VM's LoadProfile into a history),
// and from_csv() (external host/VM spec files).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "cloud/host.hpp"
#include "dcsim/simulation.hpp"

namespace wavm3::plan {

/// Sampled per-VM utilisation history: the inputs of cycle detection
/// and of the planner's windowed load estimates. Times are absolute
/// simulation seconds, shared across cpu and dirty.
struct VmHistory {
  std::vector<double> t;      ///< sample times, non-decreasing
  std::vector<double> cpu;    ///< CPU(v,t) demand, vCPUs
  std::vector<double> dirty;  ///< page-dirtying rate, pages/s

  bool empty() const { return t.empty(); }

  /// Mean CPU demand over [t0, t1] (stats::window_mean; clamped to the
  /// sampled extent).
  double mean_cpu(double t0, double t1) const;
  /// Mean dirtying rate over [t0, t1].
  double mean_dirty(double t0, double t1) const;
};

/// One VM as the planner sees it.
struct FleetVm {
  std::string id;
  int host = -1;                       ///< index into Fleet hosts
  double vcpus = 1.0;
  double ram_bytes = 0.0;
  std::uint64_t working_set_pages = 0;
  double cpu_now = 0.0;                ///< trailing-window mean demand, vCPUs
  double dirty_now = 0.0;              ///< trailing-window mean dirtying, pages/s
  VmHistory history;
};

/// One host as the planner sees it. Capacities come from the shared
/// cloud::HostSpec (including the fleet fields: nic_rate,
/// max_concurrent_migrations, group).
struct FleetHost {
  cloud::HostSpec spec;
  bool powered_on = true;
  std::vector<int> vms;                ///< indices of placed VMs
  double cpu_load = 0.0;               ///< sum of placed VMs' cpu_now
  double ram_committed = 0.0;          ///< sum of placed VMs' ram_bytes
};

/// Options for the synthetic fleet generator.
struct SyntheticFleetOptions {
  double period_s = 7200.0;          ///< workload cycle of the periodic VMs
  double periodic_fraction = 0.7;    ///< share of VMs with cyclic load
  double history_s = 4.0 * 7200.0;   ///< sampled history span (>= 2 periods)
  double sample_period_s = 60.0;     ///< history resolution
  int host_vcpus = 32;
  double host_ram_gib = 32.0;
  int hosts_per_group = 16;          ///< rack size
  int max_concurrent_migrations = 1;
};

class Fleet {
 public:
  /// Adds a host; returns its index. Names must be unique.
  int add_host(cloud::HostSpec spec);

  /// Places a VM on host index `host`; returns the VM index.
  int add_vm(FleetVm vm, int host);

  std::size_t host_count() const { return hosts_.size(); }
  std::size_t vm_count() const { return vms_.size(); }
  const FleetHost& host(int h) const { return hosts_[static_cast<std::size_t>(h)]; }
  const FleetVm& vm(int v) const { return vms_[static_cast<std::size_t>(v)]; }
  std::span<const FleetHost> hosts() const { return hosts_; }
  std::span<const FleetVm> vms() const { return vms_; }

  /// Host index by name, or -1.
  int host_index(const std::string& name) const;

  /// CPU utilisation fraction of a host in [0, 1] (demand-capped).
  double host_utilisation(int h) const;

  /// Whether `vm` fits on host `h` by RAM (placement constraint).
  bool fits(int h, const FleetVm& vm) const;

  /// Commits a move: reparents VM `v` onto host `to`, updating both
  /// hosts' load/RAM accounting. The planner calls this when a wave is
  /// committed.
  void move_vm(int v, int to);

  void set_powered(int h, bool on);

  /// Refreshes every VM's cpu_now/dirty_now to the trailing-window
  /// means ending at `now`, and host loads to match. Call before
  /// planning a wave at a new time.
  void refresh_loads(double now, double window_s);

  /// Seeded scenario generator: `periodic_fraction` of the VMs get
  /// cyclic (diurnal-shaped, period opts.period_s) CPU + dirtying
  /// histories with random phases, the rest aperiodic noise. Hosts are
  /// grouped into racks of opts.hosts_per_group.
  static Fleet synthetic(int n_hosts, int n_vms, std::uint64_t seed,
                         const SyntheticFleetOptions& opts = {});

  /// Bridge from a dcsim scenario: samples each placement's
  /// LoadProfile over [now - history_s, now] at sample_period_s.
  static Fleet from_config(const dcsim::DcSimConfig& cfg, double now, double history_s,
                           double sample_period_s);

  /// Loads a fleet from CSV specs.
  /// Hosts header: name,vcpus,ram_gib,nic_gbit,group,max_migrations
  /// VMs header:   id,host,vcpus,ram_gib,cpu_vcpus,dirty_pages_per_s,working_set_pages
  /// Throws util::ContractError on malformed input.
  static Fleet from_csv(std::istream& hosts_csv, std::istream& vms_csv);

 private:
  std::vector<FleetHost> hosts_;
  std::vector<FleetVm> vms_;
  std::unordered_map<std::string, int> host_by_name_;
};

}  // namespace wavm3::plan
