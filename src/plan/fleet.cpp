#include "plan/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <istream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "stats/integrate.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace wavm3::plan {

double VmHistory::mean_cpu(double t0, double t1) const {
  if (t.empty()) return 0.0;
  return stats::window_mean(t, cpu, t0, t1);
}

double VmHistory::mean_dirty(double t0, double t1) const {
  if (t.empty()) return 0.0;
  return stats::window_mean(t, dirty, t0, t1);
}

int Fleet::add_host(cloud::HostSpec spec) {
  WAVM3_REQUIRE(!spec.name.empty(), "fleet host needs a name");
  WAVM3_REQUIRE(host_index(spec.name) < 0, "duplicate fleet host: " + spec.name);
  FleetHost h;
  h.spec = std::move(spec);
  hosts_.push_back(std::move(h));
  const int index = static_cast<int>(hosts_.size()) - 1;
  host_by_name_[hosts_.back().spec.name] = index;
  return index;
}

int Fleet::add_vm(FleetVm vm, int host) {
  WAVM3_REQUIRE(host >= 0 && host < static_cast<int>(hosts_.size()),
                "add_vm: host index out of range");
  FleetHost& h = hosts_[static_cast<std::size_t>(host)];
  WAVM3_REQUIRE(h.ram_committed + vm.ram_bytes <= h.spec.ram_bytes,
                "add_vm: VM does not fit in host RAM: " + vm.id);
  vm.host = host;
  h.ram_committed += vm.ram_bytes;
  h.cpu_load += vm.cpu_now;
  const int index = static_cast<int>(vms_.size());
  h.vms.push_back(index);
  vms_.push_back(std::move(vm));
  return index;
}

int Fleet::host_index(const std::string& name) const {
  const auto it = host_by_name_.find(name);
  return it == host_by_name_.end() ? -1 : it->second;
}

double Fleet::host_utilisation(int h) const {
  const FleetHost& host = hosts_[static_cast<std::size_t>(h)];
  const double cap = static_cast<double>(host.spec.vcpus);
  if (cap <= 0.0) return 0.0;
  return std::min(1.0, host.cpu_load / cap);
}

bool Fleet::fits(int h, const FleetVm& vm) const {
  const FleetHost& host = hosts_[static_cast<std::size_t>(h)];
  return host.ram_committed + vm.ram_bytes <= host.spec.ram_bytes;
}

void Fleet::move_vm(int v, int to) {
  WAVM3_REQUIRE(v >= 0 && v < static_cast<int>(vms_.size()), "move_vm: VM index out of range");
  WAVM3_REQUIRE(to >= 0 && to < static_cast<int>(hosts_.size()),
                "move_vm: host index out of range");
  FleetVm& vm = vms_[static_cast<std::size_t>(v)];
  if (vm.host == to) return;
  FleetHost& src = hosts_[static_cast<std::size_t>(vm.host)];
  FleetHost& dst = hosts_[static_cast<std::size_t>(to)];
  WAVM3_REQUIRE(dst.ram_committed + vm.ram_bytes <= dst.spec.ram_bytes,
                "move_vm: VM does not fit on target: " + vm.id);
  src.vms.erase(std::find(src.vms.begin(), src.vms.end(), v));
  src.ram_committed -= vm.ram_bytes;
  src.cpu_load -= vm.cpu_now;
  dst.vms.push_back(v);
  dst.ram_committed += vm.ram_bytes;
  dst.cpu_load += vm.cpu_now;
  vm.host = to;
}

void Fleet::set_powered(int h, bool on) {
  hosts_[static_cast<std::size_t>(h)].powered_on = on;
}

void Fleet::refresh_loads(double now, double window_s) {
  for (FleetHost& h : hosts_) h.cpu_load = 0.0;
  for (FleetVm& vm : vms_) {
    if (!vm.history.empty()) {
      vm.cpu_now = vm.history.mean_cpu(now - window_s, now);
      vm.dirty_now = vm.history.mean_dirty(now - window_s, now);
    }
    hosts_[static_cast<std::size_t>(vm.host)].cpu_load += vm.cpu_now;
  }
}

Fleet Fleet::synthetic(int n_hosts, int n_vms, std::uint64_t seed,
                       const SyntheticFleetOptions& opts) {
  WAVM3_REQUIRE(n_hosts >= 2 && n_vms >= 1, "need >= 2 hosts and >= 1 VM");
  WAVM3_REQUIRE(opts.period_s > 0.0 && opts.sample_period_s > 0.0,
                "synthetic fleet needs positive periods");
  util::RngFactory rng_factory(seed);
  util::RngStream rng = rng_factory.stream("plan-fleet");

  Fleet fleet;
  for (int i = 0; i < n_hosts; ++i) {
    cloud::HostSpec h;
    h.name = util::format("host%04d", i);
    h.vcpus = opts.host_vcpus;
    h.ram_bytes = util::gib(opts.host_ram_gib);
    h.nic_rate = util::gbit_per_s(1);
    h.max_concurrent_migrations = opts.max_concurrent_migrations;
    h.group = util::format("rack%03d", i / std::max(1, opts.hosts_per_group));
    fleet.add_host(std::move(h));
  }

  const int steps = static_cast<int>(opts.history_s / opts.sample_period_s);
  for (int i = 0; i < n_vms; ++i) {
    FleetVm vm;
    vm.id = util::format("vm%05d", i);
    vm.vcpus = static_cast<double>(rng.uniform_int(1, 4));
    vm.ram_bytes = util::gib(static_cast<double>(rng.uniform_int(1, 4)));
    const double dirty_full = rng.uniform(500.0, 20000.0);
    vm.working_set_pages = static_cast<std::uint64_t>(
        rng.uniform(0.05, 0.5) * vm.ram_bytes / static_cast<double>(util::kPageSize));

    const bool periodic = rng.chance(opts.periodic_fraction);
    const double low = rng.uniform(0.05, 0.2);
    const double high = rng.uniform(0.5, 1.0);
    const double phase = rng.uniform(0.0, opts.period_s);
    const double flat = rng.uniform(0.1, 0.6);

    vm.history.t.reserve(static_cast<std::size_t>(steps) + 1);
    for (int s = 0; s <= steps; ++s) {
      const double t = s * opts.sample_period_s;
      double frac;
      if (periodic) {
        const double omega = 2.0 * M_PI * (t + phase) / opts.period_s;
        frac = low + (high - low) * 0.5 * (1.0 - std::cos(omega));
      } else {
        // Aperiodic: bounded jitter around a flat level.
        frac = std::clamp(flat + rng.uniform(-0.1, 0.1), 0.0, 1.0);
      }
      vm.history.t.push_back(t);
      vm.history.cpu.push_back(frac * vm.vcpus);
      vm.history.dirty.push_back(frac * dirty_full);
    }

    // Spread VMs round-robin; fits() is guaranteed by construction for
    // the default 32 GiB hosts, but fall forward to the next host with
    // room when a custom option set packs tighter.
    int host = i % n_hosts;
    for (int probe = 0; probe < n_hosts && !fleet.fits(host, vm); ++probe) {
      host = (host + 1) % n_hosts;
    }
    WAVM3_REQUIRE(fleet.fits(host, vm), "synthetic fleet: no host fits " + vm.id);
    fleet.add_vm(std::move(vm), host);
  }
  fleet.refresh_loads(opts.history_s, opts.history_s);
  return fleet;
}

Fleet Fleet::from_config(const dcsim::DcSimConfig& cfg, double now, double history_s,
                         double sample_period_s) {
  WAVM3_REQUIRE(history_s > 0.0 && sample_period_s > 0.0,
                "from_config needs positive history and sample period");
  Fleet fleet;
  for (const cloud::HostSpec& spec : cfg.hosts) fleet.add_host(spec);

  const double t0 = std::max(0.0, now - history_s);
  for (const dcsim::VmPlacement& p : cfg.vms) {
    const int host = fleet.host_index(p.host);
    WAVM3_REQUIRE(host >= 0, "from_config: placement names unknown host: " + p.host);
    FleetVm vm;
    vm.id = p.vm_id;
    vm.vcpus = static_cast<double>(p.workload.vcpus);
    vm.ram_bytes = p.spec.ram_bytes;
    vm.working_set_pages = p.workload.working_set_pages;
    for (double t = t0; t <= now + 1e-9; t += sample_period_s) {
      const double frac = p.workload.profile.fraction_at(t);
      vm.history.t.push_back(t);
      vm.history.cpu.push_back(frac * vm.vcpus);
      vm.history.dirty.push_back(frac * p.workload.dirty_pages_per_s_full);
    }
    fleet.add_vm(std::move(vm), host);
  }
  fleet.refresh_loads(now, history_s);
  return fleet;
}

namespace {

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::stringstream ss(line);
  while (std::getline(ss, field, ',')) fields.push_back(field);
  return fields;
}

double parse_double(const std::string& s, const char* what) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  WAVM3_REQUIRE(end != s.c_str() && *end == '\0' && std::isfinite(v),
                std::string("fleet CSV: bad ") + what + ": " + s);
  return v;
}

}  // namespace

Fleet Fleet::from_csv(std::istream& hosts_csv, std::istream& vms_csv) {
  Fleet fleet;
  std::string line;

  WAVM3_REQUIRE(static_cast<bool>(std::getline(hosts_csv, line)), "fleet CSV: empty host file");
  WAVM3_REQUIRE(line == "name,vcpus,ram_gib,nic_gbit,group,max_migrations",
                "fleet CSV: unexpected host header: " + line);
  while (std::getline(hosts_csv, line)) {
    if (line.empty()) continue;
    const auto f = split_csv_line(line);
    WAVM3_REQUIRE(f.size() == 6, "fleet CSV: host row needs 6 fields: " + line);
    cloud::HostSpec h;
    h.name = f[0];
    h.vcpus = static_cast<int>(parse_double(f[1], "vcpus"));
    h.ram_bytes = util::gib(parse_double(f[2], "ram_gib"));
    h.nic_rate = util::gbit_per_s(parse_double(f[3], "nic_gbit"));
    h.group = f[4];
    h.max_concurrent_migrations = static_cast<int>(parse_double(f[5], "max_migrations"));
    WAVM3_REQUIRE(h.vcpus > 0, "fleet CSV: host vcpus must be positive: " + line);
    WAVM3_REQUIRE(h.ram_bytes > 0.0, "fleet CSV: host ram_gib must be positive: " + line);
    WAVM3_REQUIRE(h.nic_rate >= 0.0, "fleet CSV: host nic_gbit must be non-negative: " + line);
    WAVM3_REQUIRE(h.max_concurrent_migrations >= 0,
                  "fleet CSV: host max_migrations must be non-negative: " + line);
    fleet.add_host(std::move(h));
  }

  WAVM3_REQUIRE(static_cast<bool>(std::getline(vms_csv, line)), "fleet CSV: empty VM file");
  WAVM3_REQUIRE(line == "id,host,vcpus,ram_gib,cpu_vcpus,dirty_pages_per_s,working_set_pages",
                "fleet CSV: unexpected VM header: " + line);
  std::unordered_set<std::string> seen_vm_ids;
  while (std::getline(vms_csv, line)) {
    if (line.empty()) continue;
    const auto f = split_csv_line(line);
    WAVM3_REQUIRE(f.size() == 7, "fleet CSV: VM row needs 7 fields: " + line);
    FleetVm vm;
    vm.id = f[0];
    WAVM3_REQUIRE(!vm.id.empty(), "fleet CSV: VM id must not be empty: " + line);
    WAVM3_REQUIRE(seen_vm_ids.insert(vm.id).second,
                  "fleet CSV: duplicate VM id: " + vm.id);
    const int host = fleet.host_index(f[1]);
    WAVM3_REQUIRE(host >= 0, "fleet CSV: VM on unknown host: " + line);
    vm.vcpus = parse_double(f[2], "vcpus");
    vm.ram_bytes = util::gib(parse_double(f[3], "ram_gib"));
    vm.cpu_now = parse_double(f[4], "cpu_vcpus");
    vm.dirty_now = parse_double(f[5], "dirty_pages_per_s");
    const double working_set = parse_double(f[6], "working_set_pages");
    WAVM3_REQUIRE(vm.vcpus > 0.0, "fleet CSV: VM vcpus must be positive: " + line);
    WAVM3_REQUIRE(vm.ram_bytes >= 0.0, "fleet CSV: VM ram_gib must be non-negative: " + line);
    WAVM3_REQUIRE(vm.cpu_now >= 0.0, "fleet CSV: VM cpu_vcpus must be non-negative: " + line);
    WAVM3_REQUIRE(vm.dirty_now >= 0.0,
                  "fleet CSV: VM dirty_pages_per_s must be non-negative: " + line);
    WAVM3_REQUIRE(working_set >= 0.0,
                  "fleet CSV: VM working_set_pages must be non-negative: " + line);
    vm.working_set_pages = static_cast<std::uint64_t>(working_set);
    fleet.add_vm(std::move(vm), host);
  }
  return fleet;
}

}  // namespace wavm3::plan
