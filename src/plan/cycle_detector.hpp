// Workload-cycle detection over per-VM utilisation histories, after
// Baruchi et al., "Exploiting Workload Cycles for Orchestration of VM
// Live Migrations": many workloads repeat with a stable period
// (diurnal load, batch windows), and migrating during the low-dirtying
// part of the cycle shrinks the pre-copy traffic — and with it the
// migration's energy.
//
// The detector resamples an (irregularly) sampled history onto a
// uniform grid, computes the normalized autocorrelation over a lag
// window, and takes the fundamental period from the strongest early
// ACF peak. The low-dirtying window is then located by folding the
// signal at the detected period and minimising a circular moving
// average — the planner schedules migration start times into the next
// occurrence of that window.
#pragma once

#include <cstddef>
#include <span>

namespace wavm3::plan {

struct CycleDetectorConfig {
  /// Periods outside [min_period_s, max_period_s] are not searched.
  /// 0 means "derive from the data": min = 4 grid steps, max = half
  /// the history span (shorter histories cannot support a detection).
  double min_period_s = 0.0;
  double max_period_s = 0.0;
  /// Minimum normalized ACF peak (in [-1, 1]) to call a trace
  /// periodic. Flat and white-noise traces stay well below this.
  double min_confidence = 0.35;
  /// Uniform resampling resolution of the analysis grid.
  std::size_t resample_points = 256;
  /// Length of the reported low window as a fraction of the period.
  double low_window_fraction = 0.25;
};

/// What analyze() found in one trace.
struct CycleEstimate {
  bool periodic = false;
  double period_s = 0.0;     ///< fundamental period, seconds
  double confidence = 0.0;   ///< ACF peak value, [-1, 1]
  /// Absolute time (same axis as the analyzed history) of one start of
  /// the low-signal window; later occurrences repeat every period_s.
  double low_anchor_s = 0.0;
  double low_duration_s = 0.0;
  double low_mean = 0.0;     ///< mean signal inside the low window
  double overall_mean = 0.0; ///< mean signal over the history
};

class CycleDetector {
 public:
  explicit CycleDetector(CycleDetectorConfig config = {});

  const CycleDetectorConfig& config() const { return config_; }

  /// Analyzes one sampled signal y(t) (typically a VM's dirtying-rate
  /// history; times non-decreasing). Returns a non-periodic estimate
  /// (with overall_mean still filled) when the trace is too short,
  /// flat, or shows no autocorrelation peak above min_confidence.
  CycleEstimate analyze(std::span<const double> t, std::span<const double> y) const;

  /// First start time >= now of the low window. Requires a periodic
  /// estimate.
  static double next_low_window_start(const CycleEstimate& e, double now);

 private:
  CycleDetectorConfig config_;
};

}  // namespace wavm3::plan
