#include "plan/cycle_detector.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/integrate.hpp"
#include "util/error.hpp"

namespace wavm3::plan {

CycleDetector::CycleDetector(CycleDetectorConfig config) : config_(config) {
  WAVM3_REQUIRE(config_.resample_points >= 16, "cycle detector needs >= 16 grid points");
  WAVM3_REQUIRE(config_.min_confidence > 0.0 && config_.min_confidence < 1.0,
                "min_confidence must be in (0, 1)");
  WAVM3_REQUIRE(config_.low_window_fraction > 0.0 && config_.low_window_fraction <= 0.5,
                "low_window_fraction must be in (0, 0.5]");
}

CycleEstimate CycleDetector::analyze(std::span<const double> t,
                                     std::span<const double> y) const {
  WAVM3_REQUIRE(t.size() == y.size(), "cycle detector: time/value size mismatch");
  CycleEstimate est;
  if (t.size() < 8) return est;
  const double span = t.back() - t.front();
  if (span <= 0.0) return est;

  // Uniform analysis grid via the shared interpolation kernel.
  const std::size_t n = config_.resample_points;
  const double dt = span / static_cast<double>(n - 1);
  std::vector<double> x(n);
  double mean = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = stats::interp_at(t, y, t.front() + static_cast<double>(i) * dt);
    mean += x[i];
  }
  mean /= static_cast<double>(n);
  est.overall_mean = mean;

  double var = 0.0;
  for (double& v : x) {
    v -= mean;
    var += v * v;
  }
  var /= static_cast<double>(n);
  // Flat trace: no cycle to exploit (avoid 0/0 in the normalized ACF).
  if (var <= 1e-12 * std::max(1.0, mean * mean)) return est;

  // Lag window.
  const double min_period = config_.min_period_s > 0.0 ? config_.min_period_s : 4.0 * dt;
  const double max_period = config_.max_period_s > 0.0
                                ? std::min(config_.max_period_s, 0.5 * span)
                                : 0.5 * span;
  const std::size_t lag_lo =
      std::max<std::size_t>(2, static_cast<std::size_t>(std::ceil(min_period / dt)));
  const std::size_t lag_hi =
      std::min(n / 2, static_cast<std::size_t>(std::floor(max_period / dt)));
  if (lag_lo >= lag_hi) return est;

  // Normalized autocorrelation over the lag window.
  std::vector<double> acf(lag_hi + 1, 0.0);
  for (std::size_t lag = lag_lo; lag <= lag_hi; ++lag) {
    double sum = 0.0;
    for (std::size_t i = 0; i + lag < n; ++i) sum += x[i] * x[i + lag];
    acf[lag] = sum / (static_cast<double>(n - lag) * var);
  }

  // The ACF of any smooth signal starts near 1, so the initial
  // positive lobe is not evidence of a period. Search only past the
  // first zero crossing: a genuinely periodic (mean-removed) signal
  // anti-correlates at half its period, so the crossing exists inside
  // the lag window whenever >= 2 cycles were observed. Trends and
  // slow drifts never cross — correctly read as aperiodic.
  std::size_t search_lo = lag_lo;
  while (search_lo <= lag_hi && acf[search_lo] > 0.0) ++search_lo;
  if (search_lo > lag_hi) return est;

  // Fundamental period: among local ACF maxima past the crossing and
  // above the confidence threshold, prefer the smallest lag whose peak
  // is within 10% of the strongest — a harmonic at 2T correlates as
  // well as T, but the earliest near-best peak is the fundamental.
  double best_peak = 0.0;
  for (std::size_t lag = search_lo; lag <= lag_hi; ++lag) {
    best_peak = std::max(best_peak, acf[lag]);
  }
  if (best_peak < config_.min_confidence) return est;

  std::size_t best_lag = 0;
  for (std::size_t lag = search_lo; lag <= lag_hi; ++lag) {
    const bool local_max = (lag == search_lo || acf[lag] >= acf[lag - 1]) &&
                           (lag == lag_hi || acf[lag] >= acf[lag + 1]);
    if (!local_max) continue;
    if (acf[lag] >= config_.min_confidence && acf[lag] >= 0.9 * best_peak) {
      best_lag = lag;
      break;
    }
  }
  if (best_lag == 0) return est;

  est.periodic = true;
  est.confidence = acf[best_lag];
  est.period_s = static_cast<double>(best_lag) * dt;

  // Low window: fold the (mean-restored) grid at the period and find
  // the circular offset minimising the moving average over the window
  // length. Bins inherit the grid resolution.
  const std::size_t bins = best_lag;
  std::vector<double> folded(bins, 0.0);
  std::vector<std::size_t> counts(bins, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t b = i % bins;
    folded[b] += x[i] + mean;
    ++counts[b];
  }
  for (std::size_t b = 0; b < bins; ++b) {
    folded[b] /= static_cast<double>(std::max<std::size_t>(1, counts[b]));
  }

  const std::size_t win =
      std::max<std::size_t>(1, static_cast<std::size_t>(std::round(
                                   config_.low_window_fraction * static_cast<double>(bins))));
  double best_sum = 0.0;
  std::size_t best_off = 0;
  for (std::size_t off = 0; off < bins; ++off) {
    double sum = 0.0;
    for (std::size_t k = 0; k < win; ++k) sum += folded[(off + k) % bins];
    if (off == 0 || sum < best_sum) {
      best_sum = sum;
      best_off = off;
    }
  }

  est.low_duration_s = static_cast<double>(win) * dt;
  est.low_mean = best_sum / static_cast<double>(win);
  est.low_anchor_s = t.front() + static_cast<double>(best_off) * dt;
  return est;
}

double CycleDetector::next_low_window_start(const CycleEstimate& e, double now) {
  WAVM3_REQUIRE(e.periodic && e.period_s > 0.0,
                "next_low_window_start needs a periodic estimate");
  if (now <= e.low_anchor_s) return e.low_anchor_s;
  const double periods = std::ceil((now - e.low_anchor_s) / e.period_s);
  return e.low_anchor_s + periods * e.period_s;
}

}  // namespace wavm3::plan
