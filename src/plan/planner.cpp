#include "plan/planner.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "plan/scoring.hpp"
#include "util/error.hpp"

namespace wavm3::plan {

namespace {

/// The wave's metric family, labeled by strategy so first-fit and beam
/// runs stay distinguishable in one registry.
struct PlanMetrics {
  obs::Counter& waves;
  obs::Counter& candidates;
  obs::Counter& batch_rows;
  obs::Counter& moves;
  obs::Counter& donors_vacated;
  obs::Counter& cycle_aligned;
  obs::Histogram& wave_seconds;
  obs::Histogram& score_seconds;
  obs::Gauge& last_wave_energy;
};

PlanMetrics plan_metrics(const char* strategy) {
  obs::MetricRegistry& r = obs::registry();
  const obs::Labels labels = {{"strategy", strategy}};
  return PlanMetrics{
      r.counter("plan_waves_total", "Consolidation waves planned", labels),
      r.counter("plan_candidates_scored_total", "Candidate (VM, target) moves priced", labels),
      r.counter("plan_batch_rows_total", "FeatureBatch rows evaluated by wave scoring", labels),
      r.counter("plan_moves_committed_total", "Migrations emitted by wave plans", labels),
      r.counter("plan_donors_vacated_total", "Donor hosts fully vacated by wave plans", labels),
      r.counter("plan_cycle_aligned_moves_total",
                "Moves scheduled into a workload-cycle low-dirtying window", labels),
      r.exponential_histogram("plan_wave_seconds", "Wall time of one planning wave", 1e-4, 2.0,
                              22, labels),
      r.exponential_histogram("plan_score_seconds",
                              "Wall time inside batched candidate scoring", 1e-5, 2.0, 22,
                              labels),
      r.gauge("plan_last_wave_energy_joules",
              "Predicted migration energy of the last planned wave", labels),
  };
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Per-host scheduled migration intervals; feasibility is conservative
/// (an interval overlapping the window anywhere occupies one slot for
/// the whole window).
struct BusyIntervals {
  std::unordered_map<int, std::vector<std::pair<double, double>>> by_host;

  int overlap(int host, double t0, double t1) const {
    const auto it = by_host.find(host);
    if (it == by_host.end()) return 0;
    int n = 0;
    for (const auto& [s, e] : it->second) {
      if (s < t1 && e > t0) ++n;
    }
    return n;
  }

  void add(int host, double t0, double t1) { by_host[host].emplace_back(t0, t1); }
};

/// Earliest start >= t_min at which both endpoints have a free
/// migration slot for `duration`. Candidate instants are t_min and the
/// ends of already-scheduled intervals; past the last end both hosts
/// are idle, so the scan always succeeds.
double earliest_feasible_start(const Fleet& fleet, const BusyIntervals& busy, int source,
                               int target, double duration, double t_min) {
  const int cap_src = std::max(1, fleet.host(source).spec.max_concurrent_migrations);
  const int cap_dst = std::max(1, fleet.host(target).spec.max_concurrent_migrations);
  std::vector<double> starts{t_min};
  for (const int h : {source, target}) {
    const auto it = busy.by_host.find(h);
    if (it == busy.by_host.end()) continue;
    for (const auto& [s, e] : it->second) {
      if (e > t_min) starts.push_back(e);
    }
  }
  std::sort(starts.begin(), starts.end());
  for (const double t : starts) {
    if (busy.overlap(source, t, t + duration) < cap_src &&
        busy.overlap(target, t, t + duration) < cap_dst) {
      return t;
    }
  }
  return starts.back();
}

}  // namespace

MigrationPlanner::MigrationPlanner(const models::EnergyModel& model, PlannerConfig config)
    : model_(&model), config_(std::move(config)) {
  WAVM3_REQUIRE(config_.candidate_targets > 0, "planner needs at least one candidate target");
  WAVM3_REQUIRE(config_.load_window_s > 0.0 && config_.wave_horizon_s > 0.0,
                "planner windows must be positive");
}

WavePlan MigrationPlanner::plan_wave(Fleet& fleet, const PlacementStrategy& strategy,
                                     double now, bool commit) {
  const auto wall_start = std::chrono::steady_clock::now();
  WAVM3_OBS_SPAN(span, "plan", "wave");
  span.note("strategy", strategy.name());
  PlanMetrics metrics = plan_metrics(strategy.name());
  WavePlan plan;

  fleet.refresh_loads(now, config_.load_window_s);
  const auto count_overloaded = [&] {
    int n = 0;
    for (std::size_t h = 0; h < fleet.host_count(); ++h) {
      const int hi = static_cast<int>(h);
      if (fleet.host(hi).powered_on &&
          fleet.host_utilisation(hi) > config_.policy.overload_fraction) {
        ++n;
      }
    }
    return n;
  };
  plan.overloaded_hosts_before = count_overloaded();

  // Donors: powered, populated, below the underload threshold;
  // emptiest first so the cheapest vacates go first when capped.
  std::vector<int> donors;
  std::size_t powered = 0;
  for (std::size_t h = 0; h < fleet.host_count(); ++h) {
    const int hi = static_cast<int>(h);
    const FleetHost& host = fleet.host(hi);
    if (!host.powered_on) continue;
    ++powered;
    if (host.vms.empty()) continue;
    if (fleet.host_utilisation(hi) < config_.policy.underload_fraction) donors.push_back(hi);
  }
  std::sort(donors.begin(), donors.end(), [&](int a, int b) {
    const double ua = fleet.host_utilisation(a);
    const double ub = fleet.host_utilisation(b);
    return ua != ub ? ua < ub : a < b;
  });
  // At most half the powered fleet donates per wave: when (nearly)
  // every host is underloaded, the fuller half must stay as the
  // receiving side — rolling waves converge over repeated calls.
  if (donors.size() > powered / 2) donors.resize(powered / 2);
  if (config_.max_donors_per_wave > 0 &&
      donors.size() > static_cast<std::size_t>(config_.max_donors_per_wave)) {
    donors.resize(static_cast<std::size_t>(config_.max_donors_per_wave));
  }
  plan.donors_considered = static_cast<int>(donors.size());
  const std::unordered_set<int> donor_set(donors.begin(), donors.end());

  // Receiver orderings: natural (host-index) order for first-fit
  // semantics, per-group lists for rack-local targets, and a
  // most-loaded ordering for tight packing.
  std::vector<int> receivers;
  std::unordered_map<std::string, std::vector<int>> receivers_by_group;
  for (std::size_t h = 0; h < fleet.host_count(); ++h) {
    const int hi = static_cast<int>(h);
    if (!fleet.host(hi).powered_on || donor_set.count(hi) != 0) continue;
    receivers.push_back(hi);
    receivers_by_group[fleet.host(hi).spec.group].push_back(hi);
  }
  std::vector<int> receivers_by_load = receivers;
  std::sort(receivers_by_load.begin(), receivers_by_load.end(), [&](int a, int b) {
    const double ua = fleet.host_utilisation(a);
    const double ub = fleet.host_utilisation(b);
    return ua != ub ? ua > ub : a < b;
  });

  // Workload cycles of the donor VMs' dirtying histories.
  std::unordered_map<int, CycleEstimate> cycles;
  if (config_.cycle_aware) {
    WAVM3_OBS_SPAN(cycle_span, "plan", "cycle_detect");
    const CycleDetector detector(config_.cycles);
    std::size_t analyzed = 0;
    for (const int h : donors) {
      for (const int v : fleet.host(h).vms) {
        const VmHistory& hist = fleet.vm(v).history;
        if (hist.empty()) continue;
        ++analyzed;
        CycleEstimate estimate = detector.analyze(hist.t, hist.dirty);
        if (estimate.periodic) cycles.emplace(v, estimate);
      }
    }
    cycle_span.arg("traces", static_cast<double>(analyzed));
    cycle_span.arg("periodic", static_cast<double>(cycles.size()));
  }

  // Candidate generation: per donor VM, up to candidate_targets
  // destinations drawn from the three orderings (deduplicated), each
  // expanded into a blind — and for periodic VMs an aligned — scenario.
  CandidateSet candidates;
  std::vector<core::MigrationScenario> scenarios;
  struct PendingVariant {
    int move = -1;
    bool aligned = false;
  };
  std::vector<PendingVariant> pending;

  const double inf = std::numeric_limits<double>::infinity();
  const auto nic_payload = [&](double nic_rate) {
    return nic_rate > 0.0 ? nic_rate * config_.nic_protocol_efficiency : inf;
  };
  const auto payload_rate = [&](const cloud::HostSpec& src, const cloud::HostSpec& dst) {
    const double group_rate = src.group == dst.group ? config_.intra_group_payload_rate
                                                     : config_.inter_group_payload_rate;
    return std::min({group_rate, nic_payload(src.nic_rate), nic_payload(dst.nic_rate)});
  };
  const auto receiver_ok = [&](int h, const FleetVm& vm) {
    if (!fleet.fits(h, vm)) return false;
    const FleetHost& host = fleet.host(h);
    const double capacity = static_cast<double>(host.spec.vcpus);
    return host.cpu_load + vm.cpu_now <= config_.policy.overload_fraction * capacity;
  };

  const int k_total = config_.candidate_targets;
  const int k_ff = std::max(1, k_total / 3);
  const int k_group = std::max(1, k_total / 3);

  for (const int donor_host : donors) {
    DonorCandidates donor;
    donor.host = donor_host;
    std::vector<int> donor_vms(fleet.host(donor_host).vms);
    // First-fit-decreasing order: big RAM first.
    std::sort(donor_vms.begin(), donor_vms.end(), [&](int a, int b) {
      const double ra = fleet.vm(a).ram_bytes;
      const double rb = fleet.vm(b).ram_bytes;
      return ra != rb ? ra > rb : a < b;
    });

    for (const int v : donor_vms) {
      const FleetVm& vm = fleet.vm(v);
      std::vector<int> targets;
      std::unordered_set<int> seen;
      const auto take = [&](const std::vector<int>& order, int limit) {
        int taken = 0;
        for (const int h : order) {
          if (taken >= limit || static_cast<int>(targets.size()) >= k_total) break;
          if (h == donor_host || seen.count(h) != 0 || !receiver_ok(h, vm)) continue;
          seen.insert(h);
          targets.push_back(h);
          ++taken;
        }
      };
      take(receivers, k_ff);
      const auto group_it = receivers_by_group.find(fleet.host(donor_host).spec.group);
      if (group_it != receivers_by_group.end()) take(group_it->second, k_group);
      take(receivers_by_load, k_total - static_cast<int>(targets.size()));

      VmCandidates vc;
      vc.vm = v;
      vc.begin = static_cast<int>(candidates.moves.size());
      const auto cycle_it = cycles.find(v);
      for (const int target : targets) {
        ScoredMove move;
        move.vm = v;
        move.source = donor_host;
        move.target = target;

        core::MigrationScenario sc;
        sc.type = config_.policy.migration_type;
        sc.vm_mem_bytes = vm.ram_bytes;
        sc.vm_cpu_vcpus = vm.cpu_now;
        sc.vm_dirty_pages_per_s = vm.dirty_now;
        sc.vm_working_set_pages = static_cast<double>(vm.working_set_pages);
        sc.source_cpu_load = std::max(0.0, fleet.host(donor_host).cpu_load - vm.cpu_now);
        sc.source_cpu_capacity = static_cast<double>(fleet.host(donor_host).spec.vcpus);
        sc.target_cpu_load = fleet.host(target).cpu_load;
        sc.target_cpu_capacity = static_cast<double>(fleet.host(target).spec.vcpus);
        sc.link_payload_rate =
            payload_rate(fleet.host(donor_host).spec, fleet.host(target).spec);
        sc.migration = config_.migration;
        sc.bandwidth = config_.bandwidth;
        move.blind.scenario = sc;

        if (cycle_it != cycles.end()) {
          move.has_aligned = true;
          move.cycle = cycle_it->second;
          // Same move priced at the low-window dirtying rate; the CPU
          // signature is kept (conservative — only the dirtying
          // benefit of the window is claimed).
          core::MigrationScenario aligned = sc;
          aligned.vm_dirty_pages_per_s = move.cycle.low_mean;
          move.aligned.scenario = aligned;
        }

        const int index = static_cast<int>(candidates.moves.size());
        scenarios.push_back(move.blind.scenario);
        pending.push_back({index, false});
        if (move.has_aligned) {
          scenarios.push_back(move.aligned.scenario);
          pending.push_back({index, true});
        }
        candidates.moves.push_back(std::move(move));
      }
      vc.end = static_cast<int>(candidates.moves.size());
      if (vc.end > vc.begin) donor.vms.push_back(vc);
    }

    // All-or-nothing donors: a VM with no candidates sinks the donor.
    if (donor.vms.size() == fleet.host(donor_host).vms.size()) {
      candidates.donors.push_back(std::move(donor));
    }
  }
  plan.candidates_scored = candidates.moves.size();

  // Price every variant in one batched pass.
  {
    WAVM3_OBS_SPAN(score_span, "plan", "score_batch");
    const auto score_start = std::chrono::steady_clock::now();
    std::vector<core::MigrationForecast> forecasts;
    plan.batch_rows = score_batch(*model_, scenarios, forecasts);
    for (std::size_t i = 0; i < pending.size(); ++i) {
      ScoredMove& move = candidates.moves[static_cast<std::size_t>(pending[i].move)];
      MoveVariant& variant = pending[i].aligned ? move.aligned : move.blind;
      variant.forecast = forecasts[i];
      variant.energy_j = forecasts[i].total_energy();
    }
    plan.scoring_seconds = seconds_since(score_start);
    score_span.arg("scenarios", static_cast<double>(scenarios.size()));
    score_span.arg("rows", static_cast<double>(plan.batch_rows));
  }
  metrics.candidates.inc(plan.candidates_scored);
  metrics.batch_rows.inc(plan.batch_rows);
  metrics.score_seconds.observe(plan.scoring_seconds);

  // Target selection.
  std::vector<int> chosen;
  {
    WAVM3_OBS_SPAN(strategy_span, "plan", "strategy");
    chosen = strategy.choose(fleet, candidates, config_);
    strategy_span.arg("chosen", static_cast<double>(chosen.size()));
  }

  // Scheduling under per-host concurrency caps. Periodic VMs snap into
  // the next low-dirtying window inside the horizon when the aligned
  // variant is no dearer; everything else starts as early as slots
  // allow.
  {
    WAVM3_OBS_SPAN(schedule_span, "plan", "schedule");
    BusyIntervals busy;
    for (const int m : chosen) {
      const ScoredMove& move = candidates.moves[static_cast<std::size_t>(m)];
      bool aligned = false;
      double start = 0.0;
      if (move.has_aligned && move.aligned.energy_j <= move.blind.energy_j) {
        const double duration = move.aligned.forecast.times.me;
        for (double w = CycleDetector::next_low_window_start(move.cycle, now);
             w <= now + config_.wave_horizon_s; w += move.cycle.period_s) {
          const double t =
              earliest_feasible_start(fleet, busy, move.source, move.target, duration, w);
          if (t <= w + move.cycle.low_duration_s) {
            start = t;
            aligned = true;
            break;
          }
        }
      }
      if (!aligned) {
        start = earliest_feasible_start(fleet, busy, move.source, move.target,
                                        move.blind.forecast.times.me, now);
      }
      const MoveVariant& variant = aligned ? move.aligned : move.blind;
      const double duration = variant.forecast.times.me;
      busy.add(move.source, start, start + duration);
      busy.add(move.target, start, start + duration);

      ScheduledMove scheduled;
      scheduled.vm = move.vm;
      scheduled.source = move.source;
      scheduled.target = move.target;
      scheduled.start_s = start;
      scheduled.end_s = start + duration;
      scheduled.cycle_aligned = aligned;
      scheduled.energy_j = variant.energy_j;
      scheduled.downtime_s = variant.forecast.downtime;
      plan.moves.push_back(scheduled);

      plan.total_migration_energy_j += scheduled.energy_j;
      plan.total_downtime_s += scheduled.downtime_s;
      if (aligned) ++plan.moves_cycle_aligned;
    }
    std::sort(plan.moves.begin(), plan.moves.end(),
              [](const ScheduledMove& a, const ScheduledMove& b) {
                return a.start_s != b.start_s ? a.start_s < b.start_s : a.vm < b.vm;
              });
    schedule_span.arg("moves", static_cast<double>(plan.moves.size()));
    schedule_span.arg("aligned", static_cast<double>(plan.moves_cycle_aligned));
  }

  // Commit: placements move; donors are all-or-nothing, so every
  // source that appears in the schedule is fully vacated.
  {
    WAVM3_OBS_SPAN(commit_span, "plan", "commit");
    std::unordered_set<int> vacated;
    for (const ScheduledMove& scheduled : plan.moves) vacated.insert(scheduled.source);
    plan.donors_vacated = static_cast<int>(vacated.size());
    plan.steady_saving_j =
        plan.donors_vacated * config_.host_power.power(0.0) * config_.policy.horizon_seconds;
    if (commit) {
      for (const ScheduledMove& scheduled : plan.moves) {
        fleet.move_vm(scheduled.vm, scheduled.target);
      }
      for (const int h : vacated) fleet.set_powered(h, false);
      plan.overloaded_hosts_after = count_overloaded();
    } else {
      plan.overloaded_hosts_after = plan.overloaded_hosts_before;
    }
    commit_span.arg("vacated", static_cast<double>(plan.donors_vacated));
  }

  plan.wave_seconds = seconds_since(wall_start);
  metrics.waves.inc();
  metrics.moves.inc(plan.moves.size());
  metrics.donors_vacated.inc(static_cast<std::uint64_t>(plan.donors_vacated));
  metrics.cycle_aligned.inc(static_cast<std::uint64_t>(plan.moves_cycle_aligned));
  metrics.wave_seconds.observe(plan.wave_seconds);
  metrics.last_wave_energy.set(plan.total_migration_energy_j);
  span.arg("donors", static_cast<double>(plan.donors_considered));
  span.arg("moves", static_cast<double>(plan.moves.size()));
  span.arg("energy_j", plan.total_migration_energy_j);
  return plan;
}

}  // namespace wavm3::plan
