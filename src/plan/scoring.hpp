// Batched candidate pricing: thousands of hypothetical migrations per
// wave priced through models::FeatureBatch + EnergyModel::predict_batch
// (the columnar path), instead of thousands of scalar
// core::MigrationPlanner::forecast calls.
//
// Each scenario forecasts its timings in closed form, then expands to
// two synthetic observations (source and target role) of six
// phase-boundary samples carrying core::representative_features'
// constant per-phase values. Under FeatureBatch's kTotal weighting the
// per-phase trapezoid integrals of such an observation are exactly
// (value x phase duration), so one matrix-vector product per
// (type, role) slice reproduces core::attach_energy's per-phase
// power x duration sums up to floating-point reassociation —
// score_batch and MigrationPlanner::forecast agree to relative
// machine precision (plan_test pins this at 1e-9).
#pragma once

#include <span>
#include <vector>

#include "core/planner.hpp"
#include "models/energy_model.hpp"

namespace wavm3::plan {

/// Forecasts timings for every scenario and fills the energy fields
/// through one batched prediction pass. `out` is resized to
/// scenarios.size(). Returns the number of batch rows evaluated
/// (two per scenario).
std::size_t score_batch(const models::EnergyModel& model,
                        std::span<const core::MigrationScenario> scenarios,
                        std::vector<core::MigrationForecast>& out);

}  // namespace wavm3::plan
