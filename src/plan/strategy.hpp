// The two bundled placement strategies:
//
//   FirstFitStrategy  — the naive baseline: for each donor VM take the
//     feasible candidate on the lowest-indexed host, energy-blind.
//     This is classic first-fit over the host list and the comparison
//     anchor of bench_plan.
//
//   BeamSearchStrategy — energy-aware: per donor, a beam over the
//     donor's VMs (first-fit-decreasing order) where each beam state
//     carries its tentative target loads and accumulated predicted
//     migration energy. The completed assignment with the lowest
//     energy wins; the first-fit assignment for the same donor is
//     always admitted as one more candidate, so beam search never
//     selects a worse-than-first-fit assignment (bench_plan's CI gate
//     relies on this invariant).
//
// Both strategies are all-or-nothing per donor: a donor whose VMs
// cannot all be placed contributes no moves (a partially vacated host
// saves no energy), and both track tentative RAM/CPU deltas across
// donors so a wave's combined selection stays feasible.
#pragma once

#include "plan/planner.hpp"

namespace wavm3::plan {

class FirstFitStrategy final : public PlacementStrategy {
 public:
  const char* name() const override { return "first_fit"; }
  std::vector<int> choose(const Fleet& fleet, const CandidateSet& candidates,
                          const PlannerConfig& config) const override;
};

class BeamSearchStrategy final : public PlacementStrategy {
 public:
  const char* name() const override { return "beam"; }
  std::vector<int> choose(const Fleet& fleet, const CandidateSet& candidates,
                          const PlannerConfig& config) const override;
};

}  // namespace wavm3::plan
