// Datacenter-scale migration planner: rolling consolidation waves over
// a Fleet, with candidate moves priced in bulk through the batched
// scoring path (plan/scoring.hpp) and scheduled into workload-cycle
// low-dirtying windows (plan/cycle_detector.hpp).
//
// One wave:
//   1. refresh loads; pick donor hosts (underloaded, to be vacated)
//      and receivers;
//   2. detect workload cycles on every donor VM's dirtying history;
//   3. generate (VM, source, target) candidates and price them — each
//      in a cycle-blind variant (trailing-window dirtying) and, for
//      periodic VMs, a cycle-aligned variant (low-window dirtying) —
//      in one FeatureBatch + predict_batch pass;
//   4. a PlacementStrategy picks targets (naive first-fit, or
//      energy-aware beam search) donor by donor, all-or-nothing per
//      donor (partial vacates save no host energy);
//   5. moves are scheduled under per-host concurrency caps, snapping
//      periodic VMs' start times into their next low-dirtying window;
//   6. the wave is committed to the fleet (placements move, vacated
//      donors power off).
//
// Every phase runs under an obs:: span (category "plan") and feeds
// plan_* metrics, so planner runs are traceable like serve requests.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "consolidation/manager.hpp"
#include "core/planner.hpp"
#include "models/energy_model.hpp"
#include "plan/cycle_detector.hpp"
#include "plan/fleet.hpp"

namespace wavm3::plan {

struct PlannerConfig {
  /// Underload/overload thresholds, planning horizon, migration type —
  /// shared with the dcsim consolidation controller.
  consolidation::ConsolidationPolicy policy;
  /// Benefit side of the ledger (idle draw of a vacated host).
  consolidation::HostPowerEstimate host_power;
  migration::MigrationConfig migration;
  net::BandwidthModelParams bandwidth;

  /// Link payload rates (bytes/s, post-protocol-efficiency) within and
  /// across topology groups. Host NIC rates cap both.
  double intra_group_payload_rate = 117.5e6;
  double inter_group_payload_rate = 117.5e6;
  /// Payload fraction of a host NIC's wire rate (protocol efficiency).
  double nic_protocol_efficiency = 0.94;

  /// Candidate destinations considered per VM (split between
  /// first-fit-order, same-group, and most-loaded receivers).
  int candidate_targets = 12;
  /// Donors attempted per wave; 0 = every underloaded host.
  int max_donors_per_wave = 0;
  /// Trailing window for cpu_now/dirty_now load estimates.
  double load_window_s = 3600.0;
  /// Moves must start within [now, now + wave_horizon_s].
  double wave_horizon_s = 7200.0;

  bool cycle_aware = true;
  CycleDetectorConfig cycles;

  /// Beam width of the energy-aware strategy.
  int beam_width = 8;
};

/// One priced placement variant of a candidate move.
struct MoveVariant {
  core::MigrationScenario scenario;
  core::MigrationForecast forecast;  ///< timings + batch-scored energies
  double energy_j = 0.0;             ///< source + target
};

/// One (VM, source, target) candidate with its priced variants.
struct ScoredMove {
  int vm = -1;
  int source = -1;
  int target = -1;
  MoveVariant blind;        ///< trailing-window dirtying rate
  bool has_aligned = false;
  MoveVariant aligned;      ///< low-cycle-window dirtying rate
  CycleEstimate cycle;      ///< the VM's detected cycle (when has_aligned)

  /// The energy strategies optimise. Deliberately the *blind* price:
  /// selection is then identical whether cycle scheduling is on or
  /// off, so the cycle-aware-vs-blind comparison isolates the
  /// scheduling effect — the scheduler only ever swaps a committed
  /// move to its aligned variant when that variant is cheaper, which
  /// makes "cycle-aware <= cycle-blind predicted energy" a per-move
  /// invariant rather than a statistical tendency.
  double selection_energy() const { return blind.energy_j; }
};

/// Candidate ranges of one donor VM: moves[begin, end) all migrate
/// `vm`, to different targets.
struct VmCandidates {
  int vm = -1;
  int begin = 0;
  int end = 0;
};

/// All candidates of one donor host; vms in first-fit-decreasing
/// order (RAM descending).
struct DonorCandidates {
  int host = -1;
  std::vector<VmCandidates> vms;
};

struct CandidateSet {
  std::vector<ScoredMove> moves;
  std::vector<DonorCandidates> donors;
};

/// Strategy interface: picks one candidate per donor VM, donor by
/// donor, all-or-nothing per donor. Returns indices into
/// candidates.moves. Implementations must keep every tentative target
/// under its RAM capacity and the policy's overload fraction as the
/// selection accumulates.
class PlacementStrategy {
 public:
  virtual ~PlacementStrategy() = default;
  virtual const char* name() const = 0;
  virtual std::vector<int> choose(const Fleet& fleet, const CandidateSet& candidates,
                                  const PlannerConfig& config) const = 0;
};

/// One committed, scheduled move of a wave.
struct ScheduledMove {
  int vm = -1;
  int source = -1;
  int target = -1;
  double start_s = 0.0;        ///< absolute time (history axis)
  double end_s = 0.0;
  bool cycle_aligned = false;
  double energy_j = 0.0;
  double downtime_s = 0.0;
};

/// What one wave produced.
struct WavePlan {
  std::vector<ScheduledMove> moves;       ///< sorted by start time
  double total_migration_energy_j = 0.0;
  double total_downtime_s = 0.0;          ///< SLA view: summed VM blackouts
  double steady_saving_j = 0.0;           ///< vacated idle draw over the horizon
  int donors_considered = 0;
  int donors_vacated = 0;
  int moves_cycle_aligned = 0;
  int overloaded_hosts_before = 0;        ///< hosts above the overload fraction
  int overloaded_hosts_after = 0;
  std::size_t candidates_scored = 0;      ///< (VM, target) pairs priced
  std::size_t batch_rows = 0;             ///< FeatureBatch rows evaluated
  double scoring_seconds = 0.0;           ///< wall time inside score_batch
  double wave_seconds = 0.0;              ///< wall time of the whole wave
};

/// Plans rolling consolidation waves over a fleet.
class MigrationPlanner {
 public:
  /// `model` must outlive the planner and be fitted for the policy's
  /// migration type.
  MigrationPlanner(const models::EnergyModel& model, PlannerConfig config = {});

  const PlannerConfig& config() const { return config_; }

  /// Plans one wave at absolute time `now` and (when `commit`) applies
  /// it to the fleet: placements move and fully vacated donors power
  /// off. With commit = false the fleet is left untouched (what-if).
  WavePlan plan_wave(Fleet& fleet, const PlacementStrategy& strategy, double now,
                     bool commit = true);

 private:
  const models::EnergyModel* model_;
  PlannerConfig config_;
};

}  // namespace wavm3::plan
