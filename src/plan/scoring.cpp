#include "plan/scoring.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace wavm3::plan {

namespace {

using models::HostRole;
using models::MigrationObservation;
using models::MigrationSample;

/// Scenarios per FeatureBatch chunk: bounds peak memory of the
/// synthetic observations without giving up the amortization (each
/// chunk is still thousands of rows — far past the point where the
/// batched matrix product dominates per-call overhead).
constexpr std::size_t kChunk = 8192;

/// Expands one scenario into a synthetic observation for `role`: six
/// samples at the phase boundaries (ms, ts, ts, te, te, me), each
/// carrying the phase's representative constant features. Consecutive
/// same-phase pairs integrate to value x duration; the cross-phase
/// pairs have zero dt and contribute nothing.
MigrationObservation boundary_observation(const core::MigrationScenario& sc,
                                          const core::MigrationForecast& fc,
                                          const core::PhaseRepresentatives& rep,
                                          HostRole role) {
  MigrationObservation obs;
  obs.type = rep.coeff_type;
  obs.role = role;
  obs.times = fc.times;
  obs.mem_bytes = sc.vm_mem_bytes;
  obs.data_bytes = fc.total_bytes;
  obs.avg_bandwidth = fc.bandwidth;

  const MigrationSample* phase_samples = role == HostRole::kSource ? rep.source : rep.target;
  const double bounds[4] = {fc.times.ms, fc.times.ts, fc.times.te, fc.times.me};
  obs.samples.reserve(6);
  for (int phase = 0; phase < 3; ++phase) {
    MigrationSample s = phase_samples[phase];
    s.time = bounds[phase];
    obs.samples.push_back(s);
    s.time = bounds[phase + 1];
    obs.samples.push_back(s);
  }
  return obs;
}

}  // namespace

std::size_t score_batch(const models::EnergyModel& model,
                        std::span<const core::MigrationScenario> scenarios,
                        std::vector<core::MigrationForecast>& out) {
  out.resize(scenarios.size());
  std::size_t rows = 0;

  std::vector<MigrationObservation> observations;
  std::vector<const MigrationObservation*> ptrs;
  std::vector<double> energies;
  for (std::size_t base = 0; base < scenarios.size(); base += kChunk) {
    const std::size_t count = std::min(kChunk, scenarios.size() - base);

    observations.clear();
    observations.reserve(2 * count);
    for (std::size_t i = 0; i < count; ++i) {
      const core::MigrationScenario& sc = scenarios[base + i];
      core::MigrationForecast& fc = out[base + i];
      fc = core::forecast_timings(sc);
      const core::PhaseRepresentatives rep = core::representative_features(sc, fc);
      observations.push_back(boundary_observation(sc, fc, rep, HostRole::kSource));
      observations.push_back(boundary_observation(sc, fc, rep, HostRole::kTarget));
    }

    ptrs.clear();
    ptrs.reserve(observations.size());
    for (const MigrationObservation& obs : observations) ptrs.push_back(&obs);
    const models::FeatureBatch batch(ptrs);

    energies.assign(batch.size(), 0.0);
    model.predict_batch(batch, energies);
    rows += batch.size();

    // Rows alternate source/target in scenario order. The per-phase
    // split is not re-derived here (one batched pass prices totals);
    // callers needing the split go through core::attach_energy.
    for (std::size_t i = 0; i < count; ++i) {
      out[base + i].source_energy = energies[2 * i];
      out[base + i].target_energy = energies[2 * i + 1];
    }
  }
  return rows;
}

}  // namespace wavm3::plan
