#include "rpc/calib_bridge.hpp"

namespace wavm3::rpc {

std::shared_ptr<calib::OnlineRecalibrator> attach_fleet_recalibration(
    FleetNode& node, FleetClient& client, calib::RecalibratorConfig config) {
  // The callback runs on a service worker thread with the pass lock
  // held; FleetClient::publish serializes rounds internally and calls
  // straight through the transport, so the only cost here is one
  // prepare/commit sweep. It must never re-enter the recalibrator —
  // publish() does not, it only touches node epoch state and stores.
  config.on_publish = [&client](const std::shared_ptr<const core::Wavm3Model>& model,
                                std::uint64_t /*version*/, bool /*rollback*/) {
    client.publish(*model);
  };
  return calib::attach(node.service(), config);
}

}  // namespace wavm3::rpc
