#include "rpc/transport.hpp"

#include <string>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace wavm3::rpc {

void LoopbackTransport::register_node(int node, RpcHandler* handler) {
  WAVM3_REQUIRE(handler != nullptr, "handler must not be null");
  std::lock_guard<std::mutex> lock(mutex_);
  WAVM3_REQUIRE(endpoints_.find(node) == endpoints_.end(),
                "node id is already registered");
  auto endpoint = std::make_unique<Endpoint>();
  endpoint->handler = handler;
  endpoints_.emplace(node, std::move(endpoint));
}

LoopbackTransport::Endpoint& LoopbackTransport::endpoint(int node) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = endpoints_.find(node);
  if (it == endpoints_.end()) {
    throw RpcError(RpcErrorCode::kNodeDown, "no node " + std::to_string(node));
  }
  return *it->second;  // map nodes are pointer-stable; knobs are atomics
}

void LoopbackTransport::set_down(int node, bool value) {
  endpoint(node).down.store(value, std::memory_order_relaxed);
}

bool LoopbackTransport::down(int node) const {
  return endpoint(node).down.load(std::memory_order_relaxed);
}

void LoopbackTransport::set_drop_rate(int node, double rate) {
  WAVM3_REQUIRE(rate >= 0.0 && rate <= 1.0, "drop rate must be in [0, 1]");
  endpoint(node).drop_rate.store(rate, std::memory_order_relaxed);
}

std::uint64_t LoopbackTransport::calls(int node) const {
  return endpoint(node).calls.load(std::memory_order_relaxed);
}

std::uint64_t LoopbackTransport::failures(int node) const {
  return endpoint(node).failures.load(std::memory_order_relaxed);
}

std::vector<std::uint8_t> LoopbackTransport::call(int node,
                                                  std::span<const std::uint8_t> frame) {
  Endpoint& ep = endpoint(node);
  ep.calls.fetch_add(1, std::memory_order_relaxed);
  if (ep.down.load(std::memory_order_relaxed)) {
    ep.failures.fetch_add(1, std::memory_order_relaxed);
    throw RpcError(RpcErrorCode::kNodeDown, "node " + std::to_string(node) + " is down");
  }
  const double drop = ep.drop_rate.load(std::memory_order_relaxed);
  if (drop > 0.0) {
    // The k-th drop decision ever taken gets the k-th draw of the
    // seeded stream — deterministic modulo thread interleaving.
    const std::uint64_t ticket = drop_ticket_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t bits = util::splitmix64(
        drop_seed_ ^ (static_cast<std::uint64_t>(static_cast<unsigned>(node)) << 32U) ^
        ticket);
    const double unit = static_cast<double>(bits >> 11U) * 0x1.0p-53;  // [0, 1)
    if (unit < drop) {
      ep.failures.fetch_add(1, std::memory_order_relaxed);
      throw RpcError(RpcErrorCode::kTimeout,
                     "call to node " + std::to_string(node) + " dropped in transit");
    }
  }
  return ep.handler->handle(frame);
}

}  // namespace wavm3::rpc
