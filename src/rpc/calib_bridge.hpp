// Glue between a node-local online recalibrator and fleet-wide epoch
// propagation.
//
// attach_fleet_recalibration() wires calib::attach() onto a FleetNode's
// service and sets RecalibratorConfig::on_publish so that every gated
// swap the recalibrator makes locally is immediately re-published
// through the FleetClient as a fresh epoch: prepare/commit lands the
// same tables on every node (including the origin — its store version
// bumps again, which keeps epoch bookkeeping uniform across the
// fleet). A calib watch *rollback* propagates the same way, publishing
// the restored model fleet-wide.
//
// Trade-off, documented on purpose: the fleet re-commit on the origin
// node supersedes the recalibrator's own post-swap watch (the store
// version moved on), so the node-local watch rollback is disarmed for
// fleet-published candidates. Fleet convergence is all-or-nothing
// instead (the client's 2-phase round), and drift that survives a bad
// candidate re-manifests in the next pass windows and triggers a fresh
// candidate — the steady-state correction loop the calib tests pin.
#pragma once

#include <memory>

#include "calib/recalibrator.hpp"
#include "rpc/fleet.hpp"
#include "rpc/node.hpp"

namespace wavm3::rpc {

/// Attaches an online recalibrator to `node`'s service whose publishes
/// propagate fleet-wide through `client`. The client and node must
/// outlive the returned recalibrator's activity.
std::shared_ptr<calib::OnlineRecalibrator> attach_fleet_recalibration(
    FleetNode& node, FleetClient& client, calib::RecalibratorConfig config = {});

}  // namespace wavm3::rpc
