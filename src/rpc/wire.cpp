#include "rpc/wire.hpp"

#include <array>
#include <bit>

namespace wavm3::rpc {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1U) : c >> 1U;
    }
    table[i] = c;
  }
  return table;
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFFU));
  out.push_back(static_cast<std::uint8_t>(v >> 8U));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint16_t get_u16(std::span<const std::uint8_t> in, std::size_t at) {
  return static_cast<std::uint16_t>(in[at] | (in[at + 1] << 8U));
}

std::uint32_t get_u32(std::span<const std::uint8_t> in, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8U) | in[at + static_cast<std::size_t>(i)];
  return v;
}

}  // namespace

const char* to_string(RpcErrorCode code) {
  switch (code) {
    case RpcErrorCode::kTruncated: return "truncated";
    case RpcErrorCode::kOversize: return "oversize";
    case RpcErrorCode::kBadMagic: return "bad_magic";
    case RpcErrorCode::kBadVersion: return "bad_version";
    case RpcErrorCode::kBadCrc: return "bad_crc";
    case RpcErrorCode::kBadType: return "bad_type";
    case RpcErrorCode::kMalformedPayload: return "malformed_payload";
    case RpcErrorCode::kNodeDown: return "node_down";
    case RpcErrorCode::kTimeout: return "timeout";
    case RpcErrorCode::kRemoteError: return "remote_error";
  }
  return "unknown";
}

RpcError::RpcError(RpcErrorCode code, const std::string& detail)
    : std::runtime_error(std::string(to_string(code)) + ": " + detail), code_(code) {}

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFU;
  for (const std::uint8_t byte : data) {
    c = table[(c ^ byte) & 0xFFU] ^ (c >> 8U);
  }
  return c ^ 0xFFFFFFFFU;
}

std::vector<std::uint8_t> encode_frame(std::uint16_t type,
                                       std::span<const std::uint8_t> payload) {
  if (payload.size() > kMaxPayloadBytes) {
    throw RpcError(RpcErrorCode::kOversize,
                   "payload of " + std::to_string(payload.size()) + " bytes");
  }
  std::vector<std::uint8_t> frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  put_u32(frame, kFrameMagic);
  put_u16(frame, kProtocolVersion);
  put_u16(frame, type);
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  put_u32(frame, crc32(payload));
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

FrameView decode_frame(std::span<const std::uint8_t> frame) {
  if (frame.size() < kFrameHeaderBytes) {
    throw RpcError(RpcErrorCode::kTruncated,
                   "frame of " + std::to_string(frame.size()) + " bytes, header needs " +
                       std::to_string(kFrameHeaderBytes));
  }
  if (get_u32(frame, 0) != kFrameMagic) {
    throw RpcError(RpcErrorCode::kBadMagic, "first 4 bytes are not a frame");
  }
  const std::uint16_t version = get_u16(frame, 4);
  if (version != kProtocolVersion) {
    throw RpcError(RpcErrorCode::kBadVersion,
                   "version " + std::to_string(version) + ", expected " +
                       std::to_string(kProtocolVersion));
  }
  const std::uint16_t type = get_u16(frame, 6);
  const std::uint32_t declared = get_u32(frame, 8);
  if (declared > kMaxPayloadBytes) {
    throw RpcError(RpcErrorCode::kOversize,
                   "declared payload of " + std::to_string(declared) + " bytes");
  }
  // Bounds check before forming the payload span: a lying length
  // prefix must fail here, not on a later read.
  if (frame.size() - kFrameHeaderBytes < declared) {
    throw RpcError(RpcErrorCode::kTruncated,
                   "declared " + std::to_string(declared) + " payload bytes, " +
                       std::to_string(frame.size() - kFrameHeaderBytes) + " present");
  }
  if (frame.size() - kFrameHeaderBytes > declared) {
    throw RpcError(RpcErrorCode::kMalformedPayload,
                   std::to_string(frame.size() - kFrameHeaderBytes - declared) +
                       " trailing bytes after declared payload");
  }
  const std::span<const std::uint8_t> payload = frame.subspan(kFrameHeaderBytes, declared);
  const std::uint32_t expected_crc = get_u32(frame, 12);
  const std::uint32_t actual_crc = crc32(payload);
  if (expected_crc != actual_crc) {
    throw RpcError(RpcErrorCode::kBadCrc, "payload checksum mismatch");
  }
  return FrameView{type, payload};
}

void WireWriter::u16(std::uint16_t v) { put_u16(buf_, v); }
void WireWriter::u32(std::uint32_t v) { put_u32(buf_, v); }

void WireWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void WireWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void WireWriter::str(const std::string& v) {
  u32(static_cast<std::uint32_t>(v.size()));
  buf_.insert(buf_.end(), v.begin(), v.end());
}

std::vector<std::uint8_t> WireWriter::frame(std::uint16_t type) const {
  return encode_frame(type, buf_);
}

void WireReader::need(std::size_t n) const {
  if (data_.size() - pos_ < n) {
    throw RpcError(RpcErrorCode::kMalformedPayload,
                   "payload needs " + std::to_string(n) + " more bytes, " +
                       std::to_string(data_.size() - pos_) + " remain");
  }
}

std::uint8_t WireReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t WireReader::u16() {
  need(2);
  const std::uint16_t v = get_u16(data_, pos_);
  pos_ += 2;
  return v;
}

std::uint32_t WireReader::u32() {
  need(4);
  const std::uint32_t v = get_u32(data_, pos_);
  pos_ += 4;
  return v;
}

std::uint64_t WireReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8U) | data_[pos_ + static_cast<std::size_t>(i)];
  }
  pos_ += 8;
  return v;
}

double WireReader::f64() { return std::bit_cast<double>(u64()); }

std::string WireReader::str() {
  const std::uint32_t len = u32();
  // Length sanity before the bulk read: remaining() can never satisfy
  // a lying prefix, so this is the same check need() does, but with a
  // message that names the string.
  need(len);
  std::string v(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
  return v;
}

void WireReader::expect_done() const {
  if (pos_ != data_.size()) {
    throw RpcError(RpcErrorCode::kMalformedPayload,
                   std::to_string(data_.size() - pos_) + " trailing payload bytes");
  }
}

}  // namespace wavm3::rpc
