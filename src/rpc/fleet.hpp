// Fleet-side client: consistent-hash routing with replica failover,
// per-node circuit breakers, and the coordinator half of the epoch
// propagation protocol.
//
// Routing: a predict request routes by its (migration type, role)
// coefficient slice — the role half of the key is derived from the
// scenario hash, spreading each type's traffic over both of its slice
// owners (a forecast prices both roles, so either slice owner can
// serve it; the key exists to partition load, not data). The slice's
// replica group comes off the HashRing; candidates are tried in
// rotation (scenario-hash offset) so replicas share load, and a
// transport failure fails over to the next replica. Per-node circuit
// breakers (the PR 2 ladder) trip on repeated transport failures, so
// a sick node is skipped without paying a probe on every request;
// half-open probes bring it back once it recovers.
//
// Epoch publish (reusing PR 5's gated-publish store on each node):
//   1. prepare(e, tables) to every registered node; collect acks.
//   2. acks < quorum        -> rollback(e) everywhere; not converged.
//      acks >= quorum       -> commit(e) to every acked node.
//   3. any commit failure   -> rollback(e) everywhere (undoing the
//      commits that did land); not converged.
//      all commits acked    -> converged: the fleet serves epoch e.
// The default quorum is *all registered nodes*: with replicated
// slices, a node serving stale coefficients is a correctness hazard,
// so partial convergence is treated as failure and rolled back. Under
// node loss this yields the all-or-nothing property the fleet bench
// gates on: after any publish attempt, every *reachable* node serves
// the same epoch.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "rpc/messages.hpp"
#include "rpc/ring.hpp"
#include "rpc/transport.hpp"
#include "serve/breaker.hpp"

namespace wavm3::rpc {

struct FleetClientConfig {
  /// Replicas per coefficient slice (clamped to the node count).
  std::size_t replication = 2;
  int vnodes_per_node = 64;
  std::uint64_t ring_seed = 2015;
  /// Per-node breaker guarding transport calls.
  serve::CircuitBreakerConfig breaker = {};
  /// Prepare acks required to commit; 0 = every registered node.
  std::size_t quorum = 0;
  /// Registry for the fleet_* client metrics. Null = none.
  obs::MetricRegistry* registry = nullptr;
};

/// Outcome of one epoch publish round.
struct PublishReport {
  std::uint64_t epoch = 0;
  std::size_t nodes = 0;          ///< registered at publish time
  std::size_t prepare_acks = 0;
  std::size_t commit_acks = 0;
  std::size_t rollbacks_sent = 0;
  bool converged = false;
  std::string detail;             ///< why the round failed, when it did
};

struct NodeStatus {
  int node = 0;
  bool reachable = false;
  StatusResponse status;
};

struct FleetStatus {
  std::vector<NodeStatus> nodes;
  /// Max committed-epoch spread across reachable nodes (0 = every
  /// reachable node serves the same epoch — the staleness-convergence
  /// property the bench gates on).
  std::uint64_t epoch_lag = 0;
};

class FleetClient {
 public:
  explicit FleetClient(Transport& transport, FleetClientConfig config = {});

  /// Registers a node address. Setup-phase only: call before serving
  /// traffic (the ring is read lock-free on the predict path).
  void add_node(int node);
  std::size_t node_count() const { return nodes_.size(); }

  /// Routes the scenario to its slice's replica group and returns the
  /// first replica's answer, failing over on transport errors. Typed
  /// service failures (ErrorResponse carrying a PredictErrorCode) are
  /// rethrown as serve::PredictError without failover — they are
  /// deterministic answers, not node failures. Throws
  /// RpcError(kNodeDown) when every replica is unreachable.
  core::MigrationForecast predict(const core::MigrationScenario& scenario);

  /// Two-phase publish of `model`'s coefficient tables as the next
  /// epoch. Serialized internally; safe to call from calib callbacks
  /// on any node's worker thread.
  PublishReport publish(const core::Wavm3Model& model);

  /// Polls every node. Cheap enough to call mid-bench.
  FleetStatus status();

  /// Highest epoch a publish round has converged on.
  std::uint64_t committed_epoch() const;

  std::uint64_t failovers() const { return failovers_.load(std::memory_order_relaxed); }
  std::uint64_t exhausted() const { return exhausted_.load(std::memory_order_relaxed); }

 private:
  EpochAck call_epoch(int node, const std::vector<std::uint8_t>& frame);
  serve::CircuitBreaker& breaker(int node);

  Transport& transport_;
  FleetClientConfig config_;
  HashRing ring_;
  std::vector<int> nodes_;
  std::map<int, std::unique_ptr<serve::CircuitBreaker>> breakers_;

  std::mutex publish_mutex_;
  std::atomic<std::uint64_t> next_epoch_{0};
  std::atomic<std::uint64_t> committed_epoch_{0};
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> exhausted_{0};

  obs::Counter* m_requests_ = nullptr;   ///< fleet_requests_total
  obs::Counter* m_failovers_ = nullptr;  ///< fleet_failovers_total
  obs::Counter* m_publishes_ = nullptr;  ///< fleet_publishes_total
  obs::Counter* m_rollbacks_ = nullptr;  ///< fleet_publish_rollbacks_total
};

}  // namespace wavm3::rpc
