#include "rpc/node.hpp"

#include <cmath>
#include <string>
#include <utility>

#include "serve/errors.hpp"

namespace wavm3::rpc {

namespace {

std::vector<std::uint8_t> error_frame(std::uint16_t code, const std::string& detail) {
  return encode_error_response(ErrorResponse{code, detail});
}

std::vector<std::uint8_t> ack_frame(std::uint64_t epoch, bool accepted,
                                    std::string reason = {}) {
  return encode_epoch_ack(EpochAck{epoch, accepted, std::move(reason)});
}

bool finite_table(const core::Wavm3Coefficients& table) {
  for (const core::RoleCoefficients* role : {&table.source, &table.target}) {
    for (const core::PhaseCoefficients* phase :
         {&role->initiation, &role->transfer, &role->activation}) {
      for (const double v : {phase->alpha, phase->beta, phase->gamma, phase->delta,
                             phase->c}) {
        if (!std::isfinite(v)) return false;
      }
    }
  }
  return true;
}

}  // namespace

FleetNode::FleetNode(std::shared_ptr<const core::Wavm3Model> model,
                     FleetNodeConfig config)
    : config_(config), service_(std::move(model), config.service) {
  if (config_.registry != nullptr) {
    const obs::Labels labels{{"node", std::to_string(config_.node_id)}};
    m_requests_ = &config_.registry->counter(
        "rpc_node_requests_total", "frames handled by this node", labels);
    m_errors_ = &config_.registry->counter(
        "rpc_node_errors_total", "frames answered with an error", labels);
    m_epoch_ = &config_.registry->gauge(
        "rpc_node_committed_epoch", "coefficient epoch this node serves", labels);
  }
}

std::uint64_t FleetNode::committed_epoch() const {
  std::lock_guard<std::mutex> lock(epoch_mutex_);
  return committed_epoch_;
}

std::uint64_t FleetNode::staged_epoch() const {
  std::lock_guard<std::mutex> lock(epoch_mutex_);
  return staged_.has_value() ? staged_->epoch : 0;
}

std::vector<std::uint8_t> FleetNode::handle(std::span<const std::uint8_t> frame) {
  if (m_requests_ != nullptr) m_requests_->inc();
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  try {
    const FrameView view = decode_frame(frame);
    switch (static_cast<MsgType>(view.type)) {
      case MsgType::kPredictRequest: return handle_predict(view);
      case MsgType::kEpochPrepare: return handle_prepare(view);
      case MsgType::kEpochCommit: return handle_commit(view);
      case MsgType::kEpochRollback: return handle_rollback(view);
      case MsgType::kStatusRequest: return handle_status();
      default:
        throw RpcError(RpcErrorCode::kBadType,
                       "node cannot serve frame type " + std::to_string(view.type));
    }
  } catch (const RpcError& e) {
    if (m_errors_ != nullptr) m_errors_->inc();
    return error_frame(
        static_cast<std::uint16_t>(kRpcErrorCodeBase +
                                   static_cast<std::uint16_t>(e.code())),
        e.what());
  } catch (const serve::PredictError& e) {
    if (m_errors_ != nullptr) m_errors_->inc();
    return error_frame(static_cast<std::uint16_t>(e.code()), e.what());
  } catch (const std::exception& e) {
    if (m_errors_ != nullptr) m_errors_->inc();
    return error_frame(
        static_cast<std::uint16_t>(kRpcErrorCodeBase +
                                   static_cast<std::uint16_t>(RpcErrorCode::kRemoteError)),
        e.what());
  }
}

std::vector<std::uint8_t> FleetNode::handle_predict(const FrameView& frame) {
  const PredictRequest req = decode_predict_request(frame);
  PredictResponse resp;
  resp.forecast = service_.predict(req.scenario);
  {
    std::lock_guard<std::mutex> lock(epoch_mutex_);
    resp.epoch = committed_epoch_;
  }
  resp.coeff_version = service_.coeff_store().version();
  return encode_predict_response(resp);
}

std::vector<std::uint8_t> FleetNode::handle_prepare(const FrameView& frame) {
  const EpochPrepare req = decode_epoch_prepare(frame);
  std::lock_guard<std::mutex> lock(epoch_mutex_);
  if (req.epoch <= committed_epoch_) {
    return ack_frame(req.epoch, false, "epoch is not newer than committed");
  }
  if (staged_.has_value() && staged_->epoch == req.epoch) {
    return ack_frame(req.epoch, true);  // idempotent re-prepare
  }
  if (req.epoch <= highest_seen_epoch_) {
    // Every epoch is single-use: once seen (and later rolled back or
    // superseded), replaying it could resurrect a rejected candidate.
    return ack_frame(req.epoch, false, "epoch was already used");
  }
  auto model = std::make_shared<core::Wavm3Model>();
  for (const auto& [type, table] : req.tables) {
    if (!finite_table(table)) {
      return ack_frame(req.epoch, false, "non-finite coefficient table");
    }
    model->set_coefficients(type, table);
  }
  // A newer prepare supersedes an older staged candidate (the round it
  // belonged to is over — its commit can never arrive now).
  staged_ = Staged{req.epoch, std::move(model)};
  highest_seen_epoch_ = req.epoch;
  return ack_frame(req.epoch, true);
}

std::vector<std::uint8_t> FleetNode::handle_commit(const FrameView& frame) {
  const EpochCommit req = decode_epoch_commit(frame);
  std::lock_guard<std::mutex> lock(epoch_mutex_);
  if (committed_epoch_ == req.epoch) {
    return ack_frame(req.epoch, true);  // idempotent re-commit
  }
  if (!staged_.has_value() || staged_->epoch != req.epoch) {
    return ack_frame(req.epoch, false, "nothing staged for this epoch");
  }
  LastCommit undo;
  undo.epoch = req.epoch;
  undo.prev_epoch = committed_epoch_;
  undo.prev_model = service_.coeff_store().snapshot().model;
  service_.swap_model(staged_->model);
  last_commit_ = std::move(undo);
  committed_epoch_ = req.epoch;
  staged_.reset();
  if (m_epoch_ != nullptr) m_epoch_->set(static_cast<double>(committed_epoch_));
  return ack_frame(req.epoch, true);
}

std::vector<std::uint8_t> FleetNode::handle_rollback(const FrameView& frame) {
  const EpochRollback req = decode_epoch_rollback(frame);
  std::lock_guard<std::mutex> lock(epoch_mutex_);
  if (staged_.has_value() && staged_->epoch == req.epoch) {
    staged_.reset();
    return ack_frame(req.epoch, true);
  }
  if (last_commit_.has_value() && last_commit_->epoch == req.epoch &&
      committed_epoch_ == req.epoch) {
    // The commit went through before the coordinator aborted the
    // round: undo it by swapping the remembered previous model back.
    service_.swap_model(last_commit_->prev_model);
    committed_epoch_ = last_commit_->prev_epoch;
    last_commit_.reset();
    if (m_epoch_ != nullptr) m_epoch_->set(static_cast<double>(committed_epoch_));
    return ack_frame(req.epoch, true);
  }
  // Nothing to undo (never prepared here, or already superseded) —
  // still an ack: rollback is the coordinator's sweep and must be
  // idempotent across every partial state.
  return ack_frame(req.epoch, true);
}

std::vector<std::uint8_t> FleetNode::handle_status() {
  StatusResponse resp;
  {
    std::lock_guard<std::mutex> lock(epoch_mutex_);
    resp.committed_epoch = committed_epoch_;
    resp.staged_epoch = staged_.has_value() ? staged_->epoch : 0;
  }
  resp.coeff_version = service_.coeff_store().version();
  resp.requests_served = requests_served_.load(std::memory_order_relaxed);
  return encode_status_response(resp);
}

}  // namespace wavm3::rpc
