#include "rpc/fleet.hpp"

#include <algorithm>
#include <bit>
#include <string>

#include "serve/errors.hpp"
#include "serve/scenario_key.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace wavm3::rpc {

namespace {

/// Rethrows a decoded ErrorResponse as the typed exception it carries.
[[noreturn]] void rethrow_error(const ErrorResponse& err) {
  if (err.code >= kRpcErrorCodeBase) {
    throw RpcError(static_cast<RpcErrorCode>(err.code - kRpcErrorCodeBase), err.detail);
  }
  throw serve::PredictError(static_cast<serve::PredictErrorCode>(err.code), err.detail);
}

std::uint64_t scenario_mix(const core::MigrationScenario& scenario) {
  std::uint64_t h = 0x666c656574ULL;  // "fleet"
  for (const double f : serve::scenario_fields(scenario)) {
    h = util::splitmix64(h ^ std::bit_cast<std::uint64_t>(f));
  }
  return h;
}

}  // namespace

FleetClient::FleetClient(Transport& transport, FleetClientConfig config)
    : transport_(transport),
      config_(config),
      ring_(config.vnodes_per_node, config.ring_seed) {
  WAVM3_REQUIRE(config_.replication >= 1, "replication must be at least 1");
  if (config_.registry != nullptr) {
    m_requests_ = &config_.registry->counter("fleet_requests_total",
                                             "predict calls routed by the client");
    m_failovers_ = &config_.registry->counter(
        "fleet_failovers_total", "replica failovers after a transport error");
    m_publishes_ = &config_.registry->counter("fleet_publishes_total",
                                              "epoch publish rounds started");
    m_rollbacks_ = &config_.registry->counter(
        "fleet_publish_rollbacks_total", "publish rounds that rolled back");
  }
}

void FleetClient::add_node(int node) {
  ring_.add_node(node);
  nodes_.push_back(node);
  breakers_.emplace(node,
                    std::make_unique<serve::CircuitBreaker>(config_.breaker));
}

serve::CircuitBreaker& FleetClient::breaker(int node) {
  const auto it = breakers_.find(node);
  WAVM3_REQUIRE(it != breakers_.end(), "node has no breaker (not registered?)");
  return *it->second;
}

core::MigrationForecast FleetClient::predict(const core::MigrationScenario& scenario) {
  if (m_requests_ != nullptr) m_requests_->inc();
  const std::uint64_t mix = scenario_mix(scenario);
  // Slice key: the scenario's migration type plus a hash-derived role.
  // Either slice owner can price the request (a forecast covers both
  // roles); the role bit spreads one type's traffic over two groups.
  const SliceKey key{scenario.type, (mix & 1U) != 0 ? models::HostRole::kTarget
                                                    : models::HostRole::kSource};
  const std::vector<int> group = ring_.replicas(key, config_.replication);
  if (group.empty()) {
    throw RpcError(RpcErrorCode::kNodeDown, "fleet has no nodes");
  }
  const std::vector<std::uint8_t> request =
      encode_predict_request(PredictRequest{scenario});
  // Rotate the starting replica by scenario hash so replicas share
  // load; remaining replicas are the failover chain.
  const std::size_t offset = (mix >> 1U) % group.size();
  std::string last_error = "no replica attempted";
  for (std::size_t i = 0; i < group.size(); ++i) {
    const int node = group[(offset + i) % group.size()];
    serve::CircuitBreaker& brk = breaker(node);
    if (!brk.allow()) {
      last_error = "breaker open for node " + std::to_string(node);
      continue;
    }
    try {
      const std::vector<std::uint8_t> raw = transport_.call(node, request);
      const FrameView view = decode_frame(raw);
      if (view.type == static_cast<std::uint16_t>(MsgType::kErrorResponse)) {
        // The node answered: it is healthy even though the request
        // failed. Service errors are deterministic — rethrow, don't
        // failover (every replica serves the same model).
        brk.record_success();
        rethrow_error(decode_error_response(view));
      }
      const PredictResponse resp = decode_predict_response(view);
      brk.record_success();
      return resp.forecast;
    } catch (const serve::PredictError&) {
      throw;
    } catch (const RpcError& e) {
      if (e.code() == RpcErrorCode::kRemoteError) {
        // The node answered with an application-level error (e.g. a
        // contract violation in the request): it is healthy and every
        // replica would answer the same — no failover.
        throw;
      }
      brk.record_failure();
      failovers_.fetch_add(1, std::memory_order_relaxed);
      if (m_failovers_ != nullptr) m_failovers_->inc();
      last_error = e.what();
    }
  }
  exhausted_.fetch_add(1, std::memory_order_relaxed);
  throw RpcError(RpcErrorCode::kNodeDown,
                 "every replica failed; last: " + last_error);
}

EpochAck FleetClient::call_epoch(int node, const std::vector<std::uint8_t>& frame) {
  const std::vector<std::uint8_t> raw = transport_.call(node, frame);
  const FrameView view = decode_frame(raw);
  if (view.type == static_cast<std::uint16_t>(MsgType::kErrorResponse)) {
    rethrow_error(decode_error_response(view));
  }
  return decode_epoch_ack(view);
}

PublishReport FleetClient::publish(const core::Wavm3Model& model) {
  std::lock_guard<std::mutex> lock(publish_mutex_);
  PublishReport report;
  report.nodes = nodes_.size();
  report.epoch = next_epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (m_publishes_ != nullptr) m_publishes_->inc();
  WAVM3_REQUIRE(!nodes_.empty(), "cannot publish to an empty fleet");

  EpochPrepare prepare;
  prepare.epoch = report.epoch;
  for (const migration::MigrationType type : model.fitted_types()) {
    prepare.tables.emplace_back(type, model.coefficients(type));
  }
  const std::vector<std::uint8_t> prepare_frame = encode_epoch_prepare(prepare);

  // Phase 1: stage on every node.
  std::vector<int> acked;
  std::string detail;
  for (const int node : nodes_) {
    try {
      const EpochAck ack = call_epoch(node, prepare_frame);
      if (ack.accepted) {
        acked.push_back(node);
      } else if (detail.empty()) {
        detail = "node " + std::to_string(node) + " rejected prepare: " + ack.reason;
      }
    } catch (const std::exception& e) {
      if (detail.empty()) {
        detail = "node " + std::to_string(node) + " unreachable in prepare: " + e.what();
      }
    }
  }
  report.prepare_acks = acked.size();

  const std::size_t quorum =
      config_.quorum == 0 ? nodes_.size() : std::min(config_.quorum, nodes_.size());
  const auto sweep_rollback = [&](const std::vector<int>& targets) {
    const std::vector<std::uint8_t> frame =
        encode_epoch_rollback(EpochRollback{report.epoch});
    for (const int node : targets) {
      try {
        call_epoch(node, frame);
        ++report.rollbacks_sent;
      } catch (const std::exception&) {
        // Unreachable during the sweep: its staged candidate can never
        // commit (this epoch is burned) and a committed one will be
        // superseded by the next converged round. Nothing else to do
        // over a datagram transport.
      }
    }
  };

  if (acked.size() < quorum) {
    report.detail = detail.empty() ? "quorum not reached" : detail;
    sweep_rollback(acked);
    if (m_rollbacks_ != nullptr) m_rollbacks_->inc();
    return report;
  }

  // Phase 2: commit on every acked node; any failure aborts the round
  // and undoes the commits that already landed.
  const std::vector<std::uint8_t> commit_frame =
      encode_epoch_commit(EpochCommit{report.epoch});
  std::vector<int> committed;
  bool commit_failed = false;
  for (const int node : acked) {
    try {
      const EpochAck ack = call_epoch(node, commit_frame);
      if (ack.accepted) {
        committed.push_back(node);
      } else {
        commit_failed = true;
        if (report.detail.empty()) {
          report.detail =
              "node " + std::to_string(node) + " rejected commit: " + ack.reason;
        }
      }
    } catch (const std::exception& e) {
      commit_failed = true;
      if (report.detail.empty()) {
        report.detail =
            "node " + std::to_string(node) + " unreachable in commit: " + e.what();
      }
    }
  }
  report.commit_acks = committed.size();
  if (commit_failed || committed.size() < quorum) {
    sweep_rollback(acked);
    if (m_rollbacks_ != nullptr) m_rollbacks_->inc();
    return report;
  }
  report.converged = true;
  committed_epoch_.store(report.epoch, std::memory_order_relaxed);
  return report;
}

FleetStatus FleetClient::status() {
  FleetStatus fleet;
  const std::vector<std::uint8_t> request = encode_status_request();
  std::uint64_t lo = ~0ULL;
  std::uint64_t hi = 0;
  for (const int node : nodes_) {
    NodeStatus ns;
    ns.node = node;
    try {
      const std::vector<std::uint8_t> raw = transport_.call(node, request);
      const FrameView view = decode_frame(raw);
      if (view.type == static_cast<std::uint16_t>(MsgType::kErrorResponse)) {
        rethrow_error(decode_error_response(view));
      }
      ns.status = decode_status_response(view);
      ns.reachable = true;
      lo = std::min(lo, ns.status.committed_epoch);
      hi = std::max(hi, ns.status.committed_epoch);
    } catch (const std::exception&) {
      ns.reachable = false;
    }
    fleet.nodes.push_back(ns);
  }
  fleet.epoch_lag = hi >= lo ? hi - lo : 0;
  return fleet;
}

std::uint64_t FleetClient::committed_epoch() const {
  return committed_epoch_.load(std::memory_order_relaxed);
}

}  // namespace wavm3::rpc
