// Node-addressed request/response transport abstraction.
//
// The fleet layers (FleetClient, FleetNode) speak frames to integer
// node addresses through Transport; the only implementation today is
// the in-process LoopbackTransport, which dispatches calls straight
// into registered handlers on the caller's thread. The interface is
// deliberately datagram-shaped (one frame in, one frame out, typed
// failures) so a socket transport slots in without touching the fleet
// logic.
//
// Fault injection: LoopbackTransport can take nodes down and drop a
// seeded deterministic fraction of calls — the substrate for the node
// -loss storms of bench_fleet and the fleet tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "rpc/wire.hpp"

namespace wavm3::rpc {

/// Server side of a transport endpoint: consumes a request frame,
/// produces a response frame. Implementations must be thread-safe —
/// the transport may deliver concurrently.
class RpcHandler {
 public:
  virtual ~RpcHandler() = default;
  virtual std::vector<std::uint8_t> handle(std::span<const std::uint8_t> frame) = 0;
};

/// Client side: sends one frame to `node`, returns the response frame.
/// Throws RpcError(kNodeDown) when the node is unreachable and
/// RpcError(kTimeout) when delivery fails in transit.
class Transport {
 public:
  virtual ~Transport() = default;
  virtual std::vector<std::uint8_t> call(int node, std::span<const std::uint8_t> frame) = 0;
};

/// In-process transport: call() runs the target handler inline.
///
/// register_node() is setup-phase only (before concurrent call()
/// traffic); the fault knobs (set_down / set_drop_rate) are atomics
/// and safe to flip mid-traffic — that is their whole point.
class LoopbackTransport final : public Transport {
 public:
  explicit LoopbackTransport(std::uint64_t drop_seed = 2015) : drop_seed_(drop_seed) {}

  /// Registers `handler` as node `node`. The handler must outlive the
  /// transport's traffic. Re-registering an id is rejected.
  void register_node(int node, RpcHandler* handler);

  /// Marks a node unreachable (calls throw kNodeDown) or back up.
  void set_down(int node, bool down);
  bool down(int node) const;

  /// Fraction of calls to `node` dropped in transit (throw kTimeout)
  /// after reaching a live node, drawn from a seeded deterministic
  /// stream. Models a flaky path rather than a dead node.
  void set_drop_rate(int node, double rate);

  std::vector<std::uint8_t> call(int node, std::span<const std::uint8_t> frame) override;

  std::uint64_t calls(int node) const;
  std::uint64_t failures(int node) const;

 private:
  struct Endpoint {
    RpcHandler* handler = nullptr;
    std::atomic<bool> down{false};
    std::atomic<double> drop_rate{0.0};
    std::atomic<std::uint64_t> calls{0};
    std::atomic<std::uint64_t> failures{0};
  };

  Endpoint& endpoint(int node) const;

  mutable std::mutex mutex_;  // guards the map shape only
  std::map<int, std::unique_ptr<Endpoint>> endpoints_;
  std::uint64_t drop_seed_;
  std::atomic<std::uint64_t> drop_ticket_{0};
};

}  // namespace wavm3::rpc
