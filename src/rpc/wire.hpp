// Length-prefixed binary framing for the fleet serving protocol.
//
// A frame is a fixed 16-byte little-endian header followed by the
// payload:
//
//   offset  size  field
//   0       4     magic       0x57564D33 ("WVM3" big-endian in memory)
//   4       2     version     protocol version, currently 1
//   6       2     type        MsgType discriminant
//   8       4     payload_len bytes after the header, <= kMaxPayloadBytes
//   12      4     crc         CRC-32 (IEEE, reflected) of the payload
//
// Decoding is strict and total: every malformed input — truncated at
// any boundary, oversize length prefix, wrong magic/version, corrupted
// CRC — produces a typed RpcError and never reads out of bounds. The
// codec helpers (WireWriter/WireReader) serialize scalars little-endian
// byte-by-byte, so frames are byte-identical across hosts regardless of
// native endianness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace wavm3::rpc {

enum class RpcErrorCode {
  kTruncated,         ///< input shorter than the header or the declared payload
  kOversize,          ///< payload_len exceeds kMaxPayloadBytes
  kBadMagic,          ///< first 4 bytes are not a frame at all
  kBadVersion,        ///< protocol version mismatch
  kBadCrc,            ///< payload checksum mismatch
  kBadType,           ///< frame type is not the one the decoder expected
  kMalformedPayload,  ///< payload shorter/longer than its message schema
  kNodeDown,          ///< transport: target node unreachable
  kTimeout,           ///< transport: call did not complete in time
  kRemoteError,       ///< peer answered with an error frame
};

const char* to_string(RpcErrorCode code);

/// Typed RPC failure. what() is "<code>: <detail>".
class RpcError : public std::runtime_error {
 public:
  RpcError(RpcErrorCode code, const std::string& detail);
  RpcErrorCode code() const { return code_; }

 private:
  RpcErrorCode code_;
};

inline constexpr std::uint32_t kFrameMagic = 0x57564D33U;  // "WVM3"
inline constexpr std::uint16_t kProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 16;
/// Generous for coefficient tables (30 doubles per type) and scenario
/// batches, tight enough that a corrupted length prefix cannot ask the
/// decoder to allocate gigabytes.
inline constexpr std::size_t kMaxPayloadBytes = 1U << 20U;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Decoded view into a validated frame. `payload` aliases the input
/// buffer — it is valid only as long as the buffer outlives it.
struct FrameView {
  std::uint16_t type = 0;
  std::span<const std::uint8_t> payload;
};

/// Builds a frame around `payload`. Throws RpcError(kOversize) when the
/// payload exceeds kMaxPayloadBytes.
std::vector<std::uint8_t> encode_frame(std::uint16_t type,
                                       std::span<const std::uint8_t> payload);

/// Validates and splits a frame. Throws RpcError on any defect;
/// guarantees no read past `frame.size()`. Trailing bytes after the
/// declared payload are a defect too (kMalformedPayload): a frame is a
/// complete datagram, not a stream prefix.
FrameView decode_frame(std::span<const std::uint8_t> frame);

/// Little-endian scalar serializer for message payloads.
class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  /// u32 length prefix + raw bytes.
  void str(const std::string& v);

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  /// Wraps everything written so far into a frame of the given type.
  std::vector<std::uint8_t> frame(std::uint16_t type) const;

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian deserializer. Every read throws
/// RpcError(kMalformedPayload) instead of running past the end.
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::string str();

  std::size_t remaining() const { return data_.size() - pos_; }
  /// Schema-completeness check: a payload with trailing bytes was
  /// encoded by a different (newer?) schema — reject rather than
  /// silently ignore.
  void expect_done() const;

 private:
  void need(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace wavm3::rpc
