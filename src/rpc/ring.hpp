// Consistent-hash ring over fleet nodes, keyed by coefficient slice.
//
// The unit of placement is a (migration type, host role) coefficient
// slice — the same granularity calib's feedback windows use. Each node
// projects `vnodes` virtual points onto a 64-bit ring; a slice's
// replica group is the first `count` *distinct* nodes clockwise from
// the slice's hash. Virtual points smooth the load split and keep
// reassignment local when a node joins or leaves (only slices adjacent
// to its points move — the property that makes consistent hashing
// worth its salt over hash-mod-N).
#pragma once

#include <cstdint>
#include <vector>

#include "migration/engine.hpp"
#include "models/dataset.hpp"

namespace wavm3::rpc {

/// Routing key: one coefficient slice.
struct SliceKey {
  migration::MigrationType type = migration::MigrationType::kNonLive;
  models::HostRole role = models::HostRole::kSource;
};

/// Stable 64-bit hash of a slice (independent of ring contents).
std::uint64_t slice_hash(const SliceKey& key);

class HashRing {
 public:
  explicit HashRing(int vnodes_per_node = 64, std::uint64_t seed = 2015);

  /// Adds a node's virtual points. Re-adding an id is rejected.
  void add_node(int node);
  void remove_node(int node);

  bool empty() const { return points_.empty(); }
  std::size_t node_count() const { return nodes_; }

  /// The replica group of `key`: up to `count` distinct nodes starting
  /// clockwise from the key's hash. Returns fewer when the ring has
  /// fewer nodes; empty on an empty ring.
  std::vector<int> replicas(const SliceKey& key, std::size_t count) const;

 private:
  struct Point {
    std::uint64_t hash = 0;
    int node = 0;
  };

  int vnodes_;
  std::uint64_t seed_;
  std::size_t nodes_ = 0;
  std::vector<Point> points_;  // sorted by hash
};

}  // namespace wavm3::rpc
