#include "rpc/ring.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace wavm3::rpc {

std::uint64_t slice_hash(const SliceKey& key) {
  const std::uint64_t packed =
      (static_cast<std::uint64_t>(static_cast<int>(key.type)) << 8U) |
      static_cast<std::uint64_t>(static_cast<int>(key.role));
  return util::splitmix64(0x736C696365ULL ^ packed);  // "slice"
}

HashRing::HashRing(int vnodes_per_node, std::uint64_t seed)
    : vnodes_(vnodes_per_node), seed_(seed) {
  WAVM3_REQUIRE(vnodes_per_node > 0, "ring needs at least one vnode per node");
}

void HashRing::add_node(int node) {
  WAVM3_REQUIRE(
      std::none_of(points_.begin(), points_.end(),
                   [&](const Point& p) { return p.node == node; }),
      "node is already on the ring");
  points_.reserve(points_.size() + static_cast<std::size_t>(vnodes_));
  for (int v = 0; v < vnodes_; ++v) {
    const std::uint64_t h = util::splitmix64(
        seed_ ^ (static_cast<std::uint64_t>(static_cast<unsigned>(node)) << 20U) ^
        static_cast<std::uint64_t>(v));
    points_.push_back(Point{h, node});
  }
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              return a.hash != b.hash ? a.hash < b.hash : a.node < b.node;
            });
  ++nodes_;
}

void HashRing::remove_node(int node) {
  const std::size_t before = points_.size();
  points_.erase(std::remove_if(points_.begin(), points_.end(),
                               [&](const Point& p) { return p.node == node; }),
                points_.end());
  WAVM3_REQUIRE(points_.size() != before, "node is not on the ring");
  --nodes_;
}

std::vector<int> HashRing::replicas(const SliceKey& key, std::size_t count) const {
  std::vector<int> group;
  if (points_.empty() || count == 0) return group;
  const std::uint64_t h = slice_hash(key);
  // First point clockwise from the key (wrapping past the top).
  std::size_t start = static_cast<std::size_t>(
      std::lower_bound(points_.begin(), points_.end(), h,
                       [](const Point& p, std::uint64_t v) { return p.hash < v; }) -
      points_.begin());
  group.reserve(std::min(count, nodes_));
  for (std::size_t step = 0; step < points_.size() && group.size() < count; ++step) {
    const int node = points_[(start + step) % points_.size()].node;
    if (std::find(group.begin(), group.end(), node) == group.end()) {
      group.push_back(node);
    }
  }
  return group;
}

}  // namespace wavm3::rpc
