// One fleet member: a serve::PredictionService behind an RpcHandler,
// plus the node-side half of the epoch propagation protocol.
//
// Epoch state machine (driven by FleetClient's two-phase publish):
//
//   prepare(e, tables): validate + stage a candidate model for epoch
//     e. Rejected when e is not newer than anything seen (replaying a
//     rolled-back epoch is forbidden — epochs are single-use). A
//     newer prepare supersedes an older staged candidate, so a
//     coordinator that lost a round can always start the next one.
//   commit(e): swap the staged model into the live coefficient store
//     (PR 5's gated-publish machinery: the version bump self-
//     invalidates every cache entry), remember the previous model so
//     the commit can be undone. Idempotent for the committed epoch.
//   rollback(e): discard the staged candidate, or — when e was already
//     committed — swap the previous model back. Idempotent; rolling
//     back an epoch this node never saw is a no-op ack (the
//     coordinator must be able to sweep a partially prepared fleet).
//
// Per-node metrics live in the shared fleet registry under a
// {"node": "<id>"} label, so one scrape shows the whole fleet.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "obs/metrics.hpp"
#include "rpc/messages.hpp"
#include "rpc/transport.hpp"
#include "serve/service.hpp"

namespace wavm3::rpc {

struct FleetNodeConfig {
  int node_id = 0;
  serve::ServiceConfig service = {};
  /// Fleet-shared registry for the per-node labeled metrics. Null =
  /// metrics only in the node's own service registry.
  obs::MetricRegistry* registry = nullptr;
};

class FleetNode final : public RpcHandler {
 public:
  FleetNode(std::shared_ptr<const core::Wavm3Model> model, FleetNodeConfig config);

  /// Dispatches one request frame. Never throws: every failure —
  /// malformed frame, unknown type, service error — is answered with
  /// an ErrorResponse frame.
  std::vector<std::uint8_t> handle(std::span<const std::uint8_t> frame) override;

  serve::PredictionService& service() { return service_; }
  int id() const { return config_.node_id; }

  std::uint64_t committed_epoch() const;
  /// 0 when nothing is staged.
  std::uint64_t staged_epoch() const;

 private:
  std::vector<std::uint8_t> handle_predict(const FrameView& frame);
  std::vector<std::uint8_t> handle_prepare(const FrameView& frame);
  std::vector<std::uint8_t> handle_commit(const FrameView& frame);
  std::vector<std::uint8_t> handle_rollback(const FrameView& frame);
  std::vector<std::uint8_t> handle_status();

  struct Staged {
    std::uint64_t epoch = 0;
    std::shared_ptr<const core::Wavm3Model> model;
  };
  struct LastCommit {
    std::uint64_t epoch = 0;
    std::uint64_t prev_epoch = 0;
    std::shared_ptr<const core::Wavm3Model> prev_model;
  };

  FleetNodeConfig config_;
  serve::PredictionService service_;

  mutable std::mutex epoch_mutex_;
  std::uint64_t committed_epoch_ = 0;
  std::uint64_t highest_seen_epoch_ = 0;
  std::optional<Staged> staged_;
  std::optional<LastCommit> last_commit_;

  std::atomic<std::uint64_t> requests_served_{0};

  obs::Counter* m_requests_ = nullptr;   ///< rpc_node_requests_total{node}
  obs::Counter* m_errors_ = nullptr;     ///< rpc_node_errors_total{node}
  obs::Gauge* m_epoch_ = nullptr;        ///< rpc_node_committed_epoch{node}
};

}  // namespace wavm3::rpc
