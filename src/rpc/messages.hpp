// Typed messages of the fleet serving protocol, with strict binary
// codecs over rpc/wire.
//
// Request/response pairs:
//   kPredictRequest  -> kPredictResponse | kErrorResponse
//   kEpochPrepare    -> kEpochAck
//   kEpochCommit     -> kEpochAck
//   kEpochRollback   -> kEpochAck
//   kStatusRequest   -> kStatusResponse
//
// Scenarios ride the serve::scenario_fields() flattening (33 doubles),
// coefficient tables ship as (type id, 30 doubles) blocks — 2 roles x
// 3 phases x {alpha, beta, gamma, delta, c} in fixed order. Every
// decode_* validates the frame type and the payload schema, throwing
// RpcError on any defect.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/planner.hpp"
#include "core/wavm3_model.hpp"
#include "rpc/wire.hpp"

namespace wavm3::rpc {

enum class MsgType : std::uint16_t {
  kPredictRequest = 1,
  kPredictResponse = 2,
  kErrorResponse = 3,
  kEpochPrepare = 4,
  kEpochCommit = 5,
  kEpochRollback = 6,
  kEpochAck = 7,
  kStatusRequest = 8,
  kStatusResponse = 9,
};

struct PredictRequest {
  core::MigrationScenario scenario;
};

struct PredictResponse {
  core::MigrationForecast forecast;
  std::uint64_t epoch = 0;          ///< node's committed coefficient epoch
  std::uint64_t coeff_version = 0;  ///< node-local store version
};

/// Service- or protocol-level failure, carried instead of a response.
/// Codes below kRpcErrorCodeBase are serve::PredictErrorCode values;
/// codes at/above it are RpcErrorCode + kRpcErrorCodeBase.
inline constexpr std::uint16_t kRpcErrorCodeBase = 0x100;

struct ErrorResponse {
  std::uint16_t code = 0;
  std::string detail;
};

struct EpochPrepare {
  std::uint64_t epoch = 0;
  /// Full coefficient set, one table per fitted migration type.
  std::vector<std::pair<migration::MigrationType, core::Wavm3Coefficients>> tables;
};

struct EpochCommit {
  std::uint64_t epoch = 0;
};

struct EpochRollback {
  std::uint64_t epoch = 0;
};

struct EpochAck {
  std::uint64_t epoch = 0;
  bool accepted = false;
  std::string reason;  ///< empty when accepted
};

struct StatusResponse {
  std::uint64_t committed_epoch = 0;
  std::uint64_t staged_epoch = 0;  ///< 0 = nothing staged
  std::uint64_t coeff_version = 0;
  std::uint64_t requests_served = 0;
};

std::vector<std::uint8_t> encode_predict_request(const PredictRequest& msg);
PredictRequest decode_predict_request(const FrameView& frame);

std::vector<std::uint8_t> encode_predict_response(const PredictResponse& msg);
PredictResponse decode_predict_response(const FrameView& frame);

std::vector<std::uint8_t> encode_error_response(const ErrorResponse& msg);
ErrorResponse decode_error_response(const FrameView& frame);

std::vector<std::uint8_t> encode_epoch_prepare(const EpochPrepare& msg);
EpochPrepare decode_epoch_prepare(const FrameView& frame);

std::vector<std::uint8_t> encode_epoch_commit(const EpochCommit& msg);
EpochCommit decode_epoch_commit(const FrameView& frame);

std::vector<std::uint8_t> encode_epoch_rollback(const EpochRollback& msg);
EpochRollback decode_epoch_rollback(const FrameView& frame);

std::vector<std::uint8_t> encode_epoch_ack(const EpochAck& msg);
EpochAck decode_epoch_ack(const FrameView& frame);

std::vector<std::uint8_t> encode_status_request();
std::vector<std::uint8_t> encode_status_response(const StatusResponse& msg);
StatusResponse decode_status_response(const FrameView& frame);

}  // namespace wavm3::rpc
