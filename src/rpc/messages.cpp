#include "rpc/messages.hpp"

#include "serve/scenario_key.hpp"

namespace wavm3::rpc {

namespace {

void check_type(const FrameView& frame, MsgType expected) {
  if (frame.type != static_cast<std::uint16_t>(expected)) {
    throw RpcError(RpcErrorCode::kBadType,
                   "frame type " + std::to_string(frame.type) + ", expected " +
                       std::to_string(static_cast<std::uint16_t>(expected)));
  }
}

void put_phase(WireWriter& w, const core::PhaseCoefficients& p) {
  w.f64(p.alpha);
  w.f64(p.beta);
  w.f64(p.gamma);
  w.f64(p.delta);
  w.f64(p.c);
}

core::PhaseCoefficients get_phase(WireReader& r) {
  core::PhaseCoefficients p;
  p.alpha = r.f64();
  p.beta = r.f64();
  p.gamma = r.f64();
  p.delta = r.f64();
  p.c = r.f64();
  return p;
}

void put_role(WireWriter& w, const core::RoleCoefficients& role) {
  put_phase(w, role.initiation);
  put_phase(w, role.transfer);
  put_phase(w, role.activation);
}

core::RoleCoefficients get_role(WireReader& r) {
  core::RoleCoefficients role;
  role.initiation = get_phase(r);
  role.transfer = get_phase(r);
  role.activation = get_phase(r);
  return role;
}

migration::MigrationType get_migration_type(WireReader& r) {
  const std::uint8_t raw = r.u8();
  if (raw > static_cast<std::uint8_t>(migration::MigrationType::kPostCopy)) {
    throw RpcError(RpcErrorCode::kMalformedPayload,
                   "migration type id " + std::to_string(raw));
  }
  return static_cast<migration::MigrationType>(raw);
}

}  // namespace

std::vector<std::uint8_t> encode_predict_request(const PredictRequest& msg) {
  WireWriter w;
  for (const double f : serve::scenario_fields(msg.scenario)) w.f64(f);
  return w.frame(static_cast<std::uint16_t>(MsgType::kPredictRequest));
}

PredictRequest decode_predict_request(const FrameView& frame) {
  check_type(frame, MsgType::kPredictRequest);
  WireReader r(frame.payload);
  std::array<double, serve::kScenarioFieldCount> fields{};
  for (double& f : fields) f = r.f64();
  r.expect_done();
  PredictRequest msg;
  // scenario_from_fields validates the type discriminant; surface its
  // contract failure as a payload defect, not a server crash.
  try {
    msg.scenario = serve::scenario_from_fields(fields);
  } catch (const std::exception& e) {
    throw RpcError(RpcErrorCode::kMalformedPayload, e.what());
  }
  return msg;
}

std::vector<std::uint8_t> encode_predict_response(const PredictResponse& msg) {
  WireWriter w;
  const core::MigrationForecast& f = msg.forecast;
  w.f64(f.times.ms);
  w.f64(f.times.ts);
  w.f64(f.times.te);
  w.f64(f.times.me);
  w.f64(f.bandwidth);
  w.f64(f.total_bytes);
  w.u32(static_cast<std::uint32_t>(f.precopy_rounds));
  w.f64(f.downtime);
  w.u8(f.degenerated_to_nonlive ? 1 : 0);
  w.f64(f.source_energy);
  w.f64(f.target_energy);
  for (const double e : f.source_phase_energy) w.f64(e);
  for (const double e : f.target_phase_energy) w.f64(e);
  w.u64(msg.epoch);
  w.u64(msg.coeff_version);
  return w.frame(static_cast<std::uint16_t>(MsgType::kPredictResponse));
}

PredictResponse decode_predict_response(const FrameView& frame) {
  check_type(frame, MsgType::kPredictResponse);
  WireReader r(frame.payload);
  PredictResponse msg;
  core::MigrationForecast& f = msg.forecast;
  f.times.ms = r.f64();
  f.times.ts = r.f64();
  f.times.te = r.f64();
  f.times.me = r.f64();
  f.bandwidth = r.f64();
  f.total_bytes = r.f64();
  f.precopy_rounds = static_cast<int>(r.u32());
  f.downtime = r.f64();
  f.degenerated_to_nonlive = r.u8() != 0;
  f.source_energy = r.f64();
  f.target_energy = r.f64();
  for (double& e : f.source_phase_energy) e = r.f64();
  for (double& e : f.target_phase_energy) e = r.f64();
  msg.epoch = r.u64();
  msg.coeff_version = r.u64();
  r.expect_done();
  return msg;
}

std::vector<std::uint8_t> encode_error_response(const ErrorResponse& msg) {
  WireWriter w;
  w.u16(msg.code);
  w.str(msg.detail);
  return w.frame(static_cast<std::uint16_t>(MsgType::kErrorResponse));
}

ErrorResponse decode_error_response(const FrameView& frame) {
  check_type(frame, MsgType::kErrorResponse);
  WireReader r(frame.payload);
  ErrorResponse msg;
  msg.code = r.u16();
  msg.detail = r.str();
  r.expect_done();
  return msg;
}

std::vector<std::uint8_t> encode_epoch_prepare(const EpochPrepare& msg) {
  WireWriter w;
  w.u64(msg.epoch);
  w.u8(static_cast<std::uint8_t>(msg.tables.size()));
  for (const auto& [type, table] : msg.tables) {
    w.u8(static_cast<std::uint8_t>(type));
    put_role(w, table.source);
    put_role(w, table.target);
  }
  return w.frame(static_cast<std::uint16_t>(MsgType::kEpochPrepare));
}

EpochPrepare decode_epoch_prepare(const FrameView& frame) {
  check_type(frame, MsgType::kEpochPrepare);
  WireReader r(frame.payload);
  EpochPrepare msg;
  msg.epoch = r.u64();
  const std::uint8_t count = r.u8();
  if (count == 0) {
    throw RpcError(RpcErrorCode::kMalformedPayload, "prepare carries no tables");
  }
  msg.tables.reserve(count);
  for (std::uint8_t i = 0; i < count; ++i) {
    const migration::MigrationType type = get_migration_type(r);
    core::Wavm3Coefficients table;
    table.source = get_role(r);
    table.target = get_role(r);
    msg.tables.emplace_back(type, table);
  }
  r.expect_done();
  return msg;
}

std::vector<std::uint8_t> encode_epoch_commit(const EpochCommit& msg) {
  WireWriter w;
  w.u64(msg.epoch);
  return w.frame(static_cast<std::uint16_t>(MsgType::kEpochCommit));
}

EpochCommit decode_epoch_commit(const FrameView& frame) {
  check_type(frame, MsgType::kEpochCommit);
  WireReader r(frame.payload);
  EpochCommit msg;
  msg.epoch = r.u64();
  r.expect_done();
  return msg;
}

std::vector<std::uint8_t> encode_epoch_rollback(const EpochRollback& msg) {
  WireWriter w;
  w.u64(msg.epoch);
  return w.frame(static_cast<std::uint16_t>(MsgType::kEpochRollback));
}

EpochRollback decode_epoch_rollback(const FrameView& frame) {
  check_type(frame, MsgType::kEpochRollback);
  WireReader r(frame.payload);
  EpochRollback msg;
  msg.epoch = r.u64();
  r.expect_done();
  return msg;
}

std::vector<std::uint8_t> encode_epoch_ack(const EpochAck& msg) {
  WireWriter w;
  w.u64(msg.epoch);
  w.u8(msg.accepted ? 1 : 0);
  w.str(msg.reason);
  return w.frame(static_cast<std::uint16_t>(MsgType::kEpochAck));
}

EpochAck decode_epoch_ack(const FrameView& frame) {
  check_type(frame, MsgType::kEpochAck);
  WireReader r(frame.payload);
  EpochAck msg;
  msg.epoch = r.u64();
  msg.accepted = r.u8() != 0;
  msg.reason = r.str();
  r.expect_done();
  return msg;
}

std::vector<std::uint8_t> encode_status_request() {
  return WireWriter{}.frame(static_cast<std::uint16_t>(MsgType::kStatusRequest));
}

std::vector<std::uint8_t> encode_status_response(const StatusResponse& msg) {
  WireWriter w;
  w.u64(msg.committed_epoch);
  w.u64(msg.staged_epoch);
  w.u64(msg.coeff_version);
  w.u64(msg.requests_served);
  return w.frame(static_cast<std::uint16_t>(MsgType::kStatusResponse));
}

StatusResponse decode_status_response(const FrameView& frame) {
  check_type(frame, MsgType::kStatusResponse);
  WireReader r(frame.payload);
  StatusResponse msg;
  msg.committed_epoch = r.u64();
  msg.staged_epoch = r.u64();
  msg.coeff_version = r.u64();
  msg.requests_served = r.u64();
  r.expect_done();
  return msg;
}

}  // namespace wavm3::rpc
