// Cross-testbed calibration (SVI-F): a model trained on machine set A
// overestimates on machine set B by the idle-power difference, because
// the fitted bias embeds A's idle draw. The paper replaces C1 by
// C2 = C1 - (idle_A - idle_B); these helpers implement that transfer.
#pragma once

#include "models/dataset.hpp"
#include "models/energy_model.hpp"

namespace wavm3::core {

/// Mean idle power of the machines behind a dataset, from the
/// observations' recorded testbed idle draw.
double dataset_idle_power(const models::Dataset& dataset);

/// Columnar form: the mean of a feature batch's idle-power column.
double dataset_idle_power(const models::FeatureBatch& batch);

/// Idle-power delta (train minus target) between two datasets.
double idle_bias_delta(const models::Dataset& train, const models::Dataset& target);

/// Applies the SVI-F bias transfer in place: shifts every power-like
/// constant of `model` by -(idle(train) - idle(target)).
void transfer_bias(models::EnergyModel& model, const models::Dataset& train,
                   const models::Dataset& target);

}  // namespace wavm3::core
